package dfdbm

import (
	"dfdbm/internal/catalog"
	"dfdbm/internal/core"
	"dfdbm/internal/pred"
	"dfdbm/internal/query"
	"dfdbm/internal/relalg"
	"dfdbm/internal/relation"
	"dfdbm/internal/workload"
)

// Storage layer.
type (
	// Schema describes a relation's attributes.
	Schema = relation.Schema
	// Attr is one attribute of a schema.
	Attr = relation.Attr
	// Tuple is a decoded row.
	Tuple = relation.Tuple
	// Value is one attribute value.
	Value = relation.Value
	// Page is a fixed-size container of tuples: the unit of storage,
	// transfer, and page-level scheduling.
	Page = relation.Page
	// Relation is a named collection of pages.
	Relation = relation.Relation
	// Catalog is a named collection of relations.
	Catalog = catalog.Catalog
)

// Attribute storage types.
const (
	Int32   = relation.Int32
	Int64   = relation.Int64
	Float64 = relation.Float64
	String  = relation.String
)

// IntVal returns an integer Value.
func IntVal(v int64) Value { return relation.IntVal(v) }

// FloatVal returns a floating-point Value.
func FloatVal(v float64) Value { return relation.FloatVal(v) }

// StringVal returns a string Value.
func StringVal(v string) Value { return relation.StringVal(v) }

// Predicates.
type (
	// Pred is a predicate tree for restrict and delete.
	Pred = pred.Pred
	// Compare compares an attribute against a constant.
	Compare = pred.Compare
	// CompareAttrs compares two attributes of one tuple.
	CompareAttrs = pred.CompareAttrs
	// JoinCond is a join condition between outer and inner relations.
	JoinCond = pred.JoinCond
	// JoinTerm is one comparison of a join condition.
	JoinTerm = pred.JoinTerm
)

// Comparison operators.
const (
	EQ = pred.EQ
	NE = pred.NE
	LT = pred.LT
	LE = pred.LE
	GT = pred.GT
	GE = pred.GE
)

// And builds the conjunction of predicates.
func And(kids ...Pred) Pred { return pred.Conj(kids...) }

// Or builds the disjunction of predicates.
func Or(kids ...Pred) Pred { return pred.Disj(kids...) }

// Not negates a predicate.
func Not(kid Pred) Pred { return pred.Not{Kid: kid} }

// Equi returns an equi-join condition on the named attributes.
func Equi(left, right string) JoinCond { return pred.Equi(left, right) }

// Queries.
type (
	// Query is a bound query tree.
	Query = query.Tree
	// QueryNode is one node of an unbound query tree.
	QueryNode = query.Node
	// Footprint is the read/write set used for concurrency control.
	Footprint = query.Footprint
)

// Scan returns a leaf node reading the named relation.
func Scan(rel string) *QueryNode { return query.Scan(rel) }

// RestrictNode filters its input by p.
func RestrictNode(in *QueryNode, p Pred) *QueryNode { return query.Restrict(in, p) }

// JoinNode joins outer with inner under cond. Engines pick the kernel
// from cond: a hash join for equi-joins on integer or string
// attributes, nested loops otherwise; both produce identical results.
func JoinNode(outer, inner *QueryNode, cond JoinCond) *QueryNode {
	return query.Join(outer, inner, cond)
}

// ProjectNode projects its input onto cols, eliminating duplicates.
func ProjectNode(in *QueryNode, cols ...string) *QueryNode { return query.Project(in, cols...) }

// AppendNode appends its input's tuples to the named relation.
func AppendNode(dst string, in *QueryNode) *QueryNode { return query.Append(dst, in) }

// DeleteNode removes tuples satisfying p from the named relation.
func DeleteNode(rel string, p Pred) *QueryNode { return query.Delete(rel, p) }

// Analyze computes a query's read/write footprint.
func Analyze(root *QueryNode) Footprint { return query.Analyze(root) }

// Data-flow engine.
type (
	// EngineOptions configures the concurrent data-flow engine.
	EngineOptions = core.Options
	// Result is a query execution outcome: the answer plus traffic
	// statistics.
	Result = core.Result
	// EngineStats meters one execution.
	EngineStats = core.Stats
	// Granularity selects the scheduling unit (the paper's Section 3).
	Granularity = core.Granularity
	// ProjectStrategy selects the duplicate-elimination algorithm.
	ProjectStrategy = core.ProjectStrategy
)

// The three operand granularities of the paper's Section 3.
const (
	RelationLevel = core.RelationLevel
	PageLevel     = core.PageLevel
	TupleLevel    = core.TupleLevel
)

// Duplicate-elimination strategies for the project operator.
const (
	// ProjectSerialIC funnels every tuple through one controller (the
	// paper's open problem).
	ProjectSerialIC = core.ProjectSerialIC
	// ProjectPartitioned eliminates duplicates in hash partitions in
	// parallel.
	ProjectPartitioned = core.ProjectPartitioned
)

// BenchmarkConfig parameterizes the paper benchmark generator.
type BenchmarkConfig = workload.Config

// NestedLoopsJoin joins two relations with the paper's O(n·m)
// nested-loops kernel, exposed for benchmarking against HashJoin.
func NestedLoopsJoin(outer, inner *Relation, cond JoinCond, name string) (*Relation, error) {
	return relalg.NestedLoopsJoin(outer, inner, cond, name)
}

// HashJoin joins two relations with the equi-join hash kernel; the
// result is byte-identical to NestedLoopsJoin. The condition must
// carry an equality term on integer or string attributes.
func HashJoin(outer, inner *Relation, cond JoinCond, name string) (*Relation, error) {
	return relalg.HashJoin(outer, inner, cond, name)
}

package dfdbm

import (
	"dfdbm/internal/direct"
	"dfdbm/internal/query"
	"dfdbm/internal/relation"
)

// AdaptivePlan is a per-edge pipeline-vs-materialize decision for one
// query tree: every operand edge pipelines pages by default, but a
// join's inner operand whose estimated size fits the materialization
// budget is buffered whole before the join fires, trading pipelining
// for one build of the join state over a complete inner.
type AdaptivePlan = query.Plan

// DefaultMaterializeBudget is the materialization budget used when a
// caller passes budget <= 0: the page pool's default byte budget.
const DefaultMaterializeBudget = relation.DefaultPoolBudget

// PlanAdaptive computes the adaptive pipeline-vs-materialize plan for a
// bound query using catalog cardinalities and System R-style
// selectivity estimates. budget <= 0 selects
// DefaultMaterializeBudget.
func (db *DB) PlanAdaptive(q *Query, budget int64) (*AdaptivePlan, error) {
	if budget <= 0 {
		budget = DefaultMaterializeBudget
	}
	return query.PlanTree(q, db.cat, budget)
}

// ExplainAdaptive renders the query tree annotated with the plan's
// per-node cardinality estimates and per-edge execution modes.
func ExplainAdaptive(q *Query, p *AdaptivePlan) string { return query.RenderPlan(q, p) }

// ApplyAdaptivePlan marks the DIRECT profile's operand edges with the
// plan's materialization choices, so SimulateDIRECT stages those
// intermediates through mass storage while the rest of the tree keeps
// pipelining. The profile and plan must come from the same bound query.
func ApplyAdaptivePlan(prof *QueryProfile, q *Query, p *AdaptivePlan) {
	direct.ApplyPlan(prof, q, p)
}

package dfdbm

import (
	"context"
	"io"

	"dfdbm/internal/loadgen"
	"dfdbm/internal/sched"
)

// Load generation: declarative load profiles replayed against a served
// database over the wire protocol, with time compression, scheduled
// disturbances, per-interval SLO verdicts, and a live /loadgen view.
type (
	// LoadProfile is a parsed load profile (ParseLoadProfile): phases
	// with arrival patterns, query mixes, and SLOs, plus events.
	LoadProfile = loadgen.Profile
	// LoadRunConfig parameterizes RunLoad.
	LoadRunConfig = loadgen.RunConfig
	// LoadControl exposes in-process server hooks (maintenance
	// checkpoint, slowdown delay, scheduler gauges) to a load run.
	LoadControl = loadgen.Control
	// LoadReport is a finished run's timeline and per-phase SLO
	// verdicts.
	LoadReport = loadgen.Report
	// LoadRow is one timeline interval of a load run.
	LoadRow = loadgen.Row
	// LoadLive publishes a running replay's timeline as the /loadgen
	// HTTP endpoint (NewLoadLive).
	LoadLive = loadgen.Live
	// AutoscaleConfig bounds the serving scheduler's dynamic runner
	// pool (ServeConfig.Autoscale): the pool grows toward Max under
	// queue-depth or admit-wait pressure and shrinks toward Min when
	// idle.
	AutoscaleConfig = sched.AutoscaleConfig
)

// ParseLoadProfile parses a YAML load profile.
func ParseLoadProfile(src []byte) (*LoadProfile, error) {
	return loadgen.ParseProfile(src)
}

// RunLoad replays a profile and returns its timeline report. SLO
// failure is reported in LoadReport.Pass, not as an error.
func RunLoad(ctx context.Context, cfg LoadRunConfig) (*LoadReport, error) {
	return loadgen.Run(ctx, cfg)
}

// NewLoadLive returns the live timeline endpoint for a replay of the
// named profile; register it on an ObsServer under /loadgen.
func NewLoadLive(profile string) *LoadLive { return loadgen.NewLive(profile) }

// WriteLoadCSV writes a run's per-interval timeline as CSV.
func WriteLoadCSV(w io.Writer, rows []LoadRow) error {
	return loadgen.WriteCSV(w, rows)
}

// WriteLoadJSON writes the full report (rows, phase summaries,
// verdict) as indented JSON.
func WriteLoadJSON(w io.Writer, rep *LoadReport) error {
	return loadgen.WriteJSON(w, rep)
}

package dfdbm_test

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"dfdbm"
)

// TestLiveIntrospectionUnderLoad is the acceptance test for the -http
// introspection server: while the concurrent engine executes queries
// (spans and metrics flowing from many goroutines), a scraper hits
// /metrics (Prometheus exposition format), /spans (the live span
// tree), and /debug/pprof/profile. Run under -race this also pins the
// tracker's and registry's thread-safety.
func TestLiveIntrospectionUnderLoad(t *testing.T) {
	db := buildTinyDB(t)
	q, err := db.Parse(`project(join(restrict(orders, qty > 4), parts, pid = pid), [oid, pname])`)
	if err != nil {
		t.Fatal(err)
	}
	o := dfdbm.NewObserver(nil, dfdbm.NewMetrics(time.Millisecond))
	o.EnableSpans()
	srv, err := dfdbm.StartObsServer("127.0.0.1:0", o.Registry(), o.Spans(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Keep the engine busy in the background until the scrapes finish.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := db.Execute(q, dfdbm.EngineOptions{
				Granularity: dfdbm.PageLevel, Workers: 4, PageSize: 1024, Obs: o,
			}); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	// Prometheus scrape mid-run: the engine's counters must be present
	// in exposition format.
	deadline := time.Now().Add(5 * time.Second)
	for {
		m := get("/metrics")
		if strings.Contains(m, "# TYPE core_instruction_packets counter") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/metrics never showed engine counters:\n%s", m)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Live span tree and timelines respond while spans churn.
	if s := get("/spans"); !strings.Contains(s, `"active"`) {
		t.Errorf("/spans malformed: %s", s)
	}
	if tl := get("/timeline"); !strings.Contains(tl, `"timelines"`) {
		t.Errorf("/timeline malformed: %s", tl)
	}
	// A live CPU profile of the running process (the shortest pprof
	// window is one second).
	if p := get("/debug/pprof/profile?seconds=1"); len(p) == 0 {
		t.Error("/debug/pprof/profile returned an empty profile")
	}

	close(stop)
	wg.Wait()
	if err := o.Err(); err != nil {
		t.Fatal(err)
	}
	if o.Spans().ActiveCount() != 0 {
		t.Errorf("%d spans still open after the load stopped", o.Spans().ActiveCount())
	}
}

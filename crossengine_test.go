package dfdbm_test

import (
	"fmt"
	"testing"

	"dfdbm"
)

// TestCrossEngineEquivalence is the repository's strongest correctness
// property: for a stream of randomly generated query trees, four
// independent execution paths must compute the same multiset —
//
//  1. the serial reference executor,
//  2. the data-flow engine at page granularity,
//  3. the data-flow engine at relation granularity,
//  4. the ring data-flow machine (full MC/IC/IP packet protocol).
//
// Tuple granularity is included on a subset (it is quadratically more
// expensive to run).
func TestCrossEngineEquivalence(t *testing.T) {
	db, _, err := dfdbm.PaperBenchmark(dfdbm.BenchmarkConfig{
		Seed: 77, Scale: 0.04, PageSize: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	hw := dfdbm.DefaultHW()
	hw.PageSize = 1024

	trials := 25
	if testing.Short() {
		trials = 6
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("seed=%d", trial), func(t *testing.T) {
			q, err := dfdbm.RandomQuery(int64(1000+trial), db, 2, 4)
			if err != nil {
				t.Fatalf("generator: %v", err)
			}
			want, err := db.ExecuteSerial(q)
			if err != nil {
				t.Fatalf("serial: %v (query %v)", err, q)
			}

			grans := []dfdbm.Granularity{dfdbm.PageLevel, dfdbm.RelationLevel}
			if trial%5 == 0 {
				grans = append(grans, dfdbm.TupleLevel)
			}
			for _, g := range grans {
				res, err := db.Execute(q, dfdbm.EngineOptions{
					Granularity: g, Workers: 4, PageSize: 1024,
				})
				if err != nil {
					t.Fatalf("engine %v: %v (query %v)", g, err, q)
				}
				if !res.Relation.EqualMultiset(want) {
					t.Errorf("engine %v: %d tuples, serial %d (query %v)",
						g, res.Relation.Cardinality(), want.Cardinality(), q)
				}
			}

			m, err := dfdbm.NewMachine(db, dfdbm.MachineConfig{
				HW: hw, IPsPerInstruction: 3, IPBufferPages: 1, ICs: 24,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Submit(q); err != nil {
				t.Fatalf("machine submit: %v (query %v)", err, q)
			}
			res, err := m.Run()
			if err != nil {
				t.Fatalf("machine: %v (query %v)", err, q)
			}
			if !res.PerQuery[0].Relation.EqualMultiset(want) {
				t.Errorf("machine: %d tuples, serial %d (query %v)",
					res.PerQuery[0].Relation.Cardinality(), want.Cardinality(), q)
			}
		})
	}
}

// TestCrossEngineDirectRoutingEquivalence repeats the sweep with the
// Section 5 extension enabled, which stresses the direct-completion
// accounting.
func TestCrossEngineDirectRoutingEquivalence(t *testing.T) {
	db, _, err := dfdbm.PaperBenchmark(dfdbm.BenchmarkConfig{
		Seed: 78, Scale: 0.04, PageSize: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	hw := dfdbm.DefaultHW()
	hw.PageSize = 1024
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		q, err := dfdbm.RandomQuery(int64(2000+trial), db, 1, 4)
		if err != nil {
			t.Fatal(err)
		}
		want, err := db.ExecuteSerial(q)
		if err != nil {
			t.Fatal(err)
		}
		m, err := dfdbm.NewMachine(db, dfdbm.MachineConfig{
			HW: hw, DirectRouting: true, ICs: 24,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Submit(q); err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatalf("trial %d: %v (query %v)", trial, err, q)
		}
		if !res.PerQuery[0].Relation.EqualMultiset(want) {
			t.Errorf("trial %d: machine %d tuples, serial %d (query %v)",
				trial, res.PerQuery[0].Relation.Cardinality(), want.Cardinality(), q)
		}
	}
}

// TestRandomQueryDeterminism: identical seeds generate identical trees.
func TestRandomQueryDeterminism(t *testing.T) {
	db, _, err := dfdbm.PaperBenchmark(dfdbm.BenchmarkConfig{
		Seed: 77, Scale: 0.02, PageSize: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := dfdbm.RandomQuery(5, db, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dfdbm.RandomQuery(5, db, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("same seed, different trees:\n%s\n%s", a, b)
	}
	c, err := dfdbm.RandomQuery(6, db, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() == c.String() {
		t.Error("different seeds produced identical trees")
	}
}

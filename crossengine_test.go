package dfdbm_test

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"dfdbm"
)

// TestCrossEngineEquivalence is the repository's strongest correctness
// property: for a stream of randomly generated query trees, four
// independent execution paths must compute the same multiset —
//
//  1. the serial reference executor,
//  2. the data-flow engine at page granularity,
//  3. the data-flow engine at relation granularity,
//  4. the ring data-flow machine (full MC/IC/IP packet protocol).
//
// Tuple granularity is included on a subset (it is quadratically more
// expensive to run).
func TestCrossEngineEquivalence(t *testing.T) {
	db, _, err := dfdbm.PaperBenchmark(dfdbm.BenchmarkConfig{
		Seed: 77, Scale: 0.04, PageSize: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	hw := dfdbm.DefaultHW()
	hw.PageSize = 1024

	trials := 25
	if testing.Short() {
		trials = 6
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("seed=%d", trial), func(t *testing.T) {
			q, err := dfdbm.RandomQuery(int64(1000+trial), db, 2, 4)
			if err != nil {
				t.Fatalf("generator: %v", err)
			}
			want, err := db.ExecuteSerial(q)
			if err != nil {
				t.Fatalf("serial: %v (query %v)", err, q)
			}

			grans := []dfdbm.Granularity{dfdbm.PageLevel, dfdbm.RelationLevel}
			if trial%5 == 0 {
				grans = append(grans, dfdbm.TupleLevel)
			}
			for _, g := range grans {
				res, err := db.Execute(q, dfdbm.EngineOptions{
					Granularity: g, Workers: 4, PageSize: 1024,
				})
				if err != nil {
					t.Fatalf("engine %v: %v (query %v)", g, err, q)
				}
				if !res.Relation.EqualMultiset(want) {
					t.Errorf("engine %v: %d tuples, serial %d (query %v)",
						g, res.Relation.Cardinality(), want.Cardinality(), q)
				}
			}

			m, err := dfdbm.NewMachine(db, dfdbm.MachineConfig{
				HW: hw, IPsPerInstruction: 3, IPBufferPages: 1, ICs: 24,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Submit(q); err != nil {
				t.Fatalf("machine submit: %v (query %v)", err, q)
			}
			res, err := m.Run()
			if err != nil {
				t.Fatalf("machine: %v (query %v)", err, q)
			}
			if !res.PerQuery[0].Relation.EqualMultiset(want) {
				t.Errorf("machine: %d tuples, serial %d (query %v)",
					res.PerQuery[0].Relation.Cardinality(), want.Cardinality(), q)
			}
		})
	}
}

// TestCrossEngineDirectRoutingEquivalence repeats the sweep with the
// Section 5 extension enabled, which stresses the direct-completion
// accounting.
func TestCrossEngineDirectRoutingEquivalence(t *testing.T) {
	db, _, err := dfdbm.PaperBenchmark(dfdbm.BenchmarkConfig{
		Seed: 78, Scale: 0.04, PageSize: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	hw := dfdbm.DefaultHW()
	hw.PageSize = 1024
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		q, err := dfdbm.RandomQuery(int64(2000+trial), db, 1, 4)
		if err != nil {
			t.Fatal(err)
		}
		want, err := db.ExecuteSerial(q)
		if err != nil {
			t.Fatal(err)
		}
		m, err := dfdbm.NewMachine(db, dfdbm.MachineConfig{
			HW: hw, DirectRouting: true, ICs: 24,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Submit(q); err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatalf("trial %d: %v (query %v)", trial, err, q)
		}
		if !res.PerQuery[0].Relation.EqualMultiset(want) {
			t.Errorf("trial %d: machine %d tuples, serial %d (query %v)",
				trial, res.PerQuery[0].Relation.Cardinality(), want.Cardinality(), q)
		}
	}
}

// TestCrossEngineChaosEquivalence extends the equivalence sweep with
// fault injection: the ring machine running under a fault plan — two
// staggered IP crashes plus 1% packet loss and 0.5% duplication on
// every class — must still compute exactly what the functional
// data-flow engine and the serial reference compute. DFDBM_CHAOS_SEED
// pins the fault-plan seed (the CI chaos matrix sweeps three).
func TestCrossEngineChaosEquivalence(t *testing.T) {
	db, _, err := dfdbm.PaperBenchmark(dfdbm.BenchmarkConfig{
		Seed: 77, Scale: 0.04, PageSize: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	hw := dfdbm.DefaultHW()
	hw.PageSize = 1024

	faultSeeds := []int64{1, 2, 3}
	if s := os.Getenv("DFDBM_CHAOS_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("DFDBM_CHAOS_SEED=%q: %v", s, err)
		}
		faultSeeds = []int64{n}
	}

	trials := 6
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		for _, fseed := range faultSeeds {
			t.Run(fmt.Sprintf("query=%d/fault=%d", trial, fseed), func(t *testing.T) {
				q, err := dfdbm.RandomQuery(int64(3000+trial), db, 2, 4)
				if err != nil {
					t.Fatalf("generator: %v", err)
				}
				want, err := db.ExecuteSerial(q)
				if err != nil {
					t.Fatalf("serial: %v (query %v)", err, q)
				}
				res, err := db.Execute(q, dfdbm.EngineOptions{
					Granularity: dfdbm.PageLevel, Workers: 4, PageSize: 1024,
				})
				if err != nil {
					t.Fatalf("engine: %v (query %v)", err, q)
				}
				if !res.Relation.EqualMultiset(want) {
					t.Fatalf("engine: %d tuples, serial %d (query %v)",
						res.Relation.Cardinality(), want.Cardinality(), q)
				}

				m, err := dfdbm.NewMachine(db, dfdbm.MachineConfig{
					HW: hw, IPs: 8, IPsPerInstruction: 4, ICs: 24,
					Fault: dfdbm.NewFaultPlan(dfdbm.FaultConfig{
						Seed:    fseed,
						Crashes: dfdbm.CrashSpread(2, 2*time.Millisecond, 3*time.Millisecond),
						Drop:    dfdbm.UniformDrop(0.01),
						Dup:     dfdbm.UniformDrop(0.005),
					}),
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := m.Submit(q); err != nil {
					t.Fatalf("machine submit: %v (query %v)", err, q)
				}
				mres, err := m.Run()
				if err != nil {
					t.Fatalf("machine: %v (query %v)", err, q)
				}
				if !mres.PerQuery[0].Relation.EqualMultiset(want) {
					t.Errorf("machine under faults: %d tuples, serial %d (query %v)",
						mres.PerQuery[0].Relation.Cardinality(), want.Cardinality(), q)
				}
				if mres.Stats.IPsCrashed != 2 {
					t.Errorf("IPsCrashed = %d, want 2", mres.Stats.IPsCrashed)
				}
			})
		}
	}
}

// TestRandomQueryDeterminism: identical seeds generate identical trees.
func TestRandomQueryDeterminism(t *testing.T) {
	db, _, err := dfdbm.PaperBenchmark(dfdbm.BenchmarkConfig{
		Seed: 77, Scale: 0.02, PageSize: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := dfdbm.RandomQuery(5, db, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dfdbm.RandomQuery(5, db, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("same seed, different trees:\n%s\n%s", a, b)
	}
	c, err := dfdbm.RandomQuery(6, db, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() == c.String() {
		t.Error("different seeds produced identical trees")
	}
}

package dfdbm

import (
	"io"
	"time"

	"dfdbm/internal/obs"
)

// Observability layer: structured event tracing and a metrics registry
// shared by the concurrent engine (EngineOptions.Obs), the ring machine
// (MachineConfig.Obs), and the DIRECT simulator (DirectConfig.Obs).
type (
	// Observer couples a trace sink and a metrics registry; either half
	// may be nil. A nil *Observer disables observability entirely.
	Observer = obs.Observer
	// TraceEvent is one structured trace event.
	TraceEvent = obs.Event
	// TraceEventKind classifies a trace event.
	TraceEventKind = obs.EventKind
	// TraceSink receives trace events (text, JSONL, or Chrome formats).
	TraceSink = obs.Sink
	// Metrics is a registry of counters, gauges, sampled series, and
	// time-bucketed timelines.
	Metrics = obs.Registry
	// Timeline is a time-bucketed metric: Vals[i] sums the values
	// recorded in bucket i.
	Timeline = obs.Timeline
	// Series is a sampled (time, value) metric.
	Series = obs.Series

	// Span is one node of the causal span tree an Observer records when
	// spans are enabled (Observer.EnableSpans): queries, query-tree
	// nodes, instruction packets, processor bursts, broadcast rounds,
	// cache/disk transfers, and recovery episodes, each with a parent
	// link and attributed counters.
	Span = obs.Span
	// SpanData is an immutable snapshot of one span.
	SpanData = obs.SpanData
	// SpanTracker records spans and serves snapshots of the live tree.
	SpanTracker = obs.Tracker
	// Profile is the per-query-tree-node EXPLAIN ANALYZE report built
	// from a run's spans (BuildProfile).
	Profile = obs.Profile
	// ProfileNode is one node row of a Profile.
	ProfileNode = obs.NodeReport
	// ResourceSpec names a device and the busy timeline that measures
	// it, for saturation analysis.
	ResourceSpec = obs.ResourceSpec
	// SaturationReport ranks resources by peak utilization and names
	// the first to saturate.
	SaturationReport = obs.SaturationReport
	// ObsServer is the live introspection HTTP server (StartObsServer).
	ObsServer = obs.Server
	// Histogram is a fixed-bucket, lock-free latency/size histogram
	// with mergeable counters and interpolated quantile estimates
	// (Metrics.Histogram).
	Histogram = obs.Histogram
	// FlightRecorder is the bounded record of recent served queries:
	// the live in-flight table plus a ring of completed queries,
	// surfaced by the obs HTTP server as /queries and /queries/recent.
	FlightRecorder = obs.FlightRecorder
	// QueryRecord is one flight-recorder entry.
	QueryRecord = obs.QueryRecord
)

// BuildProfile folds a run's spans into the per-node EXPLAIN ANALYZE
// profile: firings, page and tuple counts, busy versus wait time,
// cache hit ratios, and critical-path (exclusive) contribution, with
// busy + wait + idle summing exactly to the makespan.
func BuildProfile(spans []SpanData, makespan time.Duration) *Profile {
	return obs.BuildProfile(spans, makespan)
}

// ReadSpans reconstructs the span tree from a JSONL trace stream
// previously written through a JSONL sink with spans enabled.
func ReadSpans(r io.Reader) ([]SpanData, error) { return obs.ReadSpans(r) }

// Saturation computes per-resource utilization timelines from the
// registry's busy metrics and reports which device saturates first.
func Saturation(m *Metrics, elapsed time.Duration, specs []ResourceSpec) *SaturationReport {
	return obs.Saturation(m, elapsed, specs)
}

// StartObsServer starts the live introspection HTTP server on addr,
// serving Prometheus-format /metrics, /spans (the active span tree),
// /timeline (raw busy timelines), /queries and /queries/recent (the
// flight recorder, when non-nil), and /debug/pprof/* while a
// simulation runs. Close the returned server when done.
func StartObsServer(addr string, m *Metrics, spans *SpanTracker, flight *FlightRecorder) (*obs.Server, error) {
	return obs.StartServer(addr, m, spans, flight)
}

// NewObserver couples a trace sink and a metrics registry; either may
// be nil.
func NewObserver(sink TraceSink, metrics *Metrics) *Observer { return obs.New(sink, metrics) }

// NewMetrics returns a metrics registry whose timelines use the given
// bucket width (0 means the 100 ms default).
func NewMetrics(bucket time.Duration) *Metrics { return obs.NewRegistry(bucket) }

// NewTraceSink builds a trace sink of the named format over w: "text"
// (the legacy human-readable trace; also the default for ""), "jsonl"
// (one JSON object per event), or "chrome" (Chrome trace-event JSON,
// loadable in Perfetto or chrome://tracing).
func NewTraceSink(format string, w io.Writer) (TraceSink, error) { return obs.NewSink(format, w) }

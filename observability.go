package dfdbm

import (
	"io"
	"time"

	"dfdbm/internal/obs"
)

// Observability layer: structured event tracing and a metrics registry
// shared by the concurrent engine (EngineOptions.Obs), the ring machine
// (MachineConfig.Obs), and the DIRECT simulator (DirectConfig.Obs).
type (
	// Observer couples a trace sink and a metrics registry; either half
	// may be nil. A nil *Observer disables observability entirely.
	Observer = obs.Observer
	// TraceEvent is one structured trace event.
	TraceEvent = obs.Event
	// TraceEventKind classifies a trace event.
	TraceEventKind = obs.EventKind
	// TraceSink receives trace events (text, JSONL, or Chrome formats).
	TraceSink = obs.Sink
	// Metrics is a registry of counters, gauges, sampled series, and
	// time-bucketed timelines.
	Metrics = obs.Registry
	// Timeline is a time-bucketed metric: Vals[i] sums the values
	// recorded in bucket i.
	Timeline = obs.Timeline
	// Series is a sampled (time, value) metric.
	Series = obs.Series
)

// NewObserver couples a trace sink and a metrics registry; either may
// be nil.
func NewObserver(sink TraceSink, metrics *Metrics) *Observer { return obs.New(sink, metrics) }

// NewMetrics returns a metrics registry whose timelines use the given
// bucket width (0 means the 100 ms default).
func NewMetrics(bucket time.Duration) *Metrics { return obs.NewRegistry(bucket) }

// NewTraceSink builds a trace sink of the named format over w: "text"
// (the legacy human-readable trace; also the default for ""), "jsonl"
// (one JSON object per event), or "chrome" (Chrome trace-event JSON,
// loadable in Perfetto or chrome://tracing).
func NewTraceSink(format string, w io.Writer) (TraceSink, error) { return obs.NewSink(format, w) }

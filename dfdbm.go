// Package dfdbm is a working reproduction of Boral and DeWitt's 1979
// design study "Design Considerations for Data-flow Database Machines"
// (SIGMOD 1980): a relational algebra engine that executes query trees
// data-flow style at a selectable operand granularity — relation, page,
// or tuple — together with discrete-event simulators of the two machines
// the paper discusses (DIRECT, and the ring-based data-flow machine of
// its Section 4) and the experiment harness that regenerates every
// table and figure of the paper's evaluation.
//
// The central result reproduced here is the paper's: page-level
// granularity is the right scheduling unit for data-flow query
// processing — relation-level granularity forfeits pipelining and pays
// to move intermediate relations through mass storage, while
// tuple-level granularity floods the arbitration network with an order
// of magnitude more traffic for no additional concurrency.
//
// # Quick start
//
//	db := dfdbm.NewDB()
//	parts := dfdbm.MustNewRelation("parts", dfdbm.MustSchema(
//		dfdbm.Attr{Name: "pid", Type: dfdbm.Int32},
//		dfdbm.Attr{Name: "weight", Type: dfdbm.Int32},
//	), 4096)
//	_ = parts.Insert(dfdbm.Tuple{dfdbm.IntVal(1), dfdbm.IntVal(12)})
//	db.Put(parts)
//
//	q, _ := db.Parse(`restrict(parts, weight > 10)`)
//	res, _ := db.Execute(q, dfdbm.EngineOptions{Granularity: dfdbm.PageLevel})
//	fmt.Println(res.Relation.Cardinality(), res.Stats.ArbitrationBytes)
package dfdbm

import (
	"context"
	"io"
	"math/rand"

	"dfdbm/internal/catalog"
	"dfdbm/internal/core"
	"dfdbm/internal/query"
	"dfdbm/internal/relation"
	"dfdbm/internal/workload"
)

// DB is a database: a catalog of named relations plus the engines that
// execute queries against it.
type DB struct {
	cat *catalog.Catalog
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{cat: catalog.New()} }

// Put adds or replaces a relation in the database.
func (db *DB) Put(r *Relation) { db.cat.Put(r) }

// Get returns the named relation.
func (db *DB) Get(name string) (*Relation, error) { return db.cat.Get(name) }

// Drop removes the named relation, reporting whether it existed.
func (db *DB) Drop(name string) bool { return db.cat.Drop(name) }

// Names returns the sorted names of all relations.
func (db *DB) Names() []string { return db.cat.Names() }

// TotalBytes returns the database's storage footprint.
func (db *DB) TotalBytes() int { return db.cat.TotalBytes() }

// Catalog exposes the underlying catalog for the simulator APIs.
func (db *DB) Catalog() *Catalog { return db.cat }

// Parse parses a query in the textual language and binds it against
// the database:
//
//	project(join(restrict(orders, qty > 10), parts, pid = pid), [oid, pname])
//
// See the internal/query package documentation for the full grammar.
func (db *DB) Parse(src string) (*Query, error) {
	root, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	return query.Bind(root, db.cat)
}

// Bind validates a programmatically built query tree against the
// database. Trees are built with the Scan/RestrictNode/JoinNode/...
// constructors re-exported by this package.
func (db *DB) Bind(root *QueryNode) (*Query, error) {
	return query.Bind(root, db.cat)
}

// Execute runs a bound query on the concurrent data-flow engine.
func (db *DB) Execute(q *Query, opts EngineOptions) (*Result, error) {
	return core.New(db.cat, opts).Execute(q)
}

// ExecuteContext is Execute under a context: cancellation or timeout
// stops the run's workers and returns the context's error.
func (db *DB) ExecuteContext(ctx context.Context, q *Query, opts EngineOptions) (*Result, error) {
	return core.New(db.cat, opts).ExecuteContext(ctx, q)
}

// ExecuteSerial runs a bound query on the single-processor reference
// executor (the baseline of the paper's Section 2.1 discussion).
func (db *DB) ExecuteSerial(q *Query) (*Relation, error) {
	return query.ExecuteSerial(db.cat, q, 0)
}

// PaperBenchmark builds the paper's evaluation workload: the database
// of 15 relations (5.5 MB at scale 1.0) and its ten-query benchmark,
// bound and ready to execute.
func PaperBenchmark(cfg BenchmarkConfig) (*DB, []*Query, error) {
	cat, qs, err := workload.Build(cfg)
	if err != nil {
		return nil, nil, err
	}
	return &DB{cat: cat}, qs, nil
}

// RandomQuery generates a random bound query over a PaperBenchmark
// database: restricts, up to `joins` joins, and an occasional project,
// to a tree height of `depth`. Identical seeds yield identical trees.
// The generator backs the cross-engine equivalence fuzz tests.
func RandomQuery(seed int64, db *DB, joins, depth int) (*Query, error) {
	rng := rand.New(rand.NewSource(seed))
	return workload.RandomQuery(rng, db.cat, joins, depth)
}

// SaveFile writes the database to the named file in the dfdbm binary
// format. Loading it back with OpenDB yields byte-identical relations.
func (db *DB) SaveFile(path string) error { return db.cat.SaveFile(path) }

// Save writes the database to w in the dfdbm binary format.
func (db *DB) Save(w io.Writer) error { return db.cat.Save(w) }

// OpenDB reads a database previously written by SaveFile.
func OpenDB(path string) (*DB, error) {
	cat, err := catalog.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return &DB{cat: cat}, nil
}

// LoadDB reads a database from r (the dfdbm binary format).
func LoadDB(r io.Reader) (*DB, error) {
	cat, err := catalog.Load(r)
	if err != nil {
		return nil, err
	}
	return &DB{cat: cat}, nil
}

// Explain renders a query tree as ASCII art in the style of the
// paper's Figure 2.1 (operators above their operands).
func Explain(q *Query) string { return query.RenderTree(q) }

// ImportCSV reads CSV (header row, then data rows matching the schema)
// into a new relation and adds it to the database.
func (db *DB) ImportCSV(name string, schema *Schema, r io.Reader, pageSize int) (*Relation, error) {
	rel, err := relation.ReadCSV(r, name, schema, pageSize)
	if err != nil {
		return nil, err
	}
	db.Put(rel)
	return rel, nil
}

// ExportCSV writes the named relation as CSV.
func (db *DB) ExportCSV(name string, w io.Writer) error {
	rel, err := db.Get(name)
	if err != nil {
		return err
	}
	return rel.WriteCSV(w)
}

// MustSchema builds a schema or panics; for statically known schemas.
func MustSchema(attrs ...Attr) *Schema { return relation.MustSchema(attrs...) }

// NewSchema builds a schema from attributes.
func NewSchema(attrs ...Attr) (*Schema, error) { return relation.NewSchema(attrs...) }

// NewRelation creates an empty relation with the given page size.
func NewRelation(name string, schema *Schema, pageSize int) (*Relation, error) {
	return relation.New(name, schema, pageSize)
}

// MustNewRelation is NewRelation but panics on error.
func MustNewRelation(name string, schema *Schema, pageSize int) *Relation {
	return relation.MustNew(name, schema, pageSize)
}

package dfdbm_test

import (
	"strings"
	"testing"

	"dfdbm"
)

// buildTinyDB assembles a small database through the public API only.
func buildTinyDB(t testing.TB) *dfdbm.DB {
	t.Helper()
	db := dfdbm.NewDB()

	parts := dfdbm.MustNewRelation("parts", dfdbm.MustSchema(
		dfdbm.Attr{Name: "pid", Type: dfdbm.Int32},
		dfdbm.Attr{Name: "weight", Type: dfdbm.Int32},
		dfdbm.Attr{Name: "pname", Type: dfdbm.String, Width: 12},
	), 1024)
	for i := 0; i < 40; i++ {
		if err := parts.Insert(dfdbm.Tuple{
			dfdbm.IntVal(int64(i)),
			dfdbm.IntVal(int64(i * 3 % 50)),
			dfdbm.StringVal("part"),
		}); err != nil {
			t.Fatal(err)
		}
	}
	db.Put(parts)

	orders := dfdbm.MustNewRelation("orders", dfdbm.MustSchema(
		dfdbm.Attr{Name: "oid", Type: dfdbm.Int32},
		dfdbm.Attr{Name: "pid", Type: dfdbm.Int32},
		dfdbm.Attr{Name: "qty", Type: dfdbm.Int32},
	), 1024)
	for i := 0; i < 100; i++ {
		if err := orders.Insert(dfdbm.Tuple{
			dfdbm.IntVal(int64(1000 + i)),
			dfdbm.IntVal(int64(i % 40)),
			dfdbm.IntVal(int64(i % 9)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	db.Put(orders)
	return db
}

func TestPublicAPIQuickstart(t *testing.T) {
	db := buildTinyDB(t)
	if len(db.Names()) != 2 || db.TotalBytes() == 0 {
		t.Fatalf("db setup wrong: %v", db.Names())
	}
	q, err := db.Parse(`project(join(restrict(orders, qty > 4), parts, pid = pid), [oid, pname])`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	res, err := db.Execute(q, dfdbm.EngineOptions{Granularity: dfdbm.PageLevel, PageSize: 1024})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	want, err := db.ExecuteSerial(q)
	if err != nil {
		t.Fatalf("ExecuteSerial: %v", err)
	}
	if !res.Relation.EqualMultiset(want) {
		t.Errorf("engine %d tuples, serial %d", res.Relation.Cardinality(), want.Cardinality())
	}
	if res.Stats.InstructionPackets == 0 {
		t.Error("no traffic metered")
	}
}

func TestPublicAPIBuilders(t *testing.T) {
	db := buildTinyDB(t)
	root := dfdbm.ProjectNode(
		dfdbm.JoinNode(
			dfdbm.RestrictNode(dfdbm.Scan("orders"),
				dfdbm.And(
					dfdbm.Compare{Attr: "qty", Op: dfdbm.GE, Const: dfdbm.IntVal(2)},
					dfdbm.Not(dfdbm.Compare{Attr: "qty", Op: dfdbm.EQ, Const: dfdbm.IntVal(5)}),
				)),
			dfdbm.Scan("parts"),
			dfdbm.Equi("pid", "pid"),
		),
		"oid", "weight",
	)
	q, err := db.Bind(root)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	res, err := db.Execute(q, dfdbm.EngineOptions{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	want, _ := db.ExecuteSerial(q)
	if !res.Relation.EqualMultiset(want) {
		t.Error("builder query wrong")
	}
	fp := dfdbm.Analyze(root)
	if strings.Join(fp.Reads, ",") != "orders,parts" || len(fp.Writes) != 0 {
		t.Errorf("footprint = %+v", fp)
	}
}

func TestPublicAPIGranularities(t *testing.T) {
	db := buildTinyDB(t)
	q, err := db.Parse(`join(restrict(orders, qty > 3), restrict(parts, weight < 30), pid = pid)`)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := db.ExecuteSerial(q)
	for _, g := range []dfdbm.Granularity{dfdbm.RelationLevel, dfdbm.PageLevel, dfdbm.TupleLevel} {
		res, err := db.Execute(q, dfdbm.EngineOptions{Granularity: g, PageSize: 1024})
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if !res.Relation.EqualMultiset(want) {
			t.Errorf("%v granularity wrong", g)
		}
	}
}

func TestPublicAPIPaperBenchmark(t *testing.T) {
	db, qs, err := dfdbm.PaperBenchmark(dfdbm.BenchmarkConfig{Seed: 2, Scale: 0.02, PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 10 || len(db.Names()) != 15 {
		t.Fatalf("benchmark shape wrong: %d queries, %d relations", len(qs), len(db.Names()))
	}
	res, err := db.Execute(qs[2], dfdbm.EngineOptions{PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := db.ExecuteSerial(qs[2])
	if !res.Relation.EqualMultiset(want) {
		t.Error("benchmark query 3 wrong")
	}
}

func TestPublicAPIDirectSimulator(t *testing.T) {
	db, qs, err := dfdbm.PaperBenchmark(dfdbm.BenchmarkConfig{Seed: 2, Scale: 0.05, PageSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	profiles, err := dfdbm.ProfileQueries(db, qs, 2048)
	if err != nil {
		t.Fatal(err)
	}
	hw := dfdbm.DefaultHW()
	hw.PageSize = 2048
	rep, err := dfdbm.SimulateDIRECT(dfdbm.DirectConfig{Processors: 8, HW: hw}, profiles)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Elapsed <= 0 || rep.ProcCacheMbps() <= 0 {
		t.Errorf("report empty: %+v", rep)
	}
	tp := dfdbm.TrafficExample(1000, 1000, 1000, 0)
	if tp.Ratio() != 10 {
		t.Errorf("Section 3.3 ratio = %g", tp.Ratio())
	}
}

func TestPublicAPIRingMachine(t *testing.T) {
	db, qs, err := dfdbm.PaperBenchmark(dfdbm.BenchmarkConfig{Seed: 2, Scale: 0.05, PageSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	hw := dfdbm.DefaultHW()
	hw.PageSize = 2048
	m, err := dfdbm.NewMachine(db, dfdbm.MachineConfig{HW: hw})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(qs[2]); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := db.ExecuteSerial(qs[2])
	if !res.PerQuery[0].Relation.EqualMultiset(want) {
		t.Error("ring machine wrong through public API")
	}
}

func TestPublicAPIRingNetworks(t *testing.T) {
	res, err := dfdbm.SimulateRing(dfdbm.RingConfig{
		Kind: dfdbm.DLCN, Nodes: 8, Messages: 200, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 200 || res.MeanDelay <= 0 {
		t.Errorf("ring result: %+v", res)
	}
}

func TestPublicAPIFigures(t *testing.T) {
	figs := dfdbm.Figures()
	if len(figs) != 11 {
		t.Fatalf("got %d figures", len(figs))
	}
	out, err := figs[1].Render(dfdbm.FigureParams{Scale: 0.02, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "tuple-level") {
		t.Errorf("table33 output: %s", out)
	}
}

func TestPublicAPIUpdates(t *testing.T) {
	db := buildTinyDB(t)
	archive := dfdbm.MustNewRelation("archive", dfdbm.MustSchema(
		dfdbm.Attr{Name: "oid", Type: dfdbm.Int32},
		dfdbm.Attr{Name: "pid", Type: dfdbm.Int32},
		dfdbm.Attr{Name: "qty", Type: dfdbm.Int32},
	), 1024)
	db.Put(archive)

	app, err := db.Parse(`append(archive, restrict(orders, qty = 0))`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute(app, dfdbm.EngineOptions{PageSize: 1024}); err != nil {
		t.Fatal(err)
	}
	if archive.Cardinality() == 0 {
		t.Error("append moved nothing")
	}
	del, err := db.Parse(`delete(orders, qty = 0)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute(del, dfdbm.EngineOptions{}); err != nil {
		t.Fatal(err)
	}
	orders, _ := db.Get("orders")
	left := 0
	_ = orders.Each(func(tup dfdbm.Tuple) bool {
		if tup[2].Int == 0 {
			left++
		}
		return true
	})
	if left != 0 {
		t.Errorf("%d qty=0 rows survived delete", left)
	}
}

func TestPublicAPIPersistence(t *testing.T) {
	db, qs, err := dfdbm.PaperBenchmark(dfdbm.BenchmarkConfig{Seed: 2, Scale: 0.02, PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/bench.dfdbm"
	if err := db.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	loaded, err := dfdbm.OpenDB(path)
	if err != nil {
		t.Fatalf("OpenDB: %v", err)
	}
	if len(loaded.Names()) != 15 {
		t.Fatalf("loaded %d relations", len(loaded.Names()))
	}
	// Queries against the loaded database give the same answers.
	q, err := loaded.Parse(qs[2].String())
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.ExecuteSerial(q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.ExecuteSerial(qs[2])
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualMultiset(want) {
		t.Error("loaded database computes different answers")
	}
}

func TestPublicAPICSV(t *testing.T) {
	db := buildTinyDB(t)
	var buf strings.Builder
	if err := db.ExportCSV("parts", &buf); err != nil {
		t.Fatalf("ExportCSV: %v", err)
	}
	schema := dfdbm.MustSchema(
		dfdbm.Attr{Name: "pid", Type: dfdbm.Int32},
		dfdbm.Attr{Name: "weight", Type: dfdbm.Int32},
		dfdbm.Attr{Name: "pname", Type: dfdbm.String, Width: 12},
	)
	re, err := db.ImportCSV("parts2", schema, strings.NewReader(buf.String()), 1024)
	if err != nil {
		t.Fatalf("ImportCSV: %v", err)
	}
	orig, _ := db.Get("parts")
	if !re.EqualMultiset(orig) {
		t.Error("CSV round trip through the public API changed contents")
	}
	if err := db.ExportCSV("missing", &buf); err == nil {
		t.Error("ExportCSV of missing relation succeeded")
	}
}

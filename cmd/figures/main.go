// Command figures regenerates every table and figure of the paper's
// evaluation, printing each as an aligned text table. With no flags it
// prints everything in paper order.
//
// Usage:
//
//	figures [-only fig31,fig42,table33,joins,rings,broadcast,routing,project,concurrency] [-scale 1.0] [-seed 5]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dfdbm/internal/figures"
)

func main() {
	only := flag.String("only", "", "comma-separated figure ids (default: all)")
	scale := flag.Float64("scale", 1.0, "database scale factor (1.0 = the paper's 5.5 MB)")
	seed := flag.Int64("seed", 5, "workload generator seed")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	all := figures.All()
	ran := 0
	for _, f := range all {
		if len(want) > 0 && !want[f.ID] {
			continue
		}
		out, err := f.Render(figures.Params{Scale: *scale, Seed: *seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s: %v\n", f.ID, err)
			os.Exit(1)
		}
		fmt.Println(out)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "figures: no figure matched %q; known ids:", *only)
		for _, f := range all {
			fmt.Fprintf(os.Stderr, " %s", f.ID)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"dfdbm"
	"dfdbm/internal/heap"
	"dfdbm/internal/obs"
	"dfdbm/internal/pred"
	"dfdbm/internal/relalg"
	"dfdbm/internal/relation"
)

// The machine-readable benchmark harness behind `dfdbm bench -json`.
// It measures the hot execution path the ISSUE's cost model is
// dominated by — the per-page-pair join kernel and the page traffic
// around it — and emits BENCH_machine.json so future changes can be
// diffed against these numbers.

// benchEntry is one measured benchmark in the JSON report.
type benchEntry struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// benchReport is the whole BENCH_machine.json document.
type benchReport struct {
	Harness    string  `json:"harness"`
	Scale      float64 `json:"scale"`
	Seed       int64   `json:"seed"`
	PageSize   int     `json:"page_size"`
	JoinTuples int     `json:"join_tuples"`

	Benchmarks []benchEntry `json:"benchmarks"`

	// EquijoinHashSpeedup is nested-loops ns/op over hash ns/op on the
	// large equi-join workload.
	EquijoinHashSpeedup float64 `json:"equijoin_hash_speedup"`
	// MachineAllocReduction is the fractional allocs/op saved by the
	// page pool on the machine hot-path benchmark (0.5 = half).
	MachineAllocReduction float64 `json:"machine_alloc_reduction"`
	// EnginesMatchSerial records the cross-engine identity check: the
	// functional engine and the ring machine produced results identical
	// to the serial reference on the paper queries.
	EnginesMatchSerial bool `json:"engines_match_serial"`
}

// benchBestRound runs each benchmark `reps` times, interleaved
// round-robin, and keeps each one's fastest round. Microbenchmarks in
// the microsecond range are dominated by scheduler and frequency noise
// on a shared CI runner, and the noise arrives in multi-second
// throttle windows: interleaving spreads one benchmark's rounds across
// the whole measurement span so a throttled window costs every
// benchmark one round instead of one benchmark all of its rounds, and
// the per-benchmark minimum converges on the noise floor — the stable
// quantity the regression gate should compare.
func benchBestRound(reps int, fns ...func(b *testing.B)) []testing.BenchmarkResult {
	best := make([]testing.BenchmarkResult, len(fns))
	bestNs := make([]float64, len(fns))
	for round := 0; round < reps; round++ {
		for i, fn := range fns {
			r := testing.Benchmark(fn)
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			if round == 0 || ns < bestNs[i] {
				best[i], bestNs[i] = r, ns
			}
		}
	}
	return best
}

func entryFrom(name string, r testing.BenchmarkResult, metrics map[string]float64) benchEntry {
	return benchEntry{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Metrics:     metrics,
	}
}

// buildEquiJoinWorkload builds the large synthetic equi-join inputs:
// n tuples per side, 64-bit keys in pseudo-random order, exactly one
// inner match per outer tuple.
func buildEquiJoinWorkload(n, pageSize int) (outer, inner *relation.Relation, cond pred.JoinCond, err error) {
	oschema, err := relation.NewSchema(
		relation.Attr{Name: "ok", Type: relation.Int64},
		relation.Attr{Name: "ov", Type: relation.Int64},
	)
	if err != nil {
		return nil, nil, cond, err
	}
	ischema, err := relation.NewSchema(
		relation.Attr{Name: "ik", Type: relation.Int64},
		relation.Attr{Name: "iv", Type: relation.Int64},
	)
	if err != nil {
		return nil, nil, cond, err
	}
	outer, err = relation.New("bench_outer", oschema, pageSize)
	if err != nil {
		return nil, nil, cond, err
	}
	inner, err = relation.New("bench_inner", ischema, pageSize)
	if err != nil {
		return nil, nil, cond, err
	}
	// Two different full-cycle permutations of 0..n-1 so matching pairs
	// land on unrelated page positions.
	perm := func(i, a, b int) int64 { return int64((i*a + b) % n) }
	for i := 0; i < n; i++ {
		if err := outer.Insert(relation.Tuple{relation.IntVal(perm(i, 7, 3)), relation.IntVal(int64(i))}); err != nil {
			return nil, nil, cond, err
		}
		if err := inner.Insert(relation.Tuple{relation.IntVal(perm(i, 11, 5)), relation.IntVal(int64(i))}); err != nil {
			return nil, nil, cond, err
		}
	}
	return outer, inner, pred.Equi("ok", "ik"), nil
}

// benchEquiJoin times the nested-loops and hash kernels on the large
// workload and verifies the hash result is byte-identical first.
func benchEquiJoin(n, pageSize int) (nested, hash benchEntry, speedup float64, err error) {
	outer, inner, cond, err := buildEquiJoinWorkload(n, pageSize)
	if err != nil {
		return nested, hash, 0, err
	}
	ref, err := relalg.NestedLoopsJoin(outer, inner, cond, "ref")
	if err != nil {
		return nested, hash, 0, err
	}
	got, err := relalg.HashJoin(outer, inner, cond, "ref")
	if err != nil {
		return nested, hash, 0, err
	}
	if err := relationsIdentical(ref, got); err != nil {
		return nested, hash, 0, fmt.Errorf("hash kernel result differs from nested loops: %w", err)
	}

	nr := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := relalg.NestedLoopsJoin(outer, inner, cond, "out"); err != nil {
				b.Fatal(err)
			}
		}
	})
	hr := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := relalg.HashJoin(outer, inner, cond, "out"); err != nil {
				b.Fatal(err)
			}
		}
	})

	// One instrumented pass for the kernel counters.
	bound, err := cond.Bind(outer.Schema(), inner.Schema())
	if err != nil {
		return nested, hash, 0, err
	}
	var ks relalg.KernelStats
	st := relalg.NewJoinState(bound, &ks)
	st.MaxTables = inner.NumPages()
	sink := func([]byte) error { return nil }
	for _, op := range outer.Pages() {
		for _, ip := range inner.Pages() {
			if _, err := st.JoinPages(op, ip, sink); err != nil {
				return nested, hash, 0, err
			}
		}
	}
	k := ks.Load()

	pairs := float64(outer.Cardinality()) * float64(inner.Cardinality())
	nested = entryFrom("equijoin/nested-loops", nr, map[string]float64{
		"tuple_pairs": pairs,
		"tuples_out":  float64(ref.Cardinality()),
	})
	hash = entryFrom("equijoin/hash", hr, map[string]float64{
		"hash_probes":     float64(k.HashProbes),
		"hash_builds":     float64(k.HashBuilds),
		"hash_table_hits": float64(k.TableHits),
		"tuples_out":      float64(got.Cardinality()),
	})
	speedup = nested.NsPerOp / hash.NsPerOp
	return nested, hash, speedup, nil
}

// benchHashPhases splits the equi-join hash kernel into its two phases:
// building the per-inner-page hash tables and probing with every table
// resident (the steady state of the machine's broadcast join, where one
// inner page's table serves a run of outer pages).
func benchHashPhases(n, pageSize int) (build, probe benchEntry, err error) {
	outer, inner, cond, err := buildEquiJoinWorkload(n, pageSize)
	if err != nil {
		return build, probe, err
	}
	bound, err := cond.Bind(outer.Schema(), inner.Schema())
	if err != nil {
		return build, probe, err
	}
	innerPages := inner.Pages()

	st := relalg.NewJoinState(bound, nil)
	st.MaxTables = len(innerPages)
	// Probe gets its own state with every table resident, so the two
	// phases stay independent under interleaved measurement.
	pst := relalg.NewJoinState(bound, nil)
	pst.MaxTables = len(innerPages)
	for _, ip := range innerPages {
		pst.Build(ip)
	}
	sink := func([]byte) error { return nil }
	rs := benchBestRound(5,
		func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				st.Reset() // drop the tables so every iteration builds anew
				for _, ip := range innerPages {
					st.Build(ip)
				}
			}
		},
		func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, op := range outer.Pages() {
					for _, ip := range innerPages {
						if _, err := pst.JoinPages(op, ip, sink); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
		})
	br, pr := rs[0], rs[1]
	build = entryFrom("equijoin/hash-build", br, map[string]float64{
		"inner_pages":  float64(len(innerPages)),
		"inner_tuples": float64(inner.Cardinality()),
	})
	probe = entryFrom("equijoin/hash-probe", pr, map[string]float64{
		"outer_tuples": float64(outer.Cardinality()),
		"inner_pages":  float64(len(innerPages)),
	})
	return build, probe, nil
}

// benchKernels measures the page kernels head to head on the paper
// database's r5: the scalar tuple-at-a-time restrict against the
// batched bitmap kernel, the batched project, and the fused
// restrict+project loop. The batched kernels' results are verified
// byte-identical to the scalar kernels' by TestBatchKernels; here they
// are only timed.
func benchKernels(db *dfdbm.DB) ([]benchEntry, error) {
	rel, err := db.Get("r5")
	if err != nil {
		return nil, err
	}
	p := pred.Compare{Attr: "k1", Op: pred.LT, Const: relation.IntVal(50)}
	bound, err := p.Bind(rel.Schema())
	if err != nil {
		return nil, err
	}
	pj, err := relalg.NewProjector(rel.Schema(), "k1", "val")
	if err != nil {
		return nil, err
	}
	pages := rel.Pages()
	sink := func([]byte) error { return nil }
	tuples := float64(rel.Cardinality())

	rs := relalg.NewRestrictState(bound)
	ps := relalg.NewProjectState(pj)
	d := relalg.NewDedup()
	results := benchBestRound(5,
		func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, pg := range pages {
					if _, err := relalg.RestrictPage(pg, bound, sink); err != nil {
						b.Fatal(err)
					}
				}
			}
		},
		func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, pg := range pages {
					if _, err := rs.RestrictPage(pg, sink); err != nil {
						b.Fatal(err)
					}
				}
			}
		},
		func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d.Reset()
				for _, pg := range pages {
					if _, err := ps.ProjectPage(pg, d, sink); err != nil {
						b.Fatal(err)
					}
				}
			}
		},
		func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d.Reset()
				for _, pg := range pages {
					if _, err := rs.RestrictProjectPage(pg, pj, d, sink); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	scalar, batch, project, fused := results[0], results[1], results[2], results[3]
	vec := 0.0
	if rs.Vectorized() {
		vec = 1
	}
	return []benchEntry{
		entryFrom("kernel/restrict-scalar", scalar, map[string]float64{"tuples": tuples}),
		entryFrom("kernel/restrict-batch", batch, map[string]float64{"tuples": tuples, "vectorized": vec}),
		entryFrom("kernel/project-batch", project, map[string]float64{"tuples": tuples}),
		entryFrom("kernel/restrict-project-fused", fused, map[string]float64{"tuples": tuples, "vectorized": vec}),
	}, nil
}

// benchHeap measures the paged-storage path on the paper database's
// r5: a full scan with the buffer pool far below the relation (every
// page faults and a victim evicts — the disk-bound cold case), the
// same scan with the pool above the relation (steady-state cache
// hits), and stored appends streaming post-image pages through the
// pool under eviction and write-back pressure.
func benchHeap(db *dfdbm.DB) ([]benchEntry, error) {
	src, err := db.Get("r5")
	if err != nil {
		return nil, err
	}
	n := src.NumPages()
	adopt := func(name string, frames int, reg *obs.Registry) (*relation.Relation, *heap.Store, error) {
		dir, err := os.MkdirTemp("", "dfdbm-bench-heap-")
		if err != nil {
			return nil, nil, err
		}
		st, err := heap.OpenStore(dir, frames, obs.New(nil, reg))
		if err != nil {
			os.RemoveAll(dir)
			return nil, nil, err
		}
		rel := src.Clone(name)
		if err := st.Adopt(rel, 1); err != nil {
			st.Close()
			os.RemoveAll(dir)
			return nil, nil, err
		}
		return rel, st, nil
	}
	coldFrames := n / 8
	if coldFrames < 2 {
		coldFrames = 2
	}
	coldReg := obs.NewRegistry(time.Second)
	cold, coldStore, err := adopt("bench_heap_cold", coldFrames, coldReg)
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(coldStore.Dir())
	defer coldStore.Close()
	warmReg := obs.NewRegistry(time.Second)
	warm, warmStore, err := adopt("bench_heap_warm", n+8, warmReg)
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(warmStore.Dir())
	defer warmStore.Close()
	appReg := obs.NewRegistry(time.Second)
	app, appStore, err := adopt("bench_heap_app", coldFrames, appReg)
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(appStore.Dir())
	defer appStore.Close()

	scan := func(rel *relation.Relation) error {
		tuples := 0
		return rel.EachPage(func(pg *relation.Page) error {
			tuples += pg.TupleCount()
			return nil
		})
	}
	if err := scan(warm); err != nil { // warm the pool before measuring
		return nil, err
	}
	const appendBatch = 256
	raw := append([]byte(nil), src.Page(0).RawTuple(0)...)

	rs := benchBestRound(3,
		func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := scan(cold); err != nil {
					b.Fatal(err)
				}
			}
		},
		func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := scan(warm); err != nil {
					b.Fatal(err)
				}
			}
		},
		func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for j := 0; j < appendBatch; j++ {
					if err := app.InsertRaw(raw); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	hitRate := func(reg *obs.Registry) float64 {
		hits, misses := float64(reg.Counter("bufpool.hits")), float64(reg.Counter("bufpool.misses"))
		if hits+misses == 0 {
			return 0
		}
		return hits / (hits + misses)
	}
	return []benchEntry{
		entryFrom("heap/scan-cold", rs[0], map[string]float64{
			"pages":     float64(n),
			"frames":    float64(coldFrames),
			"evictions": float64(coldReg.Counter("bufpool.evictions")),
			"hit_rate":  hitRate(coldReg),
		}),
		entryFrom("heap/scan-warm", rs[1], map[string]float64{
			"pages":    float64(n),
			"frames":   float64(n + 8),
			"hit_rate": hitRate(warmReg),
		}),
		entryFrom("heap/append", rs[2], map[string]float64{
			"tuples_per_op": appendBatch,
			"frames":        float64(coldFrames),
			"writebacks":    float64(appReg.Counter("bufpool.writebacks")),
		}),
	}, nil
}

// benchMachineHotPath measures the machine's per-IP hot loop — pooled
// paginator out, JoinState kernel, operand pages recycled after use —
// with and without the page pool, over a paper-sized join.
func benchMachineHotPath(db *dfdbm.DB, pageSize int) (pooled, bare benchEntry, reduction float64, err error) {
	outer, err := db.Get("r5")
	if err != nil {
		return pooled, bare, 0, err
	}
	inner, err := db.Get("r11")
	if err != nil {
		return pooled, bare, 0, err
	}
	cond := pred.Equi("k3", "k3")
	bound, err := cond.Bind(outer.Schema(), inner.Schema())
	if err != nil {
		return pooled, bare, 0, err
	}
	schema, err := relalg.JoinSchema(outer, inner)
	if err != nil {
		return pooled, bare, 0, err
	}
	tupleLen := schema.TupleLen()
	outSize := relation.PageHeaderLen + 8*tupleLen

	run := func(pool *relation.PagePool, ks *relalg.KernelStats) error {
		st := relalg.NewJoinState(bound, ks)
		st.MaxTables = inner.NumPages()
		pag, err := relation.NewPooledPaginator(outSize, tupleLen, pool)
		if err != nil {
			return err
		}
		emit := func(raw []byte) error {
			full, err := pag.Add(raw)
			if err != nil {
				return err
			}
			if full != nil {
				pool.Put(full) // the consumer is done with it
			}
			return nil
		}
		for _, op := range outer.Pages() {
			// Each outer page probes every resident inner page, as one
			// IP does across the broadcast rounds of Section 4.2.
			for _, ip := range inner.Pages() {
				if _, err := st.JoinPages(op, ip, emit); err != nil {
					return err
				}
			}
		}
		if last := pag.Flush(); last != nil {
			pool.Put(last)
		}
		return nil
	}

	var ks relalg.KernelStats
	pool := relation.NewPagePool()
	pr := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := run(pool, &ks); err != nil {
				b.Fatal(err)
			}
		}
	})
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := run(nil, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	ps := pool.Stats()
	k := ks.Load()
	pooled = entryFrom("machine/hot-path/pooled", pr, map[string]float64{
		"pool_hits":      float64(ps.Hits),
		"pool_misses":    float64(ps.Misses),
		"pages_recycled": float64(ps.Recycled),
		"hash_probes":    float64(k.HashProbes),
		"hash_builds":    float64(k.HashBuilds),
	})
	bare = entryFrom("machine/hot-path/no-pool", br, nil)
	if bare.AllocsPerOp > 0 {
		reduction = 1 - float64(pooled.AllocsPerOp)/float64(bare.AllocsPerOp)
	}
	return pooled, bare, reduction, nil
}

// benchMachineRun measures a full ring-machine multi-query run (paper
// queries 1, 3, 6) and reports the pool and kernel counters alongside
// the simulated makespan.
func benchMachineRun(db *dfdbm.DB, queries []*dfdbm.Query, pageSize int) (benchEntry, error) {
	hw := dfdbm.DefaultHW()
	hw.PageSize = pageSize
	var res *dfdbm.MachineResults
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m, err := dfdbm.NewMachine(db, dfdbm.MachineConfig{HW: hw, ICs: 16, IPs: 16})
			if err != nil {
				b.Fatal(err)
			}
			for _, n := range []int{0, 2, 5} {
				if err := m.Submit(queries[n]); err != nil {
					b.Fatal(err)
				}
			}
			res, err = m.Run()
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	s := res.Stats
	return entryFrom("machine/ring-run", r, map[string]float64{
		"sim_makespan_seconds": res.Elapsed.Seconds(),
		"pool_hits":            float64(s.PoolHits),
		"pool_misses":          float64(s.PoolMisses),
		"pages_recycled":       float64(s.PagesRecycled),
		"hash_probes":          float64(s.HashProbes),
		"hash_builds":          float64(s.HashBuilds),
		"hash_table_hits":      float64(s.HashTableHits),
		"nested_pairs":         float64(s.NestedPairs),
	}), nil
}

// benchDirectRun measures the DIRECT simulator on the paper benchmark
// and reports its page-descriptor recycling.
func benchDirectRun(db *dfdbm.DB, queries []*dfdbm.Query, pageSize int) (benchEntry, error) {
	profiles, err := dfdbm.ProfileQueries(db, queries, pageSize)
	if err != nil {
		return benchEntry{}, err
	}
	hw := dfdbm.DefaultHW()
	hw.PageSize = pageSize
	var rep dfdbm.DirectReport
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var err error
			rep, err = dfdbm.SimulateDIRECT(dfdbm.DirectConfig{Processors: 16, HW: hw}, profiles)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	return entryFrom("direct/run", r, map[string]float64{
		"sim_elapsed_seconds": rep.Elapsed.Seconds(),
		"pages_recycled":      float64(rep.PagesRecycled),
		"disk_reads":          float64(rep.DiskReads),
		"disk_writes":         float64(rep.DiskWrites),
	}), nil
}

// checkEnginesMatchSerial runs the paper join/project queries through
// the functional engine and the ring machine and compares both against
// the serial reference.
func checkEnginesMatchSerial(db *dfdbm.DB, queries []*dfdbm.Query, pageSize int) error {
	hw := dfdbm.DefaultHW()
	hw.PageSize = pageSize
	for _, n := range []int{0, 2, 5} {
		q := queries[n]
		want, err := db.ExecuteSerial(q)
		if err != nil {
			return err
		}
		res, err := db.Execute(q, dfdbm.EngineOptions{Granularity: dfdbm.PageLevel, Workers: 4, PageSize: pageSize})
		if err != nil {
			return err
		}
		if !res.Relation.EqualMultiset(want) {
			return fmt.Errorf("query %d: functional engine differs from serial reference", n+1)
		}
		m, err := dfdbm.NewMachine(db, dfdbm.MachineConfig{HW: hw})
		if err != nil {
			return err
		}
		if err := m.Submit(q); err != nil {
			return err
		}
		mres, err := m.Run()
		if err != nil {
			return err
		}
		if !mres.PerQuery[0].Relation.EqualMultiset(want) {
			return fmt.Errorf("query %d: ring machine differs from serial reference", n+1)
		}
	}
	return nil
}

func relationsIdentical(a, b *relation.Relation) error {
	if a.Cardinality() != b.Cardinality() {
		return fmt.Errorf("cardinality %d vs %d", a.Cardinality(), b.Cardinality())
	}
	if !a.EqualMultiset(b) {
		return fmt.Errorf("tuple sets differ")
	}
	return nil
}

// writeBenchProfile re-runs the ring-machine multi-query workload once
// with spans and per-bucket metrics enabled and writes the EXPLAIN
// ANALYZE + saturation report as JSON. CI uploads the file next to
// BENCH_machine.json so every build carries its own attribution
// artifact.
func writeBenchProfile(db *dfdbm.DB, queries []*dfdbm.Query, out string, pageSize int) error {
	hw := dfdbm.DefaultHW()
	hw.PageSize = pageSize
	o := dfdbm.NewObserver(nil, dfdbm.NewMetrics(time.Millisecond))
	o.EnableSpans()
	m, err := dfdbm.NewMachine(db, dfdbm.MachineConfig{HW: hw, ICs: 16, IPs: 16, Obs: o})
	if err != nil {
		return err
	}
	for _, n := range []int{0, 2, 5} {
		if err := m.Submit(queries[n]); err != nil {
			return err
		}
	}
	res, err := m.Run()
	if err != nil {
		return err
	}
	prof := dfdbm.BuildProfile(o.Spans().Snapshot(), res.Elapsed)
	sat := dfdbm.Saturation(o.Registry(), res.Elapsed, m.Resources())
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := prof.JSON(f, sat); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// benchFilter is the parsed -only flag: comma-separated benchmark name
// prefixes. An empty filter matches everything.
type benchFilter []string

func parseBenchFilter(s string) benchFilter {
	var f benchFilter
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			f = append(f, p)
		}
	}
	return f
}

func (f benchFilter) match(names ...string) bool {
	if len(f) == 0 {
		return true
	}
	for _, n := range names {
		for _, p := range f {
			if strings.HasPrefix(n, p) {
				return true
			}
		}
	}
	return false
}

// compareBenchReports guards against performance regressions: it loads
// the committed baseline report and a fresh one and fails when any
// benchmark present in both lost more than 25% throughput (fresh
// ns/op more than 4/3 of the baseline). New benchmarks — present only
// in the fresh report — pass; a benchmark that disappeared is an
// error, since silently dropping a measurement is how regressions
// hide. A non-empty filter restricts the comparison to the baseline
// entries the fresh (filtered) run was asked to measure.
func compareBenchReports(basePath, freshPath string, filter benchFilter) error {
	load := func(path string) (benchReport, error) {
		var rep benchReport
		f, err := os.Open(path)
		if err != nil {
			return rep, err
		}
		defer f.Close()
		return rep, json.NewDecoder(f).Decode(&rep)
	}
	base, err := load(basePath)
	if err != nil {
		return fmt.Errorf("bench compare: baseline %s: %w", basePath, err)
	}
	fresh, err := load(freshPath)
	if err != nil {
		return fmt.Errorf("bench compare: fresh %s: %w", freshPath, err)
	}
	freshByName := map[string]benchEntry{}
	for _, b := range fresh.Benchmarks {
		freshByName[b.Name] = b
	}
	const floor = 0.75 // fresh throughput must stay above 75% of baseline
	var regressed []string
	compared := 0
	for _, old := range base.Benchmarks {
		if !filter.match(old.Name) {
			continue
		}
		compared++
		now, ok := freshByName[old.Name]
		if !ok {
			return fmt.Errorf("bench compare: %s is in the baseline but missing from the fresh report", old.Name)
		}
		if old.NsPerOp <= 0 || now.NsPerOp <= 0 {
			continue
		}
		ratio := old.NsPerOp / now.NsPerOp // relative throughput: <1 means slower now
		verdict := "ok"
		if ratio < floor {
			verdict = "REGRESSION"
			regressed = append(regressed,
				fmt.Sprintf("%s: %.0f -> %.0f ns/op (%.0f%% of baseline throughput)", old.Name, old.NsPerOp, now.NsPerOp, 100*ratio))
		}
		fmt.Printf("bench compare: %-28s %10.0f -> %10.0f ns/op  %5.2fx  %s\n",
			old.Name, old.NsPerOp, now.NsPerOp, ratio, verdict)
	}
	if len(regressed) > 0 {
		msg := "bench compare: throughput regressed more than 25%:"
		for _, r := range regressed {
			msg += "\n  " + r
		}
		return fmt.Errorf("%s", msg)
	}
	fmt.Printf("bench compare: %d benchmarks within 25%% of %s\n", compared, basePath)
	return nil
}

// runBenchJSON runs the harness and writes the report. A non-empty
// filter runs only the sections whose benchmark names it matches.
func runBenchJSON(db *dfdbm.DB, queries []*dfdbm.Query, out string, scale float64, seed int64, pageSize, joinTuples int, filter benchFilter) {
	rep := benchReport{
		Harness:    "dfdbm bench -json",
		Scale:      scale,
		Seed:       seed,
		PageSize:   pageSize,
		JoinTuples: joinTuples,
	}

	if filter.match("equijoin/nested-loops", "equijoin/hash") {
		fmt.Fprintf(os.Stderr, "bench: large equi-join (%d x %d tuples), nested vs hash...\n", joinTuples, joinTuples)
		nested, hash, speedup, err := benchEquiJoin(joinTuples, pageSize)
		check(err)
		rep.Benchmarks = append(rep.Benchmarks, nested, hash)
		rep.EquijoinHashSpeedup = speedup
		fmt.Fprintf(os.Stderr, "bench:   nested %.0f ns/op, hash %.0f ns/op — %.1fx\n",
			nested.NsPerOp, hash.NsPerOp, speedup)
	}

	if filter.match("equijoin/hash-build", "equijoin/hash-probe") {
		fmt.Fprintln(os.Stderr, "bench: hash-join build and probe phases...")
		build, probe, err := benchHashPhases(joinTuples, pageSize)
		check(err)
		rep.Benchmarks = append(rep.Benchmarks, build, probe)
		fmt.Fprintf(os.Stderr, "bench:   build %.0f ns/op, probe %.0f ns/op\n",
			build.NsPerOp, probe.NsPerOp)
	}

	if filter.match("kernel/restrict-scalar", "kernel/restrict-batch",
		"kernel/project-batch", "kernel/restrict-project-fused") {
		fmt.Fprintln(os.Stderr, "bench: page kernels, scalar vs batched...")
		kernels, err := benchKernels(db)
		check(err)
		rep.Benchmarks = append(rep.Benchmarks, kernels...)
		for _, k := range kernels {
			fmt.Fprintf(os.Stderr, "bench:   %-28s %.0f ns/op\n", k.Name, k.NsPerOp)
		}
	}

	if filter.match("heap/scan-cold", "heap/scan-warm", "heap/append") {
		fmt.Fprintln(os.Stderr, "bench: heap storage, cold vs warm scans and stored appends...")
		hb, err := benchHeap(db)
		check(err)
		rep.Benchmarks = append(rep.Benchmarks, hb...)
		for _, k := range hb {
			fmt.Fprintf(os.Stderr, "bench:   %-28s %.0f ns/op\n", k.Name, k.NsPerOp)
		}
	}

	if filter.match("machine/hot-path/pooled", "machine/hot-path/no-pool") {
		fmt.Fprintln(os.Stderr, "bench: machine hot path, pooled vs no-pool...")
		pooled, bare, reduction, err := benchMachineHotPath(db, pageSize)
		check(err)
		rep.Benchmarks = append(rep.Benchmarks, pooled, bare)
		rep.MachineAllocReduction = reduction
		fmt.Fprintf(os.Stderr, "bench:   %d vs %d allocs/op — %.0f%% fewer\n",
			pooled.AllocsPerOp, bare.AllocsPerOp, 100*reduction)
	}

	if filter.match("machine/ring-run") {
		fmt.Fprintln(os.Stderr, "bench: ring-machine multi-query run...")
		mrun, err := benchMachineRun(db, queries, pageSize)
		check(err)
		rep.Benchmarks = append(rep.Benchmarks, mrun)
	}

	if filter.match("direct/run") {
		fmt.Fprintln(os.Stderr, "bench: DIRECT benchmark run...")
		drun, err := benchDirectRun(db, queries, pageSize)
		check(err)
		rep.Benchmarks = append(rep.Benchmarks, drun)
	}

	if len(filter) == 0 {
		fmt.Fprintln(os.Stderr, "bench: cross-engine identity check...")
		check(checkEnginesMatchSerial(db, queries, pageSize))
		rep.EnginesMatchSerial = true
	}

	f, err := os.Create(out)
	check(err)
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	check(enc.Encode(rep))
	check(f.Close())
	if len(filter) == 0 {
		fmt.Printf("bench: wrote %s (equi-join speedup %.1fx, hot-path alloc reduction %.0f%%, engines match serial: %v)\n",
			out, rep.EquijoinHashSpeedup, 100*rep.MachineAllocReduction, rep.EnginesMatchSerial)
	} else {
		fmt.Printf("bench: wrote %s (%d benchmarks, filter %q)\n", out, len(rep.Benchmarks), strings.Join(filter, ","))
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"dfdbm"
	"dfdbm/internal/pred"
	"dfdbm/internal/relalg"
	"dfdbm/internal/relation"
)

// The machine-readable benchmark harness behind `dfdbm bench -json`.
// It measures the hot execution path the ISSUE's cost model is
// dominated by — the per-page-pair join kernel and the page traffic
// around it — and emits BENCH_machine.json so future changes can be
// diffed against these numbers.

// benchEntry is one measured benchmark in the JSON report.
type benchEntry struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// benchReport is the whole BENCH_machine.json document.
type benchReport struct {
	Harness    string  `json:"harness"`
	Scale      float64 `json:"scale"`
	Seed       int64   `json:"seed"`
	PageSize   int     `json:"page_size"`
	JoinTuples int     `json:"join_tuples"`

	Benchmarks []benchEntry `json:"benchmarks"`

	// EquijoinHashSpeedup is nested-loops ns/op over hash ns/op on the
	// large equi-join workload.
	EquijoinHashSpeedup float64 `json:"equijoin_hash_speedup"`
	// MachineAllocReduction is the fractional allocs/op saved by the
	// page pool on the machine hot-path benchmark (0.5 = half).
	MachineAllocReduction float64 `json:"machine_alloc_reduction"`
	// EnginesMatchSerial records the cross-engine identity check: the
	// functional engine and the ring machine produced results identical
	// to the serial reference on the paper queries.
	EnginesMatchSerial bool `json:"engines_match_serial"`
}

func entryFrom(name string, r testing.BenchmarkResult, metrics map[string]float64) benchEntry {
	return benchEntry{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Metrics:     metrics,
	}
}

// buildEquiJoinWorkload builds the large synthetic equi-join inputs:
// n tuples per side, 64-bit keys in pseudo-random order, exactly one
// inner match per outer tuple.
func buildEquiJoinWorkload(n, pageSize int) (outer, inner *relation.Relation, cond pred.JoinCond, err error) {
	oschema, err := relation.NewSchema(
		relation.Attr{Name: "ok", Type: relation.Int64},
		relation.Attr{Name: "ov", Type: relation.Int64},
	)
	if err != nil {
		return nil, nil, cond, err
	}
	ischema, err := relation.NewSchema(
		relation.Attr{Name: "ik", Type: relation.Int64},
		relation.Attr{Name: "iv", Type: relation.Int64},
	)
	if err != nil {
		return nil, nil, cond, err
	}
	outer, err = relation.New("bench_outer", oschema, pageSize)
	if err != nil {
		return nil, nil, cond, err
	}
	inner, err = relation.New("bench_inner", ischema, pageSize)
	if err != nil {
		return nil, nil, cond, err
	}
	// Two different full-cycle permutations of 0..n-1 so matching pairs
	// land on unrelated page positions.
	perm := func(i, a, b int) int64 { return int64((i*a + b) % n) }
	for i := 0; i < n; i++ {
		if err := outer.Insert(relation.Tuple{relation.IntVal(perm(i, 7, 3)), relation.IntVal(int64(i))}); err != nil {
			return nil, nil, cond, err
		}
		if err := inner.Insert(relation.Tuple{relation.IntVal(perm(i, 11, 5)), relation.IntVal(int64(i))}); err != nil {
			return nil, nil, cond, err
		}
	}
	return outer, inner, pred.Equi("ok", "ik"), nil
}

// benchEquiJoin times the nested-loops and hash kernels on the large
// workload and verifies the hash result is byte-identical first.
func benchEquiJoin(n, pageSize int) (nested, hash benchEntry, speedup float64, err error) {
	outer, inner, cond, err := buildEquiJoinWorkload(n, pageSize)
	if err != nil {
		return nested, hash, 0, err
	}
	ref, err := relalg.NestedLoopsJoin(outer, inner, cond, "ref")
	if err != nil {
		return nested, hash, 0, err
	}
	got, err := relalg.HashJoin(outer, inner, cond, "ref")
	if err != nil {
		return nested, hash, 0, err
	}
	if err := relationsIdentical(ref, got); err != nil {
		return nested, hash, 0, fmt.Errorf("hash kernel result differs from nested loops: %w", err)
	}

	nr := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := relalg.NestedLoopsJoin(outer, inner, cond, "out"); err != nil {
				b.Fatal(err)
			}
		}
	})
	hr := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := relalg.HashJoin(outer, inner, cond, "out"); err != nil {
				b.Fatal(err)
			}
		}
	})

	// One instrumented pass for the kernel counters.
	bound, err := cond.Bind(outer.Schema(), inner.Schema())
	if err != nil {
		return nested, hash, 0, err
	}
	var ks relalg.KernelStats
	st := relalg.NewJoinState(bound, &ks)
	st.MaxTables = inner.NumPages()
	sink := func([]byte) error { return nil }
	for _, op := range outer.Pages() {
		for _, ip := range inner.Pages() {
			if _, err := st.JoinPages(op, ip, sink); err != nil {
				return nested, hash, 0, err
			}
		}
	}
	k := ks.Load()

	pairs := float64(outer.Cardinality()) * float64(inner.Cardinality())
	nested = entryFrom("equijoin/nested-loops", nr, map[string]float64{
		"tuple_pairs": pairs,
		"tuples_out":  float64(ref.Cardinality()),
	})
	hash = entryFrom("equijoin/hash", hr, map[string]float64{
		"hash_probes":     float64(k.HashProbes),
		"hash_builds":     float64(k.HashBuilds),
		"hash_table_hits": float64(k.TableHits),
		"tuples_out":      float64(got.Cardinality()),
	})
	speedup = nested.NsPerOp / hash.NsPerOp
	return nested, hash, speedup, nil
}

// benchMachineHotPath measures the machine's per-IP hot loop — pooled
// paginator out, JoinState kernel, operand pages recycled after use —
// with and without the page pool, over a paper-sized join.
func benchMachineHotPath(db *dfdbm.DB, pageSize int) (pooled, bare benchEntry, reduction float64, err error) {
	outer, err := db.Get("r5")
	if err != nil {
		return pooled, bare, 0, err
	}
	inner, err := db.Get("r11")
	if err != nil {
		return pooled, bare, 0, err
	}
	cond := pred.Equi("k3", "k3")
	bound, err := cond.Bind(outer.Schema(), inner.Schema())
	if err != nil {
		return pooled, bare, 0, err
	}
	schema, err := relalg.JoinSchema(outer, inner)
	if err != nil {
		return pooled, bare, 0, err
	}
	tupleLen := schema.TupleLen()
	outSize := relation.PageHeaderLen + 8*tupleLen

	run := func(pool *relation.PagePool, ks *relalg.KernelStats) error {
		st := relalg.NewJoinState(bound, ks)
		st.MaxTables = inner.NumPages()
		pag, err := relation.NewPooledPaginator(outSize, tupleLen, pool)
		if err != nil {
			return err
		}
		emit := func(raw []byte) error {
			full, err := pag.Add(raw)
			if err != nil {
				return err
			}
			if full != nil {
				pool.Put(full) // the consumer is done with it
			}
			return nil
		}
		for _, op := range outer.Pages() {
			// Each outer page probes every resident inner page, as one
			// IP does across the broadcast rounds of Section 4.2.
			for _, ip := range inner.Pages() {
				if _, err := st.JoinPages(op, ip, emit); err != nil {
					return err
				}
			}
		}
		if last := pag.Flush(); last != nil {
			pool.Put(last)
		}
		return nil
	}

	var ks relalg.KernelStats
	pool := relation.NewPagePool()
	pr := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := run(pool, &ks); err != nil {
				b.Fatal(err)
			}
		}
	})
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := run(nil, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	ps := pool.Stats()
	k := ks.Load()
	pooled = entryFrom("machine/hot-path/pooled", pr, map[string]float64{
		"pool_hits":      float64(ps.Hits),
		"pool_misses":    float64(ps.Misses),
		"pages_recycled": float64(ps.Recycled),
		"hash_probes":    float64(k.HashProbes),
		"hash_builds":    float64(k.HashBuilds),
	})
	bare = entryFrom("machine/hot-path/no-pool", br, nil)
	if bare.AllocsPerOp > 0 {
		reduction = 1 - float64(pooled.AllocsPerOp)/float64(bare.AllocsPerOp)
	}
	return pooled, bare, reduction, nil
}

// benchMachineRun measures a full ring-machine multi-query run (paper
// queries 1, 3, 6) and reports the pool and kernel counters alongside
// the simulated makespan.
func benchMachineRun(db *dfdbm.DB, queries []*dfdbm.Query, pageSize int) (benchEntry, error) {
	hw := dfdbm.DefaultHW()
	hw.PageSize = pageSize
	var res *dfdbm.MachineResults
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m, err := dfdbm.NewMachine(db, dfdbm.MachineConfig{HW: hw, ICs: 16, IPs: 16})
			if err != nil {
				b.Fatal(err)
			}
			for _, n := range []int{0, 2, 5} {
				if err := m.Submit(queries[n]); err != nil {
					b.Fatal(err)
				}
			}
			res, err = m.Run()
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	s := res.Stats
	return entryFrom("machine/ring-run", r, map[string]float64{
		"sim_makespan_seconds": res.Elapsed.Seconds(),
		"pool_hits":            float64(s.PoolHits),
		"pool_misses":          float64(s.PoolMisses),
		"pages_recycled":       float64(s.PagesRecycled),
		"hash_probes":          float64(s.HashProbes),
		"hash_builds":          float64(s.HashBuilds),
		"hash_table_hits":      float64(s.HashTableHits),
		"nested_pairs":         float64(s.NestedPairs),
	}), nil
}

// benchDirectRun measures the DIRECT simulator on the paper benchmark
// and reports its page-descriptor recycling.
func benchDirectRun(db *dfdbm.DB, queries []*dfdbm.Query, pageSize int) (benchEntry, error) {
	profiles, err := dfdbm.ProfileQueries(db, queries, pageSize)
	if err != nil {
		return benchEntry{}, err
	}
	hw := dfdbm.DefaultHW()
	hw.PageSize = pageSize
	var rep dfdbm.DirectReport
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var err error
			rep, err = dfdbm.SimulateDIRECT(dfdbm.DirectConfig{Processors: 16, HW: hw}, profiles)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	return entryFrom("direct/run", r, map[string]float64{
		"sim_elapsed_seconds": rep.Elapsed.Seconds(),
		"pages_recycled":      float64(rep.PagesRecycled),
		"disk_reads":          float64(rep.DiskReads),
		"disk_writes":         float64(rep.DiskWrites),
	}), nil
}

// checkEnginesMatchSerial runs the paper join/project queries through
// the functional engine and the ring machine and compares both against
// the serial reference.
func checkEnginesMatchSerial(db *dfdbm.DB, queries []*dfdbm.Query, pageSize int) error {
	hw := dfdbm.DefaultHW()
	hw.PageSize = pageSize
	for _, n := range []int{0, 2, 5} {
		q := queries[n]
		want, err := db.ExecuteSerial(q)
		if err != nil {
			return err
		}
		res, err := db.Execute(q, dfdbm.EngineOptions{Granularity: dfdbm.PageLevel, Workers: 4, PageSize: pageSize})
		if err != nil {
			return err
		}
		if !res.Relation.EqualMultiset(want) {
			return fmt.Errorf("query %d: functional engine differs from serial reference", n+1)
		}
		m, err := dfdbm.NewMachine(db, dfdbm.MachineConfig{HW: hw})
		if err != nil {
			return err
		}
		if err := m.Submit(q); err != nil {
			return err
		}
		mres, err := m.Run()
		if err != nil {
			return err
		}
		if !mres.PerQuery[0].Relation.EqualMultiset(want) {
			return fmt.Errorf("query %d: ring machine differs from serial reference", n+1)
		}
	}
	return nil
}

func relationsIdentical(a, b *relation.Relation) error {
	if a.Cardinality() != b.Cardinality() {
		return fmt.Errorf("cardinality %d vs %d", a.Cardinality(), b.Cardinality())
	}
	if !a.EqualMultiset(b) {
		return fmt.Errorf("tuple sets differ")
	}
	return nil
}

// writeBenchProfile re-runs the ring-machine multi-query workload once
// with spans and per-bucket metrics enabled and writes the EXPLAIN
// ANALYZE + saturation report as JSON. CI uploads the file next to
// BENCH_machine.json so every build carries its own attribution
// artifact.
func writeBenchProfile(db *dfdbm.DB, queries []*dfdbm.Query, out string, pageSize int) error {
	hw := dfdbm.DefaultHW()
	hw.PageSize = pageSize
	o := dfdbm.NewObserver(nil, dfdbm.NewMetrics(time.Millisecond))
	o.EnableSpans()
	m, err := dfdbm.NewMachine(db, dfdbm.MachineConfig{HW: hw, ICs: 16, IPs: 16, Obs: o})
	if err != nil {
		return err
	}
	for _, n := range []int{0, 2, 5} {
		if err := m.Submit(queries[n]); err != nil {
			return err
		}
	}
	res, err := m.Run()
	if err != nil {
		return err
	}
	prof := dfdbm.BuildProfile(o.Spans().Snapshot(), res.Elapsed)
	sat := dfdbm.Saturation(o.Registry(), res.Elapsed, m.Resources())
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := prof.JSON(f, sat); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// compareBenchReports guards against performance regressions: it loads
// the committed baseline report and a fresh one and fails when any
// benchmark present in both lost more than 25% throughput (fresh
// ns/op more than 4/3 of the baseline). New benchmarks — present only
// in the fresh report — pass; a benchmark that disappeared is an
// error, since silently dropping a measurement is how regressions
// hide.
func compareBenchReports(basePath, freshPath string) error {
	load := func(path string) (benchReport, error) {
		var rep benchReport
		f, err := os.Open(path)
		if err != nil {
			return rep, err
		}
		defer f.Close()
		return rep, json.NewDecoder(f).Decode(&rep)
	}
	base, err := load(basePath)
	if err != nil {
		return fmt.Errorf("bench compare: baseline %s: %w", basePath, err)
	}
	fresh, err := load(freshPath)
	if err != nil {
		return fmt.Errorf("bench compare: fresh %s: %w", freshPath, err)
	}
	freshByName := map[string]benchEntry{}
	for _, b := range fresh.Benchmarks {
		freshByName[b.Name] = b
	}
	const floor = 0.75 // fresh throughput must stay above 75% of baseline
	var regressed []string
	for _, old := range base.Benchmarks {
		now, ok := freshByName[old.Name]
		if !ok {
			return fmt.Errorf("bench compare: %s is in the baseline but missing from the fresh report", old.Name)
		}
		if old.NsPerOp <= 0 || now.NsPerOp <= 0 {
			continue
		}
		ratio := old.NsPerOp / now.NsPerOp // relative throughput: <1 means slower now
		verdict := "ok"
		if ratio < floor {
			verdict = "REGRESSION"
			regressed = append(regressed,
				fmt.Sprintf("%s: %.0f -> %.0f ns/op (%.0f%% of baseline throughput)", old.Name, old.NsPerOp, now.NsPerOp, 100*ratio))
		}
		fmt.Printf("bench compare: %-28s %10.0f -> %10.0f ns/op  %5.2fx  %s\n",
			old.Name, old.NsPerOp, now.NsPerOp, ratio, verdict)
	}
	if len(regressed) > 0 {
		msg := "bench compare: throughput regressed more than 25%:"
		for _, r := range regressed {
			msg += "\n  " + r
		}
		return fmt.Errorf("%s", msg)
	}
	fmt.Printf("bench compare: %d benchmarks within 25%% of %s\n", len(base.Benchmarks), basePath)
	return nil
}

// runBenchJSON runs the harness and writes the report.
func runBenchJSON(db *dfdbm.DB, queries []*dfdbm.Query, out string, scale float64, seed int64, pageSize, joinTuples int) {
	rep := benchReport{
		Harness:    "dfdbm bench -json",
		Scale:      scale,
		Seed:       seed,
		PageSize:   pageSize,
		JoinTuples: joinTuples,
	}

	fmt.Fprintf(os.Stderr, "bench: large equi-join (%d x %d tuples), nested vs hash...\n", joinTuples, joinTuples)
	nested, hash, speedup, err := benchEquiJoin(joinTuples, pageSize)
	check(err)
	rep.Benchmarks = append(rep.Benchmarks, nested, hash)
	rep.EquijoinHashSpeedup = speedup
	fmt.Fprintf(os.Stderr, "bench:   nested %.0f ns/op, hash %.0f ns/op — %.1fx\n",
		nested.NsPerOp, hash.NsPerOp, speedup)

	fmt.Fprintln(os.Stderr, "bench: machine hot path, pooled vs no-pool...")
	pooled, bare, reduction, err := benchMachineHotPath(db, pageSize)
	check(err)
	rep.Benchmarks = append(rep.Benchmarks, pooled, bare)
	rep.MachineAllocReduction = reduction
	fmt.Fprintf(os.Stderr, "bench:   %d vs %d allocs/op — %.0f%% fewer\n",
		pooled.AllocsPerOp, bare.AllocsPerOp, 100*reduction)

	fmt.Fprintln(os.Stderr, "bench: ring-machine multi-query run...")
	mrun, err := benchMachineRun(db, queries, pageSize)
	check(err)
	rep.Benchmarks = append(rep.Benchmarks, mrun)

	fmt.Fprintln(os.Stderr, "bench: DIRECT benchmark run...")
	drun, err := benchDirectRun(db, queries, pageSize)
	check(err)
	rep.Benchmarks = append(rep.Benchmarks, drun)

	fmt.Fprintln(os.Stderr, "bench: cross-engine identity check...")
	check(checkEnginesMatchSerial(db, queries, pageSize))
	rep.EnginesMatchSerial = true

	f, err := os.Create(out)
	check(err)
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	check(enc.Encode(rep))
	check(f.Close())
	fmt.Printf("bench: wrote %s (equi-join speedup %.1fx, hot-path alloc reduction %.0f%%, engines match serial: %v)\n",
		out, rep.EquijoinHashSpeedup, 100*rep.MachineAllocReduction, rep.EnginesMatchSerial)
}

package main

// The serve and client subcommands: the network query service of the
// root package's Serve/Dial façade, exposed from the shell.

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dfdbm"
)

func cmdServe(db *dfdbm.DB, args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7432", "TCP listen address")
	engine := fs.String("engine", dfdbm.ServeEngineCore, "default session engine: core or machine")
	maxSessions := fs.Int("max-sessions", 64, "maximum concurrent sessions")
	maxInflight := fs.Int("max-inflight", 4, "maximum in-flight queries per session")
	queueDepth := fs.Int("queue-depth", 64, "admission queue depth (beyond it, queries are shed)")
	runners := fs.Int("runners", 4, "engine runner pool size (the autoscale floor with -autoscale)")
	maxRunners := fs.Int("max-runners", 16, "runner pool ceiling for -autoscale")
	autoscale := fs.Bool("autoscale", false, "autoscale the runner pool between -runners and -max-runners against queue depth and admit-wait")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain may take before in-flight queries are cancelled")
	sessionTimeout := fs.Duration("session-timeout", 5*time.Minute, "idle session deadline")
	workers := fs.Int("workers", 4, "core-engine workers per query")
	ips := fs.Int("ips", 16, "machine-engine instruction processors per query")
	slowQuery := fs.Duration("slow-query-threshold", 0, "log queries whose end-to-end time exceeds this (0 disables)")
	dataDir := fs.String("data-dir", "", "durable data directory: recover from it on start, write-ahead log every write into it")
	bufferFrames := fs.Int("buffer-frames", 0, "heap buffer-pool frame budget shared by all relations (0 = 1024); relations larger than it scan through CLOCK eviction")
	fsyncMode := fs.String("fsync", "commit", "WAL durability: commit (fsync before every ack) or none")
	checkpointEvery := fs.Int64("checkpoint-every", 0, "auto-checkpoint once the log grows this many bytes past the last checkpoint (0 = 8 MiB, negative disables)")
	segmentSize := fs.Int64("wal-segment-size", 0, "WAL segment rotation threshold in bytes (0 = 16 MiB)")
	crashWrite := fs.Int64("crash-write", 0, "TESTING: hard-exit (137) at the Nth WAL record write")
	crashSync := fs.Int64("crash-sync", 0, "TESTING: hard-exit (137) at the Nth WAL fsync")
	crashTorn := fs.Bool("crash-torn", false, "TESTING: with -crash-write, leave a torn half-record behind")
	of := addObsFlags(fs)
	check(fs.Parse(args))
	if fs.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: dfdbm serve [-addr A] [-engine core|machine] [-data-dir DIR] [-fsync commit|none] [-max-sessions N] [-queue-depth N] [-runners N] [-max-inflight N] [-drain-timeout D]")
		os.Exit(2)
	}

	// A server always meters itself: session/scheduler counters and
	// gauges exist even before -http or -metrics-out ask for them.
	o, sess := of.buildAlways()

	// With a data directory, the durable state there is authoritative:
	// recover it, or — when the directory is fresh — seed it with the
	// database built from -db / the generated benchmark and checkpoint
	// that as the first snapshot.
	var wlog *dfdbm.WAL
	if *dataDir != "" {
		policy, err := dfdbm.ParseFsyncPolicy(*fsyncMode)
		check(err)
		var inj *dfdbm.WALInjector
		if *crashWrite > 0 || *crashSync > 0 {
			inj = &dfdbm.WALInjector{FailWrite: *crashWrite, FailSync: *crashSync, Torn: *crashTorn, Hard: true}
		}
		// Heap-file storage is the data directory's native mode: each
		// relation lives in its own slotted file behind the shared
		// buffer pool. Pre-heap (snapshot-era) directories migrate on
		// first open.
		l, recovered, rv, err := dfdbm.OpenWAL(*dataDir, dfdbm.WALOptions{
			SegmentSize: *segmentSize,
			Fsync:       policy,
			Obs:         o,
			Injector:    inj,
			Heap:        &dfdbm.HeapOptions{Frames: *bufferFrames},
		})
		check(err)
		wlog = l
		if recovered != nil {
			db = recovered
			fmt.Printf("dfdbm: %s in %v\n", rv, rv.Elapsed.Round(time.Millisecond))
		} else {
			check(l.Checkpoint(db.Catalog()))
			fmt.Printf("dfdbm: initialized %s with %d relations\n", *dataDir, len(db.Names()))
		}
	}

	var as *dfdbm.AutoscaleConfig
	if *autoscale {
		as = &dfdbm.AutoscaleConfig{Min: *runners, Max: *maxRunners}
	}
	srv, err := dfdbm.Serve(db, dfdbm.ServeConfig{
		Addr:            *addr,
		Engine:          *engine,
		MaxSessions:     *maxSessions,
		MaxInflight:     *maxInflight,
		QueueDepth:      *queueDepth,
		Runners:         *runners,
		MaxRunners:      *maxRunners,
		Autoscale:       as,
		SessionTimeout:  *sessionTimeout,
		Workers:         *workers,
		IPs:             *ips,
		SlowQuery:       *slowQuery,
		WAL:             wlog,
		CheckpointEvery: *checkpointEvery,
		Obs:             o,
	})
	check(err)
	durable := ""
	if wlog != nil {
		durable = fmt.Sprintf(", data-dir=%s fsync=%s", *dataDir, *fsyncMode)
	}
	pool := fmt.Sprintf("runners=%d", *runners)
	if as != nil {
		pool = fmt.Sprintf("runners=%d..%d (autoscale)", *runners, *maxRunners)
	}
	fmt.Printf("dfdbm: serving %d relations on %s (engine=%s, %s, queue=%d%s)\n",
		len(db.Names()), srv.Addr(), *engine, pool, *queueDepth, durable)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	<-ctx.Done()
	stop()
	fmt.Fprintf(os.Stderr, "dfdbm: draining (timeout %v)...\n", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	err = srv.Shutdown(dctx)
	if wlog != nil {
		// The server is quiescent after the drain: checkpoint so the
		// next start recovers from the snapshot instead of replaying
		// the whole tail, then close the log.
		if cerr := wlog.Checkpoint(db.Catalog()); cerr != nil {
			fmt.Fprintf(os.Stderr, "dfdbm: shutdown checkpoint failed: %v\n", cerr)
		}
		if cerr := wlog.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	sess.finish()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dfdbm: drain incomplete: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "dfdbm: drained cleanly")
}

// cmdWal inspects or verifies a durable data directory offline.
func cmdWal(args []string) {
	if len(args) < 1 || (args[0] != "inspect" && args[0] != "verify") {
		fmt.Fprintln(os.Stderr, "usage: dfdbm wal <inspect|verify> -data-dir DIR [-records]")
		os.Exit(2)
	}
	verb := args[0]
	fs := flag.NewFlagSet("wal "+verb, flag.ExitOnError)
	dataDir := fs.String("data-dir", "", "durable data directory to read")
	records := fs.Bool("records", false, "inspect: print every log record")
	check(fs.Parse(args[1:]))
	if *dataDir == "" {
		fmt.Fprintln(os.Stderr, "usage: dfdbm wal <inspect|verify> -data-dir DIR [-records]")
		os.Exit(2)
	}

	var fn func(string, int64, *dfdbm.WALRecord)
	if verb == "inspect" && *records {
		fn = func(seg string, off int64, rec *dfdbm.WALRecord) {
			fmt.Printf("  %s @%-8d lsn %-6d %s\n", seg, off, rec.LSN, rec.Summary())
		}
	}
	rp, err := dfdbm.InspectWAL(*dataDir, fn)
	check(err)

	if verb == "verify" {
		if !rp.Clean() {
			for _, sn := range rp.Snapshots {
				if sn.Err != "" {
					fmt.Fprintf(os.Stderr, "dfdbm: snapshot %s: %s\n", sn.Name, sn.Err)
				}
			}
			for _, sg := range rp.Segments {
				if sg.Err != "" {
					fmt.Fprintf(os.Stderr, "dfdbm: segment %s: %s\n", sg.Name, sg.Err)
				}
			}
			for _, h := range rp.Heap {
				if h.Err != nil {
					fmt.Fprintf(os.Stderr, "dfdbm: heap file %s: %v\n", h.Rel, h.Err)
				}
			}
			os.Exit(1)
		}
		heapNote := ""
		if len(rp.Heap) > 0 {
			heapNote = fmt.Sprintf(", %d heap files", len(rp.Heap))
		}
		fmt.Printf("dfdbm: %s clean: %d snapshots, %d segments%s, %d records (LSN %d..%d)\n",
			*dataDir, len(rp.Snapshots), len(rp.Segments), heapNote, rp.Records, rp.FirstLSN, rp.LastLSN)
		return
	}

	fmt.Printf("%s: %d records, LSN %d..%d\n", *dataDir, rp.Records, rp.FirstLSN, rp.LastLSN)
	fmt.Printf("snapshots (%d):\n", len(rp.Snapshots))
	for _, sn := range rp.Snapshots {
		status := "ok"
		if sn.Err != "" {
			status = sn.Err
		}
		fmt.Printf("  %-28s cover %-6d %8dB  %s\n", sn.Name, sn.CoverLSN, sn.Bytes, status)
	}
	if len(rp.Heap) > 0 {
		fmt.Printf("heap files (%d):\n", len(rp.Heap))
		for _, h := range rp.Heap {
			status := "ok"
			if h.Err != nil {
				status = h.Err.Error()
			}
			fmt.Printf("  %-20s %5d pages %8d tuples  base lsn %-6d %10dB on disk  %s\n",
				h.Rel, h.Pages, h.Tuples, h.BaseLSN, h.Bytes, status)
		}
	}
	fmt.Printf("segments (%d):\n", len(rp.Segments))
	for _, sg := range rp.Segments {
		status := "ok"
		if sg.Err != "" {
			status = sg.Err
		}
		fmt.Printf("  %-28s lsn %d..%-6d %4d records %8dB  %s\n",
			sg.Name, sg.FirstLSN, sg.LastLSN, sg.Records, sg.Bytes, status)
	}
}

// readQueryFile loads a query-per-line file; blank lines and
// #-comments are skipped.
func readQueryFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out, nil
}

func cmdClient(args []string) {
	fs := flag.NewFlagSet("client", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7432", "server address")
	engine := fs.String("engine", "", "request this engine for the session (empty = server default)")
	priority := fs.String("priority", "normal", "admission priority: high, normal, or low")
	name := fs.String("name", "dfdbm-client", "session name shown in server logs")
	timeout := fs.Duration("timeout", 60*time.Second, "per-query timeout")
	quiet := fs.Bool("quiet", false, "print stats only, not result tuples")
	verbose := fs.Bool("v", false, "print the trace ID and the server's per-stage latency breakdown against the measured RTT")
	file := fs.String("f", "", "read queries from this file (one per line; # starts a comment) before any argument queries")
	check(fs.Parse(args))
	queries := fs.Args()
	if *file != "" {
		fromFile, err := readQueryFile(*file)
		check(err)
		queries = append(fromFile, queries...)
	}
	if len(queries) == 0 {
		fmt.Fprintln(os.Stderr, "usage: dfdbm client [-addr A] [-engine core|machine] [-priority P] [-f FILE] '<query>' ...")
		os.Exit(2)
	}
	var prio uint8
	switch *priority {
	case "high":
		prio = 0
	case "normal":
		prio = 1
	case "low":
		prio = 2
	default:
		check(fmt.Errorf("unknown priority %q (want high, normal, or low)", *priority))
	}

	c, err := dfdbm.Dial(*addr, dfdbm.ClientConfig{Engine: *engine, Name: *name, Timeout: *timeout})
	check(err)
	defer c.Close()
	if *verbose {
		fmt.Printf("session %d, protocol v%d, engine %s\n", c.SessionID(), c.ProtocolVersion(), c.Engine())
	}
	for _, text := range queries {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		sent := time.Now()
		res, err := c.QueryPriority(ctx, text, prio)
		rtt := time.Since(sent)
		cancel()
		check(err)
		if !*quiet {
			shown := 0
			_ = res.Relation.Each(func(t dfdbm.Tuple) bool {
				fmt.Println(" ", t)
				shown++
				return shown < 10
			})
			if res.Relation.Cardinality() > shown {
				fmt.Printf("  ... and %d more\n", res.Relation.Cardinality()-shown)
			}
		}
		st := res.Stats
		deferred := ""
		if st.Deferred {
			deferred = ", deferred on conflict"
		}
		fmt.Printf("%d tuples in %d pages (%dB) on %s; queued %v, ran %v%s\n",
			st.Tuples, st.Pages, st.ResultBytes, st.Engine,
			st.Queued.Round(time.Microsecond), st.Exec.Round(time.Microsecond), deferred)
		if *verbose {
			server := st.AdmitWait + st.Sched + st.Exec + st.Stream
			// The measured RTT exceeds the server's accounted stages by
			// client-side work and network time; label that remainder
			// explicitly instead of leaving the books unbalanced. Clamp
			// at zero: stage clocks and the RTT clock are different
			// clocks, so tiny negative remainders happen.
			unaccounted := rtt - server
			if unaccounted < 0 {
				unaccounted = 0
			}
			us := time.Microsecond
			fmt.Printf("  trace %x: rtt %v = server %v (admit-wait %v + schedule %v + execute %v + stream %v) + client/network %v\n",
				st.TraceID, rtt.Round(us), server.Round(us), st.AdmitWait.Round(us),
				st.Sched.Round(us), st.Exec.Round(us), st.Stream.Round(us), unaccounted.Round(us))
		}
	}
}

package main

// The serve and client subcommands: the network query service of the
// root package's Serve/Dial façade, exposed from the shell.

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dfdbm"
)

func cmdServe(db *dfdbm.DB, args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7432", "TCP listen address")
	engine := fs.String("engine", dfdbm.ServeEngineCore, "default session engine: core or machine")
	maxSessions := fs.Int("max-sessions", 64, "maximum concurrent sessions")
	maxInflight := fs.Int("max-inflight", 4, "maximum in-flight queries per session")
	queueDepth := fs.Int("queue-depth", 64, "admission queue depth (beyond it, queries are shed)")
	runners := fs.Int("runners", 4, "engine runner pool size")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain may take before in-flight queries are cancelled")
	sessionTimeout := fs.Duration("session-timeout", 5*time.Minute, "idle session deadline")
	workers := fs.Int("workers", 4, "core-engine workers per query")
	ips := fs.Int("ips", 16, "machine-engine instruction processors per query")
	slowQuery := fs.Duration("slow-query-threshold", 0, "log queries whose end-to-end time exceeds this (0 disables)")
	of := addObsFlags(fs)
	check(fs.Parse(args))
	if fs.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: dfdbm serve [-addr A] [-engine core|machine] [-max-sessions N] [-queue-depth N] [-runners N] [-max-inflight N] [-drain-timeout D]")
		os.Exit(2)
	}

	// A server always meters itself: session/scheduler counters and
	// gauges exist even before -http or -metrics-out ask for them.
	o, sess := of.buildAlways()
	srv, err := dfdbm.Serve(db, dfdbm.ServeConfig{
		Addr:           *addr,
		Engine:         *engine,
		MaxSessions:    *maxSessions,
		MaxInflight:    *maxInflight,
		QueueDepth:     *queueDepth,
		Runners:        *runners,
		SessionTimeout: *sessionTimeout,
		Workers:        *workers,
		IPs:            *ips,
		SlowQuery:      *slowQuery,
		Obs:            o,
	})
	check(err)
	fmt.Printf("dfdbm: serving %d relations on %s (engine=%s, runners=%d, queue=%d)\n",
		len(db.Names()), srv.Addr(), *engine, *runners, *queueDepth)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	<-ctx.Done()
	stop()
	fmt.Fprintf(os.Stderr, "dfdbm: draining (timeout %v)...\n", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	err = srv.Shutdown(dctx)
	sess.finish()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dfdbm: drain incomplete: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "dfdbm: drained cleanly")
}

// readQueryFile loads a query-per-line file; blank lines and
// #-comments are skipped.
func readQueryFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out, nil
}

func cmdClient(args []string) {
	fs := flag.NewFlagSet("client", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7432", "server address")
	engine := fs.String("engine", "", "request this engine for the session (empty = server default)")
	priority := fs.String("priority", "normal", "admission priority: high, normal, or low")
	name := fs.String("name", "dfdbm-client", "session name shown in server logs")
	timeout := fs.Duration("timeout", 60*time.Second, "per-query timeout")
	quiet := fs.Bool("quiet", false, "print stats only, not result tuples")
	verbose := fs.Bool("v", false, "print the trace ID and the server's per-stage latency breakdown against the measured RTT")
	file := fs.String("f", "", "read queries from this file (one per line; # starts a comment) before any argument queries")
	check(fs.Parse(args))
	queries := fs.Args()
	if *file != "" {
		fromFile, err := readQueryFile(*file)
		check(err)
		queries = append(fromFile, queries...)
	}
	if len(queries) == 0 {
		fmt.Fprintln(os.Stderr, "usage: dfdbm client [-addr A] [-engine core|machine] [-priority P] [-f FILE] '<query>' ...")
		os.Exit(2)
	}
	var prio uint8
	switch *priority {
	case "high":
		prio = 0
	case "normal":
		prio = 1
	case "low":
		prio = 2
	default:
		check(fmt.Errorf("unknown priority %q (want high, normal, or low)", *priority))
	}

	c, err := dfdbm.Dial(*addr, dfdbm.ClientConfig{Engine: *engine, Name: *name, Timeout: *timeout})
	check(err)
	defer c.Close()
	if *verbose {
		fmt.Printf("session %d, protocol v%d, engine %s\n", c.SessionID(), c.ProtocolVersion(), c.Engine())
	}
	for _, text := range queries {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		sent := time.Now()
		res, err := c.QueryPriority(ctx, text, prio)
		rtt := time.Since(sent)
		cancel()
		check(err)
		if !*quiet {
			shown := 0
			_ = res.Relation.Each(func(t dfdbm.Tuple) bool {
				fmt.Println(" ", t)
				shown++
				return shown < 10
			})
			if res.Relation.Cardinality() > shown {
				fmt.Printf("  ... and %d more\n", res.Relation.Cardinality()-shown)
			}
		}
		st := res.Stats
		deferred := ""
		if st.Deferred {
			deferred = ", deferred on conflict"
		}
		fmt.Printf("%d tuples in %d pages (%dB) on %s; queued %v, ran %v%s\n",
			st.Tuples, st.Pages, st.ResultBytes, st.Engine,
			st.Queued.Round(time.Microsecond), st.Exec.Round(time.Microsecond), deferred)
		if *verbose {
			server := st.AdmitWait + st.Sched + st.Exec + st.Stream
			us := time.Microsecond
			fmt.Printf("  trace %x: rtt %v; server %v = admit-wait %v + schedule %v + execute %v + stream %v\n",
				st.TraceID, rtt.Round(us), server.Round(us), st.AdmitWait.Round(us),
				st.Sched.Round(us), st.Exec.Round(us), st.Stream.Round(us))
		}
	}
}

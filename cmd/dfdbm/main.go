// Command dfdbm explores the reproduction from the shell: it generates
// the paper's benchmark database in memory and runs queries on the
// data-flow engine or on the simulated machines.
//
// Usage:
//
//	dfdbm [flags] info
//	dfdbm [flags] run <query> [-g page|relation|tuple] [-workers N]
//	dfdbm [flags] bench
//	dfdbm [flags] machine [queries...]
//	dfdbm [flags] direct [-procs N] [-strategy page|relation]
//	dfdbm [flags] serve [-addr A] [-engine core|machine] [-data-dir DIR] [-fsync commit|none] [-max-sessions N] [-queue-depth N] [-runners N] [-max-inflight N] [-drain-timeout D]
//	dfdbm client [-addr A] [-engine core|machine] [-priority high|normal|low] '<query>' ...
//	dfdbm wal <inspect|verify> -data-dir DIR [-records]
//	dfdbm top [-addr A] [-interval D] [-recent N] [-once] [-json]
//	dfdbm loadgen -profile FILE [-time-scale F] [-autoscale] [-out DIR] [-http A]
//
// loadgen replays a declarative load profile — phases with arrival
// patterns (steady, ramp, diurnal, burst), per-phase query mixes and
// SLOs, and scheduled disturbances (maintenance checkpoint, node
// slowdown, bulk append) — against a self-hosted or remote server,
// compressed by the profile's time scale so a simulated day fits in a
// minute of wall clock. It writes a per-interval timeline (offered vs
// completed QPS, per-lane latency quantiles, shed counts, scheduler
// gauges) as CSV/JSON, serves it live at /loadgen under -http, and
// exits nonzero when an SLO is violated. With -autoscale the
// self-hosted server's runner pool scales between the profile's
// bounds instead of staying fixed.
//
// serve -data-dir makes the write path durable: every append/delete is
// redo-logged and fsynced (per -fsync) before it is acknowledged, the
// catalog is checkpointed into atomic snapshot files, and a restart
// after kill -9 recovers exactly the acknowledged writes. `dfdbm wal`
// inspects or verifies such a directory offline.
//
// Shared flags (before the subcommand): -scale, -seed, -pagesize.
//
// serve exposes the database over TCP: sessions speak the
// length-prefixed internal/wire protocol (dfdbm client is the matching
// client), each query is admitted by the multi-query scheduler —
// non-conflicting read/write sets run concurrently, conflicting ones
// queue, overload is shed — and SIGTERM drains gracefully: in-flight
// queries finish streaming, new work is refused, and the process exits
// within -drain-timeout.
//
// The run, machine, and direct subcommands accept observability flags:
// -trace-out FILE with -trace-format text|jsonl|chrome writes the
// structured event trace, and -metrics-out FILE writes the metrics
// registry (counters, gauges, and time-bucketed bandwidth timelines) as
// JSONL, with -metrics-bucket setting the timeline bucket width.
// -profile prints a per-node EXPLAIN ANALYZE profile and resource
// saturation report after the run (-profile-out FILE writes it as
// JSON), and -http ADDR serves live introspection — Prometheus-format
// /metrics, the active span tree at /spans, raw timelines at
// /timeline, and /debug/pprof — while the simulation runs.
// `dfdbm explain -analyze '<query>'` executes the query on the
// simulated ring machine and prints the same profile.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"dfdbm"
)

func main() {
	scale := flag.Float64("scale", 0.1, "database scale (1.0 = the paper's 5.5 MB)")
	seed := flag.Int64("seed", 42, "generator seed")
	pageSize := flag.Int("pagesize", 2048, "page size in bytes")
	dbFile := flag.String("db", "", "load the database from this file instead of generating it")
	flag.Parse()

	if flag.NArg() < 1 {
		usage()
	}
	var db *dfdbm.DB
	var queries []*dfdbm.Query
	var err error
	if *dbFile != "" {
		db, err = dfdbm.OpenDB(*dbFile)
		check(err)
		// The benchmark queries still bind if the file holds a paper
		// database; otherwise subcommands needing them will report it.
		gen, qs, qerr := dfdbm.PaperBenchmark(dfdbm.BenchmarkConfig{
			Seed: *seed, Scale: *scale, PageSize: *pageSize,
		})
		_ = gen
		if qerr == nil {
			rebound := make([]*dfdbm.Query, 0, len(qs))
			for _, q := range qs {
				if rb, err := db.Parse(q.String()); err == nil {
					rebound = append(rebound, rb)
				}
			}
			queries = rebound
		}
	} else {
		db, queries, err = dfdbm.PaperBenchmark(dfdbm.BenchmarkConfig{
			Seed: *seed, Scale: *scale, PageSize: *pageSize,
		})
		check(err)
	}

	switch flag.Arg(0) {
	case "info":
		cmdInfo(db)
	case "run":
		cmdRun(db, flag.Args()[1:])
	case "bench":
		cmdBench(db, queries, flag.Args()[1:], *scale, *seed, *pageSize)
	case "machine":
		cmdMachine(db, queries, flag.Args()[1:], *pageSize)
	case "direct":
		cmdDirect(db, queries, flag.Args()[1:])
	case "serve":
		cmdServe(db, flag.Args()[1:])
	case "client":
		cmdClient(flag.Args()[1:])
	case "wal":
		cmdWal(flag.Args()[1:])
	case "top":
		cmdTop(flag.Args()[1:])
	case "loadgen":
		cmdLoadgen(db, flag.Args()[1:])
	case "explain":
		cmdExplain(db, flag.Args()[1:], *pageSize)
	case "export":
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: dfdbm export <relation>")
			os.Exit(2)
		}
		check(db.ExportCSV(flag.Arg(1), os.Stdout))
	case "save":
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: dfdbm save <file>")
			os.Exit(2)
		}
		check(db.SaveFile(flag.Arg(1)))
		fmt.Printf("saved %d relations (%d bytes of pages) to %s\n",
			len(db.Names()), db.TotalBytes(), flag.Arg(1))
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dfdbm [-scale S -seed N -pagesize B -db FILE] info|run|bench|machine|direct|serve|client|wal|top|loadgen|save|export|explain ...")
	os.Exit(2)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dfdbm:", err)
		os.Exit(1)
	}
}

// cmdExplain prints the static plan; with -analyze it also executes
// the query on the simulated ring machine with spans enabled and
// prints the per-node EXPLAIN ANALYZE profile and saturation report.
func cmdExplain(db *dfdbm.DB, args []string, pageSize int) {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	analyze := fs.Bool("analyze", false, "execute on the simulated ring machine and print the per-node profile")
	ips := fs.Int("ips", 16, "instruction processors (with -analyze)")
	adaptive := fs.Bool("adaptive", false, "print the adaptive pipeline-vs-materialize plan; with -analyze, execute with it")
	budget := fs.Int64("budget", 0, "materialization budget in bytes for -adaptive (0 = page-pool default)")
	check(fs.Parse(args))
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dfdbm explain [-adaptive [-budget B]] [-analyze [-ips N]] '<query>'")
		os.Exit(2)
	}
	q, err := db.Parse(fs.Arg(0))
	check(err)
	fmt.Print(dfdbm.Explain(q))
	if *adaptive {
		plan, err := db.PlanAdaptive(q, *budget)
		check(err)
		fmt.Println()
		fmt.Print(dfdbm.ExplainAdaptive(q, plan))
	}
	if !*analyze {
		return
	}
	hw := dfdbm.DefaultHW()
	hw.PageSize = pageSize
	o := dfdbm.NewObserver(nil, dfdbm.NewMetrics(time.Millisecond))
	o.EnableSpans()
	m, err := dfdbm.NewMachine(db, dfdbm.MachineConfig{HW: hw, ICs: 16, IPs: *ips, Obs: o, Adaptive: *adaptive})
	check(err)
	check(m.Submit(q))
	res, err := m.Run()
	check(err)
	fmt.Println()
	prof := dfdbm.BuildProfile(o.Spans().Snapshot(), res.Elapsed)
	check(prof.Text(os.Stdout))
	check(dfdbm.Saturation(o.Registry(), res.Elapsed, m.Resources()).Text(os.Stdout))
	if *adaptive {
		fmt.Printf("adaptive: %d operand edges materialized\n", res.Stats.MaterializedEdges)
	}
}

func cmdInfo(db *dfdbm.DB) {
	fmt.Printf("%-8s %10s %10s %10s\n", "relation", "tuples", "pages", "bytes")
	totalT, totalB := 0, 0
	for _, name := range db.Names() {
		r, err := db.Get(name)
		check(err)
		fmt.Printf("%-8s %10d %10d %10d\n", name, r.Cardinality(), r.NumPages(), r.ByteSize())
		totalT += r.Cardinality()
		totalB += r.ByteSize()
	}
	fmt.Printf("%-8s %10d %21d\n", "total", totalT, totalB)
}

func cmdRun(db *dfdbm.DB, args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	gran := fs.String("g", "page", "granularity: page, relation, or tuple")
	workers := fs.Int("workers", 4, "instruction processors")
	timeout := fs.Duration("timeout", 0, "abort the query after this long (0 = no limit)")
	adaptive := fs.Bool("adaptive", false, "plan per-edge pipeline-vs-materialize execution (page/tuple granularity)")
	of := addObsFlags(fs)
	check(fs.Parse(args))
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dfdbm run [-g page|relation|tuple] [-adaptive] [-workers N] [-timeout D] '<query>'")
		os.Exit(2)
	}
	q, err := db.Parse(fs.Arg(0))
	check(err)
	g, err := parseGranularity(*gran)
	check(err)

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	o, sess := of.build()
	res, err := db.ExecuteContext(ctx, q, dfdbm.EngineOptions{Granularity: g, Workers: *workers, Obs: o, Adaptive: *adaptive})
	sess.finish()
	check(err)
	sess.report(res.Stats.Elapsed, []dfdbm.ResourceSpec{
		{Name: "worker pool", Timeline: "core.worker_busy_us", Servers: *workers},
	})
	fmt.Printf("%d tuples in %v at %s granularity\n",
		res.Relation.Cardinality(), res.Stats.Elapsed.Round(time.Microsecond), g)
	shown := 0
	_ = res.Relation.Each(func(t dfdbm.Tuple) bool {
		fmt.Println(" ", t)
		shown++
		return shown < 10
	})
	if res.Relation.Cardinality() > shown {
		fmt.Printf("  ... and %d more\n", res.Relation.Cardinality()-shown)
	}
	s := res.Stats
	fmt.Printf("packets=%d arbitration=%dB results=%d pages=%d\n",
		s.InstructionPackets, s.ArbitrationBytes, s.ResultPackets, s.PagesMoved)
	if *adaptive {
		fmt.Printf("adaptive: %d operand edges materialized\n", s.MaterializedEdges)
	}
}

func cmdBench(db *dfdbm.DB, queries []*dfdbm.Query, args []string, scale float64, seed int64, pageSize int) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	jsonOut := fs.String("json", "", "run the measured harness and write machine-readable results to this file (e.g. BENCH_machine.json)")
	compareWith := fs.String("compare", "", "with -json: compare the fresh results against this committed report and fail on >25% throughput regression")
	profileOut := fs.String("profile-out", "", "also run the ring-machine workload with spans enabled and write the EXPLAIN/saturation profile JSON here (e.g. PROFILE_machine.json)")
	joinTuples := fs.Int("join-tuples", 10000, "tuples per side of the large equi-join workload")
	only := fs.String("only", "", "comma-separated benchmark name prefixes to run and compare (default: all)")
	check(fs.Parse(args))
	if *compareWith != "" && *jsonOut == "" {
		check(fmt.Errorf("bench: -compare needs -json (the fresh results to compare)"))
	}
	filter := parseBenchFilter(*only)
	if *jsonOut != "" {
		runBenchJSON(db, queries, *jsonOut, scale, seed, pageSize, *joinTuples, filter)
		if *compareWith != "" {
			check(compareBenchReports(*compareWith, *jsonOut, filter))
		}
		if *profileOut != "" {
			check(writeBenchProfile(db, queries, *profileOut, pageSize))
			fmt.Printf("bench: wrote %s (ring-machine explain/saturation profile)\n", *profileOut)
		}
		return
	}
	if *profileOut != "" {
		check(writeBenchProfile(db, queries, *profileOut, pageSize))
		fmt.Printf("bench: wrote %s (ring-machine explain/saturation profile)\n", *profileOut)
		return
	}
	fmt.Printf("%-6s %10s | %-14s %-14s %-14s\n", "query", "tuples", "relation", "page", "tuple")
	for i, q := range queries {
		fmt.Printf("q%-5d ", i+1)
		first := true
		for _, g := range []dfdbm.Granularity{dfdbm.RelationLevel, dfdbm.PageLevel, dfdbm.TupleLevel} {
			res, err := db.Execute(q, dfdbm.EngineOptions{Granularity: g, Workers: 4, PageSize: pageSize})
			check(err)
			if first {
				fmt.Printf("%10d | ", res.Relation.Cardinality())
				first = false
			}
			fmt.Printf("%-14s ", fmt.Sprintf("%dB", res.Stats.ArbitrationBytes))
		}
		fmt.Println()
	}
	fmt.Println("(cells are arbitration-network bytes per granularity)")
}

func cmdMachine(db *dfdbm.DB, queries []*dfdbm.Query, args []string, pageSize int) {
	fs := flag.NewFlagSet("machine", flag.ExitOnError)
	trace := fs.Bool("trace", false, "print the packet-protocol trace to stderr")
	ips := fs.Int("ips", 16, "instruction processors in the pool")
	hashTiming := fs.Bool("hash-timing", false, "charge equi-joins at the hash kernel's O(n+m) cost instead of the paper's nested-loops n*m")
	adaptive := fs.Bool("adaptive", false, "plan per-edge pipeline-vs-materialize execution at submission")
	failIPs := fs.Int("fail-ips", 0, "crash this many IPs (0..n-1) during the run")
	failAt := fs.Duration("fail-at", 5*time.Millisecond, "virtual time of the first crash")
	failStep := fs.Duration("fail-step", 1*time.Millisecond, "virtual-time stagger between crashes")
	dropOuter := fs.Float64("drop-outer", 0, "drop probability for outer-ring IC<->IP packets")
	dropInner := fs.Float64("drop-inner", 0, "drop probability for inner-ring control packets")
	dup := fs.Float64("dup", 0, "duplication probability, all packet classes")
	faultSeed := fs.Int64("fault-seed", 1, "fault plan seed")
	watchdog := fs.Duration("watchdog", 0, "IC watchdog timeout (0 = default)")
	retryBudget := fs.Int("retry-budget", 0, "re-dispatch budget per work unit (0 = default)")
	of := addObsFlags(fs)
	check(fs.Parse(args))
	hw := dfdbm.DefaultHW()
	hw.PageSize = pageSize
	cfg := dfdbm.MachineConfig{HW: hw, ICs: 16, IPs: *ips,
		HashJoinTiming: *hashTiming, Adaptive: *adaptive,
		WatchdogTimeout: *watchdog, RetryBudget: *retryBudget}
	if *failIPs > 0 || *dropOuter > 0 || *dropInner > 0 || *dup > 0 {
		fc := dfdbm.FaultConfig{Seed: *faultSeed,
			Crashes: dfdbm.CrashSpread(*failIPs, *failAt, *failStep)}
		if *dropOuter > 0 {
			fc.Drop = map[dfdbm.FaultClass]float64{
				dfdbm.FaultClassInstruction: *dropOuter,
				dfdbm.FaultClassBroadcast:   *dropOuter,
				dfdbm.FaultClassControl:     *dropOuter,
				dfdbm.FaultClassCompletion:  *dropOuter,
				dfdbm.FaultClassResult:      *dropOuter,
			}
		}
		if *dropInner > 0 {
			if fc.Drop == nil {
				fc.Drop = map[dfdbm.FaultClass]float64{}
			}
			fc.Drop[dfdbm.FaultClassInner] = *dropInner
		}
		if *dup > 0 {
			fc.Dup = dfdbm.UniformDrop(*dup)
		}
		cfg.Fault = dfdbm.NewFaultPlan(fc)
	}
	if *trace {
		cfg.Trace = os.Stderr
	}
	o, sess := of.build()
	cfg.Obs = o
	m, err := dfdbm.NewMachine(db, cfg)
	check(err)
	picked := fs.Args()
	if len(picked) == 0 {
		picked = []string{"1", "3", "6"}
	}
	for _, a := range picked {
		if n, err := strconv.Atoi(a); err == nil {
			if n < 1 || n > len(queries) {
				check(fmt.Errorf("bad query number %q (1-%d)", a, len(queries)))
			}
			check(m.Submit(queries[n-1]))
			continue
		}
		q, err := db.Parse(a)
		check(err)
		check(m.Submit(q))
	}
	res, err := m.Run()
	sess.finish()
	check(err)
	sess.report(res.Elapsed, m.Resources())
	for _, qr := range res.PerQuery {
		fmt.Printf("query %d: %d tuples, started %v, finished %v\n",
			qr.QueryID+1, qr.Relation.Cardinality(), qr.Started, qr.Finished)
	}
	s := res.Stats
	fmt.Printf("makespan %v; outer ring %.2f Mbps (%d packets, %d broadcasts); IP utilization %.1f%%\n",
		res.Elapsed, res.OuterRingMbps(), s.OuterRingPackets, s.Broadcasts, 100*res.IPUtilization)
	if *adaptive {
		fmt.Printf("adaptive: %d operand edges materialized\n", s.MaterializedEdges)
	}
	if cfg.Fault != nil {
		fmt.Printf("faults: %d injected (%d crashes, %d drops, %d dups); %d IPs failed, %d watchdog timeouts, %d re-dispatches, %d recovered units, %d retransmits\n",
			s.FaultsInjected, s.IPsCrashed, s.PacketsDropped, s.PacketsDuplicated,
			s.IPsFailed, s.WatchdogTimeouts, s.Redispatches, s.RecoveredPages, s.Retransmits)
	}
}

func cmdDirect(db *dfdbm.DB, queries []*dfdbm.Query, args []string) {
	fs := flag.NewFlagSet("direct", flag.ExitOnError)
	procs := fs.Int("procs", 16, "instruction processors")
	strat := fs.String("strategy", "page", "page or relation")
	adaptive := fs.Bool("adaptive", false, "materialize plan-chosen operand edges through mass storage (page strategy)")
	cacheFault := fs.Float64("cache-fault", 0, "transient cache-frame read-fault probability")
	faultSeed := fs.Int64("fault-seed", 1, "fault plan seed")
	of := addObsFlags(fs)
	check(fs.Parse(args))
	g, err := parseGranularity(*strat)
	check(err)

	profiles, err := dfdbm.ProfileQueries(db, queries, dfdbm.DefaultHW().PageSize)
	check(err)
	if *adaptive {
		for i := range profiles {
			plan, err := db.PlanAdaptive(queries[i], 0)
			check(err)
			dfdbm.ApplyAdaptivePlan(&profiles[i], queries[i], plan)
		}
	}
	o, sess := of.build()
	dcfg := dfdbm.DirectConfig{Processors: *procs, Strategy: g, Obs: o}
	if *cacheFault > 0 {
		dcfg.Fault = dfdbm.NewFaultPlan(dfdbm.FaultConfig{Seed: *faultSeed, CacheReadFault: *cacheFault})
	}
	rep, err := dfdbm.SimulateDIRECT(dcfg, profiles)
	sess.finish()
	check(err)
	sess.report(rep.Elapsed, dfdbm.DirectResources(dcfg))
	fmt.Printf("DIRECT with %d processors, %s-level granularity:\n", *procs, g)
	fmt.Printf("  benchmark execution time : %v\n", rep.Elapsed)
	fmt.Printf("  IP<->cache bandwidth     : %.2f Mbps\n", rep.ProcCacheMbps())
	fmt.Printf("  cache<->disk bandwidth   : %.2f Mbps\n", rep.CacheDiskMbps())
	fmt.Printf("  control bandwidth        : %.3f Mbps\n", rep.ControlMbps())
	fmt.Printf("  processor utilization    : %.1f%%\n", 100*rep.ProcUtilization)
	fmt.Printf("  disk utilization         : %.1f%%\n", 100*rep.DiskUtilization)
	fmt.Printf("  disk traffic             : %d reads, %d writes\n", rep.DiskReads, rep.DiskWrites)
	if *adaptive {
		fmt.Printf("  materialized pages       : %d\n", rep.MaterializedPages)
	}
	if *cacheFault > 0 {
		fmt.Printf("  cache read faults        : %d (all retried)\n", rep.CacheReadFaults)
	}
}

func parseGranularity(s string) (dfdbm.Granularity, error) {
	switch s {
	case "page":
		return dfdbm.PageLevel, nil
	case "relation":
		return dfdbm.RelationLevel, nil
	case "tuple":
		return dfdbm.TupleLevel, nil
	}
	return 0, fmt.Errorf("unknown granularity %q", s)
}

package main

// The top subcommand: a live, terminal-refreshed view of a running
// dfdbm server, built entirely from the introspection HTTP endpoints
// (-http on the serve side). Each tick polls /metrics for the per-lane
// admission-wait and execution histograms, /queries for the in-flight
// table with lifecycle stages, and /queries/recent for the flight
// recorder's completed ring — the master controller's vantage point,
// watched from the shell.

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"
)

// topRecord mirrors the flight recorder's QueryRecord JSON.
type topRecord struct {
	TraceID   uint64    `json:"trace_id"`
	Session   uint64    `json:"session"`
	QueryID   uint32    `json:"query_id"`
	Lane      string    `json:"lane"`
	Engine    string    `json:"engine"`
	Text      string    `json:"text"`
	Start     time.Time `json:"start"`
	Stage     string    `json:"stage"`
	AdmitWait int64     `json:"admit_wait_ns"`
	Sched     int64     `json:"sched_ns"`
	Exec      int64     `json:"exec_ns"`
	Stream    int64     `json:"stream_ns"`
	Total     int64     `json:"total_ns"`
	Outcome   string    `json:"outcome"`
	Tuples    int64     `json:"tuples"`
	Pages     int64     `json:"pages"`
}

func cmdTop(args []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8089", "introspection address of a running server (its -http flag)")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	once := fs.Bool("once", false, "print one snapshot and exit (no screen clearing)")
	recent := fs.Int("recent", 10, "completed queries to show")
	jsonOut := fs.Bool("json", false, "print one machine-readable JSON snapshot and exit (implies -once)")
	check(fs.Parse(args))
	if fs.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: dfdbm top [-addr A] [-interval D] [-recent N] [-once] [-json]")
		os.Exit(2)
	}
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	if *jsonOut {
		doc, err := snapshotTop(base, *recent)
		if err != nil {
			check(fmt.Errorf("top: %s unreachable: %w (is the server running with -http?)", *addr, err))
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		check(enc.Encode(doc))
		return
	}
	for {
		frame, err := renderTop(base, *recent)
		if err != nil {
			check(fmt.Errorf("top: %s unreachable: %w (is the server running with -http?)", *addr, err))
		}
		if *once {
			fmt.Print(frame)
			return
		}
		fmt.Print("\x1b[2J\x1b[H", frame)
		time.Sleep(*interval)
	}
}

// topSnapshot is the -json document: the three introspection
// endpoints' contents in one machine-readable object, for scripts that
// would otherwise scrape the human display.
type topSnapshot struct {
	Addr     string             `json:"addr"`
	Time     time.Time          `json:"time"`
	Metrics  map[string]float64 `json:"metrics"`
	InFlight []topRecord        `json:"inflight"`
	Recent   []topRecord        `json:"recent"`
	RingCap  int                `json:"ring_capacity"`
	Total    int64              `json:"total_completed"`
}

// snapshotTop gathers one JSON snapshot from the server.
func snapshotTop(base string, nrecent int) (*topSnapshot, error) {
	metrics, err := fetchMetrics(base + "/metrics")
	if err != nil {
		return nil, err
	}
	var inflight struct {
		InFlight []topRecord `json:"inflight"`
	}
	if err := fetchJSON(base+"/queries", &inflight); err != nil {
		return nil, err
	}
	var ring struct {
		Recent   []topRecord `json:"recent"`
		Capacity int         `json:"capacity"`
		Total    int64       `json:"total_completed"`
	}
	if err := fetchJSON(base+"/queries/recent", &ring); err != nil {
		return nil, err
	}
	if nrecent < len(ring.Recent) {
		ring.Recent = ring.Recent[:nrecent]
	}
	return &topSnapshot{
		Addr:     base,
		Time:     time.Now(),
		Metrics:  metrics,
		InFlight: inflight.InFlight,
		Recent:   ring.Recent,
		RingCap:  ring.Capacity,
		Total:    ring.Total,
	}, nil
}

// renderTop builds one full frame of the display.
func renderTop(base string, nrecent int) (string, error) {
	metrics, err := fetchMetrics(base + "/metrics")
	if err != nil {
		return "", err
	}
	var inflight struct {
		InFlight []topRecord `json:"inflight"`
	}
	if err := fetchJSON(base+"/queries", &inflight); err != nil {
		return "", err
	}
	var ring struct {
		Recent   []topRecord `json:"recent"`
		Capacity int         `json:"capacity"`
		Total    int64       `json:"total_completed"`
	}
	if err := fetchJSON(base+"/queries/recent", &ring); err != nil {
		return "", err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "dfdbm top — %s — %s\n", base, time.Now().Format("15:04:05"))
	fmt.Fprintf(&b, "queries: %d in flight, %d completed (ring %d), %.0f received, %.0f shed, %.0f failed, %.0f slow; queue depth %.0f, runners busy %.0f\n\n",
		len(inflight.InFlight), ring.Total, ring.Capacity,
		metrics["server_queries"], metrics["server_queries_shed"],
		metrics["server_queries_failed"], metrics["server_slow_queries"],
		metrics["sched_queue_depth"], metrics["sched_runners_busy"])

	fmt.Fprintf(&b, "%-8s %10s %10s %10s\n", "LANE", "WAIT p50", "p95", "p99")
	for _, lane := range []string{"high", "normal", "low"} {
		pfx := "sched_admit_wait_ns_" + lane
		if _, ok := metrics[pfx+"_p50"]; !ok {
			continue
		}
		fmt.Fprintf(&b, "%-8s %10s %10s %10s\n", lane,
			topDur(metrics[pfx+"_p50"]), topDur(metrics[pfx+"_p95"]), topDur(metrics[pfx+"_p99"]))
	}
	fmt.Fprintf(&b, "%-8s %10s %10s %10s\n", "exec", topDur(metrics["sched_exec_ns_p50"]),
		topDur(metrics["sched_exec_ns_p95"]), topDur(metrics["sched_exec_ns_p99"]))
	fmt.Fprintf(&b, "%-8s %10s %10s %10s\n\n", "stream", topDur(metrics["server_stream_ns_p50"]),
		topDur(metrics["server_stream_ns_p95"]), topDur(metrics["server_stream_ns_p99"]))

	fmt.Fprintf(&b, "IN FLIGHT (%d)\n", len(inflight.InFlight))
	fmt.Fprintf(&b, "  %-12s %-9s %-7s %-10s %9s  %s\n", "TRACE", "SESS/QID", "LANE", "STAGE", "AGE", "QUERY")
	for _, r := range inflight.InFlight {
		fmt.Fprintf(&b, "  %-12x s%d/q%-6d %-7s %-10s %9s  %s\n",
			r.TraceID, r.Session, r.QueryID, r.Lane, r.Stage,
			time.Since(r.Start).Round(time.Millisecond), topText(r.Text))
	}

	n := nrecent
	if n > len(ring.Recent) {
		n = len(ring.Recent)
	}
	fmt.Fprintf(&b, "\nRECENT (%d of %d)\n", n, len(ring.Recent))
	fmt.Fprintf(&b, "  %-12s %-7s %-12s %9s %9s %9s %8s  %s\n",
		"TRACE", "LANE", "OUTCOME", "WAIT", "EXEC", "TOTAL", "TUPLES", "QUERY")
	for _, r := range ring.Recent[:n] {
		fmt.Fprintf(&b, "  %-12x %-7s %-12s %9s %9s %9s %8d  %s\n",
			r.TraceID, r.Lane, r.Outcome,
			topDur(float64(r.AdmitWait)), topDur(float64(r.Exec)), topDur(float64(r.Total)),
			r.Tuples, topText(r.Text))
	}
	return b.String(), nil
}

// topDur renders a float nanosecond metric compactly.
func topDur(ns float64) string {
	if ns <= 0 {
		return "-"
	}
	return time.Duration(ns).Round(time.Microsecond).String()
}

// topText clips query text for one display row.
func topText(s string) string {
	if len(s) > 48 {
		return s[:48] + "..."
	}
	return s
}

// fetchJSON GETs url and decodes the JSON body into v.
func fetchJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// fetchMetrics GETs a Prometheus text exposition and returns the plain
// (unlabeled) samples by name.
func fetchMetrics(url string) (map[string]float64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") || strings.Contains(line, "{") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			continue
		}
		out[name] = f
	}
	return out, nil
}

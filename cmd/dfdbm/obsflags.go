package main

// Observability flag plumbing shared by every subcommand that can run
// with tracing, metrics, spans, or the live introspection server: run,
// machine, direct, and serve all register the same flags through
// addObsFlags and manage their lifecycle through obsSession. This is
// the single place observability wiring lives; subcommands never touch
// sinks or registries directly.

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dfdbm"
)

// obsFlags holds the observability flags shared by the run, machine,
// direct, and serve subcommands.
type obsFlags struct {
	traceOut    string
	traceFormat string
	metricsOut  string
	bucket      time.Duration
	profile     bool
	profileOut  string
	httpAddr    string
	// forceMetrics makes build always attach a metrics registry, even
	// when no output flag asks for one (set via buildAlways).
	forceMetrics bool
	// forceFlight makes build attach a flight recorder (the serve
	// subcommand's always-on per-query record, served as /queries and
	// /queries/recent when -http is set).
	forceFlight bool
}

// flightCapacity is the number of completed queries the serve
// subcommand's flight recorder retains.
const flightCapacity = 256

func addObsFlags(fs *flag.FlagSet) *obsFlags {
	f := &obsFlags{}
	fs.StringVar(&f.traceOut, "trace-out", "", "write the structured event trace to this file")
	fs.StringVar(&f.traceFormat, "trace-format", "text", "trace format: text, jsonl, or chrome")
	fs.StringVar(&f.metricsOut, "metrics-out", "", "write the metrics registry as JSONL to this file")
	fs.DurationVar(&f.bucket, "metrics-bucket", 100*time.Millisecond, "bucket width of metric timelines")
	fs.BoolVar(&f.profile, "profile", false, "print a per-node EXPLAIN ANALYZE profile and saturation report after the run")
	fs.StringVar(&f.profileOut, "profile-out", "", "write the profile and saturation report as JSON to this file")
	fs.StringVar(&f.httpAddr, "http", "", "serve live introspection (/metrics, /spans, /timeline, /debug/pprof) on this address while running")
	return f
}

// wantsProfile reports whether the run must record spans and metrics
// for an EXPLAIN ANALYZE report.
func (f *obsFlags) wantsProfile() bool { return f.profile || f.profileOut != "" }

// obsSession is one subcommand's observability state: the observer
// handed to the engine, plus everything needed to finalize outputs and
// render the profile afterwards.
type obsSession struct {
	f         *obsFlags
	o         *dfdbm.Observer
	reg       *dfdbm.Metrics
	traceFile *os.File
	server    *dfdbm.ObsServer
}

// build returns the observer the flags request (nil when none) and the
// session that finalizes the outputs.
func (f *obsFlags) build() (*dfdbm.Observer, *obsSession) {
	s := &obsSession{f: f}
	var sink dfdbm.TraceSink
	if f.traceOut != "" {
		var err error
		s.traceFile, err = os.Create(f.traceOut)
		check(err)
		sink, err = dfdbm.NewTraceSink(f.traceFormat, s.traceFile)
		check(err)
	}
	if f.metricsOut != "" || f.wantsProfile() || f.httpAddr != "" || f.forceMetrics {
		s.reg = dfdbm.NewMetrics(f.bucket)
	}
	if sink == nil && s.reg == nil {
		return nil, s
	}
	s.o = dfdbm.NewObserver(sink, s.reg)
	if f.wantsProfile() || f.httpAddr != "" {
		s.o.EnableSpans()
	}
	if f.forceFlight {
		s.o.EnableFlight(flightCapacity)
	}
	if f.httpAddr != "" {
		srv, err := dfdbm.StartObsServer(f.httpAddr, s.reg, s.o.Spans(), s.o.Flight())
		check(err)
		s.server = srv
		fmt.Fprintf(os.Stderr, "dfdbm: introspection server on http://%s\n", srv.Addr())
	}
	return s.o, s
}

// buildAlways is build, but guarantees a metrics-backed observer even
// when no output flag asks for one, plus the always-on flight recorder.
// The serve subcommand uses it: a server should always meter its
// sessions and scheduler so the /metrics endpoint has content the
// moment -http is added, and always retain recent queries so /queries
// and /queries/recent answer.
func (f *obsFlags) buildAlways() (*dfdbm.Observer, *obsSession) {
	f.forceMetrics = true
	f.forceFlight = true
	return f.build()
}

// finish finalizes the trace and metrics outputs and stops the
// introspection server.
func (s *obsSession) finish() {
	if s.o == nil {
		return
	}
	check(s.o.Close())
	if s.traceFile != nil {
		check(s.traceFile.Close())
	}
	if s.f.metricsOut != "" {
		mf, err := os.Create(s.f.metricsOut)
		check(err)
		check(s.reg.WriteJSONL(mf))
		check(mf.Close())
	}
	if s.server != nil {
		check(s.server.Close())
	}
}

// report renders the EXPLAIN ANALYZE profile and saturation report for
// a finished run. makespan is the run's total (virtual or real) time;
// specs names the devices whose busy timelines were recorded.
func (s *obsSession) report(makespan time.Duration, specs []dfdbm.ResourceSpec) {
	if s.o == nil || !s.f.wantsProfile() {
		return
	}
	prof := dfdbm.BuildProfile(s.o.Spans().Snapshot(), makespan)
	var sat *dfdbm.SaturationReport
	if len(specs) > 0 {
		sat = dfdbm.Saturation(s.reg, makespan, specs)
	}
	if s.f.profile {
		check(prof.Text(os.Stdout))
		if sat != nil {
			check(sat.Text(os.Stdout))
		}
	}
	if s.f.profileOut != "" {
		pf, err := os.Create(s.f.profileOut)
		check(err)
		check(prof.JSON(pf, sat))
		check(pf.Close())
	}
}

package main

// The loadgen subcommand: replay a declarative load profile — a
// simulated day of phases, query mixes, SLOs, and disturbances — with
// time compression, either against a self-hosted in-process server
// (the default; maintenance/slowdown events and scheduler gauges work)
// or a remote one via -addr. Writes per-interval timeline artifacts,
// serves the live /loadgen endpoint under -http, and exits nonzero
// when the run misses its SLOs.

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"dfdbm"
)

func cmdLoadgen(db *dfdbm.DB, args []string) {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	profilePath := fs.String("profile", "", "load profile YAML (required)")
	timeScale := fs.Float64("time-scale", 0, "override the profile's time compression (0 = profile value)")
	addr := fs.String("addr", "", "drive a running server at this address instead of self-hosting (in-process events are skipped)")
	out := fs.String("out", "", "write timeline.csv and timeline.json into this directory")
	engine := fs.String("engine", "", "session engine: core or machine (empty = server default)")
	runners := fs.Int("runners", 4, "self-hosted: fixed runner pool size (the autoscale floor with -autoscale)")
	maxRunners := fs.Int("max-runners", 16, "self-hosted: autoscale ceiling for -autoscale")
	autoscale := fs.Bool("autoscale", false, "self-hosted: autoscale the runner pool (bounds from the profile's autoscale section, else -runners/-max-runners)")
	queueDepth := fs.Int("queue-depth", 64, "self-hosted: admission queue depth")
	dataDir := fs.String("data-dir", "", "self-hosted: durable data directory — recover from it on start and write-ahead log every write, serving stored relations through the heap buffer pool")
	bufferFrames := fs.Int("buffer-frames", 0, "self-hosted with -data-dir: heap buffer-pool frame budget (0 = 1024)")
	httpAddr := fs.String("http", "", "serve live introspection plus /loadgen on this address during the replay")
	sloExit := fs.Bool("slo-exit", true, "exit nonzero when the run violates its SLOs")
	quiet := fs.Bool("quiet", false, "suppress per-interval progress lines")
	check(fs.Parse(args))
	if *profilePath == "" || fs.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: dfdbm loadgen -profile FILE [-time-scale F] [-autoscale] [-runners N] [-max-runners N] [-addr A] [-out DIR] [-http A] [-slo-exit=false]")
		os.Exit(2)
	}

	src, err := os.ReadFile(*profilePath)
	check(err)
	profile, err := dfdbm.ParseLoadProfile(src)
	check(err)

	cfg := dfdbm.LoadRunConfig{
		Profile:   profile,
		TimeScale: *timeScale,
		Engine:    *engine,
	}
	if !*quiet {
		cfg.Log = os.Stderr
	}

	var reg *dfdbm.Metrics
	if *addr != "" {
		cfg.Addr = *addr
	} else {
		// Self-hosted: the served database lives in this process, so the
		// profile's maintenance and slowdown events have real hooks and
		// timeline rows carry the scheduler's gauges.
		reg = dfdbm.NewMetrics(100 * time.Millisecond)
		o := dfdbm.NewObserver(nil, reg)

		// With -data-dir the self-hosted server runs the real durable
		// stack: stored relations live in heap files behind the buffer
		// pool, and bufpool.* gauges land in the timeline registry — so a
		// profile can prove SLOs hold while eviction churns.
		var wlog *dfdbm.WAL
		if *dataDir != "" {
			l, recovered, rv, err := dfdbm.OpenWAL(*dataDir, dfdbm.WALOptions{
				Obs:  o,
				Heap: &dfdbm.HeapOptions{Frames: *bufferFrames},
			})
			check(err)
			wlog = l
			// Runs after the deferred srv.Close(): the server is
			// quiescent, so checkpoint for a fast next recovery.
			defer func() {
				if cerr := wlog.Checkpoint(db.Catalog()); cerr != nil {
					fmt.Fprintf(os.Stderr, "dfdbm: shutdown checkpoint failed: %v\n", cerr)
				}
				check(wlog.Close())
			}()
			if recovered != nil {
				db = recovered
				fmt.Fprintf(os.Stderr, "dfdbm: %s in %v\n", rv, rv.Elapsed.Round(time.Millisecond))
			} else {
				check(l.Checkpoint(db.Catalog()))
				fmt.Fprintf(os.Stderr, "dfdbm: initialized %s with %d relations\n", *dataDir, len(db.Names()))
			}
		}

		var as *dfdbm.AutoscaleConfig
		if *autoscale {
			as = &dfdbm.AutoscaleConfig{Min: *runners, Max: *maxRunners}
			if pol := profile.Autoscale; pol != nil {
				as.Min, as.Max = pol.Min, pol.Max
				as.Interval, as.Cooldown = pol.Interval, pol.Cooldown
				as.HighDepth, as.HighWait = pol.HighDepth, pol.HighWait
				as.LowUtil, as.Hold = pol.LowUtil, pol.Hold
			}
		}
		srv, err := dfdbm.Serve(db, dfdbm.ServeConfig{
			Addr:        "127.0.0.1:0",
			Engine:      dfdbm.ServeEngineCore,
			MaxSessions: 256,
			QueueDepth:  *queueDepth,
			Runners:     *runners,
			MaxRunners:  *maxRunners,
			Autoscale:   as,
			WAL:         wlog,
			Obs:         o,
		})
		check(err)
		defer srv.Close()
		cfg.Addr = srv.Addr()
		cfg.Control = &dfdbm.LoadControl{
			Checkpoint:   srv.Checkpoint,
			SetExecDelay: srv.SetExecDelay,
			Registry:     reg,
		}
		mode := fmt.Sprintf("fixed %d runners", *runners)
		if as != nil {
			mode = fmt.Sprintf("autoscale %d..%d runners", as.Min, as.Max)
		}
		if wlog != nil {
			mode += fmt.Sprintf(", data-dir=%s", *dataDir)
		}
		fmt.Fprintf(os.Stderr, "dfdbm: self-hosted server on %s (%s)\n", srv.Addr(), mode)
	}

	if *httpAddr != "" {
		cfg.Live = dfdbm.NewLoadLive(profile.Name)
		osrv, err := dfdbm.StartObsServer(*httpAddr, reg, nil, nil)
		check(err)
		defer osrv.Close()
		osrv.Handle("/loadgen", cfg.Live)
		fmt.Fprintf(os.Stderr, "dfdbm: live timeline on http://%s/loadgen\n", osrv.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	rep, err := dfdbm.RunLoad(ctx, cfg)
	if rep == nil {
		check(err)
	}

	fmt.Printf("%-12s %9s %6s %8s %12s %9s  %s\n",
		"PHASE", "INTERVALS", "GRACED", "VIOLATED", "WORST p99", "MAX SHED", "VERDICT")
	for _, ph := range rep.Phases {
		verdict := "pass"
		if !ph.Pass {
			verdict = "FAIL"
		}
		fmt.Printf("%-12s %9d %6d %8d %12s %8.1f%%  %s\n",
			ph.Phase, ph.Intervals, ph.Graced, ph.Violated,
			fmt.Sprintf("%.1fms", ph.WorstP99MS), 100*ph.MaxShedRate, verdict)
	}
	verdict := "PASS"
	if !rep.Pass {
		verdict = "FAIL"
	}
	fmt.Printf("loadgen %s: offered %d, completed %d, shed %d, dropped %d, errors %d in %.1fs wall (scale %g)\n",
		verdict, rep.Offered, rep.Completed, rep.Shed, rep.Dropped, rep.Errors, rep.WallS, rep.TimeScale)

	if *out != "" {
		check(os.MkdirAll(*out, 0o755))
		csvPath := filepath.Join(*out, "timeline.csv")
		cf, cerr := os.Create(csvPath)
		check(cerr)
		check(dfdbm.WriteLoadCSV(cf, rep.Rows))
		check(cf.Close())
		jsonPath := filepath.Join(*out, "timeline.json")
		jf, jerr := os.Create(jsonPath)
		check(jerr)
		check(dfdbm.WriteLoadJSON(jf, rep))
		check(jf.Close())
		fmt.Fprintf(os.Stderr, "dfdbm: wrote %s and %s\n", csvPath, jsonPath)
	}

	check(err)
	if !rep.Pass && *sloExit {
		os.Exit(1)
	}
}

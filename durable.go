package dfdbm

import (
	"dfdbm/internal/wal"
)

// Crash-safe durability: the write-ahead log behind `dfdbm serve
// -data-dir`. A WAL-backed server logs and fsyncs every append/delete
// before applying or acknowledging it, checkpoints the catalog into
// atomic snapshot files, and recovers exactly the acknowledged writes
// after kill -9 (see internal/wal).
type (
	// WAL is an open write-ahead log rooted at a data directory
	// (OpenWAL). Assign it to ServeConfig.WAL to make the server's
	// write path durable.
	WAL = wal.Log
	// WALOptions parameterizes OpenWAL: segment size, fsync policy,
	// snapshot retention, observability, and the crash injector.
	WALOptions = wal.Options
	// WALRecovery describes what OpenWAL found and repaired.
	WALRecovery = wal.Recovery
	// WALInjector deterministically fails or hard-exits the Nth log
	// write or fsync — the crash-point hook for recovery tests.
	WALInjector = wal.Injector
	// WALReport is InspectWAL's read-only view of a data directory.
	WALReport = wal.Report
	// WALRecord is one decoded redo record.
	WALRecord = wal.Record
	// FsyncPolicy says when the log forces records to stable storage.
	FsyncPolicy = wal.FsyncPolicy
	// HeapOptions (WALOptions.Heap) switches the data directory to
	// paged heap-file storage: one slotted file per relation behind a
	// pinning buffer pool with CLOCK eviction, per-relation
	// checkpoints, and page-level WAL replay.
	HeapOptions = wal.HeapOptions
)

// Fsync policies for WALOptions.Fsync.
const (
	FsyncCommit = wal.FsyncCommit
	FsyncNone   = wal.FsyncNone
)

// ParseFsyncPolicy parses a -fsync flag value ("commit" or "none").
func ParseFsyncPolicy(s string) (FsyncPolicy, error) { return wal.ParseFsyncPolicy(s) }

// OpenWAL opens (creating if necessary) a durable data directory and
// recovers the database from its newest valid snapshot plus the log
// tail. On a fresh directory the returned DB is nil: seed one and call
// WAL.Checkpoint(db.Catalog()) to establish the first snapshot.
func OpenWAL(dir string, opts WALOptions) (*WAL, *DB, WALRecovery, error) {
	l, cat, rv, err := wal.Open(dir, opts)
	if err != nil {
		return nil, nil, rv, err
	}
	var db *DB
	if cat != nil {
		db = &DB{cat: cat}
	}
	return l, db, rv, nil
}

// InspectWAL scans a data directory read-only, reporting every
// snapshot and log segment and calling fn (when non-nil) with each
// decodable record in LSN order. It backs `dfdbm wal`.
func InspectWAL(dir string, fn func(segment string, offset int64, rec *WALRecord)) (*WALReport, error) {
	return wal.Inspect(dir, fn)
}

package dfdbm_test

import (
	"testing"

	"dfdbm"
)

// nestedJoinQuery has a non-scan join inner — the shape the adaptive
// planner materializes when the estimate fits the budget.
const nestedJoinQuery = `join(r5, restrict(r11, k1 > 50), k3 = k3)`

func adaptiveBenchmark(t *testing.T) (*dfdbm.DB, []*dfdbm.Query) {
	t.Helper()
	db, queries, err := dfdbm.PaperBenchmark(dfdbm.BenchmarkConfig{Seed: 7, Scale: 0.05, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	return db, queries
}

// TestAdaptivePlanChoices pins the planner's decision rule: a join's
// non-scan inner edge materializes exactly when its estimated bytes fit
// the budget.
func TestAdaptivePlanChoices(t *testing.T) {
	db, _ := adaptiveBenchmark(t)
	q, err := db.Parse(nestedJoinQuery)
	if err != nil {
		t.Fatal(err)
	}
	innerID := q.Root().Inputs[1].ID

	plan, err := db.PlanAdaptive(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Materialized(innerID) {
		t.Fatalf("join inner (node %d) not materialized under the default budget\n%s",
			innerID, dfdbm.ExplainAdaptive(q, plan))
	}
	tight, err := db.PlanAdaptive(q, 1) // nothing fits one byte
	if err != nil {
		t.Fatal(err)
	}
	if tight.Materialized(innerID) {
		t.Fatalf("join inner materialized despite a 1-byte budget\n%s",
			dfdbm.ExplainAdaptive(q, tight))
	}
	// Nil-safety: a missing plan means everything pipelines.
	var nilPlan *dfdbm.AdaptivePlan
	if nilPlan.Materialized(innerID) {
		t.Fatal("nil plan claims a materialized edge")
	}
}

// TestAdaptiveCoreMatchesSerial: the data-flow engine with adaptive
// materialization produces the serial reference's result multiset, and
// the nested-join query actually exercises a materialized edge.
func TestAdaptiveCoreMatchesSerial(t *testing.T) {
	db, queries := adaptiveBenchmark(t)
	nested, err := db.Parse(nestedJoinQuery)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range append(queries[:6:6], nested) {
		want, err := db.ExecuteSerial(q)
		if err != nil {
			t.Fatalf("query %d: serial: %v", i, err)
		}
		res, err := db.Execute(q, dfdbm.EngineOptions{
			Granularity: dfdbm.PageLevel, Workers: 4, PageSize: 512, Adaptive: true,
		})
		if err != nil {
			t.Fatalf("query %d: adaptive: %v", i, err)
		}
		if !res.Relation.EqualMultiset(want) {
			t.Fatalf("query %d: adaptive result differs from serial (%d vs %d tuples)",
				i, res.Relation.Cardinality(), want.Cardinality())
		}
		if q == nested && res.Stats.MaterializedEdges == 0 {
			t.Fatal("nested-join query ran adaptively but materialized no edge")
		}
	}
}

// TestAdaptiveMachineMatchesSerial: the ring machine with adaptive
// per-edge firing produces the serial reference's result multiset.
func TestAdaptiveMachineMatchesSerial(t *testing.T) {
	db, queries := adaptiveBenchmark(t)
	nested, err := db.Parse(nestedJoinQuery)
	if err != nil {
		t.Fatal(err)
	}
	hw := dfdbm.DefaultHW()
	hw.PageSize = 512
	for i, q := range append(queries[:6:6], nested) {
		want, err := db.ExecuteSerial(q)
		if err != nil {
			t.Fatalf("query %d: serial: %v", i, err)
		}
		m, err := dfdbm.NewMachine(db, dfdbm.MachineConfig{HW: hw, Adaptive: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Submit(q); err != nil {
			t.Fatalf("query %d: submit: %v", i, err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatalf("query %d: run: %v", i, err)
		}
		if !res.PerQuery[0].Relation.EqualMultiset(want) {
			t.Fatalf("query %d: adaptive machine differs from serial (%d vs %d tuples)",
				i, res.PerQuery[0].Relation.Cardinality(), want.Cardinality())
		}
		if q == nested && res.Stats.MaterializedEdges == 0 {
			t.Fatal("nested-join query ran adaptively but materialized no edge")
		}
	}
}

// TestAdaptiveDirectRuns: the DIRECT simulator accepts a profile with
// plan-materialized edges and stages those intermediates through disk.
func TestAdaptiveDirectRuns(t *testing.T) {
	db, _ := adaptiveBenchmark(t)
	q, err := db.Parse(nestedJoinQuery)
	if err != nil {
		t.Fatal(err)
	}
	hw := dfdbm.DefaultHW()
	hw.PageSize = 512
	profiles, err := dfdbm.ProfileQueries(db, []*dfdbm.Query{q}, 512)
	if err != nil {
		t.Fatal(err)
	}
	base, err := dfdbm.SimulateDIRECT(dfdbm.DirectConfig{Processors: 8, HW: hw}, profiles)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := db.PlanAdaptive(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	dfdbm.ApplyAdaptivePlan(&profiles[0], q, plan)
	rep, err := dfdbm.SimulateDIRECT(dfdbm.DirectConfig{Processors: 8, HW: hw}, profiles)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaterializedPages == 0 {
		t.Fatal("adaptive DIRECT run staged no materialized pages")
	}
	if rep.DiskWrites <= base.DiskWrites {
		t.Fatalf("materialized edge should add disk staging: %d writes adaptive vs %d baseline",
			rep.DiskWrites, base.DiskWrites)
	}
}

package dfdbm

import (
	"time"

	"dfdbm/internal/direct"
	"dfdbm/internal/fault"
	"dfdbm/internal/figures"
	"dfdbm/internal/hw"
	"dfdbm/internal/machine"
	"dfdbm/internal/ringnet"
)

// Hardware models (the paper's Section 4.1 assumptions).
type (
	// HWConfig gathers the 1979 device timing models: LSI-11
	// processors, IBM 3330 drives, the CCD cache, and the rings.
	HWConfig = hw.Config
)

// DefaultHW returns the paper's hardware: LSI-11 IPs (16 KB page in
// 33 ms), two IBM 3330 drives, a 40 Mbps outer ring, 16 KB pages.
func DefaultHW() HWConfig { return hw.Default1979() }

// DIRECT simulator (Figures 3.1 and 4.2).
type (
	// DirectConfig parameterizes a simulated DIRECT machine.
	DirectConfig = direct.Config
	// DirectReport summarizes a simulated benchmark execution.
	DirectReport = direct.Report
	// QueryProfile is a query's cardinality profile for the simulator.
	QueryProfile = direct.QueryProfile
	// TrafficParams is the Section 3.3 closed-form traffic analysis.
	TrafficParams = direct.TrafficParams
)

// ProfileQueries extracts the cardinality profiles the DIRECT simulator
// executes, by running each query once on the serial executor.
func ProfileQueries(db *DB, qs []*Query, pageSize int) ([]QueryProfile, error) {
	return direct.ProfileAll(db.Catalog(), qs, pageSize)
}

// SimulateDIRECT runs the profiled queries on a simulated DIRECT
// configuration and reports execution time and per-level bandwidth.
func SimulateDIRECT(cfg DirectConfig, profiles []QueryProfile) (DirectReport, error) {
	return direct.Run(cfg, profiles)
}

// DirectResources names the simulated DIRECT devices and their busy
// timelines for saturation analysis of a run made with cfg.
func DirectResources(cfg DirectConfig) []ResourceSpec { return direct.Resources(cfg) }

// TrafficExample returns the Section 3.3 example with the given join
// cardinalities, page size, and per-packet overhead.
func TrafficExample(n, m, pageBytes, overhead int) TrafficParams {
	return direct.PaperExample(n, m, pageBytes, overhead)
}

// Ring data-flow machine (the paper's Section 4 design).
type (
	// MachineConfig parameterizes the ring machine.
	MachineConfig = machine.Config
	// Machine is one simulated ring data-flow database machine.
	Machine = machine.Machine
	// MachineResults is the outcome of a machine run.
	MachineResults = machine.Results
	// MachineStats meters a machine run.
	MachineStats = machine.Stats
)

// NewMachine builds a ring data-flow machine over the database.
func NewMachine(db *DB, cfg MachineConfig) (*Machine, error) {
	return machine.New(db.Catalog(), cfg)
}

// Fault injection (IP crashes, packet loss/duplication, cache faults)
// and the machine's MC-driven recovery.
type (
	// FaultConfig describes one deterministic fault plan.
	FaultConfig = fault.Config
	// FaultPlan is a built plan; pass one fresh plan per machine via
	// MachineConfig.Fault (or DirectConfig.Fault for cache faults).
	FaultPlan = fault.Plan
	// FaultClass partitions packets for per-class drop/duplication
	// probabilities.
	FaultClass = fault.Class
	// IPCrash schedules one processor crash at a virtual time.
	IPCrash = fault.IPCrash
	// FaultError is returned by Machine.Run when recovery is exhausted;
	// test with errors.As.
	FaultError = machine.FaultError
)

// Packet classes for FaultConfig.Drop and FaultConfig.Dup.
const (
	FaultClassInstruction = fault.ClassInstruction
	FaultClassBroadcast   = fault.ClassBroadcast
	FaultClassControl     = fault.ClassControl
	FaultClassCompletion  = fault.ClassCompletion
	FaultClassResult      = fault.ClassResult
	FaultClassInner       = fault.ClassInner
)

// NewFaultPlan builds a deterministic fault plan from the config.
func NewFaultPlan(cfg FaultConfig) *FaultPlan { return fault.New(cfg) }

// CrashSpread schedules n processor crashes (IPs 0..n-1) staggered from
// start by step — the degradation-curve experiment's input.
func CrashSpread(n int, start, step time.Duration) []IPCrash {
	return fault.CrashN(n, start, step)
}

// UniformDrop gives every packet class the same drop probability.
func UniformDrop(p float64) map[FaultClass]float64 { return fault.UniformDrop(p) }

// Loop networks (the paper's Section 4.1 interconnect choice).
type (
	// RingConfig parameterizes a loop-network simulation.
	RingConfig = ringnet.Config
	// RingResult reports delay and throughput statistics.
	RingResult = ringnet.Result
	// RingKind selects DLCN, Newhall, or Pierce.
	RingKind = ringnet.Kind
)

// Loop architectures.
const (
	DLCN        = ringnet.DLCN
	NewhallLoop = ringnet.Newhall
	PierceLoop  = ringnet.Pierce
)

// SimulateRing runs one loop-network simulation.
func SimulateRing(cfg RingConfig) (RingResult, error) { return ringnet.Simulate(cfg) }

// Experiment harness.
type (
	// Figure is one regenerable table or figure of the paper.
	Figure = figures.Figure
	// FigureParams configures a figure rendering.
	FigureParams = figures.Params
)

// Figures returns every experiment of the paper's evaluation, in paper
// order. Rendering one returns the text table it produces.
func Figures() []Figure { return figures.All() }

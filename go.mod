module dfdbm

go 1.22

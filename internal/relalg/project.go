package relalg

import (
	"bytes"

	"dfdbm/internal/relation"
)

// Projector rewrites encoded tuples of a source schema down to a subset
// of attributes. Building one up front lets the per-tuple work be pure
// byte copying.
type Projector struct {
	src    *relation.Schema
	out    *relation.Schema
	fields []fieldSpan
}

type fieldSpan struct{ off, width int }

// NewProjector returns a projector from src onto the named attributes.
func NewProjector(src *relation.Schema, names ...string) (*Projector, error) {
	out, err := src.Project(names...)
	if err != nil {
		return nil, err
	}
	p := &Projector{src: src, out: out}
	for _, n := range names {
		i, err := src.Index(n)
		if err != nil {
			return nil, err
		}
		p.fields = append(p.fields, fieldSpan{off: src.Offset(i), width: src.Attr(i).ByteWidth()})
	}
	return p, nil
}

// OutSchema returns the schema of projected tuples.
func (p *Projector) OutSchema() *relation.Schema { return p.out }

// Apply appends the projection of raw to dst and returns the extended
// slice.
func (p *Projector) Apply(dst, raw []byte) []byte {
	for _, f := range p.fields {
		dst = append(dst, raw[f.off:f.off+f.width]...)
	}
	return dst
}

// Dedup tracks tuples already seen, for duplicate elimination. It is a
// hash-then-verify map: tuples are bucketed by a 64-bit hash of their
// bytes with per-bucket collision lists, so probing a duplicate
// allocates nothing. Retained tuple bytes live in one shared arena and
// buckets store (offset, length) spans into it, which makes Reset a
// pure truncation: the arena, the bucket slices, and the map's hash
// buckets all keep their capacity, so a reused Dedup re-absorbing a
// similar tuple stream allocates nothing at all. The zero value is not
// usable; call NewDedup.
type Dedup struct {
	seen map[uint64][]dedupSpan
	buf  []byte // arena of retained tuple bytes; spans index into it
	n    int
}

type dedupSpan struct{ off, len int32 }

// NewDedup returns an empty duplicate tracker.
func NewDedup() *Dedup { return &Dedup{seen: make(map[uint64][]dedupSpan)} }

// Add records raw and reports whether it was new.
func (d *Dedup) Add(raw []byte) bool {
	h := fnv1a64(raw)
	bucket := d.seen[h]
	for _, sp := range bucket {
		if bytes.Equal(d.buf[sp.off:sp.off+sp.len], raw) {
			return false
		}
	}
	off := int32(len(d.buf))
	d.buf = append(d.buf, raw...)
	d.seen[h] = append(bucket, dedupSpan{off: off, len: int32(len(raw))})
	d.n++
	return true
}

// Len returns the number of distinct tuples seen.
func (d *Dedup) Len() int { return d.n }

// Reset forgets every tuple seen while keeping all allocated capacity —
// the arena, each bucket's backing array, and the map's own buckets —
// so the tracker can be reused across pages, instructions, and queries
// without reallocating. Re-adding a tuple stream no larger than a
// previous use performs zero allocations.
func (d *Dedup) Reset() {
	for h, bucket := range d.seen {
		d.seen[h] = bucket[:0]
	}
	d.buf = d.buf[:0]
	d.n = 0
}

// ProjectPage projects every tuple of a page and emits the distinct
// results, using the shared dedup tracker. It returns the number of
// tuples emitted. Sharing the tracker across pages implements the "hard"
// global duplicate elimination; giving each hash partition its own
// tracker implements the parallel algorithm (see HashPartition).
func ProjectPage(pg *relation.Page, p *Projector, d *Dedup, emit EmitFunc) (int, error) {
	n := pg.TupleCount()
	buf := make([]byte, 0, p.out.TupleLen())
	emitted := 0
	for i := 0; i < n; i++ {
		buf = p.Apply(buf[:0], pg.RawTuple(i))
		if d != nil && !d.Add(buf) {
			continue
		}
		if err := emit(buf); err != nil {
			return emitted, err
		}
		emitted++
	}
	return emitted, nil
}

// Project projects a whole relation onto the named attributes with
// duplicate elimination — the paper's project operator (elimination of
// unwanted attributes *and* duplicate tuples). Serial reference
// implementation.
func Project(r *relation.Relation, name string, names ...string) (*relation.Relation, error) {
	p, err := NewProjector(r.Schema(), names...)
	if err != nil {
		return nil, err
	}
	pageSize := r.PageSize()
	if min := relation.PageHeaderLen + p.out.TupleLen(); pageSize < min {
		pageSize = min
	}
	out, err := relation.New(name, p.out, pageSize)
	if err != nil {
		return nil, err
	}
	d := NewDedup()
	for _, pg := range r.Pages() {
		if _, err := ProjectPage(pg, p, d, out.InsertRaw); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// HashPartition assigns an encoded (already projected) tuple to one of n
// partitions by hashing its bytes. Tuples that are byte-equal always land
// in the same partition, so per-partition duplicate elimination is
// globally correct: this is the parallel project algorithm that resolves
// the open problem in the paper's Section 5 — each IP owns a partition
// and deduplicates it independently, with no inter-IP coordination for
// the duration of the operator.
func HashPartition(raw []byte, n int) int {
	if n <= 1 {
		return 0
	}
	// Inline FNV-1a 32: identical values to hash/fnv, zero allocations.
	h := uint32(2166136261)
	for _, c := range raw {
		h ^= uint32(c)
		h *= 16777619
	}
	return int(h % uint32(n))
}

package relalg

import (
	"bytes"
	"math/rand"
	"testing"

	"dfdbm/internal/pred"
	"dfdbm/internal/relation"
)

func TestKernelSelection(t *testing.T) {
	intL := intSchema(t, "a", "b")
	intR := intSchema(t, "c", "d")
	strSchema := func(names ...string) *relation.Schema {
		attrs := make([]relation.Attr, len(names))
		for i, n := range names {
			attrs[i] = relation.Attr{Name: n, Type: relation.String, Width: 8}
		}
		s, err := relation.NewSchema(attrs...)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	fltSchema := func(names ...string) *relation.Schema {
		attrs := make([]relation.Attr, len(names))
		for i, n := range names {
			attrs[i] = relation.Attr{Name: n, Type: relation.Float64}
		}
		s, err := relation.NewSchema(attrs...)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cases := []struct {
		name        string
		left, right *relation.Schema
		cond        pred.JoinCond
		want        Kernel
	}{
		{"int-equi", intL, intR, pred.Equi("a", "c"), KernelHash},
		{"int-non-equi", intL, intR,
			pred.JoinCond{Terms: []pred.JoinTerm{{Left: "a", Op: pred.LT, Right: "c"}}},
			KernelNestedLoops},
		{"string-equi", strSchema("s", "u"), strSchema("v", "w"), pred.Equi("s", "v"), KernelHash},
		{"float-equi", fltSchema("x"), fltSchema("y"), pred.Equi("x", "y"), KernelNestedLoops},
		{"equi-plus-residual", intL, intR,
			pred.JoinCond{Terms: []pred.JoinTerm{
				{Left: "a", Op: pred.EQ, Right: "c"},
				{Left: "b", Op: pred.LT, Right: "d"},
			}},
			KernelHash},
		{"residual-before-equi", intL, intR,
			pred.JoinCond{Terms: []pred.JoinTerm{
				{Left: "b", Op: pred.LT, Right: "d"},
				{Left: "a", Op: pred.EQ, Right: "c"},
			}},
			KernelHash},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bound, err := tc.cond.Bind(tc.left, tc.right)
			if err != nil {
				t.Fatal(err)
			}
			if got := KernelFor(bound); got != tc.want {
				t.Errorf("KernelFor = %v, want %v", got, tc.want)
			}
			if got := NewJoinState(bound, nil).Kernel(); got != tc.want {
				t.Errorf("JoinState kernel = %v, want %v", got, tc.want)
			}
		})
	}
}

// rawTuples flattens a relation's pages into the exact emission order.
func rawTuples(r *relation.Relation) [][]byte {
	var out [][]byte
	r.EachRaw(func(raw []byte) bool {
		out = append(out, append([]byte(nil), raw...))
		return true
	})
	return out
}

func identicalRelations(t *testing.T, label string, want, got *relation.Relation) {
	t.Helper()
	ws, gs := rawTuples(want), rawTuples(got)
	if len(ws) != len(gs) {
		t.Fatalf("%s: %d tuples, want %d", label, len(gs), len(ws))
	}
	for i := range ws {
		if !bytes.Equal(ws[i], gs[i]) {
			t.Fatalf("%s: tuple %d differs: %x vs %x", label, i, gs[i], ws[i])
		}
	}
}

// TestHashJoinMatchesNestedLoops is the property test of the kernel
// swap: on randomized workloads (duplicate keys, several seeds, result
// order included) the hash kernel is byte-identical to nested loops.
func TestHashJoinMatchesNestedLoops(t *testing.T) {
	ls := intSchema(t, "a", "b")
	rs := intSchema(t, "c", "d")
	cond := pred.Equi("a", "c")
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		no, ni := 1+rng.Intn(300), 1+rng.Intn(300)
		keys := int64(1 + rng.Intn(40)) // small key space forces duplicates
		var lrows, rrows [][]int64
		for i := 0; i < no; i++ {
			lrows = append(lrows, []int64{rng.Int63n(keys), int64(i)})
		}
		for i := 0; i < ni; i++ {
			rrows = append(rrows, []int64{rng.Int63n(keys), int64(-i)})
		}
		outer := buildRel(t, "L", ls, lrows)
		inner := buildRel(t, "R", rs, rrows)
		want, err := NestedLoopsJoin(outer, inner, cond, "out")
		if err != nil {
			t.Fatal(err)
		}
		got, err := HashJoin(outer, inner, cond, "out")
		if err != nil {
			t.Fatal(err)
		}
		identicalRelations(t, "seed", want, got)
	}
}

// TestJoinStateMatchesNested drives the page-pair form (as the engines
// do) for equi and non-equi conditions and checks the emissions match
// the plain nested kernel exactly.
func TestJoinStateMatchesNested(t *testing.T) {
	ls := intSchema(t, "a", "b")
	rs := intSchema(t, "c", "d")
	conds := map[string]pred.JoinCond{
		"equi":     pred.Equi("a", "c"),
		"non-equi": {Terms: []pred.JoinTerm{{Left: "a", Op: pred.LT, Right: "c"}}},
		"residual": {Terms: []pred.JoinTerm{
			{Left: "a", Op: pred.EQ, Right: "c"},
			{Left: "b", Op: pred.NE, Right: "d"},
		}},
	}
	rng := rand.New(rand.NewSource(7))
	var lrows, rrows [][]int64
	for i := 0; i < 200; i++ {
		lrows = append(lrows, []int64{rng.Int63n(20), rng.Int63n(5)})
		rrows = append(rrows, []int64{rng.Int63n(20), rng.Int63n(5)})
	}
	outer := buildRel(t, "L", ls, lrows)
	inner := buildRel(t, "R", rs, rrows)
	for name, cond := range conds {
		t.Run(name, func(t *testing.T) {
			bound, err := cond.Bind(ls, rs)
			if err != nil {
				t.Fatal(err)
			}
			var want, got [][]byte
			for _, op := range outer.Pages() {
				for _, ip := range inner.Pages() {
					if _, err := JoinPages(op, ip, bound, func(raw []byte) error {
						want = append(want, append([]byte(nil), raw...))
						return nil
					}); err != nil {
						t.Fatal(err)
					}
				}
			}
			var ks KernelStats
			st := NewJoinState(bound, &ks)
			st.MaxTables = 2 // force table eviction and rebuild on the way
			for _, op := range outer.Pages() {
				for _, ip := range inner.Pages() {
					if _, err := st.JoinPages(op, ip, func(raw []byte) error {
						got = append(got, append([]byte(nil), raw...))
						return nil
					}); err != nil {
						t.Fatal(err)
					}
				}
			}
			if len(want) != len(got) {
				t.Fatalf("%d emissions, want %d", len(got), len(want))
			}
			for i := range want {
				if !bytes.Equal(want[i], got[i]) {
					t.Fatalf("emission %d differs", i)
				}
			}
			k := ks.Load()
			if name == "non-equi" && k.NestedPairs == 0 {
				t.Error("non-equi join recorded no nested pairs")
			}
			if name != "non-equi" && k.HashProbes == 0 {
				t.Error("equi join recorded no hash probes")
			}
		})
	}
}

// TestHashJoinCrossWidthKeys joins an Int32 key column against an
// Int64 one: the canonical key encoding must make them hash-equal.
func TestHashJoinCrossWidthKeys(t *testing.T) {
	ls, err := relation.NewSchema(
		relation.Attr{Name: "a", Type: relation.Int32},
		relation.Attr{Name: "b", Type: relation.Int32},
	)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := relation.NewSchema(
		relation.Attr{Name: "c", Type: relation.Int64},
		relation.Attr{Name: "d", Type: relation.Int64},
	)
	if err != nil {
		t.Fatal(err)
	}
	outer := buildRel(t, "L", ls, [][]int64{{-3, 1}, {0, 2}, {7, 3}, {2147483647, 4}})
	inner := buildRel(t, "R", rs, [][]int64{{7, 10}, {-3, 20}, {2147483647, 30}, {5, 40}})
	cond := pred.Equi("a", "c")
	bound, err := cond.Bind(ls, rs)
	if err != nil {
		t.Fatal(err)
	}
	if KernelFor(bound) != KernelHash {
		t.Fatal("cross-width int equi-join did not select the hash kernel")
	}
	want, err := NestedLoopsJoin(outer, inner, cond, "out")
	if err != nil {
		t.Fatal(err)
	}
	got, err := HashJoin(outer, inner, cond, "out")
	if err != nil {
		t.Fatal(err)
	}
	if want.Cardinality() != 3 {
		t.Fatalf("reference join found %d matches, want 3", want.Cardinality())
	}
	identicalRelations(t, "cross-width", want, got)
}

// TestDedupAddNoAllocsOnDuplicate is the satellite regression test:
// re-adding a tuple the set has seen must not allocate.
func TestDedupAddNoAllocsOnDuplicate(t *testing.T) {
	d := NewDedup()
	raw := []byte("hello, page-level world!")
	d.Add(raw)
	allocs := testing.AllocsPerRun(100, func() {
		if d.Add(raw) {
			t.Fatal("duplicate reported as new")
		}
	})
	if allocs != 0 {
		t.Errorf("duplicate Dedup.Add allocates %v times per call, want 0", allocs)
	}
	if d.Len() != 1 {
		t.Errorf("Len = %d, want 1", d.Len())
	}
}

// TestDedupCollisions exercises the hash-then-verify chain: distinct
// keys stay distinct even when forced into one bucket.
func TestDedupCollisions(t *testing.T) {
	d := NewDedup()
	seen := 0
	for i := 0; i < 1000; i++ {
		if d.Add([]byte{byte(i), byte(i >> 8)}) {
			seen++
		}
	}
	if seen != 1000 || d.Len() != 1000 {
		t.Fatalf("added %d distinct keys, Len=%d, want 1000", seen, d.Len())
	}
	for i := 0; i < 1000; i++ {
		if d.Add([]byte{byte(i), byte(i >> 8)}) {
			t.Fatalf("key %d re-admitted", i)
		}
	}
}

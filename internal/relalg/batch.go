package relalg

import (
	"math/bits"

	"dfdbm/internal/pred"
	"dfdbm/internal/relation"
)

// Batched kernels: the restrict and project loops rewritten to work on
// a page's contiguous tuple bytes at once. A restrict first fills a
// selection bitmap with the batch-compiled predicate (one tight
// compare loop per predicate leaf instead of an interface call per
// tuple), then walks the set bits to emit — and the fused
// restrict+project variant gathers the projected fields during that
// same walk, so no intermediate tuple stream ever exists between the
// two operators. Outputs are byte-identical to the scalar kernels in
// identical order: the bitmap preserves tuple order and the emit walk
// visits set bits in ascending position.

// RestrictState is the reusable state of the batched restrict kernel:
// the batch-compiled predicate plus bitmap and projection scratch.
// It is owned by a single goroutine at a time (one per worker or IP).
type RestrictState struct {
	bp  *pred.BatchPred
	sel []uint64
	buf []byte
}

// NewRestrictState compiles the bound predicate for batched
// evaluation. Predicates the batch compiler cannot vectorize run
// per-tuple inside the bitmap pass (see pred.CompileBatch), so a
// RestrictState is valid for every Bound.
func NewRestrictState(b pred.Bound) *RestrictState {
	return &RestrictState{bp: pred.CompileBatch(b)}
}

// Vectorized reports whether the predicate compiled fully to vector
// loops (false: some subtree uses the scalar fallback).
func (s *RestrictState) Vectorized() bool { return s.bp.Vectorized() }

// sized returns the selection bitmap scratch sized for n tuples.
func (s *RestrictState) sized(n int) []uint64 {
	if w := pred.SelWords(n); cap(s.sel) < w {
		s.sel = make([]uint64, w)
	} else {
		s.sel = s.sel[:w]
	}
	return s.sel
}

// RestrictPage is the batched equivalent of the package-level
// RestrictPage: bitmap pass, then emit pass over the set bits.
func (s *RestrictState) RestrictPage(p *relation.Page, emit EmitFunc) (int, error) {
	n := p.TupleCount()
	if n == 0 {
		return 0, nil
	}
	data, tl := p.Data(), p.TupleLen()
	sel := s.sized(n)
	if err := s.bp.EvalBatch(data, tl, n, sel); err != nil {
		return 0, err
	}
	kept := 0
	for wi, w := range sel {
		base := wi << 6
		for w != 0 {
			i := base + bits.TrailingZeros64(w)
			w &= w - 1
			if err := emit(data[i*tl : (i+1)*tl]); err != nil {
				return kept, err
			}
			kept++
		}
	}
	return kept, nil
}

// RestrictProjectPage fuses restrict and project over one page: the
// selection bitmap is computed once and the projected fields of the
// selected tuples are gathered directly from the page during the bit
// walk, with optional duplicate elimination. Equivalent to
// RestrictPage piped into ProjectPage, without the intermediate tuple
// stream.
func (s *RestrictState) RestrictProjectPage(pg *relation.Page, pj *Projector, d *Dedup, emit EmitFunc) (int, error) {
	n := pg.TupleCount()
	if n == 0 {
		return 0, nil
	}
	data, tl := pg.Data(), pg.TupleLen()
	sel := s.sized(n)
	if err := s.bp.EvalBatch(data, tl, n, sel); err != nil {
		return 0, err
	}
	emitted := 0
	for wi, w := range sel {
		base := wi << 6
		for w != 0 {
			i := base + bits.TrailingZeros64(w)
			w &= w - 1
			s.buf = pj.Apply(s.buf[:0], data[i*tl:(i+1)*tl])
			if d != nil && !d.Add(s.buf) {
				continue
			}
			if err := emit(s.buf); err != nil {
				return emitted, err
			}
			emitted++
		}
	}
	return emitted, nil
}

// ProjectState is the reusable batched project kernel: ProjectPage's
// field-span gather with the per-page output buffer hoisted into state
// and the page walked as one contiguous byte run.
type ProjectState struct {
	pj  *Projector
	buf []byte
}

// NewProjectState returns a project kernel state for the projector.
func NewProjectState(pj *Projector) *ProjectState { return &ProjectState{pj: pj} }

// ProjectPage projects every tuple of the page, emitting results that
// survive the optional dedup tracker. Byte-identical to the
// package-level ProjectPage.
func (s *ProjectState) ProjectPage(pg *relation.Page, d *Dedup, emit EmitFunc) (int, error) {
	n := pg.TupleCount()
	if n == 0 {
		return 0, nil
	}
	data, tl := pg.Data(), pg.TupleLen()
	emitted := 0
	p := 0
	for i := 0; i < n; i++ {
		s.buf = s.pj.Apply(s.buf[:0], data[p:p+tl])
		p += tl
		if d != nil && !d.Add(s.buf) {
			continue
		}
		if err := emit(s.buf); err != nil {
			return emitted, err
		}
		emitted++
	}
	return emitted, nil
}

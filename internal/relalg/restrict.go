// Package relalg implements the relational-algebra operator kernels that
// the machine's instruction processors execute: restrict, nested-loops
// join, sort-merge join (the uniprocessor baseline of Blasgen and
// Eswaran), project with duplicate elimination, append, and delete.
//
// Each operator exists in two forms: a page-at-a-time kernel (what one
// IP does to the data pages in one instruction packet) and a whole-
// relation helper used as the serial reference implementation in tests.
package relalg

import (
	"fmt"

	"dfdbm/internal/pred"
	"dfdbm/internal/relation"
)

// EmitFunc receives the encoded bytes of one result tuple. The slice may
// alias internal buffers: implementations must copy if they retain it.
// (relation.Page.AppendRaw and Paginator.Add copy.)
type EmitFunc func(raw []byte) error

// RestrictPage applies a bound predicate to every tuple of a page,
// emitting those that satisfy it. It returns the number of tuples
// emitted. This is the kernel an IP runs for a restrict instruction
// packet.
func RestrictPage(p *relation.Page, b pred.Bound, emit EmitFunc) (int, error) {
	n := p.TupleCount()
	kept := 0
	for i := 0; i < n; i++ {
		raw := p.RawTuple(i)
		ok, err := b.Eval(raw)
		if err != nil {
			return kept, err
		}
		if !ok {
			continue
		}
		if err := emit(raw); err != nil {
			return kept, err
		}
		kept++
	}
	return kept, nil
}

// Restrict applies a predicate to a whole relation, returning the
// restricted relation under the given name. This is the serial reference
// implementation.
func Restrict(r *relation.Relation, p pred.Pred, name string) (*relation.Relation, error) {
	b, err := p.Bind(r.Schema())
	if err != nil {
		return nil, err
	}
	out, err := relation.New(name, r.Schema(), r.PageSize())
	if err != nil {
		return nil, err
	}
	for _, page := range r.Pages() {
		if _, err := RestrictPage(page, b, out.InsertRaw); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Count returns the number of tuples of r satisfying p. It exists so
// callers can size selectivities without materializing results.
func Count(r *relation.Relation, p pred.Pred) (int, error) {
	b, err := p.Bind(r.Schema())
	if err != nil {
		return 0, err
	}
	total := 0
	for _, page := range r.Pages() {
		n, err := RestrictPage(page, b, func([]byte) error { return nil })
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// Append adds every tuple of src to dst. The schemas must have identical
// byte layout. It returns the number of tuples appended.
func Append(dst, src *relation.Relation) (int, error) {
	if dst.Schema().TupleLen() != src.Schema().TupleLen() {
		return 0, fmt.Errorf("relalg: append of %s into %s: tuple layouts differ", src.Name(), dst.Name())
	}
	n := 0
	var failed error
	src.EachRaw(func(raw []byte) bool {
		if err := dst.InsertRaw(raw); err != nil {
			failed = err
			return false
		}
		n++
		return true
	})
	return n, failed
}

// Delete removes every tuple of r satisfying p, compacting the relation
// afterwards, and returns the number of tuples removed.
func Delete(r *relation.Relation, p pred.Pred) (int, error) {
	if r.Stored() {
		// Disk-backed relations delete by copy-and-swap (materialize,
		// delete the resident copy, atomically rewrite the heap file);
		// wal.Record.Apply owns that path. Rewriting *r in place here
		// would silently detach the store.
		return 0, fmt.Errorf("relalg: in-place delete on stored relation %q (apply through the WAL)", r.Name())
	}
	keep, err := Restrict(r, pred.Not{Kid: p}, r.Name())
	if err != nil {
		return 0, err
	}
	removed := r.Cardinality() - keep.Cardinality()
	*r = *keep
	r.Compact()
	return removed, nil
}

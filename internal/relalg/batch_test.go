package relalg

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"dfdbm/internal/pred"
	"dfdbm/internal/relation"
)

// Seeded property tests: the batched kernels must be byte-identical —
// same tuples, same order — to the scalar kernels for every schema,
// page size, predicate shape, and selectivity the generator produces.
// The generator covers every attribute type, vectorizable and
// fallback predicate trees, NaN floats, empty pages, and duplicates.

type kernelGen struct {
	rng *rand.Rand
}

func (g *kernelGen) schema() *relation.Schema {
	nattrs := 2 + g.rng.Intn(5)
	attrs := make([]relation.Attr, nattrs)
	for i := range attrs {
		a := relation.Attr{Name: fmt.Sprintf("a%d", i)}
		switch g.rng.Intn(4) {
		case 0:
			a.Type = relation.Int32
		case 1:
			a.Type = relation.Int64
		case 2:
			a.Type = relation.Float64
		default:
			a.Type = relation.String
			a.Width = 4 + g.rng.Intn(12)
		}
		attrs[i] = a
	}
	s, err := relation.NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

func (g *kernelGen) value(a relation.Attr) relation.Value {
	switch a.Type {
	case relation.Int32, relation.Int64:
		// Small domain: predicates hit every selectivity band and
		// projections produce duplicates.
		return relation.IntVal(int64(g.rng.Intn(16)))
	case relation.Float64:
		if g.rng.Intn(16) == 0 {
			return relation.FloatVal(math.NaN())
		}
		return relation.FloatVal(float64(g.rng.Intn(16)) / 2)
	default:
		return relation.StringVal(string(rune('a' + g.rng.Intn(6))))
	}
}

func (g *kernelGen) relation(s *relation.Schema, name string) *relation.Relation {
	pageSizes := []int{128, 256, 512, 2048}
	pageSize := pageSizes[g.rng.Intn(len(pageSizes))]
	for pageSize < relation.PageHeaderLen+s.TupleLen() {
		pageSize *= 2
	}
	r, err := relation.New(name, s, pageSize)
	if err != nil {
		panic(err)
	}
	n := g.rng.Intn(300)
	for i := 0; i < n; i++ {
		t := make(relation.Tuple, s.NumAttrs())
		for j := range t {
			t[j] = g.value(s.Attr(j))
		}
		if err := r.Insert(t); err != nil {
			panic(err)
		}
	}
	return r
}

// predicate builds a random predicate tree over the schema, mixing
// vectorizable leaves with shapes the batch compiler falls back on.
func (g *kernelGen) predicate(s *relation.Schema, depth int) pred.Pred {
	ops := []pred.Op{pred.EQ, pred.NE, pred.LT, pred.LE, pred.GT, pred.GE}
	op := ops[g.rng.Intn(len(ops))]
	if depth <= 0 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(4) {
		case 0:
			// Attribute-vs-attribute on a same-type pair, if one exists.
			for try := 0; try < 8; try++ {
				i, j := g.rng.Intn(s.NumAttrs()), g.rng.Intn(s.NumAttrs())
				if i != j && s.Attr(i).Type == s.Attr(j).Type {
					return pred.CompareAttrs{A: s.Attr(i).Name, Op: op, B: s.Attr(j).Name}
				}
			}
			fallthrough
		case 1, 2:
			a := s.Attr(g.rng.Intn(s.NumAttrs()))
			return pred.Compare{Attr: a.Name, Op: op, Const: g.value(a)}
		default:
			return pred.Const(g.rng.Intn(2) == 0)
		}
	}
	switch g.rng.Intn(3) {
	case 0:
		return pred.Conj(g.predicate(s, depth-1), g.predicate(s, depth-1))
	case 1:
		return pred.Disj(g.predicate(s, depth-1), g.predicate(s, depth-1))
	default:
		return pred.Not{Kid: g.predicate(s, depth-1)}
	}
}

// collect returns an EmitFunc appending copies of the emitted raw
// tuples to dst.
func collect(dst *[][]byte) EmitFunc {
	return func(raw []byte) error {
		*dst = append(*dst, append([]byte(nil), raw...))
		return nil
	}
}

func diffStreams(t *testing.T, label string, want, got [][]byte) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: scalar emitted %d tuples, batch %d", label, len(want), len(got))
	}
	for i := range want {
		if !bytes.Equal(want[i], got[i]) {
			t.Fatalf("%s: tuple %d differs:\nscalar %x\nbatch  %x", label, i, want[i], got[i])
		}
	}
}

func TestBatchKernelsMatchScalar(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			g := &kernelGen{rng: rand.New(rand.NewSource(seed))}
			s := g.schema()
			rel := g.relation(s, "prop")
			p := g.predicate(s, 2)
			bound, err := p.Bind(s)
			if err != nil {
				t.Fatalf("bind %s: %v", p, err)
			}

			// Restrict: scalar vs batched, page by page.
			var scalar, batch [][]byte
			rs := NewRestrictState(bound)
			for _, pg := range rel.Pages() {
				if _, err := RestrictPage(pg, bound, collect(&scalar)); err != nil {
					t.Fatal(err)
				}
				if _, err := rs.RestrictPage(pg, collect(&batch)); err != nil {
					t.Fatal(err)
				}
			}
			diffStreams(t, fmt.Sprintf("restrict %s (vectorized=%v)", p, rs.Vectorized()), scalar, batch)

			// Project (with duplicate elimination): scalar vs batched.
			i := g.rng.Intn(s.NumAttrs())
			cols := []string{s.Attr(i).Name}
			if j := g.rng.Intn(s.NumAttrs()); j != i && g.rng.Intn(2) == 0 {
				cols = append(cols, s.Attr(j).Name)
			}
			pj, err := NewProjector(s, cols...)
			if err != nil {
				t.Fatal(err)
			}
			var sproj, bproj [][]byte
			sd, bd := NewDedup(), NewDedup()
			ps := NewProjectState(pj)
			for _, pg := range rel.Pages() {
				if _, err := ProjectPage(pg, pj, sd, collect(&sproj)); err != nil {
					t.Fatal(err)
				}
				if _, err := ps.ProjectPage(pg, bd, collect(&bproj)); err != nil {
					t.Fatal(err)
				}
			}
			diffStreams(t, fmt.Sprintf("project %v", cols), sproj, bproj)

			// Fused restrict+project vs the scalar two-step pipeline.
			var sfused, bfused [][]byte
			sd2, bd2 := NewDedup(), NewDedup()
			emitProjected := func(raw []byte) error {
				out := pj.Apply(nil, raw)
				if !sd2.Add(out) {
					return nil
				}
				sfused = append(sfused, out)
				return nil
			}
			for _, pg := range rel.Pages() {
				if _, err := RestrictPage(pg, bound, emitProjected); err != nil {
					t.Fatal(err)
				}
				if _, err := rs.RestrictProjectPage(pg, pj, bd2, collect(&bfused)); err != nil {
					t.Fatal(err)
				}
			}
			diffStreams(t, fmt.Sprintf("fused restrict %s project %v", p, cols), sfused, bfused)
		})
	}
}

// TestHashJoinMatchesNestedRandom drives the flat-table hash join
// against the nested-loops reference over random key types, duplicate
// distributions, and page sizes.
func TestHashJoinMatchesNestedRandom(t *testing.T) {
	types := []relation.Attr{
		{Name: "k", Type: relation.Int32},
		{Name: "k", Type: relation.Int64},
		{Name: "k", Type: relation.String, Width: 8},
	}
	for seed := int64(0); seed < 30; seed++ {
		g := &kernelGen{rng: rand.New(rand.NewSource(1000 + seed))}
		kattr := types[g.rng.Intn(len(types))]
		mk := func(name string) *relation.Relation {
			s := relation.MustSchema(kattr, relation.Attr{Name: name + "v", Type: relation.Int64})
			r, err := relation.New(name, s, 256)
			if err != nil {
				t.Fatal(err)
			}
			n := g.rng.Intn(120)
			for i := 0; i < n; i++ {
				if err := r.Insert(relation.Tuple{g.value(kattr), relation.IntVal(int64(i))}); err != nil {
				t.Fatal(err)
			}
			}
			return r
		}
		outer, inner := mk("o"), mk("i")
		cond := pred.Equi("k", "k")
		want, err := NestedLoopsJoin(outer, inner, cond, "ref")
		if err != nil {
			t.Fatal(err)
		}
		got, err := HashJoin(outer, inner, cond, "ref")
		if err != nil {
			t.Fatal(err)
		}
		if want.Cardinality() != got.Cardinality() || !want.EqualMultiset(got) {
			t.Fatalf("seed %d (%s keys): hash join differs from nested loops (%d vs %d tuples)",
				seed, kattr.Type, got.Cardinality(), want.Cardinality())
		}
	}
}

// TestDedupResetReuse is the satellite regression test: a Dedup reused
// through Reset must not allocate on the steady state — the bucket map,
// its span slices, and the arena all survive truncation.
func TestDedupResetReuse(t *testing.T) {
	raws := make([][]byte, 64)
	for i := range raws {
		raws[i] = []byte(fmt.Sprintf("tuple-%02d", i%16)) // duplicates included
	}
	d := NewDedup()
	warm := func() {
		d.Reset()
		for _, r := range raws {
			d.Add(r)
		}
	}
	warm() // size the arena and buckets
	if avg := testing.AllocsPerRun(50, warm); avg != 0 {
		t.Fatalf("Dedup reuse after Reset allocated %.1f times per run, want 0", avg)
	}
	// Reset must actually forget: every tuple is fresh again.
	d.Reset()
	for i, r := range raws[:16] {
		if !d.Add(r) {
			t.Fatalf("tuple %d reported duplicate after Reset", i)
		}
	}
}

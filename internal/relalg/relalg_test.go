package relalg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dfdbm/internal/pred"
	"dfdbm/internal/relation"
)

func intSchema(t testing.TB, names ...string) *relation.Schema {
	t.Helper()
	attrs := make([]relation.Attr, len(names))
	for i, n := range names {
		attrs[i] = relation.Attr{Name: n, Type: relation.Int32}
	}
	s, err := relation.NewSchema(attrs...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// buildRel builds a relation with rows[i] as tuple values.
func buildRel(t testing.TB, name string, s *relation.Schema, rows [][]int64) *relation.Relation {
	t.Helper()
	r := relation.MustNew(name, s, 256)
	for _, row := range rows {
		tup := make(relation.Tuple, len(row))
		for i, v := range row {
			tup[i] = relation.IntVal(v)
		}
		if err := r.Insert(tup); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestRestrict(t *testing.T) {
	s := intSchema(t, "id", "v")
	r := buildRel(t, "R", s, [][]int64{{1, 10}, {2, 20}, {3, 30}, {4, 40}})
	got, err := Restrict(r, pred.Compare{Attr: "v", Op: pred.GT, Const: relation.IntVal(15)}, "out")
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	if got.Cardinality() != 3 {
		t.Errorf("Restrict kept %d tuples, want 3", got.Cardinality())
	}
	_ = got.Each(func(tup relation.Tuple) bool {
		if tup[1].Int <= 15 {
			t.Errorf("kept tuple %v violates predicate", tup)
		}
		return true
	})
}

func TestRestrictBindError(t *testing.T) {
	s := intSchema(t, "id")
	r := buildRel(t, "R", s, [][]int64{{1}})
	if _, err := Restrict(r, pred.Compare{Attr: "nope", Op: pred.EQ, Const: relation.IntVal(1)}, "out"); err == nil {
		t.Error("Restrict with unknown attribute succeeded")
	}
}

func TestCount(t *testing.T) {
	s := intSchema(t, "id")
	r := buildRel(t, "R", s, [][]int64{{1}, {2}, {3}, {4}, {5}})
	n, err := Count(r, pred.Compare{Attr: "id", Op: pred.LE, Const: relation.IntVal(3)})
	if err != nil || n != 3 {
		t.Errorf("Count = %d, %v; want 3", n, err)
	}
}

func TestAppend(t *testing.T) {
	s := intSchema(t, "id")
	dst := buildRel(t, "D", s, [][]int64{{1}, {2}})
	src := buildRel(t, "S", s, [][]int64{{3}, {4}, {5}})
	n, err := Append(dst, src)
	if err != nil || n != 3 {
		t.Fatalf("Append = %d, %v; want 3", n, err)
	}
	if dst.Cardinality() != 5 {
		t.Errorf("dst has %d tuples, want 5", dst.Cardinality())
	}
	other := buildRel(t, "O", intSchema(t, "a", "b"), nil)
	if _, err := Append(dst, other); err == nil {
		t.Error("Append with mismatched layout succeeded")
	}
}

func TestDelete(t *testing.T) {
	s := intSchema(t, "id")
	r := buildRel(t, "R", s, [][]int64{{1}, {2}, {3}, {4}, {5}, {6}})
	n, err := Delete(r, pred.Compare{Attr: "id", Op: pred.GT, Const: relation.IntVal(4)})
	if err != nil || n != 2 {
		t.Fatalf("Delete = %d, %v; want 2", n, err)
	}
	if r.Cardinality() != 4 {
		t.Errorf("relation has %d tuples after delete, want 4", r.Cardinality())
	}
	_ = r.Each(func(tup relation.Tuple) bool {
		if tup[0].Int > 4 {
			t.Errorf("tuple %v survived delete", tup)
		}
		return true
	})
}

func TestNestedLoopsJoin(t *testing.T) {
	outer := buildRel(t, "O", intSchema(t, "id", "x"), [][]int64{{1, 100}, {2, 200}, {3, 300}})
	inner := buildRel(t, "I", intSchema(t, "fk", "y"), [][]int64{{1, 11}, {1, 12}, {3, 31}, {9, 99}})
	out, err := NestedLoopsJoin(outer, inner, pred.Equi("id", "fk"), "J")
	if err != nil {
		t.Fatalf("NestedLoopsJoin: %v", err)
	}
	if out.Cardinality() != 3 {
		t.Fatalf("join produced %d tuples, want 3", out.Cardinality())
	}
	if out.Schema().NumAttrs() != 4 {
		t.Errorf("join schema has %d attrs, want 4", out.Schema().NumAttrs())
	}
	_ = out.Each(func(tup relation.Tuple) bool {
		if tup[0].Int != tup[2].Int {
			t.Errorf("joined tuple %v violates condition", tup)
		}
		return true
	})
}

func TestJoinSchemaCollision(t *testing.T) {
	outer := buildRel(t, "O", intSchema(t, "id", "v"), nil)
	inner := buildRel(t, "I", intSchema(t, "id", "w"), nil)
	s, err := JoinSchema(outer, inner)
	if err != nil {
		t.Fatalf("JoinSchema: %v", err)
	}
	if !s.HasAttr("I.id") {
		t.Errorf("collision not prefixed: %s", s)
	}
}

func TestSortMergeJoinMatchesNestedLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		oRows := make([][]int64, rng.Intn(40))
		for i := range oRows {
			oRows[i] = []int64{int64(rng.Intn(10)), int64(rng.Intn(100))}
		}
		iRows := make([][]int64, rng.Intn(40))
		for i := range iRows {
			iRows[i] = []int64{int64(rng.Intn(10)), int64(rng.Intn(100))}
		}
		outer := buildRel(t, "O", intSchema(t, "id", "x"), oRows)
		inner := buildRel(t, "I", intSchema(t, "fk", "y"), iRows)
		nl, err := NestedLoopsJoin(outer, inner, pred.Equi("id", "fk"), "NL")
		if err != nil {
			t.Fatal(err)
		}
		sm, err := SortMergeJoin(outer, inner, pred.Equi("id", "fk"), "SM")
		if err != nil {
			t.Fatal(err)
		}
		if !nl.EqualMultiset(sm) {
			t.Fatalf("trial %d: sort-merge (%d tuples) != nested loops (%d tuples)",
				trial, sm.Cardinality(), nl.Cardinality())
		}
	}
}

func TestSortMergeJoinResidualTerms(t *testing.T) {
	outer := buildRel(t, "O", intSchema(t, "id", "x"), [][]int64{{1, 5}, {1, 50}})
	inner := buildRel(t, "I", intSchema(t, "fk", "y"), [][]int64{{1, 10}, {1, 60}})
	cond := pred.JoinCond{Terms: []pred.JoinTerm{
		{Left: "id", Op: pred.EQ, Right: "fk"},
		{Left: "x", Op: pred.LT, Right: "y"},
	}}
	nl, err := NestedLoopsJoin(outer, inner, cond, "NL")
	if err != nil {
		t.Fatal(err)
	}
	sm, err := SortMergeJoin(outer, inner, cond, "SM")
	if err != nil {
		t.Fatal(err)
	}
	if !nl.EqualMultiset(sm) || nl.Cardinality() != 3 {
		t.Errorf("residual terms: nl=%d sm=%d, want both 3", nl.Cardinality(), sm.Cardinality())
	}
}

func TestSortMergeJoinNeedsEquiTerm(t *testing.T) {
	outer := buildRel(t, "O", intSchema(t, "a"), nil)
	inner := buildRel(t, "I", intSchema(t, "b"), nil)
	cond := pred.JoinCond{Terms: []pred.JoinTerm{{Left: "a", Op: pred.LT, Right: "b"}}}
	if _, err := SortMergeJoin(outer, inner, cond, "SM"); err == nil {
		t.Error("SortMergeJoin without equality term succeeded")
	}
}

func TestJoinPagesKernel(t *testing.T) {
	os := intSchema(t, "id")
	is := intSchema(t, "fk")
	op := relation.MustNewPage(256, os.TupleLen())
	ip := relation.MustNewPage(256, is.TupleLen())
	for _, v := range []int64{1, 2, 3} {
		if err := op.AppendTuple(os, relation.Tuple{relation.IntVal(v)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range []int64{2, 3, 3} {
		if err := ip.AppendTuple(is, relation.Tuple{relation.IntVal(v)}); err != nil {
			t.Fatal(err)
		}
	}
	bound, err := pred.Equi("id", "fk").Bind(os, is)
	if err != nil {
		t.Fatal(err)
	}
	n, err := JoinPages(op, ip, bound, func([]byte) error { return nil })
	if err != nil || n != 3 {
		t.Errorf("JoinPages emitted %d, %v; want 3", n, err)
	}
}

func TestProject(t *testing.T) {
	s := intSchema(t, "a", "b", "c")
	r := buildRel(t, "R", s, [][]int64{
		{1, 10, 100}, {1, 10, 200}, {2, 20, 300}, {2, 21, 400},
	})
	out, err := Project(r, "P", "a", "b")
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	// Distinct (a, b) pairs: (1,10), (2,20), (2,21).
	if out.Cardinality() != 3 {
		t.Errorf("Project produced %d tuples, want 3", out.Cardinality())
	}
	if out.Schema().NumAttrs() != 2 {
		t.Errorf("projected schema %s, want 2 attrs", out.Schema())
	}
	if _, err := Project(r, "P", "missing"); err == nil {
		t.Error("Project onto missing attribute succeeded")
	}
}

func TestDedup(t *testing.T) {
	d := NewDedup()
	if !d.Add([]byte("x")) || d.Add([]byte("x")) || !d.Add([]byte("y")) {
		t.Error("Dedup.Add misbehaves")
	}
	if d.Len() != 2 {
		t.Errorf("Dedup.Len = %d, want 2", d.Len())
	}
}

func TestHashPartitionStable(t *testing.T) {
	raw := []byte{1, 2, 3, 4}
	p := HashPartition(raw, 8)
	for i := 0; i < 10; i++ {
		if HashPartition(raw, 8) != p {
			t.Fatal("HashPartition not deterministic")
		}
	}
	if p < 0 || p >= 8 {
		t.Errorf("partition %d out of range", p)
	}
	if HashPartition(raw, 1) != 0 || HashPartition(raw, 0) != 0 {
		t.Error("degenerate partition counts must map to 0")
	}
}

// TestQuickPartitionedProjectMatchesGlobal: deduplicating within hash
// partitions is equivalent to global dedup — the invariant that makes
// the parallel project algorithm correct.
func TestQuickPartitionedProjectMatchesGlobal(t *testing.T) {
	s := intSchema(t, "a", "b", "c")
	f := func(seed int64, nParts uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		parts := int(nParts%7) + 1
		rows := make([][]int64, 50)
		for i := range rows {
			rows[i] = []int64{int64(rng.Intn(4)), int64(rng.Intn(4)), int64(rng.Intn(1000))}
		}
		r := buildRel(t, "R", s, rows)
		global, err := Project(r, "G", "a", "b")
		if err != nil {
			return false
		}
		// Partitioned: route each projected tuple to a partition, dedup
		// per partition, count the union.
		proj, err := NewProjector(s, "a", "b")
		if err != nil {
			return false
		}
		dedups := make([]*Dedup, parts)
		for i := range dedups {
			dedups[i] = NewDedup()
		}
		total := 0
		buf := make([]byte, 0, proj.OutSchema().TupleLen())
		r.EachRaw(func(raw []byte) bool {
			buf = proj.Apply(buf[:0], raw)
			if dedups[HashPartition(buf, parts)].Add(buf) {
				total++
			}
			return true
		})
		return total == global.Cardinality()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickJoinInvariants: every emitted pair satisfies the condition and
// the emitted count equals a brute-force reference count.
func TestQuickJoinInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		oRows := make([][]int64, rng.Intn(30))
		for i := range oRows {
			oRows[i] = []int64{int64(rng.Intn(8))}
		}
		iRows := make([][]int64, rng.Intn(30))
		for i := range iRows {
			iRows[i] = []int64{int64(rng.Intn(8))}
		}
		outer := buildRel(t, "O", intSchema(t, "id"), oRows)
		inner := buildRel(t, "I", intSchema(t, "fk"), iRows)
		got, err := NestedLoopsJoin(outer, inner, pred.Equi("id", "fk"), "J")
		if err != nil {
			return false
		}
		want := 0
		for _, o := range oRows {
			for _, in := range iRows {
				if o[0] == in[0] {
					want++
				}
			}
		}
		if got.Cardinality() != want {
			return false
		}
		ok := true
		_ = got.Each(func(tup relation.Tuple) bool {
			if tup[0].Int != tup[1].Int {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

package relalg

import (
	"fmt"
	"sort"

	"dfdbm/internal/pred"
	"dfdbm/internal/relation"
)

// JoinPages runs the nested-loops kernel for one (outer page, inner page)
// pair: every outer tuple is compared with every inner tuple, and
// concatenated result tuples are emitted for pairs that satisfy the
// condition. This is exactly the work one IP performs per instruction
// packet of a join, and the unit of cost in the paper's n·m analysis.
//
// The emitted raw slice is reused between calls; receivers must copy.
// Callers on the hot path should prefer a reusable JoinState, which
// keeps the scratch buffer (and, for equi-joins, hash tables) alive
// between page pairs.
func JoinPages(outer, inner *relation.Page, cond *pred.BoundJoin, emit EmitFunc) (int, error) {
	emitted, _, err := joinPagesNested(outer, inner, cond, nil, emit)
	return emitted, err
}

// joinPagesNested is the nested-loops kernel over a caller-owned scratch
// buffer; it returns the (possibly grown) buffer for reuse.
func joinPagesNested(outer, inner *relation.Page, cond *pred.BoundJoin, buf []byte, emit EmitFunc) (int, []byte, error) {
	no, ni := outer.TupleCount(), inner.TupleCount()
	if cap(buf) == 0 {
		buf = make([]byte, 0, outer.TupleLen()+inner.TupleLen())
	}
	emitted := 0
	for i := 0; i < no; i++ {
		oraw := outer.RawTuple(i)
		for j := 0; j < ni; j++ {
			iraw := inner.RawTuple(j)
			ok, err := cond.EvalPair(oraw, iraw)
			if err != nil {
				return emitted, buf, err
			}
			if !ok {
				continue
			}
			buf = append(append(buf[:0], oraw...), iraw...)
			if err := emit(buf); err != nil {
				return emitted, buf, err
			}
			emitted++
		}
	}
	return emitted, buf, nil
}

// JoinSchema returns the result schema of joining outer with inner:
// outer's attributes followed by inner's, inner names prefixed with the
// inner relation's name on collision.
func JoinSchema(outer, inner *relation.Relation) (*relation.Schema, error) {
	return outer.Schema().Concat(inner.Schema(), inner.Name())
}

// NestedLoopsJoin joins two whole relations with the O(n·m) nested-loops
// algorithm — the algorithm the paper identifies as "the best algorithm
// for execution of the join operator on multiple processors". This
// serial form is the reference implementation and the uniprocessor
// baseline.
func NestedLoopsJoin(outer, inner *relation.Relation, cond pred.JoinCond, name string) (*relation.Relation, error) {
	bound, err := cond.Bind(outer.Schema(), inner.Schema())
	if err != nil {
		return nil, err
	}
	schema, err := JoinSchema(outer, inner)
	if err != nil {
		return nil, err
	}
	out, err := relation.New(name, schema, pagedSizeFor(outer, inner, schema))
	if err != nil {
		return nil, err
	}
	for _, op := range outer.Pages() {
		for _, ip := range inner.Pages() {
			if _, err := JoinPages(op, ip, bound, out.InsertRaw); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// pagedSizeFor picks a page size for a join result: the larger of the
// operand page sizes, grown if necessary to fit one result tuple.
func pagedSizeFor(outer, inner *relation.Relation, result *relation.Schema) int {
	size := outer.PageSize()
	if inner.PageSize() > size {
		size = inner.PageSize()
	}
	if min := relation.PageHeaderLen + result.TupleLen(); size < min {
		size = min
	}
	return size
}

// SortMergeJoin joins two relations with the O(n log n) sorted-merge
// algorithm of Blasgen and Eswaran. The condition must contain at least
// one equality term, which becomes the sort key; remaining terms are
// applied as a residual filter. On a single processor this is the
// fastest of the classical join algorithms — the paper's Section 2.1
// contrast with nested loops.
func SortMergeJoin(outer, inner *relation.Relation, cond pred.JoinCond, name string) (*relation.Relation, error) {
	bound, err := cond.Bind(outer.Schema(), inner.Schema())
	if err != nil {
		return nil, err
	}
	li, ri, ok := bound.FirstEqui()
	if !ok {
		return nil, fmt.Errorf("relalg: sort-merge join needs an equality term in %q", cond)
	}
	schema, err := JoinSchema(outer, inner)
	if err != nil {
		return nil, err
	}
	out, err := relation.New(name, schema, pagedSizeFor(outer, inner, schema))
	if err != nil {
		return nil, err
	}

	left, err := sortedRaws(outer, li)
	if err != nil {
		return nil, err
	}
	right, err := sortedRaws(inner, ri)
	if err != nil {
		return nil, err
	}

	buf := make([]byte, 0, outer.Schema().TupleLen()+inner.Schema().TupleLen())
	i, j := 0, 0
	for i < len(left) && j < len(right) {
		cmp, err := left[i].key.Compare(right[j].key)
		if err != nil {
			return nil, err
		}
		switch {
		case cmp < 0:
			i++
		case cmp > 0:
			j++
		default:
			// Find the extent of the equal-key group on each side and
			// cross the groups, applying the full condition (residual
			// terms included).
			iEnd := i
			for iEnd < len(left) && mustEqual(left[iEnd].key, left[i].key) {
				iEnd++
			}
			jEnd := j
			for jEnd < len(right) && mustEqual(right[jEnd].key, right[j].key) {
				jEnd++
			}
			for a := i; a < iEnd; a++ {
				for b := j; b < jEnd; b++ {
					ok, err := bound.EvalPair(left[a].raw, right[b].raw)
					if err != nil {
						return nil, err
					}
					if !ok {
						continue
					}
					buf = buf[:0]
					buf = append(buf, left[a].raw...)
					buf = append(buf, right[b].raw...)
					if err := out.InsertRaw(buf); err != nil {
						return nil, err
					}
				}
			}
			i, j = iEnd, jEnd
		}
	}
	return out, nil
}

type keyedRaw struct {
	key relation.Value
	raw []byte
}

func mustEqual(a, b relation.Value) bool {
	c, err := a.Compare(b)
	return err == nil && c == 0
}

// sortedRaws materializes the raw tuples of r sorted by attribute attr.
func sortedRaws(r *relation.Relation, attr int) ([]keyedRaw, error) {
	s := r.Schema()
	out := make([]keyedRaw, 0, r.Cardinality())
	var failed error
	r.EachRaw(func(raw []byte) bool {
		v, err := relation.DecodeValue(s, raw, attr)
		if err != nil {
			failed = err
			return false
		}
		out = append(out, keyedRaw{key: v, raw: append([]byte(nil), raw...)})
		return true
	})
	if failed != nil {
		return nil, failed
	}
	sort.SliceStable(out, func(a, b int) bool {
		c, _ := out[a].key.Compare(out[b].key)
		return c < 0
	})
	return out, nil
}

package relalg

import (
	"sync/atomic"

	"dfdbm/internal/pred"
	"dfdbm/internal/relation"
)

// Kernel identifies which per-page-pair join algorithm a JoinState runs.
type Kernel uint8

const (
	// KernelNestedLoops is the paper's O(n·m) kernel: every outer tuple
	// compared with every inner tuple.
	KernelNestedLoops Kernel = iota
	// KernelHash builds a hash table over the inner page once and probes
	// each outer tuple against it — O(n+m) per page pair for equi-joins.
	KernelHash
)

// String names the kernel for traces and benchmark reports.
func (k Kernel) String() string {
	if k == KernelHash {
		return "hash"
	}
	return "nested-loops"
}

// KernelFor selects the join kernel for a bound condition: hash for
// conditions with a hashable equality term (int or string key), nested
// loops otherwise. Float equality terms fall back to nested loops
// because their value equality is not byte equality (-0 == +0, NaN).
func KernelFor(cond *pred.BoundJoin) Kernel {
	if _, ok := cond.HashKey(); ok {
		return KernelHash
	}
	return KernelNestedLoops
}

// KernelStats aggregates join-kernel work counters across the
// JoinStates that share it. Fields are updated atomically: engines
// snapshot them while workers may still be running.
type KernelStats struct {
	HashProbes  int64 // outer tuples probed against a hash table
	HashBuilds  int64 // inner-page hash tables built
	TableHits   int64 // page pairs served by a cached table
	NestedPairs int64 // tuple pairs compared by the nested kernel
}

// Load returns an atomically read copy of the counters.
func (ks *KernelStats) Load() KernelStats {
	return KernelStats{
		HashProbes:  atomic.LoadInt64(&ks.HashProbes),
		HashBuilds:  atomic.LoadInt64(&ks.HashBuilds),
		TableHits:   atomic.LoadInt64(&ks.TableHits),
		NestedPairs: atomic.LoadInt64(&ks.NestedPairs),
	}
}

// defaultTableCache bounds how many inner-page hash tables a JoinState
// retains. In the ring machine this is the IRC-vector effect of the
// paper's Section 4.2 broadcast join: the inner pages a processor has
// already seen stay resident between instruction packets.
const defaultTableCache = 64

// JoinState is the reusable per-executor state of the join kernels: the
// kernel selection for one bound condition, the scratch emit and key
// buffers, and a cache of inner-page hash tables keyed by page
// identity. A JoinState is owned by a single goroutine at a time (one
// per worker or per IP); only the shared KernelStats is concurrency-safe.
//
// Both kernels emit byte-identical output in identical order: the hash
// kernel's bucket lists hold inner tuple indexes in ascending order and
// every candidate is re-verified with the full condition, so for each
// outer tuple the matching pairs appear exactly as the nested kernel
// produces them.
type JoinState struct {
	cond   *pred.BoundJoin
	stats  *KernelStats
	kernel Kernel
	key    pred.HashKey

	// MaxTables bounds the inner-page table cache; oldest-built tables
	// are evicted first (deterministically) when it overflows.
	MaxTables int

	buf    []byte // emit scratch: concatenated result tuple
	kbuf   []byte // key scratch: canonical hash-key bytes
	tables map[*relation.Page]map[uint64][]int32
	order  []*relation.Page // build order, for FIFO eviction
}

// NewJoinState returns a JoinState for the bound condition, selecting
// the kernel automatically. stats may be nil.
func NewJoinState(cond *pred.BoundJoin, stats *KernelStats) *JoinState {
	s := &JoinState{cond: cond, stats: stats, MaxTables: defaultTableCache}
	if key, ok := cond.HashKey(); ok {
		s.kernel = KernelHash
		s.key = key
	}
	return s
}

// Kernel reports which kernel the state runs.
func (s *JoinState) Kernel() Kernel { return s.kernel }

// TableCached reports whether the inner page's hash table is already
// resident — the machine's timing model charges no build cost for a
// cached table.
func (s *JoinState) TableCached(inner *relation.Page) bool {
	_, ok := s.tables[inner]
	return ok
}

// Reset drops the cached hash tables (a new instruction packet means a
// new inner operand) but keeps the scratch buffers.
func (s *JoinState) Reset() {
	s.tables = nil
	s.order = s.order[:0]
}

// JoinPages joins one (outer page, inner page) pair with the selected
// kernel, emitting concatenated result tuples. The emitted raw slice is
// reused between calls; receivers must copy.
func (s *JoinState) JoinPages(outer, inner *relation.Page, emit EmitFunc) (int, error) {
	if s.kernel == KernelHash {
		return s.hashJoinPages(outer, inner, emit)
	}
	emitted, buf, err := joinPagesNested(outer, inner, s.cond, s.buf, emit)
	s.buf = buf
	if s.stats != nil {
		atomic.AddInt64(&s.stats.NestedPairs, int64(outer.TupleCount())*int64(inner.TupleCount()))
	}
	return emitted, err
}

func (s *JoinState) hashJoinPages(outer, inner *relation.Page, emit EmitFunc) (int, error) {
	no := outer.TupleCount()
	if no == 0 || inner.TupleCount() == 0 {
		return 0, nil
	}
	table := s.table(inner)
	emitted := 0
	for i := 0; i < no; i++ {
		oraw := outer.RawTuple(i)
		s.kbuf = s.key.AppendLeftKey(s.kbuf[:0], oraw)
		for _, j := range table[fnv1a64(s.kbuf)] {
			iraw := inner.RawTuple(int(j))
			// Candidates share the key's hash, not necessarily the key:
			// the full condition re-verifies (and applies residual terms).
			ok, err := s.cond.EvalPair(oraw, iraw)
			if err != nil {
				return emitted, err
			}
			if !ok {
				continue
			}
			s.buf = append(append(s.buf[:0], oraw...), iraw...)
			if err := emit(s.buf); err != nil {
				return emitted, err
			}
			emitted++
		}
	}
	if s.stats != nil {
		atomic.AddInt64(&s.stats.HashProbes, int64(no))
	}
	return emitted, nil
}

// table returns the hash table for the inner page, building it on first
// use and caching it under the page's identity.
func (s *JoinState) table(inner *relation.Page) map[uint64][]int32 {
	if t, ok := s.tables[inner]; ok {
		if s.stats != nil {
			atomic.AddInt64(&s.stats.TableHits, 1)
		}
		return t
	}
	ni := inner.TupleCount()
	t := make(map[uint64][]int32, ni)
	for j := 0; j < ni; j++ {
		s.kbuf = s.key.AppendRightKey(s.kbuf[:0], inner.RawTuple(j))
		h := fnv1a64(s.kbuf)
		t[h] = append(t[h], int32(j))
	}
	if s.stats != nil {
		atomic.AddInt64(&s.stats.HashBuilds, 1)
	}
	if s.tables == nil {
		s.tables = make(map[*relation.Page]map[uint64][]int32)
	}
	if s.MaxTables > 0 && len(s.order) >= s.MaxTables {
		delete(s.tables, s.order[0])
		s.order = s.order[1:]
	}
	s.tables[inner] = t
	s.order = append(s.order, inner)
	return t
}

// HashJoin joins two whole relations with the hash kernel, iterating
// page pairs exactly as NestedLoopsJoin does so the result relation is
// byte-identical. The condition must have a hashable equality term.
func HashJoin(outer, inner *relation.Relation, cond pred.JoinCond, name string) (*relation.Relation, error) {
	bound, err := cond.Bind(outer.Schema(), inner.Schema())
	if err != nil {
		return nil, err
	}
	schema, err := JoinSchema(outer, inner)
	if err != nil {
		return nil, err
	}
	out, err := relation.New(name, schema, pagedSizeFor(outer, inner, schema))
	if err != nil {
		return nil, err
	}
	st := NewJoinState(bound, nil)
	if n := len(inner.Pages()); n > st.MaxTables {
		// Whole-relation form: every inner page recurs once per outer
		// page, so cap the table cache at the inner size rather than
		// thrash the FIFO.
		st.MaxTables = n
	}
	for _, op := range outer.Pages() {
		for _, ip := range inner.Pages() {
			if _, err := st.JoinPages(op, ip, out.InsertRaw); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// FNV-1a 64-bit, inlined so key hashing allocates nothing.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func fnv1a64(b []byte) uint64 {
	h := fnvOffset64
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

package relalg

import (
	"sync/atomic"

	"dfdbm/internal/pred"
	"dfdbm/internal/relation"
)

// Kernel identifies which per-page-pair join algorithm a JoinState runs.
type Kernel uint8

const (
	// KernelNestedLoops is the paper's O(n·m) kernel: every outer tuple
	// compared with every inner tuple.
	KernelNestedLoops Kernel = iota
	// KernelHash builds a hash table over the inner page once and probes
	// each outer tuple against it — O(n+m) per page pair for equi-joins.
	KernelHash
)

// String names the kernel for traces and benchmark reports.
func (k Kernel) String() string {
	if k == KernelHash {
		return "hash"
	}
	return "nested-loops"
}

// KernelFor selects the join kernel for a bound condition: hash for
// conditions with a hashable equality term (int or string key), nested
// loops otherwise. Float equality terms fall back to nested loops
// because their value equality is not byte equality (-0 == +0, NaN).
func KernelFor(cond *pred.BoundJoin) Kernel {
	if _, ok := cond.HashKey(); ok {
		return KernelHash
	}
	return KernelNestedLoops
}

// KernelStats aggregates join-kernel work counters across the
// JoinStates that share it. Fields are updated atomically: engines
// snapshot them while workers may still be running.
type KernelStats struct {
	HashProbes  int64 // outer tuples probed against a hash table
	HashBuilds  int64 // inner-page hash tables built
	TableHits   int64 // page pairs served by a cached table
	NestedPairs int64 // tuple pairs compared by the nested kernel
}

// Load returns an atomically read copy of the counters.
func (ks *KernelStats) Load() KernelStats {
	return KernelStats{
		HashProbes:  atomic.LoadInt64(&ks.HashProbes),
		HashBuilds:  atomic.LoadInt64(&ks.HashBuilds),
		TableHits:   atomic.LoadInt64(&ks.TableHits),
		NestedPairs: atomic.LoadInt64(&ks.NestedPairs),
	}
}

// defaultTableCache bounds how many inner-page hash tables a JoinState
// retains. In the ring machine this is the IRC-vector effect of the
// paper's Section 4.2 broadcast join: the inner pages a processor has
// already seen stay resident between instruction packets.
const defaultTableCache = 64

// JoinState is the reusable per-executor state of the join kernels: the
// kernel selection for one bound condition, the scratch emit buffer,
// and a cache of inner-page hash tables keyed by page identity. A
// JoinState is owned by a single goroutine at a time (one per worker or
// per IP); only the shared KernelStats is concurrency-safe.
//
// Both kernels emit byte-identical output in identical order: the hash
// kernel's bucket chains hold inner tuple indexes in ascending order
// and every key match is either exact by construction (single-term
// integer equality, where the canonical key is the value) or
// re-verified with the full condition, so for each outer tuple the
// matching pairs appear exactly as the nested kernel produces them.
type JoinState struct {
	cond   *pred.BoundJoin
	stats  *KernelStats
	kernel Kernel
	key    pred.HashKey
	exact  bool // key equality alone confirms a match (single-term int equi-join)

	// MaxTables bounds the inner-page table cache; oldest-built tables
	// are evicted first (deterministically) when it overflows.
	MaxTables int

	buf    []byte // emit scratch: concatenated result tuple
	tables map[*relation.Page]*pageTable
	order  []*relation.Page // build order, for FIFO eviction
	free   []*pageTable     // evicted tables, recycled to make rebuilds allocation-free

	// Single-entry memos in front of the page-identity maps: the
	// broadcast join probes one outer page against a run of inner pages
	// (and one inner table against a run of outer pages), so the last
	// page repeats on at least one side of every pair.
	lastInner *relation.Page
	lastTable *pageTable
	lastOuter *relation.Page
	lastOKeys []uint64

	// okeys caches the canonical key vector of outer pages: under the
	// broadcast join one outer page probes every resident inner page,
	// so extracting its keys once and reusing them across the inner
	// loop removes the dominant per-probe cost. Bounded by the same
	// MaxTables FIFO discipline as the inner tables.
	okeys     map[*relation.Page][]uint64
	okeyOrder []*relation.Page
	okeyFree  [][]uint64
}

// NewJoinState returns a JoinState for the bound condition, selecting
// the kernel automatically. stats may be nil.
func NewJoinState(cond *pred.BoundJoin, stats *KernelStats) *JoinState {
	s := &JoinState{cond: cond, stats: stats, MaxTables: defaultTableCache}
	if key, ok := cond.HashKey(); ok {
		s.kernel = KernelHash
		s.key = key
		s.exact = cond.SingleIntEqui()
	}
	return s
}

// pageTable is a flat chained hash table over one inner page. heads
// holds the first tuple index of each power-of-two bucket (-1 when
// empty) and entries carries, per inner tuple, its canonical 64-bit
// key (the integer value itself, or an FNV-1a hash of the trimmed
// string bytes) together with the next tuple index of its chain — one
// cache line serves both the key compare and the chain step. Building
// prepends in descending tuple order, so every chain is traversed in
// ascending order — the emission order of the nested kernel. Compared
// to the old map[uint64][]int32 per page, probing is a multiply, a
// shift, and a short chain walk over two flat slices: no key-byte
// materialization, no map lookup.
type pageTable struct {
	heads   []int32
	entries []tableEntry
	shift   uint
}

type tableEntry struct {
	key  uint64
	next int32
}

// fibMul is the 64-bit Fibonacci-hashing multiplier (2^64/φ); the high
// bits of key*fibMul index the bucket array.
const fibMul = 0x9E3779B97F4A7C15

// Kernel reports which kernel the state runs.
func (s *JoinState) Kernel() Kernel { return s.kernel }

// TableCached reports whether the inner page's hash table is already
// resident — the machine's timing model charges no build cost for a
// cached table.
func (s *JoinState) TableCached(inner *relation.Page) bool {
	_, ok := s.tables[inner]
	return ok
}

// Reset drops the cached hash tables (a new instruction packet means a
// new inner operand) but keeps the scratch buffers; the dropped tables'
// storage is recycled for the next builds.
func (s *JoinState) Reset() {
	for _, t := range s.tables {
		s.free = append(s.free, t)
	}
	s.tables = nil
	s.order = s.order[:0]
	for _, k := range s.okeys {
		s.okeyFree = append(s.okeyFree, k)
	}
	s.okeys = nil
	s.okeyOrder = s.okeyOrder[:0]
	s.lastInner, s.lastTable = nil, nil
	s.lastOuter, s.lastOKeys = nil, nil
}

// Build ensures the inner page's hash table is resident, building and
// caching it if necessary. Exposed so benchmarks can time the build
// phase separately from the probe phase.
func (s *JoinState) Build(inner *relation.Page) {
	if s.kernel != KernelHash || inner.TupleCount() == 0 {
		return
	}
	s.table(inner)
}

// JoinPages joins one (outer page, inner page) pair with the selected
// kernel, emitting concatenated result tuples. The emitted raw slice is
// reused between calls; receivers must copy.
func (s *JoinState) JoinPages(outer, inner *relation.Page, emit EmitFunc) (int, error) {
	if s.kernel == KernelHash {
		return s.hashJoinPages(outer, inner, emit)
	}
	emitted, buf, err := joinPagesNested(outer, inner, s.cond, s.buf, emit)
	s.buf = buf
	if s.stats != nil {
		atomic.AddInt64(&s.stats.NestedPairs, int64(outer.TupleCount())*int64(inner.TupleCount()))
	}
	return emitted, err
}

func (s *JoinState) hashJoinPages(outer, inner *relation.Page, emit EmitFunc) (int, error) {
	no := outer.TupleCount()
	if no == 0 || inner.TupleCount() == 0 {
		return 0, nil
	}
	t := s.table(inner)
	okeys := s.outerKeys(outer)
	emitted := 0
	odata, otl := outer.Data(), outer.TupleLen()
	heads, entries, shift := t.heads, t.entries, t.shift
	exact := s.exact
	for i, k := range okeys {
		for j := heads[(k*fibMul)>>shift]; j >= 0; {
			e := entries[j]
			ji := int(j)
			j = e.next
			if e.key != k {
				continue
			}
			oraw := odata[i*otl : i*otl+otl]
			iraw := inner.RawTuple(ji)
			if !exact {
				// Equal canonical keys do not imply a match here (string
				// keys are hashes, and residual terms may remain): the
				// full condition re-verifies.
				ok, err := s.cond.EvalPair(oraw, iraw)
				if err != nil {
					return emitted, err
				}
				if !ok {
					continue
				}
			}
			s.buf = append(append(s.buf[:0], oraw...), iraw...)
			if err := emit(s.buf); err != nil {
				return emitted, err
			}
			emitted++
		}
	}
	if s.stats != nil {
		atomic.AddInt64(&s.stats.HashProbes, int64(no))
	}
	return emitted, nil
}

// table returns the hash table for the inner page, building it on first
// use and caching it under the page's identity.
func (s *JoinState) table(inner *relation.Page) *pageTable {
	if inner == s.lastInner {
		if s.stats != nil {
			atomic.AddInt64(&s.stats.TableHits, 1)
		}
		return s.lastTable
	}
	if t, ok := s.tables[inner]; ok {
		if s.stats != nil {
			atomic.AddInt64(&s.stats.TableHits, 1)
		}
		s.lastInner, s.lastTable = inner, t
		return t
	}
	t := s.build(inner)
	if s.stats != nil {
		atomic.AddInt64(&s.stats.HashBuilds, 1)
	}
	if s.tables == nil {
		s.tables = make(map[*relation.Page]*pageTable)
	}
	if s.MaxTables > 0 && len(s.order) >= s.MaxTables {
		old := s.order[0]
		s.free = append(s.free, s.tables[old])
		delete(s.tables, old)
		s.order = s.order[1:]
		if old == s.lastInner {
			s.lastInner, s.lastTable = nil, nil
		}
	}
	s.tables[inner] = t
	s.order = append(s.order, inner)
	s.lastInner, s.lastTable = inner, t
	return t
}

// build constructs the flat chained table for one inner page, reusing
// an evicted table's storage when one is free.
func (s *JoinState) build(inner *relation.Page) *pageTable {
	var t *pageTable
	if n := len(s.free); n > 0 {
		t = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		t = &pageTable{}
	}
	ni := inner.TupleCount()
	// Size for a load factor of at most 0.5: halving bucket collisions
	// shortens the chain walk, which dominates the probe cost.
	size := 1
	log2 := 0
	for size < 2*ni {
		size <<= 1
		log2++
	}
	t.shift = uint(64 - log2)
	if cap(t.heads) < size {
		t.heads = make([]int32, size)
	} else {
		t.heads = t.heads[:size]
	}
	for i := range t.heads {
		t.heads[i] = -1
	}
	if cap(t.entries) < ni {
		t.entries = make([]tableEntry, ni)
	} else {
		t.entries = t.entries[:ni]
	}
	data, tl := inner.Data(), inner.TupleLen()
	key := s.key
	// Descending build order: prepending j makes each bucket chain run
	// in ascending tuple order, preserving nested-loops emission order.
	for j := ni - 1; j >= 0; j-- {
		k := key.RightKeyUint64(data[j*tl : (j+1)*tl])
		b := (k * fibMul) >> t.shift
		t.entries[j] = tableEntry{key: k, next: t.heads[b]}
		t.heads[b] = int32(j)
	}
	return t
}

// outerKeys returns the cached canonical key vector of the outer page,
// extracting it on first use.
func (s *JoinState) outerKeys(outer *relation.Page) []uint64 {
	if outer == s.lastOuter {
		return s.lastOKeys
	}
	if k, ok := s.okeys[outer]; ok {
		s.lastOuter, s.lastOKeys = outer, k
		return k
	}
	no := outer.TupleCount()
	var ks []uint64
	if n := len(s.okeyFree); n > 0 {
		ks = s.okeyFree[n-1][:0]
		s.okeyFree = s.okeyFree[:n-1]
	}
	if cap(ks) < no {
		ks = make([]uint64, no)
	} else {
		ks = ks[:no]
	}
	data, tl := outer.Data(), outer.TupleLen()
	key := s.key
	for i, p := 0, 0; i < no; i, p = i+1, p+tl {
		ks[i] = key.LeftKeyUint64(data[p : p+tl])
	}
	if s.okeys == nil {
		s.okeys = make(map[*relation.Page][]uint64)
	}
	if s.MaxTables > 0 && len(s.okeyOrder) >= s.MaxTables {
		old := s.okeyOrder[0]
		s.okeyFree = append(s.okeyFree, s.okeys[old])
		delete(s.okeys, old)
		s.okeyOrder = s.okeyOrder[1:]
		if old == s.lastOuter {
			s.lastOuter, s.lastOKeys = nil, nil
		}
	}
	s.okeys[outer] = ks
	s.okeyOrder = append(s.okeyOrder, outer)
	s.lastOuter, s.lastOKeys = outer, ks
	return ks
}

// HashJoin joins two whole relations with the hash kernel, iterating
// page pairs exactly as NestedLoopsJoin does so the result relation is
// byte-identical. The condition must have a hashable equality term.
func HashJoin(outer, inner *relation.Relation, cond pred.JoinCond, name string) (*relation.Relation, error) {
	bound, err := cond.Bind(outer.Schema(), inner.Schema())
	if err != nil {
		return nil, err
	}
	schema, err := JoinSchema(outer, inner)
	if err != nil {
		return nil, err
	}
	out, err := relation.New(name, schema, pagedSizeFor(outer, inner, schema))
	if err != nil {
		return nil, err
	}
	st := NewJoinState(bound, nil)
	if n := len(inner.Pages()); n > st.MaxTables {
		// Whole-relation form: every inner page recurs once per outer
		// page, so cap the table cache at the inner size rather than
		// thrash the FIFO.
		st.MaxTables = n
	}
	for _, op := range outer.Pages() {
		for _, ip := range inner.Pages() {
			if _, err := st.JoinPages(op, ip, out.InsertRaw); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// FNV-1a 64-bit, inlined so key hashing allocates nothing.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func fnv1a64(b []byte) uint64 {
	h := fnvOffset64
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

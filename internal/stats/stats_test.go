package stats

import (
	"strings"
	"testing"
	"time"
)

func TestMbps(t *testing.T) {
	// 1 MB over 1 second = 8 Mbps.
	if got := Mbps(1_000_000, time.Second); got != 8 {
		t.Errorf("Mbps = %g, want 8", got)
	}
	if got := Mbps(500, 0); got != 0 {
		t.Errorf("Mbps with zero duration = %g, want 0", got)
	}
	// 16 KB in 33 ms (the LSI-11 page read) ≈ 3.97 Mbps.
	got := Mbps(16*1024, 33*time.Millisecond)
	if got < 3.9 || got > 4.1 {
		t.Errorf("LSI-11 page-read rate = %g Mbps, want ≈3.97", got)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(10, 4) != 2.5 {
		t.Error("Ratio(10,4) != 2.5")
	}
	if Ratio(1, 0) != 0 {
		t.Error("Ratio(_,0) != 0")
	}
}

func TestTableFormatting(t *testing.T) {
	tb := NewTable("Results", "name", "count", "time")
	tb.AddRow("alpha", 10, 1500*time.Millisecond)
	tb.AddRow("a-much-longer-name", 2, 33*time.Millisecond)
	tb.AddRow("pi", 3.14159, "n/a")
	out := tb.String()
	if !strings.HasPrefix(out, "Results\n") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("table has %d lines, want 6:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "name") || !strings.Contains(lines[1], "count") {
		t.Errorf("header line wrong: %q", lines[1])
	}
	if !strings.Contains(out, "3.142") {
		t.Errorf("float not formatted with %%.4g:\n%s", out)
	}
	if !strings.Contains(out, "1.5s") {
		t.Errorf("duration not rounded:\n%s", out)
	}
	if tb.NumRows() != 3 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Add(1, 10)
	s.Add(2, 20)
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	if y, ok := s.YAt(2); !ok || y != 20 {
		t.Errorf("YAt(2) = %g, %v", y, ok)
	}
	if _, ok := s.YAt(3); ok {
		t.Error("YAt(3) found a point")
	}
}

func TestFigureRendersUnionOfX(t *testing.T) {
	f := NewFigure("Fig test", "procs")
	a := f.NewSeries("page")
	b := f.NewSeries("relation")
	a.Add(1, 100)
	a.Add(4, 30)
	b.Add(4, 60)
	b.Add(8, 40)
	out := f.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + rule + 3 x-values.
	if len(lines) != 6 {
		t.Fatalf("figure has %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "procs") || !strings.Contains(lines[1], "page") {
		t.Errorf("header = %q", lines[1])
	}
	// x=1 row has "-" for the relation series.
	if !strings.Contains(lines[3], "-") {
		t.Errorf("missing placeholder in row %q", lines[3])
	}
	// Rows are sorted by x.
	if !strings.HasPrefix(strings.TrimSpace(lines[3]), "1") ||
		!strings.HasPrefix(strings.TrimSpace(lines[4]), "4") ||
		!strings.HasPrefix(strings.TrimSpace(lines[5]), "8") {
		t.Errorf("rows not sorted by x:\n%s", out)
	}
}

// Package stats provides the small measurement and reporting helpers the
// experiment harness uses: byte/time unit conversions, aligned text
// tables, and named data series matching the paper's figures.
package stats

import (
	"fmt"
	"strings"
	"time"
)

// Mbps converts a byte count moved over a duration to average megabits
// per second — the unit of the paper's Figure 4.2 ("the bandwidth values
// represent average values and not peak load values").
func Mbps(bytes int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) * 8 / 1e6 / d.Seconds()
}

// Ratio returns a/b, or 0 when b is zero.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v, floats with %.3g
// unless already strings.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case time.Duration:
			row[i] = v.Round(time.Millisecond).String()
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with a title line, a header line, a rule, and
// aligned rows.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Series is one named curve of a figure: (x, y) points in x order.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// YAt returns the y value for the given x, or 0 and false if absent.
func (s *Series) YAt(x float64) (float64, bool) {
	for i, xv := range s.X {
		if xv == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// Figure is a set of series over a shared x axis, rendered as a table
// with one column per series — the textual equivalent of a paper figure.
type Figure struct {
	Title  string
	XLabel string
	Series []*Series
}

// NewFigure returns an empty figure.
func NewFigure(title, xLabel string) *Figure {
	return &Figure{Title: title, XLabel: xLabel}
}

// NewSeries adds a named series to the figure and returns it.
func (f *Figure) NewSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// String renders the figure as an aligned table: the union of x values in
// ascending order, one column per series ("-" where a series has no
// point).
func (f *Figure) String() string {
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	headers := append([]string{f.XLabel}, make([]string, len(f.Series))...)
	for i, s := range f.Series {
		headers[i+1] = s.Name
	}
	t := NewTable(f.Title, headers...)
	for _, x := range sorted {
		row := make([]interface{}, 0, len(headers))
		row = append(row, fmt.Sprintf("%g", x))
		for _, s := range f.Series {
			if y, ok := s.YAt(x); ok {
				row = append(row, y)
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t.String()
}

package stats

import (
	"dfdbm/internal/pred"
)

// Textbook selectivity estimators for the adaptive pipeline-vs-
// materialize planner. The estimates drive only a buffering decision —
// whether an intermediate stream is small enough to hold in the page
// pool — so coarse System R-style constants are sufficient: a wrong
// guess costs some memory or a missed materialization, never a wrong
// answer.
const (
	// EqSelectivity is the assumed fraction of tuples satisfying an
	// equality comparison against a constant.
	EqSelectivity = 0.10
	// RangeSelectivity is the assumed fraction satisfying an
	// inequality (<, <=, >, >=) comparison.
	RangeSelectivity = 0.30
	// NeSelectivity is the assumed fraction satisfying a != comparison.
	NeSelectivity = 0.90
	// AttrSelectivity is the assumed fraction satisfying a comparison
	// between two attributes of the same tuple.
	AttrSelectivity = 0.30
)

// opSelectivity maps a comparison operator to its assumed selectivity.
func opSelectivity(op pred.Op) float64 {
	switch op {
	case pred.EQ:
		return EqSelectivity
	case pred.NE:
		return NeSelectivity
	default:
		return RangeSelectivity
	}
}

// PredSelectivity estimates the fraction of input tuples a restrict
// predicate keeps. Conjunctions multiply (independence assumption),
// disjunctions add with a cap at 1, and negation complements. Unknown
// predicate forms estimate 0.5.
func PredSelectivity(p pred.Pred) float64 {
	switch q := p.(type) {
	case pred.Compare:
		return opSelectivity(q.Op)
	case pred.CompareAttrs:
		if q.Op == pred.EQ {
			return EqSelectivity
		}
		return AttrSelectivity
	case pred.And:
		s := 1.0
		for _, k := range q.Kids {
			s *= PredSelectivity(k)
		}
		return s
	case pred.Or:
		s := 0.0
		for _, k := range q.Kids {
			s += PredSelectivity(k)
		}
		if s > 1 {
			s = 1
		}
		return s
	case pred.Not:
		return 1 - PredSelectivity(q.Kid)
	case pred.Const:
		if bool(q) {
			return 1
		}
		return 0
	default:
		return 0.5
	}
}

// JoinCardinality estimates the output tuple count of a join between
// inputs of no and ni tuples. An equi-join term keys the result to the
// larger side's distinct values (assumed unique), giving no*ni/max;
// each additional term and every non-equality term multiplies in its
// comparison selectivity. A join with no terms is a cross product.
func JoinCardinality(no, ni int64, c pred.JoinCond) int64 {
	if no <= 0 || ni <= 0 {
		return 0
	}
	est := float64(no) * float64(ni)
	first := true
	for _, t := range c.Terms {
		if t.Op == pred.EQ && first {
			// Key-joined: divide by the larger side's cardinality.
			d := float64(no)
			if ni > no {
				d = float64(ni)
			}
			est /= d
			first = false
			continue
		}
		est *= opSelectivity(t.Op)
	}
	if est < 1 {
		est = 1
	}
	return int64(est)
}

package direct

import (
	"bytes"
	"testing"

	"dfdbm/internal/core"
	"dfdbm/internal/obs"
)

// TestObsTimelinesMatchReport: the bandwidth timelines are recorded at
// every site that increments the Report byte totals, so the integrals
// must equal the totals exactly — this is what makes the time-resolved
// Figure 4.2 traffic curves trustworthy.
func TestObsTimelinesMatchReport(t *testing.T) {
	profs := testProfiles(t, 0.05, 2048)
	reg := obs.NewRegistry(0)
	rep, err := Run(Config{Processors: 8, Strategy: core.PageLevel, HW: hwWithPages(2048),
		Obs: obs.New(nil, reg)}, profs)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		timeline string
		want     int64
	}{
		{"direct.proc_cache_bytes", rep.ProcCacheBytes},
		{"direct.cache_disk_bytes", rep.CacheDiskBytes},
		{"direct.control_bytes", rep.ControlBytes},
	} {
		tl := reg.Timeline(tc.timeline)
		if tl == nil {
			t.Errorf("no %s timeline recorded", tc.timeline)
			continue
		}
		if got := tl.Integral(); got != float64(tc.want) {
			t.Errorf("%s integral = %g, Report total = %d", tc.timeline, got, tc.want)
		}
	}
	for _, c := range []struct {
		name string
		want int64
	}{
		{"direct.tasks", rep.Tasks},
		{"direct.proc_cache_bytes_total", rep.ProcCacheBytes},
		{"direct.cache_disk_bytes_total", rep.CacheDiskBytes},
		{"direct.control_bytes_total", rep.ControlBytes},
		{"direct.disk_reads", rep.DiskReads},
		{"direct.disk_writes", rep.DiskWrites},
		{"direct.cache_hits", rep.CacheHits},
		{"direct.cache_misses", rep.CacheMisses},
	} {
		if got := reg.Counter(c.name); got != c.want {
			t.Errorf("%s = %d, want %d", c.name, got, c.want)
		}
	}
}

// TestObsTraceDeterministic: the simulator is event-ordered
// deterministically, so two runs of the same profiles must emit
// byte-identical traces.
func TestObsTraceDeterministic(t *testing.T) {
	profs := testProfiles(t, 0.05, 2048)
	run := func() []byte {
		var buf bytes.Buffer
		_, err := Run(Config{Processors: 8, Strategy: core.PageLevel, HW: hwWithPages(2048),
			Obs: obs.New(obs.NewTextSink(&buf), nil)}, profs)
		if err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if !bytes.Equal(a, b) {
		t.Error("same-profile runs produced different traces")
	}
}

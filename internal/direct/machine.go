package direct

import (
	"fmt"
	"time"

	"dfdbm/internal/core"
	"dfdbm/internal/fault"
	"dfdbm/internal/hw"
	"dfdbm/internal/obs"
	"dfdbm/internal/query"
	"dfdbm/internal/sim"
	"dfdbm/internal/stats"
)

// Config parameterizes one simulated DIRECT configuration.
type Config struct {
	// Processors is the number of instruction (query) processors.
	Processors int
	// CellsPerProcessor bounds the instructions staged per processor —
	// the paper's "two memory cells for each processor". Default 2.
	CellsPerProcessor int
	// CacheFrames is the capacity of the shared CCD disk cache in
	// pages. Default 64 (1 MB of 16 KB frames).
	CacheFrames int
	// Strategy is the scheduling granularity: core.RelationLevel or
	// core.PageLevel. (Tuple level is analyzed in closed form and
	// measured on the functional engine; simulating per-tuple events
	// adds nothing to the timing comparison.)
	Strategy core.Granularity
	// Concurrent runs all benchmark queries simultaneously; the default
	// (false) runs them back to back, each given the whole machine, as
	// in the processor-allocation experiments the paper's Figure 3.1
	// derives from.
	Concurrent bool
	// HW supplies the device timing; zero value means hw.Default1979.
	HW hw.Config
	// Obs, when non-nil, receives one structured obs.Event per
	// dispatch, page emission, cache/disk transfer, and query
	// completion — stamped with the virtual time — and, when it carries
	// a registry, the direct.* bandwidth timelines (whose integrals
	// equal the Report byte totals exactly) plus the Report re-expressed
	// as counters and gauges.
	Obs *obs.Observer
	// Fault, when non-nil, injects transient cache-frame read faults
	// per its CacheReadFault probability: a faulted read is detected
	// (ECC style), costs one extra processor-cache fetch to retry, and
	// is counted in Report.CacheReadFaults. Build one fresh Plan per
	// Run.
	Fault *fault.Plan
}

func (c Config) withDefaults() (Config, error) {
	if c.Processors < 1 {
		return c, fmt.Errorf("direct: need at least one processor")
	}
	if c.CellsPerProcessor <= 0 {
		c.CellsPerProcessor = 2
	}
	if c.CacheFrames <= 0 {
		c.CacheFrames = 256 // 4 MB of 16 KB frames, as in the DIRECT prototype plans
	}
	if c.CacheFrames < 8 {
		c.CacheFrames = 8
	}
	if c.Strategy == 0 {
		c.Strategy = core.PageLevel
	}
	if c.Strategy != core.PageLevel && c.Strategy != core.RelationLevel {
		return c, fmt.Errorf("direct: unsupported strategy %v", c.Strategy)
	}
	if c.HW.PageSize == 0 {
		c.HW = hw.Default1979()
	}
	return c, nil
}

// Report summarizes one simulated benchmark execution.
type Report struct {
	// Elapsed is the virtual time at which the last query completed —
	// the paper's "execution time of the benchmark".
	Elapsed time.Duration
	// Tasks is the number of instruction packets executed.
	Tasks int64
	// ProcCacheBytes is the traffic between processors and the data
	// cache (operand fetches plus result stores): the level the outer
	// ring must carry in the Section 4 machine.
	ProcCacheBytes int64
	// CacheDiskBytes is the traffic between the cache and mass storage.
	CacheDiskBytes int64
	// ControlBytes is control-message traffic (instruction headers and
	// completion signals): the inner-ring level.
	ControlBytes int64

	DiskReads, DiskWrites  int64
	CacheHits, CacheMisses int64
	// CacheReadFaults counts transient cache-frame read faults injected
	// by Config.Fault; each was detected and retried.
	CacheReadFaults int64
	// PagesRecycled counts dead page descriptors reclaimed at eviction
	// and reissued by newPage (host-side allocation behaviour only;
	// recycled descriptors get fresh ids, so traces are unaffected).
	PagesRecycled int64
	// MaterializedPages counts result pages staged through mass storage
	// because the adaptive plan materialized their edge (page-level
	// granularity with InputRef.Materialize set).
	MaterializedPages int64

	ProcBusy, DiskBusy               time.Duration
	ProcUtilization, DiskUtilization float64
}

// ProcCacheMbps returns the average processor⇄cache bandwidth demand.
func (r Report) ProcCacheMbps() float64 { return stats.Mbps(r.ProcCacheBytes, r.Elapsed) }

// CacheDiskMbps returns the average cache⇄disk bandwidth demand.
func (r Report) CacheDiskMbps() float64 { return stats.Mbps(r.CacheDiskBytes, r.Elapsed) }

// ControlMbps returns the average control-traffic bandwidth demand.
func (r Report) ControlMbps() float64 { return stats.Mbps(r.ControlBytes, r.Elapsed) }

// Run simulates the concurrent execution of the profiled queries on one
// DIRECT configuration. All queries arrive at time zero, as in the
// paper's benchmark, and share the processor pool, cache, and disks.
func Run(cfg Config, profiles []QueryProfile) (Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Report{}, err
	}
	m := newMachine(cfg)
	for i, p := range profiles {
		if p.PageSize != 0 && p.PageSize != cfg.HW.PageSize {
			return Report{}, fmt.Errorf(
				"direct: profile %d was computed for %d-byte pages but the machine uses %d-byte pages",
				i, p.PageSize, cfg.HW.PageSize)
		}
		m.addQuery(p)
	}
	m.start()
	m.sim.Run()
	cfg.Obs.Spans().CloseAt(m.finishedAt)
	if m.queriesLeft != 0 {
		return Report{}, fmt.Errorf("direct: simulation stalled with %d queries unfinished", m.queriesLeft)
	}
	r := m.report
	r.Elapsed = m.finishedAt
	r.ProcBusy = m.procs.BusyTime()
	r.DiskBusy = m.disk.BusyTime()
	r.ProcUtilization = m.procs.Utilization(m.finishedAt)
	r.DiskUtilization = m.disk.Utilization(m.finishedAt)
	exportMetrics(cfg.Obs, r)
	if serr := cfg.Obs.Err(); serr != nil {
		return Report{}, fmt.Errorf("direct: trace sink: %w", serr)
	}
	return r, nil
}

// exportMetrics re-expresses the Report through the metrics registry,
// alongside the direct.* timelines recorded while running.
func exportMetrics(o *obs.Observer, rep Report) {
	if !o.MetricsOn() {
		return
	}
	r := o.Registry()
	r.Inc("direct.tasks", rep.Tasks)
	r.Inc("direct.proc_cache_bytes_total", rep.ProcCacheBytes)
	r.Inc("direct.cache_disk_bytes_total", rep.CacheDiskBytes)
	r.Inc("direct.control_bytes_total", rep.ControlBytes)
	r.Inc("direct.disk_reads", rep.DiskReads)
	r.Inc("direct.disk_writes", rep.DiskWrites)
	r.Inc("direct.cache_hits", rep.CacheHits)
	r.Inc("direct.cache_misses", rep.CacheMisses)
	r.Inc("direct.cache_read_faults", rep.CacheReadFaults)
	r.Inc("direct.pages_recycled", rep.PagesRecycled)
	r.Inc("direct.materialized_pages", rep.MaterializedPages)
	r.SetGauge("direct.elapsed_seconds", rep.Elapsed.Seconds())
	r.SetGauge("direct.proc_utilization", rep.ProcUtilization)
	r.SetGauge("direct.disk_utilization", rep.DiskUtilization)
	r.SetGauge("direct.proc_cache_mbps", rep.ProcCacheMbps())
	r.SetGauge("direct.cache_disk_mbps", rep.CacheDiskMbps())
	r.SetGauge("direct.control_mbps", rep.ControlMbps())
	if total := rep.CacheHits + rep.CacheMisses; total > 0 {
		r.SetGauge("direct.cache_hit_rate", float64(rep.CacheHits)/float64(total))
	}
}

// machine is the simulated hardware plus scheduler state.
type machine struct {
	cfg   Config
	obs   *obs.Observer
	sim   *sim.Sim
	disk  *sim.Station
	procs *sim.Station
	cells *sim.Resource
	cache *cacheModel

	queries     []*queryInstance
	leafPages   map[string][]*page
	pageFree    []*page
	nextPageID  int
	queriesLeft int
	finishedAt  time.Duration
	report      Report
}

func newMachine(cfg Config) *machine {
	s := sim.New()
	m := &machine{
		cfg:       cfg,
		obs:       cfg.Obs,
		sim:       s,
		disk:      sim.NewStation(s, cfg.HW.NumDisks),
		procs:     sim.NewStation(s, cfg.Processors),
		cells:     sim.NewResource(s, cfg.Processors*cfg.CellsPerProcessor),
		leafPages: map[string][]*page{},
	}
	m.cache = newCacheModel(m, cfg.CacheFrames)
	return m
}

// event emits one structured event stamped with the virtual time. qid,
// instr, and page are -1 when not applicable; bytes is the moved
// payload size or 0.
func (m *machine) event(kind obs.EventKind, comp string, qid, instr, pageNo, bytes int, format string, args ...interface{}) {
	o := m.obs
	if !o.Enabled() {
		return
	}
	o.Emit(obs.Event{
		TS:    m.sim.Now(),
		Kind:  kind,
		Comp:  comp,
		Query: qid,
		Instr: instr,
		Page:  pageNo,
		Bytes: bytes,
		Msg:   fmt.Sprintf(format, args...),
	})
}

// observe accumulates v into the named virtual-time timeline. Every
// Report byte counter is mirrored here increment for increment, so each
// timeline's integral equals the corresponding total exactly.
func (m *machine) observe(name string, v float64) {
	if o := m.obs; o.MetricsOn() {
		o.Registry().Add(name, m.sim.Now(), v)
	}
}

// observeBusy charges a device busy interval [start, start+d) into the
// named timeline, spread across the buckets it overlaps, so the
// saturation report sees the actual service interval rather than a
// point charge at the enqueue time.
func (m *machine) observeBusy(name string, start, d time.Duration) {
	if o := m.obs; o.MetricsOn() {
		o.Registry().AddBusy(name, start, d)
	}
}

// tracing and spansOn guard event and span call sites, so the disabled
// path costs one nil check and zero allocations per event.
func (m *machine) tracing() bool { return m.obs.Enabled() }
func (m *machine) spansOn() bool { return m.obs.SpansOn() }

func (m *machine) beginSpan(kind obs.SpanKind, parent *obs.Span, comp, name string, qid, instr, pageNo int) *obs.Span {
	return m.obs.Spans().Begin(kind, parent, m.sim.Now(), comp, name, qid, instr, pageNo)
}

func (m *machine) endSpan(s *obs.Span) {
	if s != nil {
		m.obs.Spans().End(s, m.sim.Now())
	}
}

func (m *machine) recordSpan(kind obs.SpanKind, parent *obs.Span, start, end time.Duration, comp, name string, qid, instr, pageNo int) {
	m.obs.Spans().Record(kind, parent, start, end, comp, name, qid, instr, pageNo)
}

// Resources names the simulated devices for the saturation report,
// mapping each to the busy timeline it accumulates during a run.
func Resources(cfg Config) []obs.ResourceSpec {
	cfg, _ = cfg.withDefaults()
	return []obs.ResourceSpec{
		{Name: "processor pool", Timeline: "direct.proc_busy_us", Servers: cfg.Processors},
		{Name: "disk", Timeline: "direct.disk_busy_us", Servers: cfg.HW.NumDisks},
		{Name: "cache ports", Timeline: "direct.cache_port_busy_us", Servers: cfg.Processors},
		{Name: "control bus", Timeline: "direct.control_busy_us", Servers: 1},
	}
}

// page is one page token in the simulation.
type page struct {
	id       int
	tuples   int
	leaf     bool
	onDisk   bool // has a copy on mass storage
	resident bool // has a copy in the disk cache
	dead     bool // no future task will read it
	fetching bool
	waiters  []func()
	lruPrev  *page
	lruNext  *page
	// staged marks an intermediate written to mass storage as a whole
	// relation (relation-level granularity); staged pages read back
	// sequentially.
	staged bool
	// pendingReads counts dispatched-but-unexecuted tasks referencing
	// the page; consumer is the node that reads it (intermediates only).
	pendingReads int
	consumer     *nodeState
}

// maybeDie marks an intermediate page dead once no dispatched task
// still references it and its consumer can dispatch no further tasks.
// Dead pages are evicted without a disk write — the cache-traffic
// saving that page-level pipelining exists to exploit.
func (pg *page) maybeDie() {
	if pg.leaf || pg.dead || pg.consumer == nil {
		return
	}
	c := pg.consumer
	if pg.pendingReads == 0 && c.allInputsDone() && c.generated {
		pg.dead = true
	}
}

func (m *machine) newPage(tuples int, leaf bool) *page {
	m.nextPageID++
	if n := len(m.pageFree); n > 0 {
		pg := m.pageFree[n-1]
		m.pageFree[n-1] = nil
		m.pageFree = m.pageFree[:n-1]
		m.report.PagesRecycled++
		// Fully reset, with a fresh id: recycling must be invisible to
		// traces and to any id-based accounting.
		*pg = page{id: m.nextPageID, tuples: tuples, leaf: leaf, onDisk: leaf}
		return pg
	}
	return &page{id: m.nextPageID, tuples: tuples, leaf: leaf, onDisk: leaf}
}

// leafPagesFor returns (building once) the shared page list of a source
// relation, so that concurrent queries scanning the same relation share
// cache residency, as they would in the real machine.
func (m *machine) leafPagesFor(ref InputRef) []*page {
	if pgs, ok := m.leafPages[ref.Rel]; ok {
		return pgs
	}
	pgs := make([]*page, ref.Pages)
	for k := range pgs {
		t := ref.Tuples*(k+1)/ref.Pages - ref.Tuples*k/ref.Pages
		pgs[k] = m.newPage(t, true)
	}
	m.leafPages[ref.Rel] = pgs
	return pgs
}

// queryInstance is one executing query.
type queryInstance struct {
	m     *machine
	index int
	nodes []*nodeState
	span  *obs.Span
}

// nodeState is the controller state of one instruction.
type nodeState struct {
	m           *machine
	q           *queryInstance
	prof        NodeProfile
	parent      *nodeState
	parentInput int

	avail      [2][]*page
	inDone     [2]bool
	doneCount  int
	dispatched int
	completed  int
	generated  bool // relation level: tasks have been generated

	outCap     int
	outCredit  float64
	outEmitted int
	finished   bool

	span *obs.Span
}

func (m *machine) addQuery(p QueryProfile) {
	q := &queryInstance{m: m, index: len(m.queries)}
	q.nodes = make([]*nodeState, len(p.Nodes))
	for i, np := range p.Nodes {
		cap := capOf(np.OutBytesPerTuple, m.cfg.HW.PageSize)
		q.nodes[i] = &nodeState{m: m, q: q, prof: np, outCap: cap}
	}
	// Wire parents: node j is the parent of node i if one of j's inputs
	// references i.
	for _, n := range q.nodes {
		for i := 0; i < n.prof.NumInputs; i++ {
			ref := n.prof.Inputs[i]
			if ref.Node >= 0 {
				child := q.nodes[ref.Node]
				child.parent = n
				child.parentInput = i
			}
		}
	}
	m.queries = append(m.queries, q)
	m.queriesLeft++
}

// start begins execution: concurrent mode launches every query at time
// zero; sequential mode launches the next query when its predecessor's
// root completes.
func (m *machine) start() {
	if m.cfg.Concurrent {
		for i := range m.queries {
			m.startQuery(i)
		}
		return
	}
	if len(m.queries) > 0 {
		m.startQuery(0)
	}
}

// startQuery injects a query's initial events: every leaf operand's
// pages arrive and complete immediately (source relations exist on mass
// storage).
func (m *machine) startQuery(idx int) {
	q := m.queries[idx]
	if m.tracing() {
		m.event(obs.EvAdmit, "MC", idx, -1, -1, 0,
			"MC: start query %d (%d instructions)", idx, len(q.nodes))
	}
	if m.spansOn() {
		q.span = m.beginSpan(obs.SpanQuery, nil, "MC",
			fmt.Sprintf("query %d", idx), idx, -1, -1)
		for _, n := range q.nodes {
			n.span = m.beginSpan(obs.SpanInstr, q.span,
				fmt.Sprintf("node%d", n.prof.ID),
				fmt.Sprintf("%s node%d", n.prof.Kind, n.prof.ID),
				idx, n.prof.ID, -1)
		}
	}
	for _, n := range q.nodes {
		n := n
		for i := 0; i < n.prof.NumInputs; i++ {
			i := i
			ref := n.prof.Inputs[i]
			if ref.Node >= 0 {
				continue
			}
			pgs := m.leafPagesFor(ref)
			m.sim.After(0, func() {
				for _, pg := range pgs {
					n.onArrive(i, pg)
				}
				n.onInputDone(i)
			})
		}
	}
}

func (n *nodeState) allInputsDone() bool { return n.doneCount == n.prof.NumInputs }

func (n *nodeState) onArrive(input int, pg *page) {
	n.avail[input] = append(n.avail[input], pg)
	if n.m.cfg.Strategy == core.RelationLevel {
		return // buffer until the operand relations are complete
	}
	if n.prof.Inputs[input].Materialize {
		return // adaptive: this edge buffers until the producer completes
	}
	switch n.prof.Kind {
	case query.OpJoin:
		other := 1 - input
		if n.prof.Inputs[other].Materialize && !n.inDone[other] {
			return // the other side pairs the newcomer when it completes
		}
		for _, q := range n.avail[other] {
			if input == 0 {
				n.dispatch(pg, q)
			} else {
				n.dispatch(q, pg)
			}
		}
	default:
		n.dispatch(pg)
	}
}

// flushMaterialized fires the work a materialized edge held back once
// the producer completes: unary backlogs drain; a join pairs the whole
// buffered side against everything opposite (later opposite arrivals
// pair through onArrive), keeping every pair dispatched exactly once.
func (n *nodeState) flushMaterialized(input int) {
	switch n.prof.Kind {
	case query.OpJoin:
		other := 1 - input
		if n.prof.Inputs[other].Materialize && !n.inDone[other] {
			return // the other completion dispatches the full cross product
		}
		for _, p := range n.avail[input] {
			for _, q := range n.avail[other] {
				if input == 0 {
					n.dispatch(p, q)
				} else {
					n.dispatch(q, p)
				}
			}
		}
	default:
		for _, pg := range n.avail[0] {
			n.dispatch(pg)
		}
	}
}

func (n *nodeState) onInputDone(input int) {
	if n.inDone[input] {
		return
	}
	n.inDone[input] = true
	n.doneCount++
	if n.m.cfg.Strategy != core.RelationLevel && n.prof.Inputs[input].Materialize {
		n.flushMaterialized(input)
	}
	if !n.allInputsDone() {
		return
	}
	if n.m.cfg.Strategy == core.RelationLevel {
		// Relation-level firing rule: the instruction is enabled now.
		switch n.prof.Kind {
		case query.OpJoin:
			for _, o := range n.avail[0] {
				for _, i := range n.avail[1] {
					n.dispatch(o, i)
				}
			}
		default:
			for _, pg := range n.avail[0] {
				n.dispatch(pg)
			}
		}
	}
	n.generated = true
	// Pages whose every dispatched task already executed can now be
	// declared dead (no further pairings will reference them).
	for i := 0; i < n.prof.NumInputs; i++ {
		for _, pg := range n.avail[i] {
			pg.maybeDie()
		}
	}
	n.maybeFinish()
}

// dispatch queues one instruction packet: acquire a memory cell, stage
// the operand pages in the cache, execute on a processor, emit results.
func (n *nodeState) dispatch(ops ...*page) {
	n.dispatched++
	m := n.m
	m.report.Tasks++
	ctl := m.cfg.HW.InstrHeaderBytes + m.cfg.HW.ControlBytes
	m.report.ControlBytes += int64(ctl)
	m.observe("direct.control_bytes", float64(ctl))
	m.observeBusy("direct.control_busy_us", m.sim.Now(),
		m.cfg.HW.InnerRing.SerializationTime(ctl))
	if m.tracing() {
		m.event(obs.EvInstr, fmt.Sprintf("node%d", n.prof.ID), n.q.index, n.prof.ID, -1, ctl,
			"node%d: dispatch %s packet of query %d (%d operands)",
			n.prof.ID, n.prof.Kind, n.q.index, len(ops))
	}
	if s := n.span; s != nil {
		s.Firings.Add(1)
		s.Bytes.Add(int64(ctl))
	}
	ops = append([]*page(nil), ops...)
	for _, op := range ops {
		op.pendingReads++
	}
	m.cells.Acquire(func() { n.stage(ops) })
}

func (n *nodeState) stage(ops []*page) {
	m := n.m
	pending := len(ops)
	ready := func() {
		pending--
		if pending == 0 {
			n.execute(ops)
		}
	}
	for _, op := range ops {
		if s := n.span; s != nil {
			if op.resident {
				s.CacheHits.Add(1)
			} else {
				s.CacheMiss.Add(1)
			}
		}
		m.cache.ensureResident(op, ready)
	}
}

// execute models the processor's work for one instruction packet:
// fetching the operands from the cache, the relational operation, and
// storing the result pages back to the cache.
func (n *nodeState) execute(ops []*page) {
	m := n.m
	proc := m.cfg.HW.Proc
	pageBytes := m.cfg.HW.PageSize

	fetch := proc.FetchTime(len(ops) * pageBytes)
	m.report.ProcCacheBytes += int64(len(ops) * pageBytes)
	m.observe("direct.proc_cache_bytes", float64(len(ops)*pageBytes))

	var compute time.Duration
	var share float64
	switch n.prof.Kind {
	case query.OpJoin:
		compute = proc.JoinTime(ops[0].tuples, ops[1].tuples)
		inPairs := float64(n.prof.Inputs[0].Tuples) * float64(n.prof.Inputs[1].Tuples)
		if inPairs > 0 {
			share = float64(n.prof.OutTuples) * float64(ops[0].tuples) * float64(ops[1].tuples) / inPairs
		}
	case query.OpProject:
		compute = proc.ProjectTime(ops[0].tuples)
		if n.prof.Inputs[0].Tuples > 0 {
			share = float64(n.prof.OutTuples) * float64(ops[0].tuples) / float64(n.prof.Inputs[0].Tuples)
		}
	default: // restrict, and the effect operators, are scan-shaped
		compute = proc.RestrictTime(ops[0].tuples)
		if n.prof.Inputs[0].Tuples > 0 {
			share = float64(n.prof.OutTuples) * float64(ops[0].tuples) / float64(n.prof.Inputs[0].Tuples)
		}
	}
	store := proc.FetchTime(int(share * float64(n.prof.OutBytesPerTuple)))

	service := fetch + compute + store
	finish := m.procs.Serve(service, func() {
		m.cells.Release()
		n.completed++
		m.report.ControlBytes += int64(m.cfg.HW.ControlBytes)
		m.observe("direct.control_bytes", float64(m.cfg.HW.ControlBytes))
		m.observeBusy("direct.control_busy_us", m.sim.Now(),
			m.cfg.HW.InnerRing.SerializationTime(m.cfg.HW.ControlBytes))
		for _, op := range ops {
			op.pendingReads--
			op.maybeDie()
		}
		n.outCredit += share
		for n.outCredit >= float64(n.outCap) && n.outEmitted+n.outCap <= n.prof.OutTuples {
			n.emit(n.outCap)
			n.outCredit -= float64(n.outCap)
		}
		n.maybeFinish()
	})
	m.observeBusy("direct.proc_busy_us", finish-service, service)
	m.observeBusy("direct.cache_port_busy_us", finish-service, fetch+store)
	if m.spansOn() {
		m.recordSpan(obs.SpanExec, n.span, finish-service, finish,
			"proc", "exec", n.q.index, n.prof.ID, -1)
		if s := n.span; s != nil {
			s.PagesIn.Add(int64(len(ops)))
		}
	}
}

// emit produces one result page of the given tuple count, stores it,
// and delivers it to the consumer.
//
// The storage path is the crux of the Section 3 comparison. Under
// page-level granularity the page goes to the disk cache and is
// consumed from there — pages of intermediate relations are pipelined
// up the tree. Under relation-level granularity the consuming
// instruction is not yet enabled, so the intermediate relation is
// staged through mass storage: written out at production and read back
// when the consumer fires, exactly the "movement of data between a
// shared data cache and secondary memory" the paper charges against
// the coarser granularity.
func (n *nodeState) emit(tuples int) {
	m := n.m
	pg := m.newPage(tuples, false)
	pg.consumer = n.parent
	n.outEmitted += tuples
	m.report.ProcCacheBytes += int64(m.cfg.HW.PageSize)
	m.observe("direct.proc_cache_bytes", float64(m.cfg.HW.PageSize))
	if m.tracing() {
		m.event(obs.EvResult, fmt.Sprintf("node%d", n.prof.ID), n.q.index, n.prof.ID, pg.id, m.cfg.HW.PageSize,
			"node%d: emit result page %d (%d tuples)", n.prof.ID, pg.id, tuples)
	}
	if s := n.span; s != nil {
		s.PagesOut.Add(1)
		s.TuplesOut.Add(int64(tuples))
	}
	if n.parent == nil {
		// Root output: returned to the host; the page is not needed
		// again.
		pg.dead = true
		m.cache.insert(pg)
		return
	}
	matEdge := n.parent.prof.Inputs[n.parentInput].Materialize
	if matEdge {
		m.report.MaterializedPages++
	}
	if m.cfg.Strategy == core.RelationLevel || matEdge {
		pg.onDisk = true
		pg.staged = true
		m.report.DiskWrites++
		m.report.CacheDiskBytes += int64(m.cfg.HW.PageSize)
		m.observe("direct.cache_disk_bytes", float64(m.cfg.HW.PageSize))
		if m.tracing() {
			m.event(obs.EvDiskWrite, "disk", n.q.index, n.prof.ID, pg.id, m.cfg.HW.PageSize,
				"disk: stage intermediate page %d", pg.id)
		}
		service := m.cfg.HW.Disk.SequentialTime(m.cfg.HW.PageSize)
		finish := m.disk.Serve(service, nil)
		m.observeBusy("direct.disk_busy_us", finish-service, service)
		if m.spansOn() {
			m.recordSpan(obs.SpanXfer, n.span, finish-service, finish,
				"disk", "stage write", n.q.index, n.prof.ID, pg.id)
		}
	} else {
		m.cache.insert(pg)
	}
	parent, input := n.parent, n.parentInput
	m.sim.After(0, func() { parent.onArrive(input, pg) })
}

// maybeFinish completes the node once its inputs are complete and every
// dispatched instruction packet has executed.
func (n *nodeState) maybeFinish() {
	if n.finished || !n.allInputsDone() || !n.generated || n.completed != n.dispatched {
		return
	}
	n.finished = true
	// Flush: emit whatever the rounding of per-task shares left over,
	// so the page counts match the profile exactly.
	for n.outEmitted < n.prof.OutTuples {
		t := n.prof.OutTuples - n.outEmitted
		if t > n.outCap {
			t = n.outCap
		}
		n.emit(t)
	}
	// The node's operand pages will never be read again.
	for i := 0; i < n.prof.NumInputs; i++ {
		if n.prof.Inputs[i].Node >= 0 {
			for _, pg := range n.avail[i] {
				pg.dead = true
			}
		}
	}
	m := n.m
	m.endSpan(n.span)
	if n.parent != nil {
		parent, input := n.parent, n.parentInput
		m.sim.After(0, func() { parent.onInputDone(input) })
		return
	}
	// Root finished: the query is done.
	if m.tracing() {
		m.event(obs.EvQueryDone, "MC", n.q.index, -1, -1, 0,
			"MC: query %d finished", n.q.index)
	}
	m.endSpan(n.q.span)
	m.queriesLeft--
	if m.queriesLeft == 0 {
		m.finishedAt = m.sim.Now()
		return
	}
	if !m.cfg.Concurrent {
		next := n.q.index + 1
		if next < len(m.queries) {
			m.sim.After(0, func() { m.startQuery(next) })
		}
	}
}

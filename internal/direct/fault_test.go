package direct

import (
	"testing"

	"dfdbm/internal/core"
	"dfdbm/internal/fault"
)

// TestCacheReadFaultsRetried: transient cache-frame read faults cost a
// re-fetch delay, are counted, and never change what the simulation
// computes — the run completes with the same task and traffic totals as
// a fault-free run, just later.
func TestCacheReadFaultsRetried(t *testing.T) {
	profs := testProfiles(t, 0.05, 2048)
	base := Config{Processors: 4, Strategy: core.PageLevel, HW: hwWithPages(2048)}

	clean, err := Run(base, profs)
	if err != nil {
		t.Fatal(err)
	}

	faulty := base
	faulty.Fault = fault.New(fault.Config{Seed: 3, CacheReadFault: 0.2})
	rep, err := Run(faulty, profs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CacheReadFaults == 0 {
		t.Fatal("no cache read fault was ever injected at 20% probability")
	}
	if rep.Tasks != clean.Tasks {
		t.Errorf("faults changed the work: %d tasks vs %d", rep.Tasks, clean.Tasks)
	}
	if rep.ProcCacheBytes != clean.ProcCacheBytes || rep.CacheDiskBytes != clean.CacheDiskBytes {
		t.Errorf("faults changed traffic: %d/%d bytes vs %d/%d",
			rep.ProcCacheBytes, rep.CacheDiskBytes, clean.ProcCacheBytes, clean.CacheDiskBytes)
	}
	if rep.Elapsed < clean.Elapsed {
		t.Errorf("faulty run finished earlier (%v) than clean run (%v)", rep.Elapsed, clean.Elapsed)
	}
}

// TestCacheFaultDeterminism: same plan seed, same simulation.
func TestCacheFaultDeterminism(t *testing.T) {
	profs := testProfiles(t, 0.05, 2048)
	run := func() Report {
		cfg := Config{Processors: 4, Strategy: core.PageLevel, HW: hwWithPages(2048),
			Fault: fault.New(fault.Config{Seed: 9, CacheReadFault: 0.1})}
		rep, err := Run(cfg, profs)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same fault seed, different reports:\n%+v\n%+v", a, b)
	}
}

package direct

import "dfdbm/internal/obs"

// cacheModel is the multiport CCD disk cache: a fixed number of page
// frames with LRU replacement. A page fetched by a processor that is
// not resident costs a disk read; a dirty intermediate page evicted
// before its consumer has finished costs a disk write (and a later
// re-read if a task still needs it). This is exactly the "movement of
// data between a shared data cache and secondary memory" that the
// paper's page-level pipelining minimizes.
type cacheModel struct {
	m      *machine
	frames int
	size   int
	// Intrusive LRU list: head is most recently used.
	head, tail *page
}

func newCacheModel(m *machine, frames int) *cacheModel {
	return &cacheModel{m: m, frames: frames}
}

// ensureResident arranges for pg to be in the cache and calls ready
// (immediately if it already is, after a disk read otherwise).
// Concurrent requests for the same page share one disk read.
func (c *cacheModel) ensureResident(pg *page, ready func()) {
	if pg.resident {
		c.m.report.CacheHits++
		if c.m.tracing() {
			c.m.event(obs.EvCacheRead, "cache", -1, -1, pg.id, c.m.cfg.HW.PageSize,
				"cache: hit page %d", pg.id)
		}
		c.touch(pg)
		if c.m.cfg.Fault.CacheFault() {
			// Transient frame read fault, caught by the frame's check
			// bits: the read is retried, costing one extra page fetch.
			c.m.report.CacheReadFaults++
			if c.m.tracing() {
				c.m.event(obs.EvFault, "cache", -1, -1, pg.id, c.m.cfg.HW.PageSize,
					"fault: transient read fault on cache frame of page %d (retrying)", pg.id)
			}
			c.m.sim.After(c.m.cfg.HW.Proc.FetchTime(c.m.cfg.HW.PageSize), ready)
			return
		}
		c.m.sim.After(0, ready)
		return
	}
	if pg.fetching {
		pg.waiters = append(pg.waiters, ready)
		return
	}
	c.m.report.CacheMisses++
	c.m.report.DiskReads++
	c.m.report.CacheDiskBytes += int64(c.m.cfg.HW.PageSize)
	c.m.observe("direct.cache_disk_bytes", float64(c.m.cfg.HW.PageSize))
	if c.m.tracing() {
		c.m.event(obs.EvDiskRead, "disk", -1, -1, pg.id, c.m.cfg.HW.PageSize,
			"disk: read page %d into the cache (miss)", pg.id)
	}
	pg.fetching = true
	pg.waiters = append(pg.waiters, ready)
	// Source relations are staged with sequential transfers (the scan
	// reads consecutive pages of a stored relation); spilled
	// intermediates come back with a random access.
	// Leaf scans read long sequential runs; staged intermediates are
	// read back while the instruction's other operands contend for the
	// same two drives, so they pay positioning time per page.
	service := c.m.cfg.HW.Disk.AccessTime(c.m.cfg.HW.PageSize)
	if pg.leaf {
		service = c.m.cfg.HW.Disk.SequentialTime(c.m.cfg.HW.PageSize)
	}
	finish := c.m.disk.Serve(service, func() {
		pg.fetching = false
		c.insert(pg)
		ws := pg.waiters
		pg.waiters = nil
		for _, w := range ws {
			w()
		}
	})
	c.m.observeBusy("direct.disk_busy_us", finish-service, service)
	if c.m.spansOn() {
		c.m.recordSpan(obs.SpanXfer, nil, finish-service, finish,
			"disk", "cache fill", -1, -1, pg.id)
	}
}

// insert makes pg resident, evicting least-recently-used pages as
// needed.
func (c *cacheModel) insert(pg *page) {
	if pg.resident {
		c.touch(pg)
		return
	}
	for c.size >= c.frames {
		c.evictLRU()
	}
	pg.resident = true
	c.pushFront(pg)
	c.size++
}

func (c *cacheModel) evictLRU() {
	victim := c.tail
	if victim == nil {
		// More pinned concurrency than frames; shed the constraint
		// rather than deadlock (the configuration clamp keeps this
		// from happening in practice).
		c.size--
		return
	}
	c.remove(victim)
	c.size--
	victim.resident = false
	if victim.dead && !victim.fetching && len(victim.waiters) == 0 &&
		(victim.consumer == nil || victim.consumer.finished) {
		// Nothing will ever touch this descriptor again: hand it back to
		// the machine's freelist for newPage to reissue (fresh id).
		c.m.pageFree = append(c.m.pageFree, victim)
		return
	}
	if !victim.dead && !victim.onDisk {
		// Dirty intermediate still needed: write it out. The write is
		// asynchronous; the page is readable from disk thereafter.
		victim.onDisk = true
		c.m.report.DiskWrites++
		c.m.report.CacheDiskBytes += int64(c.m.cfg.HW.PageSize)
		c.m.observe("direct.cache_disk_bytes", float64(c.m.cfg.HW.PageSize))
		if c.m.tracing() {
			c.m.event(obs.EvDiskWrite, "disk", -1, -1, victim.id, c.m.cfg.HW.PageSize,
				"disk: write back evicted page %d", victim.id)
		}
		service := c.m.cfg.HW.Disk.AccessTime(c.m.cfg.HW.PageSize)
		finish := c.m.disk.Serve(service, nil)
		c.m.observeBusy("direct.disk_busy_us", finish-service, service)
	}
}

func (c *cacheModel) touch(pg *page) {
	c.remove(pg)
	c.pushFront(pg)
}

func (c *cacheModel) pushFront(pg *page) {
	pg.lruPrev = nil
	pg.lruNext = c.head
	if c.head != nil {
		c.head.lruPrev = pg
	}
	c.head = pg
	if c.tail == nil {
		c.tail = pg
	}
}

func (c *cacheModel) remove(pg *page) {
	if pg.lruPrev != nil {
		pg.lruPrev.lruNext = pg.lruNext
	} else if c.head == pg {
		c.head = pg.lruNext
	}
	if pg.lruNext != nil {
		pg.lruNext.lruPrev = pg.lruPrev
	} else if c.tail == pg {
		c.tail = pg.lruPrev
	}
	pg.lruPrev, pg.lruNext = nil, nil
}

package direct

import (
	"testing"
	"time"

	"dfdbm/internal/core"
	"dfdbm/internal/hw"
	"dfdbm/internal/query"
	"dfdbm/internal/workload"
)

// hwWithPages returns the 1979 hardware with the given operand page
// size — profiles and machine must agree on it.
func hwWithPages(pageSize int) hw.Config {
	cfg := hw.Default1979()
	cfg.PageSize = pageSize
	return cfg
}

// testProfiles builds profiles of the benchmark at a reduced scale.
func testProfiles(t testing.TB, scale float64, pageSize int) []QueryProfile {
	t.Helper()
	cat, qs, err := workload.Build(workload.Config{Seed: 5, Scale: scale, PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	profs, err := ProfileAll(cat, qs, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	return profs
}

func TestProfileShapes(t *testing.T) {
	cat, qs, err := workload.Build(workload.Config{Seed: 5, Scale: 0.05, PageSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Profile(cat, qs[2], 2048) // 1 join, 2 restricts
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Nodes) != 3 {
		t.Fatalf("profile has %d nodes, want 3", len(p.Nodes))
	}
	join := p.Nodes[p.Root()]
	if join.Kind != query.OpJoin || join.NumInputs != 2 {
		t.Errorf("root = %+v", join)
	}
	// The join's inputs are the two restricts.
	if join.Inputs[0].Node < 0 || join.Inputs[1].Node < 0 {
		t.Errorf("join inputs = %+v", join.Inputs)
	}
	// The restricts read leaf relations.
	r0 := p.Nodes[join.Inputs[0].Node]
	if r0.Kind != query.OpRestrict || r0.Inputs[0].Node != -1 || r0.Inputs[0].Rel == "" {
		t.Errorf("restrict profile = %+v", r0)
	}
	// Output tuple width of the join is the concatenation (200 bytes).
	if join.OutBytesPerTuple != 200 {
		t.Errorf("join result tuple width = %d, want 200", join.OutBytesPerTuple)
	}
	// Page counts must cover the tuples.
	if r0.OutPages == 0 && r0.OutTuples > 0 {
		t.Error("restrict output pages = 0 with nonzero tuples")
	}
}

func TestProfileConsistentWithSerial(t *testing.T) {
	cat, qs, err := workload.Build(workload.Config{Seed: 5, Scale: 0.05, PageSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		prof, err := Profile(cat, q, 2048)
		if err != nil {
			t.Fatalf("query %d: %v", i+1, err)
		}
		want, err := query.ExecuteSerial(cat, q, 0)
		if err != nil {
			t.Fatal(err)
		}
		root := prof.Nodes[prof.Root()]
		if root.OutTuples != want.Cardinality() {
			t.Errorf("query %d: profile root tuples = %d, serial = %d",
				i+1, root.OutTuples, want.Cardinality())
		}
	}
}

func TestProfileBareScan(t *testing.T) {
	cat, _, err := workload.Build(workload.Config{Seed: 5, Scale: 0.02, PageSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := query.Bind(query.MustParse("r15"), cat)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Profile(cat, tr, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Nodes) != 1 || p.Nodes[0].Inputs[0].Rel != "r15" {
		t.Errorf("bare scan profile = %+v", p)
	}
}

func TestRunCompletesBothStrategies(t *testing.T) {
	profs := testProfiles(t, 0.05, 2048)
	for _, strat := range []core.Granularity{core.PageLevel, core.RelationLevel} {
		rep, err := Run(Config{Processors: 4, Strategy: strat, HW: hwWithPages(2048)}, profs)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if rep.Elapsed <= 0 {
			t.Errorf("%s: Elapsed = %v", strat, rep.Elapsed)
		}
		if rep.Tasks == 0 || rep.ProcCacheBytes == 0 || rep.CacheDiskBytes == 0 {
			t.Errorf("%s: empty report %+v", strat, rep)
		}
		if rep.DiskReads == 0 {
			t.Errorf("%s: no disk reads", strat)
		}
	}
}

func TestMoreProcessorsNeverSlower(t *testing.T) {
	profs := testProfiles(t, 0.05, 2048)
	var prev time.Duration
	for i, p := range []int{1, 4, 16} {
		rep, err := Run(Config{Processors: p, Strategy: core.PageLevel, HW: hwWithPages(2048)}, profs)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && rep.Elapsed > prev+prev/10 {
			t.Errorf("%d processors slower than fewer: %v > %v", p, rep.Elapsed, prev)
		}
		prev = rep.Elapsed
	}
}

// TestPageLevelBeatsRelationLevel is the Figure 3.1 claim: with enough
// processors, page-level granularity outperforms relation-level.
func TestPageLevelBeatsRelationLevel(t *testing.T) {
	profs := testProfiles(t, 0.2, 4096)
	for _, procs := range []int{8, 16} {
		page, err := Run(Config{Processors: procs, Strategy: core.PageLevel, CacheFrames: 32, HW: hwWithPages(4096)}, profs)
		if err != nil {
			t.Fatal(err)
		}
		rel, err := Run(Config{Processors: procs, Strategy: core.RelationLevel, CacheFrames: 32, HW: hwWithPages(4096)}, profs)
		if err != nil {
			t.Fatal(err)
		}
		if page.Elapsed >= rel.Elapsed {
			t.Errorf("procs=%d: page %v not faster than relation %v",
				procs, page.Elapsed, rel.Elapsed)
		}
	}
}

func TestDeterministicSimulation(t *testing.T) {
	profs := testProfiles(t, 0.05, 2048)
	a, err := Run(Config{Processors: 8, Strategy: core.PageLevel, HW: hwWithPages(2048)}, profs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Processors: 8, Strategy: core.PageLevel, HW: hwWithPages(2048)}, profs)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("two identical runs differ:\n%+v\n%+v", a, b)
	}
}

// TestSmallCacheCausesSpills: at page-level granularity intermediates
// normally live and die in the cache; a tiny cache forces dirty
// evictions (disk writes) and re-reads, slowing the run.
func TestSmallCacheCausesSpills(t *testing.T) {
	profs := testProfiles(t, 0.2, 2048)
	small, err := Run(Config{Processors: 4, Strategy: core.PageLevel, CacheFrames: 8, HW: hwWithPages(2048)}, profs)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(Config{Processors: 4, Strategy: core.PageLevel, CacheFrames: 4096, HW: hwWithPages(2048)}, profs)
	if err != nil {
		t.Fatal(err)
	}
	if small.DiskWrites <= big.DiskWrites {
		t.Errorf("small cache wrote %d pages, big cache %d; expected more spills",
			small.DiskWrites, big.DiskWrites)
	}
	if small.Elapsed <= big.Elapsed {
		t.Errorf("small cache (%v) not slower than big cache (%v)", small.Elapsed, big.Elapsed)
	}
	// Relation-level granularity stages intermediates through mass
	// storage by construction, so its write count is cache-independent.
	relSmall, err := Run(Config{Processors: 4, Strategy: core.RelationLevel, CacheFrames: 8, HW: hwWithPages(2048)}, profs)
	if err != nil {
		t.Fatal(err)
	}
	relBig, err := Run(Config{Processors: 4, Strategy: core.RelationLevel, CacheFrames: 4096, HW: hwWithPages(2048)}, profs)
	if err != nil {
		t.Fatal(err)
	}
	if relBig.DiskWrites == 0 {
		t.Error("relation level with a big cache wrote nothing; staging policy missing")
	}
	if relSmall.DiskWrites < relBig.DiskWrites {
		t.Errorf("relation-level writes fell with a smaller cache: %d < %d",
			relSmall.DiskWrites, relBig.DiskWrites)
	}
}

func TestBandwidthGrowsWithProcessors(t *testing.T) {
	profs := testProfiles(t, 0.1, 2048)
	r4, err := Run(Config{Processors: 4, Strategy: core.PageLevel, HW: hwWithPages(2048)}, profs)
	if err != nil {
		t.Fatal(err)
	}
	r32, err := Run(Config{Processors: 32, Strategy: core.PageLevel, HW: hwWithPages(2048)}, profs)
	if err != nil {
		t.Fatal(err)
	}
	if r32.ProcCacheMbps() <= r4.ProcCacheMbps() {
		t.Errorf("bandwidth demand did not grow: 4 procs %.2f Mbps, 32 procs %.2f Mbps",
			r4.ProcCacheMbps(), r32.ProcCacheMbps())
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Processors: 0}, nil); err == nil {
		t.Error("zero processors accepted")
	}
	if _, err := Run(Config{Processors: 1, Strategy: core.TupleLevel}, nil); err == nil {
		t.Error("tuple-level strategy accepted by the DIRECT simulator")
	}
}

func TestUtilizationBounds(t *testing.T) {
	profs := testProfiles(t, 0.05, 2048)
	rep, err := Run(Config{Processors: 2, Strategy: core.PageLevel, HW: hwWithPages(2048)}, profs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ProcUtilization <= 0 || rep.ProcUtilization > 1.0001 {
		t.Errorf("processor utilization = %g", rep.ProcUtilization)
	}
	if rep.DiskUtilization <= 0 || rep.DiskUtilization > 1.0001 {
		t.Errorf("disk utilization = %g", rep.DiskUtilization)
	}
}

func TestTrafficAnalysisMatchesPaper(t *testing.T) {
	// The paper: n·m·(200+c) versus n·m·(20 + c/100) — a factor of ten
	// with 1000-byte pages, ignoring overhead.
	p := PaperExample(1000, 1000, 1000, 0)
	if got := p.TupleLevelBytes(); got != 1000*1000*200 {
		t.Errorf("TupleLevelBytes = %d", got)
	}
	if got := p.PageLevelBytes(); got != 100*100*2000 {
		t.Errorf("PageLevelBytes = %d", got)
	}
	if r := p.Ratio(); r != 10 {
		t.Errorf("ratio = %g, want exactly 10 with zero overhead", r)
	}
	// 10000-byte pages: another factor of ten.
	big := PaperExample(1000, 1000, 10000, 0)
	if r := big.Ratio(); r != 100 {
		t.Errorf("10K-page ratio = %g, want 100", r)
	}
	// Overhead c shifts both but keeps the ordering.
	withC := PaperExample(1000, 1000, 1000, 32)
	if withC.Ratio() <= 1 {
		t.Errorf("ratio with overhead = %g", withC.Ratio())
	}
}

func TestTrafficAnalysisEdgeCases(t *testing.T) {
	// Page smaller than a tuple degrades to one tuple per page.
	p := TrafficParams{OuterTuples: 10, InnerTuples: 10, TupleBytes: 100, PageBytes: 50, OverheadC: 0}
	if got := p.PageLevelBytes(); got != 10*10*200 {
		t.Errorf("degenerate PageLevelBytes = %d", got)
	}
	zero := TrafficParams{TupleBytes: 100, PageBytes: 1000}
	if zero.Ratio() != 0 {
		t.Errorf("empty ratio = %g", zero.Ratio())
	}
}

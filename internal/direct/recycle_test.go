package direct

import (
	"testing"

	"dfdbm/internal/core"
)

// TestPageDescriptorRecycling: under cache pressure, dead intermediate
// pages evicted at page-level granularity hand their descriptors back
// to the freelist; with no evictions nothing is recycled. Either way
// the simulated timings are untouched (TestDeterministicSimulation
// covers run-to-run identity, recycled ids are freshly numbered).
func TestPageDescriptorRecycling(t *testing.T) {
	profs := testProfiles(t, 0.2, 2048)
	small, err := Run(Config{Processors: 4, Strategy: core.PageLevel, CacheFrames: 8, HW: hwWithPages(2048)}, profs)
	if err != nil {
		t.Fatal(err)
	}
	if small.PagesRecycled == 0 {
		t.Error("tiny cache evicted dead pages but recycled none")
	}
	big, err := Run(Config{Processors: 4, Strategy: core.PageLevel, CacheFrames: 1 << 20, HW: hwWithPages(2048)}, profs)
	if err != nil {
		t.Fatal(err)
	}
	if big.PagesRecycled != 0 {
		t.Errorf("nothing was evicted yet %d pages were recycled", big.PagesRecycled)
	}
}

// Package direct simulates DIRECT, the centralized-control MIMD database
// machine of DeWitt [1, 2], executing the paper's benchmark under the
// alternative operand granularities of Section 3. It is the instrument
// that regenerates Figure 3.1 (page-level versus relation-level
// execution time as a function of the number of processors) and Figure
// 4.2 (average bandwidth demand at each level of the storage hierarchy).
//
// The simulator is profile-driven: each query is executed once by the
// serial reference executor to capture exact per-node cardinalities, and
// the discrete-event simulation then moves page tokens with the timing
// of the paper's hardware (LSI-11 processors, IBM 3330 drives, a CCD
// disk cache behind a cross-bar). This mirrors the paper's own
// methodology — Figures 3.1 and 4.2 were produced by simulation, not by
// the prototype.
package direct

import (
	"fmt"

	"dfdbm/internal/catalog"
	"dfdbm/internal/query"
)

// InputRef describes one operand of a profiled node.
type InputRef struct {
	// Node is the profile index of the producing node, or -1 when the
	// operand is a source relation read from mass storage.
	Node int
	// Rel is the source relation name when Node == -1.
	Rel string
	// Pages and Tuples are the operand's size at the profile page size.
	Pages  int
	Tuples int
	// Materialize marks an edge the adaptive plan buffers whole: at
	// page-level granularity the consumer holds this operand's pages
	// until the producer completes, and the producer stages them
	// through mass storage (relation-level behavior for this one edge).
	Materialize bool
}

// NodeProfile is the execution profile of one query-tree node.
type NodeProfile struct {
	ID        int
	Kind      query.OpKind
	NumInputs int
	Inputs    [2]InputRef
	// OutTuples and OutPages size the node's result at the profile page
	// size; OutBytesPerTuple is the result tuple width.
	OutTuples        int
	OutPages         int
	OutBytesPerTuple int
}

// QueryProfile is the profile of one query: operator nodes in post
// order (scans are folded into their consumers' InputRefs).
type QueryProfile struct {
	Nodes []NodeProfile
	// PageSize is the page size the profile was computed for; Run
	// rejects a configuration whose hardware page size differs.
	PageSize int
}

// Root returns the index of the root node (the last in post order).
func (q QueryProfile) Root() int { return len(q.Nodes) - 1 }

// pagesFor returns how many pageSize-byte pages hold n tuples of the
// given width.
func pagesFor(n, tupleLen, pageSize int) int {
	if n == 0 {
		return 0
	}
	cap := capOf(tupleLen, pageSize)
	return (n + cap - 1) / cap
}

func capOf(tupleLen, pageSize int) int {
	cap := (pageSize - pageHeaderLen) / tupleLen
	if cap < 1 {
		cap = 1
	}
	return cap
}

// pageHeaderLen mirrors relation.PageHeaderLen without importing the
// storage layer into the timing model.
const pageHeaderLen = 16

// ApplyPlan marks the profile's operator edges with the adaptive plan's
// materialization choices. The profile and plan must come from the same
// bound tree. Source-relation operands stay untouched: they are already
// at rest on mass storage.
func ApplyPlan(prof *QueryProfile, t *query.Tree, plan *query.Plan) {
	// Rebuild the tree-ID -> profile-index map Profile used.
	profIdx := make(map[int]int)
	k := 0
	for _, n := range t.Nodes() {
		if n.Kind == query.OpScan {
			continue
		}
		profIdx[n.ID] = k
		k++
	}
	for _, n := range t.Nodes() {
		if n.Kind == query.OpScan {
			continue
		}
		pi, ok := profIdx[n.ID]
		if !ok || pi >= len(prof.Nodes) {
			continue
		}
		for i, in := range n.Inputs {
			if in.Kind == query.OpScan {
				continue
			}
			if plan.Materialized(in.ID) {
				prof.Nodes[pi].Inputs[i].Materialize = true
			}
		}
	}
}

// Profile executes a bound query serially and extracts the cardinality
// profile used by the simulator, sized for the given page size.
func Profile(cat *catalog.Catalog, t *query.Tree, pageSize int) (QueryProfile, error) {
	if pageSize <= pageHeaderLen {
		return QueryProfile{}, fmt.Errorf("direct: page size %d too small", pageSize)
	}
	results, err := query.ExecuteSerialAll(cat, t, 0)
	if err != nil {
		return QueryProfile{}, err
	}

	prof := QueryProfile{PageSize: pageSize}
	// Map tree node ID -> profile index (operator nodes only).
	profIdx := make(map[int]int)

	for _, n := range t.Nodes() {
		if n.Kind == query.OpScan {
			continue
		}
		np := NodeProfile{
			ID:        len(prof.Nodes),
			Kind:      n.Kind,
			NumInputs: len(n.Inputs),
		}
		for i, in := range n.Inputs {
			rel := results[in.ID]
			ref := InputRef{
				Node:   -1,
				Pages:  pagesFor(rel.Cardinality(), rel.Schema().TupleLen(), pageSize),
				Tuples: rel.Cardinality(),
			}
			if in.Kind == query.OpScan {
				ref.Rel = in.Rel
			} else {
				ref.Node = profIdx[in.ID]
			}
			np.Inputs[i] = ref
		}
		out := results[n.ID]
		np.OutTuples = out.Cardinality()
		np.OutBytesPerTuple = out.Schema().TupleLen()
		np.OutPages = pagesFor(np.OutTuples, np.OutBytesPerTuple, pageSize)
		profIdx[n.ID] = np.ID
		prof.Nodes = append(prof.Nodes, np)
	}

	if len(prof.Nodes) == 0 {
		// A bare scan: model it as a restrict that keeps everything.
		root := t.Root()
		rel := results[root.ID]
		prof.Nodes = append(prof.Nodes, NodeProfile{
			ID:        0,
			Kind:      query.OpRestrict,
			NumInputs: 1,
			Inputs: [2]InputRef{{
				Node:   -1,
				Rel:    root.Rel,
				Pages:  pagesFor(rel.Cardinality(), rel.Schema().TupleLen(), pageSize),
				Tuples: rel.Cardinality(),
			}},
			OutTuples:        rel.Cardinality(),
			OutBytesPerTuple: rel.Schema().TupleLen(),
			OutPages:         pagesFor(rel.Cardinality(), rel.Schema().TupleLen(), pageSize),
		})
	}
	return prof, nil
}

// ProfileAll profiles a set of bound queries.
func ProfileAll(cat *catalog.Catalog, trees []*query.Tree, pageSize int) ([]QueryProfile, error) {
	out := make([]QueryProfile, len(trees))
	for i, t := range trees {
		p, err := Profile(cat, t, pageSize)
		if err != nil {
			return nil, fmt.Errorf("direct: profiling query %d: %w", i+1, err)
		}
		out[i] = p
	}
	return out, nil
}

package direct

import (
	"testing"

	"dfdbm/internal/core"
)

// Conservation and consistency invariants of the DIRECT simulator.

func TestTrafficConservation(t *testing.T) {
	profs := testProfiles(t, 0.1, 2048)
	for _, strat := range []core.Granularity{core.PageLevel, core.RelationLevel} {
		rep, err := Run(Config{Processors: 8, Strategy: strat, HW: hwWithPages(2048)}, profs)
		if err != nil {
			t.Fatal(err)
		}
		// Every leaf page must be fetched by a processor at least once,
		// so IP⇄cache traffic is at least the leaf volume.
		var leafBytes int64
		seen := map[string]bool{}
		for _, p := range profs {
			for _, n := range p.Nodes {
				for i := 0; i < n.NumInputs; i++ {
					ref := n.Inputs[i]
					if ref.Node == -1 && !seen[ref.Rel] {
						seen[ref.Rel] = true
						leafBytes += int64(ref.Pages) * 2048
					}
				}
			}
		}
		if rep.ProcCacheBytes < leafBytes {
			t.Errorf("%s: ProcCacheBytes %d below one pass over the leaves (%d)",
				strat, rep.ProcCacheBytes, leafBytes)
		}
		// Disk traffic equals (reads+writes) × page size.
		if rep.CacheDiskBytes != (rep.DiskReads+rep.DiskWrites)*2048 {
			t.Errorf("%s: CacheDiskBytes %d inconsistent with %d reads + %d writes",
				strat, rep.CacheDiskBytes, rep.DiskReads, rep.DiskWrites)
		}
		// Hits + misses cover every ensureResident call; misses == reads.
		if rep.CacheMisses != rep.DiskReads {
			t.Errorf("%s: misses %d != disk reads %d", strat, rep.CacheMisses, rep.DiskReads)
		}
	}
}

func TestRelationLevelStagesEveryIntermediatePage(t *testing.T) {
	profs := testProfiles(t, 0.1, 2048)
	rep, err := Run(Config{Processors: 8, Strategy: core.RelationLevel, HW: hwWithPages(2048)}, profs)
	if err != nil {
		t.Fatal(err)
	}
	// Count non-root intermediate pages across all queries: each is
	// written to mass storage by the staging policy.
	var intermediate int64
	for _, p := range profs {
		for i, n := range p.Nodes {
			if i == p.Root() {
				continue
			}
			intermediate += int64(n.OutPages)
		}
	}
	if rep.DiskWrites < intermediate {
		t.Errorf("relation level wrote %d pages, but %d intermediate pages exist",
			rep.DiskWrites, intermediate)
	}
}

func TestPageLevelWritesLessThanRelationLevel(t *testing.T) {
	profs := testProfiles(t, 0.2, 2048)
	page, err := Run(Config{Processors: 8, Strategy: core.PageLevel, HW: hwWithPages(2048)}, profs)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := Run(Config{Processors: 8, Strategy: core.RelationLevel, HW: hwWithPages(2048)}, profs)
	if err != nil {
		t.Fatal(err)
	}
	if page.DiskWrites >= rel.DiskWrites {
		t.Errorf("page level wrote %d pages, relation level %d; pipelining should write less",
			page.DiskWrites, rel.DiskWrites)
	}
}

func TestConcurrentModeCompletes(t *testing.T) {
	profs := testProfiles(t, 0.1, 2048)
	// With a cache large enough to avoid inter-query thrash, running
	// the mix concurrently cannot be slower than back to back: same
	// work, strictly more overlap.
	big := 8192
	seq, err := Run(Config{Processors: 16, Strategy: core.PageLevel, CacheFrames: big, HW: hwWithPages(2048)}, profs)
	if err != nil {
		t.Fatal(err)
	}
	conc, err := Run(Config{Processors: 16, Strategy: core.PageLevel, CacheFrames: big, Concurrent: true, HW: hwWithPages(2048)}, profs)
	if err != nil {
		t.Fatal(err)
	}
	if conc.Elapsed > seq.Elapsed+seq.Elapsed/10 {
		t.Errorf("concurrent mode (%v) much slower than sequential (%v)",
			conc.Elapsed, seq.Elapsed)
	}
	if conc.Tasks != seq.Tasks {
		t.Errorf("task count changed with admission mode: %d vs %d", conc.Tasks, seq.Tasks)
	}
	// With a small cache, ten queries' working sets thrash each other:
	// the simulator must surface that as extra disk traffic.
	concSmall, err := Run(Config{Processors: 16, Strategy: core.PageLevel, CacheFrames: 32, Concurrent: true, HW: hwWithPages(2048)}, profs)
	if err != nil {
		t.Fatal(err)
	}
	if concSmall.DiskReads <= conc.DiskReads {
		t.Errorf("small shared cache did not increase re-reads: %d vs %d",
			concSmall.DiskReads, conc.DiskReads)
	}
}

func TestControlTrafficTracksTasks(t *testing.T) {
	profs := testProfiles(t, 0.05, 2048)
	rep, err := Run(Config{Processors: 4, Strategy: core.PageLevel, HW: hwWithPages(2048)}, profs)
	if err != nil {
		t.Fatal(err)
	}
	// Each task costs an instruction header + two control messages.
	want := rep.Tasks * int64(64+32+32)
	if rep.ControlBytes != want {
		t.Errorf("ControlBytes = %d, want %d (= tasks × 128)", rep.ControlBytes, want)
	}
}

func TestEmptyProfileListCompletesInstantly(t *testing.T) {
	rep, err := Run(Config{Processors: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Elapsed != 0 || rep.Tasks != 0 {
		t.Errorf("empty run: %+v", rep)
	}
}

func TestProfilePageMath(t *testing.T) {
	if got := pagesFor(0, 100, 2048); got != 0 {
		t.Errorf("pagesFor(0) = %d", got)
	}
	// cap = (2048-16)/100 = 20.
	if got := pagesFor(20, 100, 2048); got != 1 {
		t.Errorf("pagesFor(20) = %d, want 1", got)
	}
	if got := pagesFor(21, 100, 2048); got != 2 {
		t.Errorf("pagesFor(21) = %d, want 2", got)
	}
	// Tuples wider than a page degrade to one per page.
	if got := capOf(5000, 2048); got != 1 {
		t.Errorf("capOf(oversized tuple) = %d, want 1", got)
	}
	if _, err := Profile(nil, nil, 8); err == nil {
		t.Error("Profile with absurd page size succeeded")
	}
}

package direct

// This file holds the closed-form arbitration-network traffic analysis
// of the paper's Section 3.3: the bytes that must pass from the memory
// section through the arbitration network to the processing section to
// execute one nested-loops join, at tuple-level versus page-level
// granularity.

// TrafficParams are the parameters of the Section 3.3 example: an outer
// relation of n tuples joined with an inner relation of m tuples, each
// tuple TupleBytes long (100 in the paper), pages of PageBytes (1000 in
// the paper, 10000 in the ablation), and c overhead bytes per packet.
type TrafficParams struct {
	OuterTuples int // n
	InnerTuples int // m
	TupleBytes  int // 100 in the paper
	PageBytes   int // 1000 in the paper
	OverheadC   int // c
}

// TupleLevelBytes returns n·m·(2·tupleBytes + c): every (outer, inner)
// tuple pair crosses the arbitration network as its own packet.
func (p TrafficParams) TupleLevelBytes() int64 {
	return int64(p.OuterTuples) * int64(p.InnerTuples) *
		int64(2*p.TupleBytes+p.OverheadC)
}

// PageLevelBytes returns the paper's page-level count: with t = page
// capacity in tuples, ⌈n/t⌉·⌈m/t⌉ packets each carrying two pages plus
// overhead. For the paper's numbers (t = 10) this reduces to
// n·m·(20 + c/100): one tenth of the tuple-level load.
func (p TrafficParams) PageLevelBytes() int64 {
	t := p.PageBytes / p.TupleBytes
	if t < 1 {
		t = 1
	}
	po := int64((p.OuterTuples + t - 1) / t)
	pi := int64((p.InnerTuples + t - 1) / t)
	return po * pi * int64(2*t*p.TupleBytes+p.OverheadC)
}

// Ratio returns tuple-level bytes over page-level bytes — the paper's
// "the bandwidth requirements of the page approach is 1/10 that of the
// tuple level approach" (for 1000-byte pages; 1/100 for 10000-byte
// pages).
func (p TrafficParams) Ratio() float64 {
	pl := p.PageLevelBytes()
	if pl == 0 {
		return 0
	}
	return float64(p.TupleLevelBytes()) / float64(pl)
}

// PaperExample returns the Section 3.3 parameters with the given n, m,
// page size, and overhead.
func PaperExample(n, m, pageBytes, c int) TrafficParams {
	return TrafficParams{
		OuterTuples: n,
		InnerTuples: m,
		TupleBytes:  100,
		PageBytes:   pageBytes,
		OverheadC:   c,
	}
}

// Package ringnet models the three loop-network architectures the paper
// weighs for its interconnect (Section 4.1): the Distributed Loop
// Computer Network's shift-register insertion ring (Liu and Reames),
// the Newhall control-token loop, and the Pierce slotted loop. The
// comparison simulation reproduces the finding the paper cites from
// Reames and Liu: with variable-length messages, the insertion ring
// delivers lower delay than either alternative — which is why the
// machine's rings use shift-register insertion.
//
// The models are deliberately comparable: all three share the loop
// bandwidth, per-hop shift-register delay, topology, and offered load.
//
//   - DLCN: a node inserts a message as soon as its outgoing link is
//     free; the message cuts through intermediate nodes with one hop
//     delay each, so disjoint loop segments carry traffic concurrently.
//   - Newhall: a single control token circulates; only the token holder
//     transmits, one whole message per acquisition. Variable lengths
//     are handled naturally but the loop is monopolized per message.
//   - Pierce: messages are segmented into fixed slots (with per-slot
//     header overhead and padding of the final slot); slots cut through
//     like DLCN but each slot pays the fixed framing cost.
package ringnet

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"dfdbm/internal/obs"
)

// Kind selects a loop architecture.
type Kind uint8

// The three loop architectures of the Section 4.1 discussion.
const (
	DLCN Kind = iota + 1
	Newhall
	Pierce
)

// String returns the architecture name.
func (k Kind) String() string {
	switch k {
	case DLCN:
		return "dlcn"
	case Newhall:
		return "newhall"
	case Pierce:
		return "pierce"
	default:
		return fmt.Sprintf("ring(%d)", uint8(k))
	}
}

// Config parameterizes one loop simulation.
type Config struct {
	Kind  Kind
	Nodes int
	// BitsPerSec is the loop bandwidth (40e6 for the paper's 25 ns
	// shift registers).
	BitsPerSec float64
	// HopDelay is the shift-register delay per node traversed.
	HopDelay time.Duration
	// Messages is the number of messages to deliver.
	Messages int
	// MeanGap is the mean inter-arrival time between messages,
	// loop-wide (exponential arrivals).
	MeanGap time.Duration
	// MinLen and MaxLen bound the (uniform) message length in bytes —
	// the "variable length messages" of the DLCN design.
	MinLen, MaxLen int
	// SlotPayload and SlotHeader shape Pierce slots. Defaults: 128-byte
	// payload, 8-byte header.
	SlotPayload int
	SlotHeader  int
	// Seed drives arrival times, lengths, sources, and destinations.
	Seed int64
	// Obs, when non-nil and carrying a sink, receives one structured
	// event per delivered message stamped with the virtual delivery
	// time; when it carries a registry, the ringnet.loop_busy_us
	// timeline accumulates link occupancy (serialization × hops), so
	// the loop appears in saturation reports alongside the machine's
	// rings.
	Obs *obs.Observer
}

func (c Config) withDefaults() (Config, error) {
	if c.Kind == 0 {
		c.Kind = DLCN
	}
	if c.Kind != DLCN && c.Kind != Newhall && c.Kind != Pierce {
		return c, fmt.Errorf("ringnet: unknown kind %v", c.Kind)
	}
	if c.Nodes < 2 {
		return c, fmt.Errorf("ringnet: need at least 2 nodes, have %d", c.Nodes)
	}
	if c.BitsPerSec <= 0 {
		c.BitsPerSec = 40e6
	}
	if c.HopDelay <= 0 {
		c.HopDelay = 200 * time.Nanosecond
	}
	if c.Messages <= 0 {
		c.Messages = 2000
	}
	if c.MeanGap <= 0 {
		c.MeanGap = 100 * time.Microsecond
	}
	if c.MinLen <= 0 {
		c.MinLen = 64
	}
	if c.MaxLen < c.MinLen {
		c.MaxLen = c.MinLen
	}
	if c.SlotPayload <= 0 {
		c.SlotPayload = 128
	}
	if c.SlotHeader <= 0 {
		c.SlotHeader = 8
	}
	return c, nil
}

// Result summarizes one simulation.
type Result struct {
	Delivered   int
	MeanDelay   time.Duration
	MaxDelay    time.Duration
	P95Delay    time.Duration
	Makespan    time.Duration
	OfferedMbps float64 // payload offered per unit time
	CarriedMbps float64 // payload delivered over the makespan
}

// message is one offered message.
type message struct {
	arrive   time.Duration
	src, dst int
	bytes    int
}

// genLoad builds the deterministic offered load shared by all three
// architectures.
func genLoad(c Config) []message {
	rng := rand.New(rand.NewSource(c.Seed))
	msgs := make([]message, c.Messages)
	t := time.Duration(0)
	for i := range msgs {
		t += time.Duration(rng.ExpFloat64() * float64(c.MeanGap))
		src := rng.Intn(c.Nodes)
		dst := rng.Intn(c.Nodes - 1)
		if dst >= src {
			dst++
		}
		msgs[i] = message{
			arrive: t,
			src:    src,
			dst:    dst,
			bytes:  c.MinLen + rng.Intn(c.MaxLen-c.MinLen+1),
		}
	}
	return msgs
}

// Simulate runs one loop simulation and reports delay statistics.
func Simulate(cfg Config) (Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	msgs := genLoad(cfg)
	var delays []time.Duration
	var makespan time.Duration
	switch cfg.Kind {
	case DLCN:
		delays, makespan = simulateInsertion(cfg, msgs, cfg.MinLen+cfg.MaxLen, false)
	case Pierce:
		delays, makespan = simulateInsertion(cfg, msgs, 0, true)
	case Newhall:
		delays, makespan = simulateNewhall(cfg, msgs)
	}

	// Delays are recorded in offered order, so msgs[i] delivered at
	// msgs[i].arrive + delays[i].
	if o := cfg.Obs; len(delays) == len(msgs) && (o.Enabled() || o.MetricsOn()) {
		for i, d := range delays {
			m := msgs[i]
			deliver := m.arrive + d
			if o.Enabled() {
				o.Emit(obs.Event{
					TS: deliver, Kind: obs.EvControl, Comp: cfg.Kind.String(),
					Query: -1, Instr: -1, Page: -1, Bytes: m.bytes,
					Msg: fmt.Sprintf("%s: node %d -> node %d delivered %d bytes",
						cfg.Kind, m.src, m.dst, m.bytes),
				})
			}
			if o.MetricsOn() {
				busy := serTime(cfg, m.bytes) * time.Duration(hops(cfg, m.src, m.dst))
				o.Registry().AddBusy("ringnet.loop_busy_us", deliver-busy, busy)
				o.Registry().Add("ringnet.delivered_bytes", deliver, float64(m.bytes))
			}
		}
	}

	res := Result{Delivered: len(delays), Makespan: makespan}
	var sum time.Duration
	for _, d := range delays {
		sum += d
		if d > res.MaxDelay {
			res.MaxDelay = d
		}
	}
	if len(delays) > 0 {
		res.MeanDelay = sum / time.Duration(len(delays))
		sorted := append([]time.Duration(nil), delays...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		res.P95Delay = sorted[len(sorted)*95/100]
	}
	var payload int64
	for _, m := range msgs {
		payload += int64(m.bytes)
	}
	if last := msgs[len(msgs)-1].arrive; last > 0 {
		res.OfferedMbps = float64(payload) * 8 / 1e6 / last.Seconds()
	}
	if makespan > 0 {
		res.CarriedMbps = float64(payload) * 8 / 1e6 / makespan.Seconds()
	}
	return res, nil
}

// serTime returns the serialization time of the given bytes on the loop.
func serTime(c Config, bytes int) time.Duration {
	return time.Duration(float64(bytes) * 8 / c.BitsPerSec * float64(time.Second))
}

// hops returns the path length from src to dst on the unidirectional
// loop.
func hops(c Config, src, dst int) int {
	return ((dst - src) + c.Nodes) % c.Nodes
}

// simulateInsertion models a shift-register insertion loop with virtual
// cut-through: a unit (whole message for DLCN, one slot for Pierce)
// reserves each link along its path; the reservation at link k starts
// one hop delay after link k-1 (or later if the link is still busy with
// earlier traffic), and holds the link for the unit's serialization
// time. Units are processed in arrival order, which preserves FIFO
// fairness at each insertion point.
func simulateInsertion(cfg Config, msgs []message, _ int, slotted bool) ([]time.Duration, time.Duration) {
	linkFree := make([]time.Duration, cfg.Nodes) // link i: node i -> i+1
	delays := make([]time.Duration, 0, len(msgs))
	var makespan time.Duration

	// sendUnit reserves the path for one unit starting no earlier than
	// start, returning (insertion completion, delivery time).
	sendUnit := func(src, dst int, bytes int, start time.Duration) (time.Duration, time.Duration) {
		ser := serTime(cfg, bytes)
		t := start
		n := hops(cfg, src, dst)
		var depart time.Duration
		for k := 0; k < n; k++ {
			link := (src + k) % cfg.Nodes
			if linkFree[link] > t {
				t = linkFree[link]
			}
			linkFree[link] = t + ser
			if k == 0 {
				depart = t + ser
			}
			t += cfg.HopDelay
		}
		// Delivery: last link's occupation ends ser after its start.
		return depart, t - cfg.HopDelay + ser + cfg.HopDelay
	}

	for _, m := range msgs {
		var delivered time.Duration
		if !slotted {
			_, delivered = sendUnit(m.src, m.dst, m.bytes, m.arrive)
		} else {
			// Pierce: segment into fixed slots; each slot pays the
			// header, the last is padded to the slot boundary. Slots
			// follow each other down the loop; delivery is the last
			// slot's arrival.
			remaining := m.bytes
			start := m.arrive
			for remaining > 0 {
				slotBytes := cfg.SlotPayload + cfg.SlotHeader
				var d time.Duration
				start, d = sendUnit(m.src, m.dst, slotBytes, start)
				if d > delivered {
					delivered = d
				}
				remaining -= cfg.SlotPayload
			}
		}
		delays = append(delays, delivered-m.arrive)
		if delivered > makespan {
			makespan = delivered
		}
	}
	return delays, makespan
}

// simulateNewhall models a control-token loop: the token circulates
// node to node; a node holding the token transmits one whole queued
// message (occupying the entire loop for its serialization time) before
// passing the token on.
func simulateNewhall(cfg Config, msgs []message) ([]time.Duration, time.Duration) {
	type qmsg struct {
		message
		idx int
	}
	queues := make([][]qmsg, cfg.Nodes)
	delays := make([]time.Duration, len(msgs))
	var makespan time.Duration

	next := 0 // next message (by arrival) not yet enqueued
	enqueueUpTo := func(t time.Duration) {
		for next < len(msgs) && msgs[next].arrive <= t {
			m := msgs[next]
			queues[m.src] = append(queues[m.src], qmsg{m, next})
			next++
		}
	}

	tokenAt := 0
	now := time.Duration(0)
	remaining := len(msgs)
	for remaining > 0 {
		enqueueUpTo(now)
		if q := queues[tokenAt]; len(q) > 0 {
			m := q[0]
			queues[tokenAt] = q[1:]
			ser := serTime(cfg, m.bytes)
			delivered := now + ser + time.Duration(hops(cfg, m.src, m.dst))*cfg.HopDelay
			delays[m.idx] = delivered - m.arrive
			if delivered > makespan {
				makespan = delivered
			}
			remaining--
			// The loop is busy until the tail of the message returns;
			// the token moves on after transmission completes.
			now += ser + cfg.HopDelay
			tokenAt = (tokenAt + 1) % cfg.Nodes
			continue
		}
		// Idle hop. If every queue is empty, jump the token forward to
		// the next arrival instead of spinning hop by hop.
		idle := true
		for _, q := range queues {
			if len(q) > 0 {
				idle = false
				break
			}
		}
		if idle {
			if next >= len(msgs) {
				break
			}
			target := msgs[next]
			// Advance the token until it reaches target.src no earlier
			// than the arrival time.
			steps := hops(cfg, tokenAt, target.src)
			t := now + time.Duration(steps)*cfg.HopDelay
			for t < target.arrive {
				t += time.Duration(cfg.Nodes) * cfg.HopDelay
			}
			now = t
			tokenAt = target.src
			enqueueUpTo(now)
			continue
		}
		now += cfg.HopDelay
		tokenAt = (tokenAt + 1) % cfg.Nodes
	}
	return delays, makespan
}

package ringnet

import (
	"testing"
	"time"
)

func base(kind Kind) Config {
	return Config{
		Kind:     kind,
		Nodes:    16,
		Messages: 1500,
		MeanGap:  60 * time.Microsecond,
		MinLen:   64,
		MaxLen:   2048,
		Seed:     42,
	}
}

func TestAllKindsDeliverEverything(t *testing.T) {
	for _, k := range []Kind{DLCN, Newhall, Pierce} {
		res, err := Simulate(base(k))
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if res.Delivered != 1500 {
			t.Errorf("%s delivered %d of 1500", k, res.Delivered)
		}
		if res.MeanDelay <= 0 || res.MaxDelay < res.MeanDelay || res.P95Delay <= 0 {
			t.Errorf("%s delay stats inconsistent: %+v", k, res)
		}
		if res.Makespan <= 0 || res.CarriedMbps <= 0 {
			t.Errorf("%s makespan/throughput missing: %+v", k, res)
		}
	}
}

func TestDeterministicResults(t *testing.T) {
	a, err := Simulate(base(DLCN))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(base(DLCN))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("identical configs differ: %+v vs %+v", a, b)
	}
}

// TestDLCNBeatsAlternatives reproduces the Reames–Liu comparison the
// paper cites: for variable-length messages at moderate load, the
// insertion ring has lower mean delay than both the token loop and the
// slotted loop.
func TestDLCNBeatsAlternatives(t *testing.T) {
	dlcn, err := Simulate(base(DLCN))
	if err != nil {
		t.Fatal(err)
	}
	newhall, err := Simulate(base(Newhall))
	if err != nil {
		t.Fatal(err)
	}
	pierce, err := Simulate(base(Pierce))
	if err != nil {
		t.Fatal(err)
	}
	if dlcn.MeanDelay >= newhall.MeanDelay {
		t.Errorf("DLCN (%v) not faster than Newhall (%v)", dlcn.MeanDelay, newhall.MeanDelay)
	}
	if dlcn.MeanDelay >= pierce.MeanDelay {
		t.Errorf("DLCN (%v) not faster than Pierce (%v)", dlcn.MeanDelay, pierce.MeanDelay)
	}
}

func TestDelayGrowsWithLoad(t *testing.T) {
	for _, k := range []Kind{DLCN, Newhall, Pierce} {
		light := base(k)
		light.MeanGap = 2 * time.Millisecond
		heavy := base(k)
		heavy.MeanGap = 40 * time.Microsecond
		lr, err := Simulate(light)
		if err != nil {
			t.Fatal(err)
		}
		hr, err := Simulate(heavy)
		if err != nil {
			t.Fatal(err)
		}
		if hr.MeanDelay <= lr.MeanDelay {
			t.Errorf("%s: heavy load (%v) not slower than light load (%v)",
				k, hr.MeanDelay, lr.MeanDelay)
		}
	}
}

func TestLightLoadDelayNearServiceTime(t *testing.T) {
	// At very light load a DLCN message's delay is close to its own
	// serialization plus hop delays — no queueing.
	cfg := base(DLCN)
	cfg.MeanGap = 50 * time.Millisecond
	cfg.MinLen, cfg.MaxLen = 1000, 1000
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	full, _ := cfg.withDefaults()
	ser := serTime(full, 1000)
	// Mean path is ~Nodes/2 hops; delay should be within [ser, ser + N·hop + slack].
	min := ser
	max := ser + time.Duration(full.Nodes)*full.HopDelay + ser/2
	if res.MeanDelay < min || res.MeanDelay > max {
		t.Errorf("light-load mean delay %v outside [%v, %v]", res.MeanDelay, min, max)
	}
}

func TestPierceFragmentationOverhead(t *testing.T) {
	// A single long message on an idle loop: Pierce pays per-slot
	// headers and padding, so it must be slower than DLCN end to end.
	cfg := base(DLCN)
	cfg.Messages = 1
	cfg.MinLen, cfg.MaxLen = 1500, 1500
	d, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Kind = Pierce
	p, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.MeanDelay <= d.MeanDelay {
		t.Errorf("Pierce single-message delay %v not above DLCN %v", p.MeanDelay, d.MeanDelay)
	}
}

func TestNewhallMonopolizesLoop(t *testing.T) {
	// Two messages between disjoint node pairs arriving together: DLCN
	// carries them concurrently, Newhall serializes them.
	mk := func(k Kind) Result {
		cfg := base(k)
		cfg.Messages = 40
		cfg.MeanGap = time.Nanosecond // effectively simultaneous
		cfg.MinLen, cfg.MaxLen = 2048, 2048
		r, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	d := mk(DLCN)
	n := mk(Newhall)
	if n.Makespan <= d.Makespan {
		t.Errorf("Newhall makespan %v not above DLCN %v under burst", n.Makespan, d.Makespan)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Simulate(Config{Kind: Kind(9), Nodes: 4}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := Simulate(Config{Kind: DLCN, Nodes: 1}); err == nil {
		t.Error("single-node loop accepted")
	}
}

func TestKindString(t *testing.T) {
	if DLCN.String() != "dlcn" || Newhall.String() != "newhall" ||
		Pierce.String() != "pierce" || Kind(9).String() != "ring(9)" {
		t.Error("Kind.String wrong")
	}
}

func TestHopsWrapAround(t *testing.T) {
	cfg, _ := Config{Kind: DLCN, Nodes: 8}.withDefaults()
	if hops(cfg, 6, 2) != 4 || hops(cfg, 2, 6) != 4 || hops(cfg, 0, 7) != 7 {
		t.Error("hops computes wrong path lengths")
	}
}

// TestCarriedNeverExceedsCapacity: the loop cannot deliver more payload
// per unit time than its raw bandwidth.
func TestCarriedNeverExceedsCapacity(t *testing.T) {
	for _, k := range []Kind{DLCN, Newhall, Pierce} {
		cfg := base(k)
		cfg.MeanGap = 10 * time.Microsecond // overload
		res, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// DLCN's spatial reuse lets disjoint segments carry concurrent
		// transfers, so aggregate payload can exceed a single link's
		// rate, but never the sum of all link rates.
		full, _ := cfg.withDefaults()
		cap := full.BitsPerSec / 1e6 * float64(full.Nodes)
		if res.CarriedMbps > cap {
			t.Errorf("%s carried %.1f Mbps, above any physical bound %.1f", k, res.CarriedMbps, cap)
		}
	}
}

// TestDelayAtLeastSerialization: no message is delivered faster than
// its own serialization time.
func TestDelayAtLeastSerialization(t *testing.T) {
	for _, k := range []Kind{DLCN, Newhall, Pierce} {
		cfg := base(k)
		cfg.Messages = 300
		cfg.MinLen, cfg.MaxLen = 512, 512
		res, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		full, _ := cfg.withDefaults()
		minDelay := serTime(full, 512)
		if res.MeanDelay < minDelay {
			t.Errorf("%s mean delay %v below serialization time %v", k, res.MeanDelay, minDelay)
		}
	}
}

// TestTwoNodeLoop: the degenerate smallest topology still works.
func TestTwoNodeLoop(t *testing.T) {
	for _, k := range []Kind{DLCN, Newhall, Pierce} {
		cfg := base(k)
		cfg.Nodes = 2
		cfg.Messages = 100
		res, err := Simulate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if res.Delivered != 100 {
			t.Errorf("%s delivered %d of 100 on a 2-node loop", k, res.Delivered)
		}
	}
}

// TestDefaultsApplied: the zero-value knobs get sane defaults.
func TestDefaultsApplied(t *testing.T) {
	res, err := Simulate(Config{Kind: DLCN, Nodes: 4, Messages: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 50 {
		t.Errorf("defaults broke delivery: %+v", res)
	}
}

package obs

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(DurationBuckets())
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("fresh histogram not empty: count=%d sum=%d", h.Count(), h.Sum())
	}
	h.Observe(1000)
	h.Observe(2000)
	h.Observe(3000)
	if h.Count() != 3 || h.Sum() != 6000 {
		t.Fatalf("count=%d sum=%d, want 3/6000", h.Count(), h.Sum())
	}
	if h.Max() != 3000 {
		t.Fatalf("max=%d, want 3000", h.Max())
	}
}

// TestHistogramQuantileAccuracy checks interpolated quantiles against
// exact percentiles of the recorded sample: every estimate must land
// within the width of the bucket holding the exact value.
func TestHistogramQuantileAccuracy(t *testing.T) {
	bounds := DurationBuckets()
	h := NewHistogram(bounds)
	rng := rand.New(rand.NewSource(42))
	vals := make([]int64, 10000)
	for i := range vals {
		// Log-uniform over ~10µs..1s, the histogram's natural range.
		v := int64(10_000 * (1 + rng.Float64()*100_000))
		vals[i] = v
		h.Observe(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })

	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		exact := vals[int(q*float64(len(vals)-1))]
		got := h.Quantile(q)
		// The estimate must fall in (or adjacent to) the exact value's
		// bucket: error bounded by that bucket's width.
		i := sort.Search(len(bounds), func(i int) bool { return bounds[i] >= exact })
		var lo, hi int64
		if i == 0 {
			lo, hi = 0, bounds[0]
		} else if i == len(bounds) {
			lo, hi = bounds[len(bounds)-1], h.Max()
		} else {
			lo, hi = bounds[i-1], bounds[i]
		}
		width := hi - lo
		if got < lo-width || got > hi+width {
			t.Errorf("q%.2f = %d, exact %d, want within bucket [%d,%d] ± %d", q, got, exact, lo, hi, width)
		}
	}
}

func TestHistogramQuantileSingleValue(t *testing.T) {
	h := NewHistogram(DurationBuckets())
	h.Observe(123456)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 123456 {
			t.Errorf("single-value q%.2f = %d, want 123456 (clamped to observed range)", q, got)
		}
	}
	var empty *Histogram
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram quantile = %d, want 0", got)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram([]int64{10, 20})
	h.Observe(1_000_000) // beyond the last bound
	if h.Count() != 1 {
		t.Fatalf("count=%d, want 1", h.Count())
	}
	if got := h.Quantile(0.99); got != 1_000_000 {
		t.Errorf("overflow quantile = %d, want the recorded max 1000000", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(DurationBuckets())
	b := NewHistogram(DurationBuckets())
	for i := int64(1); i <= 100; i++ {
		a.Observe(i * 1000)
		b.Observe(i * 2000)
	}
	if err := a.Merge(b); err != nil {
		t.Fatalf("same-layout merge failed: %v", err)
	}
	if a.Count() != 200 {
		t.Fatalf("merged count=%d, want 200", a.Count())
	}
	if a.Max() != 200_000 {
		t.Fatalf("merged max=%d, want 200000", a.Max())
	}
}

// TestHistogramMergeLayoutMismatch pins the satellite contract: merging
// histograms with different bucket layouts returns the typed
// ErrHistogramLayout, never panics, and leaves the receiver untouched —
// for a different bucket count and for equal counts with different
// bounds.
func TestHistogramMergeLayoutMismatch(t *testing.T) {
	a := NewHistogram(DurationBuckets())
	for i := int64(1); i <= 50; i++ {
		a.Observe(i * 1000)
	}
	shorter := NewHistogram([]int64{1, 2, 3})
	shorter.Observe(2)
	sameLenDiffBounds := NewHistogram(func() []int64 {
		b := DurationBuckets()
		b[3]++
		return b
	}())
	sameLenDiffBounds.Observe(1)
	for _, other := range []*Histogram{shorter, sameLenDiffBounds} {
		err := a.Merge(other)
		if err == nil {
			t.Fatal("mismatched merge returned nil error")
		}
		if !errors.Is(err, ErrHistogramLayout) {
			t.Fatalf("mismatched merge error %v, want errors.Is ErrHistogramLayout", err)
		}
		if a.Count() != 50 || a.Sum() != 50*51/2*1000 {
			t.Fatalf("mismatched merge mutated receiver: count=%d sum=%d", a.Count(), a.Sum())
		}
	}
	// Nil receiver and nil other are no-ops, not errors.
	var nilH *Histogram
	if err := nilH.Merge(a); err != nil {
		t.Fatalf("nil receiver merge: %v", err)
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("nil other merge: %v", err)
	}
}

// TestHistogramSnapshotDelta checks Sub + snapshot Quantile: the
// quantiles of a delta window reflect only the samples recorded inside
// it, unpolluted by history.
func TestHistogramSnapshotDelta(t *testing.T) {
	h := NewHistogram(DurationBuckets())
	for i := 0; i < 1000; i++ {
		h.Observe(int64(20 * time.Microsecond)) // old regime: fast
	}
	prev := h.Snapshot()
	for i := 0; i < 100; i++ {
		h.Observe(int64(80 * time.Millisecond)) // new regime: slow
	}
	delta := h.Snapshot().Sub(prev)
	if delta.Count != 100 {
		t.Fatalf("delta count=%d, want 100", delta.Count)
	}
	p50 := delta.Quantile(0.5)
	if p50 < int64(20*time.Millisecond) {
		t.Errorf("delta p50=%v still dominated by pre-window samples", time.Duration(p50))
	}
	if full := h.Quantile(0.5); full > int64(time.Millisecond) {
		t.Errorf("full-history p50=%v should stay in the fast regime (1000 fast vs 100 slow)", time.Duration(full))
	}
	// Mismatched snapshots yield a zero value, not a panic.
	if z := delta.Sub(NewHistogram([]int64{1}).Snapshot()); z.Count != 0 {
		t.Errorf("mismatched Sub count=%d, want 0", z.Count)
	}
}

func TestHistogramRegistry(t *testing.T) {
	reg := NewRegistry(0)
	h1 := reg.Histogram("x.lat", DurationBuckets())
	h2 := reg.Histogram("x.lat", DurationBuckets())
	if h1 != h2 {
		t.Fatal("Histogram did not return the existing histogram for the same name")
	}
	if reg.FindHistogram("x.lat") != h1 {
		t.Fatal("FindHistogram missed a registered histogram")
	}
	if reg.FindHistogram("nope") != nil {
		t.Fatal("FindHistogram invented a histogram")
	}
}

// TestHistogramObserveAllocs enforces the hot-path contract: recording
// into a live histogram allocates nothing, and so do the nil-receiver
// no-ops the disabled service path compiles down to.
func TestHistogramObserveAllocs(t *testing.T) {
	h := NewHistogram(DurationBuckets())
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(123456)
		h.ObserveDuration(42 * time.Microsecond)
	})
	if allocs != 0 {
		t.Errorf("Observe allocates %v per record, want 0", allocs)
	}
	var nilH *Histogram
	allocs = testing.AllocsPerRun(1000, func() {
		nilH.Observe(1)
		nilH.ObserveDuration(time.Millisecond)
	})
	if allocs != 0 {
		t.Errorf("nil-histogram record allocates %v, want 0", allocs)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(DurationBuckets())
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 10000; i++ {
				h.Observe(int64(g*10000 + i + 1))
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if h.Count() != 40000 {
		t.Fatalf("concurrent count=%d, want 40000", h.Count())
	}
	if h.Max() != 40000 {
		t.Fatalf("concurrent max=%d, want 40000", h.Max())
	}
}

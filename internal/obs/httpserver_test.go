package obs

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

// TestCloseFinishesInflightScrape is the regression test for graceful
// HTTP shutdown: a /metrics scrape that is mid-body when Close is
// called must still receive the complete exposition, not a torn
// connection. The registry is made large enough that the response
// cannot fit in kernel socket buffers, so the handler is genuinely
// mid-write while the client stalls.
func TestCloseFinishesInflightScrape(t *testing.T) {
	reg := NewRegistry(time.Millisecond)
	for i := 0; i < 20000; i++ {
		reg.Inc(fmt.Sprintf("scrape.test.counter_%05d", i), int64(i))
	}
	srv, err := StartServer("127.0.0.1:0", reg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "GET /metrics HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n", srv.Addr()); err != nil {
		t.Fatal(err)
	}
	// Read only the status line, then stall: the handler is now blocked
	// writing the rest of the body.
	br := bufio.NewReader(conn)
	status, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(status, "200") {
		t.Fatalf("scrape status %q", strings.TrimSpace(status))
	}

	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()

	// Drain the rest of the response while Close is in flight; the full
	// body — including the last counter — must arrive.
	var body strings.Builder
	buf := make([]byte, 64<<10)
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	for {
		n, err := br.Read(buf)
		body.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if err := <-closed; err != nil {
		t.Fatalf("Close during in-flight scrape: %v", err)
	}
	if !strings.Contains(body.String(), "scrape_test_counter_19999") {
		t.Fatalf("scrape was truncated by Close: %d bytes, missing final counter", body.Len())
	}
}

package obs

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrHistogramLayout is returned (wrapped) by Histogram.Merge when the
// two histograms do not share a bucket layout: adding their per-bucket
// counters would silently misbin every sample. Test with errors.Is.
var ErrHistogramLayout = errors.New("obs: histogram bucket layouts differ")

// Histogram is a fixed-bucket latency/size histogram. The bucket
// layout is chosen at construction and never changes, so the record
// path is a binary search plus a handful of atomic adds — no locks, no
// allocations — and two histograms with the same layout merge by
// adding counters. Quantile estimates interpolate linearly inside the
// containing bucket (the overflow bucket uses the tracked maximum), so
// their error is bounded by the bucket width at the quantile.
//
// Histograms live in a Registry (Registry.Histogram); instrumentation
// sites resolve the pointer once at setup and call Observe on the hot
// path.
type Histogram struct {
	// bounds are the ascending inclusive upper bounds of the buckets;
	// counts has len(bounds)+1 entries, the last being the overflow
	// (+Inf) bucket.
	bounds []int64
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
	min    atomic.Int64 // stored negated so zero means "unset"
}

// NewHistogram returns a histogram over the given ascending inclusive
// upper bounds. The bounds slice is not copied; callers must not
// mutate it.
func NewHistogram(bounds []int64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// DurationBuckets is the standard latency layout: exponential
// (doubling) bounds from 10µs to ~5.6min, 26 buckets plus overflow.
// Expressed in nanoseconds, matching Observe(d.Nanoseconds()).
func DurationBuckets() []int64 {
	b := make([]int64, 26)
	v := int64(10 * time.Microsecond)
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}

// DepthBuckets is the standard queue-depth layout: 0, 1, 2, 4, ...,
// 4096 plus overflow.
func DepthBuckets() []int64 {
	b := []int64{0}
	for v := int64(1); v <= 4096; v *= 2 {
		b = append(b, v)
	}
	return b
}

// Observe records one value. Safe for concurrent use; performs no
// allocation.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v (the overflow bucket when
	// none is).
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
	for {
		m := h.min.Load()
		if m != 0 && -m <= v || h.min.CompareAndSwap(m, -v) {
			break
		}
	}
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of recorded values.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of recorded values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest recorded value (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Quantile estimates the q-th quantile (0 <= q <= 1) of the recorded
// values by linear interpolation inside the containing bucket. The
// overflow bucket interpolates toward the tracked maximum, and every
// estimate is clamped to [min, max], so a single-value histogram
// reports that value at every quantile.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			var lo int64
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.max.Load()
			if i < len(h.bounds) && h.bounds[i] < hi {
				hi = h.bounds[i]
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - float64(cum)) / float64(c)
			est := lo + int64(frac*float64(hi-lo))
			return h.clamp(est)
		}
		cum += c
	}
	return h.clamp(h.max.Load())
}

func (h *Histogram) clamp(v int64) int64 {
	if m := h.max.Load(); v > m {
		v = m
	}
	if nm := h.min.Load(); nm != 0 && v < -nm {
		v = -nm
	}
	return v
}

// Merge adds other's counters into h. The two histograms must share a
// bucket layout; a mismatch leaves h untouched and returns a typed
// error wrapping ErrHistogramLayout (merging incompatible layouts would
// silently misbin every sample). Merging a nil other is a no-op.
func (h *Histogram) Merge(other *Histogram) error {
	if h == nil || other == nil {
		return nil
	}
	if len(h.bounds) != len(other.bounds) {
		return fmt.Errorf("%w: %d buckets vs %d", ErrHistogramLayout, len(h.bounds), len(other.bounds))
	}
	for i := range h.bounds {
		if h.bounds[i] != other.bounds[i] {
			return fmt.Errorf("%w: bound %d is %d vs %d", ErrHistogramLayout, i, h.bounds[i], other.bounds[i])
		}
	}
	for i := range h.counts {
		h.counts[i].Add(other.counts[i].Load())
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	for {
		m := h.max.Load()
		o := other.max.Load()
		if o <= m || h.max.CompareAndSwap(m, o) {
			break
		}
	}
	for {
		m := h.min.Load()
		o := other.min.Load()
		if o == 0 || (m != 0 && -m <= -o) || h.min.CompareAndSwap(m, o) {
			break
		}
	}
	return nil
}

// HistogramSnapshot is an immutable copy of a histogram's state.
type HistogramSnapshot struct {
	// Bounds are the inclusive upper bounds; Counts[i] is the
	// per-bucket (non-cumulative) count, with Counts[len(Bounds)] the
	// overflow bucket.
	Bounds []int64
	Counts []int64
	Count  int64
	Sum    int64
	Max    int64
}

// Snapshot returns a copy of the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: append([]int64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
		Max:    h.max.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Sub returns the per-bucket difference s - prev, for turning two
// cumulative snapshots of one live histogram into the distribution of
// just the samples recorded between them (per-interval quantiles,
// autoscaler reaction windows). The snapshots must come from the same
// histogram (same layout); Sub returns a zero snapshot otherwise.
// Negative differences clamp to zero.
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	if len(s.Bounds) != len(prev.Bounds) || len(s.Counts) != len(prev.Counts) {
		return HistogramSnapshot{}
	}
	d := HistogramSnapshot{
		Bounds: s.Bounds,
		Counts: make([]int64, len(s.Counts)),
		Count:  max(0, s.Count-prev.Count),
		Sum:    max(0, s.Sum-prev.Sum),
		Max:    s.Max,
	}
	for i := range s.Counts {
		d.Counts[i] = max(0, s.Counts[i]-prev.Counts[i])
	}
	return d
}

// Quantile estimates the q-th quantile of a snapshot by the same
// linear interpolation the live histogram uses (the overflow bucket
// interpolates toward Max). It works on Sub deltas too, where the live
// histogram's own Quantile would mix in every older sample.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			var lo int64
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Max
			if i < len(s.Bounds) && s.Bounds[i] < hi {
				hi = s.Bounds[i]
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - float64(cum)) / float64(c)
			v := lo + int64(frac*float64(hi-lo))
			if v > s.Max && s.Max > 0 {
				v = s.Max
			}
			return v
		}
		cum += c
	}
	return s.Max
}

// Histogram returns the named histogram, creating it with the given
// bucket layout on first use. Asking for an existing histogram with a
// different layout returns the existing one (the first layout wins);
// instrumentation sites resolve the pointer once and record lock-free
// thereafter.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.histograms == nil {
		r.histograms = map[string]*Histogram{}
	}
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// FindHistogram returns the named histogram, or nil when it was never
// created.
func (r *Registry) FindHistogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.histograms[name]
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// The profiler: BuildProfile folds a finished span tree into a
// per-query-tree-node EXPLAIN ANALYZE report, and Saturation folds the
// registry's busy-time timelines into a per-resource utilization
// report naming the first resource to saturate.
//
// Attribution is a sweep over the union of instruction-span (active)
// and exec-span (busy) intervals. Each segment of the makespan is
// split equally among the nodes active in it; a node's share counts as
// Busy when one of its processors was computing in that segment and as
// Wait otherwise, and segments with no active node accrue to Idle.
// By construction,
//
//	sum over nodes (Busy + Wait) + Idle == makespan
//
// exactly — the report is an accounting identity, not an estimate.
// A node's Exclusive time (its critical-path contribution) is the
// portion of the makespan during which it was the *only* node
// computing: shortening that work must shorten the run.

// NodeReport is one EXPLAIN ANALYZE row: one query-tree node.
type NodeReport struct {
	Query int    // query id
	Instr int    // instruction (node) id within the query
	Name  string // operator label ("restrict r5", "join r5xr11")

	Firings   int64 // instruction packets dispatched
	PagesIn   int64 // operand pages consumed
	PagesOut  int64 // result pages produced
	TuplesOut int64 // result tuples produced
	CacheHits int64 // operand fetches served by memory or cache
	CacheMiss int64 // operand fetches that went to disk

	Busy      time.Duration // share of makespan with this node computing
	Wait      time.Duration // share of makespan active but not computing
	Exclusive time.Duration // makespan during which only this node computed
}

// CacheHitRatio returns hits/(hits+misses), or -1 when the node made
// no operand fetches.
func (n *NodeReport) CacheHitRatio() float64 {
	total := n.CacheHits + n.CacheMiss
	if total == 0 {
		return -1
	}
	return float64(n.CacheHits) / float64(total)
}

// QueryReport summarizes one query span.
type QueryReport struct {
	Query      int
	Start, End time.Duration
}

// Profile is the EXPLAIN ANALYZE report for one run.
type Profile struct {
	Makespan time.Duration
	// Idle is the portion of the makespan with no query-tree node
	// active (admission latency, host consumption, drain).
	Idle    time.Duration
	Queries []QueryReport
	Nodes   []NodeReport
}

// Attributed returns the total time attributed to nodes; Attributed()
// + Idle == Makespan.
func (p *Profile) Attributed() time.Duration {
	var sum time.Duration
	for i := range p.Nodes {
		sum += p.Nodes[i].Busy + p.Nodes[i].Wait
	}
	return sum
}

// nodeKey identifies a query-tree node across spans.
type nodeKey struct{ query, instr int }

// BuildProfile folds a span snapshot (Tracker.Snapshot or ReadSpans)
// into the per-node report. Spans with a zero End (never closed) are
// clamped to the makespan.
func BuildProfile(spans []SpanData, makespan time.Duration) *Profile {
	p := &Profile{Makespan: makespan}
	rows := map[nodeKey]*NodeReport{}
	var order []nodeKey

	clamp := func(s SpanData) (time.Duration, time.Duration) {
		start, end := s.Start, s.End
		if end <= 0 || end > makespan {
			end = makespan
		}
		if start < 0 {
			start = 0
		}
		if start > end {
			start = end
		}
		return start, end
	}

	// Boundary sweep input: per-node active (instr span) and busy
	// (exec span) interval edges.
	type edge struct {
		t    time.Duration
		key  nodeKey
		busy bool // busy edge vs. active edge
		d    int  // +1 open, -1 close
	}
	var edges []edge

	for _, s := range spans {
		switch s.Kind {
		case SpanQuery:
			start, end := clamp(s)
			p.Queries = append(p.Queries, QueryReport{Query: s.Query, Start: start, End: end})
		case SpanInstr:
			k := nodeKey{s.Query, s.Instr}
			row, ok := rows[k]
			if !ok {
				row = &NodeReport{Query: s.Query, Instr: s.Instr, Name: s.Name}
				rows[k] = row
				order = append(order, k)
			}
			if row.Name == "" {
				row.Name = s.Name
			}
			row.Firings += s.Firings
			row.PagesIn += s.PagesIn
			row.PagesOut += s.PagesOut
			row.TuplesOut += s.TuplesOut
			row.CacheHits += s.CacheHits
			row.CacheMiss += s.CacheMiss
			start, end := clamp(s)
			if end > start {
				edges = append(edges,
					edge{start, k, false, +1}, edge{end, k, false, -1})
			}
		case SpanExec:
			if s.Instr < 0 {
				continue
			}
			k := nodeKey{s.Query, s.Instr}
			if _, ok := rows[k]; !ok {
				// Exec span for a node with no instr span (possible in
				// partial streams): synthesize the row so its compute
				// time is still attributed.
				rows[k] = &NodeReport{Query: s.Query, Instr: s.Instr, Name: s.Name}
				order = append(order, k)
			}
			start, end := clamp(s)
			if end > start {
				edges = append(edges,
					edge{start, k, true, +1}, edge{end, k, true, -1},
					// A busy node is by definition active too, even if
					// its instr span is missing or misaligned.
					edge{start, k, false, +1}, edge{end, k, false, -1})
			}
		}
	}

	sort.Slice(edges, func(i, j int) bool { return edges[i].t < edges[j].t })
	sort.Slice(p.Queries, func(i, j int) bool {
		if p.Queries[i].Start != p.Queries[j].Start {
			return p.Queries[i].Start < p.Queries[j].Start
		}
		return p.Queries[i].Query < p.Queries[j].Query
	})

	active := map[nodeKey]int{}
	busy := map[nodeKey]int{}
	nActive := 0 // nodes with active>0
	nBusy := 0   // nodes with busy>0

	settle := func(t1, t2 time.Duration) {
		dt := t2 - t1
		if dt <= 0 {
			return
		}
		if nActive == 0 {
			p.Idle += dt
			return
		}
		share := dt / time.Duration(nActive)
		rem := dt - share*time.Duration(nActive)
		first := true
		for _, k := range order {
			if active[k] <= 0 {
				continue
			}
			s := share
			if first {
				// Integer-division remainder lands on the first active
				// node so the accounting identity holds to the
				// nanosecond (and deterministically).
				s += rem
				first = false
			}
			row := rows[k]
			if busy[k] > 0 {
				row.Busy += s
				if nBusy == 1 {
					row.Exclusive += dt
				}
			} else {
				row.Wait += s
			}
		}
	}

	cur := time.Duration(0)
	i := 0
	for i < len(edges) {
		t := edges[i].t
		if t > makespan {
			break
		}
		settle(cur, t)
		cur = t
		for i < len(edges) && edges[i].t == t {
			e := edges[i]
			m := active
			if e.busy {
				m = busy
			}
			before := m[e.key]
			m[e.key] = before + e.d
			if e.busy {
				if before == 0 && e.d > 0 {
					nBusy++
				} else if before == 1 && e.d < 0 {
					nBusy--
				}
			} else {
				if before == 0 && e.d > 0 {
					nActive++
				} else if before == 1 && e.d < 0 {
					nActive--
				}
			}
			i++
		}
	}
	settle(cur, makespan)

	for _, k := range order {
		p.Nodes = append(p.Nodes, *rows[k])
	}
	sort.Slice(p.Nodes, func(i, j int) bool {
		if p.Nodes[i].Query != p.Nodes[j].Query {
			return p.Nodes[i].Query < p.Nodes[j].Query
		}
		return p.Nodes[i].Instr < p.Nodes[j].Instr
	})
	return p
}

// Text renders the report as an aligned table.
func (p *Profile) Text(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "EXPLAIN ANALYZE  makespan %v, %d queries, %d nodes\n",
		p.Makespan, len(p.Queries), len(p.Nodes)); err != nil {
		return err
	}
	for _, q := range p.Queries {
		if _, err := fmt.Fprintf(w, "query %d: [%v .. %v]  elapsed %v\n",
			q.Query, q.Start, q.End, q.End-q.Start); err != nil {
			return err
		}
	}
	const hdr = "%-5s %-6s %-18s %8s %8s %9s %8s %12s %12s %9s %9s\n"
	const row = "%-5d %-6d %-18s %8d %8d %9d %8d %12v %12v %9s %8.1f%%\n"
	if _, err := fmt.Fprintf(w, hdr, "query", "node", "op",
		"firings", "pages-in", "pages-out", "tuples", "busy", "wait", "cache-hit", "critpath"); err != nil {
		return err
	}
	for i := range p.Nodes {
		n := &p.Nodes[i]
		hit := "-"
		if r := n.CacheHitRatio(); r >= 0 {
			hit = fmt.Sprintf("%.1f%%", 100*r)
		}
		crit := 0.0
		if p.Makespan > 0 {
			crit = 100 * float64(n.Exclusive) / float64(p.Makespan)
		}
		if _, err := fmt.Fprintf(w, row, n.Query, n.Instr, n.Name,
			n.Firings, n.PagesIn, n.PagesOut, n.TuplesOut,
			n.Busy.Round(time.Microsecond), n.Wait.Round(time.Microsecond),
			hit, crit); err != nil {
			return err
		}
	}
	var busy, wait time.Duration
	for i := range p.Nodes {
		busy += p.Nodes[i].Busy
		wait += p.Nodes[i].Wait
	}
	_, err := fmt.Fprintf(w, "attributed: busy %v + wait %v + idle %v = %v\n",
		busy.Round(time.Microsecond), wait.Round(time.Microsecond),
		p.Idle.Round(time.Microsecond), p.Makespan)
	return err
}

// jsonProfile mirrors Profile with microsecond fields for export.
type jsonProfile struct {
	MakespanUS int64           `json:"makespan_us"`
	IdleUS     int64           `json:"idle_us"`
	Queries    []jsonQueryRow  `json:"queries"`
	Nodes      []jsonNodeRow   `json:"nodes"`
	Saturation *jsonSaturation `json:"saturation,omitempty"`
}

type jsonQueryRow struct {
	Query   int   `json:"query"`
	StartUS int64 `json:"start_us"`
	EndUS   int64 `json:"end_us"`
}

type jsonNodeRow struct {
	Query       int     `json:"query"`
	Instr       int     `json:"instr"`
	Name        string  `json:"op"`
	Firings     int64   `json:"firings"`
	PagesIn     int64   `json:"pages_in"`
	PagesOut    int64   `json:"pages_out"`
	TuplesOut   int64   `json:"tuples_out"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMiss   int64   `json:"cache_misses"`
	BusyUS      int64   `json:"busy_us"`
	WaitUS      int64   `json:"wait_us"`
	ExclusiveUS int64   `json:"exclusive_us"`
	CritPath    float64 `json:"critical_path_fraction"`
}

func (p *Profile) jsonValue(sat *SaturationReport) jsonProfile {
	jp := jsonProfile{
		MakespanUS: p.Makespan.Microseconds(),
		IdleUS:     p.Idle.Microseconds(),
		Queries:    []jsonQueryRow{},
		Nodes:      []jsonNodeRow{},
	}
	for _, q := range p.Queries {
		jp.Queries = append(jp.Queries, jsonQueryRow{q.Query, q.Start.Microseconds(), q.End.Microseconds()})
	}
	for i := range p.Nodes {
		n := &p.Nodes[i]
		crit := 0.0
		if p.Makespan > 0 {
			crit = float64(n.Exclusive) / float64(p.Makespan)
		}
		jp.Nodes = append(jp.Nodes, jsonNodeRow{
			Query: n.Query, Instr: n.Instr, Name: n.Name,
			Firings: n.Firings, PagesIn: n.PagesIn, PagesOut: n.PagesOut,
			TuplesOut: n.TuplesOut, CacheHits: n.CacheHits, CacheMiss: n.CacheMiss,
			BusyUS: n.Busy.Microseconds(), WaitUS: n.Wait.Microseconds(),
			ExclusiveUS: n.Exclusive.Microseconds(), CritPath: crit,
		})
	}
	if sat != nil {
		js := sat.jsonValue()
		jp.Saturation = &js
	}
	return jp
}

// JSON writes the report (optionally with an attached saturation
// report) as indented JSON.
func (p *Profile) JSON(w io.Writer, sat *SaturationReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p.jsonValue(sat))
}

// ---- Resource saturation ----

// SaturationThreshold is the per-bucket utilization above which a
// resource counts as saturated.
const SaturationThreshold = 0.9

// ResourceSpec names one hardware resource for the saturation report:
// a busy-time timeline (microseconds of busy time per bucket) and the
// number of parallel servers it aggregates.
type ResourceSpec struct {
	Name     string // display name ("outer ring", "disk cache ports")
	Timeline string // registry timeline accumulating busy µs
	Servers  int    // parallel capacity (≥1)
}

// ResourceUsage is one saturation-report row.
type ResourceUsage struct {
	Name     string
	Servers  int
	MeanUtil float64       // busy time / (elapsed × servers)
	PeakUtil float64       // highest single-bucket utilization
	PeakAt   time.Duration // start of the peak bucket
	// SatAt is the start of the first bucket whose utilization crossed
	// SaturationThreshold, or -1 if the resource never saturated.
	SatAt time.Duration
	// SatDur is the total width of saturated buckets — how long the
	// resource ran at its ceiling.
	SatDur time.Duration
}

// SaturationReport ranks resources by who held the run back.
type SaturationReport struct {
	Elapsed   time.Duration
	Threshold float64
	// Resources is sorted: the resource saturated for the longest leads
	// (a one-bucket startup transient does not outrank a resource
	// pegged for the whole run), ties by earlier SatAt, then by higher
	// peak and mean utilization.
	Resources []ResourceUsage
}

// Saturation builds the report from the registry's busy timelines.
// Resources whose timeline is absent are reported with zero
// utilization (the workload never touched them).
func Saturation(reg *Registry, elapsed time.Duration, specs []ResourceSpec) *SaturationReport {
	rep := &SaturationReport{Elapsed: elapsed, Threshold: SaturationThreshold}
	for _, spec := range specs {
		u := ResourceUsage{Name: spec.Name, Servers: spec.Servers, SatAt: -1}
		if u.Servers < 1 {
			u.Servers = 1
		}
		var tl *Timeline
		if reg != nil {
			tl = reg.Timeline(spec.Timeline)
		}
		if tl != nil && elapsed > 0 {
			var totalBusyUS float64
			for i, busyUS := range tl.Vals {
				totalBusyUS += busyUS
				bstart := time.Duration(i) * tl.Bucket
				width := tl.Bucket
				if bstart+width > elapsed {
					// Final partial bucket: normalize by the time the
					// run actually spent in it.
					width = elapsed - bstart
					if width <= 0 {
						continue
					}
				}
				util := busyUS / (float64(width.Microseconds()) * float64(u.Servers))
				if util > u.PeakUtil {
					u.PeakUtil = util
					u.PeakAt = bstart
				}
				if util >= rep.Threshold {
					if u.SatAt < 0 {
						u.SatAt = bstart
					}
					u.SatDur += width
				}
			}
			u.MeanUtil = totalBusyUS / (float64(elapsed.Microseconds()) * float64(u.Servers))
		}
		rep.Resources = append(rep.Resources, u)
	}
	sort.SliceStable(rep.Resources, func(i, j int) bool {
		a, b := rep.Resources[i], rep.Resources[j]
		if a.SatDur != b.SatDur {
			return a.SatDur > b.SatDur
		}
		asat, bsat := a.SatAt >= 0, b.SatAt >= 0
		if asat != bsat {
			return asat
		}
		if asat && a.SatAt != b.SatAt {
			return a.SatAt < b.SatAt
		}
		if a.PeakUtil != b.PeakUtil {
			return a.PeakUtil > b.PeakUtil
		}
		return a.MeanUtil > b.MeanUtil
	})
	return rep
}

// First returns the name of the bottleneck: the first resource to
// saturate, or — when none saturated — the one with the highest peak
// utilization.
func (r *SaturationReport) First() string {
	if len(r.Resources) == 0 {
		return ""
	}
	return r.Resources[0].Name
}

// Text renders the saturation report as an aligned table.
func (r *SaturationReport) Text(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "resource saturation  elapsed %v, threshold %.0f%%\n",
		r.Elapsed, 100*r.Threshold); err != nil {
		return err
	}
	const hdr = "%-18s %7s %9s %9s %12s %12s %12s\n"
	if _, err := fmt.Fprintf(w, hdr, "resource", "servers", "mean", "peak", "peak-at", "saturated-at", "sat-time"); err != nil {
		return err
	}
	for _, u := range r.Resources {
		sat, dur := "-", "-"
		if u.SatAt >= 0 {
			sat = u.SatAt.String()
			dur = u.SatDur.String()
		}
		if _, err := fmt.Fprintf(w, "%-18s %7d %8.1f%% %8.1f%% %12v %12s %12s\n",
			u.Name, u.Servers, 100*u.MeanUtil, 100*u.PeakUtil, u.PeakAt, sat, dur); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "bottleneck: %s\n", r.First())
	return err
}

type jsonSaturation struct {
	ElapsedUS  int64          `json:"elapsed_us"`
	Threshold  float64        `json:"threshold"`
	Bottleneck string         `json:"bottleneck"`
	Resources  []jsonResource `json:"resources"`
}

type jsonResource struct {
	Name     string  `json:"name"`
	Servers  int     `json:"servers"`
	MeanUtil float64 `json:"mean_util"`
	PeakUtil float64 `json:"peak_util"`
	PeakAtUS int64   `json:"peak_at_us"`
	SatAtUS  int64   `json:"saturated_at_us"` // -1: never saturated
	SatDurUS int64   `json:"saturated_us"`
}

func (r *SaturationReport) jsonValue() jsonSaturation {
	js := jsonSaturation{
		ElapsedUS: r.Elapsed.Microseconds(), Threshold: r.Threshold,
		Bottleneck: r.First(), Resources: []jsonResource{},
	}
	for _, u := range r.Resources {
		sat := int64(-1)
		if u.SatAt >= 0 {
			sat = u.SatAt.Microseconds()
		}
		js.Resources = append(js.Resources, jsonResource{
			Name: u.Name, Servers: u.Servers,
			MeanUtil: u.MeanUtil, PeakUtil: u.PeakUtil,
			PeakAtUS: u.PeakAt.Microseconds(), SatAtUS: sat,
			SatDurUS: u.SatDur.Microseconds(),
		})
	}
	return js
}

// JSON writes the saturation report alone as indented JSON.
func (r *SaturationReport) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.jsonValue())
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Causal spans: where the event stream answers "what happened", spans
// answer "where did the time go". Every unit of attributable work — a
// query, an instruction (query-tree node), an instruction packet, a
// processor's compute burst, a broadcast round, a cache or disk
// transfer, a recovery episode — becomes a Span with a parent link,
// forming the tree
//
//	query → instruction → packet → exec
//	                    → broadcast / transfer / recovery
//
// Spans are tracked live by a Tracker (the /spans endpoint serves the
// active tree while a simulation runs) and, when the observer also has
// a sink, mirrored into the event stream as span-begin / span-end
// events, so a JSONL trace is sufficient to reconstruct the whole tree
// offline (see ReadSpans). BuildProfile turns a finished tree into the
// EXPLAIN-ANALYZE report.
//
// Like the rest of the layer, spans cost nothing when disabled: callers
// guard with Observer.SpansOn, a single nil check.

// SpanKind classifies a span.
type SpanKind uint8

// The span kinds emitted by the execution layers.
const (
	// SpanQuery covers a query from admission to completion.
	SpanQuery SpanKind = iota + 1
	// SpanInstr covers one instruction (query-tree node) from
	// installation on a controller to its completion.
	SpanInstr
	// SpanPacket covers one instruction packet from dispatch until its
	// work unit is retired.
	SpanPacket
	// SpanExec covers one processor compute burst (the busy intervals
	// the profiler attributes makespan to).
	SpanExec
	// SpanBroadcast covers one broadcast round (send to delivery).
	SpanBroadcast
	// SpanXfer covers one storage-hierarchy transfer (cache or disk).
	SpanXfer
	// SpanRecovery covers one recovery episode: from the re-dispatch
	// decision until the re-dispatched work unit completes.
	SpanRecovery
	// SpanSession covers one network session of the query server, from
	// accepted connection to close; its children are the session's
	// query spans.
	SpanSession
	// SpanStage covers one lifecycle stage of a served query
	// (admit-wait, schedule, execute, stream); its parent is the query
	// span, and the execute stage parents the engine's spans.
	SpanStage
)

// String returns the kind's wire name.
func (k SpanKind) String() string {
	switch k {
	case SpanQuery:
		return "query"
	case SpanInstr:
		return "instr"
	case SpanPacket:
		return "packet"
	case SpanExec:
		return "exec"
	case SpanBroadcast:
		return "broadcast"
	case SpanXfer:
		return "xfer"
	case SpanRecovery:
		return "recovery"
	case SpanSession:
		return "session"
	case SpanStage:
		return "stage"
	default:
		return "span"
	}
}

// spanKindFromString inverts SpanKind.String (used by ReadSpans).
func spanKindFromString(s string) SpanKind {
	for k := SpanQuery; k <= SpanStage; k++ {
		if k.String() == s {
			return k
		}
	}
	return 0
}

// Span is one unit of attributable work. The identity and timing
// fields are written once by the Tracker; the counter fields are
// accumulated by the instrumentation sites (atomically, so the
// concurrent engine's workers may share a span) and read by the
// profiler after End.
type Span struct {
	// ID is the span's tracker-unique id (1-based; ids are assigned in
	// Begin order, so a deterministic simulation yields deterministic
	// ids). Parent is the enclosing span's id, or 0 at the root.
	ID     int
	Parent int
	Kind   SpanKind
	// Name labels the span in reports ("join r5xr11", "exec page 3").
	Name string
	// Comp is the component that did the work ("MC", "IC2", "IP3",
	// "disk", "cache", "node4").
	Comp string
	// Query, Instr, and Page carry the same context as Event; -1 when
	// not applicable.
	Query int
	Instr int
	Page  int
	// Start and End bound the span (virtual time in the simulators,
	// elapsed real time in the concurrent engine). End is zero until
	// the span ends.
	Start time.Duration
	End   time.Duration

	// Counters accumulated while the span is open. For SpanInstr these
	// feed the per-node EXPLAIN ANALYZE columns.
	Firings   atomic.Int64 // instruction packets dispatched
	PagesIn   atomic.Int64 // operand pages consumed
	PagesOut  atomic.Int64 // result pages produced
	TuplesOut atomic.Int64 // result tuples produced
	Bytes     atomic.Int64 // payload bytes moved
	CacheHits atomic.Int64 // operand fetches served by memory or cache
	CacheMiss atomic.Int64 // operand fetches that went to disk

	ended bool
}

// SpanData is an immutable snapshot of a span (counters flattened).
type SpanData struct {
	ID, Parent         int
	Kind               SpanKind
	Name, Comp         string
	Query, Instr, Page int
	Start, End         time.Duration
	Firings            int64
	PagesIn, PagesOut  int64
	TuplesOut, Bytes   int64
	CacheHits          int64
	CacheMiss          int64
}

// Duration returns End-Start.
func (d SpanData) Duration() time.Duration { return d.End - d.Start }

func (s *Span) data() SpanData {
	return SpanData{
		ID: s.ID, Parent: s.Parent, Kind: s.Kind, Name: s.Name, Comp: s.Comp,
		Query: s.Query, Instr: s.Instr, Page: s.Page, Start: s.Start, End: s.End,
		Firings: s.Firings.Load(), PagesIn: s.PagesIn.Load(), PagesOut: s.PagesOut.Load(),
		TuplesOut: s.TuplesOut.Load(), Bytes: s.Bytes.Load(),
		CacheHits: s.CacheHits.Load(), CacheMiss: s.CacheMiss.Load(),
	}
}

// Tracker records spans: the live active set (served by the /spans
// endpoint) plus every finished span (the profiler's input). All
// methods are safe for concurrent use, and all tolerate a nil receiver
// or nil span arguments, so instrumentation sites need no guards
// beyond Observer.SpansOn.
type Tracker struct {
	mu     sync.Mutex
	nextID int
	spans  []*Span
	active map[int]*Span
	// obs mirrors span begin/end into the observer's event sink (nil
	// when the tracker is used standalone).
	obs *Observer
}

// NewTracker returns an empty span tracker.
func NewTracker() *Tracker { return &Tracker{active: map[int]*Span{}} }

// Begin opens a span at ts under parent (nil for a root span).
func (t *Tracker) Begin(kind SpanKind, parent *Span, ts time.Duration, comp, name string, query, instr, page int) *Span {
	if t == nil {
		return nil
	}
	s := &Span{Kind: kind, Name: name, Comp: comp, Query: query, Instr: instr, Page: page, Start: ts}
	t.mu.Lock()
	t.nextID++
	s.ID = t.nextID
	if parent != nil {
		s.Parent = parent.ID
	}
	t.spans = append(t.spans, s)
	t.active[s.ID] = s
	o := t.obs
	t.mu.Unlock()
	if o.Enabled() {
		o.Emit(Event{
			TS: ts, Kind: EvSpanBegin, Comp: comp, Query: query, Instr: instr, Page: page,
			Span: s.ID, Parent: s.Parent, SK: kind,
			Msg: fmt.Sprintf("span %d begin %s %s", s.ID, kind, name),
		})
	}
	return s
}

// End closes the span at ts. Ending a nil or already-ended span is a
// no-op, so recovery paths may End defensively.
func (t *Tracker) End(s *Span, ts time.Duration) {
	if t == nil || s == nil {
		return
	}
	t.mu.Lock()
	if s.ended {
		t.mu.Unlock()
		return
	}
	s.ended = true
	s.End = ts
	delete(t.active, s.ID)
	o := t.obs
	t.mu.Unlock()
	if o.Enabled() {
		o.Emit(Event{
			TS: ts, Kind: EvSpanEnd, Comp: s.Comp, Query: s.Query, Instr: s.Instr, Page: s.Page,
			Bytes: int(s.Bytes.Load()), Span: s.ID, Parent: s.Parent, SK: s.Kind,
			Dur: ts - s.Start,
			Msg: fmt.Sprintf("span %d end %s %s (%v)", s.ID, s.Kind, s.Name, ts-s.Start),
		})
	}
}

// Record opens and closes a span in one call — for work whose extent
// is known when it is scheduled (a compute burst, a transfer).
func (t *Tracker) Record(kind SpanKind, parent *Span, start, end time.Duration, comp, name string, query, instr, page int) *Span {
	s := t.Begin(kind, parent, start, comp, name, query, instr, page)
	t.End(s, end)
	return s
}

// CloseAt ends every still-active span at ts (a crashed processor's
// packet span, for instance, has no natural end; the run's close sweeps
// it up so the profile accounts for all time).
func (t *Tracker) CloseAt(ts time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	open := make([]*Span, 0, len(t.active))
	for _, s := range t.active {
		open = append(open, s)
	}
	t.mu.Unlock()
	sort.Slice(open, func(i, j int) bool { return open[i].ID < open[j].ID })
	for _, s := range open {
		t.End(s, ts)
	}
}

// Snapshot returns an immutable copy of every span begun so far, in
// Begin order.
func (t *Tracker) Snapshot() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanData, len(t.spans))
	for i, s := range t.spans {
		out[i] = s.data()
	}
	return out
}

// ActiveCount returns the number of open spans.
func (t *Tracker) ActiveCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.active)
}

// spanNode is the /spans JSON schema: the active span tree.
type spanNode struct {
	ID       int         `json:"id"`
	Kind     string      `json:"kind"`
	Name     string      `json:"name"`
	Comp     string      `json:"comp,omitempty"`
	Query    int         `json:"query"`
	Instr    int         `json:"instr"`
	Page     int         `json:"page"`
	StartUS  int64       `json:"start_us"`
	Children []*spanNode `json:"children,omitempty"`
}

// WriteActiveTree writes the currently-open spans as a JSON forest
// (children nested under their nearest open ancestor; spans whose
// parent already ended surface as roots).
func (t *Tracker) WriteActiveTree(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"active":[]}`+"\n")
		return err
	}
	t.mu.Lock()
	nodes := map[int]*spanNode{}
	ids := make([]int, 0, len(t.active))
	for id := range t.active {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		s := t.active[id]
		nodes[id] = &spanNode{
			ID: s.ID, Kind: s.Kind.String(), Name: s.Name, Comp: s.Comp,
			Query: s.Query, Instr: s.Instr, Page: s.Page,
			StartUS: s.Start.Microseconds(),
		}
	}
	parentOf := map[int]int{}
	for _, id := range ids {
		parentOf[id] = t.active[id].Parent
	}
	t.mu.Unlock()

	var roots []*spanNode
	for _, id := range ids {
		n := nodes[id]
		if p, ok := nodes[parentOf[id]]; ok {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	if roots == nil {
		roots = []*spanNode{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		Active []*spanNode `json:"active"`
	}{roots})
}

// ReadSpans reconstructs the span tree from a JSONL event stream (the
// output of a JSONL sink attached to an observer with spans enabled).
// Non-span events are skipped; a begin without a matching end yields a
// span with a zero End.
func ReadSpans(r io.Reader) ([]SpanData, error) {
	dec := json.NewDecoder(r)
	byID := map[int]int{} // span id → index in out
	var out []SpanData
	for {
		var je jsonEvent
		if err := dec.Decode(&je); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("obs: reading span stream: %w", err)
		}
		switch je.Kind {
		case EvSpanBegin.String():
			sd := SpanData{
				ID: je.Span, Parent: je.Parent, Kind: spanKindFromString(je.SpanKind),
				Name: spanNameFromMsg(je.Msg), Comp: je.Comp,
				Query: je.Query, Instr: je.Instr, Page: je.Page,
				Start: time.Duration(je.TSNS),
			}
			byID[sd.ID] = len(out)
			out = append(out, sd)
		case EvSpanEnd.String():
			if i, ok := byID[je.Span]; ok {
				out[i].End = time.Duration(je.TSNS)
				out[i].Bytes = int64(je.Bytes)
			}
		}
	}
	return out, nil
}

// spanNameFromMsg recovers the span name from the begin message
// ("span <id> begin <kind> <name>").
func spanNameFromMsg(msg string) string {
	fields := 0
	for i := 0; i < len(msg); i++ {
		if msg[i] == ' ' {
			fields++
			if fields == 4 {
				return msg[i+1:]
			}
		}
	}
	return ""
}

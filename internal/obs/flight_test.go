package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestFlightRecorderLifecycle(t *testing.T) {
	f := NewFlightRecorder(4)
	start := time.Now()
	f.Start(QueryRecord{TraceID: 1, Session: 3, QueryID: 7, Lane: "normal", Text: "join a b on x", Start: start})

	got := f.InFlight()
	if len(got) != 1 {
		t.Fatalf("in flight = %d records, want 1", len(got))
	}
	if got[0].Stage != StageAdmitWait {
		t.Errorf("fresh record stage = %q, want %q", got[0].Stage, StageAdmitWait)
	}
	if got[0].TextHash != HashText("join a b on x") {
		t.Errorf("text hash not set on Start")
	}

	f.SetStage(1, StageExecute)
	if got := f.InFlight(); got[0].Stage != StageExecute {
		t.Errorf("stage after SetStage = %q, want %q", got[0].Stage, StageExecute)
	}

	f.Finish(1, OutcomeOK, func(r *QueryRecord) {
		r.Exec = time.Millisecond
		r.Tuples = 42
	})
	if len(f.InFlight()) != 0 {
		t.Fatal("record still in flight after Finish")
	}
	rec := f.Recent()
	if len(rec) != 1 || rec[0].Outcome != OutcomeOK || rec[0].Tuples != 42 {
		t.Fatalf("recent = %+v, want one ok record with 42 tuples", rec)
	}
	if rec[0].Total == 0 {
		t.Error("Finish did not derive a total duration")
	}
}

func TestFlightRecorderRingRetention(t *testing.T) {
	const capacity = 8
	f := NewFlightRecorder(capacity)
	for i := 1; i <= 20; i++ {
		f.Start(QueryRecord{TraceID: uint64(i), Text: fmt.Sprintf("q%d", i), Start: time.Now()})
		f.Finish(uint64(i), OutcomeOK, nil)
	}
	rec := f.Recent()
	if len(rec) != capacity {
		t.Fatalf("ring holds %d records, want the capacity %d", len(rec), capacity)
	}
	// Newest first: 20, 19, ... 13.
	for i, r := range rec {
		if want := uint64(20 - i); r.TraceID != want {
			t.Fatalf("recent[%d].TraceID = %d, want %d (newest first)", i, r.TraceID, want)
		}
	}
	if f.TotalCompleted() != 20 {
		t.Errorf("total completed = %d, want 20", f.TotalCompleted())
	}
}

// TestFlightRecorderWraparoundConcurrent hammers the completed ring
// with concurrent writers well past its capacity while readers scrape
// it, then checks the invariants the live /queries/recent endpoint
// depends on: the ring never exceeds capacity, the all-time counter is
// exact, every retained record is one of the newest `capacity`
// completions per writer's ordering, and Recent stays newest-first
// consistent (no torn or zero records surfaced mid-overwrite).
func TestFlightRecorderWraparoundConcurrent(t *testing.T) {
	const (
		capacity = 8
		writers  = 4
		perW     = 250
	)
	f := NewFlightRecorder(capacity)
	done := make(chan struct{})
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < perW; i++ {
				id := uint64(w*perW + i + 1)
				f.Start(QueryRecord{TraceID: id, Text: "wrap", Start: time.Now()})
				f.SetStage(id, StageExecute)
				f.Finish(id, OutcomeOK, func(r *QueryRecord) { r.Tuples = int64(id) })
			}
		}(w)
	}
	// Concurrent readers: every observed snapshot must already satisfy
	// the ring invariants, not just the final state.
	stop := make(chan struct{})
	readerDone := make(chan error, 1)
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			rec := f.Recent()
			if len(rec) > capacity {
				readerDone <- fmt.Errorf("mid-run ring holds %d > capacity %d", len(rec), capacity)
				return
			}
			for _, r := range rec {
				if r.TraceID == 0 || r.Outcome != OutcomeOK {
					readerDone <- fmt.Errorf("torn record surfaced: %+v", r)
					return
				}
			}
		}
	}()
	for w := 0; w < writers; w++ {
		<-done
	}
	close(stop)
	if err, ok := <-readerDone; ok && err != nil {
		t.Fatal(err)
	}

	if got := f.TotalCompleted(); got != writers*perW {
		t.Fatalf("total completed = %d, want %d", got, writers*perW)
	}
	rec := f.Recent()
	if len(rec) != capacity {
		t.Fatalf("ring holds %d records, want capacity %d", len(rec), capacity)
	}
	seen := map[uint64]bool{}
	for _, r := range rec {
		if seen[r.TraceID] {
			t.Fatalf("trace %d retained twice", r.TraceID)
		}
		seen[r.TraceID] = true
		if r.Tuples != int64(r.TraceID) {
			t.Fatalf("record %d carries tuples %d — Finish mutation torn", r.TraceID, r.Tuples)
		}
		// Each writer finishes its IDs in ascending order, so any
		// retained ID must be within the last `capacity` completions of
		// its writer: id > perW - capacity within the writer's range.
		if (r.TraceID-1)%perW < perW-capacity {
			t.Fatalf("stale record %d survived wraparound", r.TraceID)
		}
	}
	if len(f.InFlight()) != 0 {
		t.Fatal("records left in flight")
	}
}

func TestFlightRecorderTextTruncation(t *testing.T) {
	f := NewFlightRecorder(2)
	long := strings.Repeat("x", 5000)
	f.Start(QueryRecord{TraceID: 1, Text: long})
	got := f.InFlight()[0]
	if len(got.Text) > maxRecordedText+3 {
		t.Errorf("recorded text is %d bytes, want ≤ %d", len(got.Text), maxRecordedText+3)
	}
	if got.TextHash != HashText(long) {
		t.Error("hash must cover the full text, not the truncation")
	}
}

func TestFlightRecorderUnknownIDsAreNoOps(t *testing.T) {
	f := NewFlightRecorder(2)
	f.SetStage(99, StageStream)
	f.Update(99, func(r *QueryRecord) { r.Tuples = 1 })
	f.Finish(99, OutcomeOK, nil)
	if len(f.Recent()) != 0 || f.TotalCompleted() != 0 {
		t.Error("finishing an unknown trace ID recorded something")
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Start(QueryRecord{TraceID: 1})
	f.SetStage(1, StageExecute)
	f.Update(1, nil)
	f.Finish(1, OutcomeOK, nil)
	if f.InFlight() != nil || f.Recent() != nil || f.Capacity() != 0 || f.TotalCompleted() != 0 {
		t.Error("nil flight recorder is not inert")
	}
}

// TestFlightRecorderDisabledAllocs: the disabled (nil-recorder) service
// path must not allocate — it rides the server's per-query hot path.
func TestFlightRecorderDisabledAllocs(t *testing.T) {
	var f *FlightRecorder
	allocs := testing.AllocsPerRun(1000, func() {
		f.SetStage(1, StageExecute)
		f.Finish(1, OutcomeOK, nil)
	})
	if allocs != 0 {
		t.Errorf("nil flight recorder allocates %v per query, want 0", allocs)
	}
}

func TestFlightRecorderJSONDocuments(t *testing.T) {
	f := NewFlightRecorder(4)
	f.Start(QueryRecord{TraceID: 5, Text: "scan parts", Start: time.Now()})
	f.Start(QueryRecord{TraceID: 6, Text: "scan suppliers", Start: time.Now()})
	f.Finish(6, OutcomeShed, nil)

	var in struct {
		InFlight []QueryRecord `json:"inflight"`
	}
	var sb strings.Builder
	if err := f.WriteInFlight(&sb); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(sb.String()), &in); err != nil {
		t.Fatalf("bad /queries document: %v", err)
	}
	if len(in.InFlight) != 1 || in.InFlight[0].TraceID != 5 {
		t.Fatalf("inflight doc = %+v, want trace 5 only", in.InFlight)
	}

	var rec struct {
		Recent   []QueryRecord `json:"recent"`
		Capacity int           `json:"capacity"`
		Total    int64         `json:"total_completed"`
	}
	sb.Reset()
	if err := f.WriteRecent(&sb); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(sb.String()), &rec); err != nil {
		t.Fatalf("bad /queries/recent document: %v", err)
	}
	if len(rec.Recent) != 1 || rec.Recent[0].Outcome != OutcomeShed || rec.Capacity != 4 || rec.Total != 1 {
		t.Fatalf("recent doc = %+v, want one shed record, capacity 4, total 1", rec)
	}
}

package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry(0)
	if r.Bucket() != DefaultBucket {
		t.Errorf("zero bucket not defaulted: %v", r.Bucket())
	}
	r.Inc("packets", 3)
	r.Inc("packets", 4)
	if got := r.Counter("packets"); got != 7 {
		t.Errorf("counter = %d, want 7", got)
	}
	if got := r.Counter("absent"); got != 0 {
		t.Errorf("absent counter = %d", got)
	}
	r.SetGauge("util", 0.25)
	r.SetGauge("util", 0.75)
	if v, ok := r.Gauge("util"); !ok || v != 0.75 {
		t.Errorf("gauge = %v, %v", v, ok)
	}
}

func TestTimelineBucketsAndIntegral(t *testing.T) {
	r := NewRegistry(10 * time.Millisecond)
	r.Add("bytes", 0, 100)
	r.Add("bytes", 9*time.Millisecond, 50)  // same bucket as t=0
	r.Add("bytes", 10*time.Millisecond, 25) // next bucket
	r.Add("bytes", 35*time.Millisecond, 10) // bucket 3
	tl := r.Timeline("bytes")
	if tl == nil {
		t.Fatal("no timeline")
	}
	if len(tl.Vals) != 4 {
		t.Fatalf("buckets = %v", tl.Vals)
	}
	if tl.Vals[0] != 150 || tl.Vals[1] != 25 || tl.Vals[2] != 0 || tl.Vals[3] != 10 {
		t.Errorf("bucket values = %v", tl.Vals)
	}
	if got := tl.Integral(); got != 185 {
		t.Errorf("integral = %g, want 185", got)
	}
	// Rate: 150 bytes in a 10 ms bucket = 15000 bytes/sec.
	if got := tl.Rate(0); got != 15000 {
		t.Errorf("rate(0) = %g", got)
	}
	if tl.Rate(-1) != 0 || tl.Rate(99) != 0 {
		t.Error("out-of-range rate not zero")
	}
}

func TestSeriesSampling(t *testing.T) {
	r := NewRegistry(0)
	r.Sample("queue", 0, 1)
	r.Sample("queue", time.Second, 3)
	s := r.Series("queue")
	if s == nil || len(s.T) != 2 || s.V[1] != 3 {
		t.Fatalf("series = %+v", s)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry(time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Inc("n", 1)
				r.Add("tl", time.Duration(i)*time.Microsecond, 1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n"); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Timeline("tl").Integral(); got != 8000 {
		t.Errorf("integral = %g, want 8000", got)
	}
}

func TestWriteJSONLDeterministicAndParseable(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry(10 * time.Millisecond)
		r.Inc("z_counter", 9)
		r.Inc("a_counter", 1)
		r.SetGauge("util", 0.5)
		r.Sample("queue", time.Millisecond, 2)
		r.Add("bytes", 5*time.Millisecond, 2048)
		return r
	}
	var a, b bytes.Buffer
	if err := build().WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("JSONL export not deterministic")
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("%d lines, want 5:\n%s", len(lines), a.String())
	}
	types := map[string]int{}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad line %q: %v", line, err)
		}
		types[m["type"].(string)]++
	}
	if types["counter"] != 2 || types["gauge"] != 1 || types["series"] != 1 || types["timeline"] != 1 {
		t.Errorf("type counts = %v", types)
	}
	// Counters sort by name: a_counter before z_counter.
	if !strings.Contains(lines[0], "a_counter") {
		t.Errorf("first line not a_counter: %s", lines[0])
	}
}

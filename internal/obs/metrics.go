package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// DefaultBucket is the timeline bucket width used when a Registry is
// built with a zero bucket.
const DefaultBucket = 100 * time.Millisecond

// Registry is a metrics registry: named counters (monotonic totals),
// gauges (last-value), series (sampled (t, v) points, e.g. queue
// depths), and timelines (time-bucketed accumulators, e.g. ring bytes
// per 100 ms of virtual time — the raw material of a time-resolved
// Figure 4.2). All methods are safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	bucket     time.Duration
	counters   map[string]int64
	gauges     map[string]float64
	series     map[string]*Series
	timelines  map[string]*Timeline
	histograms map[string]*Histogram
}

// NewRegistry returns a registry whose timelines bucket time into
// widths of bucket (DefaultBucket when zero).
func NewRegistry(bucket time.Duration) *Registry {
	if bucket <= 0 {
		bucket = DefaultBucket
	}
	return &Registry{
		bucket:    bucket,
		counters:  map[string]int64{},
		gauges:    map[string]float64{},
		series:    map[string]*Series{},
		timelines: map[string]*Timeline{},
	}
}

// Bucket returns the timeline bucket width.
func (r *Registry) Bucket() time.Duration { return r.bucket }

// Inc adds delta to the named counter.
func (r *Registry) Inc(name string, delta int64) {
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Counter returns the named counter's value (0 when absent).
func (r *Registry) Counter(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// SetGauge records the named gauge's current value.
func (r *Registry) SetGauge(name string, v float64) {
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// Gauge returns the named gauge and whether it was ever set.
func (r *Registry) Gauge(name string) (float64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.gauges[name]
	return v, ok
}

// Add accumulates v into the named timeline's bucket at time ts.
func (r *Registry) Add(name string, ts time.Duration, v float64) {
	r.mu.Lock()
	tl, ok := r.timelines[name]
	if !ok {
		tl = &Timeline{Bucket: r.bucket}
		r.timelines[name] = tl
	}
	tl.Add(ts, v)
	r.mu.Unlock()
}

// AddBusy spreads a busy interval of duration d starting at start
// across the named timeline's buckets, charging each bucket its
// overlap in microseconds. Device busy timelines recorded this way
// divide cleanly by (bucket width × servers) into utilization even
// when one service interval spans several buckets, where a point
// charge would pile the whole interval into its first bucket.
func (r *Registry) AddBusy(name string, start, d time.Duration) {
	if d <= 0 {
		return
	}
	if start < 0 {
		start = 0
	}
	r.mu.Lock()
	tl, ok := r.timelines[name]
	if !ok {
		tl = &Timeline{Bucket: r.bucket}
		r.timelines[name] = tl
	}
	end := start + d
	for t := start; t < end; {
		next := (t/tl.Bucket + 1) * tl.Bucket
		if next > end {
			next = end
		}
		tl.Add(t, float64((next - t).Microseconds()))
		t = next
	}
	r.mu.Unlock()
}

// Timeline returns the named timeline, or nil. The returned value is
// live: read it only after the producing run has completed.
func (r *Registry) Timeline(name string) *Timeline {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.timelines[name]
}

// Sample appends a (ts, v) point to the named series.
func (r *Registry) Sample(name string, ts time.Duration, v float64) {
	r.mu.Lock()
	s, ok := r.series[name]
	if !ok {
		s = &Series{}
		r.series[name] = s
	}
	s.T = append(s.T, ts)
	s.V = append(s.V, v)
	r.mu.Unlock()
}

// Series returns the named sampled series, or nil. Like Timeline, the
// returned value is live.
func (r *Registry) Series(name string) *Series {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.series[name]
}

// Series is a sampled metric: parallel (time, value) slices in
// recording order.
type Series struct {
	T []time.Duration
	V []float64
}

// Timeline is a time-bucketed accumulator: Vals[i] is the sum of
// values recorded with Bucket*i <= ts < Bucket*(i+1).
type Timeline struct {
	Bucket time.Duration
	Vals   []float64
}

// Add accumulates v into the bucket containing ts.
func (t *Timeline) Add(ts time.Duration, v float64) {
	if ts < 0 {
		ts = 0
	}
	idx := int(ts / t.Bucket)
	for len(t.Vals) <= idx {
		t.Vals = append(t.Vals, 0)
	}
	t.Vals[idx] += v
}

// Integral returns the sum over all buckets — for a bytes timeline,
// the run-total byte count.
func (t *Timeline) Integral() float64 {
	var sum float64
	for _, v := range t.Vals {
		sum += v
	}
	return sum
}

// Rate returns bucket i's value expressed per second (for a bytes
// timeline: bytes/sec; multiply by 8e-6 for Mbps).
func (t *Timeline) Rate(i int) float64 {
	if i < 0 || i >= len(t.Vals) {
		return 0
	}
	return t.Vals[i] / t.Bucket.Seconds()
}

// metricLine is the JSONL export schema: one line per metric.
type metricLine struct {
	Metric   string       `json:"metric"`
	Type     string       `json:"type"`
	Value    *float64     `json:"value,omitempty"`
	BucketUS int64        `json:"bucket_us,omitempty"`
	Points   [][2]float64 `json:"points,omitempty"`
	// Count, Sum, and Max summarize a histogram; its Points are
	// [upper_bound, bucket_count] pairs, overflow bound -1.
	Count *int64 `json:"count,omitempty"`
	Sum   *int64 `json:"sum,omitempty"`
	Max   *int64 `json:"max,omitempty"`
}

// WriteJSONL exports every metric as one JSON line, in sorted name
// order within each type (counters, then gauges, then series, then
// timelines). Timeline and series points are [t_us, value] pairs.
func (r *Registry) WriteJSONL(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()

	emit := func(l metricLine) error {
		b, err := json.Marshal(l)
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "%s\n", b)
		return err
	}
	for _, name := range sortedKeys(r.counters) {
		v := float64(r.counters[name])
		if err := emit(metricLine{Metric: name, Type: "counter", Value: &v}); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.gauges) {
		v := r.gauges[name]
		if err := emit(metricLine{Metric: name, Type: "gauge", Value: &v}); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.series) {
		s := r.series[name]
		pts := make([][2]float64, len(s.T))
		for i := range s.T {
			pts[i] = [2]float64{float64(s.T[i].Microseconds()), s.V[i]}
		}
		if err := emit(metricLine{Metric: name, Type: "series", Points: pts}); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.timelines) {
		tl := r.timelines[name]
		pts := make([][2]float64, len(tl.Vals))
		for i, v := range tl.Vals {
			pts[i] = [2]float64{float64(time.Duration(i) * tl.Bucket / time.Microsecond), v}
		}
		if err := emit(metricLine{
			Metric: name, Type: "timeline",
			BucketUS: tl.Bucket.Microseconds(), Points: pts,
		}); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.histograms) {
		s := r.histograms[name].Snapshot()
		pts := make([][2]float64, 0, len(s.Counts))
		for i, c := range s.Counts {
			bound := float64(-1)
			if i < len(s.Bounds) {
				bound = float64(s.Bounds[i])
			}
			pts = append(pts, [2]float64{bound, float64(c)})
		}
		if err := emit(metricLine{
			Metric: name, Type: "histogram", Points: pts,
			Count: &s.Count, Sum: &s.Sum, Max: &s.Max,
		}); err != nil {
			return err
		}
	}
	return nil
}

package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the opt-in live introspection endpoint: while a simulation
// runs it serves
//
//	/metrics        the registry in Prometheus exposition format
//	/debug/pprof/*  the standard Go profiling endpoints (live CPU
//	                profiles of a running simulation)
//	/spans          the active span tree as JSON
//	/timeline       every registry timeline as JSON
//	/queries        the flight recorder's in-flight queries with their
//	                current lifecycle stage
//	/queries/recent the flight recorder's ring of completed queries
//
// All read paths take the registry / tracker locks, so scraping a
// running simulation is safe (the concurrent engine emits from many
// goroutines; the simulators from one).
type Server struct {
	reg    *Registry
	spans  *Tracker
	flight *FlightRecorder
	ln     net.Listener
	srv    *http.Server
	mux    *http.ServeMux
}

// StartServer listens on addr (":0" picks a free port) and serves the
// introspection endpoints for the given registry, span tracker, and
// flight recorder (any may be nil) until Close.
func StartServer(addr string, reg *Registry, spans *Tracker, flight *FlightRecorder) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: introspection server: %w", err)
	}
	s := &Server{reg: reg, spans: spans, flight: flight, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/spans", s.handleSpans)
	mux.HandleFunc("/timeline", s.handleTimeline)
	mux.HandleFunc("/queries", s.handleQueries)
	mux.HandleFunc("/queries/recent", s.handleQueriesRecent)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux = mux
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close.
	return s, nil
}

// Handle registers an extra endpoint on the introspection mux —
// subsystems layered above obs (the load generator's live /loadgen
// timeline) expose their documents through the same server. Must be
// called before traffic arrives at the pattern; registering a pattern
// twice panics, as with any ServeMux.
func (s *Server) Handle(pattern string, h http.Handler) {
	if s == nil {
		return
	}
	s.mux.Handle(pattern, h)
}

// Addr returns the bound address ("127.0.0.1:43781").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server gracefully: the listener closes at once, but
// in-flight scrapes get a short grace period to finish — a Prometheus
// scrape of a large registry should not come back truncated because
// the simulation ended first. Connections still open after the grace
// period are torn down.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if s.reg == nil {
		return
	}
	s.reg.WritePrometheus(w) //nolint:errcheck // client went away
}

func (s *Server) handleSpans(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.spans.WriteActiveTree(w) //nolint:errcheck // client went away
}

func (s *Server) handleQueries(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.flight.WriteInFlight(w) //nolint:errcheck // client went away
}

func (s *Server) handleQueriesRecent(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.flight.WriteRecent(w) //nolint:errcheck // client went away
}

// timelineJSON is the /timeline schema: one entry per registry
// timeline, points as [t_us, value] pairs.
type timelineJSON struct {
	Metric   string       `json:"metric"`
	BucketUS int64        `json:"bucket_us"`
	Points   [][2]float64 `json:"points"`
}

func (s *Server) handleTimeline(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	out := []timelineJSON{}
	if s.reg != nil {
		s.reg.mu.Lock()
		for _, name := range sortedKeys(s.reg.timelines) {
			tl := s.reg.timelines[name]
			e := timelineJSON{Metric: name, BucketUS: tl.Bucket.Microseconds(), Points: [][2]float64{}}
			for i, v := range tl.Vals {
				e.Points = append(e.Points, [2]float64{float64(time.Duration(i) * tl.Bucket / time.Microsecond), v})
			}
			out = append(out, e)
		}
		s.reg.mu.Unlock()
	}
	json.NewEncoder(w).Encode(struct { //nolint:errcheck // client went away
		Timelines []timelineJSON `json:"timelines"`
	}{out})
}

package obs

import (
	"context"
	"time"
)

// SpanContext carries span parentage across a package boundary via a
// context.Context: the server's execute-stage span, the wall-clock
// epoch its timestamps are relative to, and the query's trace-visible
// id. The engine (internal/core) consumes it so its per-node and
// per-worker spans nest under the server's lifecycle spans on a shared
// clock — one causal tree per query from session to worker burst.
type SpanContext struct {
	// Parent is the span to nest under (the execute-stage span).
	Parent *Span
	// Epoch is the time zero of the parent's tracker; span timestamps
	// are recorded as offsets from it. Zero means the consumer keeps
	// its own clock.
	Epoch time.Time
	// Query is the query id to stamp on the nested spans (-1 when
	// unknown).
	Query int
}

type spanCtxKey struct{}

// WithSpanContext returns a context carrying sc.
func WithSpanContext(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// SpanContextFrom extracts the span context from ctx, reporting
// whether one was attached.
func SpanContextFrom(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc, ok
}

package obs

import (
	"fmt"
	"io"
	"strings"
)

// WritePrometheus exports the registry in the Prometheus text
// exposition format (version 0.0.4): counters as counter samples,
// gauges as gauge samples, and each timeline's running integral as a
// counter (scrapers recover per-bucket rates by deriving it). Series
// are exported as their last sample, gauge-typed. Histograms export as
// native Prometheus histograms (cumulative le buckets, _sum, _count)
// plus _p50/_p95/_p99 gauge summaries computed at scrape time. Metric
// names are sanitized (dots become underscores) and the output is
// sorted, so repeated scrapes of a quiet registry are byte-identical.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()

	write := func(name, typ string, v float64) error {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", n, typ); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %g\n", n, v)
		return err
	}
	for _, name := range sortedKeys(r.counters) {
		if err := write(name, "counter", float64(r.counters[name])); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.gauges) {
		if err := write(name, "gauge", r.gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.series) {
		s := r.series[name]
		if len(s.V) == 0 {
			continue
		}
		if err := write(name, "gauge", s.V[len(s.V)-1]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.timelines) {
		if err := write(name+"_total", "counter", r.timelines[name].Integral()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.histograms) {
		h := r.histograms[name]
		s := h.Snapshot()
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		var cum int64
		for i, c := range s.Counts {
			cum += c
			le := "+Inf"
			if i < len(s.Bounds) {
				le = fmt.Sprintf("%d", s.Bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", n, s.Sum, n, s.Count); err != nil {
			return err
		}
		for _, q := range [...]struct {
			suffix string
			q      float64
		}{{"_p50", 0.50}, {"_p95", 0.95}, {"_p99", 0.99}} {
			if err := write(name+q.suffix, "gauge", float64(h.Quantile(q.q))); err != nil {
				return err
			}
		}
	}
	return nil
}

// promName sanitizes a registry metric name ("machine.outer_ring_bytes")
// into a valid Prometheus metric name ("machine_outer_ring_bytes").
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

package obs

import (
	"fmt"
	"io"
	"strings"
)

// WritePrometheus exports the registry in the Prometheus text
// exposition format (version 0.0.4): counters as counter samples,
// gauges as gauge samples, and each timeline's running integral as a
// counter (scrapers recover per-bucket rates by deriving it). Series
// are exported as their last sample, gauge-typed. Histograms export as
// native Prometheus histograms (cumulative le buckets, _sum, _count)
// plus _p50/_p95/_p99 gauge summaries computed at scrape time. Metric
// names are sanitized (dots become underscores) and the output is
// sorted, so repeated scrapes of a quiet registry are byte-identical.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()

	write := func(name, typ string, v float64) error {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", n, helpFor(name), n, typ); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %g\n", n, v)
		return err
	}
	for _, name := range sortedKeys(r.counters) {
		if err := write(name, "counter", float64(r.counters[name])); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.gauges) {
		if err := write(name, "gauge", r.gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.series) {
		s := r.series[name]
		if len(s.V) == 0 {
			continue
		}
		if err := write(name, "gauge", s.V[len(s.V)-1]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.timelines) {
		if err := write(name+"_total", "counter", r.timelines[name].Integral()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.histograms) {
		h := r.histograms[name]
		s := h.Snapshot()
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", n, helpFor(name), n); err != nil {
			return err
		}
		var cum int64
		for i, c := range s.Counts {
			cum += c
			le := "+Inf"
			if i < len(s.Bounds) {
				le = fmt.Sprintf("%d", s.Bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", n, s.Sum, n, s.Count); err != nil {
			return err
		}
		for _, q := range [...]struct {
			suffix string
			q      float64
		}{{"_p50", 0.50}, {"_p95", 0.95}, {"_p99", 0.99}} {
			if err := write(name+q.suffix, "gauge", float64(h.Quantile(q.q))); err != nil {
				return err
			}
		}
	}
	return nil
}

// promHelp maps registry metric names to their # HELP text. Names not
// listed fall back to a subsystem-prefix description so every exported
// family still carries a non-empty HELP line (real Prometheus scrapers
// warn on families without one).
var promHelp = map[string]string{
	"server.sessions":          "Client sessions accepted over the wire protocol.",
	"server.queries":           "Queries received by the service path.",
	"server.slow_queries":      "Queries whose total latency exceeded the slow-query threshold.",
	"sched.admitted":           "Jobs admitted by the scheduler into a priority lane.",
	"sched.shed":               "Jobs rejected at admission because the lane queue was full.",
	"sched.queue_depth":        "Jobs currently queued across all lanes, waiting for a runner.",
	"sched.runners_busy":       "Runners currently executing a job.",
	"sched.runners":            "Current size of the runner pool (moves when autoscaling).",
	"sched.runner_utilization": "Busy runners as a fraction of the pool size.",
	"sched.scale_ups":          "Autoscaler decisions that grew the runner pool.",
	"sched.scale_downs":        "Autoscaler decisions that shrank the runner pool.",
}

// promHelpPrefixes supplies HELP text by subsystem when no exact entry
// exists; ordered most-specific first.
var promHelpPrefixes = []struct{ prefix, help string }{
	{"sched.admit_wait_ns", "Nanoseconds a job waited between admission and dispatch."},
	{"sched.exec_ns", "Nanoseconds a runner spent executing a job."},
	{"server.stream_ns", "Nanoseconds spent streaming result tuples to the client."},
	{"wal.", "Write-ahead-log metric."},
	{"sched.", "Admission-scheduler metric."},
	{"server.", "Service-path metric."},
	{"machine.", "Data-flow machine metric."},
	{"loadgen.", "Load-generator metric."},
}

func helpFor(name string) string {
	if h, ok := promHelp[name]; ok {
		return h
	}
	for _, p := range promHelpPrefixes {
		if strings.HasPrefix(name, p.prefix) {
			return p.help
		}
	}
	return "Registry metric " + name + "."
}

// promName sanitizes a registry metric name ("machine.outer_ring_bytes")
// into a valid Prometheus metric name ("machine_outer_ring_bytes").
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Package obs is the unified observability layer shared by the three
// execution layers of the reproduction: the concurrent data-flow engine
// (internal/core, real-time stamps), the Section 4 ring machine
// (internal/machine, virtual-time stamps), and the DIRECT simulator
// (internal/direct, virtual-time stamps).
//
// It has two halves:
//
//   - Structured event tracing: every protocol event (admission, grant,
//     instruction packet, broadcast, disk transfer, ...) is a typed
//     Event carrying a timestamp, the emitting component, and the query
//     / instruction / page / byte-size context. Events flow to a
//     pluggable Sink: human-readable text (the legacy trace format),
//     JSONL, or Chrome trace-event JSON loadable in Perfetto or
//     chrome://tracing.
//
//   - A metrics Registry: counters, gauges, sampled series, and
//     time-bucketed timelines, giving time-resolved measurements
//     (outer-ring Mbps over time, per-IP busy fraction, cache hit rate)
//     instead of only end-of-run totals.
//
// Both halves cost ~nothing when disabled: a nil *Observer is valid,
// and every accessor on it reports "off" after a single nil check.
package obs

import (
	"sync"
	"time"
)

// EventKind classifies a structured trace event.
type EventKind uint8

// The event kinds emitted by the three execution layers.
const (
	// EvAdmit: the controller admits a query for execution.
	EvAdmit EventKind = iota + 1
	// EvAssign: an instruction is installed on a controller.
	EvAssign
	// EvGrant: the MC grants a processor to a controller.
	EvGrant
	// EvInstr: an instruction packet is dispatched to a processor.
	EvInstr
	// EvResult: a result page moves toward its consumer.
	EvResult
	// EvControl: a control message (done, need-inner, need-outer, ...).
	EvControl
	// EvBroadcast: an inner page (or last-page marker) is broadcast.
	EvBroadcast
	// EvBcastIgnored: a processor dropped a broadcast (buffer full).
	EvBcastIgnored
	// EvInstrDone: an instruction completed.
	EvInstrDone
	// EvQueryDone: a query completed.
	EvQueryDone
	// EvDiskRead and EvDiskWrite: mass-storage transfers.
	EvDiskRead
	EvDiskWrite
	// EvCacheRead and EvCacheWrite: disk-cache transfers.
	EvCacheRead
	EvCacheWrite
	// EvNote: anything else.
	EvNote
	// EvFault: an injected fault (processor crash, dropped or
	// duplicated packet, cache read fault) or its detection (a watchdog
	// expiry, a discarded stale packet).
	EvFault
	// EvRecovery: a recovery action (re-dispatch of lost work,
	// retransmission on a reliable channel, completion of retried
	// work).
	EvRecovery
	// EvSpanBegin and EvSpanEnd: a causal span (see span.go) opened or
	// closed. Emitted only when spans are enabled on the observer, so
	// the default event stream is unchanged.
	EvSpanBegin
	EvSpanEnd
)

// String returns the kind's wire name (used by the JSONL and Chrome
// sinks as the event name).
func (k EventKind) String() string {
	switch k {
	case EvAdmit:
		return "admit"
	case EvAssign:
		return "assign"
	case EvGrant:
		return "grant"
	case EvInstr:
		return "instr"
	case EvResult:
		return "result"
	case EvControl:
		return "control"
	case EvBroadcast:
		return "broadcast"
	case EvBcastIgnored:
		return "bcast-ignored"
	case EvInstrDone:
		return "instr-done"
	case EvQueryDone:
		return "query-done"
	case EvDiskRead:
		return "disk-read"
	case EvDiskWrite:
		return "disk-write"
	case EvCacheRead:
		return "cache-read"
	case EvCacheWrite:
		return "cache-write"
	case EvFault:
		return "fault"
	case EvRecovery:
		return "recovery"
	case EvSpanBegin:
		return "span-begin"
	case EvSpanEnd:
		return "span-end"
	default:
		return "note"
	}
}

// Event is one structured trace event.
type Event struct {
	// TS is the event time: virtual time in the simulators, elapsed
	// real time in the concurrent engine.
	TS time.Duration
	// Kind classifies the event.
	Kind EventKind
	// Comp is the emitting component: "MC", "IC2", "IP3", "disk",
	// "cache", "node4", ...
	Comp string
	// Query, Instr, and Page identify the query, instruction (within
	// its query), and page the event concerns; -1 when not applicable.
	Query int
	Instr int
	Page  int
	// Bytes is the payload size the event moved, or 0.
	Bytes int
	// Msg is the human-readable line (what the text sink prints after
	// the timestamp).
	Msg string
	// Span, Parent, SK, and Dur are set only on span events: the span
	// and parent-span ids, the span kind, and (on EvSpanEnd) the span's
	// duration. The Chrome sink uses Dur to render the span as a
	// complete event; ReadSpans uses the ids to rebuild the tree.
	Span   int
	Parent int
	SK     SpanKind
	Dur    time.Duration
}

// Sink receives events. Implementations are not required to be
// goroutine-safe: Observer serializes Emit calls.
type Sink interface {
	// Emit records one event. A returned error stops the stream: the
	// Observer records the first error and drops subsequent events.
	Emit(ev Event) error
	// Close flushes and finalizes the stream (the Chrome sink writes
	// its closing bracket here). It returns the first error seen.
	Close() error
}

// Observer couples an event sink and a metrics registry. Either half
// may be nil; a nil *Observer is valid and fully disabled, so the hot
// paths of the execution layers pay only a nil check when tracing and
// metrics are off.
type Observer struct {
	mu     sync.Mutex
	sink   Sink
	reg    *Registry
	spans  *Tracker
	flight *FlightRecorder
	err    error
}

// New returns an observer over the given sink and registry (either may
// be nil).
func New(sink Sink, reg *Registry) *Observer {
	return &Observer{sink: sink, reg: reg}
}

// EnableSpans attaches a span tracker and returns it. Span begin/end
// are mirrored into the event sink (if any), so a JSONL trace of a
// span-enabled run is self-describing. Spans are strictly opt-in: an
// observer without a tracker emits exactly the legacy event stream.
func (o *Observer) EnableSpans() *Tracker {
	if o == nil {
		return nil
	}
	if o.spans == nil {
		o.spans = NewTracker()
		o.spans.obs = o
	}
	return o.spans
}

// SpansOn reports whether a span tracker is attached. Callers must
// check it before building spans — that check is the disabled fast
// path.
func (o *Observer) SpansOn() bool { return o != nil && o.spans != nil }

// EnableFlight attaches a flight recorder retaining the last capacity
// completed queries and returns it. Idempotent: a second call returns
// the existing recorder (its capacity wins), so the CLI and the server
// can both ask for one and share it.
func (o *Observer) EnableFlight(capacity int) *FlightRecorder {
	if o == nil {
		return nil
	}
	if o.flight == nil {
		o.flight = NewFlightRecorder(capacity)
	}
	return o.flight
}

// FlightOn reports whether a flight recorder is attached.
func (o *Observer) FlightOn() bool { return o != nil && o.flight != nil }

// Flight returns the attached flight recorder, or nil.
func (o *Observer) Flight() *FlightRecorder {
	if o == nil {
		return nil
	}
	return o.flight
}

// Spans returns the attached span tracker, or nil.
func (o *Observer) Spans() *Tracker {
	if o == nil {
		return nil
	}
	return o.spans
}

// Enabled reports whether events should be built and emitted. Callers
// must check it before constructing an Event — that check is the
// disabled fast path.
func (o *Observer) Enabled() bool { return o != nil && o.sink != nil }

// MetricsOn reports whether a metrics registry is attached.
func (o *Observer) MetricsOn() bool { return o != nil && o.reg != nil }

// Registry returns the attached metrics registry, or nil.
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Emit forwards one event to the sink. Safe for concurrent use (the
// engine's workers emit from many goroutines). After a sink error,
// further events are dropped and the first error is kept.
func (o *Observer) Emit(ev Event) {
	if !o.Enabled() {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.err != nil {
		return
	}
	o.err = o.sink.Emit(ev)
}

// Err returns the first sink error, if any.
func (o *Observer) Err() error {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.err
}

// Close finalizes the sink and returns the first error seen (emit or
// close).
func (o *Observer) Close() error {
	if o == nil || o.sink == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	cerr := o.sink.Close()
	if o.err == nil {
		o.err = cerr
	}
	return o.err
}

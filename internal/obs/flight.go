package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// FlightRecorder is the always-on bounded record of recent queries the
// server answers: a live table of in-flight queries (keyed by trace
// ID, each carrying its current lifecycle stage) plus a fixed-size
// ring of completed, failed, and shed queries retained after the
// session that ran them is gone. It is the paper's master-controller
// vantage point made inspectable: the one place that sees every
// query's arrival, conflict wait, dispatch, and completion. The obs
// HTTP server surfaces it as /queries (in flight) and /queries/recent
// (the ring, newest first).
//
// All methods tolerate a nil receiver, so the service path needs no
// guards; memory is bounded by the ring capacity plus the number of
// queries actually in flight.
type FlightRecorder struct {
	mu       sync.Mutex
	capacity int
	inflight map[uint64]*QueryRecord
	ring     []QueryRecord
	next     int   // ring write cursor
	total    int64 // completions ever recorded
}

// Lifecycle stages of a query as reported by QueryRecord.Stage.
const (
	StageAdmitWait = "admit-wait"
	StageSchedule  = "schedule"
	StageExecute   = "execute"
	StageStream    = "stream"
)

// Outcomes recorded by Finish.
const (
	OutcomeOK    = "ok"
	OutcomeError = "error"
	OutcomeShed  = "shed"
	// OutcomeReplayed marks a write re-applied from the write-ahead log
	// during crash recovery: it was acknowledged in a previous process
	// life and survived into this one.
	OutcomeReplayed = "replayed"
)

// QueryRecord is one query's flight-recorder entry.
type QueryRecord struct {
	// TraceID is the query's end-to-end trace identifier (the frame
	// field of wire v2); it keys the in-flight table.
	TraceID uint64 `json:"trace_id"`
	// Session and QueryID locate the query in its session; Lane is the
	// admission lane ("high", "normal", "low"); Engine names the
	// executing engine.
	Session uint64 `json:"session"`
	QueryID uint32 `json:"query_id"`
	Lane    string `json:"lane"`
	Engine  string `json:"engine"`
	// Text is the query text, truncated to maxRecordedText bytes;
	// TextHash is the FNV-1a hash of the full text, stable across
	// truncation so repeated queries group.
	Text     string `json:"text"`
	TextHash uint64 `json:"text_hash"`
	// Start is the wall-clock arrival time.
	Start time.Time `json:"start"`
	// Stage is the current lifecycle stage while in flight
	// (StageAdmitWait, StageSchedule, StageExecute, StageStream), then
	// the outcome once finished.
	Stage string `json:"stage"`
	// Per-stage timings, filled in as the query advances.
	AdmitWait time.Duration `json:"admit_wait_ns"`
	Sched     time.Duration `json:"sched_ns"`
	Exec      time.Duration `json:"exec_ns"`
	Stream    time.Duration `json:"stream_ns"`
	// Total is the end-to-end server-side duration, set by Finish.
	Total time.Duration `json:"total_ns"`
	// Outcome is empty in flight, then OutcomeOK, OutcomeShed, or
	// "error:<code>" with the wire error code.
	Outcome string `json:"outcome,omitempty"`
	// Tuples and Pages size the result (OutcomeOK only).
	Tuples int64 `json:"tuples"`
	Pages  int64 `json:"pages"`
	// Deferred reports a read/write-conflict admission delay.
	Deferred bool `json:"deferred,omitempty"`
}

// maxRecordedText bounds the query text kept per record.
const maxRecordedText = 200

// HashText returns the FNV-1a 64-bit hash of a query text.
func HashText(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// NewFlightRecorder returns a recorder retaining the last capacity
// completed queries (64 when capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = 64
	}
	return &FlightRecorder{
		capacity: capacity,
		inflight: map[uint64]*QueryRecord{},
	}
}

// Capacity returns the ring capacity.
func (f *FlightRecorder) Capacity() int {
	if f == nil {
		return 0
	}
	return f.capacity
}

// Start registers a query as in flight. The record's Stage defaults to
// StageAdmitWait and its Text is truncated and hashed here.
func (f *FlightRecorder) Start(rec QueryRecord) {
	if f == nil {
		return
	}
	rec.TextHash = HashText(rec.Text)
	if len(rec.Text) > maxRecordedText {
		rec.Text = rec.Text[:maxRecordedText] + "..."
	}
	if rec.Stage == "" {
		rec.Stage = StageAdmitWait
	}
	// Copy into fresh heap storage here rather than letting the rec
	// parameter itself escape: taking &rec would heap-allocate the
	// argument at function entry, before the nil check, charging one
	// allocation per query to servers running with no recorder at all.
	r := new(QueryRecord)
	*r = rec
	f.mu.Lock()
	f.inflight[r.TraceID] = r
	f.mu.Unlock()
}

// SetStage advances an in-flight query's lifecycle stage. Unknown
// trace IDs are ignored (the query may have been shed before Start).
func (f *FlightRecorder) SetStage(traceID uint64, stage string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	if r, ok := f.inflight[traceID]; ok {
		r.Stage = stage
	}
	f.mu.Unlock()
}

// Update applies fn to an in-flight record under the recorder's lock
// (for filling in stage timings as they become known).
func (f *FlightRecorder) Update(traceID uint64, fn func(*QueryRecord)) {
	if f == nil {
		return
	}
	f.mu.Lock()
	if r, ok := f.inflight[traceID]; ok {
		fn(r)
	}
	f.mu.Unlock()
}

// Finish retires an in-flight query into the completed ring with the
// given outcome, applying fn (if non-nil) to fill final timings and
// result sizes first. Finishing an unknown trace ID is a no-op.
func (f *FlightRecorder) Finish(traceID uint64, outcome string, fn func(*QueryRecord)) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	r, ok := f.inflight[traceID]
	if !ok {
		return
	}
	delete(f.inflight, traceID)
	if fn != nil {
		fn(r)
	}
	r.Outcome = outcome
	r.Stage = outcome
	if r.Total == 0 && !r.Start.IsZero() {
		r.Total = r.AdmitWait + r.Sched + r.Exec + r.Stream
	}
	if len(f.ring) < f.capacity {
		f.ring = append(f.ring, *r)
	} else {
		f.ring[f.next] = *r
	}
	f.next = (f.next + 1) % f.capacity
	f.total++
}

// InFlight returns the in-flight queries ordered by arrival.
func (f *FlightRecorder) InFlight() []QueryRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	out := make([]QueryRecord, 0, len(f.inflight))
	for _, r := range f.inflight {
		out = append(out, *r)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].TraceID < out[j].TraceID
	})
	return out
}

// Recent returns the retained completed queries, newest first.
func (f *FlightRecorder) Recent() []QueryRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]QueryRecord, 0, len(f.ring))
	for i := 1; i <= len(f.ring); i++ {
		out = append(out, f.ring[(f.next-i+len(f.ring))%len(f.ring)])
	}
	return out
}

// TotalCompleted returns the number of queries ever retired into the
// ring (including ones since overwritten).
func (f *FlightRecorder) TotalCompleted() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// WriteInFlight writes the /queries JSON document: the in-flight set
// with current stages.
func (f *FlightRecorder) WriteInFlight(w io.Writer) error {
	records := f.InFlight()
	if records == nil {
		records = []QueryRecord{}
	}
	return json.NewEncoder(w).Encode(struct {
		InFlight []QueryRecord `json:"inflight"`
	}{records})
}

// WriteRecent writes the /queries/recent JSON document: the completed
// ring (newest first), its capacity, and the all-time completion
// count.
func (f *FlightRecorder) WriteRecent(w io.Writer) error {
	records := f.Recent()
	if records == nil {
		records = []QueryRecord{}
	}
	return json.NewEncoder(w).Encode(struct {
		Recent   []QueryRecord `json:"recent"`
		Capacity int           `json:"capacity"`
		Total    int64         `json:"total_completed"`
	}{records, f.Capacity(), f.TotalCompleted()})
}

package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func ev(ts time.Duration, kind EventKind, comp, msg string) Event {
	return Event{TS: ts, Kind: kind, Comp: comp, Query: 0, Instr: 1, Page: 2, Bytes: 128, Msg: msg}
}

func TestNilObserverIsDisabled(t *testing.T) {
	var o *Observer
	if o.Enabled() || o.MetricsOn() {
		t.Fatal("nil observer reports enabled")
	}
	if o.Registry() != nil || o.Err() != nil || o.Close() != nil {
		t.Fatal("nil observer accessors not inert")
	}
	o.Emit(Event{}) // must not panic
}

func TestTextSinkMatchesLegacyFormat(t *testing.T) {
	var buf bytes.Buffer
	s := NewTextSink(&buf)
	now := 12345678 * time.Nanosecond
	if err := s.Emit(ev(now, EvGrant, "MC", "MC: grant IP 3 to IC 2")); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("[%12v] MC: grant IP 3 to IC 2\n", now)
	if got := buf.String(); got != want {
		t.Errorf("text line %q, want %q", got, want)
	}
}

// countingWriter counts Write calls and can fail from a given call on.
type countingWriter struct {
	writes  int
	failAt  int // fail on the n-th write (1-based); 0 = never
	written bytes.Buffer
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.failAt > 0 && w.writes >= w.failAt {
		return 0, errors.New("sink broke")
	}
	w.written.Write(p)
	return len(p), nil
}

func TestTextSinkSingleWritePerEvent(t *testing.T) {
	w := &countingWriter{}
	s := NewTextSink(w)
	for i := 0; i < 5; i++ {
		if err := s.Emit(ev(time.Duration(i)*time.Millisecond, EvNote, "MC", "x")); err != nil {
			t.Fatal(err)
		}
	}
	if w.writes != 5 {
		t.Errorf("5 events made %d writes, want exactly one write per event", w.writes)
	}
}

func TestObserverRecordsFirstSinkError(t *testing.T) {
	w := &countingWriter{failAt: 2}
	o := New(NewTextSink(w), nil)
	o.Emit(ev(0, EvNote, "MC", "first"))
	if o.Err() != nil {
		t.Fatal("first emit should succeed")
	}
	o.Emit(ev(0, EvNote, "MC", "second")) // fails
	o.Emit(ev(0, EvNote, "MC", "third"))  // dropped
	if o.Err() == nil {
		t.Fatal("sink error not recorded")
	}
	if w.writes != 2 {
		t.Errorf("events kept flowing after the sink error: %d writes", w.writes)
	}
	if err := o.Close(); err == nil {
		t.Error("Close did not surface the emit error")
	}
}

func TestJSONLSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	if err := s.Emit(ev(3*time.Millisecond, EvBroadcast, "IC4", "IC4: broadcast inner page 2")); err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSONL line: %v", err)
	}
	if got["kind"] != "broadcast" || got["comp"] != "IC4" {
		t.Errorf("bad fields: %v", got)
	}
	if got["ts_ns"] != float64(3*time.Millisecond) {
		t.Errorf("ts_ns = %v", got["ts_ns"])
	}
	if got["page"] != 2.0 || got["bytes"] != 128.0 {
		t.Errorf("context fields lost: %v", got)
	}
}

// chromeDoc mirrors the Chrome trace-event JSON Object Format.
type chromeDoc struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

type chromeEvent struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	TS   *float64        `json:"ts"`
	PID  *int            `json:"pid"`
	TID  *int            `json:"tid"`
	Args json.RawMessage `json:"args"`
}

func TestChromeSinkProducesValidTrace(t *testing.T) {
	var buf bytes.Buffer
	s := NewChromeSink(&buf)
	events := []Event{
		ev(0, EvAdmit, "MC", "MC: admit query 0"),
		ev(time.Millisecond, EvInstr, "IC2", "IC2 -> IP3: restrict page 0"),
		ev(2*time.Millisecond, EvControl, "IP3", "IP3 -> IC2: done (page 0)"),
	}
	for _, e := range events {
		if err := s.Emit(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid Chrome trace JSON: %v\n%s", err, buf.String())
	}
	instants, metas := 0, 0
	for _, e := range doc.TraceEvents {
		if e.Ph == "" || e.PID == nil || e.TID == nil {
			t.Fatalf("event missing required ph/pid/tid: %+v", e)
		}
		switch e.Ph {
		case "i":
			instants++
			if e.TS == nil || *e.TS < 0 {
				t.Fatalf("instant event without ts: %+v", e)
			}
		case "M":
			metas++
		}
	}
	if instants != len(events) {
		t.Errorf("%d instant events, want %d", instants, len(events))
	}
	if metas != 3 { // MC, IC2, IP3 thread names
		t.Errorf("%d thread_name metadata events, want 3", metas)
	}
}

func TestChromeSinkEmptyTraceStillValid(t *testing.T) {
	var buf bytes.Buffer
	s := NewChromeSink(&buf)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace invalid: %v", err)
	}
}

func TestNewSink(t *testing.T) {
	var buf bytes.Buffer
	for _, format := range []string{"", "text", "jsonl", "chrome"} {
		if _, err := NewSink(format, &buf); err != nil {
			t.Errorf("NewSink(%q): %v", format, err)
		}
	}
	if _, err := NewSink("xml", &buf); err == nil || !strings.Contains(err.Error(), "xml") {
		t.Errorf("bad format accepted: %v", err)
	}
}

package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestTrackerSpanLifecycle pins the tracker's core contract: ids are
// assigned in Begin order, parents link, End is idempotent, and CloseAt
// sweeps up whatever is still open.
func TestTrackerSpanLifecycle(t *testing.T) {
	tr := NewTracker()
	q := tr.Begin(SpanQuery, nil, 0, "MC", "q0", 0, -1, -1)
	n := tr.Begin(SpanInstr, q, time.Millisecond, "IC1", "join", 0, 3, -1)
	if q.ID != 1 || n.ID != 2 || n.Parent != q.ID {
		t.Fatalf("ids/parent: q=%d n=%d parent=%d", q.ID, n.ID, n.Parent)
	}
	if got := tr.ActiveCount(); got != 2 {
		t.Fatalf("ActiveCount = %d, want 2", got)
	}
	x := tr.Record(SpanExec, n, 2*time.Millisecond, 5*time.Millisecond, "IP2", "exec", 0, 3, 7)
	if x.End != 5*time.Millisecond || tr.ActiveCount() != 2 {
		t.Fatalf("Record did not close the span: end=%v active=%d", x.End, tr.ActiveCount())
	}
	tr.End(n, 6*time.Millisecond)
	tr.End(n, 9*time.Millisecond) // idempotent
	if n.End != 6*time.Millisecond {
		t.Fatalf("second End moved the close time to %v", n.End)
	}
	tr.CloseAt(10 * time.Millisecond)
	if tr.ActiveCount() != 0 {
		t.Fatal("CloseAt left spans open")
	}
	if q.End != 10*time.Millisecond {
		t.Fatalf("CloseAt ended the query span at %v", q.End)
	}
	snap := tr.Snapshot()
	if len(snap) != 3 || snap[0].Kind != SpanQuery || snap[2].Kind != SpanExec {
		t.Fatalf("snapshot order/kinds wrong: %+v", snap)
	}
}

// TestTrackerNilSafety: a nil tracker and nil spans are inert, so
// instrumentation sites need no guards beyond SpansOn.
func TestTrackerNilSafety(t *testing.T) {
	var tr *Tracker
	s := tr.Begin(SpanQuery, nil, 0, "", "", 0, -1, -1)
	if s != nil {
		t.Fatal("nil tracker returned a span")
	}
	tr.End(nil, 0)
	tr.CloseAt(0)
	if tr.Snapshot() != nil || tr.ActiveCount() != 0 {
		t.Fatal("nil tracker not empty")
	}
	live := NewTracker()
	live.End(nil, 0) // nil span on a live tracker
}

// TestSpanJSONLRoundTrip: spans mirrored into a JSONL event stream must
// reconstruct — ids, parents, kinds, bounds — via ReadSpans.
func TestSpanJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	o := New(NewJSONLSink(&buf), nil)
	tr := o.EnableSpans()
	q := tr.Begin(SpanQuery, nil, 0, "MC", "q0", 0, -1, -1)
	n := tr.Begin(SpanInstr, q, time.Millisecond, "IC1", "join r5xr11", 0, 2, -1)
	n.Bytes.Add(4096)
	tr.Record(SpanXfer, n, 2*time.Millisecond, 3*time.Millisecond, "disk", "cache fill", 0, 2, 9)
	tr.End(n, 4*time.Millisecond)
	tr.End(q, 5*time.Millisecond)
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := ReadSpans(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("round-trip count %d, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.ID != w.ID || g.Parent != w.Parent || g.Kind != w.Kind ||
			g.Start != w.Start || g.End != w.End || g.Name != w.Name {
			t.Errorf("span %d: got %+v, want %+v", i, g, w)
		}
	}
	if got[1].Bytes != 4096 {
		t.Errorf("span-end event dropped the byte counter: %d", got[1].Bytes)
	}
}

// TestBuildProfileIdentity verifies the accounting identity on a
// hand-computable span layout:
//
//	node A active [0,10ms], busy [0,4ms]
//	node B active [2,10ms], busy [6,10ms]
//	makespan 12ms (2ms trailing idle)
//
// Sweep segments: [0,2) A alone+busy; [2,4) shared, A busy; [4,6)
// shared, none busy; [6,10) shared, B busy; [10,12) idle.
func TestBuildProfileIdentity(t *testing.T) {
	ms := time.Millisecond
	spans := []SpanData{
		{ID: 1, Kind: SpanQuery, Query: 0, Start: 0, End: 10 * ms},
		{ID: 2, Kind: SpanInstr, Query: 0, Instr: 0, Name: "A", Start: 0, End: 10 * ms},
		{ID: 3, Kind: SpanInstr, Query: 0, Instr: 1, Name: "B", Start: 2 * ms, End: 10 * ms},
		{ID: 4, Kind: SpanExec, Query: 0, Instr: 0, Start: 0, End: 4 * ms},
		{ID: 5, Kind: SpanExec, Query: 0, Instr: 1, Start: 6 * ms, End: 10 * ms},
	}
	p := BuildProfile(spans, 12*ms)
	if got := p.Attributed() + p.Idle; got != p.Makespan {
		t.Fatalf("attributed %v + idle %v != makespan %v", p.Attributed(), p.Idle, p.Makespan)
	}
	if p.Idle != 2*ms {
		t.Errorf("idle = %v, want 2ms", p.Idle)
	}
	if len(p.Nodes) != 2 {
		t.Fatalf("nodes = %d, want 2", len(p.Nodes))
	}
	a, b := p.Nodes[0], p.Nodes[1]
	// A: busy 2ms (alone) + 1ms (shared half of [2,4)) = 3ms;
	// wait = half of [4,6) + half of [6,10) = 3ms.
	if a.Busy != 3*ms || a.Wait != 3*ms {
		t.Errorf("A busy/wait = %v/%v, want 3ms/3ms", a.Busy, a.Wait)
	}
	// B: busy half of [6,10) = 2ms; wait = half of [2,4)+[4,6) = 2ms.
	if b.Busy != 2*ms || b.Wait != 2*ms {
		t.Errorf("B busy/wait = %v/%v, want 2ms/2ms", b.Busy, b.Wait)
	}
	// Exclusive: A alone-busy on [0,2) and [2,4); B on [6,10).
	if a.Exclusive != 4*ms || b.Exclusive != 4*ms {
		t.Errorf("exclusive = %v/%v, want 4ms/4ms", a.Exclusive, b.Exclusive)
	}
	if len(p.Queries) != 1 || p.Queries[0].End != 10*ms {
		t.Errorf("query rows wrong: %+v", p.Queries)
	}
}

// TestBuildProfileClampsOpenSpans: spans that never closed (a crash)
// are clamped to the makespan and the identity still holds.
func TestBuildProfileClampsOpenSpans(t *testing.T) {
	ms := time.Millisecond
	spans := []SpanData{
		{ID: 1, Kind: SpanInstr, Query: 0, Instr: 0, Name: "A", Start: 1 * ms, End: 0},
		{ID: 2, Kind: SpanExec, Query: 0, Instr: 0, Start: 2 * ms, End: 99 * ms},
	}
	p := BuildProfile(spans, 8*ms)
	if got := p.Attributed() + p.Idle; got != 8*ms {
		t.Fatalf("identity broken with open spans: %v", got)
	}
	if p.Nodes[0].Busy != 6*ms || p.Nodes[0].Wait != 1*ms || p.Idle != 1*ms {
		t.Errorf("clamped attribution = busy %v wait %v idle %v", p.Nodes[0].Busy, p.Nodes[0].Wait, p.Idle)
	}
}

// TestAddBusySpreadsAcrossBuckets: a busy interval is charged to each
// bucket it overlaps, by its overlap — never more than the bucket
// width, so utilization cannot exceed 100% per server.
func TestAddBusySpreadsAcrossBuckets(t *testing.T) {
	reg := NewRegistry(time.Millisecond)
	reg.AddBusy("busy", 500*time.Microsecond, 2*time.Millisecond)
	tl := reg.Timeline("busy")
	if tl == nil {
		t.Fatal("no timeline")
	}
	want := []float64{500, 1000, 500}
	if len(tl.Vals) != len(want) {
		t.Fatalf("buckets = %v, want %v", tl.Vals, want)
	}
	for i, v := range want {
		if tl.Vals[i] != v {
			t.Errorf("bucket %d = %g µs, want %g", i, tl.Vals[i], v)
		}
	}
	// Zero and negative durations are ignored; negative starts clamp.
	reg.AddBusy("busy", time.Millisecond, 0)
	reg.AddBusy("busy2", -time.Millisecond, 500*time.Microsecond)
	if tl2 := reg.Timeline("busy2"); tl2 == nil || tl2.Vals[0] != 500 {
		t.Errorf("negative start not clamped: %+v", tl2)
	}
}

// TestSaturationRanksBottleneckFirst: the resource that crosses the
// threshold earliest leads the report, and per-server normalization is
// applied.
func TestSaturationRanksBottleneckFirst(t *testing.T) {
	reg := NewRegistry(time.Millisecond)
	// "disk" saturates in bucket 0 (1 server, 100% of the bucket).
	reg.AddBusy("disk_busy", 0, time.Millisecond)
	// "pool" has 4 servers and only one busy: 25% — never saturates.
	reg.AddBusy("pool_busy", 0, time.Millisecond)
	rep := Saturation(reg, 4*time.Millisecond, []ResourceSpec{
		{Name: "pool", Timeline: "pool_busy", Servers: 4},
		{Name: "disk", Timeline: "disk_busy", Servers: 1},
		{Name: "unused", Timeline: "missing", Servers: 1},
	})
	if rep.First() != "disk" {
		t.Fatalf("bottleneck = %q, want disk", rep.First())
	}
	var disk, pool, unused *ResourceUsage
	for i := range rep.Resources {
		switch rep.Resources[i].Name {
		case "disk":
			disk = &rep.Resources[i]
		case "pool":
			pool = &rep.Resources[i]
		case "unused":
			unused = &rep.Resources[i]
		}
	}
	if disk.SatAt != 0 || disk.PeakUtil != 1 {
		t.Errorf("disk sat=%v peak=%g", disk.SatAt, disk.PeakUtil)
	}
	if pool.SatAt != -1 || pool.PeakUtil != 0.25 {
		t.Errorf("pool sat=%v peak=%g, want never/0.25", pool.SatAt, pool.PeakUtil)
	}
	if unused.MeanUtil != 0 || unused.SatAt != -1 {
		t.Errorf("missing timeline not reported as idle: %+v", unused)
	}
	var buf bytes.Buffer
	if err := rep.Text(&buf); err != nil || !strings.Contains(buf.String(), "bottleneck: disk") {
		t.Errorf("Text output wrong: %v %q", err, buf.String())
	}
}

// TestWritePrometheusFormat checks the exposition format: sanitized
// names, TYPE lines, sorted deterministic output.
func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry(time.Millisecond)
	reg.Inc("machine.disk_reads", 7)
	reg.SetGauge("machine.outer_ring_utilization", 0.5)
	reg.AddBusy("machine.ip_busy_us", 0, time.Millisecond)
	var a, b bytes.Buffer
	if err := reg.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("repeated scrapes differ")
	}
	out := a.String()
	for _, want := range []string{
		"# TYPE machine_disk_reads counter\nmachine_disk_reads 7\n",
		"# TYPE machine_outer_ring_utilization gauge\nmachine_outer_ring_utilization 0.5\n",
		"# TYPE machine_ip_busy_us_total counter\nmachine_ip_busy_us_total 1000\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestServerEndpoints scrapes a live introspection server: /metrics in
// Prometheus format, /spans as the active tree, /timeline as JSON, and
// the pprof index.
func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry(time.Millisecond)
	reg.Inc("machine.broadcasts", 3)
	tr := NewTracker()
	q := tr.Begin(SpanQuery, nil, 0, "MC", "q0", 0, -1, -1)
	tr.Begin(SpanInstr, q, time.Millisecond, "IC1", "join", 0, 1, -1)

	srv, err := StartServer("127.0.0.1:0", reg, tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if m := get("/metrics"); !strings.Contains(m, "machine_broadcasts 3") {
		t.Errorf("/metrics missing counter:\n%s", m)
	}
	var tree struct {
		Active []struct {
			Kind     string `json:"kind"`
			Children []struct {
				Kind string `json:"kind"`
			} `json:"children"`
		} `json:"active"`
	}
	if err := json.Unmarshal([]byte(get("/spans")), &tree); err != nil {
		t.Fatalf("/spans not JSON: %v", err)
	}
	if len(tree.Active) != 1 || tree.Active[0].Kind != "query" ||
		len(tree.Active[0].Children) != 1 || tree.Active[0].Children[0].Kind != "instr" {
		t.Errorf("/spans tree wrong: %+v", tree.Active)
	}
	var tls struct {
		Timelines []struct {
			Metric string `json:"metric"`
		} `json:"timelines"`
	}
	if err := json.Unmarshal([]byte(get("/timeline")), &tls); err != nil {
		t.Fatalf("/timeline not JSON: %v", err)
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Error("/debug/pprof/ index missing profiles")
	}
}

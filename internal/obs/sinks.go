package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// NewSink builds a sink of the named format ("text", "jsonl", or
// "chrome") over w.
func NewSink(format string, w io.Writer) (Sink, error) {
	switch format {
	case "", "text":
		return NewTextSink(w), nil
	case "jsonl":
		return NewJSONLSink(w), nil
	case "chrome":
		return NewChromeSink(w), nil
	}
	return nil, fmt.Errorf("obs: unknown trace format %q (want text, jsonl, or chrome)", format)
}

// ---- Text ----

// TextSink writes the legacy human-readable trace: one line per event,
// prefixed with the timestamp. Each line is built in one buffer and
// written with a single Write, so concurrent writers sharing the
// destination cannot interleave within a line.
type TextSink struct {
	w   io.Writer
	buf []byte
}

// NewTextSink returns a text sink over w.
func NewTextSink(w io.Writer) *TextSink { return &TextSink{w: w} }

// Emit writes "[<time>] <msg>\n" in a single Write.
func (s *TextSink) Emit(ev Event) error {
	s.buf = fmt.Appendf(s.buf[:0], "[%12v] %s\n", ev.TS, ev.Msg)
	_, err := s.w.Write(s.buf)
	return err
}

// Close is a no-op (the sink does not own w).
func (s *TextSink) Close() error { return nil }

// ---- JSONL ----

// JSONLSink writes one JSON object per event, one per line.
type JSONLSink struct {
	w   io.Writer
	buf []byte
}

// NewJSONLSink returns a JSONL sink over w.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

type jsonEvent struct {
	TSNS  int64  `json:"ts_ns"`
	Kind  string `json:"kind"`
	Comp  string `json:"comp"`
	Query int    `json:"query"`
	Instr int    `json:"instr"`
	Page  int    `json:"page"`
	Bytes int    `json:"bytes"`
	Msg   string `json:"msg"`
	// Span fields, present only on span-begin / span-end events (see
	// span.go); their absence keeps non-span streams byte-identical to
	// the pre-span format.
	Span     int    `json:"span,omitempty"`
	Parent   int    `json:"parent,omitempty"`
	SpanKind string `json:"skind,omitempty"`
	DurUS    int64  `json:"dur_us,omitempty"`
}

// Emit writes the event as one JSON line.
func (s *JSONLSink) Emit(ev Event) error {
	je := jsonEvent{
		TSNS:  ev.TS.Nanoseconds(),
		Kind:  ev.Kind.String(),
		Comp:  ev.Comp,
		Query: ev.Query,
		Instr: ev.Instr,
		Page:  ev.Page,
		Bytes: ev.Bytes,
		Msg:   ev.Msg,
	}
	if ev.Span != 0 {
		je.Span = ev.Span
		je.Parent = ev.Parent
		je.SpanKind = ev.SK.String()
		je.DurUS = ev.Dur.Microseconds()
	}
	line, err := json.Marshal(je)
	if err != nil {
		return err
	}
	s.buf = append(append(s.buf[:0], line...), '\n')
	_, err = s.w.Write(s.buf)
	return err
}

// Close is a no-op.
func (s *JSONLSink) Close() error { return nil }

// ---- Chrome trace-event JSON ----

// ChromeSink writes the Chrome trace-event format (the JSON Object
// Format: {"traceEvents":[...]}), loadable in Perfetto or
// chrome://tracing. Each event becomes an instant event ("ph":"i") on
// a thread named after its component; timestamps are microseconds.
type ChromeSink struct {
	w      io.Writer
	buf    []byte
	tids   map[string]int
	opened bool
	closed bool
	first  bool
}

// NewChromeSink returns a Chrome trace sink over w.
func NewChromeSink(w io.Writer) *ChromeSink {
	return &ChromeSink{w: w, tids: map[string]int{}, first: true}
}

const chromePID = 1

func (s *ChromeSink) open() error {
	if s.opened {
		return nil
	}
	s.opened = true
	_, err := io.WriteString(s.w, `{"traceEvents":[`)
	return err
}

// tid maps a component name to a stable thread id, emitting the
// thread_name metadata event on first sight.
func (s *ChromeSink) tid(comp string) (int, error) {
	if id, ok := s.tids[comp]; ok {
		return id, nil
	}
	id := len(s.tids) + 1
	s.tids[comp] = id
	meta := fmt.Sprintf(
		`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
		chromePID, id, jsonString(comp))
	return id, s.writeRecord(meta)
}

func (s *ChromeSink) writeRecord(rec string) error {
	s.buf = s.buf[:0]
	if !s.first {
		s.buf = append(s.buf, ',', '\n')
	}
	s.first = false
	s.buf = append(s.buf, rec...)
	_, err := s.w.Write(s.buf)
	return err
}

// Emit writes one instant event; span ends become complete ("X")
// events so Perfetto renders real duration bars.
func (s *ChromeSink) Emit(ev Event) error {
	if err := s.open(); err != nil {
		return err
	}
	if ev.Kind == EvSpanBegin {
		// The matching span-end carries the full extent; emitting the
		// begin too would double every span as an instant marker.
		return nil
	}
	tid, err := s.tid(ev.Comp)
	if err != nil {
		return err
	}
	if ev.Kind == EvSpanEnd {
		rec := fmt.Sprintf(
			`{"name":%s,"ph":"X","ts":%.3f,"dur":%.3f,"pid":%d,"tid":%d,"args":{"msg":%s,"span":%d,"parent":%d,"query":%d,"instr":%d,"page":%d,"bytes":%d}}`,
			jsonString(ev.SK.String()), float64((ev.TS-ev.Dur).Nanoseconds())/1e3,
			float64(ev.Dur.Nanoseconds())/1e3,
			chromePID, tid, jsonString(ev.Msg), ev.Span, ev.Parent,
			ev.Query, ev.Instr, ev.Page, ev.Bytes)
		return s.writeRecord(rec)
	}
	rec := fmt.Sprintf(
		`{"name":%s,"ph":"i","s":"t","ts":%.3f,"pid":%d,"tid":%d,"args":{"msg":%s,"query":%d,"instr":%d,"page":%d,"bytes":%d}}`,
		jsonString(ev.Kind.String()), float64(ev.TS.Nanoseconds())/1e3,
		chromePID, tid, jsonString(ev.Msg), ev.Query, ev.Instr, ev.Page, ev.Bytes)
	return s.writeRecord(rec)
}

// Close writes the closing brackets; the output is valid JSON even
// when no event was emitted.
func (s *ChromeSink) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.open(); err != nil {
		return err
	}
	_, err := io.WriteString(s.w, "]}\n")
	return err
}

// jsonString encodes s as a JSON string literal.
func jsonString(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		return `""`
	}
	return string(b)
}

// sortedKeys returns m's keys in sorted order (shared by the metric
// export paths for deterministic output).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Package fault provides seeded, deterministic fault plans for the
// simulators: IP crashes at arbitrary virtual times, dropped and
// duplicated packets by packet class on either ring, and transient
// cache-frame read faults in the DIRECT simulator.
//
// A Plan draws from a single math/rand stream seeded explicitly, and
// the simulators consume that stream in virtual-event order, so a run
// with a given plan configuration is exactly reproducible: same seed,
// same faults, same recovery, same statistics. Because the Plan carries
// stream state, one Plan must not be shared between simulator runs —
// build a fresh Plan (same Config) per run.
package fault

import (
	"math/rand"
	"time"
)

// Class identifies a packet class for drop/duplication probabilities.
type Class uint8

const (
	// ClassInstruction: IC -> IP instruction packets on the outer ring.
	ClassInstruction Class = iota
	// ClassBroadcast: inner-page broadcasts and last-page markers,
	// drawn once per recipient (a broadcast can reach some processors
	// and miss others, which is what Section 4.2 recovery repairs).
	ClassBroadcast
	// ClassControl: IP -> IC control packets (need-inner, need-outer).
	ClassControl
	// ClassCompletion: IP -> IC completion packets carrying result
	// pages.
	ClassCompletion
	// ClassResult: IC -> IC and IC -> host result pages and
	// operand-complete markers on the outer ring. These flows use a
	// retransmitting channel, so a drop here costs latency and ring
	// bandwidth rather than data.
	ClassResult
	// ClassInner: MC <-> IC control traffic on the inner ring (also
	// retransmitted on loss).
	ClassInner

	numClasses
)

// String returns a short name for the class.
func (c Class) String() string {
	switch c {
	case ClassInstruction:
		return "instruction"
	case ClassBroadcast:
		return "broadcast"
	case ClassControl:
		return "control"
	case ClassCompletion:
		return "completion"
	case ClassResult:
		return "result"
	case ClassInner:
		return "inner"
	}
	return "unknown"
}

// IPCrash schedules instruction processor IP to crash at virtual time
// At. A crashed processor silently discards everything — instruction
// packets, broadcasts, in-flight computations — abandoning its buffered
// pages and IRC state, exactly like a board pulled from the ring.
type IPCrash struct {
	IP int
	At time.Duration
}

// Config describes a fault plan.
type Config struct {
	// Seed seeds the plan's random stream.
	Seed int64
	// Crashes lists processor crashes by virtual time.
	Crashes []IPCrash
	// Drop maps a packet class to its per-packet drop probability.
	Drop map[Class]float64
	// Dup maps a packet class to its per-packet duplication
	// probability. Duplicates cost an extra ring transit; the receiver
	// discards them by sequence number.
	Dup map[Class]float64
	// CacheReadFault is the per-read probability of a transient
	// cache-frame fault in the DIRECT simulator (the read is retried
	// after an extra frame-transfer delay).
	CacheReadFault float64
}

// CrashN returns n crashes covering IPs 0..n-1, staggered from start by
// step — a convenient shape for degradation-curve experiments.
func CrashN(n int, start, step time.Duration) []IPCrash {
	crashes := make([]IPCrash, 0, n)
	for i := 0; i < n; i++ {
		crashes = append(crashes, IPCrash{IP: i, At: start + time.Duration(i)*step})
	}
	return crashes
}

// UniformDrop returns a Drop map assigning probability p to every
// packet class.
func UniformDrop(p float64) map[Class]float64 {
	m := make(map[Class]float64, int(numClasses))
	for c := Class(0); c < numClasses; c++ {
		m[c] = p
	}
	return m
}

// Plan is a live fault plan: Config plus the seeded random stream. All
// draw methods are nil-safe (a nil *Plan never injects anything), so
// simulator hot paths need no separate enable check.
type Plan struct {
	cfg Config
	rng *rand.Rand
}

// New builds a Plan from cfg with a fresh random stream.
func New(cfg Config) *Plan {
	return &Plan{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Seed returns the plan's seed.
func (p *Plan) Seed() int64 {
	if p == nil {
		return 0
	}
	return p.cfg.Seed
}

// Crashes returns the scheduled processor crashes.
func (p *Plan) Crashes() []IPCrash {
	if p == nil {
		return nil
	}
	return p.cfg.Crashes
}

func (p *Plan) draw(prob float64) bool {
	if p == nil || prob <= 0 {
		return false
	}
	return p.rng.Float64() < prob
}

// Drop reports whether the next packet of class c is lost.
func (p *Plan) Drop(c Class) bool {
	if p == nil {
		return false
	}
	return p.draw(p.cfg.Drop[c])
}

// Dup reports whether the next packet of class c is duplicated.
func (p *Plan) Dup(c Class) bool {
	if p == nil {
		return false
	}
	return p.draw(p.cfg.Dup[c])
}

// CacheFault reports whether the next DIRECT cache read suffers a
// transient frame fault.
func (p *Plan) CacheFault() bool {
	if p == nil {
		return false
	}
	return p.draw(p.cfg.CacheReadFault)
}

package fault

import (
	"testing"
	"time"
)

func TestNilPlanNeverInjects(t *testing.T) {
	var p *Plan
	for c := Class(0); c < numClasses; c++ {
		if p.Drop(c) || p.Dup(c) {
			t.Fatalf("nil plan injected a %s fault", c)
		}
	}
	if p.CacheFault() {
		t.Fatal("nil plan injected a cache fault")
	}
	if p.Crashes() != nil || p.Seed() != 0 {
		t.Fatal("nil plan has crashes or a seed")
	}
}

func TestDeterministicStream(t *testing.T) {
	cfg := Config{Seed: 42, Drop: UniformDrop(0.3), Dup: map[Class]float64{ClassResult: 0.2}, CacheReadFault: 0.1}
	a, b := New(cfg), New(cfg)
	for i := 0; i < 1000; i++ {
		c := Class(i % int(numClasses))
		if a.Drop(c) != b.Drop(c) || a.Dup(c) != b.Dup(c) || a.CacheFault() != b.CacheFault() {
			t.Fatalf("same-seed plans diverged at draw %d", i)
		}
	}
}

func TestDropRateRoughlyHonored(t *testing.T) {
	p := New(Config{Seed: 7, Drop: map[Class]float64{ClassInstruction: 0.25}})
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if p.Drop(ClassInstruction) {
			hits++
		}
	}
	got := float64(hits) / n
	if got < 0.22 || got > 0.28 {
		t.Errorf("drop rate %.3f, want ~0.25", got)
	}
	// A class with no configured probability never drops, and checking
	// it consumes no draw (zero-probability checks must not perturb the
	// stream seen by configured classes).
	a := New(Config{Seed: 7, Drop: map[Class]float64{ClassInstruction: 0.25}})
	b := New(Config{Seed: 7, Drop: map[Class]float64{ClassInstruction: 0.25}})
	for i := 0; i < 100; i++ {
		if a.Drop(ClassBroadcast) {
			t.Fatal("class with no configured probability dropped a packet")
		}
		if a.Drop(ClassInstruction) != b.Drop(ClassInstruction) {
			t.Fatal("zero-probability check consumed a random draw")
		}
	}
}

func TestCrashN(t *testing.T) {
	crashes := CrashN(3, 10*time.Millisecond, 5*time.Millisecond)
	if len(crashes) != 3 {
		t.Fatalf("got %d crashes, want 3", len(crashes))
	}
	for i, cr := range crashes {
		if cr.IP != i {
			t.Errorf("crash %d targets IP %d", i, cr.IP)
		}
		want := 10*time.Millisecond + time.Duration(i)*5*time.Millisecond
		if cr.At != want {
			t.Errorf("crash %d at %v, want %v", i, cr.At, want)
		}
	}
	if CrashN(0, 0, 0) == nil {
		// zero-length non-nil slice is fine; nothing to assert
		t.Log("CrashN(0) returned nil")
	}
}

func TestClassString(t *testing.T) {
	seen := map[string]bool{}
	for c := Class(0); c < numClasses; c++ {
		s := c.String()
		if s == "unknown" || seen[s] {
			t.Errorf("class %d has bad or duplicate name %q", c, s)
		}
		seen[s] = true
	}
	if numClasses.String() != "unknown" {
		t.Error("out-of-range class has a name")
	}
}

package workload

import (
	"testing"

	"dfdbm/internal/query"
	"dfdbm/internal/relation"
)

func TestPaperSchemaIs100Bytes(t *testing.T) {
	if got := PaperSchema().TupleLen(); got != 100 {
		t.Errorf("tuple length = %d, want 100", got)
	}
}

func TestFullScaleDatabaseSize(t *testing.T) {
	cat, err := BuildDatabase(Config{Seed: 1})
	if err != nil {
		t.Fatalf("BuildDatabase: %v", err)
	}
	if cat.Len() != 15 {
		t.Errorf("database has %d relations, want 15", cat.Len())
	}
	total := 0
	for _, name := range RelationNames() {
		r, err := cat.Get(name)
		if err != nil {
			t.Fatalf("Get(%s): %v", name, err)
		}
		total += r.Cardinality()
	}
	if total != 55000 {
		t.Errorf("total tuples = %d, want 55000 (5.5 MB of 100-byte tuples)", total)
	}
	// Byte footprint including page headers should be a little over 5.5 MB.
	if b := cat.TotalBytes(); b < 5_500_000 || b > 5_600_000 {
		t.Errorf("TotalBytes = %d, want ≈5.5e6", b)
	}
}

func TestScaledDatabase(t *testing.T) {
	cat, err := BuildDatabase(Config{Seed: 1, Scale: 0.1, PageSize: 1000})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := cat.Get("r1")
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cardinality() != 800 {
		t.Errorf("scaled r1 has %d tuples, want 800", r1.Cardinality())
	}
	if r1.PageSize() != 1000 {
		t.Errorf("page size = %d, want 1000", r1.PageSize())
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, err := BuildDatabase(Config{Seed: 7, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildDatabase(Config{Seed: 7, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range RelationNames() {
		ra, _ := a.Get(name)
		rb, _ := b.Get(name)
		if !ra.EqualMultiset(rb) {
			t.Errorf("relation %s differs between identical configs", name)
		}
	}
	c, err := BuildDatabase(Config{Seed: 8, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	ra, _ := a.Get("r1")
	rc, _ := c.Get("r1")
	if ra.EqualMultiset(rc) {
		t.Error("different seeds produced identical data")
	}
}

func TestQueryMixMatchesPaper(t *testing.T) {
	cat, qs, err := Build(Config{Seed: 1, Scale: 0.02})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if cat.Len() != 15 || len(qs) != 10 {
		t.Fatalf("got %d relations, %d queries", cat.Len(), len(qs))
	}
	type mix struct{ joins, restricts int }
	var got []mix
	for _, q := range qs {
		s := query.ShapeOf(q.Root())
		got = append(got, mix{s.Joins, s.Restricts})
	}
	want := []mix{
		{0, 1}, {0, 1},
		{1, 2}, {1, 2}, {1, 2},
		{2, 3}, {2, 3},
		{3, 4},
		{4, 4},
		{5, 6},
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("query %d shape = %+v, want %+v", i+1, got[i], want[i])
		}
	}
}

func TestBenchmarkQueriesExecute(t *testing.T) {
	cat, qs, err := Build(Config{Seed: 1, Scale: 0.05, PageSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		out, err := query.ExecuteSerial(cat, q, 0)
		if err != nil {
			t.Fatalf("query %d: %v", i+1, err)
		}
		if out == nil {
			t.Fatalf("query %d returned nil", i+1)
		}
		// Queries 1 and 2 are plain restricts; they must keep something
		// at this scale.
		if i < 2 && out.Cardinality() == 0 {
			t.Errorf("query %d produced no tuples", i+1)
		}
	}
}

func TestJoinPair(t *testing.T) {
	outer, inner, err := JoinPair(3, 1000, 120, 80)
	if err != nil {
		t.Fatal(err)
	}
	if outer.Cardinality() != 120 || inner.Cardinality() != 80 {
		t.Errorf("cardinalities = %d, %d", outer.Cardinality(), inner.Cardinality())
	}
	if !outer.Schema().Equal(PaperSchema()) {
		t.Error("JoinPair schema differs from paper schema")
	}
}

func TestDuplicateHeavy(t *testing.T) {
	r, err := DuplicateHeavy(3, 1000, 500)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cardinality() != 500 {
		t.Errorf("cardinality = %d, want 500", r.Cardinality())
	}
	// The (k1, k2) projection has at most 400 distinct values, so 500
	// rows must contain duplicates.
	seen := map[[2]int64]bool{}
	_ = r.Each(func(tup relation.Tuple) bool {
		seen[[2]int64{tup[1].Int, tup[2].Int}] = true
		return true
	})
	if len(seen) >= 500 {
		t.Errorf("projection has %d distinct pairs out of 500 rows; wanted duplication", len(seen))
	}
}

func TestRelationNames(t *testing.T) {
	names := RelationNames()
	if len(names) != NumRelations || names[0] != "r1" || names[14] != "r15" {
		t.Errorf("RelationNames = %v", names)
	}
}

func TestTinyScaleClampsToOneTuple(t *testing.T) {
	cat, err := BuildDatabase(Config{Seed: 1, Scale: 0.000001})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range RelationNames() {
		r, _ := cat.Get(name)
		if r.Cardinality() < 1 {
			t.Errorf("relation %s is empty at tiny scale", name)
		}
	}
}

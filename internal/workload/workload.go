// Package workload builds the paper's benchmark: a relational database
// of 15 relations with a combined size of 5.5 megabytes, and the ten-
// query mix of Section 3.2 — 2 queries with 1 restrict only, 3 queries
// with 1 join and 2 restricts, 2 queries with 2 joins and 3 restricts,
// 1 query with 3 joins and 4 restricts, 1 query with 4 joins and 4
// restricts, and 1 query with 5 joins and 6 restricts.
//
// The original database contents are lost; this package generates a
// deterministic synthetic equivalent. Every tuple is 100 bytes (the
// tuple size of the paper's Section 3.3 analysis), join keys are drawn
// from bounded domains so that selectivities shrink up the query tree,
// and relation cardinalities sum to exactly 55,000 tuples — 5.5 MB of
// tuple data at full scale.
package workload

import (
	"fmt"
	"math/rand"

	"dfdbm/internal/catalog"
	"dfdbm/internal/query"
	"dfdbm/internal/relation"
)

// Config parameterizes database generation.
type Config struct {
	// Seed drives the deterministic generator. Two equal configs build
	// byte-identical databases.
	Seed int64
	// PageSize is the page size of every relation. Defaults to
	// relation.DefaultPageSize (16 KB, the DIRECT operand size).
	PageSize int
	// Scale multiplies every relation's cardinality. 1.0 reproduces the
	// paper's 5.5 MB database; tests use smaller scales. Defaults to 1.0.
	Scale float64
}

func (c Config) withDefaults() Config {
	if c.PageSize == 0 {
		c.PageSize = relation.DefaultPageSize
	}
	if c.Scale == 0 {
		c.Scale = 1.0
	}
	return c
}

// relTuples holds the full-scale cardinality of each of the 15
// relations; the values sum to 55,000 (5.5 MB of 100-byte tuples).
var relTuples = []int{
	8000, 7000, 6000, 5000, 5000,
	4000, 4000, 3500, 3000, 2500,
	2000, 1800, 1500, 1000, 700,
}

// Key domains: ki is uniform on [0, keyDomain[i]). Wider domains deeper
// in a join chain keep intermediate results from exploding.
var keyDomains = [4]int{100, 200, 400, 800}

// ValDomain is the exclusive upper bound of the selection attribute
// "val"; a predicate `val < v` has selectivity v/ValDomain.
const ValDomain = 1000

// NumRelations is the number of database relations (the paper's 15).
const NumRelations = 15

// RelationNames returns the names r1..r15.
func RelationNames() []string {
	out := make([]string, NumRelations)
	for i := range out {
		out[i] = fmt.Sprintf("r%d", i+1)
	}
	return out
}

// PaperSchema returns the shared 100-byte-tuple schema:
//
//	id  int32   unique row id
//	k1..k4 int32 join keys on bounded domains
//	val int32   uniform selection attribute on [0, ValDomain)
//	pad string  filler bringing the tuple to exactly 100 bytes
func PaperSchema() *relation.Schema {
	return relation.MustSchema(
		relation.Attr{Name: "id", Type: relation.Int32},
		relation.Attr{Name: "k1", Type: relation.Int32},
		relation.Attr{Name: "k2", Type: relation.Int32},
		relation.Attr{Name: "k3", Type: relation.Int32},
		relation.Attr{Name: "k4", Type: relation.Int32},
		relation.Attr{Name: "val", Type: relation.Int32},
		relation.Attr{Name: "pad", Type: relation.String, Width: 76},
	)
}

// BuildDatabase generates the 15-relation database.
func BuildDatabase(cfg Config) (*catalog.Catalog, error) {
	cfg = cfg.withDefaults()
	schema := PaperSchema()
	if schema.TupleLen() != 100 {
		return nil, fmt.Errorf("workload: schema is %d bytes per tuple, want 100", schema.TupleLen())
	}
	cat := catalog.New()
	for i, name := range RelationNames() {
		n := int(float64(relTuples[i]) * cfg.Scale)
		if n < 1 {
			n = 1
		}
		r, err := relation.New(name, schema, cfg.PageSize)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed*31 + int64(i+1)))
		tup := make(relation.Tuple, 7)
		for row := 0; row < n; row++ {
			tup[0] = relation.IntVal(int64(row))
			tup[1] = relation.IntVal(int64(rng.Intn(keyDomains[0])))
			tup[2] = relation.IntVal(int64(rng.Intn(keyDomains[1])))
			tup[3] = relation.IntVal(int64(rng.Intn(keyDomains[2])))
			tup[4] = relation.IntVal(int64(rng.Intn(keyDomains[3])))
			tup[5] = relation.IntVal(int64(rng.Intn(ValDomain)))
			tup[6] = relation.StringVal("x")
			if err := r.Insert(tup); err != nil {
				return nil, err
			}
		}
		cat.Put(r)
	}
	return cat, nil
}

// QueryTexts returns the ten benchmark queries in the paper's mix, in
// the surface syntax of internal/query.
func QueryTexts() []string {
	return []string{
		// 2 queries with 1 restrict operator only.
		`restrict(r1, val < 100)`,
		`restrict(r9, val < 300)`,
		// 3 queries with 1 join and 2 restricts each. Selectivities are
		// chosen so that intermediate relations are comparable in volume
		// to the source relations, the regime in which the paper's
		// page-level pipelining pays off.
		`join(restrict(r2, val < 120), restrict(r3, val < 120), k1 = k1)`,
		`join(restrict(r4, val < 150), restrict(r10, val < 150), k1 = k1)`,
		`join(restrict(r5, val < 120), restrict(r11, val < 150), k2 = k2)`,
		// 2 queries with 2 joins and 3 restricts each.
		`join(join(restrict(r1, val < 100), restrict(r6, val < 100), k1 = k1), restrict(r12, val < 150), k2 = k2)`,
		`join(join(restrict(r7, val < 100), restrict(r8, val < 100), k1 = k1), restrict(r13, val < 150), k2 = k2)`,
		// 1 query with 3 joins and 4 restricts.
		`join(join(join(restrict(r2, val < 80), restrict(r9, val < 80), k1 = k1), restrict(r14, val < 250), k2 = k2), restrict(r5, val < 100), k3 = k3)`,
		// 1 query with 4 joins and 4 restricts.
		`join(join(join(join(restrict(r3, val < 80), restrict(r10, val < 100), k1 = k1), restrict(r12, val < 150), k2 = k2), restrict(r6, val < 100), k3 = k3), r15, k4 = k4)`,
		// 1 query with 5 joins and 6 restricts.
		`join(join(join(join(join(restrict(r4, val < 80), restrict(r11, val < 100), k1 = k1), restrict(r13, val < 150), k2 = k2), restrict(r7, val < 100), k3 = k3), restrict(r14, val < 250), k4 = k4), restrict(r15, val < 500), k1 = k1)`,
	}
}

// BuildQueries parses and binds the ten benchmark queries against a
// database built by BuildDatabase.
func BuildQueries(cat *catalog.Catalog) ([]*query.Tree, error) {
	texts := QueryTexts()
	out := make([]*query.Tree, len(texts))
	for i, src := range texts {
		root, err := query.Parse(src)
		if err != nil {
			return nil, fmt.Errorf("workload: query %d: %w", i+1, err)
		}
		t, err := query.Bind(root, cat)
		if err != nil {
			return nil, fmt.Errorf("workload: query %d: %w", i+1, err)
		}
		out[i] = t
	}
	return out, nil
}

// Build generates the database and binds the benchmark queries.
func Build(cfg Config) (*catalog.Catalog, []*query.Tree, error) {
	cat, err := BuildDatabase(cfg)
	if err != nil {
		return nil, nil, err
	}
	qs, err := BuildQueries(cat)
	if err != nil {
		return nil, nil, err
	}
	return cat, qs, nil
}

// JoinPair generates two relations of the given cardinalities sharing
// the 100-byte schema, for the join-algorithm comparison benchmark
// (nested loops versus sort-merge, Section 2.1).
func JoinPair(seed int64, pageSize, outerN, innerN int) (outer, inner *relation.Relation, err error) {
	schema := PaperSchema()
	mk := func(name string, n int, salt int64) (*relation.Relation, error) {
		r, err := relation.New(name, schema, pageSize)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed + salt))
		for row := 0; row < n; row++ {
			if err := r.Insert(relation.Tuple{
				relation.IntVal(int64(row)),
				relation.IntVal(int64(rng.Intn(keyDomains[0]))),
				relation.IntVal(int64(rng.Intn(keyDomains[1]))),
				relation.IntVal(int64(rng.Intn(keyDomains[2]))),
				relation.IntVal(int64(rng.Intn(keyDomains[3]))),
				relation.IntVal(int64(rng.Intn(ValDomain))),
				relation.StringVal("x"),
			}); err != nil {
				return nil, err
			}
		}
		return r, nil
	}
	outer, err = mk("outer", outerN, 1)
	if err != nil {
		return nil, nil, err
	}
	inner, err = mk("inner", innerN, 2)
	if err != nil {
		return nil, nil, err
	}
	return outer, inner, nil
}

// DuplicateHeavy generates a relation in which the (k1, k2) projection
// has heavy duplication, for the parallel-project benchmark (Section 5's
// open problem).
func DuplicateHeavy(seed int64, pageSize, n int) (*relation.Relation, error) {
	schema := PaperSchema()
	r, err := relation.New("dups", schema, pageSize)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	for row := 0; row < n; row++ {
		if err := r.Insert(relation.Tuple{
			relation.IntVal(int64(row)),
			relation.IntVal(int64(rng.Intn(20))),
			relation.IntVal(int64(rng.Intn(20))),
			relation.IntVal(int64(rng.Intn(keyDomains[2]))),
			relation.IntVal(int64(rng.Intn(keyDomains[3]))),
			relation.IntVal(int64(rng.Intn(ValDomain))),
			relation.StringVal("x"),
		}); err != nil {
			return nil, err
		}
	}
	return r, nil
}

package workload

import (
	"fmt"
	"math/rand"

	"dfdbm/internal/catalog"
	"dfdbm/internal/pred"
	"dfdbm/internal/query"
	"dfdbm/internal/relation"
)

// RandomQuery generates a random, always-bindable query tree over a
// database built by BuildDatabase. The generator drives the
// cross-engine equivalence fuzz tests: any tree it produces must
// compute the same multiset on the serial executor, the data-flow
// engine at every granularity, and the ring machine.
//
// joins bounds the join count (keeping intermediate sizes sane);
// depth bounds tree height. The same (rng state) always yields the
// same tree.
func RandomQuery(rng *rand.Rand, cat *catalog.Catalog, joins, depth int) (*query.Tree, error) {
	g := &randGen{rng: rng, joinsLeft: joins}
	root := g.node(depth)
	// Wrap a project on top sometimes, to cover duplicate elimination.
	if rng.Intn(3) == 0 {
		root = query.Project(root, g.projCols()...)
	}
	t, err := query.Bind(root, cat)
	if err != nil {
		return nil, fmt.Errorf("workload: generated unbindable tree %v: %w", root, err)
	}
	return t, nil
}

type randGen struct {
	rng       *rand.Rand
	joinsLeft int
}

// node produces a subtree whose output schema is always the paper
// schema extended by join concatenation — predicates reference only k*
// and val attributes, which survive every join on the outer side.
func (g *randGen) node(depth int) *query.Node {
	if depth <= 1 {
		return g.leaf()
	}
	roll := g.rng.Intn(10)
	switch {
	case roll < 5: // restrict
		return query.Restrict(g.node(depth-1), g.pred())
	case roll < 8 && g.joinsLeft > 0: // join
		g.joinsLeft--
		key := fmt.Sprintf("k%d", g.rng.Intn(4)+1)
		// Restrict both sides so the cross product stays small.
		outer := query.Restrict(g.node(depth-1), g.selPred(150))
		inner := query.Restrict(g.leaf(), g.selPred(150))
		return query.Join(outer, inner, pred.Equi(key, key))
	default:
		return g.leaf()
	}
}

func (g *randGen) leaf() *query.Node {
	names := RelationNames()
	return query.Scan(names[g.rng.Intn(len(names))])
}

// selPred returns `val < cut` with cut below the given bound.
func (g *randGen) selPred(bound int) pred.Pred {
	return pred.Compare{
		Attr:  "val",
		Op:    pred.LT,
		Const: relation.IntVal(int64(g.rng.Intn(bound) + 20)),
	}
}

// pred returns a random predicate over the always-present attributes.
func (g *randGen) pred() pred.Pred {
	attr := fmt.Sprintf("k%d", g.rng.Intn(4)+1)
	cut := int64(g.rng.Intn(keyDomains[3]))
	ops := []pred.Op{pred.LT, pred.LE, pred.GT, pred.GE, pred.NE}
	base := pred.Compare{Attr: attr, Op: ops[g.rng.Intn(len(ops))], Const: relation.IntVal(cut)}
	switch g.rng.Intn(4) {
	case 0:
		return pred.Conj(base, g.selPred(600))
	case 1:
		return pred.Disj(base, pred.Compare{
			Attr: "val", Op: pred.LT, Const: relation.IntVal(int64(g.rng.Intn(50))),
		})
	case 2:
		return pred.Not{Kid: base}
	default:
		return base
	}
}

// projCols picks a non-empty subset of the always-present attributes.
func (g *randGen) projCols() []string {
	all := []string{"k1", "k2", "k3", "k4", "val"}
	n := g.rng.Intn(3) + 1
	g.rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	return all[:n]
}

package workload

import (
	"math/rand"
	"testing"

	"dfdbm/internal/query"
)

func TestRandomQueryAlwaysBindable(t *testing.T) {
	cat, err := BuildDatabase(Config{Seed: 3, Scale: 0.02, PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		q, err := RandomQuery(rng, cat, 3, 5)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if q.NumNodes() < 1 {
			t.Fatalf("seed %d: empty tree", seed)
		}
	}
}

func TestRandomQueryRespectsJoinBound(t *testing.T) {
	cat, err := BuildDatabase(Config{Seed: 3, Scale: 0.02, PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		maxJoins := int(seed % 4)
		q, err := RandomQuery(rng, cat, maxJoins, 6)
		if err != nil {
			t.Fatal(err)
		}
		if got := query.ShapeOf(q.Root()).Joins; got > maxJoins {
			t.Errorf("seed %d: %d joins, bound %d", seed, got, maxJoins)
		}
	}
}

func TestRandomQueryExecutes(t *testing.T) {
	cat, err := BuildDatabase(Config{Seed: 3, Scale: 0.02, PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		q, err := RandomQuery(rng, cat, 2, 4)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := query.ExecuteSerial(cat, q, 0); err != nil {
			t.Errorf("seed %d: serial execution failed: %v (query %v)", seed, err, q)
		}
	}
}

func TestRandomQueryVariety(t *testing.T) {
	cat, err := BuildDatabase(Config{Seed: 3, Scale: 0.02, PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	var joins, restricts, projects int
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		q, err := RandomQuery(rng, cat, 2, 5)
		if err != nil {
			t.Fatal(err)
		}
		s := query.ShapeOf(q.Root())
		joins += s.Joins
		restricts += s.Restricts
		projects += s.Projects
	}
	if joins == 0 || restricts == 0 || projects == 0 {
		t.Errorf("generator lacks variety: %d joins, %d restricts, %d projects over 100 trees",
			joins, restricts, projects)
	}
}

package relation

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// paperSchema is a 100-byte tuple schema: the tuple size assumed in the
// paper's Section 3.3 bandwidth analysis.
func paperSchema(t testing.TB) *Schema {
	t.Helper()
	s, err := NewSchema(
		Attr{Name: "id", Type: Int32},
		Attr{Name: "a", Type: Int32},
		Attr{Name: "b", Type: Int32},
		Attr{Name: "pad", Type: String, Width: 88},
	)
	if err != nil {
		t.Fatalf("paperSchema: %v", err)
	}
	if s.TupleLen() != 100 {
		t.Fatalf("paperSchema tuple length = %d, want 100", s.TupleLen())
	}
	return s
}

func TestPageCapacityMatchesPaper(t *testing.T) {
	// 1000-byte pages of 100-byte tuples: the paper says ten tuples per
	// page; our 16-byte header costs one slot, so nine fit. The analysis
	// package accounts for this explicitly.
	p := MustNewPage(AnalysisPageSize, 100)
	if got := p.Capacity(); got != 9 {
		t.Errorf("Capacity = %d, want 9 (1000-byte page, 16-byte header)", got)
	}
	big := MustNewPage(DefaultPageSize, 100)
	if got := big.Capacity(); got != 163 {
		t.Errorf("16K page capacity = %d, want 163", got)
	}
}

func TestPageAppendAndRead(t *testing.T) {
	s := paperSchema(t)
	p := MustNewPage(AnalysisPageSize, s.TupleLen())
	for i := 0; i < p.Capacity(); i++ {
		tup := Tuple{IntVal(int64(i)), IntVal(int64(i * 2)), IntVal(int64(i * 3)), StringVal("x")}
		if err := p.AppendTuple(s, tup); err != nil {
			t.Fatalf("AppendTuple(%d): %v", i, err)
		}
	}
	if !p.Full() {
		t.Error("page not Full after Capacity appends")
	}
	if err := p.AppendTuple(s, Tuple{IntVal(0), IntVal(0), IntVal(0), StringVal("")}); err == nil {
		t.Error("append to full page succeeded, want error")
	}
	for i := 0; i < p.TupleCount(); i++ {
		tup, err := p.Tuple(i, s)
		if err != nil {
			t.Fatalf("Tuple(%d): %v", i, err)
		}
		if tup[0].Int != int64(i) || tup[1].Int != int64(i*2) {
			t.Errorf("Tuple(%d) = %v", i, tup)
		}
	}
}

func TestPageValidation(t *testing.T) {
	if _, err := NewPage(50, 100); err == nil {
		t.Error("NewPage smaller than one tuple succeeded")
	}
	if _, err := NewPage(1000, 0); err == nil {
		t.Error("NewPage with zero tuple length succeeded")
	}
	p := MustNewPage(1000, 100)
	if err := p.AppendRaw(make([]byte, 99)); err == nil {
		t.Error("AppendRaw with wrong length succeeded")
	}
	s := MustSchema(Attr{Name: "a", Type: Int32})
	if err := p.AppendTuple(s, Tuple{IntVal(1)}); err == nil {
		t.Error("AppendTuple with mismatched schema length succeeded")
	}
}

func TestPageWireSize(t *testing.T) {
	p := MustNewPage(1000, 100)
	if got := p.WireSize(); got != PageHeaderLen {
		t.Errorf("empty WireSize = %d, want %d", got, PageHeaderLen)
	}
	_ = p.AppendRaw(make([]byte, 100))
	if got := p.WireSize(); got != PageHeaderLen+100 {
		t.Errorf("WireSize = %d, want %d", got, PageHeaderLen+100)
	}
}

func TestPageMarshalRoundTrip(t *testing.T) {
	s := paperSchema(t)
	p := MustNewPage(AnalysisPageSize, s.TupleLen())
	for i := 0; i < 5; i++ {
		if err := p.AppendTuple(s, Tuple{IntVal(int64(i)), IntVal(0), IntVal(0), StringVal("t")}); err != nil {
			t.Fatal(err)
		}
	}
	blob := p.Marshal()
	if len(blob) != p.WireSize() {
		t.Errorf("Marshal length = %d, want WireSize %d", len(blob), p.WireSize())
	}
	q, err := UnmarshalPage(blob)
	if err != nil {
		t.Fatalf("UnmarshalPage: %v", err)
	}
	if q.TupleCount() != p.TupleCount() || q.PageSize() != p.PageSize() || q.TupleLen() != p.TupleLen() {
		t.Errorf("round trip mismatch: %+v vs %+v", q, p)
	}
	for i := 0; i < p.TupleCount(); i++ {
		if !bytes.Equal(p.RawTuple(i), q.RawTuple(i)) {
			t.Errorf("tuple %d differs after round trip", i)
		}
	}
}

func TestUnmarshalPageErrors(t *testing.T) {
	p := MustNewPage(1000, 100)
	_ = p.AppendRaw(make([]byte, 100))
	good := p.Marshal()

	cases := []struct {
		name string
		blob []byte
	}{
		{"short", good[:10]},
		{"bad magic", append([]byte{1, 2, 3, 4}, good[4:]...)},
		{"truncated payload", good[:len(good)-1]},
		{"extra payload", append(append([]byte(nil), good...), 0)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := UnmarshalPage(c.blob); err == nil {
				t.Error("UnmarshalPage succeeded, want error")
			}
		})
	}
}

func TestPageFillFrom(t *testing.T) {
	dst := MustNewPage(1000, 100)
	src := MustNewPage(1000, 100)
	for i := 0; i < 4; i++ {
		raw := make([]byte, 100)
		raw[0] = byte(i + 1)
		if err := src.AppendRaw(raw); err != nil {
			t.Fatal(err)
		}
	}
	// dst already has 7 tuples; capacity 9 leaves room for 2.
	for i := 0; i < 7; i++ {
		if err := dst.AppendRaw(make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	moved, err := dst.FillFrom(src)
	if err != nil {
		t.Fatalf("FillFrom: %v", err)
	}
	if moved != 2 || dst.TupleCount() != 9 || src.TupleCount() != 2 {
		t.Errorf("moved=%d dst=%d src=%d; want 2, 9, 2", moved, dst.TupleCount(), src.TupleCount())
	}
	if !dst.Full() {
		t.Error("dst not full after FillFrom")
	}
	other := MustNewPage(1000, 50)
	if _, err := other.FillFrom(src); err == nil {
		t.Error("FillFrom with mismatched tuple length succeeded")
	}
}

func TestPageClone(t *testing.T) {
	p := MustNewPage(1000, 100)
	raw := make([]byte, 100)
	raw[0] = 7
	_ = p.AppendRaw(raw)
	q := p.Clone()
	q.RawTuple(0)[0] = 9
	if p.RawTuple(0)[0] != 7 {
		t.Error("Clone shares storage with original")
	}
}

func TestPaginator(t *testing.T) {
	g, err := NewPaginator(AnalysisPageSize, 100)
	if err != nil {
		t.Fatalf("NewPaginator: %v", err)
	}
	var pages []*Page
	total := 20
	for i := 0; i < total; i++ {
		raw := make([]byte, 100)
		raw[0] = byte(i)
		p, err := g.Add(raw)
		if err != nil {
			t.Fatalf("Add: %v", err)
		}
		if p != nil {
			pages = append(pages, p)
		}
	}
	if last := g.Flush(); last != nil {
		pages = append(pages, last)
	}
	if g.Flush() != nil {
		t.Error("second Flush returned a page")
	}
	n := 0
	for i, p := range pages {
		if i < len(pages)-1 && !p.Full() {
			t.Errorf("page %d not full", i)
		}
		n += p.TupleCount()
	}
	if n != total {
		t.Errorf("paginator emitted %d tuples, want %d", n, total)
	}
}

func TestPaginatorRejectsBadSizes(t *testing.T) {
	if _, err := NewPaginator(10, 100); err == nil {
		t.Error("NewPaginator with tiny page succeeded")
	}
}

func TestQuickPaginatorConservesTuples(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)
		g, err := NewPaginator(500, 20)
		if err != nil {
			return false
		}
		var inputs [][]byte
		var pages []*Page
		for i := 0; i < n; i++ {
			raw := make([]byte, 20)
			rng.Read(raw)
			inputs = append(inputs, raw)
			p, err := g.Add(raw)
			if err != nil {
				return false
			}
			if p != nil {
				pages = append(pages, p)
			}
		}
		if last := g.Flush(); last != nil {
			pages = append(pages, last)
		}
		var out [][]byte
		for _, p := range pages {
			p.EachRaw(func(raw []byte) bool {
				out = append(out, append([]byte(nil), raw...))
				return true
			})
		}
		if len(out) != len(inputs) {
			return false
		}
		for i := range out {
			if !bytes.Equal(out[i], inputs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

package relation

import (
	"encoding/binary"
	"fmt"
)

// PageHeaderLen is the number of bytes of header carried by every page
// when it is serialized or moved through an interconnection network. The
// header identifies the page and lets a receiver decode it without out-
// of-band information.
const PageHeaderLen = 16

// pageMagic marks serialized pages.
const pageMagic uint32 = 0xDF_DB_19_79

// DefaultPageSize is the operand page size assumed for DIRECT in the
// paper's Section 4 (16 KB operands, which an LSI-11 reads in 33 ms).
const DefaultPageSize = 16 * 1024

// AnalysisPageSize is the 1000-byte page used in the Section 3.3
// arbitration-network bandwidth analysis (ten 100-byte tuples per page).
const AnalysisPageSize = 1000

// Page is a fixed-capacity container of fixed-length tuples: the unit of
// storage, transfer, and — at page-level granularity — scheduling. Pages
// begin partially filled and may be compressed together (FillFrom) by an
// instruction controller before being stored, as described in the paper.
type Page struct {
	size     int // serialized size budget: header + payload capacity
	tupleLen int
	capBytes int    // payload capacity in bytes: Capacity()*tupleLen, precomputed
	data     []byte // encoded tuples, len == TupleCount()*tupleLen
	pooled   bool   // came from a PagePool and may be recycled by Put
}

// NewPage returns an empty page that serializes to at most pageSize bytes
// and holds tuples of tupleLen bytes. pageSize must leave room for the
// header and at least one tuple.
func NewPage(pageSize, tupleLen int) (*Page, error) {
	if tupleLen <= 0 {
		return nil, fmt.Errorf("relation: tuple length %d must be positive", tupleLen)
	}
	if pageSize < PageHeaderLen+tupleLen {
		return nil, fmt.Errorf("relation: page size %d too small for header plus one %d-byte tuple", pageSize, tupleLen)
	}
	capBytes := (pageSize - PageHeaderLen) / tupleLen * tupleLen
	return &Page{size: pageSize, tupleLen: tupleLen, capBytes: capBytes}, nil
}

// MustNewPage is NewPage but panics on error.
func MustNewPage(pageSize, tupleLen int) *Page {
	p, err := NewPage(pageSize, tupleLen)
	if err != nil {
		panic(err)
	}
	return p
}

// PageSize returns the serialized size budget of the page.
func (p *Page) PageSize() int { return p.size }

// TupleLen returns the byte length of tuples stored in the page.
func (p *Page) TupleLen() int { return p.tupleLen }

// Capacity returns the maximum number of tuples the page can hold.
func (p *Page) Capacity() int { return (p.size - PageHeaderLen) / p.tupleLen }

// TupleCount returns the number of tuples currently in the page.
func (p *Page) TupleCount() int { return len(p.data) / p.tupleLen }

// Full reports whether the page has no free slots.
func (p *Page) Full() bool { return len(p.data) >= p.capBytes }

// Empty reports whether the page holds no tuples.
func (p *Page) Empty() bool { return len(p.data) == 0 }

// AppendRaw appends an already-encoded tuple to the page.
func (p *Page) AppendRaw(raw []byte) error {
	if len(raw) != p.tupleLen {
		return fmt.Errorf("relation: raw tuple is %d bytes, page holds %d-byte tuples", len(raw), p.tupleLen)
	}
	if p.Full() {
		return fmt.Errorf("relation: page full (%d tuples)", p.TupleCount())
	}
	p.data = append(p.data, raw...)
	return nil
}

// AppendTuple encodes t under schema s and appends it to the page.
func (p *Page) AppendTuple(s *Schema, t Tuple) error {
	if s.TupleLen() != p.tupleLen {
		return fmt.Errorf("relation: schema tuple length %d != page tuple length %d", s.TupleLen(), p.tupleLen)
	}
	if p.Full() {
		return fmt.Errorf("relation: page full (%d tuples)", p.TupleCount())
	}
	enc, err := EncodeTuple(p.data, s, t)
	if err != nil {
		return err
	}
	p.data = enc
	return nil
}

// RawTuple returns the encoded bytes of tuple i. The returned slice
// aliases the page; callers must not modify it.
func (p *Page) RawTuple(i int) []byte {
	return p.data[i*p.tupleLen : (i+1)*p.tupleLen]
}

// Data returns the page's encoded tuple bytes: TupleCount()*TupleLen()
// contiguous fixed-width tuples. The slice aliases the page and must be
// treated as read-only. Batch kernels scan it directly instead of
// slicing per tuple through RawTuple.
func (p *Page) Data() []byte { return p.data }

// Tuple decodes tuple i under schema s.
func (p *Page) Tuple(i int, s *Schema) (Tuple, error) {
	return DecodeTuple(s, p.RawTuple(i))
}

// EachRaw calls fn for every encoded tuple in the page, stopping early if
// fn returns false.
func (p *Page) EachRaw(fn func(raw []byte) bool) {
	n := p.TupleCount()
	for i := 0; i < n; i++ {
		if !fn(p.RawTuple(i)) {
			return
		}
	}
}

// WireSize returns the number of bytes the page occupies on an
// interconnection network: the header plus the bytes of the tuples it
// actually holds. Partially full pages travel compacted.
func (p *Page) WireSize() int { return PageHeaderLen + len(p.data) }

// FillFrom moves tuples from src into p until p is full or src is empty,
// returning the number of tuples moved. This is the page "compression"
// an instruction controller performs on arriving partial pages so that
// its memory and cache segment hold only full pages.
func (p *Page) FillFrom(src *Page) (int, error) {
	if src.tupleLen != p.tupleLen {
		return 0, fmt.Errorf("relation: cannot compress %d-byte tuples into %d-byte-tuple page", src.tupleLen, p.tupleLen)
	}
	moved := 0
	for !p.Full() && !src.Empty() {
		last := src.TupleCount() - 1
		raw := src.RawTuple(last)
		if err := p.AppendRaw(raw); err != nil {
			return moved, err
		}
		src.data = src.data[:last*src.tupleLen]
		moved++
	}
	return moved, nil
}

// Clone returns a deep copy of the page.
func (p *Page) Clone() *Page {
	out := &Page{size: p.size, tupleLen: p.tupleLen, capBytes: p.capBytes}
	out.data = append([]byte(nil), p.data...)
	return out
}

// Marshal serializes the page (header plus payload). The result is
// WireSize() bytes long.
func (p *Page) Marshal() []byte {
	out := make([]byte, 0, p.WireSize())
	out = binary.LittleEndian.AppendUint32(out, pageMagic)
	out = binary.LittleEndian.AppendUint32(out, uint32(p.size))
	out = binary.LittleEndian.AppendUint32(out, uint32(p.tupleLen))
	out = binary.LittleEndian.AppendUint32(out, uint32(p.TupleCount()))
	out = append(out, p.data...)
	return out
}

// UnmarshalPage parses a page serialized by Marshal.
func UnmarshalPage(b []byte) (*Page, error) {
	if len(b) < PageHeaderLen {
		return nil, fmt.Errorf("relation: page blob too short (%d bytes)", len(b))
	}
	if binary.LittleEndian.Uint32(b) != pageMagic {
		return nil, fmt.Errorf("relation: bad page magic %#x", binary.LittleEndian.Uint32(b))
	}
	size := int(binary.LittleEndian.Uint32(b[4:]))
	tupleLen := int(binary.LittleEndian.Uint32(b[8:]))
	count := int(binary.LittleEndian.Uint32(b[12:]))
	p, err := NewPage(size, tupleLen)
	if err != nil {
		return nil, err
	}
	want := count * tupleLen
	if len(b) != PageHeaderLen+want {
		return nil, fmt.Errorf("relation: page blob is %d bytes, header says %d", len(b), PageHeaderLen+want)
	}
	if count > p.Capacity() {
		return nil, fmt.Errorf("relation: page blob holds %d tuples, capacity is %d", count, p.Capacity())
	}
	p.data = append(p.data, b[PageHeaderLen:]...)
	return p, nil
}

// Paginator accumulates encoded tuples and emits full pages. Operators
// use it to turn their per-tuple output stream into the page stream the
// data-flow machine moves around.
type Paginator struct {
	pageSize int
	tupleLen int
	cur      *Page
	pool     *PagePool
}

// NewPaginator returns a paginator producing pages of the given size for
// tuples of the given length.
func NewPaginator(pageSize, tupleLen int) (*Paginator, error) {
	if _, err := NewPage(pageSize, tupleLen); err != nil {
		return nil, err
	}
	return &Paginator{pageSize: pageSize, tupleLen: tupleLen}, nil
}

// NewPooledPaginator is NewPaginator drawing its pages from pool (which
// may be nil for plain allocation).
func NewPooledPaginator(pageSize, tupleLen int, pool *PagePool) (*Paginator, error) {
	g, err := NewPaginator(pageSize, tupleLen)
	if err != nil {
		return nil, err
	}
	g.pool = pool
	return g, nil
}

// Add appends one encoded tuple. If the current page becomes full it is
// returned (and a fresh page started); otherwise Add returns nil.
func (g *Paginator) Add(raw []byte) (*Page, error) {
	if g.cur == nil {
		g.cur = g.pool.MustGet(g.pageSize, g.tupleLen)
	}
	if err := g.cur.AppendRaw(raw); err != nil {
		return nil, err
	}
	if g.cur.Full() {
		out := g.cur
		g.cur = nil
		return out, nil
	}
	return nil, nil
}

// AddTuple encodes t under s and appends it, with the same semantics as
// Add.
func (g *Paginator) AddTuple(s *Schema, t Tuple) (*Page, error) {
	raw, err := EncodeTuple(nil, s, t)
	if err != nil {
		return nil, err
	}
	return g.Add(raw)
}

// Flush returns the final partial page, or nil if no tuples are pending.
func (g *Paginator) Flush() *Page {
	out := g.cur
	g.cur = nil
	if out != nil && out.Empty() {
		return nil
	}
	return out
}

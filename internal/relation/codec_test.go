package relation

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := testSchema(t)
	tup := Tuple{IntVal(42), FloatVal(3.25), IntVal(-9e15), StringVal("hello")}
	raw, err := EncodeTuple(nil, s, tup)
	if err != nil {
		t.Fatalf("EncodeTuple: %v", err)
	}
	if len(raw) != s.TupleLen() {
		t.Fatalf("encoded length %d, want %d", len(raw), s.TupleLen())
	}
	got, err := DecodeTuple(s, raw)
	if err != nil {
		t.Fatalf("DecodeTuple: %v", err)
	}
	if !reflect.DeepEqual(got, tup) {
		t.Errorf("round trip gave %v, want %v", got, tup)
	}
}

func TestEncodeErrors(t *testing.T) {
	s := testSchema(t)
	cases := []struct {
		name string
		tup  Tuple
	}{
		{"short tuple", Tuple{IntVal(1)}},
		{"wrong kind", Tuple{StringVal("x"), FloatVal(0), IntVal(0), StringVal("")}},
		{"int32 overflow", Tuple{IntVal(math.MaxInt32 + 1), FloatVal(0), IntVal(0), StringVal("")}},
		{"int32 underflow", Tuple{IntVal(math.MinInt32 - 1), FloatVal(0), IntVal(0), StringVal("")}},
		{"string too wide", Tuple{IntVal(1), FloatVal(0), IntVal(0), StringVal("thirteen chars")}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := EncodeTuple(nil, s, c.tup); err == nil {
				t.Errorf("EncodeTuple(%v) succeeded, want error", c.tup)
			}
		})
	}
}

func TestDecodeErrors(t *testing.T) {
	s := testSchema(t)
	if _, err := DecodeTuple(s, make([]byte, s.TupleLen()-1)); err == nil {
		t.Error("DecodeTuple of short raw succeeded, want error")
	}
}

func TestDecodeValueSingleAttribute(t *testing.T) {
	s := testSchema(t)
	tup := Tuple{IntVal(-7), FloatVal(2.5), IntVal(99), StringVal("ab")}
	raw, err := EncodeTuple(nil, s, tup)
	if err != nil {
		t.Fatalf("EncodeTuple: %v", err)
	}
	for i, want := range tup {
		got, err := DecodeValue(s, raw, i)
		if err != nil {
			t.Fatalf("DecodeValue(%d): %v", i, err)
		}
		if !got.Equal(want) {
			t.Errorf("DecodeValue(%d) = %v, want %v", i, got, want)
		}
	}
	if _, err := DecodeValue(s, raw[:3], 0); err == nil {
		t.Error("DecodeValue on truncated raw succeeded, want error")
	}
}

// randomTuple builds a schema-conforming random tuple. Strings avoid
// trailing NUL ambiguity by using printable ASCII only.
func randomTuple(s *Schema, rng *rand.Rand) Tuple {
	t := make(Tuple, s.NumAttrs())
	for i := 0; i < s.NumAttrs(); i++ {
		a := s.Attr(i)
		switch a.Type {
		case Int32:
			t[i] = IntVal(int64(int32(rng.Uint32())))
		case Int64:
			t[i] = IntVal(int64(rng.Uint64()))
		case Float64:
			t[i] = FloatVal(rng.NormFloat64())
		case String:
			n := rng.Intn(a.Width + 1)
			b := make([]byte, n)
			for j := range b {
				b[j] = byte('a' + rng.Intn(26))
			}
			t[i] = StringVal(string(b))
		}
	}
	return t
}

func TestQuickCodecRoundTrip(t *testing.T) {
	s := testSchema(t)
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rng.Seed(seed)
		tup := randomTuple(s, rng)
		raw, err := EncodeTuple(nil, s, tup)
		if err != nil {
			return false
		}
		got, err := DecodeTuple(s, raw)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, tup)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEncodeAppendsToDst(t *testing.T) {
	s := MustSchema(Attr{Name: "a", Type: Int32})
	raw1, err := EncodeTuple(nil, s, Tuple{IntVal(1)})
	if err != nil {
		t.Fatal(err)
	}
	raw2, err := EncodeTuple(raw1, s, Tuple{IntVal(2)})
	if err != nil {
		t.Fatal(err)
	}
	if len(raw2) != 8 {
		t.Fatalf("appended encoding length = %d, want 8", len(raw2))
	}
	first, err := DecodeTuple(s, raw2[:4])
	if err != nil || first[0].Int != 1 {
		t.Errorf("first tuple = %v, %v", first, err)
	}
	second, err := DecodeTuple(s, raw2[4:])
	if err != nil || second[0].Int != 2 {
		t.Errorf("second tuple = %v, %v", second, err)
	}
}

package relation

import "fmt"

// PageStore is the disk-backed page source a Relation can be attached
// to (SetStore): the paper's mass-storage level, reached through the
// disk-cache level (a pinning buffer pool). A stored relation keeps no
// resident pages; every page access pins a frame in the store's buffer
// pool and every mutation goes through Install, so the relation's
// logical content is byte-identical to the resident form by
// construction.
//
// Implementations live in internal/heap; this interface exists so the
// relation package (and everything above it) needs no heap import.
type PageStore interface {
	// NumPages returns the logical page count.
	NumPages() int
	// PageTuples returns the tuple count of page i without reading its
	// payload.
	PageTuples(i int) int
	// Cardinality returns the total tuple count across all pages.
	Cardinality() int
	// Pin reads page i into a buffer-pool frame and pins it. The
	// returned page is shared and must be treated as read-only unless
	// the caller holds the relation's write exclusion. Every Pin must
	// be paired with an Unpin.
	Pin(i int) (*Page, error)
	// Unpin releases the pin; dirty marks the frame for write-back.
	Unpin(i int, dirty bool)
	// Install overwrites page i (or appends it when i == NumPages)
	// with a full post-image, dirty in the pool. It is the one
	// mutation primitive: WAL replay and the live write path both
	// install whole-page images, which makes redo idempotent and
	// torn-write-proof.
	Install(i int, p *Page) error
	// Rewrite atomically replaces the entire stored content with the
	// pages of resident (same name and schema), advancing the store's
	// base LSN to lsn. Deletes compact through this path.
	Rewrite(resident *Relation, lsn uint64) error
	// BaseLSN is the store's recovery horizon: every WAL record with
	// LSN <= BaseLSN() is already reflected in the durable file, so
	// replay skips it.
	BaseLSN() uint64
}

// SetStore attaches (or with nil detaches) a page store. Attaching
// drops any resident pages: the store is authoritative.
func (r *Relation) SetStore(ps PageStore) {
	r.store = ps
	if ps != nil {
		r.pages = nil
	}
}

// Stored reports whether the relation is disk-backed.
func (r *Relation) Stored() bool { return r.store != nil }

// StoreBaseLSN returns the attached store's recovery horizon, 0 for
// resident relations.
func (r *Relation) StoreBaseLSN() uint64 {
	if r.store == nil {
		return 0
	}
	return r.store.BaseLSN()
}

// PageTuples returns the tuple count of page i without materializing
// its payload (stored relations keep per-page counts in file
// metadata).
func (r *Relation) PageTuples(i int) int {
	if r.store != nil {
		return r.store.PageTuples(i)
	}
	return r.pages[i].TupleCount()
}

// CopyPage returns a deep copy of page i, pinning through the store
// when the relation is disk-backed — the error-returning counterpart
// of Page(i).Clone().
func (r *Relation) CopyPage(i int) (*Page, error) {
	if r.store == nil {
		return r.pages[i].Clone(), nil
	}
	p, err := r.store.Pin(i)
	if err != nil {
		return nil, fmt.Errorf("relation %q: page %d: %w", r.name, i, err)
	}
	defer r.store.Unpin(i, false)
	return p.Clone(), nil
}

// EachPage calls fn for every page in order. For stored relations each
// page is pinned around its callback and unpinned clean afterwards;
// fn must not retain write access. A non-nil error from fn (or from
// the store) stops the walk and is returned.
func (r *Relation) EachPage(fn func(p *Page) error) error {
	if r.store == nil {
		for _, p := range r.pages {
			if err := fn(p); err != nil {
				return err
			}
		}
		return nil
	}
	n := r.store.NumPages()
	for i := 0; i < n; i++ {
		p, err := r.store.Pin(i)
		if err != nil {
			return fmt.Errorf("relation %q: page %d: %w", r.name, i, err)
		}
		err = fn(p)
		r.store.Unpin(i, false)
		if err != nil {
			return err
		}
	}
	return nil
}

// InstallPage overwrites page i with a full post-image, or appends it
// when i == NumPages(). It is how WAL replay and the durable write
// path apply append effects: whole-page images are idempotent to
// re-apply and repair torn in-place writes. The page is retained.
func (r *Relation) InstallPage(i int, p *Page) error {
	if p.TupleLen() != r.schema.TupleLen() {
		return fmt.Errorf("relation: page holds %d-byte tuples, relation %q needs %d", p.TupleLen(), r.name, r.schema.TupleLen())
	}
	p.pooled = false
	if r.store != nil {
		return r.store.Install(i, p)
	}
	switch {
	case i < len(r.pages):
		r.pages[i] = p
	case i == len(r.pages):
		r.pages = append(r.pages, p)
	default:
		return fmt.Errorf("relation %q: install page %d beyond %d pages", r.name, i, len(r.pages))
	}
	return nil
}

// ReplaceStored atomically replaces a stored relation's content with
// the pages of resident, advancing the store's base LSN to lsn. It is
// the delete path: deletes rewrite and compact the whole relation, so
// a stored delete materializes, deletes in memory, and swaps the file.
func (r *Relation) ReplaceStored(resident *Relation, lsn uint64) error {
	if r.store == nil {
		return fmt.Errorf("relation %q: ReplaceStored on a resident relation", r.name)
	}
	return r.store.Rewrite(resident, lsn)
}

// Materialize returns a fully resident deep copy of the relation under
// the same name — the shape relalg's in-place operators need.
func (r *Relation) Materialize() (*Relation, error) {
	out := &Relation{name: r.name, schema: r.schema, pageSize: r.pageSize}
	err := r.EachPage(func(p *Page) error {
		out.pages = append(out.pages, p.Clone())
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

package relation

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The tuple codec writes fixed-width values little-endian:
//
//	Int32   4 bytes (two's complement)
//	Int64   8 bytes
//	Float64 8 bytes (IEEE 754 bits)
//	String  Width bytes, NUL padded
//
// A fixed-width encoding keeps every tuple of a schema the same length,
// matching the paper's arithmetic, and makes pages trivially seekable.

// EncodeTuple appends the encoding of t (under schema s) to dst and
// returns the extended slice. The tuple must match the schema exactly.
func EncodeTuple(dst []byte, s *Schema, t Tuple) ([]byte, error) {
	if len(t) != s.NumAttrs() {
		return dst, fmt.Errorf("relation: tuple has %d values, schema %s has %d attrs", len(t), s, s.NumAttrs())
	}
	for i, v := range t {
		a := s.Attr(i)
		if v.Kind != KindFor(a.Type) {
			return dst, fmt.Errorf("relation: value %d is %v, attribute %q wants %s", i, v.Kind, a.Name, a.Type)
		}
		switch a.Type {
		case Int32:
			if v.Int > math.MaxInt32 || v.Int < math.MinInt32 {
				return dst, fmt.Errorf("relation: value %d for int32 attribute %q out of range", v.Int, a.Name)
			}
			dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(v.Int)))
		case Int64:
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v.Int))
		case Float64:
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.Flt))
		case String:
			if len(v.Str) > a.Width {
				return dst, fmt.Errorf("relation: string %q exceeds width %d of attribute %q", v.Str, a.Width, a.Name)
			}
			dst = append(dst, v.Str...)
			for p := len(v.Str); p < a.Width; p++ {
				dst = append(dst, 0)
			}
		}
	}
	return dst, nil
}

// DecodeTuple decodes one tuple of schema s from raw, which must be
// exactly s.TupleLen() bytes long.
func DecodeTuple(s *Schema, raw []byte) (Tuple, error) {
	if len(raw) != s.TupleLen() {
		return nil, fmt.Errorf("relation: raw tuple is %d bytes, schema %s needs %d", len(raw), s, s.TupleLen())
	}
	t := make(Tuple, s.NumAttrs())
	for i := 0; i < s.NumAttrs(); i++ {
		v, err := DecodeValue(s, raw, i)
		if err != nil {
			return nil, err
		}
		t[i] = v
	}
	return t, nil
}

// DecodeValue decodes the i'th attribute of the encoded tuple raw without
// decoding the rest of the tuple. This is what a restrict processor does
// when evaluating a predicate over a page: it touches only the bytes of
// the attributes the predicate mentions.
func DecodeValue(s *Schema, raw []byte, i int) (Value, error) {
	a := s.Attr(i)
	off := s.Offset(i)
	if off+a.ByteWidth() > len(raw) {
		return Value{}, fmt.Errorf("relation: raw tuple too short for attribute %q", a.Name)
	}
	switch a.Type {
	case Int32:
		return IntVal(int64(int32(binary.LittleEndian.Uint32(raw[off:])))), nil
	case Int64:
		return IntVal(int64(binary.LittleEndian.Uint64(raw[off:]))), nil
	case Float64:
		return FloatVal(math.Float64frombits(binary.LittleEndian.Uint64(raw[off:]))), nil
	case String:
		b := raw[off : off+a.Width]
		// Trim NUL padding.
		end := len(b)
		for end > 0 && b[end-1] == 0 {
			end--
		}
		return StringVal(string(b[:end])), nil
	}
	return Value{}, fmt.Errorf("relation: unknown attribute type %v", a.Type)
}

package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the relation as CSV: a header row of attribute names
// followed by one row per tuple, in page order.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	s := r.Schema()
	header := make([]string, s.NumAttrs())
	for i := range header {
		header[i] = s.Attr(i).Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, s.NumAttrs())
	var failed error
	err := r.Each(func(t Tuple) bool {
		for i, v := range t {
			switch v.Kind {
			case KindInt:
				row[i] = strconv.FormatInt(v.Int, 10)
			case KindFloat:
				row[i] = strconv.FormatFloat(v.Flt, 'g', -1, 64)
			case KindString:
				row[i] = v.Str
			}
		}
		if err := cw.Write(row); err != nil {
			failed = err
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	if failed != nil {
		return failed
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV builds a relation from CSV input. The first record must be a
// header whose column names match the schema's attributes (in order);
// subsequent records are parsed according to the attribute types.
func ReadCSV(rd io.Reader, name string, schema *Schema, pageSize int) (*Relation, error) {
	cr := csv.NewReader(rd)
	cr.FieldsPerRecord = schema.NumAttrs()

	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV header: %w", err)
	}
	for i, name := range header {
		if want := schema.Attr(i).Name; name != want {
			return nil, fmt.Errorf("relation: CSV column %d is %q, schema expects %q", i, name, want)
		}
	}

	out, err := New(name, schema, pageSize)
	if err != nil {
		return nil, err
	}
	tup := make(Tuple, schema.NumAttrs())
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("relation: CSV line %d: %w", line, err)
		}
		for i, field := range rec {
			a := schema.Attr(i)
			switch a.Type {
			case Int32, Int64:
				n, err := strconv.ParseInt(field, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("relation: CSV line %d, column %q: %w", line, a.Name, err)
				}
				tup[i] = IntVal(n)
			case Float64:
				f, err := strconv.ParseFloat(field, 64)
				if err != nil {
					return nil, fmt.Errorf("relation: CSV line %d, column %q: %w", line, a.Name, err)
				}
				tup[i] = FloatVal(f)
			case String:
				tup[i] = StringVal(field)
			}
		}
		if err := out.Insert(tup); err != nil {
			return nil, fmt.Errorf("relation: CSV line %d: %w", line, err)
		}
	}
}

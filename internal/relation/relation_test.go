package relation

import (
	"testing"
)

func fillRelation(t testing.TB, name string, n int) *Relation {
	t.Helper()
	s := paperSchema(t)
	r := MustNew(name, s, AnalysisPageSize)
	for i := 0; i < n; i++ {
		tup := Tuple{IntVal(int64(i)), IntVal(int64(i % 7)), IntVal(int64(i % 3)), StringVal("row")}
		if err := r.Insert(tup); err != nil {
			t.Fatalf("Insert(%d): %v", i, err)
		}
	}
	return r
}

func TestRelationInsertPaging(t *testing.T) {
	r := fillRelation(t, "R", 25)
	if got := r.Cardinality(); got != 25 {
		t.Errorf("Cardinality = %d, want 25", got)
	}
	// Capacity is 9 per page: 25 tuples need 3 pages.
	if got := r.NumPages(); got != 3 {
		t.Errorf("NumPages = %d, want 3", got)
	}
	for i := 0; i < r.NumPages()-1; i++ {
		if !r.Page(i).Full() {
			t.Errorf("page %d not full", i)
		}
	}
}

func TestRelationEachOrder(t *testing.T) {
	r := fillRelation(t, "R", 12)
	var ids []int64
	if err := r.Each(func(tup Tuple) bool {
		ids = append(ids, tup[0].Int)
		return true
	}); err != nil {
		t.Fatalf("Each: %v", err)
	}
	for i, id := range ids {
		if id != int64(i) {
			t.Fatalf("ids[%d] = %d, want %d", i, id, i)
		}
	}
}

func TestRelationEachEarlyStop(t *testing.T) {
	r := fillRelation(t, "R", 12)
	count := 0
	_ = r.Each(func(Tuple) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("Each visited %d tuples after early stop, want 5", count)
	}
	count = 0
	r.EachRaw(func([]byte) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("EachRaw visited %d tuples after early stop, want 3", count)
	}
}

func TestRelationValidation(t *testing.T) {
	s := paperSchema(t)
	if _, err := New("", s, 1000); err == nil {
		t.Error("New with empty name succeeded")
	}
	if _, err := New("R", s, 10); err == nil {
		t.Error("New with tiny page size succeeded")
	}
	r := MustNew("R", s, 1000)
	if err := r.Insert(Tuple{IntVal(1)}); err == nil {
		t.Error("Insert of short tuple succeeded")
	}
	bad := MustNewPage(1000, 50)
	if err := r.AppendPage(bad); err == nil {
		t.Error("AppendPage with mismatched tuple length succeeded")
	}
}

func TestRelationCompact(t *testing.T) {
	s := paperSchema(t)
	r := MustNew("R", s, AnalysisPageSize)
	// Build three pages each holding a single tuple, as an operator
	// producing partial output pages would.
	for i := 0; i < 3; i++ {
		p := MustNewPage(AnalysisPageSize, s.TupleLen())
		raw, err := EncodeTuple(nil, s, Tuple{IntVal(int64(i)), IntVal(0), IntVal(0), StringVal("")})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.AppendRaw(raw); err != nil {
			t.Fatal(err)
		}
		if err := r.AppendPage(p); err != nil {
			t.Fatal(err)
		}
	}
	if r.NumPages() != 3 {
		t.Fatalf("precondition: NumPages = %d", r.NumPages())
	}
	before := r.SortedKeys()
	r.Compact()
	if r.NumPages() != 1 {
		t.Errorf("Compact left %d pages, want 1", r.NumPages())
	}
	after := r.SortedKeys()
	if len(before) != len(after) {
		t.Fatalf("Compact changed cardinality %d -> %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Errorf("Compact changed contents at %d", i)
		}
	}
}

func TestRelationCloneIsDeep(t *testing.T) {
	r := fillRelation(t, "R", 5)
	c := r.Clone("C")
	if c.Name() != "C" || !c.EqualMultiset(r) {
		t.Fatal("Clone differs from original")
	}
	c.Page(0).RawTuple(0)[0] ^= 0xFF
	if c.EqualMultiset(r) {
		t.Error("mutating clone changed original (shallow copy)")
	}
}

func TestRelationEqualMultiset(t *testing.T) {
	a := fillRelation(t, "A", 10)
	b := fillRelation(t, "B", 10)
	if !a.EqualMultiset(b) {
		t.Error("identical relations not multiset-equal")
	}
	c := fillRelation(t, "C", 9)
	if a.EqualMultiset(c) {
		t.Error("different-cardinality relations multiset-equal")
	}
	// Same cardinality, different contents.
	d := fillRelation(t, "D", 9)
	_ = d.Insert(Tuple{IntVal(999), IntVal(0), IntVal(0), StringVal("zz")})
	if a.EqualMultiset(d) {
		t.Error("different relations multiset-equal")
	}
}

func TestRelationByteSize(t *testing.T) {
	r := fillRelation(t, "R", 9) // exactly one full page
	want := PageHeaderLen + 9*100
	if got := r.ByteSize(); got != want {
		t.Errorf("ByteSize = %d, want %d", got, want)
	}
}

func TestPageTableFiringRules(t *testing.T) {
	pt := NewPageTable("R")
	if pt.Enabled(false) || pt.Enabled(true) {
		t.Error("empty page table enabled")
	}
	pt.Add(PageRef{PageNo: 0, Where: OnMassStorage})
	if !pt.Enabled(false) {
		t.Error("page-level rule not enabled with one page")
	}
	if pt.Enabled(true) {
		t.Error("relation-level rule enabled before completion")
	}
	pt.MarkComplete()
	if !pt.Enabled(true) || !pt.Complete() {
		t.Error("relation-level rule not enabled after completion")
	}
	if pt.NumPages() != 1 || pt.Ref(0).PageNo != 0 {
		t.Error("page table bookkeeping wrong")
	}
	pt.SetWhere(0, InDiskCache)
	if pt.Ref(0).Where != InDiskCache {
		t.Error("SetWhere did not update")
	}
}

func TestLocationString(t *testing.T) {
	cases := map[Location]string{
		InLocalMemory: "local",
		InDiskCache:   "cache",
		OnMassStorage: "disk",
		Location(9):   "loc(9)",
	}
	for loc, want := range cases {
		if got := loc.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", loc, got, want)
		}
	}
}

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		Int32: "int32", Int64: "int64", Float64: "float64", String: "string", Type(9): "type(9)",
	}
	for ty, want := range cases {
		if got := ty.String(); got != want {
			t.Errorf("Type.String = %q, want %q", got, want)
		}
	}
}

func TestTupleClone(t *testing.T) {
	orig := Tuple{IntVal(1), StringVal("a")}
	c := orig.Clone()
	c[0] = IntVal(2)
	if orig[0].Int != 1 {
		t.Error("Tuple.Clone shares storage")
	}
}

package relation

import (
	"fmt"
	"sort"
)

// Relation is a heap relation: a named schema plus an ordered list of
// pages. It is the at-rest form of a relation; in flight, a relation
// is a stream of pages. By default the pages are resident in memory;
// SetStore attaches a disk-backed PageStore (internal/heap) and the
// relation becomes a view over buffer-pool frames instead.
type Relation struct {
	name     string
	schema   *Schema
	pageSize int
	pages    []*Page
	store    PageStore // nil = resident
}

// New creates an empty relation with the given name, schema, and page
// size.
func New(name string, schema *Schema, pageSize int) (*Relation, error) {
	if name == "" {
		return nil, fmt.Errorf("relation: empty relation name")
	}
	if _, err := NewPage(pageSize, schema.TupleLen()); err != nil {
		return nil, err
	}
	return &Relation{name: name, schema: schema, pageSize: pageSize}, nil
}

// MustNew is New but panics on error.
func MustNew(name string, schema *Schema, pageSize int) *Relation {
	r, err := New(name, schema, pageSize)
	if err != nil {
		panic(err)
	}
	return r
}

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// PageSize returns the page size used by the relation.
func (r *Relation) PageSize() int { return r.pageSize }

// NumPages returns the number of pages in the relation.
func (r *Relation) NumPages() int {
	if r.store != nil {
		return r.store.NumPages()
	}
	return len(r.pages)
}

// Page returns page i. The page is shared, not copied. For stored
// relations the page is read through the buffer pool and returned
// unpinned — valid for reading (the frame's page object survives
// eviction), but an I/O failure panics; error-aware callers should
// walk with EachPage instead.
func (r *Relation) Page(i int) *Page {
	if r.store == nil {
		return r.pages[i]
	}
	p, err := r.store.Pin(i)
	if err != nil {
		panic(fmt.Sprintf("relation %q: page %d: %v", r.name, i, err))
	}
	r.store.Unpin(i, false)
	return p
}

// Pages returns the page list. For resident relations the slice is
// shared, not copied; for stored relations every page is materialized
// through the buffer pool (see Page for the error contract) — hot
// paths should stream with EachPage instead.
func (r *Relation) Pages() []*Page {
	if r.store == nil {
		return r.pages
	}
	n := r.store.NumPages()
	out := make([]*Page, n)
	for i := 0; i < n; i++ {
		out[i] = r.Page(i)
	}
	return out
}

// Cardinality returns the total number of tuples.
func (r *Relation) Cardinality() int {
	if r.store != nil {
		return r.store.Cardinality()
	}
	n := 0
	for _, p := range r.pages {
		n += p.TupleCount()
	}
	return n
}

// ByteSize returns the total payload-plus-header bytes of all pages —
// the relation's footprint in the storage hierarchy.
func (r *Relation) ByteSize() int {
	if r.store != nil {
		return r.store.NumPages()*PageHeaderLen + r.store.Cardinality()*r.schema.TupleLen()
	}
	n := 0
	for _, p := range r.pages {
		n += p.WireSize()
	}
	return n
}

// Insert appends a tuple, creating a new page when the last one is full.
func (r *Relation) Insert(t Tuple) error {
	raw, err := EncodeTuple(nil, r.schema, t)
	if err != nil {
		return err
	}
	return r.InsertRaw(raw)
}

// InsertRaw appends an already-encoded tuple.
func (r *Relation) InsertRaw(raw []byte) error {
	if r.store != nil {
		return r.insertRawStored(raw)
	}
	if len(r.pages) == 0 || r.pages[len(r.pages)-1].Full() {
		p, err := NewPage(r.pageSize, r.schema.TupleLen())
		if err != nil {
			return err
		}
		r.pages = append(r.pages, p)
	}
	return r.pages[len(r.pages)-1].AppendRaw(raw)
}

// insertRawStored appends one tuple through the page store: fill the
// last partial page in place (pinned, unpinned dirty) or install a
// fresh one — the same fill-then-grow discipline as the resident path,
// so the resulting page layout is byte-identical.
func (r *Relation) insertRawStored(raw []byte) error {
	n := r.store.NumPages()
	capacity := (r.pageSize - PageHeaderLen) / r.schema.TupleLen()
	if n > 0 && r.store.PageTuples(n-1) < capacity {
		p, err := r.store.Pin(n - 1)
		if err != nil {
			return err
		}
		err = p.AppendRaw(raw)
		r.store.Unpin(n-1, err == nil)
		return err
	}
	p, err := NewPage(r.pageSize, r.schema.TupleLen())
	if err != nil {
		return err
	}
	if err := p.AppendRaw(raw); err != nil {
		return err
	}
	return r.store.Install(n, p)
}

// AppendPage appends an entire page to the relation. The page must hold
// tuples of the schema's length.
func (r *Relation) AppendPage(p *Page) error {
	if p.TupleLen() != r.schema.TupleLen() {
		return fmt.Errorf("relation: page holds %d-byte tuples, relation %q needs %d", p.TupleLen(), r.name, r.schema.TupleLen())
	}
	// The relation retains (aliases) the page: it must never be handed
	// back to a PagePool, however it was obtained.
	p.pooled = false
	if r.store != nil {
		return r.store.Install(r.store.NumPages(), p)
	}
	r.pages = append(r.pages, p)
	return nil
}

// errStopEach is EachPage's internal early-stop sentinel.
var errStopEach = fmt.Errorf("relation: stop iteration")

// Each calls fn for every tuple in page order, stopping early if fn
// returns false.
func (r *Relation) Each(fn func(t Tuple) bool) error {
	err := r.EachPage(func(p *Page) error {
		n := p.TupleCount()
		for i := 0; i < n; i++ {
			t, err := p.Tuple(i, r.schema)
			if err != nil {
				return err
			}
			if !fn(t) {
				return errStopEach
			}
		}
		return nil
	})
	if err == errStopEach {
		return nil
	}
	return err
}

// EachRaw calls fn for every encoded tuple in page order, stopping early
// if fn returns false.
func (r *Relation) EachRaw(fn func(raw []byte) bool) {
	_ = r.EachPage(func(p *Page) error {
		stop := false
		p.EachRaw(func(raw []byte) bool {
			if !fn(raw) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return errStopEach
		}
		return nil
	})
}

// Tuples materializes every tuple. Intended for tests and small results.
func (r *Relation) Tuples() ([]Tuple, error) {
	out := make([]Tuple, 0, r.Cardinality())
	err := r.Each(func(t Tuple) bool {
		out = append(out, t)
		return true
	})
	return out, err
}

// Compact rewrites the relation so that all pages except possibly the
// last are full. Operators that delete tuples leave holes; the paper's
// instruction controllers perform the same compression on arriving
// partial pages. Resident relations only: stored relations compact by
// materializing, compacting, and rewriting through ReplaceStored.
func (r *Relation) Compact() {
	if r.store != nil {
		panic(fmt.Sprintf("relation %q: Compact on a stored relation (use Materialize + ReplaceStored)", r.name))
	}
	var compacted []*Page
	var cur *Page
	for _, p := range r.pages {
		p.EachRaw(func(raw []byte) bool {
			if cur == nil {
				cur = MustNewPage(r.pageSize, r.schema.TupleLen())
			}
			// Appending to a non-full fresh page cannot fail.
			_ = cur.AppendRaw(raw)
			if cur.Full() {
				compacted = append(compacted, cur)
				cur = nil
			}
			return true
		})
	}
	if cur != nil && !cur.Empty() {
		compacted = append(compacted, cur)
	}
	r.pages = compacted
}

// Clone returns a fully resident deep copy of the relation under a new
// name.
func (r *Relation) Clone(name string) *Relation {
	out := &Relation{name: name, schema: r.schema, pageSize: r.pageSize}
	if err := r.EachPage(func(p *Page) error {
		out.pages = append(out.pages, p.Clone())
		return nil
	}); err != nil {
		// Only reachable for a stored relation with failing I/O; Clone
		// has no error return (see Materialize for the checked form).
		panic(err)
	}
	return out
}

// SortedKeys returns the multiset of encoded tuples, sorted
// lexicographically. Two relations are multiset-equal iff their
// SortedKeys are equal; tests use this to compare results across engines
// that emit tuples in different orders.
func (r *Relation) SortedKeys() []string {
	keys := make([]string, 0, r.Cardinality())
	r.EachRaw(func(raw []byte) bool {
		keys = append(keys, string(raw))
		return true
	})
	sort.Strings(keys)
	return keys
}

// EqualMultiset reports whether r and o contain the same multiset of
// encoded tuples (schema byte-layouts must match for this to be
// meaningful).
func (r *Relation) EqualMultiset(o *Relation) bool {
	a, b := r.SortedKeys(), o.SortedKeys()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Package relation implements the storage representation used throughout
// dfdbm: schemas of fixed-width attributes, tuples, fixed-size slotted
// pages, page tables, and in-memory heap relations.
//
// The representation deliberately follows the assumptions of Boral and
// DeWitt's 1979 design study: tuples have a fixed length determined by
// their schema, a relation is stored as (and processed as) a stream of
// fixed-size pages, and every page carries a small header so that it can
// travel through an interconnection network as a self-describing operand.
package relation

import "fmt"

// Type identifies the storage type of an attribute.
type Type uint8

// Supported attribute types. Strings are fixed width (padded with NUL
// bytes) so that every tuple of a schema has the same length, exactly as
// in the paper's 100-byte-tuple analysis.
const (
	Int32 Type = iota + 1
	Int64
	Float64
	String
)

// String returns the lower-case name of the type.
func (t Type) String() string {
	switch t {
	case Int32:
		return "int32"
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case String:
		return "string"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Valid reports whether t is one of the defined types.
func (t Type) Valid() bool { return t >= Int32 && t <= String }

// Attr describes a single attribute (column) of a schema.
type Attr struct {
	Name string
	Type Type
	// Width is the storage width in bytes for String attributes. It is
	// ignored for the numeric types, whose width is fixed.
	Width int
}

// ByteWidth returns the number of bytes the attribute occupies in the
// fixed-width tuple encoding.
func (a Attr) ByteWidth() int {
	switch a.Type {
	case Int32:
		return 4
	case Int64, Float64:
		return 8
	case String:
		return a.Width
	default:
		return 0
	}
}

// Kind identifies which variant a Value holds. It mirrors Type but exists
// separately so that Value does not depend on storage widths.
type Kind uint8

// Value kinds.
const (
	KindInt Kind = iota + 1
	KindFloat
	KindString
)

// Value is a dynamically typed attribute value. Integral values (Int32
// and Int64 attributes) are both carried as int64.
type Value struct {
	Kind Kind
	Int  int64
	Flt  float64
	Str  string
}

// IntVal returns an integer Value.
func IntVal(v int64) Value { return Value{Kind: KindInt, Int: v} }

// FloatVal returns a floating-point Value.
func FloatVal(v float64) Value { return Value{Kind: KindFloat, Flt: v} }

// StringVal returns a string Value.
func StringVal(v string) Value { return Value{Kind: KindString, Str: v} }

// String renders the value for display.
func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return fmt.Sprintf("%d", v.Int)
	case KindFloat:
		return fmt.Sprintf("%g", v.Flt)
	case KindString:
		return v.Str
	default:
		return "<nil>"
	}
}

// Compare orders two values of the same kind: -1 if v < o, 0 if equal,
// +1 if v > o. Comparing values of different kinds returns an error.
func (v Value) Compare(o Value) (int, error) {
	if v.Kind != o.Kind {
		return 0, fmt.Errorf("relation: cannot compare %v with %v", v.Kind, o.Kind)
	}
	switch v.Kind {
	case KindInt:
		switch {
		case v.Int < o.Int:
			return -1, nil
		case v.Int > o.Int:
			return 1, nil
		}
		return 0, nil
	case KindFloat:
		switch {
		case v.Flt < o.Flt:
			return -1, nil
		case v.Flt > o.Flt:
			return 1, nil
		}
		return 0, nil
	case KindString:
		switch {
		case v.Str < o.Str:
			return -1, nil
		case v.Str > o.Str:
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("relation: unknown value kind %d", v.Kind)
}

// Equal reports whether two values have the same kind and contents.
func (v Value) Equal(o Value) bool {
	c, err := v.Compare(o)
	return err == nil && c == 0
}

// KindFor returns the Value kind used to carry values of storage type t.
func KindFor(t Type) Kind {
	switch t {
	case Int32, Int64:
		return KindInt
	case Float64:
		return KindFloat
	case String:
		return KindString
	default:
		return 0
	}
}

// Tuple is a decoded row: one Value per schema attribute, in schema order.
type Tuple []Value

// Clone returns a copy of the tuple that shares no storage with t.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

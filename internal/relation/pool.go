package relation

import (
	"sync"
	"sync/atomic"
)

// PagePool recycles Page structs and their payload buffers by size
// class. The engines allocate intermediate pages at a furious rate —
// every operator hop produces fresh pages that die as soon as the
// consumer has read them — so recycling them removes the dominant
// allocation on the hot execution path.
//
// Ownership discipline: only pages obtained from a pool (Get) are ever
// recycled (Put); Put on any other page — a catalog page, a result page
// retained by Relation.AppendPage — is a no-op, because those pages are
// aliased by live readers. A nil *PagePool is valid and degrades to
// plain allocation, so pooling is a pure opt-in.
type PagePool struct {
	classes  sync.Map // pageClass -> *sync.Pool
	hits     int64    // atomic: Gets served from the pool
	misses   int64    // atomic: Gets that allocated fresh
	recycled int64    // atomic: Puts accepted
	budget   int64    // atomic: planner materialization budget in bytes (0 = default)
}

type pageClass struct{ size, tupleLen int }

// NewPagePool returns an empty pool.
func NewPagePool() *PagePool { return &PagePool{} }

// DefaultPoolBudget is the page-memory budget, in bytes, that the
// adaptive planner assumes when none has been set on the pool: an
// intermediate estimated to fit within it may be materialized in memory
// instead of pipelined page by page.
const DefaultPoolBudget = 4 << 20

// SetBudget sets the pool's page-memory budget in bytes. Zero or
// negative restores the default. The budget is advisory — it steers the
// planner's pipeline-vs-materialize decision, it does not cap Get.
func (p *PagePool) SetBudget(bytes int64) {
	if p == nil {
		return
	}
	atomic.StoreInt64(&p.budget, bytes)
}

// Budget returns the pool's page-memory budget in bytes. A nil pool, or
// a pool with no budget set, reports DefaultPoolBudget.
func (p *PagePool) Budget() int64 {
	if p == nil {
		return DefaultPoolBudget
	}
	if b := atomic.LoadInt64(&p.budget); b > 0 {
		return b
	}
	return DefaultPoolBudget
}

// PoolStats is a point-in-time copy of a pool's counters.
type PoolStats struct {
	Hits     int64 // pages served from the pool
	Misses   int64 // pages freshly allocated
	Recycled int64 // pages returned for reuse
}

// Stats returns the pool's counters, read atomically. A nil pool
// reports zeros.
func (p *PagePool) Stats() PoolStats {
	if p == nil {
		return PoolStats{}
	}
	return PoolStats{
		Hits:     atomic.LoadInt64(&p.hits),
		Misses:   atomic.LoadInt64(&p.misses),
		Recycled: atomic.LoadInt64(&p.recycled),
	}
}

// Get returns an empty page of the given size class, reusing a recycled
// page when one is available. On a nil pool it simply allocates.
func (p *PagePool) Get(pageSize, tupleLen int) (*Page, error) {
	if p == nil {
		return NewPage(pageSize, tupleLen)
	}
	if c, ok := p.classes.Load(pageClass{pageSize, tupleLen}); ok {
		if pg, _ := c.(*sync.Pool).Get().(*Page); pg != nil {
			atomic.AddInt64(&p.hits, 1)
			pg.pooled = true
			return pg, nil
		}
	}
	pg, err := NewPage(pageSize, tupleLen)
	if err != nil {
		return nil, err
	}
	atomic.AddInt64(&p.misses, 1)
	pg.pooled = true
	return pg, nil
}

// MustGet is Get but panics on error; for size classes already
// validated by the caller.
func (p *PagePool) MustGet(pageSize, tupleLen int) *Page {
	pg, err := p.Get(pageSize, tupleLen)
	if err != nil {
		panic(err)
	}
	return pg
}

// Put returns a page to the pool for reuse. Only pages that came from a
// pool are accepted — Put on a catalog or retained page is a no-op —
// and a page is marked non-pooled on the way in, so a double Put cannot
// hand the same page out twice.
func (p *PagePool) Put(pg *Page) {
	if p == nil || pg == nil || !pg.pooled {
		return
	}
	pg.pooled = false
	pg.data = pg.data[:0]
	key := pageClass{pg.size, pg.tupleLen}
	c, ok := p.classes.Load(key)
	if !ok {
		c, _ = p.classes.LoadOrStore(key, &sync.Pool{})
	}
	c.(*sync.Pool).Put(pg)
	atomic.AddInt64(&p.recycled, 1)
}

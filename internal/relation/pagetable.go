package relation

import "fmt"

// Location identifies where a page of an operand currently resides in
// the three-level storage hierarchy of the Section 4 machine.
type Location uint8

// Page locations, fastest first.
const (
	// InLocalMemory: in an instruction controller's local memory.
	InLocalMemory Location = iota + 1
	// InDiskCache: in the multiport disk cache.
	InDiskCache
	// OnMassStorage: on a mass-storage device.
	OnMassStorage
)

// String returns a short name for the location.
func (l Location) String() string {
	switch l {
	case InLocalMemory:
		return "local"
	case InDiskCache:
		return "cache"
	case OnMassStorage:
		return "disk"
	default:
		return fmt.Sprintf("loc(%d)", uint8(l))
	}
}

// PageRef names one page of an operand and records where it lives.
type PageRef struct {
	PageNo int
	Where  Location
}

// PageTable describes one operand of an instruction: the pages known so
// far and whether the producing instruction has finished. In the paper,
// "the data is represented by page tables, pointing to pages either in a
// cache or on mass storage"; a memory cell fires when its page tables
// satisfy the granularity rule in force.
type PageTable struct {
	RelName  string
	refs     []PageRef
	complete bool
}

// NewPageTable returns an empty, incomplete page table for the named
// operand relation.
func NewPageTable(relName string) *PageTable {
	return &PageTable{RelName: relName}
}

// Add appends a page reference and returns its index.
func (pt *PageTable) Add(ref PageRef) int {
	pt.refs = append(pt.refs, ref)
	return len(pt.refs) - 1
}

// NumPages returns the number of pages known to the table.
func (pt *PageTable) NumPages() int { return len(pt.refs) }

// Ref returns the i'th page reference.
func (pt *PageTable) Ref(i int) PageRef { return pt.refs[i] }

// SetWhere updates the recorded location of page i.
func (pt *PageTable) SetWhere(i int, where Location) { pt.refs[i].Where = where }

// MarkComplete records that the producer of this operand has finished:
// no further pages will be added.
func (pt *PageTable) MarkComplete() { pt.complete = true }

// Complete reports whether the operand has been fully computed.
func (pt *PageTable) Complete() bool { return pt.complete }

// Enabled reports whether the operand satisfies the firing rule for the
// given granularity: at relation level the operand must be complete; at
// page (or tuple) level one known page suffices.
func (pt *PageTable) Enabled(relationLevel bool) bool {
	if relationLevel {
		return pt.complete
	}
	return len(pt.refs) > 0
}

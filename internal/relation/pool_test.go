package relation

import (
	"sync"
	"testing"
)

func TestPagePoolRoundTrip(t *testing.T) {
	p := NewPagePool()
	pg := p.MustGet(256, 12)
	if pg.TupleCount() != 0 {
		t.Fatalf("fresh page has %d tuples", pg.TupleCount())
	}
	if s := p.Stats(); s.Misses != 1 || s.Hits != 0 {
		t.Fatalf("after first Get: %+v", s)
	}
	if err := pg.AppendRaw(make([]byte, 12)); err != nil {
		t.Fatal(err)
	}
	p.Put(pg)
	if s := p.Stats(); s.Recycled != 1 {
		t.Fatalf("after Put: %+v", s)
	}
	got := p.MustGet(256, 12)
	if got.TupleCount() != 0 {
		t.Errorf("recycled page came back with %d tuples", got.TupleCount())
	}
	if s := p.Stats(); s.Hits != 1 {
		t.Errorf("recycled Get did not count as hit: %+v", s)
	}
}

func TestPagePoolDoublePutIsNoop(t *testing.T) {
	p := NewPagePool()
	pg := p.MustGet(256, 12)
	p.Put(pg)
	p.Put(pg) // the pooled flag was cleared by the first Put
	if s := p.Stats(); s.Recycled != 1 {
		t.Errorf("double Put recycled %d pages, want 1", s.Recycled)
	}
}

func TestPagePoolIgnoresForeignPages(t *testing.T) {
	p := NewPagePool()
	pg, err := NewPage(256, 12)
	if err != nil {
		t.Fatal(err)
	}
	p.Put(pg) // never came from a pool: must be ignored
	if s := p.Stats(); s.Recycled != 0 {
		t.Errorf("foreign page recycled: %+v", s)
	}
}

func TestAppendPageRetainsFromPool(t *testing.T) {
	s, err := NewSchema(Attr{Name: "k", Type: Int32})
	if err != nil {
		t.Fatal(err)
	}
	r, err := New("R", s, 256)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPagePool()
	pg := p.MustGet(256, s.TupleLen())
	if err := pg.AppendRaw(make([]byte, s.TupleLen())); err != nil {
		t.Fatal(err)
	}
	if err := r.AppendPage(pg); err != nil {
		t.Fatal(err)
	}
	// The relation now aliases the page; recycling it would corrupt the
	// relation, so Put must be a no-op.
	p.Put(pg)
	if s := p.Stats(); s.Recycled != 0 {
		t.Errorf("retained page recycled: %+v", s)
	}
	if r.Cardinality() != 1 {
		t.Errorf("relation lost its tuple: %d", r.Cardinality())
	}
}

func TestNilPagePoolDegrades(t *testing.T) {
	var p *PagePool
	pg := p.MustGet(256, 12)
	if pg == nil {
		t.Fatal("nil pool Get returned nil page")
	}
	p.Put(pg) // must not panic
	if s := p.Stats(); s != (PoolStats{}) {
		t.Errorf("nil pool has stats %+v", s)
	}
}

func TestPagePoolSizeClasses(t *testing.T) {
	p := NewPagePool()
	a := p.MustGet(256, 12)
	b := p.MustGet(512, 12)
	c := p.MustGet(256, 8)
	for _, pg := range []*Page{a, b, c} {
		p.Put(pg)
	}
	big := p.MustGet(512, 12)
	if big.PageSize() != 512 || big.TupleLen() != 12 {
		t.Errorf("size-classed Get returned %d/%d page", big.PageSize(), big.TupleLen())
	}
	small := p.MustGet(256, 8)
	if small.PageSize() != 256 || small.TupleLen() != 8 {
		t.Errorf("size-classed Get returned %d/%d page", small.PageSize(), small.TupleLen())
	}
}

// TestPagePoolConcurrent hammers one pool from many goroutines; run
// with -race this is the satellite's pool race check.
func TestPagePoolConcurrent(t *testing.T) {
	p := NewPagePool()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			size := 256 + 128*(g%3)
			for i := 0; i < 500; i++ {
				pg := p.MustGet(size, 12)
				if err := pg.AppendRaw(make([]byte, 12)); err != nil {
					t.Error(err)
					return
				}
				p.Put(pg)
			}
		}(g)
	}
	wg.Wait()
	s := p.Stats()
	if s.Hits+s.Misses != 8*500 {
		t.Errorf("hits+misses = %d, want %d", s.Hits+s.Misses, 8*500)
	}
	if s.Recycled != 8*500 {
		t.Errorf("recycled = %d, want %d", s.Recycled, 8*500)
	}
}

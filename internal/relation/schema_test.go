package relation

import (
	"strings"
	"testing"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Attr{Name: "id", Type: Int32},
		Attr{Name: "weight", Type: Float64},
		Attr{Name: "serial", Type: Int64},
		Attr{Name: "name", Type: String, Width: 12},
	)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func TestSchemaLayout(t *testing.T) {
	s := testSchema(t)
	if got, want := s.TupleLen(), 4+8+8+12; got != want {
		t.Errorf("TupleLen = %d, want %d", got, want)
	}
	wantOffsets := []int{0, 4, 12, 20}
	for i, want := range wantOffsets {
		if got := s.Offset(i); got != want {
			t.Errorf("Offset(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestSchemaIndex(t *testing.T) {
	s := testSchema(t)
	i, err := s.Index("serial")
	if err != nil || i != 2 {
		t.Errorf("Index(serial) = %d, %v; want 2, nil", i, err)
	}
	if _, err := s.Index("nope"); err == nil {
		t.Error("Index(nope) succeeded, want error")
	}
	if !s.HasAttr("name") || s.HasAttr("nope") {
		t.Error("HasAttr misbehaves")
	}
}

func TestSchemaValidation(t *testing.T) {
	cases := []struct {
		name  string
		attrs []Attr
	}{
		{"empty", nil},
		{"unnamed", []Attr{{Type: Int32}}},
		{"duplicate", []Attr{{Name: "a", Type: Int32}, {Name: "a", Type: Int64}}},
		{"zero-width string", []Attr{{Name: "s", Type: String}}},
		{"bad type", []Attr{{Name: "x", Type: Type(99)}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := NewSchema(c.attrs...); err == nil {
				t.Errorf("NewSchema(%v) succeeded, want error", c.attrs)
			}
		})
	}
}

func TestSchemaProject(t *testing.T) {
	s := testSchema(t)
	p, err := s.Project("name", "id")
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if p.NumAttrs() != 2 || p.Attr(0).Name != "name" || p.Attr(1).Name != "id" {
		t.Errorf("Project gave %s", p)
	}
	if p.TupleLen() != 16 {
		t.Errorf("projected TupleLen = %d, want 16", p.TupleLen())
	}
	if _, err := s.Project("missing"); err == nil {
		t.Error("Project(missing) succeeded, want error")
	}
}

func TestSchemaConcat(t *testing.T) {
	a := MustSchema(Attr{Name: "id", Type: Int32}, Attr{Name: "x", Type: Int32})
	b := MustSchema(Attr{Name: "id", Type: Int32}, Attr{Name: "y", Type: Int32})
	c, err := a.Concat(b, "b")
	if err != nil {
		t.Fatalf("Concat: %v", err)
	}
	names := make([]string, c.NumAttrs())
	for i := range names {
		names[i] = c.Attr(i).Name
	}
	if got := strings.Join(names, ","); got != "id,x,b.id,y" {
		t.Errorf("Concat names = %s, want id,x,b.id,y", got)
	}
	if c.TupleLen() != a.TupleLen()+b.TupleLen() {
		t.Errorf("Concat TupleLen = %d", c.TupleLen())
	}
}

func TestSchemaEqual(t *testing.T) {
	a := testSchema(t)
	b := testSchema(t)
	if !a.Equal(b) {
		t.Error("identical schemas not Equal")
	}
	c := MustSchema(Attr{Name: "id", Type: Int32})
	if a.Equal(c) {
		t.Error("different schemas Equal")
	}
}

func TestSchemaString(t *testing.T) {
	s := MustSchema(Attr{Name: "id", Type: Int32}, Attr{Name: "n", Type: String, Width: 8})
	if got := s.String(); got != "(id int32, n string[8])" {
		t.Errorf("String = %q", got)
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{IntVal(1), IntVal(2), -1},
		{IntVal(2), IntVal(2), 0},
		{IntVal(3), IntVal(2), 1},
		{FloatVal(1.5), FloatVal(2.5), -1},
		{FloatVal(2.5), FloatVal(2.5), 0},
		{StringVal("a"), StringVal("b"), -1},
		{StringVal("b"), StringVal("b"), 0},
		{StringVal("c"), StringVal("b"), 1},
	}
	for _, c := range cases {
		got, err := c.a.Compare(c.b)
		if err != nil || got != c.want {
			t.Errorf("Compare(%v,%v) = %d, %v; want %d", c.a, c.b, got, err, c.want)
		}
	}
	if _, err := IntVal(1).Compare(StringVal("x")); err == nil {
		t.Error("cross-kind Compare succeeded, want error")
	}
	if !IntVal(7).Equal(IntVal(7)) || IntVal(7).Equal(IntVal(8)) || IntVal(7).Equal(StringVal("7")) {
		t.Error("Equal misbehaves")
	}
}

func TestAttrByteWidth(t *testing.T) {
	cases := []struct {
		a    Attr
		want int
	}{
		{Attr{Name: "a", Type: Int32}, 4},
		{Attr{Name: "a", Type: Int64}, 8},
		{Attr{Name: "a", Type: Float64}, 8},
		{Attr{Name: "a", Type: String, Width: 13}, 13},
	}
	for _, c := range cases {
		if got := c.a.ByteWidth(); got != c.want {
			t.Errorf("ByteWidth(%v) = %d, want %d", c.a.Type, got, c.want)
		}
	}
}

package relation

import (
	"fmt"
	"strings"
)

// Schema describes the attributes of a relation. A schema fixes the byte
// length of every tuple, which in turn fixes the number of tuples that
// fit on a page — the quantity at the heart of the paper's granularity
// analysis (100-byte tuples, 1000-byte pages, ten tuples per page).
type Schema struct {
	attrs    []Attr
	byName   map[string]int
	offsets  []int
	tupleLen int
}

// NewSchema builds a schema from the given attributes. Attribute names
// must be non-empty and unique; String attributes must have positive
// width.
func NewSchema(attrs ...Attr) (*Schema, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("relation: schema needs at least one attribute")
	}
	s := &Schema{
		attrs:   make([]Attr, len(attrs)),
		byName:  make(map[string]int, len(attrs)),
		offsets: make([]int, len(attrs)),
	}
	copy(s.attrs, attrs)
	off := 0
	for i, a := range s.attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("relation: attribute %d has empty name", i)
		}
		if !a.Type.Valid() {
			return nil, fmt.Errorf("relation: attribute %q has invalid type", a.Name)
		}
		if a.Type == String && a.Width <= 0 {
			return nil, fmt.Errorf("relation: string attribute %q needs positive width", a.Name)
		}
		if _, dup := s.byName[a.Name]; dup {
			return nil, fmt.Errorf("relation: duplicate attribute name %q", a.Name)
		}
		s.byName[a.Name] = i
		s.offsets[i] = off
		off += a.ByteWidth()
	}
	s.tupleLen = off
	return s, nil
}

// MustSchema is NewSchema but panics on error. It is intended for
// statically known schemas in tests and examples.
func MustSchema(attrs ...Attr) *Schema {
	s, err := NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumAttrs returns the number of attributes.
func (s *Schema) NumAttrs() int { return len(s.attrs) }

// Attr returns the i'th attribute.
func (s *Schema) Attr(i int) Attr { return s.attrs[i] }

// Attrs returns a copy of the attribute list.
func (s *Schema) Attrs() []Attr {
	out := make([]Attr, len(s.attrs))
	copy(out, s.attrs)
	return out
}

// Index returns the position of the named attribute, or an error if the
// schema has no such attribute.
func (s *Schema) Index(name string) (int, error) {
	i, ok := s.byName[name]
	if !ok {
		return 0, fmt.Errorf("relation: no attribute %q (have %s)", name, s)
	}
	return i, nil
}

// HasAttr reports whether the schema contains the named attribute.
func (s *Schema) HasAttr(name string) bool {
	_, ok := s.byName[name]
	return ok
}

// Offset returns the byte offset of attribute i within an encoded tuple.
func (s *Schema) Offset(i int) int { return s.offsets[i] }

// TupleLen returns the fixed byte length of every tuple of this schema.
func (s *Schema) TupleLen() int { return s.tupleLen }

// String renders the schema as "(name type, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, a := range s.attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", a.Name, a.Type)
		if a.Type == String {
			fmt.Fprintf(&b, "[%d]", a.Width)
		}
	}
	b.WriteByte(')')
	return b.String()
}

// Equal reports whether two schemas have identical attribute lists.
func (s *Schema) Equal(o *Schema) bool {
	if s.NumAttrs() != o.NumAttrs() {
		return false
	}
	for i := range s.attrs {
		if s.attrs[i] != o.attrs[i] {
			return false
		}
	}
	return true
}

// Project returns a new schema containing only the named attributes, in
// the order given.
func (s *Schema) Project(names ...string) (*Schema, error) {
	attrs := make([]Attr, 0, len(names))
	for _, n := range names {
		i, err := s.Index(n)
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, s.attrs[i])
	}
	return NewSchema(attrs...)
}

// Concat returns the schema of the concatenation of a tuple of s followed
// by a tuple of o, as produced by a join. Name collisions are resolved by
// prefixing the colliding attribute of o with prefix + ".".
func (s *Schema) Concat(o *Schema, prefix string) (*Schema, error) {
	attrs := make([]Attr, 0, len(s.attrs)+len(o.attrs))
	attrs = append(attrs, s.attrs...)
	for _, a := range o.attrs {
		if s.HasAttr(a.Name) {
			a.Name = prefix + "." + a.Name
		}
		attrs = append(attrs, a)
	}
	return NewSchema(attrs...)
}

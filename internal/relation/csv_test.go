package relation

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	s := MustSchema(
		Attr{Name: "id", Type: Int32},
		Attr{Name: "big", Type: Int64},
		Attr{Name: "w", Type: Float64},
		Attr{Name: "name", Type: String, Width: 16},
	)
	r := MustNew("stuff", s, 512)
	for i := 0; i < 25; i++ {
		if err := r.Insert(Tuple{
			IntVal(int64(i)),
			IntVal(int64(i) * 1e9),
			FloatVal(float64(i) / 4),
			StringVal("row"),
		}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf, "stuff", s, 512)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if !got.EqualMultiset(r) {
		t.Errorf("round trip changed contents (%d vs %d tuples)",
			got.Cardinality(), r.Cardinality())
	}
}

func TestCSVHeader(t *testing.T) {
	s := MustSchema(Attr{Name: "a", Type: Int32}, Attr{Name: "b", Type: String, Width: 4})
	r := MustNew("r", s, 256)
	_ = r.Insert(Tuple{IntVal(1), StringVal("x")})
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "1,x" {
		t.Errorf("row = %q", lines[1])
	}
}

func TestReadCSVErrors(t *testing.T) {
	s := MustSchema(Attr{Name: "a", Type: Int32}, Attr{Name: "f", Type: Float64})
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"wrong header", "x,f\n1,2.0\n"},
		{"bad int", "a,f\nnope,2.0\n"},
		{"bad float", "a,f\n1,nope\n"},
		{"short row", "a,f\n1\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(c.in), "r", s, 256); err == nil {
				t.Error("ReadCSV succeeded, want error")
			}
		})
	}
}

func TestReadCSVStringTooWide(t *testing.T) {
	s := MustSchema(Attr{Name: "s", Type: String, Width: 3})
	if _, err := ReadCSV(strings.NewReader("s\ntoolong\n"), "r", s, 256); err == nil {
		t.Error("oversized string accepted")
	}
}

// Package server implements the dfdbm network query service: the host
// processor of the paper's Section 4 machine, made real. A Server
// listens on TCP, speaks the internal/wire protocol, runs one
// goroutine per client session, and funnels every received query
// through the internal/sched admission scheduler — the generalization
// of the master controller's read/write-set concurrency control — onto
// a pool of engine runners. Each session selects its engine at the
// Hello handshake: the concurrent data-flow engine (internal/core) or
// the simulated Section 4 ring machine (internal/machine).
//
// Results stream back as page frames in relation wire form, so the
// relation a client reassembles is byte-for-byte the relation the
// engine produced. Overload is shed, never buffered: a full admission
// queue, a full per-session in-flight window, or a full session table
// answers with an "overloaded" error frame immediately.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"dfdbm/internal/catalog"
	"dfdbm/internal/core"
	"dfdbm/internal/fault"
	"dfdbm/internal/hw"
	"dfdbm/internal/machine"
	"dfdbm/internal/obs"
	"dfdbm/internal/query"
	"dfdbm/internal/relation"
	"dfdbm/internal/sched"
	"dfdbm/internal/wal"
	"dfdbm/internal/wire"
)

// Engine names accepted in Config.Engine and the Hello handshake.
const (
	EngineCore    = "core"
	EngineMachine = "machine"
)

// Config parameterizes a Server.
type Config struct {
	// Addr is the TCP listen address; ":0" or "127.0.0.1:0" picks a
	// free port (see Server.Addr). Default "127.0.0.1:0".
	Addr string
	// Engine is the default execution engine for sessions that do not
	// request one in their Hello: EngineCore (default) or
	// EngineMachine.
	Engine string
	// MaxSessions bounds concurrent sessions; further connections are
	// refused with an "overloaded" error frame. Default 64.
	MaxSessions int
	// MaxInflight bounds the queries one session may have in flight;
	// excess queries are answered "overloaded" without touching the
	// scheduler. Default 4.
	MaxInflight int
	// QueueDepth and Runners configure the admission scheduler (see
	// sched.Config). MaxRunners bounds runtime pool resizes (defaults
	// to Runners: a fixed pool).
	QueueDepth int
	Runners    int
	MaxRunners int
	// Autoscale, when non-nil, attaches a sched.Autoscaler to the
	// runner pool: the pool resizes between Autoscale.Min and
	// Autoscale.Max against the scheduler's queue-depth and admit-wait
	// signals. MaxRunners is raised to Autoscale.Max if below it.
	Autoscale *sched.AutoscaleConfig
	// SessionTimeout is the per-session idle deadline: a session with
	// no in-flight query that sends nothing for this long is closed.
	// Default 5 minutes.
	SessionTimeout time.Duration
	// Workers is the worker-pool size of each core-engine execution.
	// Default 4.
	Workers int
	// Granularity is the core engine's scheduling unit. Default
	// core.PageLevel (the paper's recommendation).
	Granularity core.Granularity
	// PageSize sizes intermediate-result pages. 0 means the engine
	// defaults.
	PageSize int
	// IPs and ICs size each machine-engine execution. Defaults 16, 16.
	IPs, ICs int
	// MachineFault, when non-nil, builds a fresh fault plan for every
	// machine-engine query — the chaos hook: a plan that exhausts
	// recovery surfaces to the client as a typed "fault" error frame.
	MachineFault func() *fault.Plan
	// SlowQuery, when positive, is the end-to-end threshold (arrival
	// to final stats frame) above which a completed query is logged to
	// SlowQueryLog with its full stage breakdown and counted as
	// server.slow_queries.
	SlowQuery time.Duration
	// SlowQueryLog receives slow-query log lines (os.Stderr when nil).
	SlowQueryLog io.Writer
	// WAL, when non-nil, makes the write path durable: every append and
	// delete query is encoded as a redo record and fsynced into the log
	// before it is applied to the catalog or acknowledged to the
	// client. A server killed at any instant recovers exactly the
	// acknowledged writes on the next wal.Open.
	WAL *wal.Log
	// CheckpointEvery, with WAL, is the auto-checkpoint threshold: once
	// the log grows this many bytes past the last checkpoint, the
	// server schedules a checkpoint job whose footprint writes every
	// relation, so it runs under total admission exclusion. 0 defaults
	// to 8 MiB; negative disables auto-checkpointing (Checkpoint can
	// still be driven externally, e.g. at shutdown).
	CheckpointEvery int64
	// Obs, when non-nil, receives server events (sessions opened and
	// closed, queries received, results streamed), the server.*
	// counters and gauges, per-session and per-query spans (when spans
	// are enabled), the server.stream_ns histogram, and everything the
	// admission scheduler records. When the observer carries a flight
	// recorder (Observer.EnableFlight), every served query is recorded
	// in it: live while in flight with its current lifecycle stage,
	// then retained in the completed ring.
	Obs *obs.Observer
}

func (c Config) withDefaults() (Config, error) {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	switch c.Engine {
	case "":
		c.Engine = EngineCore
	case EngineCore, EngineMachine:
	default:
		return c, fmt.Errorf("server: unknown engine %q (want %q or %q)", c.Engine, EngineCore, EngineMachine)
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 4
	}
	if c.SessionTimeout <= 0 {
		c.SessionTimeout = 5 * time.Minute
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Granularity == 0 {
		c.Granularity = core.PageLevel
	}
	if c.IPs <= 0 {
		c.IPs = 16
	}
	if c.ICs <= 0 {
		c.ICs = 16
	}
	if c.SlowQuery > 0 && c.SlowQueryLog == nil {
		c.SlowQueryLog = os.Stderr
	}
	if c.WAL != nil && c.CheckpointEvery == 0 {
		c.CheckpointEvery = 8 << 20
	}
	return c, nil
}

// testExecGate, when non-nil, runs at the start of every scheduled
// query execution. Tests set it (before Start) to hold runners at a
// known point; it must respect ctx.
var testExecGate func(ctx context.Context)

// Server is a running query service.
type Server struct {
	cat    *catalog.Catalog
	cfg    Config
	start  time.Time
	sched  *sched.Scheduler
	engine *core.Engine // shared: safe for concurrent non-conflicting executions
	ln     net.Listener

	// flight is the observer's flight recorder (nil without one);
	// traceSeq assigns trace IDs to queries whose client did not
	// propose one; streamHist meters result-stream time; slowMu
	// serializes slow-query log lines.
	flight     *obs.FlightRecorder
	traceSeq   atomic.Uint64
	streamHist *obs.Histogram
	slowMu     sync.Mutex

	// ckptBusy singleflights auto-checkpoints: at most one checkpoint
	// job is queued or running at a time.
	ckptBusy atomic.Bool

	// execDelay, when positive, is an artificial delay (ns) injected at
	// the start of every scheduled execution — the load generator's
	// "node slowdown" fault: queries still run correctly, just slower,
	// so backlog, shedding, and autoscaling react as they would to a
	// degraded node.
	execDelay atomic.Int64

	// autoscaler is the runner-pool control loop (nil without
	// Config.Autoscale).
	autoscaler *sched.Autoscaler

	mu       sync.Mutex
	sessions map[int]*session
	nextSID  int
	draining bool
	closed   bool

	acceptWg sync.WaitGroup // the accept loop
	sessWg   sync.WaitGroup // session goroutines
	queryWg  sync.WaitGroup // per-query result streamers
}

// Start builds a server over the catalog and begins accepting
// sessions.
func Start(cat *catalog.Catalog, cfg Config) (*Server, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{
		cat:      cat,
		cfg:      cfg,
		start:    time.Now(),
		ln:       ln,
		sessions: map[int]*session{},
		nextSID:  1, // 0 is "no session" on the wire (Hello.SessionID)
		flight:   cfg.Obs.Flight(),
	}
	maxRunners := cfg.MaxRunners
	if cfg.Autoscale != nil && cfg.Autoscale.Max > maxRunners {
		maxRunners = cfg.Autoscale.Max
	}
	s.sched = sched.New(sched.Config{
		Runners:    cfg.Runners,
		MaxRunners: maxRunners,
		QueueDepth: cfg.QueueDepth,
		Obs:        cfg.Obs,
	})
	if cfg.Autoscale != nil {
		s.autoscaler = sched.StartAutoscaler(s.sched, *cfg.Autoscale)
	}
	s.engine = core.New(cat, core.Options{
		Granularity: cfg.Granularity,
		Workers:     cfg.Workers,
		PageSize:    cfg.PageSize,
		Obs:         cfg.Obs,
	})
	if cfg.Obs.MetricsOn() {
		s.streamHist = cfg.Obs.Registry().Histogram("server.stream_ns", obs.DurationBuckets())
	}
	s.acceptWg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address ("127.0.0.1:43781").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// SetExecDelay injects (or, with 0, removes) an artificial delay at the
// start of every scheduled query execution — the load generator's node
// slowdown fault. Safe to call at any time.
func (s *Server) SetExecDelay(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.execDelay.Store(int64(d))
}

// Scheduler exposes the admission scheduler, for control loops layered
// above the server (the load generator resizes the runner pool through
// it when comparing fixed and autoscaled configurations).
func (s *Server) Scheduler() *sched.Scheduler { return s.sched }

// Config returns the server's effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

func (s *Server) acceptLoop() {
	defer s.acceptWg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed: shutting down
		}
		s.mu.Lock()
		if s.draining || s.closed {
			s.mu.Unlock()
			_ = wire.Write(conn, &wire.Error{QueryID: wire.SessionQueryID, Code: wire.CodeDraining, Msg: "server is shutting down"})
			conn.Close()
			continue
		}
		if len(s.sessions) >= s.cfg.MaxSessions {
			s.mu.Unlock()
			s.count("server.sessions_refused", 1)
			_ = wire.Write(conn, &wire.Error{QueryID: wire.SessionQueryID, Code: wire.CodeOverloaded,
				Msg: fmt.Sprintf("session table full (%d sessions)", s.cfg.MaxSessions)})
			conn.Close()
			continue
		}
		sid := s.nextSID
		s.nextSID++
		sess := &session{
			id:     sid,
			srv:    s,
			conn:   conn,
			br:     bufio.NewReader(conn),
			engine: s.cfg.Engine,
			ver:    wire.Version, // until the handshake negotiates
		}
		s.sessions[sid] = sess
		active := len(s.sessions)
		s.mu.Unlock()

		s.count("server.sessions", 1)
		s.gauge("server.sessions_active", float64(active))
		s.event(obs.EvNote, -1, "session %d open from %s (%d active)", sid, conn.RemoteAddr(), active)
		s.sessWg.Add(1)
		go sess.run()
	}
}

// remove unregisters a finished session.
func (s *Server) remove(sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess.id)
	active := len(s.sessions)
	s.mu.Unlock()
	s.gauge("server.sessions_active", float64(active))
	s.event(obs.EvNote, -1, "session %d closed (%d active)", sess.id, active)
}

// Draining reports whether a graceful shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown drains the server gracefully: the listener closes, new
// queries are rejected with "draining" error frames, and in-flight
// queries run to completion with their results fully streamed. When
// ctx expires first, remaining work is cancelled and ctx's error
// returned. The paper's host processor behaves the same way: the MC
// finishes what it admitted, and admits nothing more.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.mu.Unlock()
	s.event(obs.EvNote, -1, "drain: rejecting new work, finishing in-flight queries")
	s.ln.Close()
	s.acceptWg.Wait()
	s.autoscaler.Stop()

	drainErr := s.sched.Drain(ctx) // nil, or ctx's error after cancelling
	// Wait for result streams to flush (bounded by ctx).
	streamed := make(chan struct{})
	go func() {
		s.queryWg.Wait()
		close(streamed)
	}()
	select {
	case <-streamed:
	case <-ctx.Done():
		if drainErr == nil {
			drainErr = ctx.Err()
		}
	}
	s.closeSessions()
	s.sessWg.Wait()
	s.queryWg.Wait()
	s.markClosed()
	return drainErr
}

// Close stops the server immediately: in-flight queries are cancelled.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.mu.Unlock()
	s.ln.Close()
	s.acceptWg.Wait()
	s.autoscaler.Stop()
	s.sched.Close()
	s.closeSessions()
	s.sessWg.Wait()
	s.queryWg.Wait()
	s.markClosed()
	return nil
}

func (s *Server) markClosed() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

func (s *Server) closeSessions() {
	s.mu.Lock()
	for _, sess := range s.sessions {
		sess.conn.Close()
	}
	s.mu.Unlock()
}

// bindError marks a query that failed name or schema resolution, so
// the result streamer answers it with the parse error code even though
// binding happens inside the scheduled execution.
type bindError struct{ err error }

func (e *bindError) Error() string { return e.err.Error() }
func (e *bindError) Unwrap() error { return e.err }

// queryResult is a self-contained, wire-ready copy of one result
// relation. See snapshotResult.
type queryResult struct {
	name     string
	pageSize uint32
	schema   []wire.SchemaAttr
	pages    [][]byte // relation.Page wire form, one blob per page
	tuples   int64
}

// snapshotResult deep-copies rel into wire-ready form. It must run
// inside a job's scheduled Exec: append and delete queries hand back
// the live shared catalog relation, and once the scheduler retires the
// job a conflicting writer may be admitted and mutate that relation
// concurrently. Snapshotting while the job still occupies the running
// set pins the streamed bytes to the state this query produced, under
// the same admission exclusion that guarded its execution.
func snapshotResult(rel *relation.Relation) (*queryResult, error) {
	schema := rel.Schema()
	attrs := make([]wire.SchemaAttr, schema.NumAttrs())
	for i := range attrs {
		a := schema.Attr(i)
		attrs[i] = wire.SchemaAttr{Name: a.Name, Type: uint8(a.Type), Width: uint32(a.Width)}
	}
	// EachPage streams stored relations through the buffer pool one
	// pinned frame at a time, so snapshotting never needs the whole
	// relation resident.
	blobs := make([][]byte, 0, rel.NumPages())
	if err := rel.EachPage(func(pg *relation.Page) error {
		blobs = append(blobs, pg.Marshal())
		return nil
	}); err != nil {
		return nil, fmt.Errorf("server: snapshot of %q: %w", rel.Name(), err)
	}
	return &queryResult{
		name:     rel.Name(),
		pageSize: uint32(rel.PageSize()),
		schema:   attrs,
		pages:    blobs,
		tuples:   int64(rel.Cardinality()),
	}, nil
}

// execDurable runs a write query through the write-ahead log: build
// the redo record first (executing the pure input subtree for appends,
// without applying it), make the record durable, then apply it to the
// catalog through the same wal.Record.Apply that crash recovery uses —
// so the recovered state is byte-identical to the live one by
// construction. Must run inside the query's scheduled Exec: the job's
// write footprint is the exclusion that keeps log order equal to
// apply order per relation.
func (s *Server) execDurable(ctx context.Context, root *query.Node,
	exec func(context.Context, *query.Tree) (*relation.Relation, error)) (any, error) {
	rec := &wal.Record{Rel: root.Rel}
	switch root.Kind {
	case query.OpAppend:
		dst, err := s.cat.Get(root.Rel)
		if err != nil {
			return nil, err
		}
		// Execute the input subtree as its own pure query: the engine
		// computes the tuples to append but the effect is ours to apply,
		// after the log write. Bind validated the full tree already, so
		// source/destination compatibility holds.
		srcTree, err := query.Bind(root.Inputs[0], s.cat)
		if err != nil {
			return nil, &bindError{err}
		}
		src, err := exec(ctx, srcTree)
		if err != nil {
			return nil, err
		}
		// AppendRecord picks the representation by dst's storage mode:
		// logical tuple pages for resident relations, full post-image
		// pages (torn-write-proof physical redo) for heap-backed ones.
		rec, err = wal.AppendRecord(dst, src)
		if err != nil {
			return nil, err
		}
	case query.OpDelete:
		rec.Type = wal.RecDelete
		rec.Pred = root.Pred.String()
	default:
		return nil, fmt.Errorf("server: execDurable on %s", root.Kind)
	}

	// The commit point: after Append returns, the write is durable and
	// may be acknowledged; before it, nothing has touched the catalog.
	if _, err := s.cfg.WAL.Append(rec); err != nil {
		return nil, fmt.Errorf("server: wal append: %w", err)
	}
	rel, err := rec.Apply(s.cat)
	if err != nil {
		// The record is durable but the in-memory apply failed — only
		// reachable through a bug, since binding pre-validated the
		// write. Surface it loudly: recovery would include this record.
		s.count("server.durable_apply_errors", 1)
		return nil, fmt.Errorf("server: logged write failed to apply (recovery will replay it): %w", err)
	}
	s.count("server.durable_writes", 1)
	res, err := snapshotResult(rel)
	if err != nil {
		return nil, err
	}
	s.maybeCheckpoint()
	return res, nil
}

// maybeCheckpoint schedules a checkpoint job once the log outgrows the
// configured threshold. The job's footprint writes every relation, so
// the scheduler runs it only when no other query is in flight — the
// quiescent instant a consistent snapshot needs. Singleflighted: at
// most one checkpoint is queued or running.
func (s *Server) maybeCheckpoint() {
	every := s.cfg.CheckpointEvery
	if every <= 0 || s.cfg.WAL.SizeSinceCheckpoint() < every {
		return
	}
	if !s.ckptBusy.CompareAndSwap(false, true) {
		return
	}
	job := &sched.Job{
		Session:   "wal",
		Label:     "wal/checkpoint",
		Footprint: query.Footprint{Writes: s.cat.Names()},
		Exec: func(context.Context) (any, error) {
			return nil, s.cfg.WAL.Checkpoint(s.cat)
		},
	}
	outc, err := s.sched.Submit(job)
	if err != nil {
		// Queue full or draining: drop this attempt, a later write
		// retries.
		s.ckptBusy.Store(false)
		return
	}
	go func() {
		o := <-outc
		s.ckptBusy.Store(false)
		if o.Err != nil {
			s.count("server.checkpoint_errors", 1)
			s.event(obs.EvNote, -1, "checkpoint failed: %v", o.Err)
			return
		}
		s.event(obs.EvNote, -1, "checkpoint complete (log truncated)")
	}()
}

// Checkpoint forces a catalog snapshot through the admission scheduler
// (total write exclusion) and waits for it. No-op without a WAL.
func (s *Server) Checkpoint(ctx context.Context) error {
	if s.cfg.WAL == nil {
		return nil
	}
	job := &sched.Job{
		Session:   "wal",
		Label:     "wal/checkpoint",
		Footprint: query.Footprint{Writes: s.cat.Names()},
		Exec: func(context.Context) (any, error) {
			return nil, s.cfg.WAL.Checkpoint(s.cat)
		},
	}
	outc, err := s.sched.Submit(job)
	if err != nil {
		return err
	}
	select {
	case o := <-outc:
		return o.Err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// execCore runs one query on the shared concurrent engine.
func (s *Server) execCore(ctx context.Context, t *query.Tree) (*relation.Relation, error) {
	res, err := s.engine.ExecuteContext(ctx, t)
	if err != nil {
		return nil, err
	}
	return res.Relation, nil
}

// execMachine runs one query on a fresh simulated ring machine (the
// simulator is single-use per run; the catalog is shared).
func (s *Server) execMachine(_ context.Context, t *query.Tree) (*relation.Relation, error) {
	mcfg := machine.Config{IPs: s.cfg.IPs, ICs: s.cfg.ICs}
	if s.cfg.PageSize > 0 {
		mcfg.HW = hw.Default1979()
		mcfg.HW.PageSize = s.cfg.PageSize
	}
	if s.cfg.MachineFault != nil {
		mcfg.Fault = s.cfg.MachineFault()
	}
	m, err := machine.New(s.cat, mcfg)
	if err != nil {
		return nil, err
	}
	if err := m.Submit(t); err != nil {
		return nil, err
	}
	res, err := m.Run()
	if err != nil {
		return nil, err
	}
	if len(res.PerQuery) != 1 {
		return nil, fmt.Errorf("server: machine run returned %d results, want 1", len(res.PerQuery))
	}
	return res.PerQuery[0].Relation, nil
}

func (s *Server) count(name string, delta int64) {
	if s.cfg.Obs.MetricsOn() {
		s.cfg.Obs.Registry().Inc(name, delta)
	}
}

func (s *Server) gauge(name string, v float64) {
	if s.cfg.Obs.MetricsOn() {
		s.cfg.Obs.Registry().SetGauge(name, v)
	}
}

func (s *Server) event(kind obs.EventKind, queryID int, format string, args ...any) {
	if !s.cfg.Obs.Enabled() {
		return
	}
	s.cfg.Obs.Emit(obs.Event{
		TS:    time.Since(s.start),
		Kind:  kind,
		Comp:  "server",
		Query: queryID,
		Instr: -1,
		Page:  -1,
		Msg:   fmt.Sprintf(format, args...),
	})
}

// session is one client connection.
type session struct {
	id     int
	srv    *Server
	conn   net.Conn
	br     *bufio.Reader
	engine string
	name   string
	ver    uint16 // negotiated wire version; frames cross at this version

	wmu sync.Mutex // serializes frame writes across query streamers

	imu      sync.Mutex
	inflight int

	span *obs.Span
}

func (c *session) run() {
	s := c.srv
	defer s.sessWg.Done()
	defer s.remove(c)
	defer c.conn.Close()

	if !c.handshake() {
		return
	}
	if s.cfg.Obs.SpansOn() {
		c.span = s.cfg.Obs.Spans().Begin(obs.SpanSession, nil, time.Since(s.start),
			"server", fmt.Sprintf("session %d (%s)", c.id, c.engine), -1, -1, -1)
		defer func() {
			s.cfg.Obs.Spans().End(c.span, time.Since(s.start))
		}()
	}

	for {
		_ = c.conn.SetReadDeadline(time.Now().Add(s.cfg.SessionTimeout))
		// Wait for the first byte of the next frame separately from
		// decoding it: a deadline that fires here has consumed
		// nothing, so while results are still being computed or
		// streamed the session is not dead — the client is just quiet
		// — and it is safe to re-arm. A deadline firing inside
		// wire.Read would leave a partially consumed frame behind, and
		// re-arming then would desync the frame stream for the rest of
		// the session; that session is protocol-broken and closes.
		if _, err := c.br.Peek(1); err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() && c.inflightCount() > 0 {
				continue
			}
			return // EOF or idle timeout: session over
		}
		f, err := wire.ReadVersion(c.br, c.ver)
		if err != nil {
			return // torn or malformed frame: session over
		}
		q, ok := f.(*wire.Query)
		if !ok {
			c.writeFrame(&wire.Error{QueryID: wire.SessionQueryID, Code: wire.CodeProtocol,
				Msg: fmt.Sprintf("unexpected %s frame", f.Type())})
			return
		}
		if q.ID == wire.SessionQueryID {
			c.writeFrame(&wire.Error{QueryID: wire.SessionQueryID, Code: wire.CodeProtocol,
				Msg: "reserved query id"})
			return
		}
		c.handleQuery(q)
	}
}

// handshake performs the Hello exchange; false means the session must
// close.
func (c *session) handshake() bool {
	_ = c.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	f, err := wire.Read(c.br)
	if err != nil {
		return false
	}
	h, ok := f.(*wire.Hello)
	if !ok {
		c.writeFrame(&wire.Error{QueryID: wire.SessionQueryID, Code: wire.CodeProtocol,
			Msg: fmt.Sprintf("handshake: got %s frame, want hello", f.Type())})
		return false
	}
	v, err := wire.Negotiate(h.Min, h.Max, wire.MinVersion, wire.Version)
	if err != nil {
		c.writeFrame(&wire.Error{QueryID: wire.SessionQueryID, Code: wire.CodeVersion, Msg: err.Error()})
		return false
	}
	switch h.Engine {
	case "":
	case EngineCore, EngineMachine:
		c.engine = h.Engine
	default:
		c.writeFrame(&wire.Error{QueryID: wire.SessionQueryID, Code: wire.CodeProtocol,
			Msg: fmt.Sprintf("unknown engine %q", h.Engine)})
		return false
	}
	c.name = h.Name
	// Every frame after this reply crosses at the negotiated version; a
	// v1 peer never sees v2 fields. The reply itself must too — the
	// latched version governs whether SessionID is encoded at all.
	c.ver = v
	return c.writeFrame(&wire.Hello{Min: v, Max: v, Engine: c.engine, Name: "dfdbm", SessionID: uint64(c.id)})
}

func (c *session) inflightCount() int {
	c.imu.Lock()
	defer c.imu.Unlock()
	return c.inflight
}

// handleQuery parses, schedules, and (in a streamer goroutine) answers
// one query.
func (c *session) handleQuery(q *wire.Query) {
	s := c.srv
	// Register with the drain barrier first, under the server lock and
	// only while not draining: Shutdown marks draining under the same
	// lock before waiting on queryWg, so the barrier can never observe
	// a zero counter while a just-received query is still on its way
	// to the scheduler (the documented WaitGroup Add/Wait race), and a
	// drain cannot close the session under a result stream that was
	// about to start. Every non-streaming return below must Done.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		c.writeFrame(&wire.Error{QueryID: q.ID, Code: wire.CodeDraining, Msg: "server is draining"})
		return
	}
	s.queryWg.Add(1)
	s.mu.Unlock()

	// One trace ID identifies this query end to end: the client's, when
	// it proposed one over the wire, otherwise server-assigned. It keys
	// the flight-recorder entry and rides back on the stats frame, so
	// client, server, and recorder all agree on which query is which.
	traceID := q.TraceID
	if traceID == 0 {
		traceID = s.traceSeq.Add(1)
	}
	arrival := time.Now()
	lane := sched.LaneFromPriority(q.Priority)
	s.flight.Start(obs.QueryRecord{
		TraceID: traceID,
		Session: uint64(c.id),
		QueryID: q.ID,
		Lane:    lane.String(),
		Engine:  c.engine,
		Text:    q.Text,
		Start:   arrival,
	})

	c.imu.Lock()
	if c.inflight >= s.cfg.MaxInflight {
		c.imu.Unlock()
		s.queryWg.Done()
		s.count("server.queries_shed", 1)
		s.flight.Finish(traceID, obs.OutcomeShed, nil)
		c.writeFrame(&wire.Error{QueryID: q.ID, Code: wire.CodeOverloaded,
			Msg: fmt.Sprintf("session in-flight limit (%d) reached", s.cfg.MaxInflight)})
		return
	}
	c.inflight++
	c.imu.Unlock()
	release := func() {
		c.imu.Lock()
		c.inflight--
		c.imu.Unlock()
	}

	s.count("server.queries", 1)
	root, err := query.Parse(q.Text)
	if err != nil {
		release()
		s.queryWg.Done()
		s.flight.Finish(traceID, obs.OutcomeError+":"+wire.CodeParse, nil)
		c.writeFrame(&wire.Error{QueryID: q.ID, Code: wire.CodeParse, Msg: err.Error()})
		return
	}

	var qspan *obs.Span
	if s.cfg.Obs.SpansOn() {
		qspan = s.cfg.Obs.Spans().Begin(obs.SpanQuery, c.span, time.Since(s.start),
			"server", fmt.Sprintf("s%d/q%d %s", c.id, q.ID, q.Text), int(q.ID), -1, -1)
	}
	endSpan := func() {
		if qspan != nil {
			s.cfg.Obs.Spans().End(qspan, time.Since(s.start))
		}
	}

	engine := c.engine
	exec := s.execCore
	if engine == EngineMachine {
		exec = s.execMachine
	}
	job := &sched.Job{
		Session:   fmt.Sprintf("s%d", c.id),
		Label:     fmt.Sprintf("s%d/q%d", c.id, q.ID),
		Lane:      lane,
		Footprint: query.Analyze(root),
		QueryID:   int(q.ID),
		Exec: func(ctx context.Context) (any, error) {
			if testExecGate != nil {
				testExecGate(ctx)
			}
			if d := s.execDelay.Load(); d > 0 {
				t := time.NewTimer(time.Duration(d))
				select {
				case <-t.C:
				case <-ctx.Done():
					t.Stop()
					return nil, ctx.Err()
				}
			}
			s.flight.SetStage(traceID, obs.StageExecute)
			if qspan != nil {
				tr := s.cfg.Obs.Spans()
				stage := tr.Begin(obs.SpanStage, qspan, time.Since(s.start),
					"server", "execute", int(q.ID), -1, -1)
				defer func() { tr.End(stage, time.Since(s.start)) }()
				// The engine roots its own span tree under this stage
				// span, on the server's clock, so one query is one
				// connected tree from session down to worker bursts.
				ctx = obs.WithSpanContext(ctx, obs.SpanContext{
					Parent: stage, Epoch: s.start, Query: int(q.ID)})
			}
			// Bind inside the scheduled execution, not on the session
			// goroutine: binding reads catalog relation schemas, and a
			// running delete rewrites its target relation in place, so
			// name resolution is only safe under the same admission
			// exclusion that guards execution. The footprint needs no
			// binding — Analyze reads only relation names.
			tree, err := query.Bind(root, s.cat)
			if err != nil {
				return nil, &bindError{err}
			}
			// With a WAL attached, writes take the durable path: log,
			// fsync, then apply — all still under this job's admission
			// exclusion, so the record hits stable storage before the
			// catalog mutates and before any acknowledgement.
			if s.cfg.WAL != nil && (root.Kind == query.OpAppend || root.Kind == query.OpDelete) {
				return s.execDurable(ctx, root, exec)
			}
			rel, err := exec(ctx, tree)
			if err != nil {
				return nil, err
			}
			return snapshotResult(rel)
		},
	}
	submitted := time.Since(s.start)
	outc, err := s.sched.Submit(job)
	if err != nil {
		release()
		endSpan()
		s.queryWg.Done()
		code := wire.CodeOverloaded
		if errors.Is(err, sched.ErrDraining) || errors.Is(err, sched.ErrClosed) {
			code = wire.CodeDraining
		}
		s.count("server.queries_shed", 1)
		s.flight.Finish(traceID, obs.OutcomeShed, nil)
		c.writeFrame(&wire.Error{QueryID: q.ID, Code: code, Msg: err.Error()})
		return
	}

	go func() {
		defer s.queryWg.Done()
		defer release()
		defer endSpan()
		o := <-outc
		// The scheduler's outcome is the only place the pre-execution
		// stages are measured, so the admit-wait and schedule stage
		// spans are recorded retroactively from it, back to back from
		// the submit instant.
		if qspan != nil {
			tr := s.cfg.Obs.Spans()
			tr.Record(obs.SpanStage, qspan, submitted, submitted+o.AdmitWait,
				"server", "admit-wait", int(q.ID), -1, -1)
			tr.Record(obs.SpanStage, qspan, submitted+o.AdmitWait, submitted+o.AdmitWait+o.Dispatch,
				"server", "schedule", int(q.ID), -1, -1)
		}
		if o.Err != nil {
			code := wire.CodeExec
			var fe *machine.FaultError
			var be *bindError
			switch {
			case errors.As(o.Err, &be):
				code = wire.CodeParse
			case errors.As(o.Err, &fe):
				code = wire.CodeFault
			case errors.Is(o.Err, sched.ErrClosed), errors.Is(o.Err, context.Canceled):
				code = wire.CodeDraining
			}
			s.count("server.queries_failed", 1)
			s.flight.Finish(traceID, obs.OutcomeError+":"+code, func(r *obs.QueryRecord) {
				r.AdmitWait, r.Sched, r.Exec = o.AdmitWait, o.Dispatch, o.Run
				r.Total = time.Since(arrival)
				r.Deferred = o.Deferred
			})
			c.writeFrame(&wire.Error{QueryID: q.ID, Code: code, Msg: o.Err.Error()})
			return
		}
		c.streamResult(q.ID, engine, o.Value.(*queryResult), o, traceID, lane, qspan, arrival)
	}()
}

// streamResult writes the result pages and closing stats frame. It
// runs after the scheduler retired the query, so it must only touch
// the snapshot, never a live relation.
func (c *session) streamResult(qid uint32, engine string, res *queryResult, o sched.Outcome,
	traceID uint64, lane sched.Lane, qspan *obs.Span, arrival time.Time) {
	s := c.srv
	s.flight.SetStage(traceID, obs.StageStream)
	streamFrom := time.Now()
	streamAt := time.Since(s.start)
	var bytesOut int64
	if len(res.pages) == 0 {
		if !c.writeFrame(&wire.ResultPage{QueryID: qid, Seq: 0, Last: true,
			Name: res.name, PageSize: res.pageSize, Schema: res.schema}) {
			s.flight.Finish(traceID, obs.OutcomeError+":stream", nil)
			return
		}
	}
	for i, blob := range res.pages {
		f := &wire.ResultPage{QueryID: qid, Seq: uint32(i), Last: i == len(res.pages)-1, Page: blob}
		if i == 0 {
			f.Name = res.name
			f.PageSize = res.pageSize
			f.Schema = res.schema
		}
		bytesOut += int64(len(blob))
		if !c.writeFrame(f) {
			s.flight.Finish(traceID, obs.OutcomeError+":stream", nil)
			return
		}
	}
	streamed := time.Since(streamFrom)
	if qspan != nil {
		s.cfg.Obs.Spans().Record(obs.SpanStage, qspan, streamAt, streamAt+streamed,
			"server", "stream", int(qid), -1, -1)
	}
	s.streamHist.ObserveDuration(streamed)
	s.count("server.result_pages", int64(len(res.pages)))
	s.count("server.result_bytes", bytesOut)
	c.writeFrame(&wire.Stats{
		QueryID:     qid,
		Engine:      engine,
		Tuples:      res.tuples,
		Pages:       int64(len(res.pages)),
		ResultBytes: bytesOut,
		Queued:      o.Queued,
		Exec:        o.Run,
		Deferred:    o.Deferred,
		TraceID:     traceID,
		AdmitWait:   o.AdmitWait,
		Sched:       o.Dispatch,
		Stream:      streamed,
	})
	total := time.Since(arrival)
	s.flight.Finish(traceID, obs.OutcomeOK, func(r *obs.QueryRecord) {
		r.AdmitWait, r.Sched, r.Exec, r.Stream = o.AdmitWait, o.Dispatch, o.Run, streamed
		r.Total = total
		r.Tuples = res.tuples
		r.Pages = int64(len(res.pages))
		r.Deferred = o.Deferred
	})
	if s.cfg.SlowQuery > 0 && total >= s.cfg.SlowQuery {
		s.count("server.slow_queries", 1)
		s.slowMu.Lock()
		fmt.Fprintf(s.cfg.SlowQueryLog,
			"dfdbm: slow query trace=%d s%d/q%d lane=%s engine=%s total=%v admit-wait=%v sched=%v exec=%v stream=%v tuples=%d\n",
			traceID, c.id, qid, lane.String(), engine,
			total.Round(time.Microsecond), o.AdmitWait.Round(time.Microsecond),
			o.Dispatch.Round(time.Microsecond), o.Run.Round(time.Microsecond),
			streamed.Round(time.Microsecond), res.tuples)
		s.slowMu.Unlock()
	}
	s.event(obs.EvResult, int(qid), "s%d/q%d: %d tuples in %d pages (%s, queued %v, ran %v)",
		c.id, qid, res.tuples, len(res.pages), engine, o.Queued.Round(time.Microsecond), o.Run.Round(time.Microsecond))
}

// writeFrame writes one frame under the session write lock; false
// means the connection is gone.
func (c *session) writeFrame(f wire.Frame) bool {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	_ = c.conn.SetWriteDeadline(time.Now().Add(c.srv.cfg.SessionTimeout))
	return wire.WriteVersion(c.conn, f, c.ver) == nil
}

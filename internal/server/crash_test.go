package server

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"syscall"
	"testing"
	"time"

	"dfdbm/internal/catalog"
	"dfdbm/internal/wal"
	"dfdbm/internal/workload"
)

// chaosOps is the deterministic write script the kill -9 harness
// drives: a single sequential client issues these in order, so the
// acknowledged set is always a prefix.
var chaosOps = []string{
	`append(r15, restrict(r1, val < 120))`,
	`delete(r15, val < 40)`,
	`append(r14, restrict(r2, val < 300))`,
	`append(r13, restrict(r3, val < 500))`,
	`delete(r14, val < 250)`,
	`append(r15, restrict(r4, val < 400))`,
	`append(r12, restrict(r5, val < 350))`,
	`delete(r13, val < 100)`,
	`append(r11, restrict(r6, val < 600))`,
	`append(r15, restrict(r7, val < 200))`,
	`delete(r12, val < 150)`,
	`append(r14, restrict(r8, val < 450))`,
}

// chaosSeedCatalog is the deterministic database every crash-harness
// process starts from.
func chaosSeedCatalog(t testing.TB) *catalog.Catalog {
	t.Helper()
	cat, _, err := workload.Build(workload.Config{Seed: 42, Scale: 0.05, PageSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

// TestHelperCrashServer is not a test: re-executed as a child process
// by TestCrashRecoveryChaos, it runs a WAL-backed server on the data
// directory from the environment until it is killed.
func TestHelperCrashServer(t *testing.T) {
	dir := os.Getenv("DFDBM_CRASH_DIR")
	if dir == "" {
		t.Skip("crash-server helper: run by TestCrashRecoveryChaos only")
	}
	l, cat, _, err := wal.Open(dir, chaosWALOptions(os.Getenv("DFDBM_CRASH_HEAP_FRAMES")))
	if err != nil {
		t.Fatalf("helper: %v", err)
	}
	if cat == nil {
		cat = chaosSeedCatalog(t)
		if err := l.Checkpoint(cat); err != nil {
			t.Fatalf("helper: seed checkpoint: %v", err)
		}
	}
	s, err := Start(cat, Config{Addr: "127.0.0.1:0", WAL: l, CheckpointEvery: -1})
	if err != nil {
		t.Fatalf("helper: %v", err)
	}
	// The address file signals readiness: it appears only after the
	// seed state is durable and the listener is up.
	if err := os.WriteFile(os.Getenv("DFDBM_CRASH_ADDRFILE"), []byte(s.Addr()), 0o644); err != nil {
		t.Fatalf("helper: %v", err)
	}
	select {} // hold the server open until kill -9
}

// chaosWALOptions maps the helper's frames env var to WAL options:
// empty or "0" keeps the legacy snapshot mode, anything else enables
// heap-file storage with that buffer-pool budget.
func chaosWALOptions(frames string) wal.Options {
	n, _ := strconv.Atoi(frames)
	if n <= 0 {
		return wal.Options{}
	}
	return wal.Options{Heap: &wal.HeapOptions{Frames: n}}
}

// equalCatalogs compares two catalogs as multisets per relation — the
// page-order-independent notion of "same database state".
func equalCatalogs(a, b *catalog.Catalog) (bool, string) {
	an, bn := a.Names(), b.Names()
	if len(an) != len(bn) {
		return false, fmt.Sprintf("%d relations vs %d", len(an), len(bn))
	}
	for i, name := range an {
		if bn[i] != name {
			return false, fmt.Sprintf("relation set differs at %q vs %q", name, bn[i])
		}
		ra, err := a.Get(name)
		if err != nil {
			return false, err.Error()
		}
		rb, err := b.Get(name)
		if err != nil {
			return false, err.Error()
		}
		if !ra.EqualMultiset(rb) {
			return false, fmt.Sprintf("%s: %d tuples vs %d (or differing contents)",
				name, ra.Cardinality(), rb.Cardinality())
		}
	}
	return true, ""
}

// TestCrashRecoveryChaos is the kill -9 loop: each iteration starts a
// WAL-backed server in a child process, drives the deterministic write
// script from a single client, SIGKILLs the child at a random moment,
// recovers the data directory in-process, and checks the acked-prefix
// invariant — the recovered state equals the seed plus either exactly
// the acknowledged writes or those plus the single in-flight write
// that reached the log before its acknowledgement was sent.
func TestCrashRecoveryChaos(t *testing.T) { runCrashRecoveryChaos(t, 0) }

// TestCrashRecoveryChaosHeap is the same kill -9 loop over heap-file
// storage with a buffer pool far below the working set (8 frames of
// 2KiB pages), so eviction write-backs are in flight when the SIGKILL
// lands — the torn-slot case RecAppendPages exists for.
func TestCrashRecoveryChaosHeap(t *testing.T) { runCrashRecoveryChaos(t, 8) }

func runCrashRecoveryChaos(t *testing.T, heapFrames int) {
	if testing.Short() {
		t.Skip("crash chaos loop is not -short")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	seed := int64(1)
	if env := os.Getenv("DFDBM_CHAOS_SEED"); env != "" {
		n, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("DFDBM_CHAOS_SEED: %v", err)
		}
		seed = n
	}
	rng := rand.New(rand.NewSource(seed))

	// The script is cycled so the kill window overlaps in-flight
	// writes: re-running an append grows the target again and
	// re-running a delete is a no-op, both deterministic.
	ops := make([]string, 0, 3*len(chaosOps))
	for i := 0; i < 3; i++ {
		ops = append(ops, chaosOps...)
	}

	const iterations = 4
	for it := 0; it < iterations; it++ {
		it := it
		killAfter := time.Duration(1+rng.Intn(60)) * time.Millisecond
		t.Run(fmt.Sprintf("iter%d", it), func(t *testing.T) {
			dir := t.TempDir()
			addrFile := filepath.Join(t.TempDir(), "addr")
			cmd := exec.Command(exe, "-test.run=TestHelperCrashServer$", "-test.v")
			cmd.Env = append(os.Environ(),
				"DFDBM_CRASH_DIR="+dir, "DFDBM_CRASH_ADDRFILE="+addrFile,
				"DFDBM_CRASH_HEAP_FRAMES="+strconv.Itoa(heapFrames))
			out, err := os.CreateTemp(t.TempDir(), "helper-*.log")
			if err != nil {
				t.Fatal(err)
			}
			cmd.Stdout, cmd.Stderr = out, out
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			defer func() {
				_ = cmd.Process.Kill()
				_ = cmd.Wait()
			}()

			var addr string
			deadline := time.Now().Add(20 * time.Second)
			for addr == "" {
				if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
					addr = string(b)
					break
				}
				if time.Now().After(deadline) {
					log, _ := os.ReadFile(out.Name())
					t.Fatalf("helper server never came up; log:\n%s", log)
				}
				time.Sleep(5 * time.Millisecond)
			}
			c, err := Dial(addr, ClientConfig{Timeout: 5 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			killed := make(chan struct{})
			go func() {
				defer close(killed)
				time.Sleep(killAfter)
				_ = syscall.Kill(cmd.Process.Pid, syscall.SIGKILL)
			}()

			acked := 0
			for _, op := range ops {
				if _, err := c.Query(context.Background(), op); err != nil {
					break
				}
				acked++
			}
			<-killed
			_ = cmd.Wait()

			// Cold recovery of the crashed directory, same storage mode.
			l2, got, rv, err := wal.Open(dir, chaosWALOptions(strconv.Itoa(heapFrames)))
			if err != nil {
				t.Fatalf("recovery after kill -9 (acked %d): %v", acked, err)
			}
			defer l2.Close()
			if got == nil {
				t.Fatalf("recovery returned a fresh directory although the seed was durable (acked %d)", acked)
			}

			// Reference: replay acked prefix through an identical
			// WAL-backed server, then try the +1 in-flight write.
			ref, refCat := startRefServer(t)
			for _, op := range ops[:acked] {
				if _, err := ref.Query(context.Background(), op); err != nil {
					t.Fatalf("reference replay %q: %v", op, err)
				}
			}
			ok, why := equalCatalogs(got, refCat)
			if !ok && acked < len(ops) {
				if _, err := ref.Query(context.Background(), ops[acked]); err != nil {
					t.Fatalf("reference replay %q: %v", ops[acked], err)
				}
				ok, why = equalCatalogs(got, refCat)
				if ok {
					t.Logf("kill after %v: acked %d, recovered acked+1 (in-flight write was durable)", killAfter, acked)
				}
			} else if ok {
				t.Logf("kill after %v: acked %d, recovered exactly the acked prefix (%d replayed, torn=%v)",
					killAfter, acked, rv.Replayed, rv.TornTail)
			}
			if !ok {
				t.Fatalf("kill after %v: recovered state matches neither acked=%d nor acked+1: %s",
					killAfter, acked, why)
			}
		})
	}
}

// startRefServer runs an in-process WAL-backed server over the chaos
// seed in a scratch directory and returns a connected client plus the
// live catalog the reference state accumulates in.
func startRefServer(t *testing.T) (*Client, *catalog.Catalog) {
	t.Helper()
	dir := t.TempDir()
	l, cat, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	if cat == nil {
		cat = chaosSeedCatalog(t)
		if err := l.Checkpoint(cat); err != nil {
			t.Fatal(err)
		}
	}
	s := startServer(t, cat, Config{WAL: l, CheckpointEvery: -1})
	c, err := Dial(s.Addr(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, cat
}

package server

import (
	"bytes"
	"context"
	"testing"
	"time"

	"dfdbm/internal/obs"
	"dfdbm/internal/wal"
)

// TestHeapLargerThanMemoryAcceptance is the storage subsystem's
// acceptance bar: a heap-backed server whose buffer pool (8 frames of
// 2KiB pages) is far smaller than its largest relation must answer
// restrict, project, and join queries identically to a plain
// in-memory server fed the same writes, with the pool demonstrably
// evicting — and after kill -9 (simulated by an unflushed close) the
// recovered relation is byte-identical to the in-memory reference.
func TestHeapLargerThanMemoryAcceptance(t *testing.T) {
	reg := obs.NewRegistry(time.Second)
	o := obs.New(nil, reg)
	dir := t.TempDir()
	l, cat := openDurable(t, dir, wal.Options{
		Obs:  o,
		Heap: &wal.HeapOptions{Frames: 8},
	})
	s := startServer(t, cat, Config{WAL: l, CheckpointEvery: -1, Obs: o})
	c, err := Dial(s.Addr(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Reference: the same seed catalog, fully resident, no WAL.
	refCat, _ := testDB(t, 0.05)
	rs := startServer(t, refCat, Config{})
	rc, err := Dial(rs.Addr(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	// Grow r15 well past the 8-frame budget on both servers. Appends
	// are deterministic, so the heap file and the resident relation
	// must stay byte-identical page by page.
	writes := []string{
		`append(r15, restrict(r1, val < 400))`,
		`append(r15, restrict(r2, val < 400))`,
		`append(r15, restrict(r3, val < 400))`,
		`append(r15, restrict(r4, val < 400))`,
		`append(r15, restrict(r5, val < 400))`,
		`delete(r15, val < 30)`,
		`append(r15, restrict(r6, val < 400))`,
		`append(r15, restrict(r7, val < 400))`,
	}
	for _, q := range writes {
		if _, err := c.Query(context.Background(), q); err != nil {
			t.Fatalf("heap server %s: %v", q, err)
		}
		if _, err := rc.Query(context.Background(), q); err != nil {
			t.Fatalf("reference server %s: %v", q, err)
		}
	}
	r15, err := cat.Get("r15")
	if err != nil {
		t.Fatal(err)
	}
	if !r15.Stored() {
		t.Fatal("r15 is not heap-backed")
	}
	if r15.NumPages() <= 8 {
		t.Fatalf("r15 has %d pages; working set does not exceed the 8-frame pool", r15.NumPages())
	}

	// Read queries across the restrict/project/join surface, answered
	// through the buffer pool, must match the in-memory reference.
	reads := []string{
		`restrict(r15, val < 200)`,
		`project(restrict(r15, val < 300), [k1, k2])`,
		`join(restrict(r15, val < 350), restrict(r2, val < 120), k1 = k1)`,
	}
	for _, q := range reads {
		got, err := c.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("heap server %s: %v", q, err)
		}
		want, err := rc.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("reference server %s: %v", q, err)
		}
		if !got.Relation.EqualMultiset(want.Relation) {
			t.Fatalf("%s: heap-backed result differs from in-memory reference (%d vs %d tuples)",
				q, got.Relation.Cardinality(), want.Relation.Cardinality())
		}
	}
	if ev := reg.Counter("bufpool.evictions"); ev == 0 {
		t.Fatal("bufpool.evictions = 0: the pool never evicted under a larger-than-memory working set")
	}

	// The logical state must equal the in-memory reference as a
	// multiset (the engine's parallel dataflow emits append payloads in
	// a nondeterministic tuple order, so two servers agree on content,
	// not on page bytes).
	ref15, err := refCat.Get("r15")
	if err != nil {
		t.Fatal(err)
	}
	if !r15.EqualMultiset(ref15) {
		t.Fatalf("heap-backed r15 (%d tuples) differs from in-memory reference (%d tuples)",
			r15.Cardinality(), ref15.Cardinality())
	}

	// Byte-identity is pinned against the live pre-crash state: the
	// WAL records fix the tuple order, so recovery must rebuild every
	// page of r15 bit for bit.
	live := make([][]byte, r15.NumPages())
	for i := range live {
		pg, err := r15.CopyPage(i)
		if err != nil {
			t.Fatalf("live page %d: %v", i, err)
		}
		live[i] = pg.Marshal()
	}

	// Unflushed close == crash; recovery replays the WAL tail into the
	// heap file and must reproduce the same bytes.
	c.Close()
	s.Close()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, cat2, rv, err := wal.Open(dir, wal.Options{Heap: &wal.HeapOptions{Frames: 8}})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rv.Fresh {
		t.Fatal("recovery reported fresh")
	}
	rec15, err := cat2.Get("r15")
	if err != nil {
		t.Fatal(err)
	}
	if rec15.NumPages() != len(live) {
		t.Fatalf("recovered r15 has %d pages, live had %d", rec15.NumPages(), len(live))
	}
	for i := range live {
		pg, err := rec15.CopyPage(i)
		if err != nil {
			t.Fatalf("recovered page %d: %v", i, err)
		}
		if !bytes.Equal(pg.Marshal(), live[i]) {
			t.Fatalf("recovered page %d is not byte-identical to the pre-crash state", i)
		}
	}
	if !rec15.EqualMultiset(ref15) {
		t.Fatal("recovered r15 differs from the in-memory reference as a multiset")
	}
}

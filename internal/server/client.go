package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"dfdbm/internal/relation"
	"dfdbm/internal/wire"
)

// ClientConfig parameterizes Dial.
type ClientConfig struct {
	// Engine requests an execution engine for the session ("core" or
	// "machine"); empty accepts the server's default.
	Engine string
	// Name identifies the client in server logs and spans.
	Name string
	// Timeout bounds the dial, the handshake, and each Query's network
	// waits. Default 30 seconds.
	Timeout time.Duration
	// MaxVersion caps the protocol version the client offers in its
	// Hello (0 means wire.Version, the newest). Setting it to an older
	// version exercises exactly what an old client binary would speak —
	// compatibility tests dial with MaxVersion: 1 against a v2 server.
	MaxVersion uint16
	// MaxRetries, when positive, retries transient failures up to this
	// many times with jittered exponential backoff: overload rejections
	// (the admission scheduler shed the query before it ran, so a
	// resend is safe even for writes) and transient dial failures
	// (refused, timed out, or a session-limit rejection). 0 — the
	// default — disables retries.
	MaxRetries int
	// RetryBase is the first backoff step (default 50ms); step n sleeps
	// base*2^n scaled by a random factor in [0.5, 1.5), capped at 2s.
	RetryBase time.Duration
}

// retryDelay returns the jittered exponential backoff before retry
// attempt n (0-based).
func retryDelay(base time.Duration, attempt int) time.Duration {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	d := base << uint(min(attempt, 16))
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return time.Duration(float64(d) * (0.5 + rand.Float64()))
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// transientDial reports whether a Dial failure is worth retrying:
// network-level errors (refused, unreachable, timeout) and the
// server's own "come back later" rejections. Version mismatches,
// protocol violations, and other handshake failures are permanent.
func transientDial(err error) bool {
	var re *RemoteError
	if errors.As(err, &re) {
		return re.Code == wire.CodeOverloaded
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// overloaded reports whether err is the server shedding load.
func overloaded(err error) bool {
	var re *RemoteError
	return errors.As(err, &re) && re.Code == wire.CodeOverloaded
}

// RemoteError is an error frame received from the server.
type RemoteError struct {
	Code string // wire.CodeOverloaded, wire.CodeDraining, ...
	Msg  string
}

func (e *RemoteError) Error() string { return fmt.Sprintf("server: %s: %s", e.Code, e.Msg) }

// QueryResult is one answered query.
type QueryResult struct {
	Relation *relation.Relation
	Stats    *wire.Stats
}

// Client is one session against a dfdbm server. Its methods are safe
// for concurrent use; queries within a session are serialized, which
// is also the wire protocol's per-session ordering model.
type Client struct {
	mu        sync.Mutex
	conn      net.Conn
	br        *bufio.Reader
	cfg       ClientConfig
	engine    string // negotiated
	ver       uint16 // negotiated protocol version
	sessionID uint64 // server-assigned (0 from a v1 server)
	nextID    uint32
	traceSeq  uint64
	closed    bool
}

// Dial connects to a dfdbm server and performs the version and engine
// handshake. With cfg.MaxRetries set, transient failures — refused
// connections, timeouts, session-limit rejections — are retried with
// jittered exponential backoff.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	c, err := dialOnce(addr, cfg)
	for attempt := 0; err != nil && attempt < cfg.MaxRetries && transientDial(err); attempt++ {
		time.Sleep(retryDelay(cfg.RetryBase, attempt))
		c, err = dialOnce(addr, cfg)
	}
	return c, err
}

func dialOnce(addr string, cfg ClientConfig) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, cfg.Timeout)
	if err != nil {
		return nil, err
	}
	max := cfg.MaxVersion
	if max == 0 || max > wire.Version {
		max = wire.Version
	}
	c := &Client{conn: conn, br: bufio.NewReader(conn), cfg: cfg, ver: max}
	_ = conn.SetDeadline(time.Now().Add(cfg.Timeout))
	// The opening Hello is encoded identically at every version (the
	// request never carries a session ID), so the server can read it
	// before any version is agreed.
	if err := wire.WriteVersion(conn, &wire.Hello{Min: wire.MinVersion, Max: max, Engine: cfg.Engine, Name: cfg.Name}, max); err != nil {
		conn.Close()
		return nil, fmt.Errorf("client: handshake write: %w", err)
	}
	// The reply Hello is written at the version the server picked
	// (Min == Max ≤ our max), so decoding at our offered max is safe:
	// the session-ID tail is self-describing and absent below v2.
	f, err := wire.ReadVersion(c.br, max)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("client: handshake read: %w", err)
	}
	switch f := f.(type) {
	case *wire.Hello:
		c.engine = f.Engine
		c.sessionID = f.SessionID
		if f.Min == f.Max && f.Max >= wire.MinVersion && f.Max <= max {
			c.ver = f.Max
		}
	case *wire.Error:
		conn.Close()
		return nil, &RemoteError{Code: f.Code, Msg: f.Msg}
	default:
		conn.Close()
		return nil, fmt.Errorf("client: handshake: unexpected %s frame", f.Type())
	}
	_ = conn.SetDeadline(time.Time{})
	return c, nil
}

// Engine returns the engine the server assigned to this session.
func (c *Client) Engine() string { return c.engine }

// ProtocolVersion returns the negotiated wire protocol version.
func (c *Client) ProtocolVersion() uint16 { return c.ver }

// SessionID returns the server-assigned session identifier (0 when the
// server predates wire v2).
func (c *Client) SessionID() uint64 { return c.sessionID }

// Close ends the session.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}

// Query sends one query and reassembles the streamed result. The
// returned relation is rebuilt from the server's pages byte-for-byte.
// Server-side failures (overload, drain, parse, execution, injected
// faults) come back as *RemoteError with the wire code preserved.
func (c *Client) Query(ctx context.Context, text string) (*QueryResult, error) {
	return c.QueryPriority(ctx, text, 1)
}

// QueryPriority is Query with an explicit admission priority
// (0 = high, 1 = normal, 2+ = low). With cfg.MaxRetries set, overload
// rejections are retried with jittered exponential backoff: the
// scheduler shed the query at admission, before any execution, so the
// resend cannot double-apply a write.
func (c *Client) QueryPriority(ctx context.Context, text string, priority uint8) (*QueryResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	res, err := c.queryLocked(ctx, text, priority)
	for attempt := 0; err != nil && attempt < c.cfg.MaxRetries && overloaded(err); attempt++ {
		if serr := sleepCtx(ctx, retryDelay(c.cfg.RetryBase, attempt)); serr != nil {
			return nil, serr
		}
		res, err = c.queryLocked(ctx, text, priority)
	}
	return res, err
}

// queryLocked performs one query exchange; c.mu must be held.
func (c *Client) queryLocked(ctx context.Context, text string, priority uint8) (*QueryResult, error) {
	if c.closed {
		return nil, fmt.Errorf("client: session closed")
	}
	id := c.nextID
	c.nextID++
	// Propose the end-to-end trace ID (wire v2): the server-assigned
	// session ID in the high half keeps IDs from distinct sessions
	// disjoint, so the server can adopt ours verbatim. A v1 link drops
	// the field and the server assigns its own.
	c.traceSeq++
	traceID := c.sessionID<<32 | c.traceSeq&0xFFFFFFFF

	// Let ctx cancellation tear the connection's deadlines down.
	if dl, ok := ctx.Deadline(); ok {
		_ = c.conn.SetDeadline(dl)
	} else {
		_ = c.conn.SetDeadline(time.Now().Add(c.cfg.Timeout))
	}
	stop := context.AfterFunc(ctx, func() {
		_ = c.conn.SetDeadline(time.Now()) // unblock reads/writes
	})
	defer stop()

	if err := wire.WriteVersion(c.conn, &wire.Query{ID: id, Priority: priority, Text: text, TraceID: traceID}, c.ver); err != nil {
		return nil, fmt.Errorf("client: send query: %w", err)
	}

	var rel *relation.Relation
	var wantSeq uint32
	for {
		f, err := wire.ReadVersion(c.br, c.ver)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("client: read result: %w", err)
		}
		switch f := f.(type) {
		case *wire.Error:
			return nil, &RemoteError{Code: f.Code, Msg: f.Msg}
		case *wire.ResultPage:
			if f.QueryID != id || f.Seq != wantSeq {
				return nil, fmt.Errorf("client: result stream out of order (query %d seq %d, want %d/%d)", f.QueryID, f.Seq, id, wantSeq)
			}
			wantSeq++
			if f.Seq == 0 {
				attrs := make([]relation.Attr, len(f.Schema))
				for i, a := range f.Schema {
					attrs[i] = relation.Attr{Name: a.Name, Type: relation.Type(a.Type), Width: int(a.Width)}
				}
				schema, err := relation.NewSchema(attrs...)
				if err != nil {
					return nil, fmt.Errorf("client: result schema: %w", err)
				}
				rel, err = relation.New(f.Name, schema, int(f.PageSize))
				if err != nil {
					return nil, fmt.Errorf("client: result relation: %w", err)
				}
			}
			if len(f.Page) > 0 {
				pg, err := relation.UnmarshalPage(f.Page)
				if err != nil {
					return nil, fmt.Errorf("client: result page %d: %w", f.Seq, err)
				}
				if err := rel.AppendPage(pg); err != nil {
					return nil, fmt.Errorf("client: result page %d: %w", f.Seq, err)
				}
			}
		case *wire.Stats:
			if f.QueryID != id {
				return nil, fmt.Errorf("client: stats for query %d, want %d", f.QueryID, id)
			}
			_ = c.conn.SetDeadline(time.Time{})
			return &QueryResult{Relation: rel, Stats: f}, nil
		default:
			return nil, fmt.Errorf("client: unexpected %s frame", f.Type())
		}
	}
}

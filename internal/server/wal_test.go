package server

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"
	"time"

	"dfdbm/internal/catalog"
	"dfdbm/internal/wal"
)

// catBytes is the byte-identity yardstick: two catalogs are the same
// state iff their Save encodings match.
func catBytes(t *testing.T, c *catalog.Catalog) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// openDurable opens a WAL in dir, seeds it with the test database when
// fresh, and returns the log plus the catalog the server should run.
func openDurable(t *testing.T, dir string, opts wal.Options) (*wal.Log, *catalog.Catalog) {
	t.Helper()
	l, cat, _, err := wal.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cat == nil {
		cat, _ = testDB(t, 0.05)
		if err := l.Checkpoint(cat); err != nil {
			t.Fatal(err)
		}
	}
	return l, cat
}

func countSnapshots(t *testing.T, dir string) int {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, "snap-*.db"))
	if err != nil {
		t.Fatal(err)
	}
	return len(m)
}

// TestDurableWritesRecover drives appends and a delete through a
// WAL-backed server, then recovers the directory cold and checks the
// recovered catalog is byte-identical to the live one — the acceptance
// bar for the durable write path.
func TestDurableWritesRecover(t *testing.T) {
	dir := t.TempDir()
	l, cat := openDurable(t, dir, wal.Options{})
	s := startServer(t, cat, Config{WAL: l, CheckpointEvery: -1})
	c, err := Dial(s.Addr(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	writes := []string{
		`append(r15, restrict(r1, val < 100))`,
		`append(r14, restrict(r2, val < 200))`,
		`delete(r15, val < 50)`,
	}
	for _, q := range writes {
		if _, err := c.Query(context.Background(), q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	// The read path still serves after durable writes.
	res, err := c.Query(context.Background(), `restrict(r15, val < 100)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Cardinality() == 0 {
		t.Fatal("read after durable writes returned no tuples")
	}

	live := catBytes(t, cat)
	c.Close()
	s.Close()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, cat2, rv, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rv.Replayed != len(writes) {
		t.Fatalf("recovery replayed %d records, want %d", rv.Replayed, len(writes))
	}
	if got := catBytes(t, cat2); !bytes.Equal(got, live) {
		t.Fatalf("recovered catalog differs from live catalog (%d vs %d bytes)", len(got), len(live))
	}
}

// TestDurableAckRequiresFsync fails the WAL write under a client
// append: the client must see an error (no acknowledgement) and the
// catalog must be untouched, live and after recovery — a write that
// never became durable never happened.
func TestDurableAckRequiresFsync(t *testing.T) {
	dir := t.TempDir()
	// Write 1 is the seed checkpoint record; the client's append is
	// write 2.
	l, cat := openDurable(t, dir, wal.Options{Injector: &wal.Injector{FailWrite: 2}})
	before := catBytes(t, cat)
	s := startServer(t, cat, Config{WAL: l, CheckpointEvery: -1})
	c, err := Dial(s.Addr(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Query(context.Background(), `append(r15, restrict(r1, val < 100))`); err == nil {
		t.Fatal("append acknowledged although the WAL write failed")
	}
	if got := catBytes(t, cat); !bytes.Equal(got, before) {
		t.Fatal("failed durable write mutated the live catalog")
	}
	s.Close()
	l.Close()

	l2, cat2, rv, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rv.Replayed != 0 {
		t.Fatalf("recovery replayed %d records, want 0", rv.Replayed)
	}
	if got := catBytes(t, cat2); !bytes.Equal(got, before) {
		t.Fatal("unacknowledged write resurfaced after recovery")
	}
}

// TestAutoCheckpoint sets a one-byte threshold so the first durable
// write schedules a checkpoint job; the job runs under total write
// exclusion and must truncate the log and land a new snapshot.
func TestAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	l, cat := openDurable(t, dir, wal.Options{})
	s := startServer(t, cat, Config{WAL: l, CheckpointEvery: 1})
	c, err := Dial(s.Addr(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Query(context.Background(), `append(r15, restrict(r1, val < 100))`); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for l.SizeSinceCheckpoint() != 0 || countSnapshots(t, dir) < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("auto-checkpoint did not run: %d bytes since checkpoint, %d snapshots",
				l.SizeSinceCheckpoint(), countSnapshots(t, dir))
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The server keeps serving while and after the checkpoint runs.
	if _, err := c.Query(context.Background(), `restrict(r1, val < 10)`); err != nil {
		t.Fatal(err)
	}
	s.Close()
	l.Close()
}

// TestServerCheckpointWaits exercises the exported Checkpoint: it must
// queue behind in-flight writes, snapshot, and return nil; the next
// recovery then replays nothing.
func TestServerCheckpointWaits(t *testing.T) {
	dir := t.TempDir()
	l, cat := openDurable(t, dir, wal.Options{})
	s := startServer(t, cat, Config{WAL: l, CheckpointEvery: -1})
	c, err := Dial(s.Addr(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query(context.Background(), `append(r15, restrict(r1, val < 100))`); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}
	live := catBytes(t, cat)
	s.Close()
	l.Close()

	l2, cat2, rv, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rv.Replayed != 0 {
		t.Fatalf("recovery after checkpoint replayed %d records, want 0", rv.Replayed)
	}
	if !bytes.Equal(catBytes(t, cat2), live) {
		t.Fatal("snapshot recovery differs from live catalog")
	}
}

package server

// End-to-end observability tests for the service path: the linked span
// tree a served query leaves behind, the wire-propagated trace ID, the
// flight recorder's live and retained views under load, the per-stage
// latency histograms, old-client compatibility, and the slow-query log.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"dfdbm/internal/obs"
	"dfdbm/internal/wire"
	"dfdbm/internal/workload"
)

// TestQueryTraceSpanTree: one served query must leave one connected
// causal tree — session → query → lifecycle stages → engine subtree —
// reconstructable from the JSONL trace stream, with the server's stage
// breakdown summing to (within slop of) the client's measured RTT.
func TestQueryTraceSpanTree(t *testing.T) {
	cat, _ := testDB(t, 0.05)
	var trace lockedBuffer
	o := obs.New(obs.NewJSONLSink(&trace), obs.NewRegistry(time.Millisecond))
	o.EnableSpans()
	s := startServer(t, cat, Config{Obs: o})

	c, err := Dial(s.Addr(), ClientConfig{Name: "tracer"})
	if err != nil {
		t.Fatal(err)
	}
	if c.SessionID() == 0 {
		t.Fatal("v2 server assigned session ID 0")
	}
	sent := time.Now()
	res, err := c.Query(context.Background(), workload.QueryTexts()[0])
	rtt := time.Since(sent)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	s.Close()
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}

	st := res.Stats
	if st.TraceID == 0 {
		t.Fatal("stats frame carries no trace ID")
	}
	if want := c.SessionID()<<32 | 1; st.TraceID != want {
		t.Errorf("server did not adopt the client's trace ID: got %x, want %x", st.TraceID, want)
	}
	serverSide := st.AdmitWait + st.Sched + st.Exec + st.Stream
	if serverSide <= 0 {
		t.Fatalf("server stage breakdown sums to %v, want > 0", serverSide)
	}
	if serverSide > rtt+50*time.Millisecond {
		t.Errorf("server stages sum to %v, more than the client RTT %v", serverSide, rtt)
	}

	spans, err := obs.ReadSpans(bytes.NewReader(trace.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	byID := map[int]obs.SpanData{}
	for _, sp := range spans {
		byID[sp.ID] = sp
	}
	// Locate the server's query span and index its stage children.
	var qspan obs.SpanData
	found := false
	for _, sp := range spans {
		if sp.Kind == obs.SpanQuery && sp.Comp == "server" {
			qspan, found = sp, true
		}
	}
	if !found {
		t.Fatal("no server query span in the trace")
	}
	parent, ok := byID[qspan.Parent]
	if !ok || parent.Kind != obs.SpanSession {
		t.Fatalf("query span's parent is %+v, want the session span", parent)
	}
	stages := map[string]obs.SpanData{}
	for _, sp := range spans {
		if sp.Kind == obs.SpanStage && sp.Parent == qspan.ID {
			stages[sp.Name] = sp
		}
	}
	for _, want := range []string{"admit-wait", "schedule", "execute", "stream"} {
		sp, ok := stages[want]
		if !ok {
			t.Fatalf("query span has no %q stage child (have %v)", want, stageNames(stages))
		}
		if sp.End < sp.Start {
			t.Errorf("stage %q runs backwards: [%v, %v]", want, sp.Start, sp.End)
		}
	}
	// The engine's own root span must hang under the execute stage, so
	// the whole execution is one tree: session → query → execute →
	// engine query → node/worker spans.
	var engineRoot obs.SpanData
	found = false
	for _, sp := range spans {
		if sp.Kind == obs.SpanQuery && sp.Comp == "engine" {
			engineRoot, found = sp, true
		}
	}
	if !found {
		t.Fatal("no engine query span in the trace; engine runs unlinked")
	}
	if engineRoot.Parent != stages["execute"].ID {
		t.Errorf("engine root's parent is span %d, want the execute stage span %d",
			engineRoot.Parent, stages["execute"].ID)
	}
	kids := 0
	for _, sp := range spans {
		if sp.Parent == engineRoot.ID {
			kids++
		}
	}
	if kids == 0 {
		t.Error("engine root span has no children; node spans detached")
	}
}

func stageNames(m map[string]obs.SpanData) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// lockedBuffer is a bytes.Buffer safe for the sink's writer goroutines.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) Bytes() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]byte(nil), l.b.Bytes()...)
}

// TestOldClientCompat: a client capped at wire v1 must work against a
// v2 server — same queries, same results — just without the v2 fields.
func TestOldClientCompat(t *testing.T) {
	cat, _ := testDB(t, 0.05)
	o := obs.New(nil, obs.NewRegistry(time.Millisecond))
	o.EnableFlight(8)
	s := startServer(t, cat, Config{Obs: o})

	c, err := Dial(s.Addr(), ClientConfig{Name: "legacy", MaxVersion: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.ProtocolVersion(); got != 1 {
		t.Fatalf("negotiated v%d, want v1", got)
	}
	if got := c.SessionID(); got != 0 {
		t.Fatalf("v1 handshake leaked a session ID %d", got)
	}
	res, err := c.Query(context.Background(), workload.QueryTexts()[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TraceID != 0 || res.Stats.AdmitWait != 0 || res.Stats.Stream != 0 {
		t.Errorf("v1 stats frame carries v2 fields: %+v", res.Stats)
	}
	if res.Stats.Tuples == 0 && res.Relation.Cardinality() != 0 {
		t.Error("v1 stats frame lost the v1 fields")
	}
	// The server still traces it: a server-assigned ID keyed the
	// flight-recorder entry even though the wire never carried one.
	recent := o.Flight().Recent()
	if len(recent) != 1 || recent[0].TraceID == 0 || recent[0].Outcome != obs.OutcomeOK {
		t.Fatalf("flight recorder after v1 query = %+v, want one ok record with a server-assigned trace ID", recent)
	}
}

// TestServerAssignsTraceID: a raw v2 query frame with no trace ID still
// gets one server-side, returned on the stats frame.
func TestServerAssignsTraceID(t *testing.T) {
	cat, _ := testDB(t, 0.05)
	s := startServer(t, cat, Config{})
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.Write(conn, &wire.Hello{Min: wire.MinVersion, Max: wire.Version}); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.Read(conn); err != nil {
		t.Fatal(err)
	}
	if err := wire.Write(conn, &wire.Query{ID: 1, Priority: 1, Text: workload.QueryTexts()[0]}); err != nil {
		t.Fatal(err)
	}
	for {
		f, err := wire.Read(conn)
		if err != nil {
			t.Fatal(err)
		}
		if st, ok := f.(*wire.Stats); ok {
			if st.TraceID == 0 {
				t.Fatal("server did not assign a trace ID to an untraced query")
			}
			return
		}
	}
}

// TestSoakIntrospectionUnderLoad: fifty concurrent clients while the
// introspection HTTP server is scraped mid-flight — /queries must show
// only valid lifecycle stages, /queries/recent must retain completed
// queries up to the ring capacity, and the per-lane wait and stream
// histograms must have counted every query. The race detector guards
// the whole arrangement.
func TestSoakIntrospectionUnderLoad(t *testing.T) {
	const (
		clients      = 50
		perClient    = 2
		ringCapacity = 16
	)
	cat, _ := testDB(t, 0.05)
	reg := obs.NewRegistry(time.Millisecond)
	o := obs.New(nil, reg)
	o.EnableFlight(ringCapacity)
	s := startServer(t, cat, Config{Obs: o, QueueDepth: 4 * clients * perClient, MaxSessions: 2 * clients})
	hsrv, err := obs.StartServer("127.0.0.1:0", reg, nil, o.Flight())
	if err != nil {
		t.Fatal(err)
	}
	defer hsrv.Close()
	base := "http://" + hsrv.Addr()

	validStages := map[string]bool{
		obs.StageAdmitWait: true, obs.StageSchedule: true,
		obs.StageExecute: true, obs.StageStream: true,
	}
	stop := make(chan struct{})
	scrapeErr := make(chan error, 1)
	go func() {
		defer close(scrapeErr)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var in struct {
				InFlight []obs.QueryRecord `json:"inflight"`
			}
			if err := getJSON(base+"/queries", &in); err != nil {
				scrapeErr <- err
				return
			}
			for _, r := range in.InFlight {
				if !validStages[r.Stage] {
					scrapeErr <- fmt.Errorf("in-flight query %x in unknown stage %q", r.TraceID, r.Stage)
					return
				}
				if r.TraceID == 0 {
					scrapeErr <- fmt.Errorf("in-flight query with zero trace ID: %+v", r)
					return
				}
			}
			var rec struct {
				Recent   []obs.QueryRecord `json:"recent"`
				Capacity int               `json:"capacity"`
			}
			if err := getJSON(base+"/queries/recent", &rec); err != nil {
				scrapeErr <- err
				return
			}
			if len(rec.Recent) > ringCapacity {
				scrapeErr <- fmt.Errorf("ring overflows: %d records, capacity %d", len(rec.Recent), ringCapacity)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := Dial(s.Addr(), ClientConfig{Name: fmt.Sprintf("soak-%d", id)})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < perClient; j++ {
				text := workload.QueryTexts()[(id+j)%len(workload.QueryTexts())]
				if _, err := c.Query(context.Background(), text); err != nil {
					errs <- fmt.Errorf("client %d: %w", id, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	if err, ok := <-scrapeErr; ok && err != nil {
		t.Fatal(err)
	}
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	f := o.Flight()
	if got := f.TotalCompleted(); got != clients*perClient {
		t.Errorf("flight recorder completed %d queries, want %d", got, clients*perClient)
	}
	recent := f.Recent()
	if len(recent) != ringCapacity {
		t.Errorf("ring retains %d, want full capacity %d", len(recent), ringCapacity)
	}
	for _, r := range recent {
		if r.Outcome != obs.OutcomeOK {
			t.Errorf("query %x finished %q, want ok", r.TraceID, r.Outcome)
		}
		if r.Exec <= 0 || r.Total <= 0 {
			t.Errorf("query %x retained without timings: %+v", r.TraceID, r)
		}
	}
	if len(f.InFlight()) != 0 {
		t.Errorf("%d queries still in flight after the soak", len(f.InFlight()))
	}
	// Every query passed through the normal admission lane and the
	// stream path, so both histograms must have counted all of them.
	if h := reg.FindHistogram("sched.admit_wait_ns.normal"); h.Count() != clients*perClient {
		t.Errorf("admit-wait histogram counted %d, want %d", h.Count(), clients*perClient)
	}
	if h := reg.FindHistogram("server.stream_ns"); h.Count() != clients*perClient {
		t.Errorf("stream histogram counted %d, want %d", h.Count(), clients*perClient)
	}
	// And the Prometheus exposition must carry the new families.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"sched_admit_wait_ns_normal_bucket{le=", "sched_admit_wait_ns_normal_p99",
		"server_stream_ns_count", "sched_exec_ns_p50",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestSlowQueryLog: a threshold of one nanosecond makes every query
// slow; the log line and the counter must both appear.
func TestSlowQueryLog(t *testing.T) {
	cat, _ := testDB(t, 0.05)
	reg := obs.NewRegistry(time.Millisecond)
	o := obs.New(nil, reg)
	var logBuf lockedBuffer
	s := startServer(t, cat, Config{Obs: o, SlowQuery: time.Nanosecond, SlowQueryLog: &logBuf})
	c, err := Dial(s.Addr(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(context.Background(), workload.QueryTexts()[0]); err != nil {
		t.Fatal(err)
	}
	c.Close()
	s.Close()
	line := string(logBuf.Bytes())
	if !strings.Contains(line, "slow query") || !strings.Contains(line, "admit-wait=") {
		t.Fatalf("slow-query log = %q, want a line with the stage breakdown", line)
	}
	if got := reg.Counter("server.slow_queries"); got < 1 {
		t.Fatalf("server.slow_queries = %d, want >= 1", got)
	}
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// TestDisabledObservabilityAllocsServicePath extends the machine
// package's zero-cost contract to the service path: with no observer
// configured, every per-query instrumentation hook the server calls —
// counters, gauges, events, flight-recorder stage tracking, and the
// stream histogram — must allocate nothing.
func TestDisabledObservabilityAllocsServicePath(t *testing.T) {
	cat, _ := testDB(t, 0.05)
	s := startServer(t, cat, Config{}) // no Obs: everything disabled
	allocs := testing.AllocsPerRun(1000, func() {
		// The exact hook shapes handleQuery and streamResult go through.
		s.count("server.queries", 1)
		s.gauge("server.sessions_active", 1)
		s.event(obs.EvNote, -1, "quiet")
		s.flight.Start(obs.QueryRecord{TraceID: 1})
		s.flight.SetStage(1, obs.StageExecute)
		s.flight.Finish(1, obs.OutcomeOK, nil)
		s.streamHist.ObserveDuration(time.Millisecond)
	})
	if allocs != 0 {
		t.Errorf("disabled service-path observability allocates %v per query, want 0", allocs)
	}
}

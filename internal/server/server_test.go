package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"dfdbm/internal/catalog"
	"dfdbm/internal/core"
	"dfdbm/internal/fault"
	"dfdbm/internal/obs"
	"dfdbm/internal/query"
	"dfdbm/internal/relation"
	"dfdbm/internal/wire"
	"dfdbm/internal/workload"
)

// testDB builds a small paper workload database once per test.
func testDB(t *testing.T, scale float64) (*catalog.Catalog, []*query.Tree) {
	t.Helper()
	cat, qs, err := workload.Build(workload.Config{Seed: 42, Scale: scale, PageSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	return cat, qs
}

func startServer(t *testing.T, cat *catalog.Catalog, cfg Config) *Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	s, err := Start(cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestHandshakeAndSimpleQuery(t *testing.T) {
	cat, qs := testDB(t, 0.1)
	s := startServer(t, cat, Config{})
	c, err := Dial(s.Addr(), ClientConfig{Name: "t"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Engine() != EngineCore {
		t.Fatalf("negotiated engine %q, want %q", c.Engine(), EngineCore)
	}
	res, err := c.Query(context.Background(), workload.QueryTexts()[0])
	if err != nil {
		t.Fatal(err)
	}
	ref, err := query.ExecuteSerial(cat, qs[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Relation.EqualMultiset(ref) {
		t.Fatalf("remote result differs from serial reference (%d vs %d tuples)",
			res.Relation.Cardinality(), ref.Cardinality())
	}
	if res.Stats == nil || res.Stats.Engine != EngineCore {
		t.Fatalf("stats frame missing or wrong engine: %+v", res.Stats)
	}
	if res.Stats.Tuples != int64(ref.Cardinality()) {
		t.Fatalf("stats report %d tuples, result has %d", res.Stats.Tuples, ref.Cardinality())
	}
}

func TestMachineEngineSession(t *testing.T) {
	cat, qs := testDB(t, 0.05)
	s := startServer(t, cat, Config{})
	c, err := Dial(s.Addr(), ClientConfig{Engine: EngineMachine})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Engine() != EngineMachine {
		t.Fatalf("negotiated engine %q, want machine", c.Engine())
	}
	res, err := c.Query(context.Background(), workload.QueryTexts()[2])
	if err != nil {
		t.Fatal(err)
	}
	ref, err := query.ExecuteSerial(cat, qs[2], 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Relation.EqualMultiset(ref) {
		t.Fatal("machine-engine remote result differs from serial reference")
	}
}

// TestVersionNegotiationRejected dials with a version range the server
// cannot serve and expects a typed version error frame.
func TestVersionNegotiationRejected(t *testing.T) {
	cat, _ := testDB(t, 0.05)
	s := startServer(t, cat, Config{})
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.Write(conn, &wire.Hello{Min: wire.Version + 1, Max: wire.Version + 3}); err != nil {
		t.Fatal(err)
	}
	f, err := wire.Read(conn)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := f.(*wire.Error)
	if !ok || e.Code != wire.CodeVersion {
		t.Fatalf("got %#v, want version error frame", f)
	}
}

func TestUnknownEngineRejected(t *testing.T) {
	cat, _ := testDB(t, 0.05)
	s := startServer(t, cat, Config{})
	if _, err := Dial(s.Addr(), ClientConfig{Engine: "abacus"}); err == nil {
		t.Fatal("dial with unknown engine succeeded")
	}
}

func TestParseErrorIsTyped(t *testing.T) {
	cat, _ := testDB(t, 0.05)
	s := startServer(t, cat, Config{})
	c, err := Dial(s.Addr(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Query(context.Background(), `restrict(r1, `)
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != wire.CodeParse {
		t.Fatalf("got %v, want RemoteError with code %q", err, wire.CodeParse)
	}
	// The session survives a parse error.
	if _, err := c.Query(context.Background(), `restrict(r1, val < 50)`); err != nil {
		t.Fatalf("query after parse error: %v", err)
	}
}

func TestSessionTableOverload(t *testing.T) {
	cat, _ := testDB(t, 0.05)
	s := startServer(t, cat, Config{MaxSessions: 1})
	c1, err := Dial(s.Addr(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	_, err = Dial(s.Addr(), ClientConfig{})
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != wire.CodeOverloaded {
		t.Fatalf("second dial got %v, want overloaded", err)
	}
}

// TestMaxInflightSheds holds the runner pool at a gate and pushes more
// queries down one session than its in-flight window allows.
func TestMaxInflightSheds(t *testing.T) {
	cat, _ := testDB(t, 0.05)
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	testExecGate = func(ctx context.Context) {
		started <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
	t.Cleanup(func() { testExecGate = nil })

	s := startServer(t, cat, Config{MaxInflight: 2, Runners: 1, QueueDepth: 8})
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.Write(conn, &wire.Hello{Min: wire.MinVersion, Max: wire.Version}); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.Read(conn); err != nil {
		t.Fatal(err)
	}
	// Query 0 occupies the single runner (held at the gate); query 1
	// waits in the admission queue; query 2 exceeds the window.
	for id := uint32(0); id < 3; id++ {
		if err := wire.Write(conn, &wire.Query{ID: id, Priority: 1, Text: `restrict(r1, val < 50)`}); err != nil {
			t.Fatal(err)
		}
		if id == 0 {
			<-started // runner is now held; 1 and 2 cannot complete early
		}
	}
	f, err := wire.Read(conn)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := f.(*wire.Error)
	if !ok || e.QueryID != 2 || e.Code != wire.CodeOverloaded {
		t.Fatalf("got %#v, want overloaded error for query 2", f)
	}
	close(release)
	// Queries 0 and 1 still complete.
	done := map[uint32]bool{}
	for len(done) < 2 {
		f, err := wire.Read(conn)
		if err != nil {
			t.Fatal(err)
		}
		if st, ok := f.(*wire.Stats); ok {
			done[st.QueryID] = true
		}
	}
}

// TestGracefulDrain starts a query, begins Shutdown, and checks that
// (a) new connections and new queries are refused as draining, (b) the
// in-flight query still streams its full result, (c) Shutdown returns
// cleanly.
func TestGracefulDrain(t *testing.T) {
	cat, qs := testDB(t, 0.05)
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	testExecGate = func(ctx context.Context) {
		started <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
	t.Cleanup(func() { testExecGate = nil })

	s := startServer(t, cat, Config{})
	c, err := Dial(s.Addr(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resc := make(chan *QueryResult, 1)
	errc := make(chan error, 1)
	go func() {
		res, err := c.Query(context.Background(), workload.QueryTexts()[0])
		if err != nil {
			errc <- err
			return
		}
		resc <- res
	}()
	<-started // the query is on a runner

	shut := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shut <- s.Shutdown(ctx)
	}()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}

	// New connections are turned away as draining.
	_, err = Dial(s.Addr(), ClientConfig{})
	var re *RemoteError
	if err == nil || (errors.As(err, &re) && re.Code != wire.CodeDraining) {
		t.Fatalf("dial during drain got %v, want draining refusal", err)
	}

	close(release)
	select {
	case err := <-shut:
		if err != nil {
			t.Fatalf("graceful shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("shutdown hung")
	}
	select {
	case res := <-resc:
		ref, err := query.ExecuteSerial(cat, qs[0], 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Relation.EqualMultiset(ref) {
			t.Fatal("drained query result differs from serial reference")
		}
	case err := <-errc:
		t.Fatalf("in-flight query was not drained: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight query never finished")
	}
}

// TestDrainDeadlineCancels verifies a stuck query cannot outlive the
// drain timeout.
func TestDrainDeadlineCancels(t *testing.T) {
	cat, _ := testDB(t, 0.05)
	started := make(chan struct{}, 16)
	testExecGate = func(ctx context.Context) {
		started <- struct{}{}
		<-ctx.Done() // never released: only the drain cancel frees it
	}
	t.Cleanup(func() { testExecGate = nil })

	s := startServer(t, cat, Config{})
	c, err := Dial(s.Addr(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	errc := make(chan error, 1)
	go func() {
		_, err := c.Query(context.Background(), workload.QueryTexts()[0])
		errc <- err
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	begin := time.Now()
	err = s.Shutdown(ctx)
	if err == nil {
		t.Fatal("shutdown of a stuck query reported success")
	}
	if elapsed := time.Since(begin); elapsed > 10*time.Second {
		t.Fatalf("shutdown took %v, deadline was 300ms", elapsed)
	}
	if qerr := <-errc; qerr == nil {
		t.Fatal("stuck query reported success after forced drain")
	}
}

// TestFaultyMachineQueryReturnsFaultCode injects a fault plan that
// exhausts the ring machine's recovery and expects the typed fault
// code at the client.
func TestFaultyMachineQueryReturnsFaultCode(t *testing.T) {
	cat, _ := testDB(t, 0.05)
	s := startServer(t, cat, Config{
		IPs: 4, ICs: 8,
		MachineFault: func() *fault.Plan {
			return fault.New(fault.Config{
				Seed: 7,
				Drop: map[fault.Class]float64{fault.ClassCompletion: 1.0},
			})
		},
	})
	c, err := Dial(s.Addr(), ClientConfig{Engine: EngineMachine})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Query(context.Background(), workload.QueryTexts()[0])
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != wire.CodeFault {
		t.Fatalf("got %v, want RemoteError with code %q", err, wire.CodeFault)
	}
}

// TestTransportPageFidelity runs the same query on a local engine and
// through the server (single worker, so page packing is deterministic)
// and requires byte-identical pages — the transport must ship the
// engine's pages verbatim.
func TestTransportPageFidelity(t *testing.T) {
	cat, qs := testDB(t, 0.1)
	s := startServer(t, cat, Config{Workers: 1})
	local := core.New(cat, core.Options{Granularity: core.PageLevel, Workers: 1})
	ref, err := local.ExecuteContext(context.Background(), qs[0])
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(s.Addr(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Query(context.Background(), workload.QueryTexts()[0])
	if err != nil {
		t.Fatal(err)
	}
	refPages := ref.Relation.Pages()
	gotPages := res.Relation.Pages()
	if len(refPages) != len(gotPages) {
		t.Fatalf("transport returned %d pages, engine produced %d", len(gotPages), len(refPages))
	}
	for i := range refPages {
		want, got := refPages[i].Marshal(), gotPages[i].Marshal()
		if string(want) != string(got) {
			t.Fatalf("page %d bytes differ after transport", i)
		}
	}
}

// TestAcceptancePaperWorkloadConcurrentSessions is the tentpole
// acceptance check: the full ten-query paper workload, issued from ten
// concurrent sessions, must match the serial reference executor.
func TestAcceptancePaperWorkloadConcurrentSessions(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-session workload in -short mode")
	}
	cat, qs := testDB(t, 0.1)
	refs := make([]*relation.Relation, len(qs))
	for i, q := range qs {
		ref, err := query.ExecuteSerial(cat, q, 0)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = ref
	}

	s := startServer(t, cat, Config{Runners: 8, QueueDepth: 256, MaxInflight: 4})
	texts := workload.QueryTexts()
	const sessions = 10
	var wg sync.WaitGroup
	errs := make(chan error, sessions*len(texts))
	for sid := 0; sid < sessions; sid++ {
		wg.Add(1)
		go func(sid int) {
			defer wg.Done()
			c, err := Dial(s.Addr(), ClientConfig{Name: fmt.Sprintf("sess-%d", sid)})
			if err != nil {
				errs <- fmt.Errorf("session %d: dial: %w", sid, err)
				return
			}
			defer c.Close()
			for qi := range texts {
				// Stagger per-session order so sessions collide on
				// different queries at different times.
				q := (qi + sid) % len(texts)
				res, err := c.Query(context.Background(), texts[q])
				if err != nil {
					errs <- fmt.Errorf("session %d query %d: %w", sid, q, err)
					return
				}
				if !res.Relation.EqualMultiset(refs[q]) {
					errs <- fmt.Errorf("session %d query %d: result differs from serial reference (%d vs %d tuples)",
						sid, q, res.Relation.Cardinality(), refs[q].Cardinality())
					return
				}
			}
		}(sid)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestFiftyConcurrentClients is the CI soak: 50 sessions dial at once
// and each runs a couple of queries; with a deep enough admission
// queue nothing may be shed and every result must be right.
func TestFiftyConcurrentClients(t *testing.T) {
	if testing.Short() {
		t.Skip("50-client soak in -short mode")
	}
	cat, qs := testDB(t, 0.05)
	refs := make([]*relation.Relation, 3)
	for i := range refs {
		ref, err := query.ExecuteSerial(cat, qs[i], 0)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = ref
	}
	s := startServer(t, cat, Config{MaxSessions: 64, Runners: 8, QueueDepth: 256})
	texts := workload.QueryTexts()

	const clients = 50
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := Dial(s.Addr(), ClientConfig{Name: fmt.Sprintf("soak-%d", id)})
			if err != nil {
				errs <- fmt.Errorf("client %d: dial: %w", id, err)
				return
			}
			defer c.Close()
			for r := 0; r < 2; r++ {
				q := (id + r) % len(refs)
				res, err := c.Query(context.Background(), texts[q])
				if err != nil {
					errs <- fmt.Errorf("client %d query %d: %w", id, q, err)
					return
				}
				if !res.Relation.EqualMultiset(refs[q]) {
					errs <- fmt.Errorf("client %d query %d: wrong result", id, q)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestServerMetricsAndSpans checks the observability contract: session
// and scheduler counters move, and session/query spans close.
func TestServerMetricsAndSpans(t *testing.T) {
	cat, _ := testDB(t, 0.05)
	reg := obs.NewRegistry(time.Millisecond)
	o := obs.New(nil, reg)
	o.EnableSpans()
	s := startServer(t, cat, Config{Obs: o})
	c, err := Dial(s.Addr(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(context.Background(), workload.QueryTexts()[0]); err != nil {
		t.Fatal(err)
	}
	c.Close()
	s.Close()

	if got := reg.Counter("server.sessions"); got < 1 {
		t.Fatalf("server.sessions = %d, want >= 1", got)
	}
	if got := reg.Counter("server.queries"); got < 1 {
		t.Fatalf("server.queries = %d, want >= 1", got)
	}
	if got := reg.Counter("sched.admitted"); got < 1 {
		t.Fatalf("sched.admitted = %d, want >= 1", got)
	}
	var sessions, queries int
	for _, sp := range o.Spans().Snapshot() {
		switch sp.Kind {
		case obs.SpanSession:
			sessions++
		case obs.SpanQuery:
			queries++
		}
		if sp.End == 0 {
			t.Fatalf("span %s %q never closed", sp.Kind, sp.Name)
		}
	}
	if sessions < 1 || queries < 1 {
		t.Fatalf("spans: %d session, %d query, want >= 1 each", sessions, queries)
	}
}

// TestWriteResultStreamsDoNotRace is a regression test for streaming a
// live catalog relation after the scheduler retired the query: append
// and delete hand back the shared target relation, so reading its
// pages outside the scheduler's admission exclusion races with the
// next admitted writer. Two sessions hammer conflicting deletes on the
// same relation; the race detector is the assertion.
func TestWriteResultStreamsDoNotRace(t *testing.T) {
	cat, _ := testDB(t, 0.05)
	s := startServer(t, cat, Config{Runners: 4})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(s.Addr(), ClientConfig{})
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for n := 0; n < 25; n++ {
				if _, err := c.Query(context.Background(), `delete(r1, val < 0)`); err != nil {
					t.Errorf("delete %d: %v", n, err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestIdleTimeoutRearmsWhileQueryInFlight: a quiet client with a query
// still executing must survive several idle deadlines and receive its
// result.
func TestIdleTimeoutRearmsWhileQueryInFlight(t *testing.T) {
	cat, qs := testDB(t, 0.05)
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	testExecGate = func(ctx context.Context) {
		started <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
	t.Cleanup(func() { testExecGate = nil })

	s := startServer(t, cat, Config{SessionTimeout: 150 * time.Millisecond})
	c, err := Dial(s.Addr(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resc := make(chan *QueryResult, 1)
	errc := make(chan error, 1)
	go func() {
		res, err := c.Query(context.Background(), workload.QueryTexts()[0])
		if err != nil {
			errc <- err
			return
		}
		resc <- res
	}()
	<-started
	time.Sleep(600 * time.Millisecond) // several idle deadlines fire
	close(release)
	select {
	case res := <-resc:
		ref, err := query.ExecuteSerial(cat, qs[0], 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Relation.EqualMultiset(ref) {
			t.Fatal("result after idle re-arm differs from serial reference")
		}
	case err := <-errc:
		t.Fatalf("session died during idle re-arm: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("query never finished")
	}
}

// TestMidFrameTimeoutClosesSession: when the read deadline fires after
// part of a frame was consumed, the session must close as
// protocol-broken — re-arming would desync the frame stream for good.
func TestMidFrameTimeoutClosesSession(t *testing.T) {
	cat, _ := testDB(t, 0.05)
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	testExecGate = func(ctx context.Context) {
		started <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
	t.Cleanup(func() { testExecGate = nil })
	defer close(release)

	s := startServer(t, cat, Config{SessionTimeout: 200 * time.Millisecond})
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.Write(conn, &wire.Hello{Min: wire.MinVersion, Max: wire.Version}); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.Read(conn); err != nil {
		t.Fatal(err)
	}
	// A held query keeps the session's in-flight count non-zero, so the
	// idle re-arm path is live.
	if err := wire.Write(conn, &wire.Query{ID: 1, Priority: 1, Text: `restrict(r1, val < 50)`}); err != nil {
		t.Fatal(err)
	}
	<-started
	// Send 3 of the 5 bytes of the next frame header, then go quiet so
	// the deadline fires mid-frame.
	if _, err := conn.Write([]byte{byte(wire.TypeQuery), 0, 0}); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 64)
	for {
		if _, err := conn.Read(buf); err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				t.Fatal("session stayed open after a mid-frame timeout")
			}
			return // server closed the desynced session: pass
		}
	}
}

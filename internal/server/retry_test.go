package server

import (
	"bufio"
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"dfdbm/internal/wire"
)

// stubServer speaks just enough of the wire protocol to script
// overload rejections: each accepted session handshakes, then answers
// the first rejectQueries queries with CodeOverloaded and every later
// one with a bare Stats frame. rejectDials sessions are refused with
// an overloaded Error instead of a Hello.
type stubServer struct {
	ln            net.Listener
	dials         atomic.Int64
	queries       atomic.Int64
	rejectDials   int64
	rejectQueries int64
}

func startStub(t *testing.T, rejectDials, rejectQueries int64) *stubServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	st := &stubServer{ln: ln, rejectDials: rejectDials, rejectQueries: rejectQueries}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go st.session(conn)
		}
	}()
	return st
}

func (st *stubServer) session(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	f, err := wire.Read(br)
	if err != nil {
		return
	}
	h, ok := f.(*wire.Hello)
	if !ok {
		return
	}
	if st.dials.Add(1) <= st.rejectDials {
		_ = wire.WriteVersion(conn, &wire.Error{QueryID: wire.SessionQueryID,
			Code: wire.CodeOverloaded, Msg: "session limit"}, h.Max)
		return
	}
	if err := wire.WriteVersion(conn, &wire.Hello{Min: h.Max, Max: h.Max, Engine: EngineCore, SessionID: 7}, h.Max); err != nil {
		return
	}
	for {
		f, err := wire.ReadVersion(br, h.Max)
		if err != nil {
			return
		}
		q, ok := f.(*wire.Query)
		if !ok {
			return
		}
		if st.queries.Add(1) <= st.rejectQueries {
			_ = wire.WriteVersion(conn, &wire.Error{QueryID: q.ID,
				Code: wire.CodeOverloaded, Msg: "queue full"}, h.Max)
			continue
		}
		_ = wire.WriteVersion(conn, &wire.Stats{QueryID: q.ID, Engine: EngineCore}, h.Max)
	}
}

// TestQueryRetriesOverload: two overload rejections, then success —
// within the retry budget, the caller never sees the shed attempts.
func TestQueryRetriesOverload(t *testing.T) {
	st := startStub(t, 0, 2)
	c, err := Dial(st.ln.Addr().String(), ClientConfig{MaxRetries: 3, RetryBase: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query(context.Background(), `restrict(r1, val < 10)`); err != nil {
		t.Fatalf("query failed despite retry budget: %v", err)
	}
	if n := st.queries.Load(); n != 3 {
		t.Fatalf("server saw %d query attempts, want 3", n)
	}
}

// TestQueryRetryDisabledByDefault: without MaxRetries the first
// overload rejection surfaces immediately.
func TestQueryRetryDisabledByDefault(t *testing.T) {
	st := startStub(t, 0, 1)
	c, err := Dial(st.ln.Addr().String(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Query(context.Background(), `restrict(r1, val < 10)`)
	if !overloaded(err) {
		t.Fatalf("got %v, want an overloaded RemoteError", err)
	}
	if n := st.queries.Load(); n != 1 {
		t.Fatalf("server saw %d query attempts, want 1 (retries disabled)", n)
	}
}

// TestQueryRetryBudgetExhausted: more rejections than retries — the
// final overload error comes back after exactly 1+MaxRetries attempts.
func TestQueryRetryBudgetExhausted(t *testing.T) {
	st := startStub(t, 0, 100)
	c, err := Dial(st.ln.Addr().String(), ClientConfig{MaxRetries: 2, RetryBase: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Query(context.Background(), `restrict(r1, val < 10)`)
	if !overloaded(err) {
		t.Fatalf("got %v, want an overloaded RemoteError", err)
	}
	if n := st.queries.Load(); n != 3 {
		t.Fatalf("server saw %d query attempts, want 3", n)
	}
}

// TestQueryRetryHonorsContext: with the context already cancelled, the
// backoff sleep aborts instead of burning the budget.
func TestQueryRetryHonorsContext(t *testing.T) {
	st := startStub(t, 0, 100)
	c, err := Dial(st.ln.Addr().String(), ClientConfig{MaxRetries: 50, RetryBase: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = c.Query(ctx, `restrict(r1, val < 10)`)
	if err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancelled retry slept through its backoff")
	}
}

// TestDialRetriesSessionLimit: the server refuses the first two
// sessions as overloaded; the third dial attempt lands.
func TestDialRetriesSessionLimit(t *testing.T) {
	st := startStub(t, 2, 0)
	c, err := Dial(st.ln.Addr().String(), ClientConfig{MaxRetries: 3, RetryBase: time.Millisecond})
	if err != nil {
		t.Fatalf("dial failed despite retry budget: %v", err)
	}
	defer c.Close()
	if n := st.dials.Load(); n != 3 {
		t.Fatalf("server saw %d dial attempts, want 3", n)
	}
}

// TestDialRetriesRefusedConnection: nothing listens at first; the
// listener appears while the client backs off.
func TestDialRetriesRefusedConnection(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // free the port: dials now get connection refused

	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(50 * time.Millisecond)
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			return // port raced away; the dial below will just fail
		}
		defer ln2.Close()
		conn, err := ln2.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		f, err := wire.Read(br)
		if err != nil {
			return
		}
		h := f.(*wire.Hello)
		_ = wire.WriteVersion(conn, &wire.Hello{Min: h.Max, Max: h.Max, Engine: EngineCore, SessionID: 1}, h.Max)
	}()

	c, err := Dial(addr, ClientConfig{MaxRetries: 20, RetryBase: 20 * time.Millisecond})
	if err != nil {
		t.Skipf("port was not reacquired in time: %v", err)
	}
	c.Close()
	<-done
}

// TestDialPermanentErrorNotRetried: an unknown-engine rejection is not
// transient — it must fail on the first attempt, without backoff.
func TestDialPermanentErrorNotRetried(t *testing.T) {
	cat, _ := testDB(t, 0.05)
	s := startServer(t, cat, Config{})
	start := time.Now()
	_, err := Dial(s.Addr(), ClientConfig{Engine: "abacus", MaxRetries: 5, RetryBase: time.Second})
	if err == nil {
		t.Fatal("dial with an unknown engine succeeded")
	}
	if transientDial(err) {
		t.Fatalf("classified %v as transient", err)
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("permanent handshake failure was retried")
	}
}

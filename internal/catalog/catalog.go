// Package catalog implements the database catalog: a named collection of
// relations. The catalog is the machine's view of "source relations in
// the database" — instructions whose operands are catalog relations are
// immediately executable, while operands produced by other instructions
// must be awaited.
package catalog

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"dfdbm/internal/relation"
)

// Catalog is a concurrency-safe collection of named relations.
type Catalog struct {
	mu   sync.RWMutex
	rels map[string]*relation.Relation
	gen  atomic.Int64
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{rels: make(map[string]*relation.Relation)}
}

// Put adds or replaces a relation under its own name.
func (c *Catalog) Put(r *relation.Relation) {
	c.mu.Lock()
	c.rels[r.Name()] = r
	c.mu.Unlock()
	c.gen.Add(1)
}

// Touch records an in-place mutation of the named relation (an append
// or delete rewriting its pages), bumping the dirty generation. The
// catalog cannot observe such writes itself — relations are mutated
// directly — so the write paths report them here.
func (c *Catalog) Touch(string) { c.gen.Add(1) }

// Generation returns the catalog's dirty generation: a counter bumped
// by every Put, Drop, and Touch. A checkpoint that remembers the
// generation it snapshotted can tell whether anything changed since.
func (c *Catalog) Generation() int64 { return c.gen.Load() }

// Get returns the named relation.
func (c *Catalog) Get(name string) (*relation.Relation, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r, ok := c.rels[name]
	if !ok {
		return nil, fmt.Errorf("catalog: no relation %q", name)
	}
	return r, nil
}

// Has reports whether the named relation exists.
func (c *Catalog) Has(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.rels[name]
	return ok
}

// Drop removes the named relation, reporting whether it existed.
func (c *Catalog) Drop(name string) bool {
	c.mu.Lock()
	_, ok := c.rels[name]
	delete(c.rels, name)
	c.mu.Unlock()
	if ok {
		c.gen.Add(1)
	}
	return ok
}

// Names returns the sorted names of all relations.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.rels))
	for n := range c.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of relations.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.rels)
}

// TotalBytes returns the combined storage footprint of all relations —
// the "combined size of 5.5 megabytes" figure of the paper's benchmark
// database.
func (c *Catalog) TotalBytes() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := 0
	for _, r := range c.rels {
		n += r.ByteSize()
	}
	return n
}

// TotalPages returns the combined page count of all relations.
func (c *Catalog) TotalPages() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := 0
	for _, r := range c.rels {
		n += r.NumPages()
	}
	return n
}

package catalog

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestSaveFileAtomicKilledMidway kills a save midway through writing
// and asserts the previously saved file is byte-for-byte intact — the
// crash-safety contract of SaveFile: a failed or interrupted save
// never destroys the old copy.
func TestSaveFileAtomicKilledMidway(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db")
	c := mixedCatalog(t)
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A save that dies partway: it has written half the catalog bytes
	// when the process (here: the write callback) is killed.
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	killed := errors.New("killed mid-save")
	err = WriteFileAtomic(path, func(w io.Writer) error {
		if _, werr := w.Write(buf.Bytes()[:buf.Len()/2]); werr != nil {
			return werr
		}
		return killed
	})
	if !errors.Is(err, killed) {
		t.Fatalf("WriteFileAtomic error = %v, want the mid-save kill", err)
	}

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("old file gone after failed save: %v", err)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("old file modified by failed save (%d -> %d bytes)", len(before), len(after))
	}
	// No stray temp files either.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "db" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory after failed save = %v, want only [db]", names)
	}

	// And the intact file still loads to the same catalog.
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != c.Len() {
		t.Fatalf("reloaded %d relations, want %d", got.Len(), c.Len())
	}
}

// TestLoadCorruptionEveryFlipAndTruncation is the persistence
// corruption property test: for EVERY single-byte flip and EVERY
// truncation of a valid v2 database file, Load must return an error
// wrapping ErrCorrupt — never panic, never silently succeed. The
// trailing CRC-32C makes this total: any damaged bit fails the
// checksum before any byte of the body is interpreted.
func TestLoadCorruptionEveryFlipAndTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := mixedCatalog(t).Save(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	if _, err := Load(bytes.NewReader(valid)); err != nil {
		t.Fatalf("valid file failed to load: %v", err)
	}

	load := func(t *testing.T, data []byte, what string) {
		t.Helper()
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Load panicked on %s: %v", what, r)
			}
		}()
		c, err := Load(bytes.NewReader(data))
		if err == nil {
			t.Fatalf("Load silently succeeded on %s (%d relations)", what, c.Len())
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Load error on %s = %v, want ErrCorrupt", what, err)
		}
	}

	for i := range valid {
		for _, bit := range []byte{0x01, 0x80, 0xFF} {
			flipped := bytes.Clone(valid)
			flipped[i] ^= bit
			load(t, flipped, fmt.Sprintf("flip byte %d ^ %#x", i, bit))
		}
	}
	for n := 0; n < len(valid); n++ {
		load(t, valid[:n], fmt.Sprintf("truncation to %d bytes", n))
	}
}

// TestLoadLegacyV1 keeps version-1 files (no checksum) readable.
func TestLoadLegacyV1(t *testing.T) {
	var buf bytes.Buffer
	c := mixedCatalog(t)
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	v2 := buf.Bytes()
	// A v1 file is the v2 file with the old magic and no trailer.
	v1 := bytes.Clone(v2[:len(v2)-4])
	copy(v1, fileMagicV1[:])
	got, err := Load(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 load: %v", err)
	}
	if got.Len() != c.Len() {
		t.Fatalf("v1 load got %d relations, want %d", got.Len(), c.Len())
	}
}

// TestCatalogGeneration pins the dirty-tracking contract: Put, Drop,
// and Touch advance the generation; reads do not.
func TestCatalogGeneration(t *testing.T) {
	c := New()
	g0 := c.Generation()
	c.Put(mkRel(t, "a", 3))
	if c.Generation() == g0 {
		t.Fatal("Put did not advance generation")
	}
	g1 := c.Generation()
	c.Touch("a")
	if c.Generation() == g1 {
		t.Fatal("Touch did not advance generation")
	}
	g2 := c.Generation()
	_, _ = c.Get("a")
	_ = c.Names()
	_ = c.Len()
	if c.Generation() != g2 {
		t.Fatal("reads advanced generation")
	}
	if !c.Drop("a") {
		t.Fatal("Drop(a) = false")
	}
	if c.Generation() == g2 {
		t.Fatal("Drop did not advance generation")
	}
	g3 := c.Generation()
	if c.Drop("missing") {
		t.Fatal("Drop(missing) = true")
	}
	if c.Generation() != g3 {
		t.Fatal("no-op Drop advanced generation")
	}
}

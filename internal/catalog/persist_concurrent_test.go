package catalog

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"dfdbm/internal/relation"
)

// TestPersistUnderConcurrentReaders hammers one catalog with Save
// round-trips and catalog readers at the same time. Save iterates the
// catalog relation by relation; the catalog's lock must make that safe
// against concurrent Get/Names/TotalBytes traffic (run under -race),
// and every snapshot written must load back byte-identical.
func TestPersistUnderConcurrentReaders(t *testing.T) {
	cat := New()
	for i := 0; i < 8; i++ {
		schema, err := relation.NewSchema(
			relation.Attr{Name: "k", Type: relation.Int64},
			relation.Attr{Name: "s", Type: relation.String, Width: 12},
		)
		if err != nil {
			t.Fatal(err)
		}
		rel, err := relation.New(fmt.Sprintf("t%d", i), schema, 512)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 200; j++ {
			if err := rel.Insert(relation.Tuple{
				relation.IntVal(int64(i*1000 + j)),
				relation.StringVal(fmt.Sprintf("row-%d", j)),
			}); err != nil {
				t.Fatal(err)
			}
		}
		cat.Put(rel)
	}

	const (
		savers  = 4
		readers = 4
		rounds  = 50
	)
	var wg sync.WaitGroup
	errc := make(chan error, savers+readers)

	for w := 0; w < savers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				var buf bytes.Buffer
				if err := cat.Save(&buf); err != nil {
					errc <- fmt.Errorf("save: %w", err)
					return
				}
				loaded, err := Load(bytes.NewReader(buf.Bytes()))
				if err != nil {
					errc <- fmt.Errorf("load: %w", err)
					return
				}
				for _, name := range loaded.Names() {
					got, err := loaded.Get(name)
					if err != nil {
						errc <- err
						return
					}
					want, err := cat.Get(name)
					if err != nil {
						errc <- err
						return
					}
					if !got.EqualMultiset(want) {
						errc <- fmt.Errorf("round-trip of %s not identical", name)
						return
					}
				}
			}
		}()
	}
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds*4; r++ {
				for _, name := range cat.Names() {
					rel, err := cat.Get(name)
					if err != nil {
						errc <- err
						return
					}
					if rel.Cardinality() != 200 {
						errc <- fmt.Errorf("%s: %d tuples, want 200", name, rel.Cardinality())
						return
					}
				}
				_ = cat.TotalBytes()
				_ = cat.TotalPages()
				_ = cat.Len()
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

package catalog

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"dfdbm/internal/relation"
)

// The database file format is a straightforward length-prefixed binary
// layout:
//
//	magic   "DFDBM1\n\x00"                      8 bytes
//	u32     relation count
//	per relation:
//	  u16 name length, name bytes
//	  u32 page size
//	  u16 attribute count
//	  per attribute: u8 type, u32 width, u16 name length, name bytes
//	  u32 page count
//	  per page: u32 blob length, page blob (relation.Page.Marshal)
//
// All integers are little-endian. Pages are stored in wire form, so a
// file read back yields byte-identical relations.

var fileMagic = [8]byte{'D', 'F', 'D', 'B', 'M', '1', '\n', 0}

// Save writes the catalog to w.
func (c *Catalog) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(fileMagic[:]); err != nil {
		return err
	}
	names := c.Names()
	if err := writeU32(bw, uint32(len(names))); err != nil {
		return err
	}
	for _, name := range names {
		r, err := c.Get(name)
		if err != nil {
			return err
		}
		if err := saveRelation(bw, r); err != nil {
			return fmt.Errorf("catalog: saving %q: %w", name, err)
		}
	}
	return bw.Flush()
}

// Load reads a catalog previously written by Save.
func Load(r io.Reader) (*Catalog, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("catalog: reading magic: %w", err)
	}
	if magic != fileMagic {
		return nil, fmt.Errorf("catalog: not a dfdbm database file")
	}
	n, err := readU32(br)
	if err != nil {
		return nil, err
	}
	c := New()
	for i := uint32(0); i < n; i++ {
		rel, err := loadRelation(br)
		if err != nil {
			return nil, fmt.Errorf("catalog: loading relation %d: %w", i, err)
		}
		c.Put(rel)
	}
	return c, nil
}

// SaveFile writes the catalog to the named file.
func (c *Catalog) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a catalog from the named file.
func LoadFile(path string) (*Catalog, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

func saveRelation(w *bufio.Writer, r *relation.Relation) error {
	if err := writeString(w, r.Name()); err != nil {
		return err
	}
	if err := writeU32(w, uint32(r.PageSize())); err != nil {
		return err
	}
	s := r.Schema()
	if err := writeU16(w, uint16(s.NumAttrs())); err != nil {
		return err
	}
	for i := 0; i < s.NumAttrs(); i++ {
		a := s.Attr(i)
		if err := w.WriteByte(byte(a.Type)); err != nil {
			return err
		}
		if err := writeU32(w, uint32(a.Width)); err != nil {
			return err
		}
		if err := writeString(w, a.Name); err != nil {
			return err
		}
	}
	if err := writeU32(w, uint32(r.NumPages())); err != nil {
		return err
	}
	for _, pg := range r.Pages() {
		blob := pg.Marshal()
		if err := writeU32(w, uint32(len(blob))); err != nil {
			return err
		}
		if _, err := w.Write(blob); err != nil {
			return err
		}
	}
	return nil
}

func loadRelation(r *bufio.Reader) (*relation.Relation, error) {
	name, err := readString(r)
	if err != nil {
		return nil, err
	}
	pageSize, err := readU32(r)
	if err != nil {
		return nil, err
	}
	nAttrs, err := readU16(r)
	if err != nil {
		return nil, err
	}
	attrs := make([]relation.Attr, nAttrs)
	for i := range attrs {
		tb, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		width, err := readU32(r)
		if err != nil {
			return nil, err
		}
		aname, err := readString(r)
		if err != nil {
			return nil, err
		}
		attrs[i] = relation.Attr{Name: aname, Type: relation.Type(tb), Width: int(width)}
	}
	schema, err := relation.NewSchema(attrs...)
	if err != nil {
		return nil, err
	}
	rel, err := relation.New(name, schema, int(pageSize))
	if err != nil {
		return nil, err
	}
	nPages, err := readU32(r)
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nPages; i++ {
		blobLen, err := readU32(r)
		if err != nil {
			return nil, err
		}
		if blobLen > 1<<30 {
			return nil, fmt.Errorf("implausible page blob of %d bytes", blobLen)
		}
		blob := make([]byte, blobLen)
		if _, err := io.ReadFull(r, blob); err != nil {
			return nil, err
		}
		pg, err := relation.UnmarshalPage(blob)
		if err != nil {
			return nil, err
		}
		if pg.TupleLen() != schema.TupleLen() {
			return nil, fmt.Errorf("page tuple length %d does not match schema %s", pg.TupleLen(), schema)
		}
		if err := rel.AppendPage(pg); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

func writeU16(w *bufio.Writer, v uint16) error {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func writeU32(w *bufio.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func writeString(w *bufio.Writer, s string) error {
	if len(s) > 1<<16-1 {
		return fmt.Errorf("string of %d bytes too long to store", len(s))
	}
	if err := writeU16(w, uint16(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readU16(r *bufio.Reader) (uint16, error) {
	var b [2]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b[:]), nil
}

func readU32(r *bufio.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func readString(r *bufio.Reader) (string, error) {
	n, err := readU16(r)
	if err != nil {
		return "", err
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

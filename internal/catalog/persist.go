package catalog

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"dfdbm/internal/relation"
)

// The database file format is a straightforward length-prefixed binary
// layout:
//
//	magic   "DFDBM2\n\x00"                      8 bytes
//	u32     relation count
//	per relation:
//	  u16 name length, name bytes
//	  u32 page size
//	  u16 attribute count
//	  per attribute: u8 type, u32 width, u16 name length, name bytes
//	  u32 page count
//	  per page: u32 blob length, page blob (relation.Page.Marshal)
//	u32     CRC-32C of everything above (magic included)
//
// All integers are little-endian. Pages are stored in wire form, so a
// file read back yields byte-identical relations. The trailing checksum
// makes corruption — a torn write, a flipped bit, a truncated file —
// detectable instead of silently loadable: recovery relies on it to
// pick the newest *valid* snapshot. Version-1 files (magic "DFDBM1",
// no checksum) are still readable.

var (
	fileMagic   = [8]byte{'D', 'F', 'D', 'B', 'M', '2', '\n', 0}
	fileMagicV1 = [8]byte{'D', 'F', 'D', 'B', 'M', '1', '\n', 0}
)

// ErrCorrupt marks a database file that is recognizably a dfdbm file
// but fails validation — checksum mismatch, truncation, or a
// structurally impossible value. Callers test with errors.Is.
var ErrCorrupt = errors.New("catalog: corrupt database file")

// castagnoli is the CRC-32C table shared by every checksum here.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Save writes the catalog to w in the checksummed v2 format.
func (c *Catalog) Save(w io.Writer) error {
	crc := crc32.New(castagnoli)
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	if _, err := bw.Write(fileMagic[:]); err != nil {
		return err
	}
	names := c.Names()
	if err := writeU32(bw, uint32(len(names))); err != nil {
		return err
	}
	for _, name := range names {
		r, err := c.Get(name)
		if err != nil {
			return err
		}
		if err := saveRelation(bw, r); err != nil {
			return fmt.Errorf("catalog: saving %q: %w", name, err)
		}
	}
	// The trailer must not feed the running checksum, so flush the body
	// through the hash first and write the sum to w alone.
	if err := bw.Flush(); err != nil {
		return err
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc.Sum32())
	_, err := w.Write(trailer[:])
	return err
}

// Load reads a catalog previously written by Save. It accepts both the
// checksummed v2 format and legacy v1 files. Any validation failure on
// a v2 file — bad checksum, truncation, implausible structure — is
// reported wrapping ErrCorrupt; corruption never panics and never
// loads silently.
func Load(r io.Reader) (*Catalog, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrCorrupt, err)
	}
	if magic == fileMagicV1 {
		return loadBody(br)
	}
	if magic != fileMagic {
		return nil, fmt.Errorf("%w: not a dfdbm database file", ErrCorrupt)
	}
	// v2: the whole body must be present and must checksum correctly
	// before any of it is interpreted.
	rest, err := io.ReadAll(br)
	if err != nil {
		return nil, fmt.Errorf("%w: reading body: %v", ErrCorrupt, err)
	}
	if len(rest) < 4 {
		return nil, fmt.Errorf("%w: file truncated before checksum", ErrCorrupt)
	}
	body, trailer := rest[:len(rest)-4], rest[len(rest)-4:]
	crc := crc32.New(castagnoli)
	crc.Write(magic[:])
	crc.Write(body)
	if got, want := crc.Sum32(), binary.LittleEndian.Uint32(trailer); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (computed %08x, stored %08x)", ErrCorrupt, got, want)
	}
	c, err := loadBody(bufio.NewReader(bytes.NewReader(body)))
	if err != nil {
		// Structurally invalid despite a matching checksum (e.g. a file
		// assembled by hand): still corruption, never a silent success.
		if !errors.Is(err, ErrCorrupt) {
			err = fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		return nil, err
	}
	return c, nil
}

// loadBody parses the relation-count-prefixed body shared by v1 and v2.
func loadBody(br *bufio.Reader) (*Catalog, error) {
	n, err := readU32(br)
	if err != nil {
		return nil, err
	}
	c := New()
	for i := uint32(0); i < n; i++ {
		rel, err := loadRelation(br)
		if err != nil {
			return nil, fmt.Errorf("catalog: loading relation %d: %w", i, err)
		}
		c.Put(rel)
	}
	return c, nil
}

// SaveFile writes the catalog to the named file crash-safely: the bytes
// go to a temporary file in the same directory, which is fsynced and
// renamed over the target, and the directory entry is fsynced too. A
// crash at any point leaves either the old file or the new one — never
// a torn mix, and never a lost target.
func (c *Catalog) SaveFile(path string) error {
	return WriteFileAtomic(path, c.Save)
}

// WriteFileAtomic writes the output of write to path with
// all-or-nothing crash semantics: temp file in the same directory,
// fsync, rename over the target, directory fsync. On any error the
// temp file is removed and the previous contents of path are intact.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := write(tmp); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory, making renames and file creations within
// it durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// LoadFile reads a catalog from the named file.
func LoadFile(path string) (*Catalog, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

func saveRelation(w *bufio.Writer, r *relation.Relation) error {
	if err := writeString(w, r.Name()); err != nil {
		return err
	}
	if err := writeU32(w, uint32(r.PageSize())); err != nil {
		return err
	}
	s := r.Schema()
	if err := writeU16(w, uint16(s.NumAttrs())); err != nil {
		return err
	}
	for i := 0; i < s.NumAttrs(); i++ {
		a := s.Attr(i)
		if err := w.WriteByte(byte(a.Type)); err != nil {
			return err
		}
		if err := writeU32(w, uint32(a.Width)); err != nil {
			return err
		}
		if err := writeString(w, a.Name); err != nil {
			return err
		}
	}
	if err := writeU32(w, uint32(r.NumPages())); err != nil {
		return err
	}
	for _, pg := range r.Pages() {
		blob := pg.Marshal()
		if err := writeU32(w, uint32(len(blob))); err != nil {
			return err
		}
		if _, err := w.Write(blob); err != nil {
			return err
		}
	}
	return nil
}

func loadRelation(r *bufio.Reader) (*relation.Relation, error) {
	name, err := readString(r)
	if err != nil {
		return nil, err
	}
	pageSize, err := readU32(r)
	if err != nil {
		return nil, err
	}
	nAttrs, err := readU16(r)
	if err != nil {
		return nil, err
	}
	attrs := make([]relation.Attr, nAttrs)
	for i := range attrs {
		tb, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		width, err := readU32(r)
		if err != nil {
			return nil, err
		}
		aname, err := readString(r)
		if err != nil {
			return nil, err
		}
		attrs[i] = relation.Attr{Name: aname, Type: relation.Type(tb), Width: int(width)}
	}
	schema, err := relation.NewSchema(attrs...)
	if err != nil {
		return nil, err
	}
	rel, err := relation.New(name, schema, int(pageSize))
	if err != nil {
		return nil, err
	}
	nPages, err := readU32(r)
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nPages; i++ {
		blobLen, err := readU32(r)
		if err != nil {
			return nil, err
		}
		if blobLen > 1<<30 {
			return nil, fmt.Errorf("implausible page blob of %d bytes", blobLen)
		}
		blob := make([]byte, blobLen)
		if _, err := io.ReadFull(r, blob); err != nil {
			return nil, err
		}
		pg, err := relation.UnmarshalPage(blob)
		if err != nil {
			return nil, err
		}
		if pg.TupleLen() != schema.TupleLen() {
			return nil, fmt.Errorf("page tuple length %d does not match schema %s", pg.TupleLen(), schema)
		}
		if err := rel.AppendPage(pg); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

func writeU16(w *bufio.Writer, v uint16) error {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func writeU32(w *bufio.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func writeString(w *bufio.Writer, s string) error {
	if len(s) > 1<<16-1 {
		return fmt.Errorf("string of %d bytes too long to store", len(s))
	}
	if err := writeU16(w, uint16(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readU16(r *bufio.Reader) (uint16, error) {
	var b [2]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b[:]), nil
}

func readU32(r *bufio.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func readString(r *bufio.Reader) (string, error) {
	n, err := readU16(r)
	if err != nil {
		return "", err
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

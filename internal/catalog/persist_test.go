package catalog

import (
	"bytes"
	"path/filepath"
	"testing"

	"dfdbm/internal/relation"
)

func mixedCatalog(t testing.TB) *Catalog {
	t.Helper()
	c := New()
	// A relation with every attribute type.
	s := relation.MustSchema(
		relation.Attr{Name: "id", Type: relation.Int32},
		relation.Attr{Name: "big", Type: relation.Int64},
		relation.Attr{Name: "w", Type: relation.Float64},
		relation.Attr{Name: "tag", Type: relation.String, Width: 10},
	)
	r := relation.MustNew("mixed", s, 512)
	for i := 0; i < 37; i++ {
		if err := r.Insert(relation.Tuple{
			relation.IntVal(int64(i)),
			relation.IntVal(int64(i) * 1e10),
			relation.FloatVal(float64(i) / 3),
			relation.StringVal("tag"),
		}); err != nil {
			t.Fatal(err)
		}
	}
	c.Put(r)
	c.Put(mkRel(t, "ints", 11))
	c.Put(mkRel(t, "empty", 0))
	return c
}

func TestSaveLoadRoundTrip(t *testing.T) {
	orig := mixedCatalog(t)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("loaded %d relations, want %d", got.Len(), orig.Len())
	}
	for _, name := range orig.Names() {
		a, _ := orig.Get(name)
		b, err := got.Get(name)
		if err != nil {
			t.Fatalf("relation %q lost: %v", name, err)
		}
		if !a.Schema().Equal(b.Schema()) {
			t.Errorf("%q schema changed: %s vs %s", name, a.Schema(), b.Schema())
		}
		if a.PageSize() != b.PageSize() {
			t.Errorf("%q page size changed: %d vs %d", name, a.PageSize(), b.PageSize())
		}
		if !a.EqualMultiset(b) {
			t.Errorf("%q contents changed", name)
		}
		if a.NumPages() != b.NumPages() {
			t.Errorf("%q page count changed: %d vs %d", name, a.NumPages(), b.NumPages())
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.dfdbm")
	orig := mixedCatalog(t)
	if err := orig.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	a, _ := orig.Get("mixed")
	b, _ := got.Get("mixed")
	if !a.EqualMultiset(b) {
		t.Error("file round trip changed contents")
	}
}

func TestLoadErrors(t *testing.T) {
	good := new(bytes.Buffer)
	if err := mixedCatalog(t).Save(good); err != nil {
		t.Fatal(err)
	}
	blob := good.Bytes()

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", append([]byte("NOTADB!\x00"), blob[8:]...)},
		{"truncated header", blob[:10]},
		{"truncated body", blob[:len(blob)/2]},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Load(bytes.NewReader(c.data)); err == nil {
				t.Error("Load succeeded, want error")
			}
		})
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.dfdbm")); err == nil {
		t.Error("LoadFile of missing file succeeded")
	}
}

func TestLoadRejectsCorruptPage(t *testing.T) {
	var buf bytes.Buffer
	if err := mixedCatalog(t).Save(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	// Flip a byte near the end (inside some page payload's header
	// region) and expect a parse error rather than silent corruption of
	// structure. (Payload-byte flips are not detectable without
	// checksums; structural fields are.)
	idx := len(blob) - 200
	corrupted := append([]byte(nil), blob...)
	corrupted[idx] ^= 0xFF
	if _, err := Load(bytes.NewReader(corrupted)); err == nil {
		// A payload flip loads fine; that is acceptable. Corrupt a page
		// length instead: find the final page blob length field by
		// truncating, which must error.
		if _, err := Load(bytes.NewReader(blob[:len(blob)-1])); err == nil {
			t.Error("truncated page accepted")
		}
	}
}

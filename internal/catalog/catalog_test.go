package catalog

import (
	"sync"
	"testing"

	"dfdbm/internal/relation"
)

func mkRel(t testing.TB, name string, n int) *relation.Relation {
	t.Helper()
	s := relation.MustSchema(relation.Attr{Name: "id", Type: relation.Int32})
	r := relation.MustNew(name, s, 64)
	for i := 0; i < n; i++ {
		if err := r.Insert(relation.Tuple{relation.IntVal(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestCatalogPutGetDrop(t *testing.T) {
	c := New()
	if c.Len() != 0 {
		t.Fatalf("new catalog has %d relations", c.Len())
	}
	c.Put(mkRel(t, "A", 3))
	c.Put(mkRel(t, "B", 5))
	if c.Len() != 2 || !c.Has("A") || !c.Has("B") || c.Has("C") {
		t.Error("Put/Has bookkeeping wrong")
	}
	r, err := c.Get("A")
	if err != nil || r.Cardinality() != 3 {
		t.Errorf("Get(A) = %v, %v", r, err)
	}
	if _, err := c.Get("C"); err == nil {
		t.Error("Get of missing relation succeeded")
	}
	if !c.Drop("A") || c.Drop("A") {
		t.Error("Drop semantics wrong")
	}
	if c.Len() != 1 {
		t.Errorf("Len after drop = %d, want 1", c.Len())
	}
}

func TestCatalogReplace(t *testing.T) {
	c := New()
	c.Put(mkRel(t, "A", 3))
	c.Put(mkRel(t, "A", 7))
	r, err := c.Get("A")
	if err != nil || r.Cardinality() != 7 {
		t.Errorf("replaced relation has %d tuples, want 7", r.Cardinality())
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestCatalogNamesSorted(t *testing.T) {
	c := New()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		c.Put(mkRel(t, n, 1))
	}
	names := c.Names()
	want := []string{"alpha", "mid", "zeta"}
	if len(names) != 3 {
		t.Fatalf("Names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("Names[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestCatalogTotals(t *testing.T) {
	c := New()
	a := mkRel(t, "A", 10)
	b := mkRel(t, "B", 20)
	c.Put(a)
	c.Put(b)
	if got, want := c.TotalBytes(), a.ByteSize()+b.ByteSize(); got != want {
		t.Errorf("TotalBytes = %d, want %d", got, want)
	}
	if got, want := c.TotalPages(), a.NumPages()+b.NumPages(); got != want {
		t.Errorf("TotalPages = %d, want %d", got, want)
	}
}

func TestCatalogConcurrentAccess(t *testing.T) {
	c := New()
	c.Put(mkRel(t, "base", 5))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				switch i % 4 {
				case 0:
					c.Put(mkRel(t, "base", 5))
				case 1:
					_, _ = c.Get("base")
				case 2:
					_ = c.Names()
				case 3:
					_ = c.TotalBytes()
				}
			}
		}(g)
	}
	wg.Wait()
	if !c.Has("base") {
		t.Error("base relation lost")
	}
}

package sched

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"dfdbm/internal/fault"
	"dfdbm/internal/hw"
	"dfdbm/internal/machine"
	"dfdbm/internal/query"
	"dfdbm/internal/workload"
)

// chaosSeeds mirrors the machine chaos tests: sweep a few fault-plan
// seeds, or pin one via DFDBM_CHAOS_SEED (the CI chaos matrix).
func chaosSeeds(t *testing.T) []int64 {
	t.Helper()
	if s := os.Getenv("DFDBM_CHAOS_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("DFDBM_CHAOS_SEED=%q: %v", s, err)
		}
		return []int64{n}
	}
	return []int64{1, 7}
}

// TestChaosRunnerFaultReturnsTypedError kills the engine under a
// scheduled query: the runner executes a ring machine whose fault plan
// (100% completion-packet loss, tiny retry budget) exhausts recovery.
// The session side must receive a typed machine.FaultError through the
// scheduler — not a hang, and not a stuck runner: the pool must still
// execute a healthy query afterwards.
func TestChaosRunnerFaultReturnsTypedError(t *testing.T) {
	cat, qs, err := workload.Build(workload.Config{Seed: 42, Scale: 0.05, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	small := hw.Default1979()
	small.PageSize = 512

	for _, seed := range chaosSeeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			s := New(Config{Runners: 2, QueueDepth: 8})
			defer s.Close()

			doomed := &Job{
				Session: "chaos", Label: "chaos/q3", QueryID: -1,
				Footprint: query.Analyze(qs[2].Root()),
				Exec: func(ctx context.Context) (any, error) {
					m, err := machine.New(cat, machine.Config{
						HW: small, IPs: 4, IPsPerInstruction: 4,
						WatchdogTimeout: 50 * time.Millisecond, RetryBudget: 2,
						Fault: fault.New(fault.Config{
							Seed: seed,
							Drop: map[fault.Class]float64{fault.ClassCompletion: 1.0},
						}),
					})
					if err != nil {
						return nil, err
					}
					if err := m.Submit(qs[2]); err != nil {
						return nil, err
					}
					res, err := m.Run()
					if err != nil {
						return nil, err
					}
					return res, nil
				},
			}
			out, err := s.Submit(doomed)
			if err != nil {
				t.Fatal(err)
			}
			select {
			case o := <-out:
				if o.Err == nil {
					t.Fatal("faulted run succeeded with 100% completion loss")
				}
				var fe *machine.FaultError
				if !errors.As(o.Err, &fe) {
					t.Fatalf("outcome error is %T (%v), want *machine.FaultError", o.Err, o.Err)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("session hung waiting for the faulted runner")
			}

			// The pool must still serve healthy work.
			healthy := &Job{
				Session: "chaos", Label: "chaos/q1", QueryID: -1,
				Footprint: query.Analyze(qs[0].Root()),
				Exec: func(ctx context.Context) (any, error) {
					return query.ExecuteSerial(cat, qs[0], 0)
				},
			}
			out, err = s.Submit(healthy)
			if err != nil {
				t.Fatal(err)
			}
			select {
			case o := <-out:
				if o.Err != nil {
					t.Fatalf("healthy query after fault: %v", o.Err)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("healthy query hung after a faulted runner")
			}
		})
	}
}

package sched

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dfdbm/internal/obs"
	"dfdbm/internal/query"
)

func fp(reads, writes []string) query.Footprint {
	return query.Footprint{Reads: reads, Writes: writes}
}

// waitJob returns a job whose Exec blocks until release is closed.
func waitJob(session string, f query.Footprint, release <-chan struct{}, ran *int32, mu *sync.Mutex) *Job {
	return &Job{
		Session:   session,
		Label:     session,
		Lane:      LaneNormal,
		Footprint: f,
		QueryID:   -1,
		Exec: func(ctx context.Context) (any, error) {
			mu.Lock()
			*ran++
			mu.Unlock()
			select {
			case <-release:
				return "ok", nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	}
}

func TestSubmitRunsJob(t *testing.T) {
	s := New(Config{Runners: 2, QueueDepth: 8})
	defer s.Close()
	out, err := s.Submit(&Job{
		Session: "s1", Label: "s1/q1", QueryID: -1,
		Footprint: fp([]string{"r1"}, nil),
		Exec:      func(context.Context) (any, error) { return 42, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	o := <-out
	if o.Err != nil || o.Value != 42 {
		t.Fatalf("outcome %+v", o)
	}
	if o.Deferred {
		t.Error("uncontended job reported deferred")
	}
}

// TestOverloadSheds fills the runner pool and the queue, then asserts
// the next Submit sheds with ErrOverloaded instead of blocking.
func TestOverloadSheds(t *testing.T) {
	const runners, depth = 2, 3
	s := New(Config{Runners: runners, QueueDepth: depth})
	defer s.Close()
	release := make(chan struct{})
	var mu sync.Mutex
	var ran int32
	var outs []<-chan Outcome
	// Occupy every runner. Same footprint reads conflict-free.
	for i := 0; i < runners; i++ {
		out, err := s.Submit(waitJob(fmt.Sprintf("s%d", i), fp([]string{"r1"}, nil), release, &ran, &mu))
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, out)
	}
	// Wait until both are running so the queue accounting is exact.
	deadline := time.Now().Add(5 * time.Second)
	for s.RunningCount() != runners {
		if time.Now().After(deadline) {
			t.Fatal("runners never became busy")
		}
		time.Sleep(time.Millisecond)
	}
	// Fill the queue.
	for i := 0; i < depth; i++ {
		out, err := s.Submit(waitJob("sq", fp([]string{"r1"}, nil), release, &ran, &mu))
		if err != nil {
			t.Fatalf("queue slot %d: %v", i, err)
		}
		outs = append(outs, out)
	}
	if got := s.QueueDepth(); got != depth {
		t.Fatalf("queue depth %d, want %d", got, depth)
	}
	// One more must shed.
	if _, err := s.Submit(waitJob("sq", fp([]string{"r1"}, nil), release, &ran, &mu)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("got %v, want ErrOverloaded", err)
	}
	close(release)
	for _, out := range outs {
		if o := <-out; o.Err != nil {
			t.Fatalf("queued job failed: %v", o.Err)
		}
	}
}

// TestWriteConflictDefersAndReportsDeferred: a writer of r1 and a
// reader of r1 never run concurrently, and the second reports it was
// deferred.
func TestWriteConflictDefersAndReportsDeferred(t *testing.T) {
	s := New(Config{Runners: 4, QueueDepth: 8})
	defer s.Close()
	release := make(chan struct{})
	var mu sync.Mutex
	var ran int32
	wout, err := s.Submit(waitJob("w", fp([]string{"r1"}, []string{"r1"}), release, &ran, &mu))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.RunningCount() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("writer never started")
		}
		time.Sleep(time.Millisecond)
	}
	rout, err := s.Submit(&Job{
		Session: "r", Label: "r", QueryID: -1,
		Footprint: fp([]string{"r1"}, nil),
		Exec:      func(context.Context) (any, error) { return "read", nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	// The reader must stay queued while the writer runs.
	time.Sleep(20 * time.Millisecond)
	if got := s.QueueDepth(); got != 1 {
		t.Fatalf("reader not deferred: queue depth %d", got)
	}
	close(release)
	if o := <-wout; o.Err != nil {
		t.Fatal(o.Err)
	}
	o := <-rout
	if o.Err != nil {
		t.Fatal(o.Err)
	}
	if !o.Deferred {
		t.Error("conflicting reader did not report Deferred")
	}
}

// TestLanePriority: with one runner busy, a queued high-lane job is
// admitted before an earlier-queued low-lane job.
func TestLanePriority(t *testing.T) {
	s := New(Config{Runners: 1, QueueDepth: 8})
	defer s.Close()
	release := make(chan struct{})
	var mu sync.Mutex
	var ran int32
	first, err := s.Submit(waitJob("a", fp([]string{"r1"}, nil), release, &ran, &mu))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.RunningCount() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	var order []string
	var omu sync.Mutex
	mk := func(name string, lane Lane) *Job {
		return &Job{
			Session: name, Label: name, Lane: lane, QueryID: -1,
			Footprint: fp([]string{"r2"}, nil),
			Exec: func(context.Context) (any, error) {
				omu.Lock()
				order = append(order, name)
				omu.Unlock()
				return nil, nil
			},
		}
	}
	louts, err := s.Submit(mk("low", LaneLow))
	if err != nil {
		t.Fatal(err)
	}
	houts, err := s.Submit(mk("high", LaneHigh))
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	<-first
	<-louts
	<-houts
	if len(order) != 2 || order[0] != "high" {
		t.Fatalf("admission order %v, want high first", order)
	}
}

// TestFairShareAcrossSessions: with one session flooding the queue, a
// second session's job is dispatched before the flood drains.
func TestFairShareAcrossSessions(t *testing.T) {
	s := New(Config{Runners: 1, QueueDepth: 32})
	defer s.Close()
	release := make(chan struct{})
	var mu sync.Mutex
	var ran int32
	first, err := s.Submit(waitJob("flood", fp([]string{"r1"}, nil), release, &ran, &mu))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.RunningCount() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	var order []string
	var omu sync.Mutex
	mk := func(session string, i int) *Job {
		name := fmt.Sprintf("%s/%d", session, i)
		return &Job{
			Session: session, Label: name, Lane: LaneNormal, QueryID: -1,
			Footprint: fp([]string{"r2"}, nil),
			Exec: func(context.Context) (any, error) {
				omu.Lock()
				order = append(order, session)
				omu.Unlock()
				return nil, nil
			},
		}
	}
	var outs []<-chan Outcome
	for i := 0; i < 10; i++ {
		out, err := s.Submit(mk("flood", i))
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, out)
	}
	out, err := s.Submit(mk("quiet", 0))
	if err != nil {
		t.Fatal(err)
	}
	outs = append(outs, out)
	close(release)
	<-first
	for _, o := range outs {
		<-o
	}
	// The quiet session must not run last: round-robin interleaves it
	// after at most one more flood job.
	pos := -1
	for i, sess := range order {
		if sess == "quiet" {
			pos = i
		}
	}
	if pos < 0 || pos > 2 {
		t.Fatalf("quiet session ran at position %d of %v, want within the first 3", pos, order)
	}
}

// TestDrainFinishesInFlightAndRejectsNew: Drain completes running and
// queued work, and Submits after Drain begin are rejected.
func TestDrainFinishesInFlightAndRejectsNew(t *testing.T) {
	s := New(Config{Runners: 1, QueueDepth: 8})
	release := make(chan struct{})
	var mu sync.Mutex
	var ran int32
	out1, err := s.Submit(waitJob("a", fp([]string{"r1"}, nil), release, &ran, &mu))
	if err != nil {
		t.Fatal(err)
	}
	out2, err := s.Submit(waitJob("b", fp([]string{"r1"}, nil), release, &ran, &mu))
	if err != nil {
		t.Fatal(err)
	}
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	// Give Drain a moment to set the draining flag, then check rejects.
	time.Sleep(20 * time.Millisecond)
	if _, err := s.Submit(waitJob("c", fp([]string{"r1"}, nil), release, &ran, &mu)); !errors.Is(err, ErrDraining) && !errors.Is(err, ErrClosed) {
		t.Fatalf("submit during drain: %v, want ErrDraining", err)
	}
	close(release)
	if o := <-out1; o.Err != nil {
		t.Fatal(o.Err)
	}
	if o := <-out2; o.Err != nil {
		t.Fatal(o.Err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestDrainDeadlineCancels: a drain whose context expires cancels the
// running job and fails queued jobs with ErrClosed.
func TestDrainDeadlineCancels(t *testing.T) {
	s := New(Config{Runners: 1, QueueDepth: 8})
	never := make(chan struct{}) // never closed: the job only ends by cancellation
	var mu sync.Mutex
	var ran int32
	out1, err := s.Submit(waitJob("a", fp([]string{"r1"}, nil), never, &ran, &mu))
	if err != nil {
		t.Fatal(err)
	}
	out2, err := s.Submit(waitJob("b", fp([]string{"r1"}, nil), never, &ran, &mu))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain: %v, want deadline exceeded", err)
	}
	if o := <-out1; !errors.Is(o.Err, context.Canceled) {
		t.Fatalf("running job outcome %v, want context.Canceled", o.Err)
	}
	if o := <-out2; !errors.Is(o.Err, ErrClosed) {
		t.Fatalf("queued job outcome %v, want ErrClosed", o.Err)
	}
}

// TestNeverAdmitsConflictingWriters is the scheduler-semantics
// property test: across hundreds of randomized queries, two jobs whose
// write-sets intersect (or where one writes what the other reads) are
// never observed running concurrently.
func TestNeverAdmitsConflictingWriters(t *testing.T) {
	rels := []string{"r1", "r2", "r3", "r4"}
	rng := rand.New(rand.NewSource(7))

	s := New(Config{Runners: 8, QueueDepth: 512})
	defer s.Close()

	type activeJob struct {
		id int
		f  query.Footprint
	}
	var amu sync.Mutex
	active := map[int]activeJob{}
	var violation error

	const jobs = 400
	var outs []<-chan Outcome
	for i := 0; i < jobs; i++ {
		// Random footprint: 1-2 reads, sometimes a write.
		reads := map[string]bool{rels[rng.Intn(len(rels))]: true}
		if rng.Intn(2) == 0 {
			reads[rels[rng.Intn(len(rels))]] = true
		}
		var writes []string
		if rng.Intn(3) == 0 {
			w := rels[rng.Intn(len(rels))]
			writes = []string{w}
			reads[w] = true
		}
		var rlist []string
		for r := range reads {
			rlist = append(rlist, r)
		}
		f := query.Footprint{Reads: sorted(rlist), Writes: writes}
		id := i
		hold := time.Duration(rng.Intn(3)) * time.Millisecond
		out, err := s.Submit(&Job{
			Session: fmt.Sprintf("s%d", i%7), Label: fmt.Sprintf("q%d", i),
			Lane: Lane(rng.Intn(int(numLanes))), Footprint: f, QueryID: -1,
			Exec: func(context.Context) (any, error) {
				amu.Lock()
				for _, other := range active {
					if f.Conflicts(other.f) && violation == nil {
						violation = fmt.Errorf("job %d (%v) admitted concurrently with job %d (%v)", id, f, other.id, other.f)
					}
				}
				active[id] = activeJob{id: id, f: f}
				amu.Unlock()
				time.Sleep(hold)
				amu.Lock()
				delete(active, id)
				amu.Unlock()
				return nil, nil
			},
		})
		if errors.Is(err, ErrOverloaded) {
			continue // shed is a legal outcome under load
		}
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, out)
	}
	for _, out := range outs {
		if o := <-out; o.Err != nil {
			t.Fatal(o.Err)
		}
	}
	amu.Lock()
	defer amu.Unlock()
	if violation != nil {
		t.Fatal(violation)
	}
}

// TestSchedulerMetrics: admission decisions land in the registry as
// counters and gauges.
func TestSchedulerMetrics(t *testing.T) {
	reg := obs.NewRegistry(time.Millisecond)
	o := obs.New(nil, reg)
	s := New(Config{Runners: 1, QueueDepth: 1, Obs: o})
	defer s.Close()

	release := make(chan struct{})
	var mu sync.Mutex
	var ran int32
	out1, err := s.Submit(waitJob("a", fp([]string{"r1"}, nil), release, &ran, &mu))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.RunningCount() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	out2, err := s.Submit(waitJob("b", fp([]string{"r1"}, nil), release, &ran, &mu))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(waitJob("c", fp([]string{"r1"}, nil), release, &ran, &mu)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("got %v, want ErrOverloaded", err)
	}
	close(release)
	<-out1
	<-out2
	if got := reg.Counter("sched.admitted"); got != 2 {
		t.Errorf("sched.admitted = %d, want 2", got)
	}
	if got := reg.Counter("sched.shed"); got != 1 {
		t.Errorf("sched.shed = %d, want 1", got)
	}
	if got := reg.Counter("sched.completed"); got != 2 {
		t.Errorf("sched.completed = %d, want 2", got)
	}
}

func sorted(s []string) []string {
	out := append([]string(nil), s...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TestNoStarvationUnderSustainedHighLoad: with the high lane never
// empty, low-lane work must still be admitted within a bounded number
// of dispatches (Config.StarveLimit), not starved behind the flood.
// The per-lane admission-wait histograms are both the mechanism under
// test and the measurement.
func TestNoStarvationUnderSustainedHighLoad(t *testing.T) {
	reg := obs.NewRegistry(time.Millisecond)
	o := obs.New(nil, reg)
	s := New(Config{Runners: 1, QueueDepth: 512, StarveLimit: 4, Obs: o})
	defer s.Close()

	const highJobs = 120
	const lowJobs = 5
	burn := func(context.Context) (any, error) {
		time.Sleep(2 * time.Millisecond)
		return nil, nil
	}
	var highOuts []<-chan Outcome
	// Prefill a deep high-lane backlog: one runner draining 2 ms jobs
	// keeps the lane non-empty for ~240 ms, far longer than the low
	// jobs need.
	for i := 0; i < highJobs; i++ {
		out, err := s.Submit(&Job{
			Session: fmt.Sprintf("hi%d", i%4), Label: fmt.Sprintf("hi/q%d", i),
			Lane: LaneHigh, QueryID: -1, Exec: burn,
		})
		if err != nil {
			t.Fatal(err)
		}
		highOuts = append(highOuts, out)
	}
	var lowOuts []<-chan Outcome
	for i := 0; i < lowJobs; i++ {
		out, err := s.Submit(&Job{
			Session: "lo", Label: fmt.Sprintf("lo/q%d", i),
			Lane: LaneLow, QueryID: -1, Exec: burn,
		})
		if err != nil {
			t.Fatal(err)
		}
		lowOuts = append(lowOuts, out)
	}

	// Every low job must finish while high work still floods the queue.
	for i, out := range lowOuts {
		select {
		case o := <-out:
			if o.Err != nil {
				t.Fatalf("low job %d failed: %v", i, o.Err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("low job %d starved behind the high lane", i)
		}
	}
	if got := s.QueueDepth(); got == 0 {
		t.Fatal("high backlog drained before the low jobs finished; the test never exercised contention")
	}
	for _, out := range highOuts {
		if o := <-out; o.Err != nil {
			t.Fatalf("high job failed: %v", o.Err)
		}
	}

	h := s.LaneWaitHistogram(LaneLow)
	if h.Count() != lowJobs {
		t.Fatalf("low-lane wait histogram counted %d, want %d", h.Count(), lowJobs)
	}
	// The anti-starvation bound: a low job waits at most ~StarveLimit
	// dispatch cycles of 2 ms work each, plus scheduling noise — far
	// below the ~240 ms the full high backlog would impose.
	if worst := time.Duration(h.Max()); worst > 150*time.Millisecond {
		t.Errorf("worst low-lane admission wait %v; starvation bound not enforced", worst)
	}
	if hh := s.LaneWaitHistogram(LaneHigh); hh.Count() != highJobs {
		t.Errorf("high-lane wait histogram counted %d, want %d", hh.Count(), highJobs)
	}
}

// Package sched implements the query server's real-time admission
// scheduler. It generalizes the concurrency control the paper gives
// the master controller in Section 4: before a query runs, its
// read/write footprint (internal/query.Analyze) is checked against
// every running query, and the query is admitted only when no running
// query writes a relation it reads or writes (and vice versa). Queries
// that cannot be admitted yet wait in a bounded queue — FIFO within a
// priority lane, lanes served high to low, sessions within a lane
// served round-robin so one chatty session cannot starve the rest.
// When the queue is full, Submit sheds load with ErrOverloaded instead
// of blocking the caller, and the server turns that into an
// "overloaded" error frame: backpressure reaches the client instead of
// piling up in the host.
//
// Admitted queries are dispatched to a pool of engine runners
// (goroutines); the scheduler never admits more queries than the pool's
// current target size, so an admitted query starts immediately and the
// conflict check is exact: the running set is precisely the admitted
// set. The pool resizes at runtime (SetRunners) between 1 and
// Config.MaxRunners; an optional Autoscaler closes the loop, steering
// the size by the queue-depth gauge and admit-wait histograms.
package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dfdbm/internal/obs"
	"dfdbm/internal/query"
)

// Typed scheduler errors. Servers map them onto wire error codes; test
// with errors.Is.
var (
	// ErrOverloaded is returned by Submit when the admission queue is
	// full. The query was shed, not queued.
	ErrOverloaded = errors.New("sched: overloaded, admission queue full")
	// ErrDraining is returned by Submit after Drain began.
	ErrDraining = errors.New("sched: draining, not accepting queries")
	// ErrClosed is returned by Submit after Close, and delivered as the
	// outcome of queued queries a drain deadline cancelled.
	ErrClosed = errors.New("sched: scheduler closed")
)

// Lane is an admission priority lane.
type Lane uint8

// Lanes, served high to low.
const (
	LaneHigh Lane = iota
	LaneNormal
	LaneLow
	numLanes
)

// String returns the lane name.
func (l Lane) String() string {
	switch l {
	case LaneHigh:
		return "high"
	case LaneNormal:
		return "normal"
	case LaneLow:
		return "low"
	default:
		return fmt.Sprintf("lane(%d)", uint8(l))
	}
}

// LaneFromPriority maps a wire priority byte (0 high, 1 normal, 2 low;
// anything higher is clamped) onto a lane.
func LaneFromPriority(p uint8) Lane {
	if p >= uint8(numLanes) {
		return LaneLow
	}
	return Lane(p)
}

// Job is one query submitted for scheduling.
type Job struct {
	// Session identifies the submitting session for fair-share
	// dispatch; jobs of one session keep their relative order.
	Session string
	// Label names the job in traces ("s3/q7").
	Label string
	// Lane is the admission priority lane.
	Lane Lane
	// Footprint is the query's read/write set; admission guarantees no
	// two running jobs have conflicting footprints.
	Footprint query.Footprint
	// QueryID tags the job's obs events; -1 when unknown.
	QueryID int
	// Exec runs the query on an engine runner. The context is
	// cancelled when the scheduler is closed or a drain deadline
	// expires.
	Exec func(ctx context.Context) (any, error)

	seq      int64
	enqueued time.Time
	admitted time.Time
	deferred bool
	outc     chan Outcome
}

// Outcome is the result of one scheduled job.
type Outcome struct {
	// Value is what Exec returned.
	Value any
	// Err is Exec's error, or ErrClosed when the scheduler was closed
	// before the job ran.
	Err error
	// Queued is how long the job waited for admission; Run is Exec's
	// duration.
	Queued time.Duration
	Run    time.Duration
	// AdmitWait and Dispatch split Queued into its lifecycle stages:
	// AdmitWait is enqueue-to-admission (the conflict/priority wait),
	// Dispatch is admission-to-running (runner handoff latency).
	AdmitWait time.Duration
	Dispatch  time.Duration
	// Deferred reports whether admission was delayed at least once by
	// a footprint conflict with a running job.
	Deferred bool
}

// Config parameterizes a Scheduler.
type Config struct {
	// Runners is the initial engine-runner pool size. Default 4.
	Runners int
	// MaxRunners bounds SetRunners and the autoscaler; the ready channel
	// is sized to it so dispatch stays non-blocking at any pool size.
	// Defaults to Runners (a fixed pool).
	MaxRunners int
	// QueueDepth bounds the admission queue across all lanes; a full
	// queue sheds new jobs with ErrOverloaded. Default 64.
	QueueDepth int
	// StarveLimit bounds priority inversion: a non-empty lane passed
	// over this many times in favor of a higher lane gets the next
	// admissible pick, so sustained high-priority load cannot starve
	// the low lane indefinitely (its admit wait is bounded by
	// StarveLimit admissions). Default 8; negative disables the bound.
	StarveLimit int
	// Obs, when non-nil, receives admission decisions as events
	// (admit/defer/shed/complete), the sched.admitted / sched.deferred
	// / sched.shed / sched.completed / sched.failed counters, queue-
	// depth and busy-runner gauges, a sched.runner_busy_us busy
	// timeline for saturation analysis, and the lifecycle histograms:
	// per-lane sched.admit_wait_ns.{high,normal,low}, sched.exec_ns,
	// and sched.queue_depth_hist.
	Obs *obs.Observer
}

func (c Config) withDefaults() Config {
	if c.Runners <= 0 {
		c.Runners = 4
	}
	if c.MaxRunners < c.Runners {
		c.MaxRunners = c.Runners
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.StarveLimit == 0 {
		c.StarveLimit = 8
	}
	return c
}

// sessionQueue is one session's FIFO within a lane.
type sessionQueue struct {
	session string
	jobs    []*Job
}

// lane is one priority lane: per-session FIFOs served round-robin.
type lane struct {
	sessions []*sessionQueue
	rr       int // round-robin cursor into sessions
	// bypass counts consecutive admissions that went to a higher lane
	// while this lane had work; at Config.StarveLimit the lane gets
	// the next admissible pick (anti-starvation).
	bypass int
}

// nonEmpty reports whether the lane holds any queued job.
func (l *lane) nonEmpty() bool {
	for _, sq := range l.sessions {
		if len(sq.jobs) > 0 {
			return true
		}
	}
	return false
}

func (l *lane) push(j *Job) {
	for _, sq := range l.sessions {
		if sq.session == j.Session {
			sq.jobs = append(sq.jobs, j)
			return
		}
	}
	l.sessions = append(l.sessions, &sessionQueue{session: j.Session, jobs: []*Job{j}})
}

// Scheduler admits and dispatches jobs.
type Scheduler struct {
	cfg   Config
	start time.Time

	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	lanes    [numLanes]lane
	queued   int
	running  []*Job
	busy     int
	draining bool
	closed   bool
	nextSeq  int64
	empty    chan struct{} // closed when draining and no work remains

	// Dynamic pool accounting, all under mu. The invariant is
	// alive - pendingStops == target: every issued stop token retires
	// exactly one surplus runner, so the pool converges on target
	// without ever stranding a dispatched job (idle runners always
	// outnumber buffered jobs).
	target       int
	alive        int
	pendingStops int
	nextRunner   int

	readyc chan *Job
	stopc  chan struct{}
	wg     sync.WaitGroup

	// Histogram pointers resolved once at New so the record paths are
	// a nil check plus atomic adds — no registry lookups, no locks.
	admitWaitHist [numLanes]*obs.Histogram
	execHist      *obs.Histogram
	depthHist     *obs.Histogram
}

// New starts a scheduler and its runner pool.
func New(cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		cfg:    cfg,
		start:  time.Now(),
		ctx:    ctx,
		cancel: cancel,
		empty:  make(chan struct{}),
		target: cfg.Runners,
		readyc: make(chan *Job, cfg.MaxRunners),
		stopc:  make(chan struct{}, cfg.MaxRunners),
	}
	if cfg.Obs.MetricsOn() {
		reg := cfg.Obs.Registry()
		for l := LaneHigh; l < numLanes; l++ {
			s.admitWaitHist[l] = reg.Histogram("sched.admit_wait_ns."+l.String(), obs.DurationBuckets())
		}
		s.execHist = reg.Histogram("sched.exec_ns", obs.DurationBuckets())
		s.depthHist = reg.Histogram("sched.queue_depth_hist", obs.DepthBuckets())
	}
	s.mu.Lock()
	s.spawnLocked(cfg.Runners)
	s.gauges()
	s.mu.Unlock()
	return s
}

// spawnLocked starts n fresh runners.
func (s *Scheduler) spawnLocked(n int) {
	for i := 0; i < n; i++ {
		s.wg.Add(1)
		s.alive++
		go s.runner(s.nextRunner)
		s.nextRunner++
	}
}

// LaneWaitHistogram returns the admission-wait histogram of a lane
// (nil without metrics).
func (s *Scheduler) LaneWaitHistogram(l Lane) *obs.Histogram {
	if l >= numLanes {
		l = LaneLow
	}
	return s.admitWaitHist[l]
}

// Runners returns the current target runner-pool size.
func (s *Scheduler) Runners() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.target
}

// MaxRunners returns the pool's upper bound.
func (s *Scheduler) MaxRunners() int { return s.cfg.MaxRunners }

// SetRunners resizes the runner pool to n, clamped to [1, MaxRunners],
// and returns the new target. Growth spawns runners immediately (after
// retracting any not-yet-consumed stop tokens); shrinking issues stop
// tokens that idle runners retire lazily, so running jobs are never
// interrupted and the pool drifts down as work completes. No-op while
// draining or closed.
func (s *Scheduler) SetRunners(n int) int {
	if n < 1 {
		n = 1
	}
	if n > s.cfg.MaxRunners {
		n = s.cfg.MaxRunners
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.closed || n == s.target {
		return s.target
	}
	delta := n - s.target
	s.target = n
	if delta > 0 {
		// Retract pending shrink tokens first: each token we win back
		// keeps one still-alive runner instead of spawning a new one. A
		// token missing from the channel was grabbed by a runner that is
		// about to exit (it is blocked on mu to record that); spawn a
		// replacement for it instead.
	retract:
		for delta > 0 && s.pendingStops > 0 {
			select {
			case <-s.stopc:
				s.pendingStops--
				delta--
			default:
				break retract
			}
		}
		s.spawnLocked(delta)
		s.gauges()
		s.dispatchLocked()
		return s.target
	}
	for i := 0; i < -delta; i++ {
		s.stopc <- struct{}{} // never blocks: buffered to MaxRunners ≥ tokens outstanding
		s.pendingStops++
	}
	s.gauges()
	return s.target
}

// Submit offers a job. It never blocks: the job is queued (its outcome
// arrives on the returned channel), or shed with ErrOverloaded /
// ErrDraining / ErrClosed.
func (s *Scheduler) Submit(j *Job) (<-chan Outcome, error) {
	s.mu.Lock()
	switch {
	case s.closed:
		s.mu.Unlock()
		return nil, ErrClosed
	case s.draining:
		s.mu.Unlock()
		return nil, ErrDraining
	case s.queued >= s.cfg.QueueDepth:
		s.mu.Unlock()
		s.count("sched.shed", 1)
		s.event(obs.EvNote, j, "shed %s: queue full (%d)", j.Label, s.cfg.QueueDepth)
		return nil, ErrOverloaded
	}
	j.seq = s.nextSeq
	s.nextSeq++
	j.enqueued = time.Now()
	j.outc = make(chan Outcome, 1)
	if j.Lane >= numLanes {
		j.Lane = LaneLow
	}
	s.lanes[j.Lane].push(j)
	s.queued++
	s.depthHist.Observe(int64(s.queued))
	s.gauges()
	s.dispatchLocked()
	s.mu.Unlock()
	return j.outc, nil
}

// QueueDepth returns the number of queued (not yet admitted) jobs.
func (s *Scheduler) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// RunningCount returns the number of admitted, running jobs.
func (s *Scheduler) RunningCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.running)
}

// conflictsLocked reports whether j's footprint conflicts with any
// running job's.
func (s *Scheduler) conflictsLocked(j *Job) bool {
	for _, r := range s.running {
		if j.Footprint.Conflicts(r.Footprint) {
			return true
		}
	}
	return false
}

// dispatchLocked admits queued jobs onto free runners. Lanes are
// scanned high to low; within a lane, sessions round-robin and each
// session's own jobs stay FIFO (only the head of a session queue is
// considered, so one session's dependent queries never reorder).
// A job whose footprint conflicts with a running job is passed over
// (deferred) and reconsidered on every completion — the paper's MC
// scanning its wait queue.
func (s *Scheduler) dispatchLocked() {
	for s.busy < s.target {
		j := s.pickLocked()
		if j == nil {
			return
		}
		s.queued--
		s.running = append(s.running, j)
		s.busy++
		j.admitted = time.Now()
		s.admitWaitHist[j.Lane].Observe(int64(j.admitted.Sub(j.enqueued)))
		s.count("sched.admitted", 1)
		s.gauges()
		s.event(obs.EvAdmit, j, "admit %s lane=%s wait=%v", j.Label, j.Lane, time.Since(j.enqueued).Round(time.Microsecond))
		s.readyc <- j // never blocks: buffered to MaxRunners, busy < target ≤ MaxRunners
	}
}

// pickLocked removes and returns the next admissible job, or nil.
// Lanes are scanned high to low, but a lane whose bypass counter has
// reached Config.StarveLimit is promoted to the front of the scan:
// sustained high-priority load therefore cannot starve a lower lane —
// after at most StarveLimit admissions the waiting lane is served, so
// its admission wait is bounded by StarveLimit times the running mix's
// service time rather than by the arrival pattern.
func (s *Scheduler) pickLocked() *Job {
	// Starvation override first: the lowest lane that has exhausted
	// its bypass budget and holds an admissible job wins.
	if s.cfg.StarveLimit >= 0 {
		for li := int(numLanes) - 1; li > 0; li-- {
			l := &s.lanes[li]
			if l.bypass < s.cfg.StarveLimit || !l.nonEmpty() {
				continue
			}
			if j := s.pickFromLaneLocked(l); j != nil {
				s.event(obs.EvNote, j, "promote %s: lane %s bypassed %d times", j.Label, Lane(li), l.bypass)
				l.bypass = 0
				return j
			}
		}
	}
	for li := range s.lanes {
		if j := s.pickFromLaneLocked(&s.lanes[li]); j != nil {
			// Charge one bypass to every lower non-empty lane; the
			// picked lane was served, so its own counter resets.
			s.lanes[li].bypass = 0
			for lj := li + 1; lj < int(numLanes); lj++ {
				if s.lanes[lj].nonEmpty() {
					s.lanes[lj].bypass++
				}
			}
			return j
		}
	}
	return nil
}

// pickFromLaneLocked removes and returns the lane's next admissible
// job (sessions round-robin, each session FIFO), or nil.
func (s *Scheduler) pickFromLaneLocked(l *lane) *Job {
	n := len(l.sessions)
	for off := 0; off < n; off++ {
		sq := l.sessions[(l.rr+off)%n]
		if len(sq.jobs) == 0 {
			continue
		}
		j := sq.jobs[0]
		if s.conflictsLocked(j) {
			if !j.deferred {
				j.deferred = true
				s.count("sched.deferred", 1)
				s.event(obs.EvNote, j, "defer %s: footprint conflict with running query", j.Label)
			}
			continue
		}
		sq.jobs = sq.jobs[1:]
		// Compact empty session queues lazily so lanes do not grow
		// without bound over a long-lived server.
		if len(sq.jobs) == 0 {
			idx := (l.rr + off) % n
			l.sessions = append(l.sessions[:idx], l.sessions[idx+1:]...)
			l.rr = 0
		} else {
			l.rr = (l.rr + off + 1) % n
		}
		return j
	}
	return nil
}

// runner is one engine runner of the pool. It exits when it draws a
// shrink token or when the ready channel is drained and closed; a
// closed channel still yields its buffered jobs first, so shutdown
// never strands a dispatched job.
func (s *Scheduler) runner(id int) {
	defer s.wg.Done()
	for {
		select {
		case <-s.stopc:
			s.mu.Lock()
			s.pendingStops--
			s.alive--
			s.mu.Unlock()
			return
		case j, ok := <-s.readyc:
			if !ok {
				return
			}
			started := time.Now()
			v, err := j.Exec(s.ctx)
			s.finish(j, id, started, v, err)
		}
	}
}

// finish retires a completed job and re-scans the queue.
func (s *Scheduler) finish(j *Job, runner int, started time.Time, v any, err error) {
	dur := time.Since(started)
	s.mu.Lock()
	for i, r := range s.running {
		if r == j {
			s.running = append(s.running[:i], s.running[i+1:]...)
			break
		}
	}
	s.busy--
	if err != nil {
		s.count("sched.failed", 1)
	} else {
		s.count("sched.completed", 1)
	}
	s.event(obs.EvQueryDone, j, "complete %s runner=%d run=%v err=%v", j.Label, runner, dur.Round(time.Microsecond), err)
	if s.Obs().MetricsOn() {
		s.Obs().Registry().AddBusy("sched.runner_busy_us", started.Sub(s.start), dur)
	}
	s.execHist.Observe(int64(dur))
	s.gauges()
	s.dispatchLocked()
	s.checkEmptyLocked()
	s.mu.Unlock()
	j.outc <- Outcome{
		Value:     v,
		Err:       err,
		Queued:    started.Sub(j.enqueued),
		Run:       dur,
		AdmitWait: j.admitted.Sub(j.enqueued),
		Dispatch:  started.Sub(j.admitted),
		Deferred:  j.deferred,
	}
}

// checkEmptyLocked signals a waiting Drain once nothing is queued or
// running.
func (s *Scheduler) checkEmptyLocked() {
	if s.draining && s.queued == 0 && len(s.running) == 0 {
		select {
		case <-s.empty:
		default:
			close(s.empty)
		}
	}
}

// Drain stops accepting new jobs and waits until every queued and
// running job has finished, or until ctx expires — at which point the
// remaining work is cancelled (running Execs see their context
// cancelled; still-queued jobs complete with ErrClosed) and ctx's
// error is returned.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.checkEmptyLocked()
	s.mu.Unlock()

	select {
	case <-s.empty:
		s.shutdown()
		return nil
	case <-ctx.Done():
		s.shutdown()
		return ctx.Err()
	}
}

// Close cancels everything immediately: running jobs see their context
// cancelled, queued jobs complete with ErrClosed.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.shutdown()
}

// shutdown flushes the queue with ErrClosed, cancels the run context,
// and stops the runner pool. Idempotent.
func (s *Scheduler) shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	select {
	case <-s.empty:
	default:
		close(s.empty)
	}
	var orphans []*Job
	for li := range s.lanes {
		for _, sq := range s.lanes[li].sessions {
			orphans = append(orphans, sq.jobs...)
			sq.jobs = nil
		}
		s.lanes[li].sessions = nil
	}
	s.queued = 0
	s.gauges()
	s.mu.Unlock()

	for _, j := range orphans {
		j.outc <- Outcome{Err: ErrClosed, Queued: time.Since(j.enqueued), Deferred: j.deferred}
	}
	s.cancel()
	close(s.readyc)
	s.wg.Wait()
}

// Obs returns the configured observer (possibly nil, which is valid).
func (s *Scheduler) Obs() *obs.Observer { return s.cfg.Obs }

func (s *Scheduler) count(name string, delta int64) {
	if s.cfg.Obs.MetricsOn() {
		s.cfg.Obs.Registry().Inc(name, delta)
	}
}

// gauges refreshes the queue-depth and busy-runner gauges. Callers
// hold s.mu (or are on the Submit shed path, which reads no state).
func (s *Scheduler) gauges() {
	if !s.cfg.Obs.MetricsOn() {
		return
	}
	reg := s.cfg.Obs.Registry()
	reg.SetGauge("sched.queue_depth", float64(s.queued))
	reg.SetGauge("sched.runners_busy", float64(s.busy))
	reg.SetGauge("sched.runners", float64(s.target))
	reg.SetGauge("sched.runner_utilization", float64(s.busy)/float64(s.target))
}

func (s *Scheduler) event(kind obs.EventKind, j *Job, format string, args ...any) {
	if !s.cfg.Obs.Enabled() {
		return
	}
	s.cfg.Obs.Emit(obs.Event{
		TS:    time.Since(s.start),
		Kind:  kind,
		Comp:  "sched",
		Query: j.QueryID,
		Instr: -1,
		Page:  -1,
		Msg:   fmt.Sprintf(format, args...),
	})
}

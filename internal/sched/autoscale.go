package sched

import (
	"fmt"
	"sync"
	"time"

	"dfdbm/internal/obs"
)

// AutoscaleConfig parameterizes the runner-pool control loop.
type AutoscaleConfig struct {
	// Min and Max bound the pool. Defaults: Min = the scheduler's
	// initial Runners, Max = the scheduler's MaxRunners.
	Min, Max int
	// Interval is the control-loop tick. Default 250ms.
	Interval time.Duration
	// HighDepth is the queued-jobs-per-runner ratio above which the pool
	// is considered underprovisioned. Default 1.0 (one full backlog).
	HighDepth float64
	// HighWait is the admission-wait p95 (over the last interval, all
	// lanes combined) above which the pool is underprovisioned.
	// Default 10ms.
	HighWait time.Duration
	// LowUtil is the busy-runner fraction below which (with an empty
	// queue) the pool is overprovisioned. Default 0.4.
	LowUtil float64
	// Hold is how many consecutive ticks a signal must persist before
	// the loop acts — hysteresis against one-tick spikes. Default 2.
	Hold int
	// Cooldown is the minimum time between scale actions, so a scale-up
	// gets to drain the backlog before being judged. Default 1s.
	Cooldown time.Duration
}

func (c AutoscaleConfig) withDefaults(s *Scheduler) AutoscaleConfig {
	if c.Min <= 0 {
		c.Min = s.Runners()
	}
	if c.Max <= 0 {
		c.Max = s.cfg.MaxRunners
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.HighDepth <= 0 {
		c.HighDepth = 1.0
	}
	if c.HighWait <= 0 {
		c.HighWait = 10 * time.Millisecond
	}
	if c.LowUtil <= 0 {
		c.LowUtil = 0.4
	}
	if c.Hold <= 0 {
		c.Hold = 2
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	return c
}

// Autoscaler resizes a Scheduler's runner pool between Min and Max by
// watching the signals the scheduler already exports: queue depth,
// runner utilization, and the per-lane admission-wait histograms (read
// as per-interval snapshot deltas, so decisions reflect the last tick,
// not all history). Scale-up is multiplicative (double, clamped) —
// bursts need capacity now; scale-down is additive (one runner) —
// giving capacity back is cheap to undo. Both directions require the
// signal to hold for Hold consecutive ticks and respect a Cooldown
// after any action, so the loop does not thrash on noise.
type Autoscaler struct {
	s        *Scheduler
	cfg      AutoscaleConfig
	obs      *obs.Observer
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	prev       [numLanes]obs.HistogramSnapshot
	upHold     int
	downHold   int
	lastAction time.Time
}

// StartAutoscaler attaches a control loop to the scheduler and starts
// it. Stop it before closing the scheduler.
func StartAutoscaler(s *Scheduler, cfg AutoscaleConfig) *Autoscaler {
	a := &Autoscaler{
		s:    s,
		cfg:  cfg.withDefaults(s),
		obs:  s.Obs(),
		stop: make(chan struct{}),
	}
	for l := LaneHigh; l < numLanes; l++ {
		a.prev[l] = s.admitWaitHist[l].Snapshot()
	}
	if a.cfg.Min > s.Runners() {
		s.SetRunners(a.cfg.Min)
	}
	a.wg.Add(1)
	go a.loop()
	return a
}

// Stop halts the control loop. The pool keeps its current size.
// Idempotent and nil-safe.
func (a *Autoscaler) Stop() {
	if a == nil {
		return
	}
	a.stopOnce.Do(func() { close(a.stop) })
	a.wg.Wait()
}

func (a *Autoscaler) loop() {
	defer a.wg.Done()
	t := time.NewTicker(a.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-t.C:
			a.tick()
		}
	}
}

// intervalWaitP95 returns the p95 admission wait across all lanes over
// the window since the previous tick, by differencing histogram
// snapshots and summing the per-lane deltas bucket-wise (all lanes
// share the DurationBuckets layout).
func (a *Autoscaler) intervalWaitP95() time.Duration {
	var combined obs.HistogramSnapshot
	for l := LaneHigh; l < numLanes; l++ {
		cur := a.s.admitWaitHist[l].Snapshot()
		d := cur.Sub(a.prev[l])
		a.prev[l] = cur
		if d.Count == 0 {
			continue
		}
		if combined.Counts == nil {
			combined = d
			continue
		}
		for i := range combined.Counts {
			combined.Counts[i] += d.Counts[i]
		}
		combined.Count += d.Count
		combined.Sum += d.Sum
		if d.Max > combined.Max {
			combined.Max = d.Max
		}
	}
	return time.Duration(combined.Quantile(0.95))
}

func (a *Autoscaler) tick() {
	s := a.s
	s.mu.Lock()
	depth, busy, target := s.queued, s.busy, s.target
	draining := s.draining || s.closed
	s.mu.Unlock()
	if draining {
		return
	}
	waitP95 := a.intervalWaitP95()
	util := float64(busy) / float64(target)

	overloaded := float64(depth) >= a.cfg.HighDepth*float64(target) || waitP95 >= a.cfg.HighWait
	idle := depth == 0 && util <= a.cfg.LowUtil
	switch {
	case overloaded:
		a.upHold++
		a.downHold = 0
	case idle:
		a.downHold++
		a.upHold = 0
	default:
		a.upHold, a.downHold = 0, 0
	}

	cooled := a.lastAction.IsZero() || time.Since(a.lastAction) >= a.cfg.Cooldown
	if a.upHold >= a.cfg.Hold && cooled && target < a.cfg.Max {
		next := min(a.cfg.Max, target*2)
		got := s.SetRunners(next)
		a.record("sched.scale_ups", target, got, depth, waitP95)
		a.lastAction = time.Now()
		a.upHold = 0
		return
	}
	if a.downHold >= a.cfg.Hold && cooled && target > a.cfg.Min {
		got := s.SetRunners(max(a.cfg.Min, target-1))
		a.record("sched.scale_downs", target, got, depth, waitP95)
		a.lastAction = time.Now()
		a.downHold = 0
	}
}

func (a *Autoscaler) record(counter string, from, to, depth int, waitP95 time.Duration) {
	if a.obs.MetricsOn() {
		a.obs.Registry().Inc(counter, 1)
	}
	if a.obs.Enabled() {
		dir := "up"
		if counter == "sched.scale_downs" {
			dir = "down"
		}
		a.obs.Emit(obs.Event{
			TS:    time.Since(a.s.start),
			Kind:  obs.EvNote,
			Comp:  "sched",
			Query: -1, Instr: -1, Page: -1,
			Msg: fmt.Sprintf("autoscale %s: runners %d→%d (depth=%d wait_p95=%v)",
				dir, from, to, depth, waitP95.Round(time.Microsecond)),
		})
	}
}

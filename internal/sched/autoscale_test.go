package sched

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"dfdbm/internal/obs"
	"dfdbm/internal/query"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSetRunnersGrowsConcurrency: a pool of 1 serializes conflict-free
// jobs; growing it to 4 lets queued jobs run concurrently at the new
// width, without dropping or reordering anything.
func TestSetRunnersGrowsConcurrency(t *testing.T) {
	s := New(Config{Runners: 1, MaxRunners: 8, QueueDepth: 32})
	defer s.Close()
	release := make(chan struct{})
	var mu sync.Mutex
	var ran int32
	var outs []<-chan Outcome
	for i := 0; i < 4; i++ {
		out, err := s.Submit(waitJob(fmt.Sprintf("s%d", i), fp([]string{"r1"}, nil), release, &ran, &mu))
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, out)
	}
	waitFor(t, "the single runner to start one job", func() bool { return s.RunningCount() == 1 })
	if got := s.QueueDepth(); got != 3 {
		t.Fatalf("queue depth %d before grow, want 3", got)
	}

	if got := s.SetRunners(4); got != 4 {
		t.Fatalf("SetRunners(4) = %d", got)
	}
	waitFor(t, "all four jobs running after grow", func() bool { return s.RunningCount() == 4 })
	close(release)
	for _, out := range outs {
		if o := <-out; o.Err != nil {
			t.Fatalf("job failed across resize: %v", o.Err)
		}
	}
}

// TestSetRunnersShrinkIsLazyAndClamped: shrinking never interrupts a
// running job — dispatch width drops at once, and surplus runners
// retire as they go idle. Bounds clamp to [1, MaxRunners].
func TestSetRunnersShrinkIsLazyAndClamped(t *testing.T) {
	s := New(Config{Runners: 4, MaxRunners: 6, QueueDepth: 32})
	defer s.Close()
	release := make(chan struct{})
	var mu sync.Mutex
	var ran int32
	var outs []<-chan Outcome
	for i := 0; i < 4; i++ {
		out, err := s.Submit(waitJob(fmt.Sprintf("s%d", i), fp([]string{"r1"}, nil), release, &ran, &mu))
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, out)
	}
	waitFor(t, "all four jobs running", func() bool { return s.RunningCount() == 4 })

	if got := s.SetRunners(2); got != 2 {
		t.Fatalf("SetRunners(2) = %d", got)
	}
	// The four in-flight jobs keep running to completion.
	if s.RunningCount() != 4 {
		t.Fatal("shrink interrupted running jobs")
	}
	// New work dispatches at the reduced width.
	out5, err := s.Submit(waitJob("s5", fp([]string{"r1"}, nil), release, &ran, &mu))
	if err != nil {
		t.Fatal(err)
	}
	outs = append(outs, out5)
	close(release)
	for _, out := range outs {
		if o := <-out; o.Err != nil {
			t.Fatalf("job failed across shrink: %v", o.Err)
		}
	}
	waitFor(t, "surplus runners to retire", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.alive == 2 && s.pendingStops == 0
	})

	if got := s.SetRunners(0); got != 1 {
		t.Errorf("SetRunners(0) = %d, want clamp to 1", got)
	}
	if got := s.SetRunners(100); got != 6 {
		t.Errorf("SetRunners(100) = %d, want clamp to MaxRunners 6", got)
	}
	// Grow after shrink retracts tokens / spawns as needed and still
	// executes work at the new width.
	waitFor(t, "pool to settle at 6", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.alive == 6 && s.pendingStops == 0
	})
}

// TestSetRunnersChurn hammers resize against live traffic: every job
// must complete exactly once regardless of concurrent grow/shrink.
func TestSetRunnersChurn(t *testing.T) {
	s := New(Config{Runners: 2, MaxRunners: 16, QueueDepth: 256})
	defer s.Close()
	const jobs = 200
	var outs []<-chan Outcome
	stop := make(chan struct{})
	go func() {
		sizes := []int{1, 8, 3, 16, 2, 5}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				s.SetRunners(sizes[i%len(sizes)])
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()
	for i := 0; i < jobs; i++ {
		out, err := s.Submit(&Job{
			Session: fmt.Sprintf("s%d", i%7), Label: "churn", QueryID: -1,
			Footprint: query.Footprint{Reads: []string{"r1"}},
			Exec: func(context.Context) (any, error) {
				time.Sleep(50 * time.Microsecond)
				return 1, nil
			},
		})
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		outs = append(outs, out)
	}
	done := 0
	for _, out := range outs {
		if o := <-out; o.Err == nil {
			done++
		}
	}
	close(stop)
	if done != jobs {
		t.Fatalf("%d/%d jobs completed across resize churn", done, jobs)
	}
}

// TestAutoscalerScalesUpUnderBacklogAndBackDownWhenIdle drives the
// whole control loop: a sustained backlog on an undersized pool must
// trigger scale-up (bounded by Max), and a quiet pool must drift back
// down to Min. Counters record both decisions.
func TestAutoscalerScalesUpUnderBacklogAndBackDownWhenIdle(t *testing.T) {
	reg := obs.NewRegistry(0)
	ob := obs.New(nil, reg)
	s := New(Config{Runners: 1, MaxRunners: 8, QueueDepth: 256, Obs: ob})
	defer s.Close()
	a := StartAutoscaler(s, AutoscaleConfig{
		Min:      1,
		Max:      8,
		Interval: 5 * time.Millisecond,
		Hold:     2,
		Cooldown: 20 * time.Millisecond,
	})
	defer a.Stop()

	// Saturate: many slow conflict-free jobs against one runner.
	release := make(chan struct{})
	var mu sync.Mutex
	var ran int32
	var outs []<-chan Outcome
	for i := 0; i < 32; i++ {
		out, err := s.Submit(waitJob(fmt.Sprintf("s%d", i%4), fp([]string{"r1"}, nil), release, &ran, &mu))
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, out)
	}
	waitFor(t, "autoscaler to grow the pool", func() bool { return s.Runners() >= 4 })
	close(release)
	for _, out := range outs {
		<-out
	}
	if reg.Counter("sched.scale_ups") == 0 {
		t.Error("no sched.scale_ups recorded")
	}

	waitFor(t, "autoscaler to shrink the idle pool to Min", func() bool { return s.Runners() == 1 })
	if reg.Counter("sched.scale_downs") == 0 {
		t.Error("no sched.scale_downs recorded")
	}
	if g, ok := reg.Gauge("sched.runners"); !ok || g != 1 {
		t.Errorf("sched.runners gauge = %v/%v, want 1", g, ok)
	}
}

package machine

import (
	"dfdbm/internal/relalg"
	"dfdbm/internal/relation"
)

// The kernel wrappers run the real operator implementations against an
// instruction's bound predicates; processors produce actual result
// tuples, so a simulation's answers can be checked against the serial
// reference executor.

func restrictPage(pg *relation.Page, mi *minstr, emit relalg.EmitFunc) (int, error) {
	return relalg.RestrictPage(pg, mi.boundPred, emit)
}

func projectPage(pg *relation.Page, mi *minstr, emit relalg.EmitFunc) (int, error) {
	// No per-processor duplicate elimination: the instruction's IC
	// deduplicates globally (the serial algorithm the paper's Section 5
	// identifies as the open problem).
	return relalg.ProjectPage(pg, mi.projector, nil, emit)
}

// Joins run through the per-IP relalg.JoinState (see ip.execPair): the
// kernel — hash for equi-joins, nested loops otherwise — is selected
// from the bound condition, and both kernels emit identical results.

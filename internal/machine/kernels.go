package machine

import (
	"dfdbm/internal/relalg"
	"dfdbm/internal/relation"
)

// The kernel wrappers run the real operator implementations against an
// instruction's bound predicates; processors produce actual result
// tuples, so a simulation's answers can be checked against the serial
// reference executor.

func restrictPage(pg *relation.Page, mi *minstr, emit relalg.EmitFunc) (int, error) {
	// Batched kernel: bitmap pass over the page, then an emit walk of
	// the set bits. Byte-identical output to relalg.RestrictPage.
	return mi.restrict.RestrictPage(pg, emit)
}

func projectPage(pg *relation.Page, mi *minstr, emit relalg.EmitFunc) (int, error) {
	// No per-processor duplicate elimination: the instruction's IC
	// deduplicates globally (the serial algorithm the paper's Section 5
	// identifies as the open problem).
	return mi.project.ProjectPage(pg, nil, emit)
}

// Joins run through the per-IP relalg.JoinState (see ip.execPair): the
// kernel — hash for equi-joins, nested loops otherwise — is selected
// from the bound condition, and both kernels emit identical results.

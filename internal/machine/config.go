package machine

import (
	"fmt"
	"io"
	"time"

	"dfdbm/internal/fault"
	"dfdbm/internal/hw"
	"dfdbm/internal/obs"
	"dfdbm/internal/relation"
)

// Config parameterizes a machine instance (Figure 4.1).
type Config struct {
	// ICs is the number of instruction controllers; a query needs one
	// IC per operator node, so the largest admissible query has ICs
	// instructions.
	ICs int
	// IPs is the size of the instruction-processor pool.
	IPs int
	// IPsPerInstruction is the allocation an IC requests from the MC
	// when its instruction becomes enabled; grants may be smaller when
	// the pool is contended, and are topped up as processors free, as
	// in Section 4.2.
	IPsPerInstruction int
	// ICLocalPages is the capacity of an IC's local page memory;
	// ICCachePages is its segment of the multiport disk cache. Pages
	// overflow local memory into the cache and the cache onto disk —
	// the three-level hierarchy of Section 4.1.
	ICLocalPages int
	ICCachePages int
	// IPBufferPages bounds the inner-relation pages an IP can buffer
	// during a broadcast join. A full buffer makes the IP ignore a
	// broadcast, exercising the missed-page recovery of Section 4.2.
	IPBufferPages int
	// DirectRouting enables the Section 5 extension: result pages of an
	// instruction feeding a unary consumer travel IP→IP instead of
	// IP→IC→IP.
	DirectRouting bool
	// HashJoinTiming charges equi-join work at the hash kernel's
	// O(n+m) cost (hw.Processor.HashJoinTime, with builds skipped for
	// inner pages whose table is already resident on the processor)
	// instead of the paper's nested-loops n·m. Off by default so the
	// simulated timings — and golden traces — match the paper's model;
	// results are identical either way.
	HashJoinTiming bool
	// NoPagePool disables recycling of intermediate pages through the
	// machine's relation.PagePool (pooling affects only host-side
	// allocation behaviour, never simulated results or timings).
	NoPagePool bool
	// Adaptive enables the per-edge pipeline-vs-materialize planner
	// (query.PlanTree) at submission: operands stay pipelined by
	// default, but a join's inner operand whose estimated size fits the
	// page pool's budget is received completely before the join's IC
	// dispatches any outer page. Off by default — the pure page-level
	// firing rule is the paper's design point and the golden traces'
	// baseline.
	Adaptive bool
	// HW supplies device timings; zero value means hw.Default1979.
	HW hw.Config
	// Fault, when non-nil, injects the plan's faults (IP crashes,
	// dropped and duplicated packets) and switches the machine into its
	// resilient protocol: IPs report work completion in atomic
	// completion packets, ICs watch outstanding instruction packets
	// with a virtual-time watchdog and re-dispatch lost work, and
	// MC <-> IC control traffic retransmits on loss. Build one fresh
	// Plan per machine. Mutually exclusive with DirectRouting.
	Fault *fault.Plan
	// WatchdogTimeout is how long (virtual time) an IC waits without
	// progress from a busy processor before suspecting it and reporting
	// the failure to the MC. Zero means 3s. Only used when Fault is
	// set.
	WatchdogTimeout time.Duration
	// RetryBudget bounds how often one work unit (an operand page or a
	// join outer page) may be re-dispatched after faults before Run
	// gives up with a FaultError. Zero means 8. Only used when Fault is
	// set.
	RetryBudget int
	// Trace, when non-nil, receives one line per protocol event
	// (admissions, grants, packets, broadcasts, completions), prefixed
	// with the virtual time. It is the legacy text-only path: when Obs
	// is nil, a text-sink observer is built over it.
	Trace io.Writer
	// Obs, when non-nil, receives every protocol event as a structured
	// obs.Event (virtual-time stamps) through its sink, and — when it
	// carries a registry — virtual-time metric timelines plus the run's
	// Stats re-expressed as counters and gauges. Obs takes precedence
	// over Trace.
	Obs *obs.Observer
}

func (c Config) withDefaults() (Config, error) {
	if c.ICs <= 0 {
		c.ICs = 12
	}
	if c.IPs <= 0 {
		c.IPs = 24
	}
	if c.IPsPerInstruction <= 0 {
		c.IPsPerInstruction = 4
	}
	if c.ICLocalPages <= 0 {
		c.ICLocalPages = 16
	}
	if c.ICCachePages <= 0 {
		c.ICCachePages = 64
	}
	if c.IPBufferPages <= 0 {
		c.IPBufferPages = 4
	}
	if c.HW.PageSize == 0 {
		c.HW = hw.Default1979()
	}
	if c.WatchdogTimeout <= 0 {
		c.WatchdogTimeout = 3 * time.Second
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 8
	}
	if c.ICs < 1 || c.IPs < 1 {
		return c, fmt.Errorf("machine: need at least one IC and one IP")
	}
	if c.Fault != nil && c.DirectRouting {
		return c, fmt.Errorf("machine: fault injection and direct routing are mutually exclusive")
	}
	return c, nil
}

// Stats meters one machine run.
type Stats struct {
	// Ring traffic.
	OuterRingPackets, OuterRingBytes int64
	InnerRingPackets, InnerRingBytes int64
	// Packet counts by kind on the outer ring.
	InstructionPackets, ResultPackets, ControlPackets int64
	// Broadcast-join protocol events.
	Broadcasts        int64
	BroadcastsIgnored int64 // dropped for a full IP buffer
	RecoveryRequests  int64 // re-requests of missed inner pages
	// Storage hierarchy.
	DiskReads, DiskWrites   int64
	CacheReads, CacheWrites int64
	// Direct IP→IP routing (Section 5 extension).
	DirectRoutedPages int64
	// Host-side page pool (intermediate pages recycled between hops).
	PoolHits, PoolMisses, PagesRecycled int64
	// Join kernels: outer tuples probed, inner-page hash tables built,
	// page pairs served by a resident table, and nested-loops tuple
	// pairs compared.
	HashProbes, HashBuilds, HashTableHits int64
	NestedPairs                           int64
	// MaterializedEdges counts operand edges the adaptive planner chose
	// to materialize across all admitted queries (Config.Adaptive).
	MaterializedEdges int64
	// Concurrency control.
	QueriesDelayedByConflict int64
	// Fault injection and recovery (populated only when Config.Fault is
	// set, except IPsFailed which ScheduleIPFailure also counts).
	FaultsInjected    int64 // crashes + drops + dups + cache faults injected
	PacketsDropped    int64 // packets lost to the plan
	PacketsDuplicated int64 // duplicate transits injected (discarded on arrival)
	IPsCrashed        int64 // processors crashed by the plan
	IPsFailed         int64 // processors the MC marked failed
	WatchdogTimeouts  int64 // IC watchdog expiries (suspected processors)
	Redispatches      int64 // work units re-dispatched after a fault
	RecoveredPages    int64 // re-dispatched work units that later completed
	Retransmits       int64 // retransmissions on the reliable channels
}

// QueryResult is the outcome of one submitted query.
type QueryResult struct {
	QueryID   int
	Relation  *relation.Relation
	Submitted time.Duration
	Started   time.Duration
	Finished  time.Duration
}

// Results is the outcome of a machine run.
type Results struct {
	PerQuery []QueryResult
	Stats    Stats
	// Elapsed is the completion time of the last query.
	Elapsed time.Duration
	// OuterRingUtilization is the outer ring's busy fraction.
	OuterRingUtilization float64
	// IPUtilization is the mean compute-busy fraction of the IP pool.
	IPUtilization float64
}

// OuterRingMbps returns the average outer-ring load of the run.
func (r Results) OuterRingMbps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Stats.OuterRingBytes) * 8 / 1e6 / r.Elapsed.Seconds()
}

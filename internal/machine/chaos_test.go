package machine

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"dfdbm/internal/catalog"
	"dfdbm/internal/fault"
	"dfdbm/internal/obs"
	"dfdbm/internal/query"
)

// chaosSeeds returns the fault-plan seeds the chaos tests sweep.
// DFDBM_CHAOS_SEED pins a single seed (the CI chaos matrix sets it).
func chaosSeeds(t *testing.T) []int64 {
	t.Helper()
	if s := os.Getenv("DFDBM_CHAOS_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("DFDBM_CHAOS_SEED=%q: %v", s, err)
		}
		return []int64{n}
	}
	return []int64{1, 2, 3}
}

// runChaos executes one query under a fault plan and returns the
// result, failing the test on any run error.
func runChaos(t *testing.T, cat *catalog.Catalog, q *query.Tree, cfg Config) *Results {
	t.Helper()
	m, err := New(cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(q); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("guarded run: %v", err)
	}
	return res
}

// TestGuardedFaultFreeMatchesSerial: an empty fault plan switches the
// machine into the guarded protocol (completion packets, watchdogs,
// reliable channels) without injecting anything — results must still
// match the serial reference exactly.
func TestGuardedFaultFreeMatchesSerial(t *testing.T) {
	cat, qs := testDB(t, 0.05)
	for _, i := range []int{1, 2, 5} {
		want, err := query.ExecuteSerial(cat, qs[i], 0)
		if err != nil {
			t.Fatal(err)
		}
		res := runChaos(t, cat, qs[i], Config{
			HW: smallHW(), IPs: 8, IPsPerInstruction: 4,
			Fault: fault.New(fault.Config{Seed: 1}),
		})
		if got := res.PerQuery[0].Relation; !got.EqualMultiset(want) {
			t.Errorf("query %d: guarded %d tuples, serial %d",
				i, got.Cardinality(), want.Cardinality())
		}
		if res.Stats.FaultsInjected != 0 {
			t.Errorf("query %d: empty plan injected %d faults", i, res.Stats.FaultsInjected)
		}
	}
}

// TestChaosCrashMidJoinRecovers is the tentpole acceptance property:
// processors crash mid-join — abandoning buffered pages and IRC state —
// and the watchdog/re-dispatch path still produces results identical to
// the serial reference, across several plan seeds.
func TestChaosCrashMidJoinRecovers(t *testing.T) {
	cat, qs := testDB(t, 0.1)
	q := qs[2] // one join, two restricts: broadcasts in flight early
	want, err := query.ExecuteSerial(cat, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range chaosSeeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			res := runChaos(t, cat, q, Config{
				HW: smallHW(), IPs: 8, IPsPerInstruction: 8,
				Fault: fault.New(fault.Config{
					Seed:    seed,
					Crashes: fault.CrashN(2, 2*time.Millisecond, 3*time.Millisecond),
				}),
			})
			got := res.PerQuery[0].Relation
			if !got.EqualMultiset(want) {
				t.Errorf("machine %d tuples, serial %d", got.Cardinality(), want.Cardinality())
			}
			s := res.Stats
			if s.IPsCrashed != 2 {
				t.Errorf("IPsCrashed = %d, want 2", s.IPsCrashed)
			}
			if s.WatchdogTimeouts == 0 || s.IPsFailed == 0 {
				t.Errorf("crash went undetected: timeouts=%d failed=%d",
					s.WatchdogTimeouts, s.IPsFailed)
			}
			if s.Redispatches == 0 {
				t.Error("no work was re-dispatched after the crashes")
			}
			if s.RecoveredPages == 0 {
				t.Error("no re-dispatched work unit was recovered")
			}
		})
	}
}

// TestChaosPacketLossEquivalence: 1% drop plus 0.5% duplication on
// every packet class must not change any query answer (the acceptance
// bar for the lossy-ring recovery paths).
func TestChaosPacketLossEquivalence(t *testing.T) {
	cat, qs := testDB(t, 0.1)
	q := qs[2]
	want, err := query.ExecuteSerial(cat, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	var dropped int64
	for _, seed := range chaosSeeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			res := runChaos(t, cat, q, Config{
				HW: smallHW(), IPs: 8, IPsPerInstruction: 8,
				Fault: fault.New(fault.Config{
					Seed: seed,
					Drop: fault.UniformDrop(0.01),
					Dup:  fault.UniformDrop(0.005),
				}),
			})
			got := res.PerQuery[0].Relation
			if !got.EqualMultiset(want) {
				t.Errorf("machine %d tuples, serial %d", got.Cardinality(), want.Cardinality())
			}
			dropped += res.Stats.PacketsDropped
		})
	}
	if dropped == 0 {
		t.Error("no packet was ever dropped across the seed sweep; plan inert?")
	}
}

// TestChaosBroadcastLossRecovery (satellite): inner-relation broadcast
// pages lost on the wire must be re-requested through the Section 4.2
// missed-page path — Stats.RecoveryRequests and the exported
// machine.recovery_requests counter both observe it — and the join
// output must be unchanged.
func TestChaosBroadcastLossRecovery(t *testing.T) {
	cat, qs := testDB(t, 0.1)
	q := qs[2]
	want, err := query.ExecuteSerial(cat, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry(0)
	res := runChaos(t, cat, q, Config{
		HW: smallHW(), IPs: 8, IPsPerInstruction: 8,
		Obs: obs.New(nil, reg),
		Fault: fault.New(fault.Config{
			Seed: 7,
			Drop: map[fault.Class]float64{fault.ClassBroadcast: 0.3},
		}),
	})
	got := res.PerQuery[0].Relation
	if !got.EqualMultiset(want) {
		t.Errorf("machine %d tuples, serial %d", got.Cardinality(), want.Cardinality())
	}
	if res.Stats.PacketsDropped == 0 {
		t.Fatal("no broadcast page was dropped; raise the drop rate")
	}
	if res.Stats.RecoveryRequests == 0 {
		t.Error("broadcast loss never drove a Section 4.2 recovery request")
	}
	if n := reg.Counter("machine.recovery_requests"); n != res.Stats.RecoveryRequests {
		t.Errorf("machine.recovery_requests counter = %d, Stats say %d",
			n, res.Stats.RecoveryRequests)
	}
}

// TestChaosRetryExhaustionFails: with every completion packet lost, no
// work unit can ever be acknowledged; the machine must give up with a
// typed FaultError within its watchdog/retry bounds instead of hanging.
func TestChaosRetryExhaustionFails(t *testing.T) {
	cat, qs := testDB(t, 0.05)
	m, err := New(cat, Config{
		HW: smallHW(), IPs: 4, IPsPerInstruction: 4,
		WatchdogTimeout: 50 * time.Millisecond, RetryBudget: 2,
		Fault: fault.New(fault.Config{
			Seed: 1,
			Drop: map[fault.Class]float64{fault.ClassCompletion: 1.0},
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(qs[2]); err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		res *Results
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := m.Run()
		done <- outcome{res, err}
	}()
	select {
	case out := <-done:
		if out.err == nil {
			t.Fatal("run succeeded with 100% completion loss")
		}
		var fe *FaultError
		if !errors.As(out.err, &fe) {
			t.Fatalf("error is %T (%v), want *FaultError", out.err, out.err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("machine hung instead of returning a FaultError")
	}
}

// TestChaosDeterminism: two fresh plans with the same seed must drive
// byte-identical executions — every counter equal.
func TestChaosDeterminism(t *testing.T) {
	cat, qs := testDB(t, 0.05)
	run := func() Stats {
		res := runChaos(t, cat, qs[2], Config{
			HW: smallHW(), IPs: 8, IPsPerInstruction: 8,
			Fault: fault.New(fault.Config{
				Seed:    42,
				Crashes: fault.CrashN(1, 2*time.Millisecond, time.Millisecond),
				Drop:    fault.UniformDrop(0.01),
				Dup:     fault.UniformDrop(0.005),
			}),
		})
		return res.Stats
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same fault seed, different stats:\n%+v\n%+v", a, b)
	}
}

// TestFaultExcludesDirectRouting: the guarded protocol and the
// Section 5 direct-routing extension are mutually exclusive.
func TestFaultExcludesDirectRouting(t *testing.T) {
	cat, _ := testDB(t, 0.02)
	_, err := New(cat, Config{
		HW: smallHW(), DirectRouting: true,
		Fault: fault.New(fault.Config{Seed: 1}),
	})
	if err == nil {
		t.Fatal("New accepted Fault together with DirectRouting")
	}
}

// TestScheduleIPFailureIdempotent (satellite regression): scheduling
// the same processor's failure twice — or at a time already in the
// past — must disable it exactly once. The old implementation removed
// the processor from the free pool on every call, silently corrupting
// the pool.
func TestScheduleIPFailureIdempotent(t *testing.T) {
	cat, qs := testDB(t, 0.05)
	want, err := query.ExecuteSerial(cat, qs[2], 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(cat, Config{HW: smallHW(), IPs: 4, IPsPerInstruction: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []time.Duration{time.Millisecond, time.Millisecond, 0} {
		if err := m.ScheduleIPFailure(0, at); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Submit(qs[2]); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.IPsFailed != 1 {
		t.Errorf("IPsFailed = %d, want 1 (duplicate schedules double-counted)",
			res.Stats.IPsFailed)
	}
	if got := res.PerQuery[0].Relation; !got.EqualMultiset(want) {
		t.Errorf("machine %d tuples, serial %d", got.Cardinality(), want.Cardinality())
	}
}

// TestAllIPsFailedReturnsFaultError: losing the whole pool with work
// outstanding must surface as a typed error, not a silent stall.
func TestAllIPsFailedReturnsFaultError(t *testing.T) {
	cat, qs := testDB(t, 0.05)
	m, err := New(cat, Config{HW: smallHW(), IPs: 4, IPsPerInstruction: 4})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 4; id++ {
		if err := m.ScheduleIPFailure(id, time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Submit(qs[2]); err != nil {
		t.Fatal(err)
	}
	_, err = m.Run()
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("error is %T (%v), want *FaultError", err, err)
	}
}

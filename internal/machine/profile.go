package machine

import "dfdbm/internal/obs"

// Resources names the machine's shared devices for the saturation
// report, mapping each to the busy timeline it accumulates during a
// run. Servers scales a pooled resource's capacity: the IP pool is
// saturated only when all processors are busy for a whole bucket, the
// disk when every arm is seeking.
func (m *Machine) Resources() []obs.ResourceSpec {
	return []obs.ResourceSpec{
		{Name: "outer ring", Timeline: "machine.outer_ring_busy_us", Servers: 1},
		{Name: "inner ring", Timeline: "machine.inner_ring_busy_us", Servers: 1},
		{Name: "IP pool", Timeline: "machine.ip_busy_us", Servers: m.cfg.IPs},
		{Name: "disk", Timeline: "machine.disk_busy_us", Servers: m.cfg.HW.NumDisks},
		{Name: "cache ports", Timeline: "machine.cache_busy_us", Servers: m.cfg.ICs},
		{Name: "MC", Timeline: "machine.mc_busy_us", Servers: 1},
	}
}

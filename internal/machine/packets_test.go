package machine

import (
	"testing"

	"dfdbm/internal/relation"
)

func samplePage(t *testing.T, tuples int) *relation.Page {
	t.Helper()
	pg := relation.MustNewPage(1000, 100)
	for i := 0; i < tuples; i++ {
		raw := make([]byte, 100)
		raw[0] = byte(i + 1)
		if err := pg.AppendRaw(raw); err != nil {
			t.Fatal(err)
		}
	}
	return pg
}

func TestInstructionPacketRoundTrip(t *testing.T) {
	pkt := &InstructionPacket{
		IPID:           3,
		QueryID:        7,
		ICIDSender:     1,
		ICIDDest:       2,
		FlushWhenDone:  true,
		Opcode:         4,
		ResultRelation: "t9",
		ResultTupleLen: 200,
		Broadcast:      true,
		InnerPageNo:    5,
		LastInner:      true,
		OuterPageNo:    8,
		Pages:          []*relation.Page{samplePage(t, 3), samplePage(t, 9)},
	}
	blob := pkt.Marshal()
	if len(blob) != pkt.WireSize() {
		t.Fatalf("Marshal produced %d bytes, WireSize says %d", len(blob), pkt.WireSize())
	}
	got, err := UnmarshalInstruction(blob)
	if err != nil {
		t.Fatalf("UnmarshalInstruction: %v", err)
	}
	if got.IPID != 3 || got.QueryID != 7 || got.ICIDSender != 1 || got.ICIDDest != 2 ||
		!got.FlushWhenDone || got.Opcode != 4 || got.ResultRelation != "t9" ||
		got.ResultTupleLen != 200 || !got.Broadcast || got.InnerPageNo != 5 ||
		!got.LastInner || got.OuterPageNo != 8 {
		t.Errorf("fields lost: %+v", got)
	}
	if len(got.Pages) != 2 || got.Pages[0].TupleCount() != 3 || got.Pages[1].TupleCount() != 9 {
		t.Errorf("pages lost: %d pages", len(got.Pages))
	}
}

func TestInstructionPacketNoPages(t *testing.T) {
	pkt := &InstructionPacket{IPID: 1, FlushWhenDone: true, ResultRelation: "x"}
	got, err := UnmarshalInstruction(pkt.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Pages) != 0 || !got.FlushWhenDone {
		t.Errorf("flush packet mangled: %+v", got)
	}
}

func TestInstructionPacketNegativeFields(t *testing.T) {
	pkt := &InstructionPacket{ICIDDest: -1, InnerPageNo: -1, OuterPageNo: -1}
	got, err := UnmarshalInstruction(pkt.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.ICIDDest != -1 || got.InnerPageNo != -1 || got.OuterPageNo != -1 {
		t.Errorf("negative sentinels lost: %+v", got)
	}
}

func TestInstructionPacketJoinedInner(t *testing.T) {
	pkt := &InstructionPacket{
		IPID: 2, OuterPageNo: 4, ResultRelation: "t1",
		JoinedInner: []int{0, 3, 17},
		Pages:       []*relation.Page{samplePage(t, 2)},
	}
	blob := pkt.Marshal()
	if len(blob) != pkt.WireSize() {
		t.Fatalf("Marshal %d bytes, WireSize %d", len(blob), pkt.WireSize())
	}
	got, err := UnmarshalInstruction(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.JoinedInner) != 3 || got.JoinedInner[0] != 0 ||
		got.JoinedInner[1] != 3 || got.JoinedInner[2] != 17 {
		t.Errorf("JoinedInner lost: %v", got.JoinedInner)
	}
	if len(got.Pages) != 1 || got.Pages[0].TupleCount() != 2 {
		t.Errorf("pages lost after JoinedInner: %d pages", len(got.Pages))
	}
}

func TestCompletionPacketRoundTrip(t *testing.T) {
	pkt := &CompletionPacket{
		ICID: 2, IPID: 7, QueryID: 3, OuterPageNo: 5, InnerPageNo: -1,
		Pages: []*relation.Page{samplePage(t, 4), samplePage(t, 1)},
	}
	blob := pkt.Marshal()
	if len(blob) != pkt.WireSize() {
		t.Fatalf("Marshal %d bytes, WireSize %d", len(blob), pkt.WireSize())
	}
	got, err := UnmarshalCompletion(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.ICID != 2 || got.IPID != 7 || got.QueryID != 3 ||
		got.OuterPageNo != 5 || got.InnerPageNo != -1 {
		t.Errorf("fields lost: %+v", got)
	}
	if len(got.Pages) != 2 || got.Pages[0].TupleCount() != 4 || got.Pages[1].TupleCount() != 1 {
		t.Errorf("pages lost: %d pages", len(got.Pages))
	}
	for _, bad := range [][]byte{nil, blob[:8], blob[:len(blob)-2]} {
		if _, err := UnmarshalCompletion(bad); err == nil {
			t.Error("UnmarshalCompletion accepted a truncated blob")
		}
	}
}

func TestResultPacketRoundTrip(t *testing.T) {
	pkt := &ResultPacket{ICID: 4, QueryID: 2, Relation: "t3", Page: samplePage(t, 5)}
	blob := pkt.Marshal()
	if len(blob) != pkt.WireSize() {
		t.Fatalf("Marshal %d bytes, WireSize %d", len(blob), pkt.WireSize())
	}
	got, err := UnmarshalResult(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.ICID != 4 || got.QueryID != 2 || got.Relation != "t3" || got.Page.TupleCount() != 5 {
		t.Errorf("fields lost: %+v", got)
	}
}

func TestControlPacketRoundTrip(t *testing.T) {
	pkt := &ControlPacket{ICID: 1, IPID: 9, QueryID: 3, Message: msgNeedInner, PageNo: -2}
	blob := pkt.Marshal()
	if len(blob) != pkt.WireSize() {
		t.Fatalf("Marshal %d bytes, WireSize %d", len(blob), pkt.WireSize())
	}
	got, err := UnmarshalControl(blob)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *pkt {
		t.Errorf("round trip: %+v != %+v", got, pkt)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	good := (&InstructionPacket{ResultRelation: "r"}).Marshal()
	cases := [][]byte{
		nil,
		good[:10],
		append([]byte{9, 9, 9, 9}, good[4:]...), // bad magic
		good[:len(good)-1],
		append(append([]byte(nil), good...), 1), // trailing byte
	}
	for i, blob := range cases {
		if _, err := UnmarshalInstruction(blob); err == nil {
			t.Errorf("case %d: UnmarshalInstruction succeeded", i)
		}
	}
	if _, err := UnmarshalResult([]byte{1, 2}); err == nil {
		t.Error("UnmarshalResult of junk succeeded")
	}
	if _, err := UnmarshalControl([]byte{1, 2, 3}); err == nil {
		t.Error("UnmarshalControl of junk succeeded")
	}
	// A control blob of the right length but wrong kind.
	ctl := (&ControlPacket{}).Marshal()
	ctl[4] = byte(pktResult)
	if _, err := UnmarshalControl(ctl); err == nil {
		t.Error("UnmarshalControl accepted a result packet")
	}
}

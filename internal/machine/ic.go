package machine

import (
	"fmt"
	"sort"
	"time"

	"dfdbm/internal/fault"
	"dfdbm/internal/obs"
	"dfdbm/internal/query"
	"dfdbm/internal/relation"
)

// operand is one source operand of an instruction, as seen by its IC: a
// page table filled either from the catalog (leaf operands, whose pages
// live on mass storage) or from result packets streaming in over the
// outer ring (compressed into full pages on arrival, as Section 4.2
// prescribes).
type operand struct {
	leaf       bool
	pages      []*relation.Page
	complete   bool
	compressor *relation.Page
	tupleLen   int
	// materialize marks an operand the adaptive plan buffers whole:
	// the instruction does not fire on it until it is complete.
	materialize bool
	// directExpected is how many pages of this operand were routed
	// IP→IP by the producer and must be accounted for by direct
	// completions.
	directExpected int
}

// ipSlot is the IC's bookkeeping for one granted processor.
type ipSlot struct {
	p         *ip
	busy      bool
	flushSent bool
	released  bool
	outerNo   int // join: outer page index being worked, -1 when none

	// span is the causal span of the packet this slot's processor is
	// working (nil when spans are off or the slot is idle).
	span *obs.Span

	// Guarded-mode (fault plan) watchdog state.
	pageNo int // unary: operand page index being worked, -1 when none
	// lastBeat is the last virtual time this processor demonstrated
	// progress (a dispatched packet, an accepted completion, a
	// broadcast it was sent).
	lastBeat time.Duration
	// watchArmed marks an active watchdog check loop for this slot.
	watchArmed bool
	// waitingProducer marks a processor blocked on an inner page the
	// producing instruction has not delivered yet; the watchdog does
	// not charge that wait against the processor.
	waitingProducer bool
}

// ic is one instruction controller.
type ic struct {
	m  *Machine
	id int

	cur   *minstr
	store *icStore
	ops   [2]*operand

	slots       []*ipSlot
	grantedIPs  int
	releasedIPs int
	// wantOutstanding counts processors requested from the MC but not
	// yet granted.
	wantOutstanding int

	// Unary dispatch state.
	dispatched int
	processed  int
	directDone int

	// Join state.
	outerNext     int
	bcastInFlight map[int]bool
	// bcastCount tracks how many times each inner page has been
	// broadcast, distinguishing first broadcasts from missed-page
	// recoveries.
	bcastCount   map[int]int
	pendingInner map[int][]*ip
	markerSent   bool

	// rrNext round-robins direct-routed pages across this IC's
	// processors.
	rrNext int

	finished bool

	// Guarded-mode (fault plan) recovery state.
	//
	// suspects are processors this IC has written off after a watchdog
	// expiry: their packets are discarded, their unfinished work
	// re-dispatched. unaryDone and joined record accepted completion
	// packets (per operand page, and per (outer, inner) join step) —
	// the IC-side dedup that makes re-dispatch exactly-once. requeue
	// holds work units awaiting re-dispatch; retries counts
	// re-dispatches per work unit against Config.RetryBudget.
	suspects  map[*ip]bool
	unaryDone map[int]bool
	joined    map[int]map[int]bool
	requeue   []int
	retries   map[int]int
	// recSpans holds the open recovery span per re-dispatched work
	// unit (spans only).
	recSpans map[int]*obs.Span
}

func newIC(m *Machine, id int) *ic { return &ic{m: m, id: id} }

// assign installs an instruction on this controller (sent by the MC
// over the inner ring).
func (c *ic) assign(mi *minstr) {
	if c.m.tracing() {
		c.m.event(obs.EvAssign, "MC", mi.q.id, mi.id, -1, 0,
			"MC -> IC%d: assign %s of query %d (result %s)",
			c.id, mi.node.Kind, mi.q.id, mi.node.Label())
	}
	if c.m.spansOn() {
		mi.span = c.m.beginSpan(obs.SpanInstr, mi.q.span, fmt.Sprintf("IC%d", c.id),
			fmt.Sprintf("%s %s", mi.node.Kind, mi.node.Label()), mi.q.id, mi.id, -1)
	}
	c.cur = mi
	c.store = newICStore(c, c.m.cfg.ICLocalPages, c.m.cfg.ICCachePages)
	c.slots = nil
	c.grantedIPs, c.releasedIPs = 0, 0
	c.wantOutstanding = 0
	c.dispatched, c.processed, c.directDone = 0, 0, 0
	c.outerNext = 0
	c.bcastInFlight = map[int]bool{}
	c.bcastCount = map[int]int{}
	c.pendingInner = map[int][]*ip{}
	c.markerSent = false
	c.finished = false
	c.suspects = map[*ip]bool{}
	c.unaryDone = map[int]bool{}
	c.joined = map[int]map[int]bool{}
	c.requeue = nil
	c.retries = map[int]int{}
	c.recSpans = nil

	for i, in := range mi.node.Inputs {
		op := &operand{tupleLen: in.Schema().TupleLen(), materialize: mi.matInput[i]}
		if in.Kind == query.OpScan {
			rel, err := c.m.cat.Get(in.Rel)
			if err != nil {
				c.m.fail(err)
				return
			}
			// The MC sent a page table describing the stored relation:
			// the operand is complete, its pages on mass storage.
			op.leaf = true
			op.pages = rel.Pages()
			op.complete = true
			for _, pg := range op.pages {
				c.store.addLeaf(pg)
			}
		}
		c.ops[i] = op
	}
	c.kick()
}

// isSafe reports whether every operand is complete: processors granted
// to a safe instruction never block waiting for a producer.
func (c *ic) isSafe() bool {
	if c.cur == nil {
		return true
	}
	for i := 0; i < len(c.cur.node.Inputs); i++ {
		if !c.ops[i].complete {
			return false
		}
	}
	return true
}

// enabled implements the firing rule: one page of each operand (or a
// complete, empty operand) — except that a materialized operand must be
// complete, the adaptive plan's per-edge relation-level rule.
func (c *ic) enabled() bool {
	for i := 0; i < len(c.cur.node.Inputs); i++ {
		op := c.ops[i]
		if op.materialize && !op.complete {
			return false
		}
		if len(op.pages) == 0 && !op.complete {
			return false
		}
	}
	return true
}

// kick advances the instruction: hand work to idle processors, return
// processors with nothing to do to the MC (hoarding idle processors
// would starve the producing instructions below — the MC must keep
// processors "distributed across all nodes in the query tree"), request
// more when work outruns the processors held, and check for completion.
func (c *ic) kick() {
	if c.cur == nil || c.finished || c.m.err != nil {
		return
	}
	for _, s := range c.slots {
		if !s.busy && !s.released {
			c.assignWork(s)
		}
	}
	// Anything still idle has no dispatchable work: give it back, except
	// that an instruction still being fed by a producer keeps one
	// processor parked for the pages about to arrive. (The MC's reserve
	// rule keeps one processor grantable to "safe" instructions, so a
	// parked processor can never starve the producers below.)
	parked := false
	var idle []*ipSlot
	for _, s := range c.slots {
		if s.busy || s.released || s.flushSent {
			continue
		}
		if !parked && !c.isSafe() && c.enabled() {
			parked = true
			continue
		}
		idle = append(idle, s)
	}
	// Released outside the range loop: the guarded release removes the
	// slot from c.slots — and may finish the instruction outright.
	for _, s := range idle {
		c.flushOrRelease(s)
	}
	if c.cur == nil || c.finished {
		return
	}
	// Ask the MC for processors whenever dispatchable work exceeds the
	// processors held (and requested), up to the per-instruction
	// allocation.
	if c.enabled() {
		capacity := c.usableSlots() + c.wantOutstanding
		want := c.pendingWork() - capacity
		if max := c.m.cfg.IPsPerInstruction - capacity; want > max {
			want = max
		}
		if want > 0 {
			c.wantOutstanding += want
			c.m.requestIPs(c, c.cur, want)
		}
	}
	c.checkDone()
}

// pendingWork counts dispatchable units: undispatched operand pages for
// unary instructions, unassigned outer pages for joins.
func (c *ic) pendingWork() int {
	switch c.cur.node.Kind {
	case query.OpJoin:
		return len(c.ops[0].pages) - c.outerNext + len(c.requeue)
	default:
		return len(c.ops[0].pages) - c.dispatched + len(c.requeue)
	}
}

// usableSlots counts processors currently held (busy or assignable).
func (c *ic) usableSlots() int {
	n := 0
	for _, s := range c.slots {
		if !s.released && !s.flushSent {
			n++
		}
	}
	return n
}

// gainIP integrates a processor granted by the MC.
func (c *ic) gainIP(p *ip) {
	if c.cur == nil || c.finished {
		c.m.releaseIP(p)
		return
	}
	if c.wantOutstanding > 0 {
		c.wantOutstanding--
	}
	c.grantedIPs++
	p.bind(c, c.cur)
	s := &ipSlot{p: p, outerNo: -1, pageNo: -1}
	c.slots = append(c.slots, s)
	c.kick()
}

// assignWork gives one idle processor its next task.
func (c *ic) assignWork(s *ipSlot) {
	if c.cur == nil || c.finished || s.busy || s.released {
		return
	}
	if !c.enabled() {
		// A materialized operand is still streaming in: nothing may
		// fire yet (the completion marker kicks again).
		return
	}
	switch c.cur.node.Kind {
	case query.OpJoin:
		c.assignOuter(s)
	default:
		c.assignUnary(s)
	}
}

func (c *ic) assignUnary(s *ipSlot) {
	op := c.ops[0]
	idx := -1
	if len(c.requeue) > 0 {
		// Re-dispatch work lost to a fault before taking fresh pages.
		idx = c.requeue[0]
		c.requeue = c.requeue[1:]
	} else if c.dispatched < len(op.pages) {
		idx = c.dispatched
		c.dispatched++
	}
	if idx >= 0 {
		pg := op.pages[idx]
		// Under a fault plan results ride completion packets, so no
		// flush pass is needed (or wanted: it would not be fault
		// tolerant).
		flush := !c.m.guarded() && op.complete && idx == len(op.pages)-1
		s.busy = true
		s.pageNo = idx
		// Prefetch the next few pages up the hierarchy while this one
		// is fetched and shipped.
		for k := idx + 1; k < len(op.pages) && k <= idx+3; k++ {
			c.store.prefetch(op.pages[k])
		}
		c.store.get(pg, func() {
			c.sendInstr(s, &InstructionPacket{
				IPID:           s.p.id,
				QueryID:        c.cur.q.id,
				ICIDSender:     c.id,
				ICIDDest:       c.destID(),
				FlushWhenDone:  flush,
				Opcode:         c.cur.opcode(),
				ResultRelation: c.cur.node.Label(),
				ResultTupleLen: c.cur.outTupleLen,
				OuterPageNo:    idx,
				Pages:          []*relation.Page{pg},
			})
		})
		return
	}
	if op.complete {
		c.flushOrRelease(s)
	}
	// Otherwise: idle until more pages stream in.
}

// flushOrRelease retires an idle processor: one flush packet to drain
// its result buffer, then release to the MC. Under a fault plan
// processors flush into every completion packet, so their buffers are
// empty by construction and the slot is released directly.
func (c *ic) flushOrRelease(s *ipSlot) {
	if c.m.guarded() {
		if s.released {
			return
		}
		s.released = true
		c.releasedIPs++
		for i, e := range c.slots {
			if e == s {
				c.slots = append(c.slots[:i], c.slots[i+1:]...)
				break
			}
		}
		c.m.releaseIP(s.p)
		c.checkDone()
		return
	}
	if s.flushSent {
		return
	}
	s.flushSent = true
	s.busy = true
	c.sendInstr(s, &InstructionPacket{
		IPID:           s.p.id,
		QueryID:        c.cur.q.id,
		ICIDSender:     c.id,
		ICIDDest:       c.destID(),
		FlushWhenDone:  true,
		Opcode:         c.cur.opcode(),
		ResultRelation: c.cur.node.Label(),
		ResultTupleLen: c.cur.outTupleLen,
	})
}

// assignOuter hands a join processor its next outer page (with the
// first inner page when available, as in the paper's first packet).
func (c *ic) assignOuter(s *ipSlot) {
	outer, inner := c.ops[0], c.ops[1]
	idx, redispatched := -1, false
	if len(c.requeue) > 0 {
		idx = c.requeue[0]
		c.requeue = c.requeue[1:]
		redispatched = true
	} else if c.outerNext < len(outer.pages) {
		idx = c.outerNext
		c.outerNext++
	}
	if idx >= 0 {
		s.busy = true
		s.outerNo = idx
		opg := outer.pages[idx]
		// A re-dispatched outer page seeds the replacement processor's
		// IRC vector with the join steps already accepted, so only the
		// lost work is redone; the missing inner pages are re-requested
		// through the Section 4.2 recovery path rather than piggybacked.
		var seed []int
		if redispatched {
			for inIdx := range c.joined[idx] {
				seed = append(seed, inIdx)
			}
			sort.Ints(seed)
		}
		c.store.get(opg, func() {
			pkt := &InstructionPacket{
				IPID:           s.p.id,
				QueryID:        c.cur.q.id,
				ICIDSender:     c.id,
				ICIDDest:       c.destID(),
				Opcode:         c.cur.opcode(),
				ResultRelation: c.cur.node.Label(),
				ResultTupleLen: c.cur.outTupleLen,
				OuterPageNo:    idx,
				InnerPageNo:    -1,
				JoinedInner:    seed,
				Pages:          []*relation.Page{opg},
			}
			if !redispatched && len(inner.pages) > 0 {
				ipg := inner.pages[0]
				c.store.get(ipg, func() {
					pkt.InnerPageNo = 0
					pkt.LastInner = inner.complete && len(inner.pages) == 1
					pkt.Pages = append(pkt.Pages, ipg)
					c.sendInstr(s, pkt)
				})
				return
			}
			c.sendInstr(s, pkt)
		})
		return
	}
	if outer.complete {
		s.outerNo = -1
		c.flushOrRelease(s)
	}
}

func (c *ic) destID() int {
	if c.cur.node.Kind == query.OpProject {
		return c.id // serial duplicate elimination at this controller
	}
	if c.cur.destIC == nil {
		return -1 // host
	}
	return c.cur.destIC.id
}

func (c *ic) sendInstr(s *ipSlot, pkt *InstructionPacket) {
	c.m.stats.InstructionPackets++
	size := pkt.WireSize()
	mi := c.cur
	if c.m.tracing() {
		if len(pkt.Pages) == 0 {
			c.m.event(obs.EvInstr, fmt.Sprintf("IC%d", c.id), mi.q.id, mi.id, -1, size,
				"IC%d -> IP%d: flush", c.id, s.p.id)
		} else {
			c.m.event(obs.EvInstr, fmt.Sprintf("IC%d", c.id), mi.q.id, mi.id, pkt.OuterPageNo, size,
				"IC%d -> IP%d: %s page %d of %s (flush=%v, %d operands)",
				c.id, s.p.id, query.OpKind(pkt.Opcode), pkt.OuterPageNo,
				pkt.ResultRelation, pkt.FlushWhenDone, len(pkt.Pages))
		}
	}
	if c.m.spansOn() {
		name, page := "flush packet", -1
		if len(pkt.Pages) > 0 {
			name, page = "instr packet", pkt.OuterPageNo
			mi.span.Firings.Add(1)
		}
		c.m.endSpan(s.span) // a prior packet span left open ends here
		s.span = c.m.beginSpan(obs.SpanPacket, mi.span, fmt.Sprintf("IP%d", s.p.id),
			name, mi.q.id, mi.id, page)
		s.span.Bytes.Add(int64(size))
	}
	p := s.p
	if c.m.guarded() {
		// Arm the watchdog for this processor: the packet is now
		// outstanding, and only evidence of progress (completions,
		// broadcasts sent to it) resets the clock.
		s.lastBeat = c.m.s.Now()
		if !s.watchArmed {
			s.watchArmed = true
			c.m.s.After(c.m.cfg.WatchdogTimeout, func() { c.watchdogCheck(s, mi) })
		}
		c.m.lossyOuter(fault.ClassInstruction, size, func() { p.receive(pkt) })
		return
	}
	c.m.sendOuter(size, func() { p.receive(pkt) })
}

// watchdogCheck is the IC's virtual-time watchdog loop for one busy
// slot: if the processor has shown no progress for a full
// WatchdogTimeout (and is not waiting on an unproduced inner page), it
// is suspected. The loop disarms when the slot goes idle and is
// re-armed by the next dispatch.
func (c *ic) watchdogCheck(s *ipSlot, mi *minstr) {
	if c.m.err != nil || c.cur != mi || c.finished || s.released || c.suspects[s.p] {
		s.watchArmed = false
		return
	}
	if !s.busy {
		s.watchArmed = false
		return
	}
	now := c.m.s.Now()
	deadline := s.lastBeat + c.m.cfg.WatchdogTimeout
	if s.waitingProducer || now < deadline {
		wait := deadline - now
		if s.waitingProducer || wait <= 0 {
			wait = c.m.cfg.WatchdogTimeout
		}
		c.m.s.After(wait, func() { c.watchdogCheck(s, mi) })
		return
	}
	c.suspect(s)
}

// suspect writes off a processor whose watchdog expired: report it to
// the MC over the inner ring, reclaim the slot, and re-queue its
// unfinished work unit. A suspected processor that was merely slow is
// harmless — its late packets are discarded and its work unit runs
// again elsewhere, deduplicated on acceptance.
func (c *ic) suspect(s *ipSlot) {
	p := s.p
	c.suspects[p] = true
	c.m.stats.WatchdogTimeouts++
	mi := c.cur
	if c.m.tracing() {
		c.m.event(obs.EvFault, fmt.Sprintf("IC%d", c.id), mi.q.id, mi.id, s.pageNo, 0,
			"IC%d: watchdog expired for IP %d (no progress for %v)", c.id, p.id, c.m.cfg.WatchdogTimeout)
	}
	// The packet died with its processor.
	c.m.endSpan(s.span)
	s.span = nil
	// The failure report is an inner-ring control message to the MC,
	// which marks the processor failed machine-wide.
	c.m.stats.ControlPackets++
	c.m.innerSend(c.m.cfg.HW.ControlBytes, func() { c.m.ipSuspected(p, c.id) })
	for i, e := range c.slots {
		if e == s {
			c.slots = append(c.slots[:i], c.slots[i+1:]...)
			break
		}
	}
	idx := s.pageNo
	if mi.node.Kind == query.OpJoin {
		idx = s.outerNo
	}
	if idx >= 0 && !c.workUnitDone(idx) {
		c.queueRedispatch(idx)
	}
	c.kick()
}

// workUnitDone reports whether work unit idx (operand page, or join
// outer page) has been fully accepted.
func (c *ic) workUnitDone(idx int) bool {
	if c.cur.node.Kind == query.OpJoin {
		return c.fullyJoined(idx)
	}
	return c.unaryDone[idx]
}

// fullyJoined reports whether outer page idx has accepted join steps
// against every inner page.
func (c *ic) fullyJoined(idx int) bool {
	inner := c.ops[1]
	return inner.complete && len(c.joined[idx]) >= len(inner.pages)
}

// queueRedispatch schedules work unit idx for re-dispatch, charging its
// retry budget; past the budget the whole run fails with a FaultError
// (within the watchdog bound — better a typed error than a silent
// hang).
func (c *ic) queueRedispatch(idx int) {
	if c.m.err != nil {
		return
	}
	mi := c.cur
	c.retries[idx]++
	if c.retries[idx] > c.m.cfg.RetryBudget {
		c.m.fail(&FaultError{QueryID: mi.q.id, Instr: mi.id, Page: idx,
			Retries: c.retries[idx] - 1, Reason: "retry budget exhausted"})
		return
	}
	c.m.stats.Redispatches++
	if c.m.tracing() {
		c.m.event(obs.EvRecovery, fmt.Sprintf("IC%d", c.id), mi.q.id, mi.id, idx, 0,
			"IC%d: re-dispatch work unit %d (attempt %d)", c.id, idx, c.retries[idx]+1)
	}
	if c.m.spansOn() && c.recSpans[idx] == nil {
		if c.recSpans == nil {
			c.recSpans = map[int]*obs.Span{}
		}
		c.recSpans[idx] = c.m.beginSpan(obs.SpanRecovery, mi.span, fmt.Sprintf("IC%d", c.id),
			fmt.Sprintf("re-dispatch unit %d", idx), mi.q.id, mi.id, idx)
	}
	c.requeue = append(c.requeue, idx)
}

// onCompletion accepts one atomic work-unit completion from a
// processor: the IC-side serialization point of the guarded protocol.
// Completions from suspected or stale processors are discarded whole —
// their work units were (or will be) re-dispatched — and accepted
// units are deduplicated, so every work unit lands exactly once no
// matter how packets were lost, duplicated, or raced by recovery.
func (c *ic) onCompletion(p *ip, pkt *CompletionPacket) {
	if c.cur == nil || c.finished || p.instr != c.cur || pkt.QueryID != c.cur.q.id {
		return
	}
	if p.failed || c.suspects[p] {
		if c.m.tracing() {
			c.m.event(obs.EvFault, fmt.Sprintf("IC%d", c.id), pkt.QueryID, c.cur.id, pkt.OuterPageNo, 0,
				"IC%d: discarded completion from failed IP %d", c.id, p.id)
		}
		return
	}
	s := c.slot(p)
	if s != nil {
		s.lastBeat = c.m.s.Now()
	}
	if pkt.InnerPageNo >= 0 {
		// One join step of outer page OuterPageNo.
		jm := c.joined[pkt.OuterPageNo]
		if jm == nil {
			jm = map[int]bool{}
			c.joined[pkt.OuterPageNo] = jm
		}
		if jm[pkt.InnerPageNo] {
			return // already accepted from an earlier incarnation
		}
		jm[pkt.InnerPageNo] = true
		if c.retries[pkt.OuterPageNo] > 0 && c.fullyJoined(pkt.OuterPageNo) {
			c.noteRecovered(pkt.OuterPageNo)
		}
	} else {
		if c.unaryDone[pkt.OuterPageNo] {
			return
		}
		c.unaryDone[pkt.OuterPageNo] = true
		c.processed++
		if c.retries[pkt.OuterPageNo] > 0 {
			c.noteRecovered(pkt.OuterPageNo)
		}
		if s != nil {
			s.busy = false
			s.pageNo = -1
			c.m.endSpan(s.span)
			s.span = nil
		}
	}
	for _, pg := range pkt.Pages {
		c.routeResult(pg)
	}
	c.kick()
}

// noteRecovered records that a re-dispatched work unit made it.
func (c *ic) noteRecovered(idx int) {
	c.m.stats.RecoveredPages++
	mi := c.cur
	if c.m.tracing() {
		c.m.event(obs.EvRecovery, fmt.Sprintf("IC%d", c.id), mi.q.id, mi.id, idx, 0,
			"IC%d: re-dispatched work unit %d completed", c.id, idx)
	}
	if s := c.recSpans[idx]; s != nil {
		c.m.endSpan(s)
		delete(c.recSpans, idx)
	}
}

// routeResult forwards one result page from an accepted completion.
func (c *ic) routeResult(pg *relation.Page) {
	if pg == nil || pg.Empty() {
		return
	}
	if c.cur.node.Kind == query.OpProject {
		c.onProjectResult(pg)
		return
	}
	c.forwardResult(pg)
}

// ---- Operand reception (the distribution network's target) ----

// receiveOperand integrates one arriving result page into operand
// `input`, compressing partial pages into full pages.
func (c *ic) receiveOperand(input int, pg *relation.Page) {
	if c.cur == nil || c.finished {
		c.m.fail(fmt.Errorf("IC %d received a page with no instruction", c.id))
		return
	}
	op := c.ops[input]
	if pg.TupleLen() != op.tupleLen {
		c.m.fail(fmt.Errorf("IC %d: page tuple length %d, operand needs %d", c.id, pg.TupleLen(), op.tupleLen))
		return
	}
	for _, full := range compress(op, pg) {
		c.addOperandPage(input, full)
	}
	if pg.Empty() && op.compressor != pg {
		// The arriving partial page was fully drained into the
		// compression buffer: the page itself is dead.
		c.m.recycle(pg)
	}
	c.kick()
}

// compress folds pg into the operand's compression buffer and returns
// any full pages now available.
func compress(op *operand, pg *relation.Page) []*relation.Page {
	if pg.Empty() {
		return nil
	}
	if pg.Full() {
		return []*relation.Page{pg}
	}
	if op.compressor == nil {
		op.compressor = pg
		return nil
	}
	var out []*relation.Page
	if _, err := op.compressor.FillFrom(pg); err == nil && op.compressor.Full() {
		out = append(out, op.compressor)
		op.compressor = nil
		if !pg.Empty() {
			op.compressor = pg
		}
	}
	return out
}

// addOperandPage registers a full (or final partial) page of an operand
// and wakes anything waiting for it.
func (c *ic) addOperandPage(input int, pg *relation.Page) {
	op := c.ops[input]
	idx := len(op.pages)
	op.pages = append(op.pages, pg)
	c.store.put(pg)
	if c.cur.node.Kind == query.OpJoin && input == 1 {
		// Newly arrived inner page: satisfy deferred requests.
		if waiters := c.pendingInner[idx]; len(waiters) > 0 {
			delete(c.pendingInner, idx)
			c.broadcastInner(idx)
		}
	}
}

// operandComplete records the end of a streamed operand. directCount is
// the producer's count of direct-routed pages (Section 5 extension).
func (c *ic) operandComplete(input int, directCount int) {
	if c.cur == nil || c.finished {
		return
	}
	op := c.ops[input]
	if op.compressor != nil && !op.compressor.Empty() {
		c.addOperandPage(input, op.compressor)
		op.compressor = nil
	}
	op.complete = true
	op.directExpected = directCount
	if c.cur.node.Kind == query.OpJoin && input == 1 {
		// Requests beyond the final page are answered with the
		// last-page marker so IPs can reconcile their IRC vectors.
		for idx, waiters := range c.pendingInner {
			if idx >= len(op.pages) && len(waiters) > 0 {
				delete(c.pendingInner, idx)
				c.sendMarker()
			}
		}
	}
	c.kick()
}

// ---- Control packets from processors ----

func (c *ic) onControl(p *ip, pkt *ControlPacket) {
	if c.cur == nil {
		return
	}
	if c.m.guarded() && (p.failed || c.suspects[p] || p.instr != c.cur) {
		if c.m.tracing() {
			c.m.event(obs.EvFault, fmt.Sprintf("IC%d", c.id), pkt.QueryID, c.cur.id, pkt.PageNo, 0,
				"IC%d: discarded control packet from failed IP %d", c.id, p.id)
		}
		return
	}
	switch pkt.Message {
	case msgDone:
		switch pkt.PageNo {
		case flushDonePage:
			c.retire(p)
		case directDonePage:
			c.directDone++
			c.kick()
		default:
			c.processed++
			if s := c.slot(p); s != nil {
				s.busy = false
				c.m.endSpan(s.span)
				s.span = nil
			}
			c.kick()
		}
	case msgNeedInner:
		c.onNeedInner(p, pkt.PageNo)
	case msgNeedOuter:
		if s := c.slot(p); s != nil {
			if c.m.guarded() {
				// The guarded request names the outer page it finishes,
				// so a late retry of an already-accepted request is
				// recognized and ignored.
				if s.outerNo < 0 || s.outerNo != pkt.PageNo {
					break
				}
				idx := s.outerNo
				s.lastBeat = c.m.s.Now()
				s.busy = false
				s.outerNo = -1
				c.m.endSpan(s.span)
				s.span = nil
				if !c.fullyJoined(idx) {
					// The processor believes the page is done but some
					// join-step completions were lost in transit:
					// re-dispatch it (seeded with what was accepted).
					c.queueRedispatch(idx)
				}
				c.kick()
				return
			}
			s.busy = false
			s.outerNo = -1
			c.m.endSpan(s.span)
			s.span = nil
		}
		c.kick()
	}
}

// Sentinel page numbers in done control packets.
const (
	flushDonePage  = -2
	directDonePage = -3
)

func (c *ic) slot(p *ip) *ipSlot {
	for _, s := range c.slots {
		if s.p == p {
			return s
		}
	}
	return nil
}

// retire releases a flushed processor back to the MC. The slot is
// removed outright: the processor may be re-granted to this same IC
// later, and a stale slot would alias it.
func (c *ic) retire(p *ip) {
	s := c.slot(p)
	if s == nil || s.released {
		return
	}
	s.released = true
	s.busy = false
	c.m.endSpan(s.span)
	s.span = nil
	c.releasedIPs++
	for i, e := range c.slots {
		if e == s {
			c.slots = append(c.slots[:i], c.slots[i+1:]...)
			break
		}
	}
	c.m.releaseIP(p)
	c.checkDone()
}

// onNeedInner implements the IC side of the broadcast-join protocol.
func (c *ic) onNeedInner(p *ip, idx int) {
	inner := c.ops[1]
	if idx >= len(inner.pages) {
		if inner.complete {
			// The IP has requested past the end: tell everyone where
			// the inner relation ends.
			c.sendMarker()
			return
		}
		// The page does not exist yet: the processor is waiting on the
		// producing instruction, which must not count against its
		// watchdog.
		if s := c.slot(p); s != nil {
			s.waitingProducer = true
		}
		c.pendingInner[idx] = append(c.pendingInner[idx], p)
		return
	}
	c.broadcastInner(idx)
}

// broadcastInner broadcasts inner page idx to every processor working
// on this join. Requests received while the broadcast is in flight are
// ignored ("subsequent requests for the same page ... can be ignored");
// a repeated request after delivery is a missed-page recovery and
// triggers a fresh broadcast.
func (c *ic) broadcastInner(idx int) {
	if c.bcastInFlight[idx] {
		return
	}
	if c.bcastCount == nil {
		c.bcastCount = map[int]int{}
	}
	if c.bcastCount[idx] > 0 {
		c.m.stats.RecoveryRequests++
	}
	c.bcastCount[idx]++
	c.bcastInFlight[idx] = true
	inner := c.ops[1]
	pg := inner.pages[idx]
	c.store.get(pg, func() {
		if c.cur == nil || c.finished {
			return
		}
		pkt := &InstructionPacket{
			QueryID:        c.cur.q.id,
			ICIDSender:     c.id,
			ICIDDest:       c.destID(),
			Opcode:         c.cur.opcode(),
			ResultRelation: c.cur.node.Label(),
			ResultTupleLen: c.cur.outTupleLen,
			Broadcast:      true,
			InnerPageNo:    idx,
			LastInner:      inner.complete && idx == len(inner.pages)-1,
			Pages:          []*relation.Page{pg},
		}
		c.m.stats.Broadcasts++
		if c.m.tracing() {
			c.m.event(obs.EvBroadcast, fmt.Sprintf("IC%d", c.id), c.cur.q.id, c.cur.id, idx, pkt.WireSize(),
				"IC%d: broadcast inner page %d (last=%v)", c.id, idx, pkt.LastInner)
		}
		var bspan *obs.Span
		if c.m.spansOn() {
			bspan = c.m.beginSpan(obs.SpanBroadcast, c.cur.span, fmt.Sprintf("IC%d", c.id),
				fmt.Sprintf("broadcast inner %d", idx), c.cur.q.id, c.cur.id, idx)
			bspan.Bytes.Add(int64(pkt.WireSize()))
		}
		deliver := c.broadcastTargets(pkt)
		c.m.broadcastOuter(pkt.WireSize(), append(deliver, func() {
			c.bcastInFlight[idx] = false
			c.m.endSpan(bspan)
		}))
	})
}

// broadcastTargets builds the per-recipient delivery closures for a
// broadcast. Under a fault plan each recipient's delivery is an
// independent drop draw (a broadcast can reach some processors and miss
// others), recipients get a progress beat (the IC just fed them), and a
// parked producer wait ends.
func (c *ic) broadcastTargets(pkt *InstructionPacket) []func() {
	var deliver []func()
	guarded := c.m.guarded()
	now := c.m.s.Now()
	for _, s := range c.slots {
		if s.released {
			continue
		}
		p := s.p
		if guarded {
			s.lastBeat = now
			s.waitingProducer = false
			deliver = append(deliver, c.m.lossyDeliver(fault.ClassBroadcast, func() { p.onBroadcast(pkt) }))
			continue
		}
		deliver = append(deliver, func() { p.onBroadcast(pkt) })
	}
	return deliver
}

// sendMarker broadcasts the "that was the last inner page" indication.
// Requests while a marker is in flight are ignored (they will see it);
// a later request triggers a fresh marker, so processors granted after
// the first marker still learn the inner relation's extent.
func (c *ic) sendMarker() {
	if c.markerSent {
		return
	}
	c.markerSent = true
	inner := c.ops[1]
	pkt := &InstructionPacket{
		QueryID:     c.cur.q.id,
		ICIDSender:  c.id,
		Opcode:      c.cur.opcode(),
		Broadcast:   true,
		LastInner:   true,
		InnerPageNo: len(inner.pages),
	}
	c.m.stats.Broadcasts++
	deliver := c.broadcastTargets(pkt)
	c.m.broadcastOuter(pkt.WireSize(), append(deliver, func() { c.markerSent = false }))
}

// onProjectResult receives a project processor's (not yet
// deduplicated) output and performs the serial duplicate elimination of
// the baseline algorithm.
func (c *ic) onProjectResult(pg *relation.Page) {
	if c.cur == nil || c.finished {
		return
	}
	mi := c.cur
	n := pg.TupleCount()
	for i := 0; i < n; i++ {
		raw := pg.RawTuple(i)
		if !mi.dedup.Add(raw) {
			continue
		}
		full, err := mi.outPag.Add(raw)
		if err != nil {
			c.m.fail(err)
			return
		}
		if full != nil {
			c.forwardResult(full)
		}
	}
	// Every tuple now lives in the dedup set or the output paginator;
	// the carrier page is dead.
	c.m.recycle(pg)
}

// forwardResult ships a finished result page toward the consumer (used
// by project instructions, whose results pass through their own IC).
func (c *ic) forwardResult(pg *relation.Page) {
	mi := c.cur
	c.m.stats.ResultPackets++
	c.m.noteResultOut(mi, pg.TupleCount())
	rp := &ResultPacket{QueryID: mi.q.id, Relation: mi.node.Label(), Page: pg}
	if mi.destIC == nil {
		q := mi.q
		c.m.reliableSend(relKey{from: c.id, to: -1}, fault.ClassResult,
			rp.WireSize(), func() { c.m.hostDeliver(q, pg) })
		return
	}
	dest, input := mi.destIC, mi.destInput
	rp.ICID = dest.id
	c.m.reliableSend(relKey{from: c.id, to: dest.id}, fault.ClassResult,
		rp.WireSize(), func() { dest.receiveOperand(input, pg) })
}

// ---- Completion ----

func (c *ic) checkDone() {
	if c.cur == nil || c.finished {
		return
	}
	mi := c.cur
	switch mi.node.Kind {
	case query.OpJoin:
		outer, inner := c.ops[0], c.ops[1]
		if !outer.complete || !inner.complete {
			return
		}
		if c.outerNext < len(outer.pages) || len(c.requeue) > 0 {
			return
		}
		if c.m.guarded() {
			// Done means accepted, not dispatched: every outer page must
			// have an accepted join step against every inner page.
			for idx := 0; idx < len(outer.pages); idx++ {
				if !c.fullyJoined(idx) {
					return
				}
			}
		}
		if len(c.slots) != 0 {
			return
		}
	default:
		op := c.ops[0]
		if !op.complete || c.dispatched < len(op.pages) || c.processed < c.dispatched {
			return
		}
		if len(c.requeue) > 0 {
			return
		}
		if c.m.guarded() {
			for idx := 0; idx < len(op.pages); idx++ {
				if !c.unaryDone[idx] {
					return
				}
			}
		}
		if c.directDone < op.directExpected {
			return
		}
		if len(c.slots) != 0 {
			return
		}
	}
	c.finish()
}

func (c *ic) finish() {
	mi := c.cur
	if c.m.tracing() {
		c.m.event(obs.EvInstrDone, fmt.Sprintf("IC%d", c.id), mi.q.id, mi.id, -1, 0,
			"IC%d: instruction %s of query %d complete (%d packets dispatched)",
			c.id, mi.node.Kind, mi.q.id, c.dispatched)
	}
	c.finished = true
	// Project: flush the deduplicated output.
	if mi.node.Kind == query.OpProject {
		if last := mi.outPag.Flush(); last != nil {
			c.forwardResult(last)
		}
	}
	// Tell the consumer the operand is complete (with the count of
	// direct-routed pages it should expect completions for), and tell
	// the MC the instruction is finished.
	if mi.destInstr != nil {
		dest, input, direct := mi.destIC, mi.destInput, mi.directSent
		cp := &ControlPacket{ICID: dest.id, QueryID: mi.q.id, Message: msgDone}
		c.m.stats.ControlPackets++
		// The operand-complete marker shares the result pages' reliable
		// FIFO flow, so it can never overtake (or be lost behind) the
		// pages it finalizes.
		c.m.reliableSend(relKey{from: c.id, to: dest.id}, fault.ClassResult,
			cp.WireSize(), func() { dest.operandComplete(input, direct) })
	}
	c.m.endSpan(mi.span)
	c.cur = nil
	c.m.innerSend(c.m.cfg.HW.ControlBytes, func() { c.m.instrFinished(mi) })
}

package machine

import (
	"time"

	"dfdbm/internal/obs"
	"dfdbm/internal/relation"
)

// storeLevel locates a page within an IC's three-level hierarchy.
type storeLevel uint8

const (
	levelLocal storeLevel = iota + 1 // IC local memory
	levelCache                       // the IC's disk-cache segment
	levelDisk                        // mass storage
)

// icStore is one IC's view of the storage hierarchy: a local page
// memory, a segment of the multiport disk cache, and mass storage.
// Pages demoted out of local memory land in the cache segment; pages
// demoted out of the cache are written to disk. Reads promote pages
// back to local memory. Source-relation pages start on disk.
type icStore struct {
	m *Machine
	// c is the owning controller: transfer spans and cache hit/miss
	// counters attribute to its current instruction.
	c *ic

	localCap, cacheCap int
	where              map[*relation.Page]storeLevel
	// LRU order per level: index 0 is least recently used.
	localLRU, cacheLRU []*relation.Page
	fetching           map[*relation.Page][]func()
}

func newICStore(c *ic, localCap, cacheCap int) *icStore {
	return &icStore{
		m:        c.m,
		c:        c,
		localCap: localCap,
		cacheCap: cacheCap,
		where:    map[*relation.Page]storeLevel{},
		fetching: map[*relation.Page][]func(){},
	}
}

// instrSpan returns the owning instruction's span (nil when spans are
// off or the instruction already finished).
func (st *icStore) instrSpan() *obs.Span {
	if st.c.cur == nil {
		return nil
	}
	return st.c.cur.span
}

// instrQuery and instrID return the owning instruction's query and
// instruction ids, or -1 when it already finished.
func (st *icStore) instrQuery() int {
	if st.c.cur == nil {
		return -1
	}
	return st.c.cur.q.id
}

func (st *icStore) instrID() int {
	if st.c.cur == nil {
		return -1
	}
	return st.c.cur.id
}

// noteFetch credits an operand fetch to the instruction span: local
// memory and the cache segment count as hits, disk reads as misses.
func (st *icStore) noteFetch(hit bool) {
	if s := st.instrSpan(); s != nil {
		if hit {
			s.CacheHits.Add(1)
		} else {
			s.CacheMiss.Add(1)
		}
	}
}

// addLeaf registers a source-relation page as residing on mass storage.
func (st *icStore) addLeaf(pg *relation.Page) { st.where[pg] = levelDisk }

// put places a page arriving at the IC (from the outer ring) into
// local memory, demoting older pages as needed.
func (st *icStore) put(pg *relation.Page) {
	st.where[pg] = levelLocal
	st.localLRU = append(st.localLRU, pg)
	st.balance()
}

// drop forgets a page the instruction no longer needs.
func (st *icStore) drop(pg *relation.Page) {
	switch st.where[pg] {
	case levelLocal:
		st.localLRU = removePage(st.localLRU, pg)
	case levelCache:
		st.cacheLRU = removePage(st.cacheLRU, pg)
	}
	delete(st.where, pg)
}

// get makes the page available in local memory and then calls ready.
// The cost depends on where the page currently lives: free from local
// memory, a cache transfer from the cache segment, or a disk read (the
// paper's leaf operands and spilled pages).
func (st *icStore) get(pg *relation.Page, ready func()) {
	switch st.where[pg] {
	case levelLocal:
		st.touchLocal(pg)
		st.noteFetch(true)
		st.m.s.After(0, ready)

	case levelCache:
		st.noteFetch(true)
		if st.enqueueFetch(pg, ready) {
			return
		}
		st.m.stats.CacheReads++
		st.m.observe("machine.cache_bytes", float64(st.m.cfg.HW.PageSize))
		if st.m.tracing() {
			st.m.event(obs.EvCacheRead, "cache", -1, -1, -1, st.m.cfg.HW.PageSize,
				"cache: read page into IC local memory")
		}
		d := time.Duration(float64(st.m.cfg.HW.PageSize) / st.m.cfg.HW.CacheBytesPerSec * float64(time.Second))
		st.m.observeBusy("machine.cache_busy_us", st.m.s.Now(), d)
		if st.m.spansOn() {
			now := st.m.s.Now()
			st.m.recordSpan(obs.SpanXfer, st.instrSpan(), now, now+d,
				"cache", "cache read", st.instrQuery(), st.instrID(), -1)
		}
		st.m.s.After(d, func() { st.finishFetch(pg, levelCache) })

	case levelDisk:
		st.noteFetch(false)
		if st.enqueueFetch(pg, ready) {
			return
		}
		st.m.stats.DiskReads++
		st.m.observe("machine.disk_bytes", float64(st.m.cfg.HW.PageSize))
		if st.m.tracing() {
			st.m.event(obs.EvDiskRead, "disk", -1, -1, -1, st.m.cfg.HW.PageSize,
				"disk: read page into IC local memory")
		}
		access := st.m.cfg.HW.Disk.AccessTime(st.m.cfg.HW.PageSize)
		finish := st.m.disk.Serve(access, func() {
			st.finishFetch(pg, levelDisk)
		})
		st.m.observeBusy("machine.disk_busy_us", finish-access, access)
		if st.m.spansOn() {
			st.m.recordSpan(obs.SpanXfer, st.instrSpan(), finish-access, finish,
				"disk", "disk read", st.instrQuery(), st.instrID(), -1)
		}

	default:
		// Unknown page: treat as freshly arrived.
		st.put(pg)
		st.m.s.After(0, ready)
	}
}

// prefetch begins moving a page toward local memory without a waiter.
func (st *icStore) prefetch(pg *relation.Page) {
	if st.where[pg] == levelLocal {
		return
	}
	if _, busy := st.fetching[pg]; busy {
		return
	}
	st.get(pg, func() {})
}

// enqueueFetch coalesces concurrent fetches of one page; it reports
// whether a fetch was already in flight.
func (st *icStore) enqueueFetch(pg *relation.Page, ready func()) bool {
	if waiters, busy := st.fetching[pg]; busy {
		st.fetching[pg] = append(waiters, ready)
		return true
	}
	st.fetching[pg] = []func(){ready}
	return false
}

func (st *icStore) finishFetch(pg *relation.Page, from storeLevel) {
	if from == levelCache {
		st.cacheLRU = removePage(st.cacheLRU, pg)
	}
	st.where[pg] = levelLocal
	st.localLRU = append(st.localLRU, pg)
	st.balance()
	ws := st.fetching[pg]
	delete(st.fetching, pg)
	for _, w := range ws {
		w()
	}
}

func (st *icStore) touchLocal(pg *relation.Page) {
	st.localLRU = removePage(st.localLRU, pg)
	st.localLRU = append(st.localLRU, pg)
}

// balance demotes LRU pages: local → cache segment → disk.
func (st *icStore) balance() {
	for len(st.localLRU) > st.localCap {
		victim := st.localLRU[0]
		st.localLRU = st.localLRU[1:]
		st.where[victim] = levelCache
		st.cacheLRU = append(st.cacheLRU, victim)
		st.m.stats.CacheWrites++
		st.m.observe("machine.cache_bytes", float64(st.m.cfg.HW.PageSize))
		// The demotion occupies a cache port for the transfer duration
		// even though the simulation does not wait on it; the busy
		// timeline records the occupancy for the saturation report.
		d := time.Duration(float64(st.m.cfg.HW.PageSize) / st.m.cfg.HW.CacheBytesPerSec * float64(time.Second))
		st.m.observeBusy("machine.cache_busy_us", st.m.s.Now(), d)
		if st.m.tracing() {
			st.m.event(obs.EvCacheWrite, "cache", -1, -1, -1, st.m.cfg.HW.PageSize,
				"cache: page demoted from IC local memory")
		}
	}
	for len(st.cacheLRU) > st.cacheCap {
		victim := st.cacheLRU[0]
		st.cacheLRU = st.cacheLRU[1:]
		st.where[victim] = levelDisk
		st.m.stats.DiskWrites++
		st.m.observe("machine.disk_bytes", float64(st.m.cfg.HW.PageSize))
		if st.m.tracing() {
			st.m.event(obs.EvDiskWrite, "disk", -1, -1, -1, st.m.cfg.HW.PageSize,
				"disk: page demoted from the cache segment")
		}
		access := st.m.cfg.HW.Disk.AccessTime(st.m.cfg.HW.PageSize)
		finish := st.m.disk.Serve(access, nil)
		st.m.observeBusy("machine.disk_busy_us", finish-access, access)
	}
}

func removePage(list []*relation.Page, pg *relation.Page) []*relation.Page {
	for i, p := range list {
		if p == pg {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

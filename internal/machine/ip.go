package machine

import (
	"fmt"
	"time"

	"dfdbm/internal/fault"
	"dfdbm/internal/obs"
	"dfdbm/internal/query"
	"dfdbm/internal/relalg"
	"dfdbm/internal/relation"
)

// ip is one instruction processor. It executes instruction packets from
// its controlling IC, buffers result tuples internally (flushing full
// pages as result packets, and everything on a flush-when-done packet),
// and — for joins — runs the Section 4.2 broadcast protocol with an
// inner-relation-control (IRC) vector: it joins whatever inner pages
// reach it, ignores broadcasts when its buffer is full, and requests
// the pages it missed once it learns where the inner relation ends.
type ip struct {
	m  *Machine
	id int
	// failed marks a processor removed from service (requirement 5:
	// the machine survives an arbitrary number of disabled
	// processors). Failure takes effect at allocation boundaries: a
	// failed processor is never granted again and is dropped from the
	// pool when released.
	failed bool
	// crashed marks a processor killed by the fault plan: it stops
	// executing, buffering, and sending mid-whatever-it-was-doing,
	// abandoning its IRC state and buffered pages. Nobody is told —
	// the owning IC discovers the loss through its watchdog.
	crashed bool

	ic    *ic
	instr *minstr

	// busyTotal accumulates this processor's compute time, feeding the
	// per-IP utilization gauges.
	busyTotal time.Duration

	queue []*InstructionPacket
	busy  bool

	pgtor *relation.Paginator

	// outPages accumulates the in-flight work unit's finished result
	// pages when the resilient protocol is active: they ride to the IC
	// inside one atomic completion packet instead of streaming as
	// result packets, so a loss costs the whole unit (re-dispatched)
	// and never half of it.
	outPages []*relation.Page

	// Join state. join holds the reusable kernel state — the scratch
	// buffers plus, for equi-joins, the hash tables of inner pages this
	// processor has already met (the IRC-vector residency of Section
	// 4.2: broadcast inner pages stay useful between outer pages).
	join       *relalg.JoinState
	outer      *relation.Page
	outerNo    int
	irc        map[int]bool // IRC vector: inner page index → joined
	innerTotal int          // -1 until the last-page indication arrives
	innerBuf   []innerEntry
	waitingFor int // inner index requested and awaited, or -1
	execIdx    int // inner index being joined right now, or -1
}

type innerEntry struct {
	idx  int
	page *relation.Page
	last bool
}

// bind attaches the processor to an instruction.
func (p *ip) bind(c *ic, mi *minstr) {
	if len(p.queue) > 0 {
		p.m.fail(fmt.Errorf("IP %d rebound with %d packets queued", p.id, len(p.queue)))
	}
	p.ic = c
	p.instr = mi
	p.queue = nil
	p.busy = false
	pag, err := relation.NewPooledPaginator(mi.outPageSize, mi.outTupleLen, p.m.pool)
	if err != nil {
		p.m.fail(err)
		return
	}
	p.pgtor = pag
	p.outPages = nil
	p.join = nil
	p.outer = nil
	p.outerNo = -1
	p.irc = nil
	p.innerTotal = -1
	p.innerBuf = nil
	p.waitingFor = -1
	p.execIdx = -1
}

// receive accepts a non-broadcast instruction packet.
func (p *ip) receive(pkt *InstructionPacket) {
	if p.crashed {
		return // dead hardware swallows the packet
	}
	p.queue = append(p.queue, pkt)
	p.pump()
}

func (p *ip) pump() {
	if p.busy || len(p.queue) == 0 {
		return
	}
	pkt := p.queue[0]
	p.queue = p.queue[1:]
	p.exec(pkt)
}

func (p *ip) exec(pkt *InstructionPacket) {
	if p.instr == nil {
		p.m.fail(fmt.Errorf("IP %d executing with no instruction", p.id))
		return
	}
	if len(pkt.Pages) == 0 && pkt.FlushWhenDone {
		// Pure flush: drain the result buffer and report done.
		p.flushResults()
		p.sendDone(flushDonePage)
		return
	}
	switch query.OpKind(pkt.Opcode) {
	case query.OpRestrict, query.OpProject:
		p.execUnary(pkt)
	case query.OpJoin:
		p.execJoinOuter(pkt)
	default:
		p.m.fail(fmt.Errorf("IP %d: unsupported opcode %d", p.id, pkt.Opcode))
	}
}

// execUnary processes one data page of a restrict or project.
func (p *ip) execUnary(pkt *InstructionPacket) {
	pg := pkt.Pages[0]
	mi := p.instr
	var compute = p.m.cfg.HW.Proc.RestrictTime(pg.TupleCount())
	if mi.node.Kind == query.OpProject {
		compute = p.m.cfg.HW.Proc.ProjectTime(pg.TupleCount())
	}
	p.busy = true
	p.m.ipBusy += compute
	p.busyTotal += compute
	p.m.observeBusy("machine.ip_busy_us", p.m.s.Now(), compute)
	if p.m.spansOn() {
		now := p.m.s.Now()
		p.m.recordSpan(obs.SpanExec, mi.span, now, now+compute,
			fmt.Sprintf("IP%d", p.id), "exec", mi.q.id, mi.id, pkt.OuterPageNo)
		mi.span.PagesIn.Add(1)
	}
	direct := pkt.ICIDSender != p.ic.id // page was routed IP→IP
	p.m.s.After(compute, func() {
		if p.crashed {
			return
		}
		var err error
		switch mi.node.Kind {
		case query.OpRestrict:
			_, err = restrictPage(pg, mi, p.emit)
		case query.OpProject:
			_, err = projectPage(pg, mi, p.emit)
		}
		if err != nil {
			p.m.fail(err)
			return
		}
		p.busy = false
		if p.m.guarded() {
			// Results and the done indication travel together.
			p.sendCompletion(pkt.OuterPageNo, -1)
			p.pump()
			return
		}
		// Direct-routed operands flush eagerly: the controlling IC does
		// not track this processor's buffer for them, so tuples must
		// not linger past a flush packet that may already be queued.
		if pkt.FlushWhenDone || direct {
			p.flushResults()
		}
		if direct {
			p.sendDone(directDonePage)
		} else {
			p.sendDone(pkt.OuterPageNo)
		}
		p.pump()
	})
}

// execJoinOuter installs a new outer page (the packet may carry the
// first inner page too, per the paper's first instruction packet).
func (p *ip) execJoinOuter(pkt *InstructionPacket) {
	if p.m.spansOn() && p.instr.span != nil {
		p.instr.span.PagesIn.Add(1) // the installed outer page
	}
	p.outer = pkt.Pages[0]
	p.outerNo = pkt.OuterPageNo
	p.irc = map[int]bool{}
	// A re-dispatched outer page carries the inner indices whose join
	// steps the IC already accepted; seeding the IRC vector keeps the
	// retry from re-producing their result tuples.
	for _, i := range pkt.JoinedInner {
		p.irc[i] = true
	}
	p.waitingFor = -1
	if len(pkt.Pages) > 1 {
		if pkt.LastInner {
			p.innerTotal = pkt.InnerPageNo + 1
		}
		p.execPair(pkt.InnerPageNo, pkt.Pages[1])
		return
	}
	p.step()
}

// execPair joins the current outer page with one inner page.
func (p *ip) execPair(idx int, inner *relation.Page) {
	p.busy = true
	p.execIdx = idx
	if p.join == nil {
		p.join = relalg.NewJoinState(p.instr.boundJoin, &p.m.kstats)
	}
	// The simulated cost defaults to the paper's nested-loops n·m model
	// regardless of which kernel computes the answer (the kernels emit
	// identical results); HashJoinTiming opts into the O(n+m) model,
	// charging the build only when the inner page's table is not
	// already resident on this processor.
	var compute time.Duration
	if p.m.cfg.HashJoinTiming && p.join.Kernel() == relalg.KernelHash {
		compute = p.m.cfg.HW.Proc.HashJoinTime(p.outer.TupleCount(), inner.TupleCount(), !p.join.TableCached(inner))
	} else {
		compute = p.m.cfg.HW.Proc.JoinTime(p.outer.TupleCount(), inner.TupleCount())
	}
	p.m.ipBusy += compute
	p.busyTotal += compute
	p.m.observeBusy("machine.ip_busy_us", p.m.s.Now(), compute)
	if p.m.spansOn() {
		mi := p.instr
		now := p.m.s.Now()
		p.m.recordSpan(obs.SpanExec, mi.span, now, now+compute,
			fmt.Sprintf("IP%d", p.id), "join exec", mi.q.id, mi.id, idx)
		mi.span.PagesIn.Add(1)
	}
	p.m.s.After(compute, func() {
		mi := p.instr
		if mi == nil || p.crashed {
			return
		}
		if _, err := p.join.JoinPages(p.outer, inner, p.emit); err != nil {
			p.m.fail(err)
			return
		}
		p.irc[idx] = true
		p.busy = false
		p.execIdx = -1
		if p.m.guarded() {
			p.sendCompletion(p.outerNo, idx)
		}
		p.step()
	})
}

// step decides the idle join processor's next move: drain the inner
// buffer, request the next inner page it is missing, or — when its IRC
// vector shows every inner page joined — ask for a fresh outer page.
func (p *ip) step() {
	if p.busy || p.outer == nil || p.instr == nil {
		return
	}
	for len(p.innerBuf) > 0 {
		e := p.innerBuf[0]
		p.innerBuf = p.innerBuf[1:]
		if e.last {
			p.innerTotal = e.idx + 1
		}
		if p.irc[e.idx] {
			continue // joined meanwhile via a re-broadcast
		}
		p.waitingFor = -1
		p.execPair(e.idx, e.page)
		return
	}
	missing := p.firstMissing()
	if p.innerTotal >= 0 && missing >= p.innerTotal {
		// IRC vector satisfied: the outer page has met every inner
		// page. Zero it and request more outer work.
		finished := p.outerNo
		p.outer = nil
		p.outerNo = -1
		p.irc = nil
		p.waitingFor = -1
		if p.m.guarded() {
			// The request names the finished outer page so the IC can
			// tell a fresh request from a duplicated or stale one.
			p.sendCtrl(msgNeedOuter, finished)
			p.armOuterRetry(finished, 0)
			return
		}
		p.sendCtrl(msgNeedOuter, -1)
		return
	}
	if p.waitingFor == missing {
		return // request already outstanding
	}
	p.waitingFor = missing
	p.sendCtrl(msgNeedInner, missing)
	p.armInnerRetry(missing, 0)
}

// maxRequestRetries bounds how often an IP re-issues one control
// request; past it the IP goes quiet and the IC's watchdog takes over.
const maxRequestRetries = 16

// requestRetryDelay is the IP's control-request retransmission
// interval — well inside the IC's watchdog, so a lost request or
// broadcast is retried several times before anyone is suspected.
func (p *ip) requestRetryDelay() time.Duration {
	return p.m.cfg.WatchdogTimeout / 8
}

// armInnerRetry re-issues a need-inner request whose answer never
// arrived: the Section 4.2 missed-broadcast recovery path, driven here
// by genuine packet loss rather than a full buffer.
func (p *ip) armInnerRetry(idx, tries int) {
	if !p.m.guarded() || tries >= maxRequestRetries {
		return
	}
	mi := p.instr
	p.m.s.After(p.requestRetryDelay(), func() {
		if p.crashed || p.failed || p.instr != mi || p.busy || p.outer == nil || p.waitingFor != idx {
			return
		}
		p.sendCtrl(msgNeedInner, idx)
		p.armInnerRetry(idx, tries+1)
	})
}

// armOuterRetry re-issues a need-outer request that went unanswered.
func (p *ip) armOuterRetry(finished, tries int) {
	if tries >= maxRequestRetries {
		return
	}
	mi := p.instr
	p.m.s.After(p.requestRetryDelay(), func() {
		if p.crashed || p.failed || p.instr != mi || p.busy || p.outer != nil || len(p.queue) > 0 {
			return
		}
		p.sendCtrl(msgNeedOuter, finished)
		p.armOuterRetry(finished, tries+1)
	})
}

// firstMissing returns the smallest inner page index not yet joined.
func (p *ip) firstMissing() int {
	for i := 0; ; i++ {
		if !p.irc[i] {
			return i
		}
	}
}

// onBroadcast handles an inner-page broadcast (or the last-page
// marker). Broadcasts for other queries are ignored by the Query ID
// check; a busy processor buffers the page if it has room and otherwise
// drops it, relying on the recovery pass.
func (p *ip) onBroadcast(pkt *InstructionPacket) {
	if p.crashed || p.instr == nil || pkt.QueryID != p.instr.q.id {
		return
	}
	if len(pkt.Pages) == 0 {
		// Last-page marker: InnerPageNo holds the page count.
		if pkt.LastInner && p.innerTotal < 0 {
			p.innerTotal = pkt.InnerPageNo
		}
		p.waitingFor = -1
		p.step()
		return
	}
	idx := pkt.InnerPageNo
	if pkt.LastInner {
		p.innerTotal = idx + 1
	}
	if p.outer == nil {
		return // not joining right now
	}
	if p.irc[idx] || p.buffered(idx) || idx == p.execIdx {
		return // already joined, buffered, or being joined right now
	}
	if p.busy {
		if len(p.innerBuf) < p.m.cfg.IPBufferPages {
			p.innerBuf = append(p.innerBuf, innerEntry{idx: idx, page: pkt.Pages[0], last: pkt.LastInner})
		} else {
			// No room: ignore the page; it will be re-requested once
			// the IRC vector shows it missing.
			p.m.stats.BroadcastsIgnored++
			if p.m.tracing() {
				p.m.event(obs.EvBcastIgnored, fmt.Sprintf("IP%d", p.id), p.instr.q.id, p.instr.id, idx, 0,
					"IP%d: ignored broadcast of inner page %d (buffer full)", p.id, idx)
			}
			p.waitingFor = -1
		}
		return
	}
	p.waitingFor = -1
	p.execPair(idx, pkt.Pages[0])
}

func (p *ip) buffered(idx int) bool {
	for _, e := range p.innerBuf {
		if e.idx == idx {
			return true
		}
	}
	return false
}

// emit receives one encoded result tuple from an operator kernel.
func (p *ip) emit(raw []byte) error {
	full, err := p.pgtor.Add(raw)
	if err != nil {
		return err
	}
	if full != nil {
		if p.m.guarded() {
			p.outPages = append(p.outPages, full)
		} else {
			p.sendResult(full)
		}
	}
	return nil
}

// takeResults drains the work unit's buffered result pages, partial
// page included, for shipment inside a completion packet.
func (p *ip) takeResults() []*relation.Page {
	if last := p.pgtor.Flush(); last != nil {
		p.outPages = append(p.outPages, last)
	}
	pages := p.outPages
	p.outPages = nil
	return pages
}

// sendCompletion reports one finished work unit to the controlling IC:
// the result pages and the done indication ride one atomic packet.
func (p *ip) sendCompletion(outerNo, innerNo int) {
	mi := p.instr
	c := p.ic
	pkt := &CompletionPacket{ICID: c.id, IPID: p.id, QueryID: mi.q.id,
		OuterPageNo: outerNo, InnerPageNo: innerNo, Pages: p.takeResults()}
	size := pkt.WireSize()
	p.m.stats.ControlPackets++
	if p.m.tracing() {
		p.m.event(obs.EvControl, fmt.Sprintf("IP%d", p.id), mi.q.id, mi.id, outerNo, size,
			"IP%d -> IC%d: completion (outer %d, inner %d, %d result pages)",
			p.id, c.id, outerNo, innerNo, len(pkt.Pages))
	}
	p.m.lossyOuter(fault.ClassCompletion, size, func() { c.onCompletion(p, pkt) })
}

// flushResults drains the partial result page, if any.
func (p *ip) flushResults() {
	if last := p.pgtor.Flush(); last != nil {
		p.sendResult(last)
	}
}

// sendResult routes one result page: to the project's own IC for
// duplicate elimination, to the host at the root, directly to a
// consumer processor under DirectRouting, or to the consumer's IC.
func (p *ip) sendResult(pg *relation.Page) {
	mi := p.instr
	m := p.m

	if mi.node.Kind == query.OpProject {
		own := p.ic
		m.stats.ResultPackets++
		rp := &ResultPacket{ICID: own.id, QueryID: mi.q.id, Relation: mi.node.Label(), Page: pg}
		if m.tracing() {
			m.event(obs.EvResult, fmt.Sprintf("IP%d", p.id), mi.q.id, mi.id, -1, rp.WireSize(),
				"IP%d -> IC%d: project result page of %s", p.id, own.id, mi.node.Label())
		}
		m.sendOuter(rp.WireSize(), func() { own.onProjectResult(pg) })
		return
	}
	if mi.destIC == nil {
		q := mi.q
		m.stats.ResultPackets++
		m.noteResultOut(mi, pg.TupleCount())
		rp := &ResultPacket{ICID: -1, QueryID: mi.q.id, Relation: mi.node.Label(), Page: pg}
		if m.tracing() {
			m.event(obs.EvResult, fmt.Sprintf("IP%d", p.id), mi.q.id, mi.id, -1, rp.WireSize(),
				"IP%d -> host: result page of %s", p.id, mi.node.Label())
		}
		m.sendOuter(rp.WireSize(), func() { m.hostDeliver(q, pg) })
		return
	}
	if m.cfg.DirectRouting && mi.destInstr != nil && isUnary(mi.destInstr.node.Kind) {
		if target := mi.destIC.pickIP(); target != nil {
			mi.directSent++
			m.stats.DirectRoutedPages++
			m.stats.InstructionPackets++
			m.noteResultOut(mi, pg.TupleCount())
			dest := mi.destInstr
			pkt := &InstructionPacket{
				IPID:           target.id,
				QueryID:        mi.q.id,
				ICIDSender:     p.ic.id, // differs from the target's IC: marks direct routing
				ICIDDest:       dest.ic.destID(),
				Opcode:         dest.opcode(),
				ResultRelation: dest.node.Label(),
				ResultTupleLen: dest.outTupleLen,
				OuterPageNo:    -1,
				Pages:          []*relation.Page{pg},
			}
			if m.tracing() {
				m.event(obs.EvResult, fmt.Sprintf("IP%d", p.id), mi.q.id, mi.id, -1, pkt.WireSize(),
					"IP%d -> IP%d: direct result page of %s", p.id, target.id, mi.node.Label())
			}
			m.sendOuter(pkt.WireSize(), func() { target.receive(pkt) })
			return
		}
	}
	dest, input := mi.destIC, mi.destInput
	m.stats.ResultPackets++
	m.noteResultOut(mi, pg.TupleCount())
	rp := &ResultPacket{ICID: dest.id, QueryID: mi.q.id, Relation: mi.node.Label(), Page: pg}
	if m.tracing() {
		m.event(obs.EvResult, fmt.Sprintf("IP%d", p.id), mi.q.id, mi.id, -1, rp.WireSize(),
			"IP%d -> IC%d: result page of %s", p.id, dest.id, mi.node.Label())
	}
	m.sendOuter(rp.WireSize(), func() { dest.receiveOperand(input, pg) })
}

func isUnary(k query.OpKind) bool {
	return k == query.OpRestrict || k == query.OpProject
}

// pickIP returns one of the IC's live processors for direct routing
// (round-robin over unreleased slots), or nil when it has none.
func (c *ic) pickIP() *ip {
	if c.cur == nil || c.finished {
		return nil
	}
	n := len(c.slots)
	if n == 0 {
		return nil
	}
	for i := 0; i < n; i++ {
		s := c.slots[(c.rrNext+i)%n]
		if !s.released {
			c.rrNext = (c.rrNext + i + 1) % n
			return s.p
		}
	}
	return nil
}

func (p *ip) sendDone(pageNo int) {
	p.sendCtrl(msgDone, pageNo)
}

func (p *ip) sendCtrl(msg controlMsg, pageNo int) {
	if p.crashed {
		return
	}
	c := p.ic
	pkt := &ControlPacket{ICID: c.id, IPID: p.id, QueryID: p.instr.q.id, Message: msg, PageNo: pageNo}
	size := pkt.WireSize()
	if p.m.tracing() {
		comp := fmt.Sprintf("IP%d", p.id)
		switch msg {
		case msgNeedInner:
			p.m.event(obs.EvControl, comp, p.instr.q.id, p.instr.id, pageNo, size,
				"IP%d -> IC%d: need inner page %d", p.id, c.id, pageNo)
		case msgNeedOuter:
			p.m.event(obs.EvControl, comp, p.instr.q.id, p.instr.id, -1, size,
				"IP%d -> IC%d: outer done, need outer", p.id, c.id)
		case msgDone:
			p.m.event(obs.EvControl, comp, p.instr.q.id, p.instr.id, pageNo, size,
				"IP%d -> IC%d: done (page %d)", p.id, c.id, pageNo)
		}
	}
	p.m.stats.ControlPackets++
	p.m.lossyOuter(fault.ClassControl, size, func() { c.onControl(p, pkt) })
}

package machine

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceRecordsProtocol(t *testing.T) {
	cat, qs := testDB(t, 0.05)
	var buf bytes.Buffer
	cfg := Config{HW: smallHW(), Trace: &buf}
	m, err := New(cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(qs[2]); err != nil { // 1 join, 2 restricts
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	trace := buf.String()
	for _, want := range []string{
		"MC: admit query 0",
		"assign restrict",
		"assign join",
		"MC: grant IP",
		"-> IP",
		"done",
		"instruction join of query 0 complete",
		"MC: query 0 finished",
	} {
		if !strings.Contains(trace, want) {
			t.Errorf("trace missing %q", want)
		}
	}
	// Every line carries a time prefix.
	for _, line := range strings.Split(strings.TrimSpace(trace), "\n") {
		if !strings.HasPrefix(line, "[") {
			t.Fatalf("untimed trace line: %q", line)
		}
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	cat, qs := testDB(t, 0.02)
	got, _ := runOne(t, cat, qs[0], Config{HW: smallHW()})
	if got == nil {
		t.Fatal("no result")
	}
	// Nothing to assert beyond "no panic with nil Trace"; the tracef
	// nil-check is the point.
}

package machine

import (
	"testing"

	"dfdbm/internal/catalog"
	"dfdbm/internal/hw"
	"dfdbm/internal/query"
	"dfdbm/internal/relation"
	"dfdbm/internal/workload"
)

// smallHW returns the 1979 hardware with 2 KB operand pages, matching
// the reduced-scale test database so that multi-page operands (and the
// broadcast-join protocol) are exercised.
func smallHW() hw.Config {
	cfg := hw.Default1979()
	cfg.PageSize = 2048
	return cfg
}

func testDB(t testing.TB, scale float64) (*catalog.Catalog, []*query.Tree) {
	t.Helper()
	cat, qs, err := workload.Build(workload.Config{Seed: 9, Scale: scale, PageSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	return cat, qs
}

// runOne executes a single query on a fresh machine and returns its
// result relation plus the run's results.
func runOne(t testing.TB, cat *catalog.Catalog, q *query.Tree, cfg Config) (*relation.Relation, *Results) {
	t.Helper()
	m, err := New(cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(q); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerQuery) != 1 {
		t.Fatalf("got %d query results, want 1", len(res.PerQuery))
	}
	return res.PerQuery[0].Relation, res
}

// TestMachineMatchesSerialReference is the machine's central
// correctness property: every benchmark query computes exactly what the
// serial executor computes, through the full MC/IC/IP packet protocol.
func TestMachineMatchesSerialReference(t *testing.T) {
	cat, qs := testDB(t, 0.05)
	for i, q := range qs {
		want, err := query.ExecuteSerial(cat, q, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, res := runOne(t, cat, q, Config{HW: smallHW()})
		if !got.EqualMultiset(want) {
			t.Errorf("query %d: machine %d tuples, serial %d",
				i+1, got.Cardinality(), want.Cardinality())
		}
		if res.Elapsed <= 0 {
			t.Errorf("query %d: no elapsed time", i+1)
		}
	}
}

func TestTinyIPBuffersStillCorrect(t *testing.T) {
	// One-page buffers force broadcast drops and exercise the
	// missed-page recovery path of Section 4.2.
	cat, qs := testDB(t, 0.1)
	q := qs[2] // 1 join, 2 restricts
	want, err := query.ExecuteSerial(cat, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, res := runOne(t, cat, q, Config{HW: smallHW(), IPBufferPages: 1, IPsPerInstruction: 6})
	if !got.EqualMultiset(want) {
		t.Fatalf("tiny buffers broke the join: %d tuples, want %d",
			got.Cardinality(), want.Cardinality())
	}
	if res.Stats.Broadcasts == 0 {
		t.Error("join executed without broadcasts")
	}
}

func TestBroadcastRecoveryHappens(t *testing.T) {
	cat, qs := testDB(t, 0.5)
	q := qs[2]
	want, err := query.ExecuteSerial(cat, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, res := runOne(t, cat, q, Config{HW: smallHW(), IPs: 6, IPsPerInstruction: 6, IPBufferPages: 1})
	if res.Stats.BroadcastsIgnored == 0 {
		t.Error("no broadcast was dropped despite one-page buffers at this scale")
	}
	if res.Stats.RecoveryRequests == 0 {
		t.Error("broadcasts were dropped but no recovery request was made")
	}
	if !got.EqualMultiset(want) {
		t.Errorf("dropped broadcasts corrupted the join: %d tuples, want %d",
			got.Cardinality(), want.Cardinality())
	}
}

func TestScarceIPs(t *testing.T) {
	// Fewer processors than instructions: allocation must still make
	// progress and produce correct answers.
	cat, qs := testDB(t, 0.05)
	q := qs[7] // 3 joins, 4 restricts = 7 instructions
	want, err := query.ExecuteSerial(cat, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := runOne(t, cat, q, Config{HW: smallHW(), IPs: 2, IPsPerInstruction: 1})
	if !got.EqualMultiset(want) {
		t.Errorf("scarce IPs: %d tuples, want %d", got.Cardinality(), want.Cardinality())
	}
}

func TestTinyICMemorySpillsToHierarchy(t *testing.T) {
	cat, qs := testDB(t, 0.2)
	q := qs[5] // 2 joins, 3 restricts
	want, err := query.ExecuteSerial(cat, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, res := runOne(t, cat, q, Config{HW: smallHW(), ICLocalPages: 2, ICCachePages: 4})
	if !got.EqualMultiset(want) {
		t.Fatalf("tiny IC memory broke the query: %d tuples, want %d",
			got.Cardinality(), want.Cardinality())
	}
	if res.Stats.CacheWrites == 0 {
		t.Error("no pages moved to the disk-cache level despite tiny local memory")
	}
	if res.Stats.DiskWrites == 0 {
		t.Error("no pages spilled to mass storage despite tiny cache segment")
	}
}

func TestQueryTooLargeForICs(t *testing.T) {
	cat, qs := testDB(t, 0.02)
	m, err := New(cat, Config{ICs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(qs[9]); err == nil { // 11 instructions
		t.Error("oversized query accepted")
	}
}

func TestMultipleQueriesConcurrently(t *testing.T) {
	cat, qs := testDB(t, 0.05)
	m, err := New(cat, Config{HW: smallHW(), ICs: 16, IPs: 12})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs[:5] {
		if err := m.Submit(q); err != nil {
			t.Fatal(err)
		}
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerQuery) != 5 {
		t.Fatalf("finished %d queries, want 5", len(res.PerQuery))
	}
	for i, q := range qs[:5] {
		want, err := query.ExecuteSerial(cat, q, 0)
		if err != nil {
			t.Fatal(err)
		}
		var got *relation.Relation
		for _, qr := range res.PerQuery {
			if qr.QueryID == i {
				got = qr.Relation
			}
		}
		if got == nil || !got.EqualMultiset(want) {
			t.Errorf("query %d wrong under concurrency", i+1)
		}
	}
	// Read-only queries must overlap: at least one starts before
	// another finishes.
	overlap := false
	for _, a := range res.PerQuery {
		for _, b := range res.PerQuery {
			if a.QueryID != b.QueryID && a.Started < b.Finished && b.Started < a.Finished {
				overlap = true
			}
		}
	}
	if !overlap {
		t.Error("read-only queries never overlapped")
	}
}

func TestConcurrencyControlSerializesConflicts(t *testing.T) {
	cat, _ := testDB(t, 0.05)
	m, err := New(cat, Config{HW: smallHW()})
	if err != nil {
		t.Fatal(err)
	}
	reader, err := query.Bind(query.MustParse(`restrict(r14, val < 500)`), cat)
	if err != nil {
		t.Fatal(err)
	}
	writer, err := query.Bind(query.MustParse(`delete(r14, val < 100)`), cat)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(reader); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(writer); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.QueriesDelayedByConflict == 0 {
		t.Error("conflicting writer was never delayed")
	}
	var rd, wr QueryResult
	for _, qr := range res.PerQuery {
		if qr.QueryID == 0 {
			rd = qr
		} else {
			wr = qr
		}
	}
	if wr.Started < rd.Finished {
		t.Errorf("writer started at %v before reader finished at %v", wr.Started, rd.Finished)
	}
}

func TestAppendAndDeleteRoots(t *testing.T) {
	cat, _ := testDB(t, 0.05)
	sink := relation.MustNew("sink_rel", workload.PaperSchema(), 2048)
	cat.Put(sink)

	app, err := query.Bind(query.MustParse(`append(sink_rel, restrict(r14, val < 500))`), cat)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := runOne(t, cat, app, Config{HW: smallHW()})
	if got.Name() != "sink_rel" || sink.Cardinality() == 0 {
		t.Errorf("append produced %q with %d tuples", got.Name(), sink.Cardinality())
	}

	r14, _ := cat.Get("r14")
	before := r14.Cardinality()
	del, err := query.Bind(query.MustParse(`delete(r14, val < 100)`), cat)
	if err != nil {
		t.Fatal(err)
	}
	got, _ = runOne(t, cat, del, Config{HW: smallHW()})
	if got.Cardinality() >= before {
		t.Error("delete removed nothing")
	}
}

func TestProjectThroughMachine(t *testing.T) {
	cat, _ := testDB(t, 0.1)
	q, err := query.Bind(query.MustParse(`project(restrict(r3, val < 300), [k1, k2])`), cat)
	if err != nil {
		t.Fatal(err)
	}
	want, err := query.ExecuteSerial(cat, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := runOne(t, cat, q, Config{HW: smallHW()})
	if !got.EqualMultiset(want) {
		t.Errorf("project gave %d tuples, want %d", got.Cardinality(), want.Cardinality())
	}
}

func TestDirectRoutingCorrectAndCheaper(t *testing.T) {
	cat, qs := testDB(t, 0.1)
	// A join feeding... benchmark queries have joins consuming
	// restricts; direct routing applies to restrict-consumer edges, so
	// use a query with a restrict above a restrict.
	q, err := query.Bind(query.MustParse(
		`restrict(restrict(r2, val < 400), k1 < 50)`), cat)
	if err != nil {
		t.Fatal(err)
	}
	want, err := query.ExecuteSerial(cat, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	gotPlain, resPlain := runOne(t, cat, q, Config{HW: smallHW()})
	gotDirect, resDirect := runOne(t, cat, q, Config{HW: smallHW(), DirectRouting: true})
	if !gotPlain.EqualMultiset(want) || !gotDirect.EqualMultiset(want) {
		t.Fatalf("direct-routing changed answers: plain %d, direct %d, want %d",
			gotPlain.Cardinality(), gotDirect.Cardinality(), want.Cardinality())
	}
	if resDirect.Stats.DirectRoutedPages == 0 {
		t.Error("direct routing never engaged")
	}
	if resDirect.Stats.OuterRingBytes >= resPlain.Stats.OuterRingBytes {
		t.Errorf("direct routing did not reduce outer-ring traffic: %d vs %d",
			resDirect.Stats.OuterRingBytes, resPlain.Stats.OuterRingBytes)
	}
	_ = qs
}

func TestStatsPopulated(t *testing.T) {
	cat, qs := testDB(t, 0.05)
	_, res := runOne(t, cat, qs[2], Config{HW: smallHW()})
	s := res.Stats
	if s.InstructionPackets == 0 || s.ResultPackets == 0 || s.ControlPackets == 0 {
		t.Errorf("packet stats empty: %+v", s)
	}
	if s.OuterRingBytes == 0 || s.InnerRingBytes == 0 {
		t.Errorf("ring stats empty: %+v", s)
	}
	if s.DiskReads == 0 {
		t.Error("no disk reads for leaf operands")
	}
	if res.OuterRingUtilization <= 0 || res.OuterRingUtilization > 1 {
		t.Errorf("outer ring utilization = %g", res.OuterRingUtilization)
	}
	if res.IPUtilization <= 0 || res.IPUtilization > 1 {
		t.Errorf("IP utilization = %g", res.IPUtilization)
	}
	if res.OuterRingMbps() <= 0 {
		t.Error("no outer ring bandwidth")
	}
}

func TestDeterministicRuns(t *testing.T) {
	cat, qs := testDB(t, 0.05)
	_, a := runOne(t, cat, qs[5], Config{HW: smallHW()})
	_, b := runOne(t, cat, qs[5], Config{HW: smallHW()})
	// The page-pool counters ride on sync.Pool, whose retention is
	// GC-dependent: they are host-side allocation behaviour, never
	// simulated behaviour (see Config.NoPagePool), so determinism is
	// asserted on everything else.
	a.Stats.PoolHits, a.Stats.PoolMisses, a.Stats.PagesRecycled = 0, 0, 0
	b.Stats.PoolHits, b.Stats.PoolMisses, b.Stats.PagesRecycled = 0, 0, 0
	if a.Elapsed != b.Elapsed || a.Stats != b.Stats {
		t.Errorf("identical runs differ:\n%+v\n%+v", a.Stats, b.Stats)
	}
}

func TestBareScanQuery(t *testing.T) {
	cat, _ := testDB(t, 0.02)
	q, err := query.Bind(query.MustParse("r15"), cat)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := runOne(t, cat, q, Config{HW: smallHW()})
	want, _ := cat.Get("r15")
	if !got.EqualMultiset(want) {
		t.Error("bare scan wrong through machine")
	}
}

func TestEmptyResultThroughMachine(t *testing.T) {
	cat, _ := testDB(t, 0.05)
	q, err := query.Bind(query.MustParse(
		`join(restrict(r1, val < 0), restrict(r2, val < 500), k1 = k1)`), cat)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := runOne(t, cat, q, Config{HW: smallHW()})
	if got.Cardinality() != 0 {
		t.Errorf("empty join gave %d tuples", got.Cardinality())
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(catalog.New(), Config{ICs: -1}); err == nil {
		t.Skip("negative IC count defaults; acceptable")
	}
}

package machine

import (
	"testing"

	"dfdbm/internal/catalog"
	"dfdbm/internal/relation"
)

// storeFixture builds a machine (for its sim clock, disk station, and
// stats) plus a store with the given level capacities.
func storeFixture(t *testing.T, localCap, cacheCap int) (*Machine, *icStore) {
	t.Helper()
	m, err := New(catalog.New(), Config{HW: smallHW()})
	if err != nil {
		t.Fatal(err)
	}
	return m, newICStore(newIC(m, 0), localCap, cacheCap)
}

func pageN(t *testing.T, n int) []*relation.Page {
	t.Helper()
	out := make([]*relation.Page, n)
	for i := range out {
		out[i] = relation.MustNewPage(1000, 100)
	}
	return out
}

func TestStoreLocalHitIsFree(t *testing.T) {
	m, st := storeFixture(t, 4, 8)
	pg := pageN(t, 1)[0]
	st.put(pg)
	done := false
	st.get(pg, func() { done = true })
	m.s.Run()
	if !done {
		t.Fatal("get never completed")
	}
	if m.stats.CacheReads != 0 || m.stats.DiskReads != 0 {
		t.Errorf("local hit touched lower levels: %+v", m.stats)
	}
}

func TestStoreDemotionCascade(t *testing.T) {
	m, st := storeFixture(t, 2, 2)
	pgs := pageN(t, 6)
	for _, pg := range pgs {
		st.put(pg)
	}
	m.s.Run()
	// 6 puts through local(2): 4 demoted to cache; cache(2) overflows:
	// 2 written to disk.
	if m.stats.CacheWrites != 4 {
		t.Errorf("CacheWrites = %d, want 4", m.stats.CacheWrites)
	}
	if m.stats.DiskWrites != 2 {
		t.Errorf("DiskWrites = %d, want 2", m.stats.DiskWrites)
	}
	// The oldest pages are the ones on disk (LRU).
	if st.where[pgs[0]] != levelDisk || st.where[pgs[1]] != levelDisk {
		t.Errorf("oldest pages not on disk: %v, %v", st.where[pgs[0]], st.where[pgs[1]])
	}
	if st.where[pgs[5]] != levelLocal {
		t.Errorf("newest page not local: %v", st.where[pgs[5]])
	}
}

func TestStoreCachePromotion(t *testing.T) {
	m, st := storeFixture(t, 1, 4)
	pgs := pageN(t, 2)
	st.put(pgs[0])
	st.put(pgs[1]) // demotes pgs[0] to cache
	if st.where[pgs[0]] != levelCache {
		t.Fatalf("precondition: pgs[0] at %v", st.where[pgs[0]])
	}
	var at int64
	st.get(pgs[0], func() { at = int64(m.s.Now()) })
	m.s.Run()
	if at == 0 {
		t.Fatal("cache get took no time or never ran")
	}
	if m.stats.CacheReads != 1 {
		t.Errorf("CacheReads = %d, want 1", m.stats.CacheReads)
	}
	if st.where[pgs[0]] != levelLocal {
		t.Errorf("page not promoted to local after get: %v", st.where[pgs[0]])
	}
}

func TestStoreDiskReadUsesDiskStation(t *testing.T) {
	m, st := storeFixture(t, 4, 4)
	pg := pageN(t, 1)[0]
	st.addLeaf(pg)
	done := false
	st.get(pg, func() { done = true })
	end := m.s.Run()
	if !done {
		t.Fatal("disk get never completed")
	}
	if m.stats.DiskReads != 1 {
		t.Errorf("DiskReads = %d, want 1", m.stats.DiskReads)
	}
	if end <= 0 {
		t.Error("disk read took no simulated time")
	}
	if m.disk.BusyTime() <= 0 {
		t.Error("disk station unused")
	}
}

func TestStoreCoalescesConcurrentFetches(t *testing.T) {
	m, st := storeFixture(t, 4, 4)
	pg := pageN(t, 1)[0]
	st.addLeaf(pg)
	hits := 0
	for i := 0; i < 3; i++ {
		st.get(pg, func() { hits++ })
	}
	m.s.Run()
	if hits != 3 {
		t.Fatalf("%d of 3 waiters called", hits)
	}
	if m.stats.DiskReads != 1 {
		t.Errorf("DiskReads = %d, want 1 (coalesced)", m.stats.DiskReads)
	}
}

func TestStorePrefetchIdempotent(t *testing.T) {
	m, st := storeFixture(t, 4, 4)
	pg := pageN(t, 1)[0]
	st.addLeaf(pg)
	st.prefetch(pg)
	st.prefetch(pg) // in flight: no second disk read
	m.s.Run()
	if m.stats.DiskReads != 1 {
		t.Errorf("DiskReads = %d, want 1", m.stats.DiskReads)
	}
	st.prefetch(pg) // already local: no-op
	m.s.Run()
	if m.stats.DiskReads != 1 {
		t.Errorf("DiskReads after local prefetch = %d, want 1", m.stats.DiskReads)
	}
}

func TestStoreDrop(t *testing.T) {
	m, st := storeFixture(t, 2, 2)
	pgs := pageN(t, 2)
	st.put(pgs[0])
	st.put(pgs[1])
	st.drop(pgs[0])
	if _, ok := st.where[pgs[0]]; ok {
		t.Error("dropped page still tracked")
	}
	// The freed slot means another put causes no demotion.
	st.put(pageN(t, 1)[0])
	m.s.Run()
	if m.stats.CacheWrites != 0 {
		t.Errorf("CacheWrites = %d after drop made room, want 0", m.stats.CacheWrites)
	}
}

func TestStoreUnknownPageTreatedAsArrived(t *testing.T) {
	m, st := storeFixture(t, 4, 4)
	pg := pageN(t, 1)[0]
	done := false
	st.get(pg, func() { done = true })
	m.s.Run()
	if !done || st.where[pg] != levelLocal {
		t.Error("unknown page not adopted into local memory")
	}
}

// Package machine is an executable model of the paper's Section 4
// design: a ring-based data-flow database machine with a master
// controller (MC), instruction controllers (ICs) on a low-bandwidth
// inner ring, instruction processors (IPs) on a high-bandwidth outer
// ring, a three-level storage hierarchy (IC local memory, multiport
// disk cache, mass storage), and the packet protocol of Figures
// 4.3–4.5 — including the broadcast nested-loops join with per-IP
// inner-relation-control (IRC) vectors and missed-broadcast recovery.
//
// The machine executes real queries on real pages under virtual time:
// the discrete-event kernel advances a clock while IPs run the actual
// operator kernels, so a simulation yields both the answer (checked
// against the serial executor) and the timing/traffic measurements of
// the design study.
package machine

import (
	"encoding/binary"
	"fmt"

	"dfdbm/internal/relation"
)

// Packet kinds on the rings.
type packetKind uint8

const (
	pktInstruction packetKind = iota + 1
	pktResult
	pktControl
	pktCompletion
)

// Control message codes (the Message field of Figure 4.5).
type controlMsg uint8

const (
	// msgDone: the IP finished the packet and is ready for more work.
	msgDone controlMsg = iota + 1
	// msgNeedInner: the IP requests inner-relation page PageNo.
	msgNeedInner
	// msgNeedOuter: the IP finished its outer page against every inner
	// page and wants an undistributed outer page.
	msgNeedOuter
)

// InstructionPacket is the Figure 4.3 packet: the unit an IC sends to an
// IP over the outer ring.
type InstructionPacket struct {
	IPID          int
	QueryID       int
	ICIDSender    int
	ICIDDest      int
	FlushWhenDone bool
	Opcode        uint8 // query.OpKind value
	// ResultRelation describes the result operand.
	ResultRelation string
	ResultTupleLen int
	// Broadcast marks a join inner-page broadcast (delivered to every
	// IP working on QueryID); InnerPageNo identifies the page and
	// LastInner marks the final page of the inner relation.
	Broadcast   bool
	InnerPageNo int
	LastInner   bool
	// OuterPageNo tags the outer operand for join bookkeeping.
	OuterPageNo int
	// JoinedInner seeds the receiving IP's IRC vector with inner pages
	// already joined against this outer page. It is non-empty only when
	// a fault plan re-dispatches a partially-joined outer page to a
	// replacement processor (the regenerated IRC of the recovery
	// protocol).
	JoinedInner []int
	// Pages are the source-operand data pages (Figure 4.3 allows one
	// per source operand; restrict packets carry one, join packets up
	// to two, flush packets zero).
	Pages []*relation.Page
}

// ResultPacket is the Figure 4.4 packet: result pages travelling from
// an IP to the IC controlling the consuming instruction.
type ResultPacket struct {
	ICID     int
	QueryID  int
	Relation string
	Page     *relation.Page
}

// ControlPacket is the Figure 4.5 packet.
type ControlPacket struct {
	ICID    int
	IPID    int
	QueryID int
	Message controlMsg
	PageNo  int
}

const packetMagic uint32 = 0x0DF1_0479

// WireSize returns the bytes the packet occupies on the ring: the
// fixed header fields of Figure 4.3 plus the wire size of each data
// page. (Marshal produces exactly this many bytes.)
func (p *InstructionPacket) WireSize() int {
	n := instrFixedHeader + len(p.ResultRelation) + 4*len(p.JoinedInner)
	for _, pg := range p.Pages {
		n += 4 + pg.WireSize()
	}
	return n
}

// instrFixedHeader covers magic (4), kind (1), eight numeric fields
// (32), three flags plus the opcode (4), a reserved word (4), the
// relation-name length and pad (2), and the IRC-seed entry count (2).
const instrFixedHeader = 4 + 1 + 4*8 + 4 + 4 + 2 + 2

// Marshal encodes the packet.
func (p *InstructionPacket) Marshal() []byte {
	out := make([]byte, 0, p.WireSize())
	out = binary.LittleEndian.AppendUint32(out, packetMagic)
	out = append(out, byte(pktInstruction))
	for _, v := range []int{p.IPID, p.QueryID, p.ICIDSender, p.ICIDDest,
		p.InnerPageNo, p.OuterPageNo, p.ResultTupleLen, len(p.Pages)} {
		out = binary.LittleEndian.AppendUint32(out, uint32(int32(v)))
	}
	out = append(out, boolByte(p.FlushWhenDone), boolByte(p.Broadcast), boolByte(p.LastInner))
	out = append(out, p.Opcode)
	out = binary.LittleEndian.AppendUint32(out, 0) // reserved
	out = append(out, byte(len(p.ResultRelation)), 0)
	out = append(out, p.ResultRelation...)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(p.JoinedInner)))
	for _, idx := range p.JoinedInner {
		out = binary.LittleEndian.AppendUint32(out, uint32(int32(idx)))
	}
	for _, pg := range p.Pages {
		blob := pg.Marshal()
		out = binary.LittleEndian.AppendUint32(out, uint32(len(blob)))
		out = append(out, blob...)
	}
	return out
}

// UnmarshalInstruction decodes an instruction packet.
func UnmarshalInstruction(b []byte) (*InstructionPacket, error) {
	if len(b) < instrFixedHeader {
		return nil, fmt.Errorf("machine: instruction packet too short (%d bytes)", len(b))
	}
	if binary.LittleEndian.Uint32(b) != packetMagic || b[4] != byte(pktInstruction) {
		return nil, fmt.Errorf("machine: not an instruction packet")
	}
	p := &InstructionPacket{}
	off := 5
	ints := make([]int, 8)
	for i := range ints {
		ints[i] = int(int32(binary.LittleEndian.Uint32(b[off:])))
		off += 4
	}
	p.IPID, p.QueryID, p.ICIDSender, p.ICIDDest = ints[0], ints[1], ints[2], ints[3]
	p.InnerPageNo, p.OuterPageNo, p.ResultTupleLen = ints[4], ints[5], ints[6]
	nPages := ints[7]
	p.FlushWhenDone = b[off] != 0
	p.Broadcast = b[off+1] != 0
	p.LastInner = b[off+2] != 0
	p.Opcode = b[off+3]
	off += 4 + 4 // flags+opcode, reserved
	nameLen := int(b[off])
	off += 2
	if off+nameLen > len(b) {
		return nil, fmt.Errorf("machine: truncated relation name")
	}
	p.ResultRelation = string(b[off : off+nameLen])
	off += nameLen
	if off+2 > len(b) {
		return nil, fmt.Errorf("machine: truncated IRC seed count")
	}
	nJoined := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	if off+4*nJoined > len(b) {
		return nil, fmt.Errorf("machine: truncated IRC seed")
	}
	for i := 0; i < nJoined; i++ {
		p.JoinedInner = append(p.JoinedInner, int(int32(binary.LittleEndian.Uint32(b[off:]))))
		off += 4
	}
	for i := 0; i < nPages; i++ {
		if off+4 > len(b) {
			return nil, fmt.Errorf("machine: truncated page length")
		}
		n := int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		if off+n > len(b) {
			return nil, fmt.Errorf("machine: truncated page payload")
		}
		pg, err := relation.UnmarshalPage(b[off : off+n])
		if err != nil {
			return nil, err
		}
		off += n
		p.Pages = append(p.Pages, pg)
	}
	if off != len(b) {
		return nil, fmt.Errorf("machine: %d trailing bytes in instruction packet", len(b)-off)
	}
	return p, nil
}

// WireSize returns the result packet's size on the ring (Figure 4.4:
// ICid, lengths, relation name, data page).
func (p *ResultPacket) WireSize() int {
	return 4 + 1 + 4 + 4 + 2 + len(p.Relation) + 4 + p.Page.WireSize()
}

// Marshal encodes the packet.
func (p *ResultPacket) Marshal() []byte {
	out := make([]byte, 0, p.WireSize())
	out = binary.LittleEndian.AppendUint32(out, packetMagic)
	out = append(out, byte(pktResult))
	out = binary.LittleEndian.AppendUint32(out, uint32(int32(p.ICID)))
	out = binary.LittleEndian.AppendUint32(out, uint32(int32(p.QueryID)))
	out = append(out, byte(len(p.Relation)), 0)
	out = append(out, p.Relation...)
	blob := p.Page.Marshal()
	out = binary.LittleEndian.AppendUint32(out, uint32(len(blob)))
	out = append(out, blob...)
	return out
}

// UnmarshalResult decodes a result packet.
func UnmarshalResult(b []byte) (*ResultPacket, error) {
	if len(b) < 15 || binary.LittleEndian.Uint32(b) != packetMagic || b[4] != byte(pktResult) {
		return nil, fmt.Errorf("machine: not a result packet")
	}
	p := &ResultPacket{}
	p.ICID = int(int32(binary.LittleEndian.Uint32(b[5:])))
	p.QueryID = int(int32(binary.LittleEndian.Uint32(b[9:])))
	nameLen := int(b[13])
	off := 15
	if off+nameLen+4 > len(b) {
		return nil, fmt.Errorf("machine: truncated result packet")
	}
	p.Relation = string(b[off : off+nameLen])
	off += nameLen
	n := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if off+n != len(b) {
		return nil, fmt.Errorf("machine: result packet length mismatch")
	}
	pg, err := relation.UnmarshalPage(b[off:])
	if err != nil {
		return nil, err
	}
	p.Page = pg
	return p, nil
}

// WireSize returns the control packet's size (Figure 4.5).
const controlWireSize = 4 + 1 + 4 + 4 + 4 + 1 + 4

// WireSize returns the bytes the packet occupies on a ring.
func (p *ControlPacket) WireSize() int { return controlWireSize }

// Marshal encodes the packet.
func (p *ControlPacket) Marshal() []byte {
	out := make([]byte, 0, controlWireSize)
	out = binary.LittleEndian.AppendUint32(out, packetMagic)
	out = append(out, byte(pktControl))
	out = binary.LittleEndian.AppendUint32(out, uint32(int32(p.ICID)))
	out = binary.LittleEndian.AppendUint32(out, uint32(int32(p.IPID)))
	out = binary.LittleEndian.AppendUint32(out, uint32(int32(p.QueryID)))
	out = append(out, byte(p.Message))
	out = binary.LittleEndian.AppendUint32(out, uint32(int32(p.PageNo)))
	return out
}

// UnmarshalControl decodes a control packet.
func UnmarshalControl(b []byte) (*ControlPacket, error) {
	if len(b) != controlWireSize || binary.LittleEndian.Uint32(b) != packetMagic || b[4] != byte(pktControl) {
		return nil, fmt.Errorf("machine: not a control packet")
	}
	return &ControlPacket{
		ICID:    int(int32(binary.LittleEndian.Uint32(b[5:]))),
		IPID:    int(int32(binary.LittleEndian.Uint32(b[9:]))),
		QueryID: int(int32(binary.LittleEndian.Uint32(b[13:]))),
		Message: controlMsg(b[17]),
		PageNo:  int(int32(binary.LittleEndian.Uint32(b[18:]))),
	}, nil
}

// CompletionPacket reports one finished work unit — an operand page of
// a unary instruction, or one (outer page, inner page) join step — from
// an IP to its controlling IC, carrying the result pages the unit
// produced. Shipping results and the done notice in one atomic packet
// is what makes recovery exact: either the IC sees the unit complete
// with all its output, or the packet is lost and the unit is
// re-dispatched whole. Used only under a fault plan; the fault-free
// protocol streams results and signals done separately.
type CompletionPacket struct {
	ICID    int
	IPID    int
	QueryID int
	// OuterPageNo is the finished operand page (unary) or outer page
	// (join).
	OuterPageNo int
	// InnerPageNo is the inner page just joined, or -1 for unary work.
	InnerPageNo int
	// Pages are the result pages the work unit produced.
	Pages []*relation.Page
}

// completionFixedHeader covers magic (4), kind (1), five numeric
// fields (20), and the page count (4).
const completionFixedHeader = 4 + 1 + 4*5 + 4

// WireSize returns the bytes the packet occupies on the ring.
func (p *CompletionPacket) WireSize() int {
	n := completionFixedHeader
	for _, pg := range p.Pages {
		n += 4 + pg.WireSize()
	}
	return n
}

// Marshal encodes the packet.
func (p *CompletionPacket) Marshal() []byte {
	out := make([]byte, 0, p.WireSize())
	out = binary.LittleEndian.AppendUint32(out, packetMagic)
	out = append(out, byte(pktCompletion))
	for _, v := range []int{p.ICID, p.IPID, p.QueryID, p.OuterPageNo, p.InnerPageNo} {
		out = binary.LittleEndian.AppendUint32(out, uint32(int32(v)))
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(p.Pages)))
	for _, pg := range p.Pages {
		blob := pg.Marshal()
		out = binary.LittleEndian.AppendUint32(out, uint32(len(blob)))
		out = append(out, blob...)
	}
	return out
}

// UnmarshalCompletion decodes a completion packet.
func UnmarshalCompletion(b []byte) (*CompletionPacket, error) {
	if len(b) < completionFixedHeader {
		return nil, fmt.Errorf("machine: completion packet too short (%d bytes)", len(b))
	}
	if binary.LittleEndian.Uint32(b) != packetMagic || b[4] != byte(pktCompletion) {
		return nil, fmt.Errorf("machine: not a completion packet")
	}
	p := &CompletionPacket{}
	off := 5
	ints := make([]int, 5)
	for i := range ints {
		ints[i] = int(int32(binary.LittleEndian.Uint32(b[off:])))
		off += 4
	}
	p.ICID, p.IPID, p.QueryID, p.OuterPageNo, p.InnerPageNo = ints[0], ints[1], ints[2], ints[3], ints[4]
	nPages := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	for i := 0; i < nPages; i++ {
		if off+4 > len(b) {
			return nil, fmt.Errorf("machine: truncated page length")
		}
		n := int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		if off+n > len(b) {
			return nil, fmt.Errorf("machine: truncated page payload")
		}
		pg, err := relation.UnmarshalPage(b[off : off+n])
		if err != nil {
			return nil, err
		}
		off += n
		p.Pages = append(p.Pages, pg)
	}
	if off != len(b) {
		return nil, fmt.Errorf("machine: %d trailing bytes in completion packet", len(b)-off)
	}
	return p, nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

package machine

import (
	"fmt"
	"time"

	"dfdbm/internal/fault"
	"dfdbm/internal/obs"
)

// Fault injection and the resilient transport.
//
// With Config.Fault set the machine runs a guarded variant of the
// Section 4 protocol that tolerates the plan's faults:
//
//   - IC <-> IP traffic on the outer ring (instruction packets,
//     completion packets, control requests, broadcasts) stays
//     genuinely lossy. Losses there are recovered end-to-end: the IC's
//     watchdog re-dispatches work units whose completion never arrives,
//     and IPs re-issue need-inner/need-outer requests, driving the
//     Section 4.2 missed-broadcast recovery path.
//
//   - Control-plane traffic that the protocol cannot regenerate —
//     MC <-> IC messages on the inner ring, and IC -> IC / IC -> host
//     result pages with their operand-complete markers — travels over
//     reliable channels: per-flow FIFO queues that retransmit after a
//     timeout, so a drop costs latency and ring bandwidth, never state.
//
//   - Duplicated packets cost an extra ring transit and are discarded
//     on arrival by sequence number, on every class.
//
// Detection is strictly end-to-end: a crashed IP is never announced —
// the owning IC suspects it when its watchdog expires, reports it to
// the MC over the inner ring, and the MC marks it failed and withholds
// it from all future grants.

// FaultError is returned by Run when fault recovery is exhausted: a
// work unit ran out of retry budget, a reliable channel ran out of
// retransmissions, or every processor failed with work outstanding.
type FaultError struct {
	// QueryID and Instr identify the instruction that gave up, or -1
	// for machine-wide conditions.
	QueryID int
	Instr   int
	// Page is the work unit (operand page or join outer page) that
	// exhausted its budget, or -1.
	Page int
	// Retries is how many re-dispatches were attempted.
	Retries int
	// Reason describes the exhausted mechanism.
	Reason string
}

func (e *FaultError) Error() string {
	if e.QueryID < 0 {
		return fmt.Sprintf("machine: fault recovery exhausted: %s", e.Reason)
	}
	return fmt.Sprintf("machine: fault recovery exhausted for query %d instruction %d page %d after %d retries: %s",
		e.QueryID, e.Instr, e.Page, e.Retries, e.Reason)
}

// guarded reports whether the resilient protocol is active.
func (m *Machine) guarded() bool { return m.plan != nil }

// maxRetransmits bounds per-message retransmissions on the reliable
// channels; past it the machine fails rather than livelocks (only
// reachable with drop probabilities near 1).
const maxRetransmits = 64

// relRetransmitDelay is the sender's retransmission timeout on the
// reliable channels.
const relRetransmitDelay = 2 * time.Millisecond

// relKey identifies one reliable flow. The inner ring is a single
// global flow (it is one FCFS station, so a global FIFO preserves every
// ordering the fault-free machine had); outer-ring reliable flows are
// per (sender IC, receiver IC-or-host) pair.
type relKey struct {
	inner    bool
	from, to int
}

type relMsg struct {
	bytes   int
	class   fault.Class
	tries   int
	deliver func()
}

// relChannel is a stop-and-wait ARQ FIFO: one message outstanding,
// retransmitted until delivered, later messages queued behind it.
type relChannel struct {
	m    *Machine
	key  relKey
	q    []*relMsg
	busy bool
}

func (m *Machine) relChan(key relKey) *relChannel {
	if ch, ok := m.rel[key]; ok {
		return ch
	}
	ch := &relChannel{m: m, key: key}
	m.rel[key] = ch
	return ch
}

// reliableSend enqueues a message on the flow's channel. Outside
// guarded mode it degenerates to the plain ring send.
func (m *Machine) reliableSend(key relKey, class fault.Class, bytes int, deliver func()) {
	if !m.guarded() {
		if key.inner {
			m.sendInner(bytes, deliver)
		} else {
			m.sendOuter(bytes, deliver)
		}
		return
	}
	ch := m.relChan(key)
	ch.q = append(ch.q, &relMsg{bytes: bytes, class: class, deliver: deliver})
	ch.pump()
}

func (ch *relChannel) pump() {
	if ch.busy || len(ch.q) == 0 {
		return
	}
	ch.busy = true
	ch.transmit(ch.q[0])
}

func (ch *relChannel) transmit(msg *relMsg) {
	m := ch.m
	if m.err != nil {
		return
	}
	msg.tries++
	arrive := func() {
		if m.plan.Drop(msg.class) {
			m.injectDrop(msg.class)
			if msg.tries > maxRetransmits {
				m.fail(&FaultError{QueryID: -1, Instr: -1, Page: -1, Retries: msg.tries - 1,
					Reason: fmt.Sprintf("reliable %s channel exhausted retransmissions", msg.class)})
				return
			}
			m.s.After(relRetransmitDelay, func() {
				m.stats.Retransmits++
				m.event(obs.EvRecovery, "MC", -1, -1, -1, msg.bytes,
					"retransmit %s message (%d bytes, try %d)", msg.class, msg.bytes, msg.tries+1)
				ch.transmit(msg)
			})
			return
		}
		ch.q = ch.q[1:]
		ch.busy = false
		m.maybeDup(msg.class, ch.key.inner, msg.bytes)
		msg.deliver()
		ch.pump()
	}
	if ch.key.inner {
		m.sendInner(msg.bytes, arrive)
	} else {
		m.sendOuter(msg.bytes, arrive)
	}
}

// innerSend routes an inner-ring control message: plain in the
// fault-free machine, over the global reliable inner channel under a
// fault plan.
func (m *Machine) innerSend(bytes int, deliver func()) {
	m.reliableSend(relKey{inner: true}, fault.ClassInner, bytes, deliver)
}

// lossyOuter ships an IC<->IP packet on the outer ring, subject to the
// plan's drop and duplication probabilities for its class. Dropped
// packets are recovered end-to-end by the protocol, not retransmitted.
func (m *Machine) lossyOuter(class fault.Class, bytes int, deliver func()) {
	if !m.guarded() {
		m.sendOuter(bytes, deliver)
		return
	}
	m.sendOuter(bytes, func() {
		if m.plan.Drop(class) {
			m.injectDrop(class)
			return
		}
		deliver()
	})
	m.maybeDup(class, false, bytes)
}

// lossyDeliver wraps one broadcast recipient's delivery with the
// plan's per-recipient drop draw (a broadcast can reach some IPs and
// miss others).
func (m *Machine) lossyDeliver(class fault.Class, fn func()) func() {
	if !m.guarded() {
		return fn
	}
	return func() {
		if m.plan.Drop(class) {
			m.injectDrop(class)
			return
		}
		fn()
	}
}

func (m *Machine) injectDrop(class fault.Class) {
	m.stats.FaultsInjected++
	m.stats.PacketsDropped++
	m.event(obs.EvFault, "ring", -1, -1, -1, 0, "fault: dropped %s packet", class)
}

// maybeDup injects a duplicate transit of the packet just delivered.
// The duplicate occupies the ring like the original; the receiver's
// sequence filter discards it on arrival, so it never reaches protocol
// state.
func (m *Machine) maybeDup(class fault.Class, inner bool, bytes int) {
	if !m.plan.Dup(class) {
		return
	}
	m.stats.FaultsInjected++
	m.stats.PacketsDuplicated++
	m.event(obs.EvFault, "ring", -1, -1, -1, bytes, "fault: duplicated %s packet", class)
	discard := func() {
		m.event(obs.EvFault, "ring", -1, -1, -1, bytes, "fault: discarded duplicate %s packet", class)
	}
	if inner {
		m.sendInner(bytes, discard)
	} else {
		m.sendOuter(bytes, discard)
	}
}

// scheduleCrashes installs the plan's IP crashes on the virtual clock.
func (m *Machine) scheduleCrashes() {
	for _, cr := range m.plan.Crashes() {
		if cr.IP < 0 || cr.IP >= len(m.ips) {
			continue
		}
		p := m.ips[cr.IP]
		m.s.At(cr.At, func() { m.crashIP(p) })
	}
}

// crashIP kills a processor mid-whatever-it-was-doing: every queued
// instruction packet, buffered broadcast page, partial result, and its
// IRC vector are abandoned. Nothing is announced — the owning IC's
// watchdog makes the discovery.
func (m *Machine) crashIP(p *ip) {
	if p.crashed {
		return
	}
	p.crashed = true
	m.stats.FaultsInjected++
	m.stats.IPsCrashed++
	abandoned := len(p.innerBuf) + len(p.queue)
	if p.outer != nil {
		abandoned++
	}
	m.event(obs.EvFault, fmt.Sprintf("IP%d", p.id), -1, -1, -1, 0,
		"fault: IP %d crashed (abandoning %d buffered pages and IRC state)", p.id, abandoned)
}

// failIP is the MC marking a processor failed: it is withdrawn from
// the free pool and never granted again. Idempotent.
func (m *Machine) failIP(p *ip, why string) {
	if p.failed {
		return
	}
	p.failed = true
	m.stats.IPsFailed++
	for i, fp := range m.freeIPs {
		if fp == p {
			m.freeIPs = append(m.freeIPs[:i], m.freeIPs[i+1:]...)
			break
		}
	}
	m.event(obs.EvFault, "MC", -1, -1, -1, 0, "MC: IP %d marked failed (%s)", p.id, why)
	m.checkAllFailed()
}

// ipSuspected handles an IC's watchdog report arriving at the MC.
func (m *Machine) ipSuspected(p *ip, icID int) {
	m.failIP(p, fmt.Sprintf("watchdog report from IC %d", icID))
}

// checkAllFailed surfaces total processor loss as a FaultError instead
// of letting the run stall silently.
func (m *Machine) checkAllFailed() {
	for _, p := range m.ips {
		if !p.failed {
			return
		}
	}
	if len(m.active)+len(m.queue) > 0 {
		m.fail(&FaultError{QueryID: -1, Instr: -1, Page: -1,
			Reason: fmt.Sprintf("all %d instruction processors failed with %d queries outstanding",
				len(m.ips), len(m.active)+len(m.queue))})
	}
}

package machine

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"dfdbm/internal/obs"
)

// traceOne runs one query on a fresh machine with the given observer
// and returns the run's results.
func traceOne(t *testing.T, o *obs.Observer, queryIdx int) *Results {
	t.Helper()
	cat, qs := testDB(t, 0.05)
	m, err := New(cat, Config{HW: smallHW(), Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(qs[queryIdx]); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestGoldenTraceDeterminism: two runs of the same workload under the
// same seed must produce byte-identical text traces — the simulation is
// deterministic, and so must its observability be.
func TestGoldenTraceDeterminism(t *testing.T) {
	var a, b bytes.Buffer
	traceOne(t, obs.New(obs.NewTextSink(&a), nil), 2)
	traceOne(t, obs.New(obs.NewTextSink(&b), nil), 2)
	if a.Len() == 0 {
		t.Fatal("empty trace")
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("same-seed runs produced different traces")
	}
}

// TestObsMatchesLegacyTrace: Config.Obs with a text sink must produce
// exactly what the legacy Config.Trace writer produces.
func TestObsMatchesLegacyTrace(t *testing.T) {
	cat, qs := testDB(t, 0.05)
	run := func(cfg Config) string {
		m, err := New(cat, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Submit(qs[2]); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return ""
	}
	var legacy, structured bytes.Buffer
	run(Config{HW: smallHW(), Trace: &legacy})
	run(Config{HW: smallHW(), Obs: obs.New(obs.NewTextSink(&structured), nil)})
	if legacy.String() != structured.String() {
		t.Error("structured text trace differs from the legacy Trace output")
	}
}

// TestChromeTraceFromMachineRun: a real machine run through the Chrome
// sink must yield valid trace-event JSON with the required fields.
func TestChromeTraceFromMachineRun(t *testing.T) {
	var buf bytes.Buffer
	sink := obs.NewChromeSink(&buf)
	o := obs.New(sink, nil)
	traceOne(t, o, 2)
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			TS   *float64 `json:"ts"`
			PID  *int     `json:"pid"`
			TID  *int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid Chrome trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	instants := 0
	for _, e := range doc.TraceEvents {
		if e.Ph == "" || e.PID == nil || e.TID == nil {
			t.Fatalf("event missing ph/pid/tid: %+v", e)
		}
		if e.Ph == "i" {
			instants++
			if e.TS == nil || *e.TS < 0 {
				t.Fatalf("instant event without a valid ts: %+v", e)
			}
		}
	}
	if instants == 0 {
		t.Error("no instant events in the trace")
	}
}

// TestOuterRingTimelineMatchesStats: the outer-ring bandwidth timeline
// is recorded increment for increment with Stats.OuterRingBytes, so its
// integral must equal the counter (the 1%-agreement acceptance bound is
// met exactly).
func TestOuterRingTimelineMatchesStats(t *testing.T) {
	reg := obs.NewRegistry(0)
	res := traceOne(t, obs.New(nil, reg), 2)
	tl := reg.Timeline("machine.outer_ring_bytes")
	if tl == nil {
		t.Fatal("no outer-ring timeline recorded")
	}
	got, want := tl.Integral(), float64(res.Stats.OuterRingBytes)
	if want == 0 {
		t.Fatal("no outer-ring traffic")
	}
	if diff := got - want; diff < -0.01*want || diff > 0.01*want {
		t.Errorf("timeline integral %g, Stats.OuterRingBytes %g", got, want)
	}
	inner := reg.Timeline("machine.inner_ring_bytes")
	if inner == nil || inner.Integral() != float64(res.Stats.InnerRingBytes) {
		t.Error("inner-ring timeline does not match Stats.InnerRingBytes")
	}
}

// TestStatsExportedThroughRegistry: every Stats field must come back
// out of the metrics registry as a counter, and the derived figures as
// gauges.
func TestStatsExportedThroughRegistry(t *testing.T) {
	reg := obs.NewRegistry(0)
	res := traceOne(t, obs.New(nil, reg), 2)
	s := res.Stats
	for _, c := range []struct {
		name string
		want int64
	}{
		{"machine.outer_ring_packets", s.OuterRingPackets},
		{"machine.outer_ring_bytes_total", s.OuterRingBytes},
		{"machine.inner_ring_bytes_total", s.InnerRingBytes},
		{"machine.instruction_packets", s.InstructionPackets},
		{"machine.result_packets", s.ResultPackets},
		{"machine.control_packets", s.ControlPackets},
		{"machine.broadcasts", s.Broadcasts},
		{"machine.disk_reads", s.DiskReads},
		{"machine.cache_writes", s.CacheWrites},
	} {
		if got := reg.Counter(c.name); got != c.want {
			t.Errorf("%s = %d, want %d", c.name, got, c.want)
		}
	}
	if v, ok := reg.Gauge("machine.outer_ring_utilization"); !ok || v != res.OuterRingUtilization {
		t.Errorf("utilization gauge = %v, %v", v, ok)
	}
	if v, ok := reg.Gauge("machine.outer_ring_mbps"); !ok || v != res.OuterRingMbps() {
		t.Errorf("mbps gauge = %v, %v", v, ok)
	}
}

// TestOuterRingMbpsZeroElapsed: the bandwidth figure of an empty run is
// zero, not NaN or a division panic.
func TestOuterRingMbpsZeroElapsed(t *testing.T) {
	var r Results
	if got := r.OuterRingMbps(); got != 0 {
		t.Errorf("OuterRingMbps with zero Elapsed = %g, want 0", got)
	}
	r.Stats.OuterRingBytes = 1 << 20
	if got := r.OuterRingMbps(); got != 0 {
		t.Errorf("OuterRingMbps with bytes but zero Elapsed = %g, want 0", got)
	}
}

// TestBroadcastAccountingUnderSmallBuffer pins down the relationships
// between the broadcast-join counters when one-page IP buffers force
// drops: recovery re-broadcasts are a subset of all broadcasts, and
// every drop is eventually recovered (the run completes correctly, so
// each ignored page was re-requested and re-broadcast).
func TestBroadcastAccountingUnderSmallBuffer(t *testing.T) {
	cat, qs := testDB(t, 0.5)
	_, res := runOne(t, cat, qs[2], Config{HW: smallHW(), IPs: 6, IPsPerInstruction: 6, IPBufferPages: 1})
	s := res.Stats
	if s.BroadcastsIgnored == 0 {
		t.Fatal("one-page buffers dropped nothing at this scale")
	}
	if s.RecoveryRequests == 0 {
		t.Error("drops occurred but no recovery re-broadcast was made")
	}
	if s.RecoveryRequests >= s.Broadcasts {
		t.Errorf("recovery re-broadcasts (%d) not a strict subset of broadcasts (%d)",
			s.RecoveryRequests, s.Broadcasts)
	}
}

// TestCacheAccountingKnownFlows pins the storage-hierarchy counters to
// the page-flow invariants of the three-level design: a page can only
// be read from the cache segment after being demoted into it, and can
// only spill to disk out of the cache, so reads and disk writes are
// both bounded by cache writes.
func TestCacheAccountingKnownFlows(t *testing.T) {
	cat, qs := testDB(t, 0.2)
	_, res := runOne(t, cat, qs[5], Config{HW: smallHW(), ICLocalPages: 2, ICCachePages: 4})
	s := res.Stats
	if s.CacheWrites == 0 {
		t.Fatal("tiny local memory demoted nothing to the cache")
	}
	if s.CacheReads > s.CacheWrites {
		t.Errorf("%d cache reads but only %d demotions into the cache", s.CacheReads, s.CacheWrites)
	}
	if s.DiskWrites > s.CacheWrites {
		t.Errorf("%d disk spills but only %d pages ever entered the cache", s.DiskWrites, s.CacheWrites)
	}
	if s.DiskReads == 0 {
		t.Error("leaf operands produced no disk reads")
	}
}

// failAfterWriter fails every Write from the n-th call on.
type failAfterWriter struct {
	n      int
	writes int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes >= w.n {
		return 0, errors.New("trace disk full")
	}
	return len(p), nil
}

// TestRunSurfacesSinkError: the first sink error must surface from Run
// rather than being silently dropped.
func TestRunSurfacesSinkError(t *testing.T) {
	cat, qs := testDB(t, 0.05)
	m, err := New(cat, Config{HW: smallHW(), Obs: obs.New(obs.NewTextSink(&failAfterWriter{n: 3}), nil)})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(qs[2]); err != nil {
		t.Fatal(err)
	}
	_, err = m.Run()
	if err == nil || !strings.Contains(err.Error(), "trace disk full") {
		t.Errorf("Run did not surface the sink error: %v", err)
	}
}

// BenchmarkMachine runs one benchmark query through the full packet
// protocol; the obs variant measures the nil-observer fast path against
// an attached text sink.
func BenchmarkMachine(b *testing.B) {
	cat, qs := testDB(b, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := New(cat, Config{HW: smallHW()})
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Submit(qs[2]); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMachineWithTextTrace(b *testing.B) {
	cat, qs := testDB(b, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		m, err := New(cat, Config{HW: smallHW(), Obs: obs.New(obs.NewTextSink(&buf), nil)})
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Submit(qs[2]); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

package machine

import (
	"fmt"
	"time"

	"dfdbm/internal/catalog"
	"dfdbm/internal/fault"
	"dfdbm/internal/obs"
	"dfdbm/internal/pred"
	"dfdbm/internal/query"
	"dfdbm/internal/relalg"
	"dfdbm/internal/relation"
	"dfdbm/internal/sim"
)

// Machine is one simulated instance of the Section 4 design.
type Machine struct {
	cfg Config
	cat *catalog.Catalog
	s   *sim.Sim
	// obs is the observability layer: cfg.Obs, or a text-sink observer
	// wrapped around the legacy cfg.Trace writer. Nil when disabled.
	obs *obs.Observer

	outer *sim.Station // the 40 Mbps data ring
	inner *sim.Station // the 1–2 Mbps control ring
	disk  *sim.Station // mass storage (NumDisks drives)

	ics     []*ic
	ips     []*ip
	freeICs []*ic
	freeIPs []*ip
	// ipRequests is the MC's FIFO of unsatisfied IP allocations.
	ipRequests []*ipRequest

	queue   []*mquery // submitted, not yet admitted
	active  []*mquery
	locks   map[string]*lockEntry
	nextQID int

	results []QueryResult
	stats   Stats
	ipBusy  time.Duration
	err     error

	// mcCost is the attribution-only per-message MC handling cost
	// charged to the machine.mc_busy_us timeline; mcFree serializes the
	// charges so the single MC never appears more than 100% busy in any
	// bucket (see observeMC).
	mcCost time.Duration
	mcFree time.Duration

	// plan is the fault plan (nil in the fault-free machine); rel holds
	// the reliable ARQ channels of the guarded transport.
	plan *fault.Plan
	rel  map[relKey]*relChannel

	// pool recycles intermediate pages host-side (nil when disabled);
	// kstats aggregates join-kernel counters across the machine's IPs.
	pool   *relation.PagePool
	kstats relalg.KernelStats

	// dedupFree recycles project-instruction dedup trackers: when an
	// instruction finishes its tracker is Reset (a pure truncation) and
	// reused by the next project instruction, so steady-state admission
	// allocates no dedup state.
	dedupFree []*relalg.Dedup
}

type lockEntry struct {
	readers int
	writer  bool
}

type ipRequest struct {
	ic    *ic
	instr *minstr
	want  int
}

// New builds a machine over the catalog.
func New(cat *catalog.Catalog, cfg Config) (*Machine, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:   cfg,
		cat:   cat,
		s:     sim.New(),
		locks: map[string]*lockEntry{},
		plan:  cfg.Fault,
		rel:   map[relKey]*relChannel{},
	}
	m.obs = cfg.Obs
	if m.obs == nil && cfg.Trace != nil {
		m.obs = obs.New(obs.NewTextSink(cfg.Trace), nil)
	}
	m.mcCost = cfg.HW.InnerRing.SerializationTime(cfg.HW.ControlBytes)
	if !cfg.NoPagePool {
		m.pool = relation.NewPagePool()
	}
	m.outer = sim.NewStation(m.s, 1)
	m.inner = sim.NewStation(m.s, 1)
	m.disk = sim.NewStation(m.s, cfg.HW.NumDisks)
	for i := 0; i < cfg.ICs; i++ {
		c := newIC(m, i)
		m.ics = append(m.ics, c)
		m.freeICs = append(m.freeICs, c)
	}
	for i := 0; i < cfg.IPs; i++ {
		p := &ip{m: m, id: i}
		m.ips = append(m.ips, p)
		m.freeIPs = append(m.freeIPs, p)
	}
	return m, nil
}

// mquery is one submitted query.
type mquery struct {
	id   int
	tree *query.Tree
	// plan is the adaptive pipeline-vs-materialize plan (nil unless
	// Config.Adaptive), computed at submission against the catalog.
	plan *query.Plan
	fp   query.Footprint
	instrs    []*minstr // operator nodes in post order
	remaining int
	result    *relation.Relation
	submitted time.Duration
	started   time.Duration
	delayed   bool
	// span is the query's causal span (nil when spans are off).
	span *obs.Span
	// effect describes an Append/Delete root applied host-side.
	effectKind query.OpKind
	effectNode *query.Node
}

// minstr is one instruction of a query.
type minstr struct {
	q *mquery
	// id is the instruction's index within its query (the instruction
	// ID carried by structured trace events).
	id   int
	node *query.Node
	ic   *ic
	// destIC receives result pages; nil means the host (query root).
	destIC    *ic
	destInput int
	// destInstr is the consuming instruction (nil at the root).
	destInstr *minstr
	// span is the instruction's causal span, opened when the IC
	// installs it (nil when spans are off).
	span *obs.Span

	outTupleLen int
	outPageSize int

	// matInput marks operands the adaptive plan materializes: the IC
	// receives them completely before dispatching any work.
	matInput [2]bool

	// Bound operator kernels, prepared at admission. restrict and
	// project are the batched kernel states; the simulator is a
	// single-threaded event loop, so one state per instruction is safe
	// even when several IPs are assigned to it.
	boundPred pred.Bound
	boundJoin *pred.BoundJoin
	restrict  *relalg.RestrictState
	projector *relalg.Projector
	project   *relalg.ProjectState
	// Serial-IC duplicate elimination state for project instructions.
	dedup  *relalg.Dedup
	outPag *relation.Paginator
	// directSent counts result pages routed IP→IP under DirectRouting;
	// the consumer IC must see that many direct completions before the
	// operand counts as fully processed.
	directSent int
}

func (mi *minstr) opcode() uint8 { return uint8(mi.node.Kind) }

// prep binds the instruction's kernels against its input schemas.
func (mi *minstr) prep(m *Machine) error {
	n := mi.node
	switch n.Kind {
	case query.OpRestrict:
		b, err := n.Pred.Bind(n.Inputs[0].Schema())
		if err != nil {
			return err
		}
		mi.boundPred = b
		mi.restrict = relalg.NewRestrictState(b)
	case query.OpJoin:
		b, err := n.Join.Bind(n.Inputs[0].Schema(), n.Inputs[1].Schema())
		if err != nil {
			return err
		}
		mi.boundJoin = b
	case query.OpProject:
		p, err := relalg.NewProjector(n.Inputs[0].Schema(), n.Cols...)
		if err != nil {
			return err
		}
		mi.projector = p
		mi.project = relalg.NewProjectState(p)
		mi.dedup = m.getDedup()
		pag, err := relation.NewPooledPaginator(mi.outPageSize, mi.outTupleLen, m.pool)
		if err != nil {
			return err
		}
		mi.outPag = pag
	}
	return nil
}

// getDedup draws a reset dedup tracker from the freelist, or makes one.
func (m *Machine) getDedup() *relalg.Dedup {
	if n := len(m.dedupFree); n > 0 {
		d := m.dedupFree[n-1]
		m.dedupFree = m.dedupFree[:n-1]
		return d
	}
	return relalg.NewDedup()
}

// Submit enqueues a bound query for execution. The query must fit the
// machine: one IC per operator node.
func (m *Machine) Submit(t *query.Tree) error {
	nOps := 0
	for _, n := range t.Nodes() {
		if n.Kind != query.OpScan && n.Kind != query.OpAppend && n.Kind != query.OpDelete {
			nOps++
		}
	}
	if nOps > m.cfg.ICs {
		return fmt.Errorf("machine: query has %d instructions but the machine has %d ICs", nOps, m.cfg.ICs)
	}
	q := &mquery{
		id:        m.nextQID,
		tree:      t,
		fp:        query.Analyze(t.Root()),
		submitted: m.s.Now(),
	}
	if m.cfg.Adaptive {
		plan, err := query.PlanTree(t, m.cat, m.pool.Budget())
		if err != nil {
			return err
		}
		q.plan = plan
	}
	m.nextQID++
	root := t.Root()
	if root.Kind == query.OpAppend || root.Kind == query.OpDelete {
		q.effectKind = root.Kind
		q.effectNode = root
	}
	m.queue = append(m.queue, q)
	return nil
}

// Run executes all submitted queries to completion and reports.
func (m *Machine) Run() (*Results, error) {
	if m.guarded() {
		m.scheduleCrashes()
	}
	m.s.After(0, m.tryAdmit)
	end := m.s.Run()
	if m.err != nil {
		return nil, m.err
	}
	if len(m.queue) > 0 || len(m.active) > 0 {
		return nil, fmt.Errorf("machine: stalled with %d queued and %d active queries",
			len(m.queue), len(m.active))
	}
	ps := m.pool.Stats()
	ks := m.kstats.Load()
	m.stats.PoolHits, m.stats.PoolMisses, m.stats.PagesRecycled = ps.Hits, ps.Misses, ps.Recycled
	m.stats.HashProbes, m.stats.HashBuilds = ks.HashProbes, ks.HashBuilds
	m.stats.HashTableHits, m.stats.NestedPairs = ks.TableHits, ks.NestedPairs
	res := &Results{PerQuery: m.results, Stats: m.stats}
	var last time.Duration
	for _, qr := range m.results {
		if qr.Finished > last {
			last = qr.Finished
		}
	}
	res.Elapsed = last
	_ = end
	// Sweep up spans that never closed (e.g. packets lost to faults) so
	// the profile accounts for the whole makespan.
	m.obs.Spans().CloseAt(last)
	if last > 0 {
		res.OuterRingUtilization = m.outer.Utilization(last)
		res.IPUtilization = float64(m.ipBusy) / (float64(last) * float64(len(m.ips)))
	}
	m.exportMetrics(res)
	if err := m.obs.Err(); err != nil {
		return nil, fmt.Errorf("machine: trace sink: %w", err)
	}
	return res, nil
}

// exportMetrics re-expresses the run's Stats and derived figures through
// the metrics registry, alongside the virtual-time timelines recorded
// while running.
func (m *Machine) exportMetrics(res *Results) {
	o := m.obs
	if !o.MetricsOn() {
		return
	}
	r := o.Registry()
	s := res.Stats
	r.Inc("machine.outer_ring_packets", s.OuterRingPackets)
	r.Inc("machine.outer_ring_bytes_total", s.OuterRingBytes)
	r.Inc("machine.inner_ring_packets", s.InnerRingPackets)
	r.Inc("machine.inner_ring_bytes_total", s.InnerRingBytes)
	r.Inc("machine.instruction_packets", s.InstructionPackets)
	r.Inc("machine.result_packets", s.ResultPackets)
	r.Inc("machine.control_packets", s.ControlPackets)
	r.Inc("machine.broadcasts", s.Broadcasts)
	r.Inc("machine.broadcasts_ignored", s.BroadcastsIgnored)
	r.Inc("machine.recovery_requests", s.RecoveryRequests)
	r.Inc("machine.disk_reads", s.DiskReads)
	r.Inc("machine.disk_writes", s.DiskWrites)
	r.Inc("machine.cache_reads", s.CacheReads)
	r.Inc("machine.cache_writes", s.CacheWrites)
	r.Inc("machine.direct_routed_pages", s.DirectRoutedPages)
	r.Inc("machine.pool_hits", s.PoolHits)
	r.Inc("machine.pool_misses", s.PoolMisses)
	r.Inc("machine.pages_recycled", s.PagesRecycled)
	r.Inc("machine.join_hash_probes", s.HashProbes)
	r.Inc("machine.join_hash_builds", s.HashBuilds)
	r.Inc("machine.join_table_hits", s.HashTableHits)
	r.Inc("machine.join_nested_pairs", s.NestedPairs)
	r.Inc("machine.materialized_edges", s.MaterializedEdges)
	r.Inc("machine.queries_delayed_by_conflict", s.QueriesDelayedByConflict)
	r.Inc("machine.faults_injected", s.FaultsInjected)
	r.Inc("machine.packets_dropped", s.PacketsDropped)
	r.Inc("machine.packets_duplicated", s.PacketsDuplicated)
	r.Inc("machine.ips_crashed", s.IPsCrashed)
	r.Inc("machine.ips_failed", s.IPsFailed)
	r.Inc("machine.watchdog_timeouts", s.WatchdogTimeouts)
	r.Inc("machine.redispatches", s.Redispatches)
	r.Inc("machine.recovered_pages", s.RecoveredPages)
	r.Inc("machine.retransmits", s.Retransmits)
	r.SetGauge("machine.elapsed_seconds", res.Elapsed.Seconds())
	r.SetGauge("machine.outer_ring_utilization", res.OuterRingUtilization)
	r.SetGauge("machine.outer_ring_mbps", res.OuterRingMbps())
	r.SetGauge("machine.ip_utilization", res.IPUtilization)
	if reads := s.CacheReads + s.DiskReads; reads > 0 {
		r.SetGauge("machine.cache_hit_rate", float64(s.CacheReads)/float64(reads))
	}
	if res.Elapsed > 0 {
		for _, p := range m.ips {
			r.SetGauge(fmt.Sprintf("machine.ip%d_busy_fraction", p.id),
				float64(p.busyTotal)/float64(res.Elapsed))
		}
	}
}

// recycle hands a dead intermediate page back to the machine's pool.
// Recycling is disabled entirely under the guarded (fault-injecting)
// protocol: retransmit closures and duplicated packets may still alias
// a page after its consumer has drained it.
func (m *Machine) recycle(pg *relation.Page) {
	if m.guarded() {
		return
	}
	m.pool.Put(pg)
}

func (m *Machine) fail(err error) {
	if m.err == nil && err != nil {
		m.err = fmt.Errorf("machine: %w", err)
	}
}

// ---- Master controller: admission, concurrency control, allocation ----

// conflicts reports whether q's footprint conflicts with any running
// query.
func (m *Machine) conflicts(q *mquery) bool {
	for _, rel := range q.fp.Reads {
		if e, ok := m.locks[rel]; ok && e.writer {
			return true
		}
	}
	for _, rel := range q.fp.Writes {
		if e, ok := m.locks[rel]; ok && (e.writer || e.readers > 0) {
			return true
		}
	}
	return false
}

func (m *Machine) lock(q *mquery) {
	for _, rel := range q.fp.Reads {
		e := m.locks[rel]
		if e == nil {
			e = &lockEntry{}
			m.locks[rel] = e
		}
		e.readers++
	}
	for _, rel := range q.fp.Writes {
		e := m.locks[rel]
		if e == nil {
			e = &lockEntry{}
			m.locks[rel] = e
		}
		e.writer = true
	}
}

func (m *Machine) unlock(q *mquery) {
	for _, rel := range q.fp.Reads {
		if e := m.locks[rel]; e != nil {
			e.readers--
			if e.readers == 0 && !e.writer {
				delete(m.locks, rel)
			}
		}
	}
	for _, rel := range q.fp.Writes {
		if e := m.locks[rel]; e != nil {
			e.writer = false
			if e.readers == 0 {
				delete(m.locks, rel)
			}
		}
	}
}

// tryAdmit scans the queue and admits every query that is conflict-free
// and for which enough ICs are free.
func (m *Machine) tryAdmit() {
	if m.err != nil {
		return
	}
	kept := m.queue[:0]
	for _, q := range m.queue {
		if m.admit(q) {
			continue
		}
		kept = append(kept, q)
	}
	m.queue = append([]*mquery(nil), kept...)
}

func (m *Machine) admit(q *mquery) bool {
	if m.conflicts(q) {
		if !q.delayed {
			q.delayed = true
			m.stats.QueriesDelayedByConflict++
		}
		return false
	}
	nOps := 0
	for _, n := range q.tree.Nodes() {
		if isOperator(n) {
			nOps++
		}
	}
	if nOps > len(m.freeICs) {
		return false
	}

	m.lock(q)
	q.started = m.s.Now()
	m.active = append(m.active, q)
	if m.tracing() {
		m.event(obs.EvAdmit, "MC", q.id, -1, -1, 0,
			"MC: admit query %d (%d instructions, reads=%v writes=%v)",
			q.id, nOps, q.fp.Reads, q.fp.Writes)
	}
	if m.spansOn() {
		q.span = m.beginSpan(obs.SpanQuery, nil, "MC", fmt.Sprintf("query %d", q.id), q.id, -1, -1)
	}

	if nOps == 0 {
		// A pure effect (delete), a bare scan, or append-of-scan: the
		// host resolves it directly against the catalog.
		var scan *query.Node
		if q.effectKind == query.OpAppend {
			scan = q.tree.Root().Inputs[0]
		} else if q.tree.Root().Kind == query.OpScan {
			scan = q.tree.Root()
		}
		if scan != nil {
			rel, err := m.cat.Get(scan.Rel)
			if err != nil {
				m.fail(err)
			}
			q.result = rel
		}
		m.finishQuery(q)
		return true
	}

	// Build instructions in post order and assign an IC to each.
	byNode := map[*query.Node]*minstr{}
	for _, n := range q.tree.Nodes() {
		if !isOperator(n) {
			continue
		}
		mi := &minstr{q: q, id: len(q.instrs), node: n, outTupleLen: n.Schema().TupleLen()}
		if q.plan != nil {
			for i, in := range n.Inputs {
				if in.Kind != query.OpScan && q.plan.Materialized(in.ID) {
					mi.matInput[i] = true
					m.stats.MaterializedEdges++
				}
			}
		}
		mi.outPageSize = m.cfg.HW.PageSize
		if min := relation.PageHeaderLen + mi.outTupleLen; mi.outPageSize < min {
			mi.outPageSize = min
		}
		if err := mi.prep(m); err != nil {
			m.fail(err)
			return true
		}
		c := m.freeICs[len(m.freeICs)-1]
		m.freeICs = m.freeICs[:len(m.freeICs)-1]
		mi.ic = c
		byNode[n] = mi
		q.instrs = append(q.instrs, mi)
		q.remaining++
	}
	// Wire destinations: each instruction's results flow to the IC of
	// the nearest operator ancestor, or to the host at the root.
	streamRoot := q.tree.Root()
	if q.effectKind != 0 && len(streamRoot.Inputs) > 0 {
		streamRoot = streamRoot.Inputs[0]
	}
	for _, mi := range q.instrs {
		parent, input := operatorParent(q.tree, mi.node)
		if parent == nil || mi.node == streamRoot {
			mi.destIC = nil
		} else {
			dest := byNode[parent]
			mi.destIC = dest.ic
			mi.destInstr = dest
			mi.destInput = input
		}
	}
	// Result relation for the stream root.
	rootInstr := byNode[streamRoot]
	rel, err := relation.New(streamRoot.Label(), streamRoot.Schema(), rootInstr.outPageSize)
	if err != nil {
		m.fail(err)
		return true
	}
	q.result = rel

	// The MC distributes the instructions over the inner ring.
	for _, mi := range q.instrs {
		mi := mi
		m.observeMC()
		m.innerSend(m.cfg.HW.InstrHeaderBytes, func() { mi.ic.assign(mi) })
	}
	return true
}

// observeMC charges one MC message-handling cost to the
// machine.mc_busy_us timeline. The cost is an attribution-only proxy
// (the control-message serialization time, per Section 4.4's
// memory-management-cost-per-enabling argument): it feeds the
// saturation report but never alters simulated timing. Charges are
// serialized behind mcFree — the MC is one processor, so a burst of
// simultaneous control messages queues rather than stacking into one
// bucket as >100% utilization.
func (m *Machine) observeMC() {
	if !m.obs.MetricsOn() {
		return
	}
	start := m.s.Now()
	if start < m.mcFree {
		start = m.mcFree
	}
	m.mcFree = start + m.mcCost
	m.obs.Registry().AddBusy("machine.mc_busy_us", start, m.mcCost)
}

func isOperator(n *query.Node) bool {
	return n.Kind == query.OpRestrict || n.Kind == query.OpJoin || n.Kind == query.OpProject
}

// operatorParent finds the nearest operator ancestor of n and which of
// its inputs leads to n.
func operatorParent(t *query.Tree, n *query.Node) (*query.Node, int) {
	var walk func(cur *query.Node) (*query.Node, int, bool)
	walk = func(cur *query.Node) (*query.Node, int, bool) {
		for i, in := range cur.Inputs {
			if in == n {
				return cur, i, true
			}
			if p, j, ok := walk(in); ok {
				return p, j, true
			}
		}
		return nil, 0, false
	}
	p, i, ok := walk(t.Root())
	if !ok || !isOperator(p) {
		return nil, 0
	}
	return p, i
}

// hostDeliver receives a result page of the query's stream root.
func (m *Machine) hostDeliver(q *mquery, pg *relation.Page) {
	if pg.Empty() {
		return
	}
	if err := q.result.AppendPage(pg); err != nil {
		m.fail(err)
	}
}

// instrFinished is called by an IC when its instruction completes; the
// IC is freed and, at the root, the query finishes.
func (m *Machine) instrFinished(mi *minstr) {
	m.observeMC()
	if mi.dedup != nil {
		mi.dedup.Reset()
		m.dedupFree = append(m.dedupFree, mi.dedup)
		mi.dedup = nil
	}
	m.freeICs = append(m.freeICs, mi.ic)
	mi.q.remaining--
	if mi.q.remaining == 0 {
		m.finishQuery(mi.q)
	}
	m.s.After(0, m.tryAdmit)
}

func (m *Machine) finishQuery(q *mquery) {
	// Host-side effects.
	switch q.effectKind {
	case query.OpAppend:
		dst, err := m.cat.Get(q.effectNode.Rel)
		if err == nil {
			_, err = relalg.Append(dst, q.result)
		}
		if err != nil {
			m.fail(err)
		} else {
			q.result = dst
		}
	case query.OpDelete:
		target, err := m.cat.Get(q.effectNode.Rel)
		if err == nil {
			_, err = relalg.Delete(target, q.effectNode.Pred)
		}
		if err != nil {
			m.fail(err)
		} else {
			q.result = target
		}
	}
	m.unlock(q)
	for i, aq := range m.active {
		if aq == q {
			m.active = append(m.active[:i], m.active[i+1:]...)
			break
		}
	}
	if m.tracing() {
		m.event(obs.EvQueryDone, "MC", q.id, -1, -1, 0, "MC: query %d finished", q.id)
	}
	m.endSpan(q.span)
	m.results = append(m.results, QueryResult{
		QueryID:   q.id,
		Relation:  q.result,
		Submitted: q.submitted,
		Started:   q.started,
		Finished:  m.s.Now(),
	})
	m.s.After(0, m.tryAdmit)
}

// ---- IP allocation (MC arbitrating the processor pool) ----

// requestIPs records an IC's wish for processors; grants flow now and
// as processors are released.
func (m *Machine) requestIPs(c *ic, mi *minstr, want int) {
	m.observeMC()
	m.ipRequests = append(m.ipRequests, &ipRequest{ic: c, instr: mi, want: want})
	m.pumpIPs()
	m.sample("machine.ip_request_queue", float64(len(m.ipRequests)))
}

// pumpIPs arbitrates the processor pool. An instruction whose operands
// are all complete (or stored relations) is "safe": its processors can
// always make progress. An instruction still waiting on a producer is
// "unsafe": its processors may block awaiting pages. The MC never hands
// the last free processor to an unsafe instruction — one processor is
// always left for safe work, which guarantees the producers at the
// bottom of every query tree keep running and the machine cannot
// deadlock in a circular wait between processors and data.
func (m *Machine) pumpIPs() {
	for len(m.freeIPs) > 0 {
		granted := false
		kept := m.ipRequests[:0]
		for _, req := range m.ipRequests {
			if req.want <= 0 || req.ic.cur != req.instr || req.instr == nil {
				continue // stale
			}
			if granted || len(m.freeIPs) == 0 {
				kept = append(kept, req)
				continue
			}
			if !req.ic.isSafe() && len(m.freeIPs) < 2 {
				kept = append(kept, req) // hold the reserve
				continue
			}
			p := m.freeIPs[len(m.freeIPs)-1]
			m.freeIPs = m.freeIPs[:len(m.freeIPs)-1]
			req.want--
			if req.want > 0 {
				kept = append(kept, req)
			}
			granted = true
			c := req.ic
			if m.tracing() {
				m.event(obs.EvGrant, "MC", req.instr.q.id, req.instr.id, -1, 0,
					"MC: grant IP %d to IC %d", p.id, c.id)
			}
			m.observeMC()
			// The grant is a small control message on the inner ring.
			m.innerSend(m.cfg.HW.ControlBytes, func() { c.gainIP(p) })
		}
		m.ipRequests = append([]*ipRequest(nil), kept...)
		if !granted {
			return
		}
	}
}

// releaseIP returns a processor to the pool (a control message to the
// MC on the inner ring) and re-arbitrates. A processor that failed
// while assigned is dropped from the pool instead.
func (m *Machine) releaseIP(p *ip) {
	p.instr = nil
	p.ic = nil
	m.innerSend(m.cfg.HW.ControlBytes, func() {
		m.observeMC()
		if !p.failed {
			m.freeIPs = append(m.freeIPs, p)
		}
		m.pumpIPs()
	})
}

// ScheduleIPFailure disables processor id at virtual time at. The MC
// notices at the next allocation boundary: the processor is withdrawn
// from the free pool (or dropped at its next release) and never granted
// again — the paper's requirement 5 that the design "survive an
// arbitrary number of disabled processors". Call before Run.
//
// A time in the past is clamped to "now" by the simulator's monotonic
// clock, and failing an already-failed processor is a no-op, so
// repeated or late calls are safe. If every processor ends up failed
// while queries are outstanding, Run returns a FaultError rather than
// stalling.
func (m *Machine) ScheduleIPFailure(id int, at time.Duration) error {
	if id < 0 || id >= len(m.ips) {
		return fmt.Errorf("machine: no IP %d", id)
	}
	m.s.At(at, func() { m.failIP(m.ips[id], "scheduled failure") })
	return nil
}

// ---- Ring transport ----

// sendOuter ships bytes over the outer ring, invoking deliver at
// arrival. Serialization occupies the shared loop; propagation adds a
// mean hop latency.
func (m *Machine) sendOuter(bytes int, deliver func()) {
	m.stats.OuterRingPackets++
	m.stats.OuterRingBytes += int64(bytes)
	m.observe("machine.outer_ring_bytes", float64(bytes))
	ser := m.cfg.HW.OuterRing.SerializationTime(bytes)
	prop := m.meanOuterHops()
	finish := m.outer.Serve(ser, func() { m.s.After(prop, deliver) })
	m.observeBusy("machine.outer_ring_busy_us", finish-ser, ser)
}

// broadcastOuter ships one packet whose delivery fans out to several
// recipients simultaneously — the broadcast facility of requirement 4.
func (m *Machine) broadcastOuter(bytes int, deliver []func()) {
	m.stats.OuterRingPackets++
	m.stats.OuterRingBytes += int64(bytes)
	m.observe("machine.outer_ring_bytes", float64(bytes))
	ser := m.cfg.HW.OuterRing.SerializationTime(bytes)
	prop := m.meanOuterHops()
	finish := m.outer.Serve(ser, func() {
		m.s.After(prop, func() {
			for _, fn := range deliver {
				fn()
			}
		})
	})
	m.observeBusy("machine.outer_ring_busy_us", finish-ser, ser)
}

// sendInner ships a control message on the inner ring.
func (m *Machine) sendInner(bytes int, deliver func()) {
	m.stats.InnerRingPackets++
	m.stats.InnerRingBytes += int64(bytes)
	m.observe("machine.inner_ring_bytes", float64(bytes))
	ser := m.cfg.HW.InnerRing.SerializationTime(bytes)
	prop := time.Duration(m.cfg.ICs/2+1) * m.cfg.HW.InnerRing.HopDelay
	finish := m.inner.Serve(ser, func() { m.s.After(prop, deliver) })
	m.observeBusy("machine.inner_ring_busy_us", finish-ser, ser)
}

func (m *Machine) meanOuterHops() time.Duration {
	return time.Duration((m.cfg.ICs+m.cfg.IPs)/2+1) * m.cfg.HW.OuterRing.HopDelay
}

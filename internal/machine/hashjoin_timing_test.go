package machine

import (
	"testing"

	"dfdbm/internal/query"
)

// TestHashJoinTimingIdenticalResults flips the opt-in hash-cost timing
// model: the answer must be byte-for-byte what the default (paper n·m
// nested-loops cost) run computes, only the simulated clock may move.
func TestHashJoinTimingIdenticalResults(t *testing.T) {
	cat, qs := testDB(t, 0.1)
	q := qs[2] // join under restricts: an equi-join runs the hash kernel
	want, err := query.ExecuteSerial(cat, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	nestedRel, nestedRes := runOne(t, cat, q, Config{HW: smallHW()})
	hashRel, hashRes := runOne(t, cat, q, Config{HW: smallHW(), HashJoinTiming: true})
	if !nestedRel.EqualMultiset(want) || !hashRel.EqualMultiset(want) {
		t.Fatal("results differ from the serial reference")
	}
	if !nestedRel.EqualMultiset(hashRel) {
		t.Fatal("HashJoinTiming changed the query answer")
	}
	if hashRes.Stats.HashProbes == 0 {
		t.Error("equi-join recorded no hash probes")
	}
	// The hash cost model charges O(n+m) per page pair instead of n·m,
	// so the join-bound makespan must not grow.
	if hashRes.Elapsed > nestedRes.Elapsed {
		t.Errorf("hash timing makespan %v exceeds nested %v", hashRes.Elapsed, nestedRes.Elapsed)
	}
}

// TestNoPagePoolInvariant checks that page pooling is invisible to the
// simulation: same answer, same simulated makespan, same ring traffic.
func TestNoPagePoolInvariant(t *testing.T) {
	cat, qs := testDB(t, 0.1)
	q := qs[2]
	pooledRel, pooledRes := runOne(t, cat, q, Config{HW: smallHW()})
	bareRel, bareRes := runOne(t, cat, q, Config{HW: smallHW(), NoPagePool: true})
	if !pooledRel.EqualMultiset(bareRel) {
		t.Fatal("page pool changed the query answer")
	}
	if pooledRes.Elapsed != bareRes.Elapsed {
		t.Errorf("page pool changed the makespan: %v vs %v", pooledRes.Elapsed, bareRes.Elapsed)
	}
	if pooledRes.Stats.OuterRingPackets != bareRes.Stats.OuterRingPackets {
		t.Errorf("page pool changed ring traffic: %d vs %d packets",
			pooledRes.Stats.OuterRingPackets, bareRes.Stats.OuterRingPackets)
	}
	if bareRes.Stats.PagesRecycled != 0 || bareRes.Stats.PoolHits != 0 {
		t.Errorf("NoPagePool still recycled pages: %+v", bareRes.Stats)
	}
}

package machine

import (
	"fmt"

	"dfdbm/internal/obs"
)

// Tracing and metrics: when Config.Obs carries a sink (or the legacy
// Config.Trace writer is set), the machine emits one structured event
// per protocol step, stamped with the virtual time. Through the text
// sink the trace reads as it always has, making the packet protocol of
// Figures 4.3–4.5 observable:
//
//	[  12.345ms] MC: admit query 0 (4 instructions)
//	[  13.001ms] MC: grant IP 3 to IC 2
//	[  15.770ms] IC2 -> IP3: restrict page 0 of t1 (flush=false)
//	[  48.770ms] IP3 -> IC2: done page 0
//	[  50.102ms] IC4: broadcast inner page 1 (last=false)
//	[  61.440ms] IP5: ignored broadcast of inner page 2 (buffer full)
//	[  99.018ms] IC4: instruction join complete
//
// The JSONL and Chrome sinks carry the same events with their full
// structured context (component, query, instruction, page, bytes).
// Each text line is built in one buffer and written with a single
// Write, so writers shared between machines cannot interleave within a
// line; the first sink error stops the stream and is reported by Run.
//
// When Config.Obs carries a metrics registry, the ring/processor/
// storage meters additionally record virtual-time timelines (see the
// machine.* metric names in Run).
//
// Tracing and metrics cost ~nothing when disabled: one nil check per
// event or sample.

// event emits one structured protocol event when tracing is enabled.
// qid, instr, and page are -1 when not applicable; bytes is the moved
// payload size or 0.
func (m *Machine) event(kind obs.EventKind, comp string, qid, instr, page, bytes int, format string, args ...interface{}) {
	o := m.obs
	if !o.Enabled() {
		return
	}
	o.Emit(obs.Event{
		TS:    m.s.Now(),
		Kind:  kind,
		Comp:  comp,
		Query: qid,
		Instr: instr,
		Page:  page,
		Bytes: bytes,
		Msg:   fmt.Sprintf(format, args...),
	})
}

// observe accumulates v into the named virtual-time timeline when
// metrics are enabled.
func (m *Machine) observe(name string, v float64) {
	if o := m.obs; o.MetricsOn() {
		o.Registry().Add(name, m.s.Now(), v)
	}
}

// sample appends a (now, v) point to the named series when metrics are
// enabled.
func (m *Machine) sample(name string, v float64) {
	if o := m.obs; o.MetricsOn() {
		o.Registry().Sample(name, m.s.Now(), v)
	}
}

package machine

import (
	"fmt"
	"time"

	"dfdbm/internal/obs"
)

// Tracing and metrics: when Config.Obs carries a sink (or the legacy
// Config.Trace writer is set), the machine emits one structured event
// per protocol step, stamped with the virtual time. Through the text
// sink the trace reads as it always has, making the packet protocol of
// Figures 4.3–4.5 observable:
//
//	[  12.345ms] MC: admit query 0 (4 instructions)
//	[  13.001ms] MC: grant IP 3 to IC 2
//	[  15.770ms] IC2 -> IP3: restrict page 0 of t1 (flush=false)
//	[  48.770ms] IP3 -> IC2: done page 0
//	[  50.102ms] IC4: broadcast inner page 1 (last=false)
//	[  61.440ms] IP5: ignored broadcast of inner page 2 (buffer full)
//	[  99.018ms] IC4: instruction join complete
//
// The JSONL and Chrome sinks carry the same events with their full
// structured context (component, query, instruction, page, bytes).
// Each text line is built in one buffer and written with a single
// Write, so writers shared between machines cannot interleave within a
// line; the first sink error stops the stream and is reported by Run.
//
// When Config.Obs carries a metrics registry, the ring/processor/
// storage meters additionally record virtual-time timelines (see the
// machine.* metric names in Run).
//
// Tracing and metrics cost ~nothing when disabled: one nil check per
// event or sample.

// tracing reports whether event emission is on. Call sites guard with
// it before building an event's arguments, so the disabled path costs
// one nil check and zero allocations per event (the zero-overhead
// guarantee, enforced by TestDisabledObservabilityAllocs).
func (m *Machine) tracing() bool { return m.obs.Enabled() }

// event emits one structured protocol event when tracing is enabled.
// qid, instr, and page are -1 when not applicable; bytes is the moved
// payload size or 0.
func (m *Machine) event(kind obs.EventKind, comp string, qid, instr, page, bytes int, format string, args ...interface{}) {
	o := m.obs
	if !o.Enabled() {
		return
	}
	o.Emit(obs.Event{
		TS:    m.s.Now(),
		Kind:  kind,
		Comp:  comp,
		Query: qid,
		Instr: instr,
		Page:  page,
		Bytes: bytes,
		Msg:   fmt.Sprintf(format, args...),
	})
}

// observe accumulates v into the named virtual-time timeline when
// metrics are enabled.
func (m *Machine) observe(name string, v float64) {
	if o := m.obs; o.MetricsOn() {
		o.Registry().Add(name, m.s.Now(), v)
	}
}

// observeBusy charges a device busy interval [start, start+d) into the
// named timeline, spread across the buckets it overlaps, so the
// saturation report sees the actual service interval rather than a
// point charge at the enqueue time.
func (m *Machine) observeBusy(name string, start, d time.Duration) {
	if o := m.obs; o.MetricsOn() {
		o.Registry().AddBusy(name, start, d)
	}
}

// sample appends a (now, v) point to the named series when metrics are
// enabled.
func (m *Machine) sample(name string, v float64) {
	if o := m.obs; o.MetricsOn() {
		o.Registry().Sample(name, m.s.Now(), v)
	}
}

// ---- Causal spans ----
//
// When Config.Obs has spans enabled (Observer.EnableSpans), the
// machine additionally records the causal span tree of the run: a
// query span per admitted query, an instruction span per query-tree
// node, a packet span per dispatched instruction packet, an exec span
// per processor compute burst, plus broadcast rounds, cache/disk
// transfers, and recovery episodes. obs.BuildProfile folds the tree
// into the per-node EXPLAIN ANALYZE report. Spans are strictly opt-in:
// without a tracker the event stream and all timings are unchanged.

// spansOn reports whether span recording is enabled; like tracing, the
// disabled path is a nil check.
func (m *Machine) spansOn() bool { return m.obs.SpansOn() }

// beginSpan opens a span at the current virtual time.
func (m *Machine) beginSpan(kind obs.SpanKind, parent *obs.Span, comp, name string, qid, instr, page int) *obs.Span {
	return m.obs.Spans().Begin(kind, parent, m.s.Now(), comp, name, qid, instr, page)
}

// endSpan closes a span at the current virtual time (nil-safe).
func (m *Machine) endSpan(s *obs.Span) {
	if s != nil {
		m.obs.Spans().End(s, m.s.Now())
	}
}

// recordSpan records a span whose extent is already known (a compute
// burst or transfer scheduled from start to end).
func (m *Machine) recordSpan(kind obs.SpanKind, parent *obs.Span, start, end time.Duration, comp, name string, qid, instr, page int) {
	m.obs.Spans().Record(kind, parent, start, end, comp, name, qid, instr, page)
}

// noteResultOut credits one egress result page to the instruction's
// span counters.
func (m *Machine) noteResultOut(mi *minstr, tuples int) {
	if s := mi.span; s != nil {
		s.PagesOut.Add(1)
		s.TuplesOut.Add(int64(tuples))
	}
}

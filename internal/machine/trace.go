package machine

import (
	"fmt"
	"io"
)

// Tracing: when Config.Trace is set, the machine writes one line per
// protocol event, prefixed with the virtual time. The trace makes the
// packet protocol of Figures 4.3–4.5 observable:
//
//	[  12.345ms] MC: admit query 0 (4 instructions)
//	[  13.001ms] MC: grant IP 3 to IC 2
//	[  15.770ms] IC2 -> IP3: restrict page 0 of t1 (flush=false)
//	[  48.770ms] IP3 -> IC2: done page 0
//	[  50.102ms] IC4: broadcast inner page 1 (last=false)
//	[  61.440ms] IP5: ignored broadcast of inner page 2 (buffer full)
//	[  99.018ms] IC4: instruction join complete
//
// Tracing costs nothing when disabled (a nil check per event).

func (m *Machine) tracef(format string, args ...interface{}) {
	if m.cfg.Trace == nil {
		return
	}
	fmt.Fprintf(m.cfg.Trace, "[%12v] ", m.s.Now())
	fmt.Fprintf(m.cfg.Trace, format, args...)
	io.WriteString(m.cfg.Trace, "\n")
}

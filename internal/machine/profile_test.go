package machine

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dfdbm/internal/obs"
)

// spanRun executes one query with spans and metrics enabled and
// returns the observer plus the run's results.
func spanRun(t testing.TB, queryIdx int, cfg Config) (*obs.Observer, *Results) {
	t.Helper()
	if cfg.Obs == nil {
		cfg.Obs = obs.New(nil, obs.NewRegistry(time.Millisecond))
	}
	cfg.Obs.EnableSpans()
	cat, qs := testDB(t, 0.05)
	m, err := New(cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(qs[queryIdx]); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return cfg.Obs, res
}

// TestGoldenSpanTraceDeterminism extends the golden-trace property to
// spans: two same-seed runs with spans enabled produce byte-identical
// JSONL and Chrome traces.
func TestGoldenSpanTraceDeterminism(t *testing.T) {
	for _, format := range []string{"jsonl", "chrome"} {
		var bufs [2]bytes.Buffer
		for i := range bufs {
			sink, err := obs.NewSink(format, &bufs[i])
			if err != nil {
				t.Fatal(err)
			}
			o := obs.New(sink, nil)
			o.EnableSpans()
			traceOne(t, o, 2)
			if err := o.Close(); err != nil {
				t.Fatal(err)
			}
		}
		if bufs[0].Len() == 0 {
			t.Fatalf("%s: empty trace", format)
		}
		if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
			t.Errorf("%s: same-seed span traces differ", format)
		}
	}
}

// TestSpansLeaveEventStreamUnchanged: enabling spans only adds
// span-begin/span-end lines — stripping them recovers exactly the
// spans-disabled JSONL stream, so existing trace consumers are
// unaffected.
func TestSpansLeaveEventStreamUnchanged(t *testing.T) {
	var plain, spanned bytes.Buffer
	o := obs.New(obs.NewJSONLSink(&plain), nil)
	traceOne(t, o, 2)
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	os := obs.New(obs.NewJSONLSink(&spanned), nil)
	os.EnableSpans()
	traceOne(t, os, 2)
	if err := os.Close(); err != nil {
		t.Fatal(err)
	}
	var kept []string
	sawSpans := false
	for _, line := range strings.Split(spanned.String(), "\n") {
		if strings.Contains(line, `"kind":"span-begin"`) || strings.Contains(line, `"kind":"span-end"`) {
			sawSpans = true
			continue
		}
		kept = append(kept, line)
	}
	if !sawSpans {
		t.Fatal("spans enabled but no span events in the stream")
	}
	if got := strings.Join(kept, "\n"); got != plain.String() {
		t.Error("span events perturbed the legacy event stream")
	}
}

// TestSpanStreamReconstructs: the JSONL stream round-trips through
// ReadSpans into the same profile the live tracker produces.
func TestSpanStreamReconstructs(t *testing.T) {
	var buf bytes.Buffer
	o := obs.New(obs.NewJSONLSink(&buf), nil)
	o.EnableSpans()
	res := traceOne(t, o, 2)
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	fromStream, err := obs.ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	live := o.Spans().Snapshot()
	if len(fromStream) != len(live) || len(live) == 0 {
		t.Fatalf("stream has %d spans, tracker %d", len(fromStream), len(live))
	}
	lp := obs.BuildProfile(live, res.Elapsed)
	sp := obs.BuildProfile(fromStream, res.Elapsed)
	if len(lp.Nodes) != len(sp.Nodes) {
		t.Fatalf("profiles differ: %d vs %d nodes", len(lp.Nodes), len(sp.Nodes))
	}
	for i := range lp.Nodes {
		if lp.Nodes[i].Busy != sp.Nodes[i].Busy || lp.Nodes[i].Wait != sp.Nodes[i].Wait {
			t.Errorf("node %d: live busy/wait %v/%v, stream %v/%v",
				i, lp.Nodes[i].Busy, lp.Nodes[i].Wait, sp.Nodes[i].Busy, sp.Nodes[i].Wait)
		}
	}
}

// TestProfileAttributionIdentity is the acceptance criterion for the
// EXPLAIN ANALYZE report on a real run: per-node busy + wait plus idle
// sums to the makespan exactly, and the counters are populated.
func TestProfileAttributionIdentity(t *testing.T) {
	o, res := spanRun(t, 2, Config{HW: smallHW()})
	p := obs.BuildProfile(o.Spans().Snapshot(), res.Elapsed)
	if got := p.Attributed() + p.Idle; got != res.Elapsed {
		t.Fatalf("attributed %v + idle %v = %v != makespan %v",
			p.Attributed(), p.Idle, got, res.Elapsed)
	}
	if len(p.Nodes) == 0 || len(p.Queries) != 1 {
		t.Fatalf("profile shape: %d nodes, %d queries", len(p.Nodes), len(p.Queries))
	}
	var firings, pagesIn int64
	var busy time.Duration
	for i := range p.Nodes {
		firings += p.Nodes[i].Firings
		pagesIn += p.Nodes[i].PagesIn
		busy += p.Nodes[i].Busy
	}
	if firings == 0 || pagesIn == 0 || busy == 0 {
		t.Errorf("profile counters empty: firings=%d pages-in=%d busy=%v", firings, pagesIn, busy)
	}
	if p.Nodes[len(p.Nodes)-1].TuplesOut == 0 {
		t.Error("root node produced no tuples")
	}
	var text bytes.Buffer
	if err := p.Text(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "EXPLAIN ANALYZE") {
		t.Error("text report missing header")
	}
	if o.Spans().ActiveCount() != 0 {
		t.Errorf("%d spans still open after the run", o.Spans().ActiveCount())
	}
}

// TestSaturationDistinguishesWorkloads is the other acceptance
// criterion: the saturation report names different first-saturating
// resources for two different workloads — a memory-starved
// configuration bottlenecks on the disk, while a slow outer ring with
// ample memory bottlenecks on the ring.
func TestSaturationDistinguishesWorkloads(t *testing.T) {
	bottleneck := func(cfg Config) string {
		o := obs.New(nil, obs.NewRegistry(time.Millisecond))
		cfg.Obs = o
		cfg.Obs.EnableSpans()
		cat, qs := testDB(t, 0.05)
		m, err := New(cat, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Submit(qs[2]); err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return obs.Saturation(o.Registry(), res.Elapsed, m.Resources()).First()
	}

	// Workload 1: two pages of local memory and two of cache force
	// every operand through the two 3330 drives.
	diskBound := bottleneck(Config{HW: smallHW(), ICLocalPages: 2, ICCachePages: 2})

	// Workload 2: ample memory but a 100x slower outer ring.
	slow := smallHW()
	slow.OuterRing.BitsPerSec = 4e5
	slow.Disk.AvgSeek = 0
	slow.Disk.AvgRotation = 0
	slow.Disk.TransferBytesPerSec = 1e9
	ringBound := bottleneck(Config{HW: slow, ICLocalPages: 64, ICCachePages: 256})

	if diskBound != "disk" {
		t.Errorf("memory-starved workload bottleneck = %q, want disk", diskBound)
	}
	if ringBound != "outer ring" {
		t.Errorf("slow-ring workload bottleneck = %q, want outer ring", ringBound)
	}
	if diskBound == ringBound {
		t.Errorf("both workloads report the same bottleneck %q", diskBound)
	}
}

// TestDisabledObservabilityAllocs enforces the zero-cost contract: with
// no observer attached, the per-event instrumentation path — the
// tracing/metrics/span guards every hot site goes through — allocates
// nothing.
func TestDisabledObservabilityAllocs(t *testing.T) {
	cat, qs := testDB(t, 0.05)
	m, err := New(cat, Config{HW: smallHW()})
	if err != nil {
		t.Fatal(err)
	}
	_ = qs
	allocs := testing.AllocsPerRun(1000, func() {
		// The exact shape of every instrumented call site: guard first,
		// then (never, here) the event or span construction.
		if m.tracing() {
			m.event(obs.EvInstr, "IP0", 0, 0, 0, 0, "instr page %d", 0)
		}
		if m.spansOn() {
			m.recordSpan(obs.SpanExec, nil, 0, time.Millisecond, "IP0", "exec", 0, 0, 0)
		}
		m.observe("machine.outer_ring_bytes", 4096)
		m.observeBusy("machine.ip_busy_us", 0, time.Millisecond)
		m.sample("machine.pool_pages", 1)
		m.observeMC()
	})
	if allocs != 0 {
		t.Errorf("disabled observability allocates %v per event, want 0", allocs)
	}
}

// BenchmarkMachineWithJSONLTrace and BenchmarkMachineWithSpans complete
// the BenchmarkMachine family (nil sink vs text in obs_test.go): the
// structured sink and the full span tree.
func BenchmarkMachineWithJSONLTrace(b *testing.B) {
	cat, qs := testDB(b, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		m, err := New(cat, Config{HW: smallHW(), Obs: obs.New(obs.NewJSONLSink(&buf), nil)})
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Submit(qs[2]); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMachineWithSpans(b *testing.B) {
	cat, qs := testDB(b, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := obs.New(nil, obs.NewRegistry(0))
		o.EnableSpans()
		m, err := New(cat, Config{HW: smallHW(), Obs: o})
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Submit(qs[2]); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

package machine

import (
	"testing"
	"time"

	"dfdbm/internal/query"
)

// TestNoDuplicateJoinsUnderRebroadcast is the regression test for a
// protocol race: while an IP is joining inner page i, a re-broadcast of
// page i (another processor's recovery) must not be buffered and joined
// a second time. At this scale the race occurs reliably without the
// execIdx guard.
func TestNoDuplicateJoinsUnderRebroadcast(t *testing.T) {
	cat, qs := testDB(t, 0.3)
	q := qs[2]
	want, err := query.ExecuteSerial(cat, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, res := runOne(t, cat, q, Config{HW: smallHW(), IPBufferPages: 1, IPsPerInstruction: 8})
	if got.Cardinality() != want.Cardinality() {
		t.Fatalf("machine %d tuples, serial %d (duplicate pairs joined?)",
			got.Cardinality(), want.Cardinality())
	}
	if !got.EqualMultiset(want) {
		t.Fatal("machine result differs from serial reference")
	}
	if res.Stats.RecoveryRequests == 0 {
		t.Skip("no re-broadcasts occurred; race not exercised at this scale")
	}
}

// TestFullBenchmarkLargerScale runs every benchmark query at a scale
// where joins span many pages and several IPs work each instruction.
func TestFullBenchmarkLargerScale(t *testing.T) {
	if testing.Short() {
		t.Skip("larger-scale sweep skipped in -short mode")
	}
	cat, qs := testDB(t, 0.3)
	for i, q := range qs {
		want, err := query.ExecuteSerial(cat, q, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := runOne(t, cat, q, Config{HW: smallHW(), IPsPerInstruction: 8, IPBufferPages: 2})
		if !got.EqualMultiset(want) {
			t.Errorf("query %d: machine %d tuples, serial %d",
				i+1, got.Cardinality(), want.Cardinality())
		}
	}
}

// TestSurvivesDisabledProcessors exercises requirement 5: processors
// failing during the run degrade capacity but not correctness.
func TestSurvivesDisabledProcessors(t *testing.T) {
	cat, qs := testDB(t, 0.1)
	q := qs[5] // 2 joins, 3 restricts
	want, err := query.ExecuteSerial(cat, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(cat, Config{HW: smallHW(), IPs: 8, IPsPerInstruction: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Kill six of the eight processors shortly after the run starts.
	for id := 0; id < 6; id++ {
		if err := m.ScheduleIPFailure(id, 5*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Submit(q); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.PerQuery[0].Relation.EqualMultiset(want) {
		t.Error("result wrong after processor failures")
	}

	// A healthy machine of the same size must be at least as fast.
	healthy, err := New(cat, Config{HW: smallHW(), IPs: 8, IPsPerInstruction: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := healthy.Submit(q); err != nil {
		t.Fatal(err)
	}
	hres, err := healthy.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The degraded machine must not beat the healthy one by more than
	// scheduling noise (this workload is disk-bound, so losing IPs
	// barely moves the makespan — the point here is correctness).
	if hres.Elapsed > res.Elapsed+res.Elapsed/20 {
		t.Errorf("healthy machine (%v) much slower than degraded machine (%v)",
			hres.Elapsed, res.Elapsed)
	}
}

func TestScheduleIPFailureValidation(t *testing.T) {
	cat, _ := testDB(t, 0.02)
	m, err := New(cat, Config{HW: smallHW()})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ScheduleIPFailure(-1, 0); err == nil {
		t.Error("negative IP id accepted")
	}
	if err := m.ScheduleIPFailure(10_000, 0); err == nil {
		t.Error("out-of-range IP id accepted")
	}
}

// TestExpandability: adding processors speeds the benchmark up
// (requirement 5's other half: processors can be added simply).
func TestExpandability(t *testing.T) {
	cat, qs := testDB(t, 0.2)
	q := qs[7]
	run := func(ips int) time.Duration {
		m, err := New(cat, Config{HW: smallHW(), IPs: ips, IPsPerInstruction: 8})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Submit(q); err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	small := run(2)
	big := run(24)
	if big >= small {
		t.Errorf("24 IPs (%v) not faster than 2 IPs (%v)", big, small)
	}
}

package figures

import (
	"strings"
	"testing"
)

// small keeps figure tests quick: a 5% database.
var small = Params{Scale: 0.05, Seed: 3}

func TestAllFiguresRender(t *testing.T) {
	for _, f := range All() {
		f := f
		t.Run(f.ID, func(t *testing.T) {
			out, err := f.Render(small)
			if err != nil {
				t.Fatalf("%s: %v", f.ID, err)
			}
			if len(out) < 40 || !strings.Contains(out, "\n") {
				t.Errorf("%s produced implausible output: %q", f.ID, out)
			}
		})
	}
}

func TestRegistryIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, f := range All() {
		if f.ID == "" || f.Title == "" || f.Render == nil {
			t.Errorf("incomplete figure entry %+v", f)
		}
		if seen[f.ID] {
			t.Errorf("duplicate figure id %q", f.ID)
		}
		seen[f.ID] = true
	}
	if len(seen) != 11 {
		t.Errorf("registry has %d figures, want 11", len(seen))
	}
}

func TestFig31ShowsBothStrategies(t *testing.T) {
	out, err := Fig31(small)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"page-level", "relation-level", "rel/page", "processors"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig31 missing %q:\n%s", want, out)
		}
	}
	// One row per processor count.
	lines := strings.Count(out, "\n")
	if lines < len(Fig31ProcessorCounts)+3 {
		t.Errorf("Fig31 too short (%d lines)", lines)
	}
}

func TestTable33ShowsTenXRatio(t *testing.T) {
	out, err := Table33(small)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "tuple-level") || !strings.Contains(out, "page-level") {
		t.Errorf("Table33 missing columns:\n%s", out)
	}
	if !strings.Contains(out, "measured tuple/page ratio") {
		t.Errorf("Table33 missing measured section:\n%s", out)
	}
	// The zero-overhead 1000-byte row has ratio exactly 10.
	if !strings.Contains(out, "10") {
		t.Errorf("Table33 missing the 10x ratio:\n%s", out)
	}
}

func TestFig42ShowsThreeLevels(t *testing.T) {
	out, err := Fig42(small)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"IP<->cache", "cache<->disk", "control", "40 Mbps"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig42 missing %q:\n%s", want, out)
		}
	}
}

func TestJoinAlgorithmsShowsCrossover(t *testing.T) {
	out, err := JoinAlgorithms(Params{Scale: 0.3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "sorted-merge") || !strings.Contains(out, "nested-loops") {
		t.Errorf("JoinAlgorithms missing algorithms:\n%s", out)
	}
	// At this size the crossover falls inside the sweep: both winners
	// appear.
	if !strings.Contains(out, "winner") {
		t.Errorf("missing winner column:\n%s", out)
	}
}

func TestRingComparisonDLCNWins(t *testing.T) {
	out, err := RingComparison(small)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "false") {
		t.Errorf("DLCN lost at some load level:\n%s", out)
	}
}

func TestBroadcastJoinAlwaysCorrect(t *testing.T) {
	out, err := BroadcastJoin(Params{Scale: 0.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "false") {
		t.Errorf("broadcast join produced a wrong answer:\n%s", out)
	}
	if !strings.Contains(out, "broadcasts") {
		t.Errorf("missing broadcasts column:\n%s", out)
	}
}

func TestDirectRoutingSavesTraffic(t *testing.T) {
	out, err := DirectRouting(Params{Scale: 0.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "false") {
		t.Errorf("direct routing produced a wrong answer:\n%s", out)
	}
	if !strings.Contains(out, "IP to IP") {
		t.Errorf("missing direct row:\n%s", out)
	}
}

func TestParallelProjectShowsSpeedupBound(t *testing.T) {
	out, err := ParallelProject(small)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "serial-ic") || !strings.Contains(out, "partitioned") {
		t.Errorf("missing strategies:\n%s", out)
	}
	if !strings.Contains(out, "serialization point") {
		t.Errorf("missing serialization metric:\n%s", out)
	}
}

func TestConcurrencyShowsConflictDelay(t *testing.T) {
	out, err := Concurrency(Params{Scale: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "delayed by concurrency control") {
		t.Errorf("missing conflict line:\n%s", out)
	}
	if strings.Contains(out, "0 of 3 queries delayed") {
		t.Errorf("conflict was not observed:\n%s", out)
	}
}

func TestBenchmarkCacheReuse(t *testing.T) {
	// Two renders with identical params share the cached database; this
	// just checks the cache does not corrupt results.
	a, err := Fig31(small)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig31(small)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("repeated Fig31 renders differ")
	}
}

func TestPageSizeAblationShowsUCurve(t *testing.T) {
	out, err := PageSizeAblation(Params{Scale: 0.3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"2048", "16384", "262144", "exec time", "tasks"} {
		if !strings.Contains(out, want) {
			t.Errorf("page-size ablation missing %q:\n%s", want, out)
		}
	}
}

func TestMemoryCellsAblation(t *testing.T) {
	out, err := MemoryCellsAblation(Params{Scale: 0.3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cells/processor", "vs 2 cells", "+0.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("cells ablation missing %q:\n%s", want, out)
		}
	}
}

// Package figures implements the experiment harness: one generator per
// table or figure of the paper's evaluation, each returning a rendered
// text table. The cmd/figures binary and the repository benchmarks are
// thin wrappers around this package.
package figures

import (
	"fmt"
	"sync"

	"dfdbm/internal/catalog"
	"dfdbm/internal/direct"
	"dfdbm/internal/query"
	"dfdbm/internal/workload"
)

// Params configures a figure rendering.
type Params struct {
	// Scale is the database scale factor: 1.0 reproduces the paper's
	// 5.5 MB database.
	Scale float64
	// Seed drives the workload generator.
	Seed int64
}

func (p Params) withDefaults() Params {
	if p.Scale == 0 {
		p.Scale = 1.0
	}
	if p.Seed == 0 {
		p.Seed = 5
	}
	return p
}

// Figure is one regenerable experiment.
type Figure struct {
	// ID is the short identifier used by the -only flag.
	ID string
	// Title describes the paper artifact being reproduced.
	Title string
	// Render runs the experiment and returns the rendered table.
	Render func(Params) (string, error)
}

// All returns every figure in paper order.
func All() []Figure {
	return []Figure{
		{ID: "fig31", Title: "Figure 3.1: page-level vs relation-level granularity", Render: Fig31},
		{ID: "table33", Title: "Section 3.3: arbitration-network traffic analysis", Render: Table33},
		{ID: "fig42", Title: "Figure 4.2: bandwidth requirements of DIRECT", Render: Fig42},
		{ID: "pagesize", Title: "Section 3.3 ablation: page size vs traffic and concurrency", Render: PageSizeAblation},
		{ID: "cells", Title: "Section 3.2 ablation: memory cells per processor", Render: MemoryCellsAblation},
		{ID: "joins", Title: "Section 2.1: join algorithms, one vs many processors", Render: JoinAlgorithms},
		{ID: "rings", Title: "Section 4.1: DLCN vs Newhall vs Pierce loops", Render: RingComparison},
		{ID: "broadcast", Title: "Section 4.2: broadcast join protocol on the ring machine", Render: BroadcastJoin},
		{ID: "routing", Title: "Section 5: IP-to-IP direct routing ablation", Render: DirectRouting},
		{ID: "project", Title: "Section 5: parallel project operator", Render: ParallelProject},
		{ID: "concurrency", Title: "Section 4.0: multi-query concurrency control", Render: Concurrency},
	}
}

// benchmarkCache memoizes the generated database, bound queries, and
// DIRECT profiles per (scale, seed, page size): figure sweeps re-use
// them instead of re-running the serial profiler.
var benchmarkCache sync.Map

type benchKey struct {
	scale    float64
	seed     int64
	pageSize int
}

type benchVal struct {
	cat   *catalog.Catalog
	trees []*query.Tree
	profs []direct.QueryProfile
	err   error
}

func benchmarkFor(p Params, pageSize int) (*catalog.Catalog, []*query.Tree, []direct.QueryProfile, error) {
	key := benchKey{scale: p.Scale, seed: p.Seed, pageSize: pageSize}
	if v, ok := benchmarkCache.Load(key); ok {
		bv := v.(benchVal)
		return bv.cat, bv.trees, bv.profs, bv.err
	}
	cat, trees, err := workload.Build(workload.Config{Seed: p.Seed, Scale: p.Scale, PageSize: pageSize})
	var profs []direct.QueryProfile
	if err == nil {
		profs, err = direct.ProfileAll(cat, trees, pageSize)
	}
	bv := benchVal{cat: cat, trees: trees, profs: profs, err: err}
	benchmarkCache.Store(key, bv)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("figures: building benchmark: %w", err)
	}
	return cat, trees, profs, nil
}

package figures

import (
	"fmt"
	"time"

	"dfdbm/internal/core"
	"dfdbm/internal/hw"
	"dfdbm/internal/pred"
	"dfdbm/internal/query"
	"dfdbm/internal/relalg"
	"dfdbm/internal/relation"
	"dfdbm/internal/stats"
	"dfdbm/internal/workload"
)

// JoinAlgorithms reproduces the Section 2.1 contrast: the sorted-merge
// algorithm is the fastest join on a single processor (O(n log n)
// versus O(n²)), but nested loops parallelizes perfectly — with p
// processors its time falls as 1/p, overtaking sort-merge.
//
// The single-processor columns are measured wall-clock on the real
// operator kernels; the multiprocessor column is the modeled time of
// nested loops on p LSI-11-class processors (work divided by p, which
// is exact for this algorithm since page pairs are independent).
func JoinAlgorithms(p Params) (string, error) {
	p = p.withDefaults()
	n := int(4000 * p.Scale)
	if n < 200 {
		n = 200
	}
	outer, inner, err := workload.JoinPair(p.Seed, 4096, n, n)
	if err != nil {
		return "", err
	}
	cond := pred.Equi("k1", "k1")

	// Measured single-processor times.
	t0 := time.Now()
	nl, err := relalg.NestedLoopsJoin(outer, inner, cond, "nl")
	if err != nil {
		return "", err
	}
	nlTime := time.Since(t0)
	t0 = time.Now()
	sm, err := relalg.SortMergeJoin(outer, inner, cond, "sm")
	if err != nil {
		return "", err
	}
	smTime := time.Since(t0)
	if !nl.EqualMultiset(sm) {
		return "", fmt.Errorf("figures: join algorithms disagree (%d vs %d tuples)",
			nl.Cardinality(), sm.Cardinality())
	}

	// Modeled 1979 times: nested loops is n·m pair comparisons; sorted
	// merge is 2·n·log2(n) comparison-ish steps plus a linear merge.
	proc := hw.Default1979().Proc
	nlWork := proc.JoinTime(n, n)
	smWork := modelSortMerge(n, n, proc)

	tb := stats.NewTable(
		fmt.Sprintf("Section 2.1 — join algorithms, n = m = %d tuples (measured host time and modeled LSI-11 time)", n),
		"processors", "nested-loops (model)", "sorted-merge (model)", "winner")
	for _, procs := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512} {
		nlP := nlWork / time.Duration(procs)
		// Sorting resists parallel speedup on this machine class (the
		// paper: sort-based plans "severely constrain the amount of
		// parallelism"); model the merge phase as serial.
		smP := smWork // no useful speedup
		winner := "nested-loops"
		if smP < nlP {
			winner = "sorted-merge"
		}
		tb.AddRow(procs, nlP, smP, winner)
	}
	extra := fmt.Sprintf("host single-processor measurement: nested-loops %v, sorted-merge %v (result %d tuples)\n",
		nlTime.Round(time.Millisecond), smTime.Round(time.Millisecond), nl.Cardinality())
	return tb.String() + extra, nil
}

// modelSortMerge models the uniprocessor sorted-merge join of Blasgen
// and Eswaran: sort both inputs (n log n comparisons each) then a
// linear merge with a cross product of matching groups.
func modelSortMerge(n, m int, proc hw.Processor) time.Duration {
	log2 := func(x int) int {
		l := 0
		for v := 1; v < x; v <<= 1 {
			l++
		}
		return l
	}
	comparisons := n*log2(n) + m*log2(m) + n + m
	return time.Duration(comparisons) * proc.PerPairJoin
}

// ParallelProject reproduces the Section 5 open problem and its
// resolution: duplicate elimination through a single controller versus
// hash-partitioned elimination across workers, measured on the
// functional engine.
func ParallelProject(p Params) (string, error) {
	p = p.withDefaults()
	n := int(20000 * p.Scale)
	if n < 1000 {
		n = 1000
	}
	rel, err := workload.DuplicateHeavy(p.Seed, 4096, n)
	if err != nil {
		return "", err
	}
	cat, _, _, err := benchmarkFor(p.withDefaults(), 4096)
	if err != nil {
		return "", err
	}
	cat.Put(rel)
	defer cat.Drop(rel.Name())

	tr, err := query.Bind(query.MustParse(`project(dups, [k1, k2])`), cat)
	if err != nil {
		return "", err
	}
	const workers = 8
	tb := stats.NewTable(
		fmt.Sprintf("Section 5 — parallel project: distinct (k1,k2) of %d tuples, %d workers", n, workers),
		"strategy", "tuples out", "host time", "serialization point (tuples)", "speedup bound")
	for _, strat := range []core.ProjectStrategy{core.ProjectSerialIC, core.ProjectPartitioned} {
		eng := core.New(cat, core.Options{
			Granularity: core.PageLevel, Workers: workers, PageSize: 4096, Project: strat,
		})
		res, err := eng.Execute(tr)
		if err != nil {
			return "", err
		}
		// The structural measure of the open problem: how many tuples
		// must funnel through the busiest serialization point. The
		// serial-IC algorithm funnels every projected tuple through one
		// controller; hash partitioning caps any one partition near
		// total/workers, so elimination parallelizes.
		serPoint := serializationPoint(rel, strat, workers)
		tb.AddRow(strat.String(), res.Stats.TuplesOut, res.Stats.Elapsed,
			serPoint, stats.Ratio(float64(n), float64(serPoint)))
	}
	return tb.String(), nil
}

// serializationPoint computes the largest number of projected tuples
// that pass through any single duplicate-elimination structure under
// the given strategy.
func serializationPoint(rel *relation.Relation, strat core.ProjectStrategy, workers int) int {
	proj, err := relalg.NewProjector(rel.Schema(), "k1", "k2")
	if err != nil {
		return 0
	}
	if strat == core.ProjectSerialIC {
		return rel.Cardinality()
	}
	counts := make([]int, workers)
	buf := make([]byte, 0, proj.OutSchema().TupleLen())
	rel.EachRaw(func(raw []byte) bool {
		buf = proj.Apply(buf[:0], raw)
		counts[relalg.HashPartition(buf, workers)]++
		return true
	})
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	return max
}

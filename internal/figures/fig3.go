package figures

import (
	"fmt"
	"strings"

	"dfdbm/internal/core"
	"dfdbm/internal/direct"
	"dfdbm/internal/hw"
	"dfdbm/internal/stats"
)

// Fig31ProcessorCounts is the x axis of Figure 3.1.
var Fig31ProcessorCounts = []int{1, 2, 4, 8, 16, 32, 50, 64}

// Fig31 reproduces Figure 3.1: execution time of the ten-query
// benchmark on DIRECT as a function of the number of processors, under
// page-level and relation-level granularity. The paper reports
// page-level outperforming relation-level by a factor of about two.
func Fig31(p Params) (string, error) {
	p = p.withDefaults()
	pageSize := hw.Default1979().PageSize
	_, _, profs, err := benchmarkFor(p, pageSize)
	if err != nil {
		return "", err
	}

	fig := stats.NewFigure(
		fmt.Sprintf("Figure 3.1 — benchmark execution time (s) vs processors (scale %.2f)", p.Scale),
		"processors")
	pageS := fig.NewSeries("page-level")
	relS := fig.NewSeries("relation-level")
	ratioS := fig.NewSeries("rel/page")

	for _, procs := range Fig31ProcessorCounts {
		pg, err := direct.Run(direct.Config{Processors: procs, Strategy: core.PageLevel}, profs)
		if err != nil {
			return "", err
		}
		rl, err := direct.Run(direct.Config{Processors: procs, Strategy: core.RelationLevel}, profs)
		if err != nil {
			return "", err
		}
		pageS.Add(float64(procs), pg.Elapsed.Seconds())
		relS.Add(float64(procs), rl.Elapsed.Seconds())
		ratioS.Add(float64(procs), stats.Ratio(rl.Elapsed.Seconds(), pg.Elapsed.Seconds()))
	}
	return fig.String(), nil
}

// Fig42ProcessorCounts is the x axis of Figure 4.2.
var Fig42ProcessorCounts = []int{1, 2, 4, 8, 16, 32, 50, 64, 100, 128}

// Fig42 reproduces Figure 4.2: the average bandwidth demand of DIRECT
// with page-level granularity at each level of the storage hierarchy,
// as a function of the number of instruction processors. The paper
// concludes that a 40 Mbps ring suffices for up to about 50 IPs, with
// ~100 Mbps needed for larger configurations.
func Fig42(p Params) (string, error) {
	p = p.withDefaults()
	pageSize := hw.Default1979().PageSize
	_, _, profs, err := benchmarkFor(p, pageSize)
	if err != nil {
		return "", err
	}

	fig := stats.NewFigure(
		fmt.Sprintf("Figure 4.2 — average bandwidth (Mbps) vs instruction processors (scale %.2f)", p.Scale),
		"IPs")
	ipCache := fig.NewSeries("IP<->cache")
	cacheDisk := fig.NewSeries("cache<->disk")
	control := fig.NewSeries("control")

	var crossed40 int
	for _, procs := range Fig42ProcessorCounts {
		rep, err := direct.Run(direct.Config{Processors: procs, Strategy: core.PageLevel}, profs)
		if err != nil {
			return "", err
		}
		ipCache.Add(float64(procs), rep.ProcCacheMbps())
		cacheDisk.Add(float64(procs), rep.CacheDiskMbps())
		control.Add(float64(procs), rep.ControlMbps())
		if crossed40 == 0 && rep.ProcCacheMbps() > 40 {
			crossed40 = procs
		}
	}

	var b strings.Builder
	b.WriteString(fig.String())
	if crossed40 > 0 {
		fmt.Fprintf(&b, "IP<->cache demand first exceeds the 40 Mbps ring at %d IPs\n", crossed40)
	} else {
		b.WriteString("IP<->cache demand stays under the 40 Mbps ring across the sweep\n")
	}
	return b.String(), nil
}

// Table33 reproduces the Section 3.3 closed-form analysis and confirms
// it against traffic measured on the functional data-flow engine.
func Table33(p Params) (string, error) {
	p = p.withDefaults()

	tb := stats.NewTable(
		"Section 3.3 — arbitration-network bytes for a nested-loops join (n=m=1000, 100 B tuples)",
		"page size", "overhead c", "tuple-level", "page-level", "ratio")
	for _, pageBytes := range []int{1000, 10000} {
		for _, c := range []int{0, 32, 100} {
			tp := direct.PaperExample(1000, 1000, pageBytes, c)
			tb.AddRow(pageBytes, c, tp.TupleLevelBytes(), tp.PageLevelBytes(), tp.Ratio())
		}
	}

	measured, err := measuredTrafficRatio(p)
	if err != nil {
		return "", err
	}
	return tb.String() + measured, nil
}

// measuredTrafficRatio runs one benchmark join on the functional engine
// at both granularities and reports the measured arbitration traffic.
func measuredTrafficRatio(p Params) (string, error) {
	// Tuple-level packets grow with the square of the restricted
	// cardinalities; measure at a reduced scale.
	mp := p
	if mp.Scale > 0.2 {
		mp.Scale = 0.2
	}
	cat, trees, _, err := benchmarkFor(mp, 1000)
	if err != nil {
		return "", err
	}
	q := trees[2] // 1 join, 2 restricts

	tb := stats.NewTable(
		fmt.Sprintf("Measured on the functional engine (benchmark query 3, scale %.2f, 1000 B pages)", mp.Scale),
		"granularity", "packets", "arbitration bytes")
	var page, tuple int64
	for _, g := range []core.Granularity{core.PageLevel, core.TupleLevel} {
		eng := core.New(cat, core.Options{Granularity: g, Workers: 4, PageSize: 1000})
		res, err := eng.Execute(q)
		if err != nil {
			return "", err
		}
		tb.AddRow(g.String(), res.Stats.InstructionPackets, res.Stats.ArbitrationBytes)
		if g == core.PageLevel {
			page = res.Stats.ArbitrationBytes
		} else {
			tuple = res.Stats.ArbitrationBytes
		}
	}
	return tb.String() + fmt.Sprintf("measured tuple/page ratio: %.1f\n", stats.Ratio(float64(tuple), float64(page))), nil
}

package figures

import (
	"fmt"
	"time"

	"dfdbm/internal/hw"
	"dfdbm/internal/machine"
	"dfdbm/internal/query"
	"dfdbm/internal/ringnet"
	"dfdbm/internal/stats"
)

// RingComparison reproduces the Section 4.1 interconnect choice: the
// DLCN shift-register insertion ring versus Newhall and Pierce loops
// under a variable-length message load, at increasing offered load —
// the comparison of Reames and Liu that the paper cites to justify the
// insertion ring.
func RingComparison(p Params) (string, error) {
	p = p.withDefaults()
	tb := stats.NewTable(
		"Section 4.1 — loop networks, 16 nodes, 40 Mbps, 64-2048 B messages (mean delay µs)",
		"mean gap (µs)", "offered Mbps", "dlcn", "newhall", "pierce", "dlcn wins")
	for _, gapUS := range []int{2000, 500, 200, 100, 60} {
		row := make(map[ringnet.Kind]ringnet.Result)
		var offered float64
		for _, k := range []ringnet.Kind{ringnet.DLCN, ringnet.Newhall, ringnet.Pierce} {
			res, err := ringnet.Simulate(ringnet.Config{
				Kind:     k,
				Nodes:    16,
				Messages: 3000,
				MeanGap:  time.Duration(gapUS) * time.Microsecond,
				MinLen:   64,
				MaxLen:   2048,
				Seed:     p.Seed,
			})
			if err != nil {
				return "", err
			}
			row[k] = res
			offered = res.OfferedMbps
		}
		wins := row[ringnet.DLCN].MeanDelay <= row[ringnet.Newhall].MeanDelay &&
			row[ringnet.DLCN].MeanDelay <= row[ringnet.Pierce].MeanDelay
		tb.AddRow(gapUS, offered,
			float64(row[ringnet.DLCN].MeanDelay.Microseconds()),
			float64(row[ringnet.Newhall].MeanDelay.Microseconds()),
			float64(row[ringnet.Pierce].MeanDelay.Microseconds()),
			fmt.Sprintf("%v", wins))
	}
	return tb.String(), nil
}

// machineHW scales the ring machine's operand pages with the database
// scale so multi-page operands (and therefore the broadcast protocol)
// are always exercised.
func machineHW(p Params) hw.Config {
	cfg := hw.Default1979()
	if p.Scale < 0.5 {
		cfg.PageSize = 2048
	}
	return cfg
}

// BroadcastJoin runs a benchmark join on the ring machine at several IP
// buffer sizes, reporting the Section 4.2 protocol's behaviour: how
// many broadcasts were sent, how many a full buffer forced an IP to
// ignore, and how many missed-page recoveries followed — with the
// answer checked against the serial executor every time.
func BroadcastJoin(p Params) (string, error) {
	p = p.withDefaults()
	// Small operand pages keep the operands multi-page at every scale,
	// so the protocol (and its drop/recovery path) is always exercised.
	bhw := hw.Default1979()
	bhw.PageSize = 2048
	cat, trees, _, err := benchmarkFor(p, bhw.PageSize)
	if err != nil {
		return "", err
	}
	q := trees[2] // 1 join, 2 restricts
	want, err := query.ExecuteSerial(cat, q, 0)
	if err != nil {
		return "", err
	}

	tb := stats.NewTable(
		fmt.Sprintf("Section 4.2 — broadcast join protocol (benchmark query 3, scale %.2f)", p.Scale),
		"IP buffer pages", "broadcasts", "ignored", "recoveries", "outer-ring Mbps", "elapsed", "correct")
	for _, buf := range []int{1, 2, 4, 8} {
		m, err := machine.New(cat, machine.Config{
			HW:                bhw,
			IPs:               6,
			IPsPerInstruction: 6,
			IPBufferPages:     buf,
		})
		if err != nil {
			return "", err
		}
		if err := m.Submit(q); err != nil {
			return "", err
		}
		res, err := m.Run()
		if err != nil {
			return "", err
		}
		got := res.PerQuery[0].Relation
		tb.AddRow(buf, res.Stats.Broadcasts, res.Stats.BroadcastsIgnored,
			res.Stats.RecoveryRequests, res.OuterRingMbps(), res.Elapsed,
			fmt.Sprintf("%v", got.EqualMultiset(want)))
	}
	return tb.String(), nil
}

// DirectRouting runs the Section 5 ablation: routing result pages
// IP→IP (bypassing the consuming IC) against the baseline IP→IC→IP
// path, measuring the outer-ring traffic saved.
func DirectRouting(p Params) (string, error) {
	p = p.withDefaults()
	pageSize := machineHW(p).PageSize
	cat, _, _, err := benchmarkFor(p, pageSize)
	if err != nil {
		return "", err
	}
	// A unary pipeline is the case the extension targets.
	q, err := query.Bind(query.MustParse(
		`restrict(restrict(r1, val < 500), k1 < 50)`), cat)
	if err != nil {
		return "", err
	}
	want, err := query.ExecuteSerial(cat, q, 0)
	if err != nil {
		return "", err
	}

	tb := stats.NewTable(
		fmt.Sprintf("Section 5 — IP→IP direct routing ablation (scale %.2f)", p.Scale),
		"routing", "outer-ring bytes", "packets", "direct pages", "elapsed", "correct")
	for _, direct := range []bool{false, true} {
		m, err := machine.New(cat, machine.Config{HW: machineHW(p), DirectRouting: direct})
		if err != nil {
			return "", err
		}
		if err := m.Submit(q); err != nil {
			return "", err
		}
		res, err := m.Run()
		if err != nil {
			return "", err
		}
		name := "via IC (paper)"
		if direct {
			name = "IP to IP (Section 5)"
		}
		tb.AddRow(name, res.Stats.OuterRingBytes, res.Stats.OuterRingPackets,
			res.Stats.DirectRoutedPages, res.Elapsed,
			fmt.Sprintf("%v", res.PerQuery[0].Relation.EqualMultiset(want)))
	}
	return tb.String(), nil
}

// Concurrency demonstrates the Section 4.0 requirement: the MC admits
// non-conflicting queries simultaneously and serializes conflicting
// ones, and running a read-only mix concurrently beats running it one
// query at a time.
func Concurrency(p Params) (string, error) {
	p = p.withDefaults()
	pageSize := machineHW(p).PageSize
	cat, trees, _, err := benchmarkFor(p, pageSize)
	if err != nil {
		return "", err
	}
	mix := trees[:5]

	runMix := func(ics int) (*machine.Results, error) {
		m, err := machine.New(cat, machine.Config{HW: machineHW(p), ICs: ics, IPs: 16})
		if err != nil {
			return nil, err
		}
		for _, q := range mix {
			if err := m.Submit(q); err != nil {
				return nil, err
			}
		}
		return m.Run()
	}

	// Few ICs force near-serial admission; many ICs let the mix overlap.
	serialish, err := runMix(3)
	if err != nil {
		return "", err
	}
	concurrent, err := runMix(16)
	if err != nil {
		return "", err
	}

	tb := stats.NewTable(
		fmt.Sprintf("Section 4.0 — multi-query execution (benchmark queries 1-5, scale %.2f)", p.Scale),
		"configuration", "makespan", "IP utilization")
	tb.AddRow("3 ICs (near-serial admission)", serialish.Elapsed, serialish.IPUtilization)
	tb.AddRow("16 ICs (concurrent admission)", concurrent.Elapsed, concurrent.IPUtilization)

	// Conflict demonstration: a writer on r14 behind a reader.
	m, err := machine.New(cat, machine.Config{HW: machineHW(p)})
	if err != nil {
		return "", err
	}
	reader, err := query.Bind(query.MustParse(`restrict(r14, val < 500)`), cat)
	if err != nil {
		return "", err
	}
	// Clone the target so repeated figure runs do not mutate the shared
	// benchmark database.
	r14, err := cat.Get("r14")
	if err != nil {
		return "", err
	}
	scratch := r14.Clone("scratch14")
	cat.Put(scratch)
	defer cat.Drop("scratch14")
	// The writer appends through a real subtree, so it holds its write
	// lock for simulated time (a bare delete resolves instantaneously
	// host-side and would never be observed holding the lock).
	writer, err := query.Bind(query.MustParse(`append(scratch14, restrict(r1, val < 200))`), cat)
	if err != nil {
		return "", err
	}
	reader2, err := query.Bind(query.MustParse(`restrict(scratch14, val < 500)`), cat)
	if err != nil {
		return "", err
	}
	for _, q := range []*query.Tree{reader, writer, reader2} {
		if err := m.Submit(q); err != nil {
			return "", err
		}
	}
	res, err := m.Run()
	if err != nil {
		return "", err
	}
	out := tb.String()
	out += fmt.Sprintf("conflict check: %d of 3 queries delayed by concurrency control (reader on r14, writer and reader on scratch14)\n",
		res.Stats.QueriesDelayedByConflict)
	return out, nil
}

package figures

import (
	"fmt"

	"dfdbm/internal/core"
	"dfdbm/internal/direct"
	"dfdbm/internal/hw"
	"dfdbm/internal/stats"
)

// PageSizeAblation quantifies the Section 3.3 trade-off the paper
// raises and leaves open: "increasing the page size to 10,000 bytes
// will obviously decrease the arbitration network bandwidth
// requirements by another order of magnitude, [but] such an increase
// may have an adverse effect on query execution time because it may
// reduce the maximum degree of concurrency which is possible."
//
// The sweep runs the benchmark on DIRECT with page-level granularity
// at several operand page sizes and a fixed 50-processor pool,
// reporting total instruction packets (the traffic side) and execution
// time (the concurrency side).
func PageSizeAblation(p Params) (string, error) {
	p = p.withDefaults()

	tb := stats.NewTable(
		fmt.Sprintf("Section 3.3 ablation — operand page size vs traffic and concurrency (50 IPs, scale %.2f)", p.Scale),
		"page size", "tasks", "control bytes", "IP<->cache bytes", "exec time", "IP util")
	for _, pageSize := range []int{2 * 1024, 4 * 1024, 16 * 1024, 64 * 1024, 256 * 1024} {
		_, _, profs, err := benchmarkFor(p, pageSize)
		if err != nil {
			return "", err
		}
		cfg := hw.Default1979()
		cfg.PageSize = pageSize
		rep, err := direct.Run(direct.Config{
			Processors: 50,
			Strategy:   core.PageLevel,
			HW:         cfg,
		}, profs)
		if err != nil {
			return "", err
		}
		tb.AddRow(pageSize, rep.Tasks, rep.ControlBytes, rep.ProcCacheBytes,
			rep.Elapsed, rep.ProcUtilization)
	}
	out := tb.String()
	out += "Small pages mean many small instruction packets (control overhead, scheduling\n" +
		"work); very large pages mean too few tasks to keep 50 processors busy. The paper's\n" +
		"16 KB operand size sits in the flat middle of the execution-time curve.\n"
	return out, nil
}

package figures

import (
	"fmt"

	"dfdbm/internal/core"
	"dfdbm/internal/direct"
	"dfdbm/internal/hw"
	"dfdbm/internal/stats"
)

// MemoryCellsAblation justifies the configuration constant the paper
// states without discussion: its Section 3.2 simulation gave each
// processor two memory cells. A memory cell holds a staged instruction,
// so cells-per-processor is the depth of operand prefetch: with one
// cell a processor idles while its next instruction's pages come up
// from disk; with two the fetch overlaps execution; beyond two the
// returns vanish.
func MemoryCellsAblation(p Params) (string, error) {
	p = p.withDefaults()
	pageSize := hw.Default1979().PageSize
	_, _, profs, err := benchmarkFor(p, pageSize)
	if err != nil {
		return "", err
	}

	cellCounts := []int{1, 2, 4, 8}
	reports := make([]direct.Report, len(cellCounts))
	for i, cells := range cellCounts {
		rep, err := direct.Run(direct.Config{
			Processors:        16,
			CellsPerProcessor: cells,
			Strategy:          core.PageLevel,
		}, profs)
		if err != nil {
			return "", err
		}
		reports[i] = rep
	}
	base := reports[1].Elapsed.Seconds() // the paper's two cells

	tb := stats.NewTable(
		fmt.Sprintf("Section 3.2 ablation — memory cells per processor (16 IPs, page-level, scale %.2f)", p.Scale),
		"cells/processor", "exec time", "vs 2 cells", "IP utilization")
	for i, cells := range cellCounts {
		rep := reports[i]
		tb.AddRow(cells, rep.Elapsed,
			fmt.Sprintf("%+.1f%%", 100*(rep.Elapsed.Seconds()-base)/base),
			rep.ProcUtilization)
	}
	out := tb.String()
	out += "The paper's choice of two cells per processor captures nearly all of the\n" +
		"prefetch benefit; one cell serializes disk staging behind execution.\n"
	return out, nil
}

package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestRoundTrip encodes every frame type and decodes it back,
// asserting field-for-field identity.
func TestRoundTrip(t *testing.T) {
	frames := []Frame{
		&Hello{Min: 1, Max: 3, Engine: "machine", Name: "client-7"},
		&Hello{Min: 1, Max: 1},
		&Query{ID: 42, Priority: 2, Text: `restrict(r1, val < 100)`},
		&ResultPage{QueryID: 42, Seq: 0, Name: "t3", PageSize: 2048,
			Schema: []SchemaAttr{{Name: "id", Type: 1}, {Name: "pad", Type: 4, Width: 76}},
			Page:   []byte{1, 2, 3, 4}},
		&ResultPage{QueryID: 42, Seq: 7, Last: true},
		&ResultPage{QueryID: 9, Seq: 0, Last: true, Name: "empty", PageSize: 512,
			Schema: []SchemaAttr{{Name: "k", Type: 2}}},
		&Error{QueryID: SessionQueryID, Code: CodeVersion, Msg: "no overlap"},
		&Error{QueryID: 3, Code: CodeOverloaded, Msg: "queue full"},
		&Stats{QueryID: 42, Engine: "core", Tuples: 1234, Pages: 9, ResultBytes: 99999,
			Queued: 250 * time.Microsecond, Exec: 3 * time.Millisecond, Deferred: true},
		&Hello{Min: 2, Max: 2, Engine: "core", Name: "srv", SessionID: 77},
		&Query{ID: 7, Priority: 1, Text: "r1", TraceID: 0xDEADBEEF},
		&Stats{QueryID: 7, Engine: "core", Tuples: 1, TraceID: 0xDEADBEEF,
			AdmitWait: time.Millisecond, Sched: 10 * time.Microsecond,
			Queued: time.Millisecond + 10*time.Microsecond,
			Exec:   2 * time.Millisecond, Stream: 400 * time.Microsecond},
	}
	for _, f := range frames {
		var buf bytes.Buffer
		if err := Write(&buf, f); err != nil {
			t.Fatalf("Write(%v): %v", f.Type(), err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("Read(%v): %v", f.Type(), err)
		}
		if !reflect.DeepEqual(got, f) {
			t.Errorf("%v round trip:\n got %+v\nwant %+v", f.Type(), got, f)
		}
		if buf.Len() != 0 {
			t.Errorf("%v round trip left %d bytes unread", f.Type(), buf.Len())
		}
	}
}

// TestStreamOfFrames writes several frames back to back and reads them
// in order off one reader, as a session does.
func TestStreamOfFrames(t *testing.T) {
	var buf bytes.Buffer
	in := []Frame{
		&Hello{Min: 1, Max: 1, Engine: "core"},
		&Query{ID: 1, Text: "r1"},
		&Query{ID: 2, Text: "r2"},
		&Stats{QueryID: 1, Engine: "core"},
	}
	for _, f := range in {
		if err := Write(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range in {
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("frame %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := Read(&buf); err != io.EOF {
		t.Errorf("end of stream: got %v, want io.EOF", err)
	}
}

func TestNegotiate(t *testing.T) {
	cases := []struct {
		cmin, cmax, smin, smax uint16
		want                   uint16
		ok                     bool
	}{
		{1, 1, 1, 1, 1, true},
		{1, 3, 1, 2, 2, true},
		{2, 5, 1, 9, 5, true},
		{3, 4, 1, 2, 0, false},
		{1, 1, 2, 3, 0, false},
	}
	for _, c := range cases {
		got, err := Negotiate(c.cmin, c.cmax, c.smin, c.smax)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("Negotiate(%d-%d, %d-%d) = %d, %v; want %d", c.cmin, c.cmax, c.smin, c.smax, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("Negotiate(%d-%d, %d-%d) succeeded, want error", c.cmin, c.cmax, c.smin, c.smax)
		}
	}
}

// TestCrossVersion pins the compatibility contract of the versioned
// codec: frames written at v1 decode at v2 (with the v2 fields zero),
// frames written at v2 to a v2 reader keep the v2 fields, and the v2
// fields are never put on the wire for a v1 peer.
func TestCrossVersion(t *testing.T) {
	// v1-encoded Query read by a v2-aware session at the negotiated
	// version 1: TraceID absent, no error.
	var buf bytes.Buffer
	if err := WriteVersion(&buf, &Query{ID: 3, Text: "r1", TraceID: 55}, 1); err != nil {
		t.Fatal(err)
	}
	f, err := ReadVersion(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q := f.(*Query); q.TraceID != 0 || q.Text != "r1" {
		t.Errorf("v1 query round trip: %+v", q)
	}

	// Stats written at v1 must not leak the v2 stage breakdown.
	buf.Reset()
	s := &Stats{QueryID: 1, Engine: "core", Queued: time.Millisecond,
		Exec: time.Millisecond, TraceID: 9, AdmitWait: time.Second, Stream: time.Second}
	if err := WriteVersion(&buf, s, 1); err != nil {
		t.Fatal(err)
	}
	f, err = ReadVersion(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := f.(*Stats)
	if got.TraceID != 0 || got.AdmitWait != 0 || got.Stream != 0 {
		t.Errorf("v2 fields leaked through a v1 frame: %+v", got)
	}
	if got.Queued != s.Queued || got.Exec != s.Exec {
		t.Errorf("v1 fields lost: %+v", got)
	}

	// A client Hello (no SessionID) is byte-identical at v1 and v2, so
	// a v1 server can always read the opening frame of a v2 client.
	var b1, b2 bytes.Buffer
	h := &Hello{Min: 1, Max: 2, Engine: "core", Name: "c"}
	if err := WriteVersion(&b1, h, 1); err != nil {
		t.Fatal(err)
	}
	if err := WriteVersion(&b2, h, 2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("client Hello differs between v1 and v2 encodings")
	}

	// A v2 server reply carrying a SessionID decodes at v2; the same
	// struct written at the negotiated version 1 omits it entirely.
	buf.Reset()
	reply := &Hello{Min: 2, Max: 2, Engine: "core", SessionID: 123}
	if err := WriteVersion(&buf, reply, 2); err != nil {
		t.Fatal(err)
	}
	f, err = ReadVersion(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if f.(*Hello).SessionID != 123 {
		t.Errorf("session ID lost at v2: %+v", f)
	}
	buf.Reset()
	if err := WriteVersion(&buf, reply, 1); err != nil {
		t.Fatal(err)
	}
	f, err = ReadVersion(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f.(*Hello).SessionID != 0 {
		t.Errorf("session ID leaked through a v1 Hello: %+v", f)
	}
}

// TestReadRejectsMalformed covers the defensive paths: unknown type,
// oversized announcement, truncated payload, trailing bytes.
func TestReadRejectsMalformed(t *testing.T) {
	// Unknown frame type.
	if _, err := Read(bytes.NewReader([]byte{99, 0, 0, 0, 0})); err == nil {
		t.Error("unknown frame type accepted")
	}
	// Oversized length announcement.
	hdr := []byte{byte(TypeQuery), 0, 0, 0, 0}
	binary.LittleEndian.PutUint32(hdr[1:], MaxFrameLen+1)
	if _, err := Read(bytes.NewReader(hdr)); err == nil {
		t.Error("oversized frame accepted")
	}
	// Torn payload.
	var buf bytes.Buffer
	if err := Write(&buf, &Query{ID: 1, Text: "r1"}); err != nil {
		t.Fatal(err)
	}
	torn := buf.Bytes()[:buf.Len()-2]
	if _, err := Read(bytes.NewReader(torn)); err == nil {
		t.Error("torn frame accepted")
	}
	// Trailing garbage inside the declared payload.
	var buf2 bytes.Buffer
	if err := Write(&buf2, &Error{QueryID: 1, Code: CodeExec, Msg: "x"}); err != nil {
		t.Fatal(err)
	}
	full := append([]byte(nil), buf2.Bytes()...)
	full = append(full, 0xAB)
	binary.LittleEndian.PutUint32(full[1:], uint32(len(full)-5))
	if _, err := Read(bytes.NewReader(full)); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Errorf("trailing bytes: got %v, want trailing-bytes error", err)
	}
	// String longer than the remaining payload.
	bad := []byte{byte(TypeError), 0, 0, 0, 0 /* payload: */, 0, 0, 0, 0 /* qid */, 0xFF, 0xFF /* strlen 65535 */}
	binary.LittleEndian.PutUint32(bad[1:], uint32(len(bad)-5))
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("truncated string accepted")
	}
}

// TestWriteRejectsOversized: a frame whose payload exceeds MaxFrameLen
// must be refused at write time, not sent.
func TestWriteRejectsOversized(t *testing.T) {
	p := &ResultPage{QueryID: 1, Seq: 1, Page: make([]byte, MaxFrameLen)}
	if err := Write(io.Discard, p); err == nil {
		t.Error("oversized frame written")
	}
}

// TestWriteRejectsOversizedString: a string field longer than its u16
// length prefix can express must be refused at write time — silently
// truncating the prefix would produce a frame the peer cannot decode
// (trailing bytes) and tear down the whole session.
func TestWriteRejectsOversizedString(t *testing.T) {
	big := strings.Repeat("x", 1<<16)
	if err := Write(io.Discard, &Query{ID: 1, Text: big}); err == nil {
		t.Error("query with 64KiB+ text written")
	}
	if err := Write(io.Discard, &Error{QueryID: 1, Code: CodeExec, Msg: big}); err == nil {
		t.Error("error frame with 64KiB+ message written")
	}
	// At the boundary the frame still round-trips.
	max := strings.Repeat("y", 1<<16-1)
	var buf bytes.Buffer
	if err := Write(&buf, &Query{ID: 2, Text: max}); err != nil {
		t.Fatal(err)
	}
	f, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q := f.(*Query); q.Text != max {
		t.Error("max-length string did not round-trip")
	}
}

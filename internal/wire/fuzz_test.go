package wire

import (
	"bytes"
	"testing"
	"time"
)

// FuzzReadFrame drives the frame decoder with arbitrary byte streams.
// The decoder's contract under fuzzing: it may reject input with an
// error, but it must never panic, never allocate unboundedly off a
// length announcement, and any frame it accepts must re-encode and
// decode back to the same value (the accepted set is round-trip
// stable).
func FuzzReadFrame(f *testing.F) {
	// Seed the corpus with every frame type at both protocol versions,
	// mirroring the TestRoundTrip corpus.
	seeds := []Frame{
		&Hello{Min: 1, Max: 3, Engine: "machine", Name: "client-7"},
		&Hello{Min: 2, Max: 2, Engine: "core", SessionID: 77},
		&Query{ID: 42, Priority: 2, Text: `restrict(r1, val < 100)`, TraceID: 9},
		&ResultPage{QueryID: 42, Seq: 0, Name: "t3", PageSize: 2048,
			Schema: []SchemaAttr{{Name: "id", Type: 1}, {Name: "pad", Type: 4, Width: 76}},
			Page:   []byte{1, 2, 3, 4}},
		&ResultPage{QueryID: 42, Seq: 7, Last: true},
		&Error{QueryID: SessionQueryID, Code: CodeVersion, Msg: "no overlap"},
		&Stats{QueryID: 42, Engine: "core", Tuples: 1234, Pages: 9,
			ResultBytes: 99999, Queued: 250 * time.Microsecond,
			Exec: 3 * time.Millisecond, Deferred: true, TraceID: 5,
			AdmitWait: time.Millisecond, Sched: time.Microsecond,
			Stream: 40 * time.Microsecond},
	}
	for _, fr := range seeds {
		for _, ver := range []uint16{1, 2} {
			var buf bytes.Buffer
			if err := WriteVersion(&buf, fr, ver); err != nil {
				f.Fatal(err)
			}
			f.Add(buf.Bytes(), ver)
		}
	}
	// Defensive-path seeds from TestReadRejectsMalformed.
	f.Add([]byte{99, 0, 0, 0, 0}, uint16(2))
	f.Add([]byte{byte(TypeQuery), 0xFF, 0xFF, 0xFF, 0xFF}, uint16(1))
	f.Add([]byte{byte(TypeError), 6, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF}, uint16(2))

	f.Fuzz(func(t *testing.T, data []byte, ver uint16) {
		if ver == 0 || ver > Version {
			ver = Version
		}
		fr, err := ReadVersion(bytes.NewReader(data), ver)
		if err != nil {
			return
		}
		// Accepted frames must round-trip: re-encode at the same
		// version and decode back to an identical frame.
		var buf bytes.Buffer
		if err := WriteVersion(&buf, fr, ver); err != nil {
			t.Fatalf("accepted frame %v failed to re-encode: %v", fr.Type(), err)
		}
		again, err := ReadVersion(&buf, ver)
		if err != nil {
			t.Fatalf("re-encoded %v frame failed to decode: %v", fr.Type(), err)
		}
		var b1, b2 bytes.Buffer
		if err := WriteVersion(&b1, fr, ver); err != nil {
			t.Fatal(err)
		}
		if err := WriteVersion(&b2, again, ver); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("%v frame not round-trip stable:\n first %x\nsecond %x",
				fr.Type(), b1.Bytes(), b2.Bytes())
		}
	})
}

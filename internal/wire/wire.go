// Package wire implements the dfdbm network query protocol: the frame
// format a client and the query server (internal/server) exchange over
// a TCP connection.
//
// The protocol is a length-prefixed binary framing, in the spirit of
// the database-file format of internal/catalog:
//
//	u8   frame type (Hello, Query, ResultPage, Error, Stats)
//	u32  payload length
//	...  payload (frame-specific, little-endian integers,
//	     u16-length-prefixed strings)
//
// A session opens with a Hello exchange that negotiates the protocol
// version: the client offers its supported [MinVersion, MaxVersion]
// range, the server answers with the highest version both sides speak
// (or an Error frame when the ranges do not overlap). After the
// handshake the client sends Query frames, each carrying a
// client-chosen query ID, and the server answers every query with a
// stream of ResultPage frames (page blobs in relation.Page wire form,
// so the reassembled result is byte-identical to a local execution)
// terminated by one Stats frame, or with a single Error frame. Frames
// of different in-flight queries may interleave; the query ID ties
// them together.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// Protocol versions spoken by this build.
const (
	// MinVersion is the oldest protocol revision this build accepts.
	MinVersion = 1
	// Version is the current protocol revision. Version 2 adds
	// end-to-end tracing: a server-assigned session ID on the Hello
	// reply, a TraceID on Query and Stats frames, and the per-stage
	// lifecycle breakdown (admit-wait, schedule, stream) on Stats.
	Version = 2
)

// MaxFrameLen bounds a frame payload; a peer announcing more is
// protocol-broken and the connection is dropped rather than buffered.
const MaxFrameLen = 64 << 20

// SessionQueryID is the query ID used by Error frames that concern the
// whole session rather than one query (handshake failures, shutdown).
const SessionQueryID = ^uint32(0)

// Type identifies a frame.
type Type uint8

// The five frame types.
const (
	TypeHello Type = iota + 1
	TypeQuery
	TypeResultPage
	TypeError
	TypeStats
)

// String returns the frame-type name.
func (t Type) String() string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeQuery:
		return "query"
	case TypeResultPage:
		return "result-page"
	case TypeError:
		return "error"
	case TypeStats:
		return "stats"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Error codes carried by Error frames. Codes, not messages, are the
// machine-readable contract: clients dispatch on Code and surface Msg.
const (
	// CodeOverloaded: the admission queue (or the session's in-flight
	// budget, or the server's session table) is full; retry later.
	CodeOverloaded = "overloaded"
	// CodeDraining: the server is shutting down and rejects new work.
	CodeDraining = "draining"
	// CodeParse: the query text failed to parse or bind.
	CodeParse = "parse"
	// CodeExec: the engine failed executing the query.
	CodeExec = "exec"
	// CodeFault: the simulated machine exhausted fault recovery.
	CodeFault = "fault"
	// CodeProtocol: the peer broke framing or the handshake.
	CodeProtocol = "protocol"
	// CodeVersion: no protocol version is spoken by both sides.
	CodeVersion = "version"
)

// Frame is one protocol frame.
type Frame interface {
	// Type returns the frame's wire type.
	Type() Type
	encode(e *encoder)
	decode(d *decoder)
}

// Hello opens a session. The client sends its supported version range
// and requested engine; the server replies with Min == Max == the
// negotiated version and the engine actually in force.
type Hello struct {
	// Min and Max delimit the sender's supported protocol versions.
	Min, Max uint16
	// Engine requests (client) or confirms (server) the execution
	// engine of the session: "core" (the concurrent data-flow engine)
	// or "machine" (the simulated Section 4 ring machine). Empty on a
	// client Hello means the server's default.
	Engine string
	// Name optionally identifies the peer for traces and spans.
	Name string
	// SessionID (v2+) is the server-assigned session identifier, set
	// only on the server's Hello reply; it names the session in the
	// server's spans, flight recorder, and /queries output. The field
	// is self-describing on the wire (appended only when nonzero), so
	// a v1 peer never sees it.
	SessionID uint64
}

// Type returns TypeHello.
func (*Hello) Type() Type { return TypeHello }

func (h *Hello) encode(e *encoder) {
	e.u16(h.Min)
	e.u16(h.Max)
	e.str(h.Engine)
	e.str(h.Name)
	if e.ver >= 2 && h.SessionID != 0 {
		e.u64(h.SessionID)
	}
}

func (h *Hello) decode(d *decoder) {
	h.Min = d.u16()
	h.Max = d.u16()
	h.Engine = d.str()
	h.Name = d.str()
	if d.ver >= 2 && d.err == nil && len(d.b) >= 8 {
		h.SessionID = d.u64()
	}
}

// Negotiate returns the protocol version a server speaking
// [serverMin, serverMax] should use with a client offering
// [clientMin, clientMax]: the highest version inside both ranges.
func Negotiate(clientMin, clientMax, serverMin, serverMax uint16) (uint16, error) {
	v := clientMax
	if serverMax < v {
		v = serverMax
	}
	if v < clientMin || v < serverMin {
		return 0, fmt.Errorf("wire: no common protocol version (client %d-%d, server %d-%d)",
			clientMin, clientMax, serverMin, serverMax)
	}
	return v, nil
}

// Query submits one query for execution.
type Query struct {
	// ID is chosen by the client and echoed on every frame answering
	// this query. SessionQueryID is reserved.
	ID uint32
	// Priority selects the admission lane: 0 high, 1 normal, 2 low.
	Priority uint8
	// Text is the query in the surface syntax of internal/query.
	Text string
	// TraceID (v2+) is a client-proposed trace identifier. Zero asks
	// the server to assign one; either way the Stats frame echoes the
	// trace ID in force so the client can correlate its own spans with
	// the server's.
	TraceID uint64
}

// Type returns TypeQuery.
func (*Query) Type() Type { return TypeQuery }

func (q *Query) encode(e *encoder) {
	e.u32(q.ID)
	e.u8(q.Priority)
	e.str(q.Text)
	if e.ver >= 2 {
		e.u64(q.TraceID)
	}
}

func (q *Query) decode(d *decoder) {
	q.ID = d.u32()
	q.Priority = d.u8()
	q.Text = d.str()
	if d.ver >= 2 {
		q.TraceID = d.u64()
	}
}

// SchemaAttr is one attribute of a result schema as carried on the
// wire (mirrors relation.Attr without importing it; wire stays a leaf
// package).
type SchemaAttr struct {
	Name  string
	Type  uint8
	Width uint32
}

// ResultPage carries one page of a query result. The first page of a
// result (Seq 0) also carries the result schema, relation name, and
// page size so the client can rebuild the relation; the final frame
// has Last set (a Last frame with no page blob terminates an empty
// result).
type ResultPage struct {
	QueryID uint32
	// Seq numbers the pages of one result from 0.
	Seq uint32
	// Last marks the final frame of the result stream.
	Last bool
	// Name, PageSize, and Schema describe the result relation; set
	// only on Seq 0.
	Name     string
	PageSize uint32
	Schema   []SchemaAttr
	// Page is the page blob in relation.Page wire form (Marshal), or
	// empty on a pure end-of-stream marker.
	Page []byte
}

// Type returns TypeResultPage.
func (*ResultPage) Type() Type { return TypeResultPage }

func (p *ResultPage) encode(e *encoder) {
	e.u32(p.QueryID)
	e.u32(p.Seq)
	var flags uint8
	if p.Last {
		flags |= 1
	}
	if p.Seq == 0 {
		flags |= 2
	}
	e.u8(flags)
	if p.Seq == 0 {
		e.str(p.Name)
		e.u32(p.PageSize)
		if len(p.Schema) > maxStrLen {
			e.fail(fmt.Errorf("schema of %d attributes exceeds the wire limit of %d", len(p.Schema), maxStrLen))
			return
		}
		e.u16(uint16(len(p.Schema)))
		for _, a := range p.Schema {
			e.str(a.Name)
			e.u8(a.Type)
			e.u32(a.Width)
		}
	}
	e.bytes(p.Page)
}

func (p *ResultPage) decode(d *decoder) {
	p.QueryID = d.u32()
	p.Seq = d.u32()
	flags := d.u8()
	p.Last = flags&1 != 0
	if flags&2 != 0 {
		p.Name = d.str()
		p.PageSize = d.u32()
		n := int(d.u16())
		if d.err == nil && n > 0 {
			p.Schema = make([]SchemaAttr, n)
			for i := range p.Schema {
				p.Schema[i].Name = d.str()
				p.Schema[i].Type = d.u8()
				p.Schema[i].Width = d.u32()
			}
		}
	}
	p.Page = d.bytes()
}

// Error reports a failed query (or, with QueryID == SessionQueryID, a
// failed session).
type Error struct {
	QueryID uint32
	// Code is one of the Code* constants.
	Code string
	// Msg is the human-readable detail.
	Msg string
}

// Type returns TypeError.
func (*Error) Type() Type { return TypeError }

func (e *Error) encode(enc *encoder) {
	enc.u32(e.QueryID)
	enc.str(e.Code)
	enc.str(e.Msg)
}

func (e *Error) decode(d *decoder) {
	e.QueryID = d.u32()
	e.Code = d.str()
	e.Msg = d.str()
}

// Stats closes a successful result stream with the server-side
// accounting of the query.
type Stats struct {
	QueryID uint32
	// Engine names the engine that executed the query.
	Engine string
	// Tuples, Pages, and ResultBytes size the result.
	Tuples      int64
	Pages       int64
	ResultBytes int64
	// Queued is how long the query waited for admission; Exec is the
	// engine execution time.
	Queued time.Duration
	Exec   time.Duration
	// Deferred reports whether admission was delayed by a read/write
	// conflict with a concurrently running query.
	Deferred bool
	// TraceID (v2+) is the trace identifier in force for this query on
	// the server, echoed so the client can link its round trip to the
	// server's span tree and flight-recorder entry.
	TraceID uint64
	// AdmitWait, Sched, and Stream (v2+) break the server-side
	// lifecycle into stages: AdmitWait is time spent queued before the
	// scheduler admitted the query (Queued = AdmitWait + Sched for a v1
	// reader), Sched is the admit-to-run dispatch latency, and Stream
	// is the time spent writing result pages back to the client.
	AdmitWait time.Duration
	Sched     time.Duration
	Stream    time.Duration
}

// Type returns TypeStats.
func (*Stats) Type() Type { return TypeStats }

func (s *Stats) encode(e *encoder) {
	e.u32(s.QueryID)
	e.str(s.Engine)
	e.u64(uint64(s.Tuples))
	e.u64(uint64(s.Pages))
	e.u64(uint64(s.ResultBytes))
	e.u64(uint64(s.Queued))
	e.u64(uint64(s.Exec))
	var flags uint8
	if s.Deferred {
		flags = 1
	}
	e.u8(flags)
	if e.ver >= 2 {
		e.u64(s.TraceID)
		e.u64(uint64(s.AdmitWait))
		e.u64(uint64(s.Sched))
		e.u64(uint64(s.Stream))
	}
}

func (s *Stats) decode(d *decoder) {
	s.QueryID = d.u32()
	s.Engine = d.str()
	s.Tuples = int64(d.u64())
	s.Pages = int64(d.u64())
	s.ResultBytes = int64(d.u64())
	s.Queued = time.Duration(d.u64())
	s.Exec = time.Duration(d.u64())
	s.Deferred = d.u8()&1 != 0
	if d.ver >= 2 {
		s.TraceID = d.u64()
		s.AdmitWait = time.Duration(d.u64())
		s.Sched = time.Duration(d.u64())
		s.Stream = time.Duration(d.u64())
	}
}

// Write encodes f at the current protocol Version and writes it to w
// as one frame. A frame carrying a field that cannot be represented on
// the wire (a string or schema longer than its length prefix can
// express, or a payload over MaxFrameLen) is refused here, before any
// bytes reach the peer.
func Write(w io.Writer, f Frame) error { return WriteVersion(w, f, Version) }

// WriteVersion encodes f at the given negotiated protocol version and
// writes it to w as one frame. Sessions use it after the handshake so
// a v2 server never sends v2 fields to a v1 client.
func WriteVersion(w io.Writer, f Frame, ver uint16) error {
	e := encoder{ver: ver}
	f.encode(&e)
	if e.err != nil {
		return fmt.Errorf("wire: encoding %s frame: %w", f.Type(), e.err)
	}
	if len(e.b) > MaxFrameLen {
		return fmt.Errorf("wire: %s frame payload is %d bytes, max %d", f.Type(), len(e.b), MaxFrameLen)
	}
	hdr := make([]byte, 5, 5+len(e.b))
	hdr[0] = byte(f.Type())
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(e.b)))
	_, err := w.Write(append(hdr, e.b...))
	return err
}

// Read reads and decodes one frame from r at the current protocol
// Version. It returns io.EOF untouched on a clean end of stream (so
// callers can detect an orderly close) and a wrapped error on a torn
// frame or malformed payload.
func Read(r io.Reader) (Frame, error) { return ReadVersion(r, Version) }

// ReadVersion reads and decodes one frame from r at the given
// negotiated protocol version. Sessions use it after the handshake so
// a frame from a v1 peer is decoded with the v1 layout.
func ReadVersion(r io.Reader, ver uint16) (Frame, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: reading frame header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > MaxFrameLen {
		return nil, fmt.Errorf("wire: frame announces %d-byte payload, max %d", n, MaxFrameLen)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("wire: reading %d-byte %s payload: %w", n, Type(hdr[0]), err)
	}
	var f Frame
	switch Type(hdr[0]) {
	case TypeHello:
		f = &Hello{}
	case TypeQuery:
		f = &Query{}
	case TypeResultPage:
		f = &ResultPage{}
	case TypeError:
		f = &Error{}
	case TypeStats:
		f = &Stats{}
	default:
		return nil, fmt.Errorf("wire: unknown frame type %d", hdr[0])
	}
	d := decoder{b: payload, ver: ver}
	f.decode(&d)
	if d.err != nil {
		return nil, fmt.Errorf("wire: decoding %s frame: %w", f.Type(), d.err)
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("wire: %s frame has %d trailing bytes", f.Type(), len(d.b))
	}
	return f, nil
}

// maxStrLen bounds a u16-length-prefixed field: strings and the schema
// attribute count. Longer values cannot be expressed on the wire;
// truncating the prefix would desync the peer's decoder, so the
// encoder latches an error instead and Write refuses the frame.
const maxStrLen = 1<<16 - 1

// encoder builds a frame payload at a negotiated protocol version,
// latching the first error.
type encoder struct {
	b   []byte
	ver uint16
	err error
}

func (e *encoder) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

func (e *encoder) u8(v uint8)   { e.b = append(e.b, v) }
func (e *encoder) u16(v uint16) { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *encoder) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *encoder) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }

func (e *encoder) str(s string) {
	if len(s) > maxStrLen {
		e.fail(fmt.Errorf("string field of %d bytes exceeds the %d-byte wire limit", len(s), maxStrLen))
		return
	}
	e.u16(uint16(len(s)))
	e.b = append(e.b, s...)
}

func (e *encoder) bytes(p []byte) {
	e.u32(uint32(len(p)))
	e.b = append(e.b, p...)
}

// decoder consumes a frame payload at a negotiated protocol version,
// latching the first error.
type decoder struct {
	b   []byte
	ver uint16
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.b) < n {
		d.err = fmt.Errorf("payload truncated (want %d bytes, have %d)", n, len(d.b))
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

func (d *decoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) str() string {
	n := int(d.u16())
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

func (d *decoder) bytes() []byte {
	n := int(d.u32())
	b := d.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

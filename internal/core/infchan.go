package core

import "sync"

// infChan is an unbounded channel of events with an explicit stop.
//
// Every node's instruction controller receives its events (operand
// pages, completion notices, task results) through one infChan. Making
// these queues unbounded is what guarantees the engine cannot deadlock:
// the only bounded queue in the system is the arbitration network (the
// memory cells), and the only goroutines that block on it are
// controllers dispatching work — workers and forwarders always make
// progress, so the arbitration network always drains.
type infChan struct {
	in   chan event
	out  chan event
	stop chan struct{}
	once sync.Once
}

func newInfChan() *infChan {
	c := &infChan{
		in:   make(chan event),
		out:  make(chan event),
		stop: make(chan struct{}),
	}
	go c.pump()
	return c
}

func (c *infChan) pump() {
	var buf []event
	for {
		var outCh chan event
		var next event
		if len(buf) > 0 {
			outCh = c.out
			next = buf[0]
		}
		select {
		case ev := <-c.in:
			buf = append(buf, ev)
		case outCh <- next:
			buf = buf[1:]
		case <-c.stop:
			return
		}
	}
}

// Send enqueues an event. It never blocks indefinitely: if the channel
// has been stopped the event is dropped.
func (c *infChan) Send(ev event) {
	select {
	case c.in <- ev:
	case <-c.stop:
	}
}

// Recv dequeues the next event. It returns ok == false once the channel
// has been stopped.
func (c *infChan) Recv() (event, bool) {
	select {
	case ev := <-c.out:
		return ev, true
	case <-c.stop:
		return event{}, false
	}
}

// Stop terminates the pump goroutine and releases blocked senders and
// receivers. Safe to call more than once.
func (c *infChan) Stop() {
	c.once.Do(func() { close(c.stop) })
}

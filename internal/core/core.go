// Package core implements the paper's primary contribution as a working
// concurrent query engine: data-flow execution of relational-algebra
// query trees, with the operand granularity — relation, page, or tuple —
// selectable per run.
//
// The mapping from the paper's machine to Go is direct. Every non-leaf
// query-tree node gets an instruction controller goroutine (the paper's
// IC) that applies the firing rule of the granularity in force and emits
// instruction packets; a bounded channel is the arbitration network, its
// capacity the number of memory cells; a pool of worker goroutines is
// the instruction-processor (IP) pool; result pages stream back through
// per-node event queues (the distribution network) and are compressed
// into full pages before travelling up the tree, exactly as the paper's
// ICs compress arriving partial pages.
//
// The engine computes real answers and meters the traffic that the
// paper's Section 3.3 analyzes: bytes and packets through the
// arbitration and distribution networks at each granularity.
package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"dfdbm/internal/catalog"
	"dfdbm/internal/obs"
	"dfdbm/internal/query"
	"dfdbm/internal/relalg"
	"dfdbm/internal/relation"
)

// Granularity selects the scheduling unit of data-flow execution — the
// subject of the paper's Section 3.
type Granularity uint8

// The three operand granularities.
const (
	// RelationLevel enables an instruction only when every source
	// operand has been completely computed.
	RelationLevel Granularity = iota + 1
	// PageLevel enables an instruction as soon as one page of each
	// source operand exists; pages of intermediate relations are
	// pipelined up the tree. The paper's recommended design point.
	PageLevel
	// TupleLevel enables an instruction as soon as one tuple of each
	// source operand exists. Every token carries a single tuple.
	TupleLevel
)

// String returns the granularity name.
func (g Granularity) String() string {
	switch g {
	case RelationLevel:
		return "relation"
	case PageLevel:
		return "page"
	case TupleLevel:
		return "tuple"
	default:
		return fmt.Sprintf("granularity(%d)", uint8(g))
	}
}

// ProjectStrategy selects how the project operator eliminates
// duplicates.
type ProjectStrategy uint8

const (
	// ProjectSerialIC deduplicates at the instruction controller: every
	// projected tuple funnels through one goroutine. This is the state
	// of the art the paper laments in Section 5 ("we have not yet
	// developed an algorithm for which a high degree of parallelism can
	// be maintained").
	ProjectSerialIC ProjectStrategy = iota
	// ProjectPartitioned hash-partitions projected tuples across
	// independent duplicate-elimination sets so workers deduplicate in
	// parallel with no shared bottleneck — the resolution of the
	// paper's open problem.
	ProjectPartitioned
)

// String returns the strategy name.
func (p ProjectStrategy) String() string {
	if p == ProjectPartitioned {
		return "partitioned"
	}
	return "serial-ic"
}

// Options configures an Engine.
type Options struct {
	// Granularity is the scheduling unit. Default PageLevel.
	Granularity Granularity
	// Workers is the number of instruction processors. Default 4.
	Workers int
	// CellsPerWorker sizes the arbitration network: the number of
	// memory cells per processor. The paper's simulation used two
	// memory cells for each processor. Default 2.
	CellsPerWorker int
	// PageSize is the page size of intermediate results. Default
	// relation.DefaultPageSize (16 KB).
	PageSize int
	// PacketOverhead is c, the control bytes accompanying every packet
	// through the arbitration or distribution network — the overhead
	// term of the Section 3.3 analysis. Default 32.
	PacketOverhead int
	// Project selects the duplicate-elimination strategy. Default
	// ProjectSerialIC (the paper's baseline).
	Project ProjectStrategy
	// NoPagePool disables recycling of intermediate pages through the
	// engine's relation.PagePool. Pooling is on by default; the knob
	// exists so benchmarks can measure the allocation baseline.
	NoPagePool bool
	// Adaptive enables the per-edge pipeline-vs-materialize planner
	// (query.PlanTree): execution pipelines pages as at PageLevel, but
	// the inner operand of a join whose estimated size fits the page
	// pool's budget is buffered completely before the join fires.
	// Applies only at PageLevel or TupleLevel granularity
	// (RelationLevel already materializes every edge).
	Adaptive bool
	// Obs, when non-nil, receives one structured obs.Event per
	// dispatched instruction packet, task completion, and node
	// completion — stamped with real time since the execution started —
	// and, when it carries a registry, the core.* bandwidth timelines
	// plus each run's Stats re-expressed as counters (counters
	// accumulate across executions of the same engine).
	Obs *obs.Observer
}

func (o Options) withDefaults() Options {
	if o.Granularity == 0 {
		o.Granularity = PageLevel
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.CellsPerWorker <= 0 {
		o.CellsPerWorker = 2
	}
	if o.PageSize <= 0 {
		o.PageSize = relation.DefaultPageSize
	}
	if o.PacketOverhead <= 0 {
		o.PacketOverhead = 32
	}
	return o
}

// Stats meters one execution. Byte counts follow the accounting of the
// paper's Section 3.3: a packet's operand bytes are the tuple payload it
// carries, plus PacketOverhead control bytes per packet.
type Stats struct {
	// InstructionPackets is the number of instruction packets sent
	// through the arbitration network to processors.
	InstructionPackets int64
	// OperandBytes is the tuple payload carried by those packets.
	OperandBytes int64
	// ArbitrationBytes = OperandBytes + overhead·InstructionPackets:
	// the total arbitration-network load.
	ArbitrationBytes int64
	// ResultPackets and ResultBytes meter the distribution network
	// (worker results travelling back to controllers).
	ResultPackets int64
	ResultBytes   int64
	// PagesMoved counts page tokens forwarded between tree nodes.
	PagesMoved int64
	// TuplesOut is the cardinality of the query result.
	TuplesOut int64
	// PoolHits, PoolMisses, and PagesRecycled meter the intermediate-
	// page pool: pages served from the pool, pages freshly allocated,
	// and dead pages handed back for reuse.
	PoolHits      int64
	PoolMisses    int64
	PagesRecycled int64
	// HashProbes, HashBuilds, and HashTableHits meter the hash join
	// kernel (outer tuples probed, inner-page tables built, page pairs
	// served by a cached table); NestedPairs counts tuple pairs compared
	// by the nested-loops kernel.
	HashProbes    int64
	HashBuilds    int64
	HashTableHits int64
	NestedPairs   int64
	// MaterializedEdges counts query-tree edges the adaptive planner
	// chose to materialize this execution (0 unless Options.Adaptive).
	MaterializedEdges int64
	// Elapsed is wall-clock execution time.
	Elapsed time.Duration
}

// Result is the outcome of executing one query.
type Result struct {
	// Relation holds the answer (for a Delete root, the surviving
	// target relation; for Append, the destination).
	Relation *relation.Relation
	// Stats meters the run.
	Stats Stats
}

// Engine executes bound query trees against a catalog.
type Engine struct {
	cat  *catalog.Catalog
	opts Options
	// pool recycles intermediate pages across the engine's executions;
	// nil when Options.NoPagePool is set.
	pool *relation.PagePool
}

// New returns an engine over the catalog.
func New(cat *catalog.Catalog, opts Options) *Engine {
	e := &Engine{cat: cat, opts: opts.withDefaults()}
	if !e.opts.NoPagePool {
		e.pool = relation.NewPagePool()
	}
	return e
}

// Options returns the engine's effective (defaulted) options.
func (e *Engine) Options() Options { return e.opts }

// Execute runs a bound query tree and returns its result. Executions
// are independent; an engine may execute several queries concurrently
// as long as their footprints do not conflict (see query.Footprint).
func (e *Engine) Execute(t *query.Tree) (*Result, error) {
	return e.ExecuteContext(context.Background(), t)
}

// ExecuteContext is Execute under a context: when ctx is cancelled or
// times out, the run's workers and controllers are stopped, blocked
// channel operations unwind, and the context's error is returned.
func (e *Engine) ExecuteContext(ctx context.Context, t *query.Tree) (*Result, error) {
	res, err := e.execute(ctx, t)
	if err == nil {
		e.exportMetrics(res)
	}
	if err == nil {
		if serr := e.opts.Obs.Err(); serr != nil {
			return nil, fmt.Errorf("core: trace sink: %w", serr)
		}
	}
	return res, err
}

// exportMetrics re-expresses one execution's Stats through the metrics
// registry. Counters accumulate across executions of the same engine.
func (e *Engine) exportMetrics(res *Result) {
	o := e.opts.Obs
	if !o.MetricsOn() {
		return
	}
	r := o.Registry()
	s := res.Stats
	r.Inc("core.instruction_packets", s.InstructionPackets)
	r.Inc("core.operand_bytes", s.OperandBytes)
	r.Inc("core.arbitration_bytes_total", s.ArbitrationBytes)
	r.Inc("core.result_packets", s.ResultPackets)
	r.Inc("core.result_bytes_total", s.ResultBytes)
	r.Inc("core.pages_moved", s.PagesMoved)
	r.Inc("core.tuples_out", s.TuplesOut)
	r.Inc("core.pool_hits", s.PoolHits)
	r.Inc("core.pool_misses", s.PoolMisses)
	r.Inc("core.pages_recycled", s.PagesRecycled)
	r.Inc("core.join_hash_probes", s.HashProbes)
	r.Inc("core.join_hash_builds", s.HashBuilds)
	r.Inc("core.join_table_hits", s.HashTableHits)
	r.Inc("core.join_nested_pairs", s.NestedPairs)
	r.Inc("core.materialized_edges", s.MaterializedEdges)
	r.SetGauge("core.elapsed_seconds", s.Elapsed.Seconds())
}

func (e *Engine) execute(ctx context.Context, t *query.Tree) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	root := t.Root()

	// Effects (append, delete) are applied serially at the root; the
	// subtree beneath an append still runs as data-flow.
	switch root.Kind {
	case query.OpDelete:
		target, err := e.cat.Get(root.Rel)
		if err != nil {
			return nil, err
		}
		if _, err := relalg.Delete(target, root.Pred); err != nil {
			return nil, err
		}
		return &Result{Relation: target, Stats: Stats{Elapsed: time.Since(start)}}, nil

	case query.OpAppend:
		sub, err := e.executeStream(ctx, t, root.Inputs[0])
		if err != nil {
			return nil, err
		}
		dst, err := e.cat.Get(root.Rel)
		if err != nil {
			return nil, err
		}
		if _, err := relalg.Append(dst, sub.Relation); err != nil {
			return nil, err
		}
		sub.Relation = dst
		sub.Stats.Elapsed = time.Since(start)
		return sub, nil

	default:
		res, err := e.executeStream(ctx, t, root)
		if err != nil {
			return nil, err
		}
		res.Stats.Elapsed = time.Since(start)
		return res, nil
	}
}

// executeStream runs the pure (side-effect free) subtree rooted at top.
func (e *Engine) executeStream(ctx context.Context, t *query.Tree, top *query.Node) (*Result, error) {
	run := newEngineRun(ctx, e, t)
	defer run.shutdown()

	if e.opts.Adaptive && e.opts.Granularity != RelationLevel {
		plan, err := query.PlanTree(t, e.cat, e.pool.Budget())
		if err != nil {
			return nil, err
		}
		run.plan = plan
	}

	// Cancellation propagates as a run failure: closing run.stopped
	// unblocks every worker, controller, and channel send of the run.
	if ctx.Done() != nil {
		watchDone := make(chan struct{})
		defer close(watchDone)
		go func() {
			select {
			case <-ctx.Done():
				run.fail(ctx.Err())
			case <-watchDone:
			case <-run.stopped:
			}
		}()
	}

	sinkDone := make(chan struct{})
	resultName := top.Label()
	outPageSize := e.opts.PageSize
	if min := relation.PageHeaderLen + top.Schema().TupleLen(); outPageSize < min {
		outPageSize = min
	}
	resultRel, err := relation.New(resultName, top.Schema(), outPageSize)
	if err != nil {
		return nil, err
	}
	var sinkMu sync.Mutex
	sink := outlet{
		send: func(pg *relation.Page) {
			sinkMu.Lock()
			defer sinkMu.Unlock()
			if err := resultRel.AppendPage(pg); err != nil {
				run.fail(err)
			}
		},
		done: func() { close(sinkDone) },
	}

	if err := run.build(top, sink); err != nil {
		return nil, err
	}
	run.start()

	select {
	case <-sinkDone:
	case <-run.stopped:
	}
	if err := run.errValue(); err != nil {
		return nil, err
	}

	st := run.snapshotStats()
	st.TuplesOut = int64(resultRel.Cardinality())
	return &Result{Relation: resultRel, Stats: st}, nil
}

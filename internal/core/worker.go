package core

import (
	"fmt"
	"sync/atomic"

	"dfdbm/internal/obs"
	"dfdbm/internal/query"
	"dfdbm/internal/relalg"
	"dfdbm/internal/relation"
)

// worker is one instruction processor: it pulls instruction packets off
// the arbitration network, applies the operation to the operand pages,
// paginates the result tuples, and sends the result packets back to the
// controlling node.
func (r *engineRun) worker() {
	defer r.wg.Done()
	// ks carries this worker's reusable kernel state, one entry per
	// node: join scratch buffers and cached inner-page hash tables,
	// batch-compiled restrict predicates with their selection-bitmap
	// scratch, and project gather buffers all survive across
	// instruction packets. Kernel states hold mutable scratch, so they
	// are per-worker, never shared between goroutines.
	ks := &workerKernels{
		joins:     make(map[*nodeExec]*relalg.JoinState),
		restricts: make(map[*nodeExec]*relalg.RestrictState),
		projects:  make(map[*nodeExec]*relalg.ProjectState),
	}
	for {
		select {
		case t := <-r.arb:
			r.execTask(t, ks)
		case <-r.stopped:
			return
		}
	}
}

type workerKernels struct {
	joins     map[*nodeExec]*relalg.JoinState
	restricts map[*nodeExec]*relalg.RestrictState
	projects  map[*nodeExec]*relalg.ProjectState
}

func (r *engineRun) execTask(t *task, ks *workerKernels) {
	n := t.node
	start := r.now()
	pgtor, err := relation.NewPooledPaginator(n.outPageSize, n.outTupleLen, r.eng.pool)
	if err != nil {
		r.fail(err)
		return
	}
	var out []*relation.Page
	emit := func(raw []byte) error {
		full, err := pgtor.Add(raw)
		if err != nil {
			return err
		}
		if full != nil {
			out = append(out, full)
		}
		return nil
	}

	// Unary operand pages are dead once the kernel has read them; join
	// operands stay buffered in the controller for future pairings and
	// must not be recycled.
	recycleOperands := false

	switch n.node.Kind {
	case query.OpRestrict:
		rs := ks.restricts[n]
		if rs == nil {
			rs = relalg.NewRestrictState(n.boundPred)
			ks.restricts[n] = rs
		}
		_, err = rs.RestrictPage(t.operands[0], emit)
		recycleOperands = true

	case query.OpJoin:
		st := ks.joins[n]
		if st == nil {
			st = relalg.NewJoinState(n.boundJoin, &r.kstats)
			ks.joins[n] = st
		}
		_, err = st.JoinPages(t.operands[0], t.operands[1], emit)

	case query.OpProject:
		sink := emit
		if n.parts != nil {
			// Partitioned duplicate elimination: byte-equal projections
			// always hash to the same partition, so partition-local
			// dedup is globally exact and workers never contend on a
			// single set.
			sink = func(raw []byte) error {
				part := &n.parts[relalg.HashPartition(raw, len(n.parts))]
				part.mu.Lock()
				fresh := part.d.Add(raw)
				part.mu.Unlock()
				if !fresh {
					return nil
				}
				return emit(raw)
			}
		}
		ps := ks.projects[n]
		if ps == nil {
			ps = relalg.NewProjectState(n.projector)
			ks.projects[n] = ps
		}
		_, err = ps.ProjectPage(t.operands[0], nil, sink)
		recycleOperands = true

	default:
		err = fmt.Errorf("core: worker received %s task", n.node.Kind)
	}
	if err != nil {
		r.fail(err)
		return
	}
	if last := pgtor.Flush(); last != nil {
		out = append(out, last)
	}
	if recycleOperands {
		for _, pg := range t.operands {
			r.recycle(pg)
		}
	}

	resBytes := 0
	for _, pg := range out {
		atomic.AddInt64(&r.stResPkts, 1)
		wire := pg.TupleCount()*pg.TupleLen() + r.eng.opts.PacketOverhead
		atomic.AddInt64(&r.stResBytes, int64(wire))
		resBytes += wire
	}
	if resBytes > 0 {
		r.observe("core.result_bytes", float64(resBytes))
	}
	end := r.now()
	r.observe("core.worker_busy_us", float64((end - start).Microseconds()))
	if r.spansOn() {
		r.obs.Spans().Record(obs.SpanExec, n.span, start, end, "worker", "exec", r.qid, n.id, -1)
		if s := n.span; s != nil {
			s.PagesIn.Add(int64(len(t.operands)))
			s.PagesOut.Add(int64(len(out)))
			var tup int64
			for _, pg := range out {
				tup += int64(pg.TupleCount())
			}
			s.TuplesOut.Add(tup)
		}
	}
	if r.tracing() {
		r.event(obs.EvResult, fmt.Sprintf("node%d", n.id), n.id, resBytes,
			"node%d: task complete (%d result pages)", n.id, len(out))
	}
	n.events.Send(event{kind: evTaskDone, pages: out})
}

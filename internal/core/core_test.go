package core

import (
	"testing"

	"dfdbm/internal/catalog"
	"dfdbm/internal/query"
	"dfdbm/internal/relation"
	"dfdbm/internal/workload"
)

// testDB builds a small instance of the paper database (1% scale,
// 1000-byte pages) plus the ten benchmark queries.
func testDB(t testing.TB, scale float64, pageSize int) (*catalog.Catalog, []*query.Tree) {
	t.Helper()
	cat, qs, err := workload.Build(workload.Config{Seed: 11, Scale: scale, PageSize: pageSize})
	if err != nil {
		t.Fatalf("workload.Build: %v", err)
	}
	return cat, qs
}

func allGranularities() []Granularity {
	return []Granularity{RelationLevel, PageLevel, TupleLevel}
}

// TestGranularityEquivalence is the central correctness property: all
// three granularities compute the same answer as the serial reference
// executor, for every benchmark query.
func TestGranularityEquivalence(t *testing.T) {
	cat, qs := testDB(t, 0.02, 1000)
	for qi, q := range qs {
		want, err := query.ExecuteSerial(cat, q, 0)
		if err != nil {
			t.Fatalf("query %d serial: %v", qi+1, err)
		}
		for _, g := range allGranularities() {
			eng := New(cat, Options{Granularity: g, Workers: 4, PageSize: 1000})
			res, err := eng.Execute(q)
			if err != nil {
				t.Fatalf("query %d at %s: %v", qi+1, g, err)
			}
			if !res.Relation.EqualMultiset(want) {
				t.Errorf("query %d at %s granularity: %d tuples, serial got %d",
					qi+1, g, res.Relation.Cardinality(), want.Cardinality())
			}
			if res.Stats.TuplesOut != int64(want.Cardinality()) {
				t.Errorf("query %d at %s: TuplesOut = %d, want %d",
					qi+1, g, res.Stats.TuplesOut, want.Cardinality())
			}
		}
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	cat, qs := testDB(t, 0.02, 1000)
	q := qs[5] // 2 joins, 3 restricts
	want, err := query.ExecuteSerial(cat, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8, 32} {
		eng := New(cat, Options{Granularity: PageLevel, Workers: workers, PageSize: 1000})
		res, err := eng.Execute(q)
		if err != nil {
			t.Fatalf("%d workers: %v", workers, err)
		}
		if !res.Relation.EqualMultiset(want) {
			t.Errorf("%d workers: wrong result (%d tuples, want %d)",
				workers, res.Relation.Cardinality(), want.Cardinality())
		}
	}
}

func TestBareScanRoot(t *testing.T) {
	cat, _ := testDB(t, 0.01, 1000)
	for _, g := range allGranularities() {
		tr, err := query.Bind(query.MustParse("r15"), cat)
		if err != nil {
			t.Fatal(err)
		}
		eng := New(cat, Options{Granularity: g, PageSize: 1000})
		res, err := eng.Execute(tr)
		if err != nil {
			t.Fatalf("scan at %s: %v", g, err)
		}
		want, _ := cat.Get("r15")
		if !res.Relation.EqualMultiset(want) {
			t.Errorf("scan at %s: %d tuples, want %d", g, res.Relation.Cardinality(), want.Cardinality())
		}
	}
}

func TestEmptyResultQuery(t *testing.T) {
	cat, _ := testDB(t, 0.01, 1000)
	tr, err := query.Bind(query.MustParse(`restrict(r1, val < 0)`), cat)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range allGranularities() {
		eng := New(cat, Options{Granularity: g, PageSize: 1000})
		res, err := eng.Execute(tr)
		if err != nil {
			t.Fatalf("at %s: %v", g, err)
		}
		if res.Relation.Cardinality() != 0 {
			t.Errorf("at %s: %d tuples, want 0", g, res.Relation.Cardinality())
		}
	}
}

func TestJoinWithEmptySide(t *testing.T) {
	cat, _ := testDB(t, 0.01, 1000)
	tr, err := query.Bind(query.MustParse(
		`join(restrict(r1, val < 0), restrict(r2, val < 500), k1 = k1)`), cat)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range allGranularities() {
		eng := New(cat, Options{Granularity: g, PageSize: 1000})
		res, err := eng.Execute(tr)
		if err != nil {
			t.Fatalf("at %s: %v", g, err)
		}
		if res.Relation.Cardinality() != 0 {
			t.Errorf("at %s: join with empty side gave %d tuples", g, res.Relation.Cardinality())
		}
	}
}

func TestProjectStrategiesAgree(t *testing.T) {
	cat, _ := testDB(t, 0.05, 1000)
	tr, err := query.Bind(query.MustParse(`project(r3, [k1, k2])`), cat)
	if err != nil {
		t.Fatal(err)
	}
	want, err := query.ExecuteSerial(cat, tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []ProjectStrategy{ProjectSerialIC, ProjectPartitioned} {
		for _, g := range allGranularities() {
			eng := New(cat, Options{Granularity: g, Workers: 6, PageSize: 1000, Project: strat})
			res, err := eng.Execute(tr)
			if err != nil {
				t.Fatalf("%s/%s: %v", strat, g, err)
			}
			if !res.Relation.EqualMultiset(want) {
				t.Errorf("%s/%s: %d tuples, want %d", strat, g,
					res.Relation.Cardinality(), want.Cardinality())
			}
		}
	}
}

func TestAppendRoot(t *testing.T) {
	cat, _ := testDB(t, 0.02, 1000)
	dst := relation.MustNew("sink_rel", workload.PaperSchema(), 1000)
	cat.Put(dst)
	tr, err := query.Bind(query.MustParse(`append(sink_rel, restrict(r14, val < 500))`), cat)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(cat, Options{Granularity: PageLevel, PageSize: 1000})
	res, err := eng.Execute(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Name() != "sink_rel" {
		t.Errorf("append returned %q", res.Relation.Name())
	}
	if dst.Cardinality() == 0 {
		t.Error("append inserted nothing")
	}
	// Appending again doubles the cardinality.
	before := dst.Cardinality()
	if _, err := eng.Execute(tr); err != nil {
		t.Fatal(err)
	}
	if dst.Cardinality() != 2*before {
		t.Errorf("second append gave %d tuples, want %d", dst.Cardinality(), 2*before)
	}
}

func TestDeleteRoot(t *testing.T) {
	cat, _ := testDB(t, 0.02, 1000)
	r14, _ := cat.Get("r14")
	before := r14.Cardinality()
	tr, err := query.Bind(query.MustParse(`delete(r14, val < 500)`), cat)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(cat, Options{})
	res, err := eng.Execute(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Cardinality() >= before {
		t.Errorf("delete removed nothing (%d -> %d)", before, res.Relation.Cardinality())
	}
	var bad int
	_ = res.Relation.Each(func(tup relation.Tuple) bool {
		if tup[5].Int < 500 {
			bad++
		}
		return true
	})
	if bad != 0 {
		t.Errorf("%d tuples matching the delete predicate survived", bad)
	}
}

// TestTrafficAccounting checks the Section 3.3 bandwidth claim on real
// measured traffic: for a join, tuple-level granularity pushes roughly
// an order of magnitude more bytes through the arbitration network than
// page-level granularity with 1000-byte pages.
func TestTrafficAccounting(t *testing.T) {
	cat, _ := testDB(t, 0.02, 1000)
	tr, err := query.Bind(query.MustParse(
		`join(restrict(r2, val < 300), restrict(r3, val < 300), k1 = k1)`), cat)
	if err != nil {
		t.Fatal(err)
	}
	run := func(g Granularity) Stats {
		eng := New(cat, Options{Granularity: g, Workers: 4, PageSize: 1000})
		res, err := eng.Execute(tr)
		if err != nil {
			t.Fatalf("at %s: %v", g, err)
		}
		return res.Stats
	}
	pageStats := run(PageLevel)
	tupleStats := run(TupleLevel)
	if pageStats.ArbitrationBytes <= 0 || tupleStats.ArbitrationBytes <= 0 {
		t.Fatal("no arbitration traffic metered")
	}
	ratio := float64(tupleStats.ArbitrationBytes) / float64(pageStats.ArbitrationBytes)
	// The paper's closed form gives 10x for 10-tuple pages; our pages
	// hold 9 tuples after the header, so expect roughly 7-12x.
	if ratio < 5 || ratio > 15 {
		t.Errorf("tuple/page arbitration ratio = %.2f, want ≈10 (tuple=%d page=%d)",
			ratio, tupleStats.ArbitrationBytes, pageStats.ArbitrationBytes)
	}
	if tupleStats.InstructionPackets <= pageStats.InstructionPackets {
		t.Error("tuple level sent fewer packets than page level")
	}
}

func TestStatsPopulated(t *testing.T) {
	cat, qs := testDB(t, 0.02, 1000)
	eng := New(cat, Options{Granularity: PageLevel, PageSize: 1000})
	res, err := eng.Execute(qs[2])
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.InstructionPackets == 0 || s.OperandBytes == 0 || s.ArbitrationBytes == 0 {
		t.Errorf("arbitration stats empty: %+v", s)
	}
	if s.ArbitrationBytes != s.OperandBytes+32*s.InstructionPackets {
		t.Errorf("ArbitrationBytes inconsistent: %+v", s)
	}
	if s.ResultPackets == 0 || s.PagesMoved == 0 {
		t.Errorf("result stats empty: %+v", s)
	}
	if s.Elapsed <= 0 {
		t.Error("Elapsed not set")
	}
}

func TestOptionsDefaults(t *testing.T) {
	eng := New(catalog.New(), Options{})
	o := eng.Options()
	if o.Granularity != PageLevel || o.Workers != 4 || o.CellsPerWorker != 2 ||
		o.PageSize != relation.DefaultPageSize || o.PacketOverhead != 32 {
		t.Errorf("defaults = %+v", o)
	}
}

func TestGranularityString(t *testing.T) {
	if RelationLevel.String() != "relation" || PageLevel.String() != "page" ||
		TupleLevel.String() != "tuple" || Granularity(9).String() != "granularity(9)" {
		t.Error("Granularity.String wrong")
	}
	if ProjectSerialIC.String() != "serial-ic" || ProjectPartitioned.String() != "partitioned" {
		t.Error("ProjectStrategy.String wrong")
	}
}

func TestMissingRelation(t *testing.T) {
	cat := catalog.New()
	s := workload.PaperSchema()
	cat.Put(relation.MustNew("r", s, 1000))
	tr, err := query.Bind(query.MustParse("r"), cat)
	if err != nil {
		t.Fatal(err)
	}
	cat.Drop("r")
	eng := New(cat, Options{PageSize: 1000})
	if _, err := eng.Execute(tr); err == nil {
		t.Error("Execute with dropped relation succeeded")
	}
}

// TestRepeatedExecutionsDeterministicResult: the tuple order may differ
// between runs, but the multiset must not.
func TestRepeatedExecutionsDeterministicResult(t *testing.T) {
	cat, qs := testDB(t, 0.02, 1000)
	eng := New(cat, Options{Granularity: PageLevel, Workers: 8, PageSize: 1000})
	first, err := eng.Execute(qs[7])
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := eng.Execute(qs[7])
		if err != nil {
			t.Fatal(err)
		}
		if !again.Relation.EqualMultiset(first.Relation) {
			t.Fatalf("run %d differs from first run", i)
		}
	}
}

// TestCompressedPagesAreFull: at page granularity, the controller
// compresses partial result pages, so all but the last page of each
// stream must be full. We check the final result relation.
func TestCompressedPagesAreFull(t *testing.T) {
	cat, _ := testDB(t, 0.05, 1000)
	tr, err := query.Bind(query.MustParse(`restrict(r1, val < 500)`), cat)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(cat, Options{Granularity: PageLevel, Workers: 4, PageSize: 1000})
	res, err := eng.Execute(tr)
	if err != nil {
		t.Fatal(err)
	}
	partial := 0
	for _, pg := range res.Relation.Pages() {
		if !pg.Full() {
			partial++
		}
	}
	if partial > 1 {
		t.Errorf("%d partial pages in result, want at most 1 (compression failed)", partial)
	}
}

// TestCellsPerWorkerBoundsArbitration: the arbitration channel capacity
// equals Workers × CellsPerWorker (the paper's memory cells); the
// engine stays correct at the minimum depth.
func TestCellsPerWorkerBoundsArbitration(t *testing.T) {
	cat, qs := testDB(t, 0.02, 1000)
	want, err := query.ExecuteSerial(cat, qs[5], 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, cells := range []int{1, 2, 16} {
		eng := New(cat, Options{Granularity: PageLevel, Workers: 2, CellsPerWorker: cells, PageSize: 1000})
		res, err := eng.Execute(qs[5])
		if err != nil {
			t.Fatalf("cells=%d: %v", cells, err)
		}
		if !res.Relation.EqualMultiset(want) {
			t.Errorf("cells=%d: wrong result", cells)
		}
	}
}

// TestPacketOverheadAccounting: the overhead constant c scales the
// arbitration byte count exactly as Section 3.3's formula says.
func TestPacketOverheadAccounting(t *testing.T) {
	cat, qs := testDB(t, 0.02, 1000)
	run := func(c int) Stats {
		eng := New(cat, Options{Granularity: PageLevel, PageSize: 1000, PacketOverhead: c})
		res, err := eng.Execute(qs[2])
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}
	lo := run(16)
	hi := run(128)
	if lo.InstructionPackets != hi.InstructionPackets {
		t.Fatalf("packet counts differ: %d vs %d", lo.InstructionPackets, hi.InstructionPackets)
	}
	if lo.OperandBytes != hi.OperandBytes {
		t.Fatalf("operand bytes differ: %d vs %d", lo.OperandBytes, hi.OperandBytes)
	}
	wantDelta := (128 - 16) * lo.InstructionPackets
	if hi.ArbitrationBytes-lo.ArbitrationBytes != wantDelta {
		t.Errorf("overhead delta = %d, want %d",
			hi.ArbitrationBytes-lo.ArbitrationBytes, wantDelta)
	}
}

package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dfdbm/internal/obs"
)

// TestObsTimelinesMatchStats: the network-traffic timelines are
// recorded increment for increment with the atomic Stats counters, so
// their integrals must agree exactly even though workers emit
// concurrently.
func TestObsTimelinesMatchStats(t *testing.T) {
	cat, qs := testDB(t, 0.02, 1000)
	reg := obs.NewRegistry(0)
	eng := New(cat, Options{Granularity: PageLevel, Workers: 4, PageSize: 1000,
		Obs: obs.New(nil, reg)})
	res, err := eng.Execute(qs[2])
	if err != nil {
		t.Fatal(err)
	}
	arb := reg.Timeline("core.arbitration_bytes")
	if arb == nil {
		t.Fatal("no arbitration timeline recorded")
	}
	if got, want := arb.Integral(), float64(res.Stats.ArbitrationBytes); got != want {
		t.Errorf("arbitration timeline integral %g, Stats.ArbitrationBytes %g", got, want)
	}
	resTl := reg.Timeline("core.result_bytes")
	if resTl == nil || resTl.Integral() != float64(res.Stats.ResultBytes) {
		t.Error("result-bytes timeline does not match Stats.ResultBytes")
	}
	for _, c := range []struct {
		name string
		want int64
	}{
		{"core.instruction_packets", res.Stats.InstructionPackets},
		{"core.operand_bytes", res.Stats.OperandBytes},
		{"core.arbitration_bytes_total", res.Stats.ArbitrationBytes},
		{"core.result_packets", res.Stats.ResultPackets},
		{"core.result_bytes_total", res.Stats.ResultBytes},
		{"core.pages_moved", res.Stats.PagesMoved},
		{"core.tuples_out", res.Stats.TuplesOut},
	} {
		if got := reg.Counter(c.name); got != c.want {
			t.Errorf("%s = %d, want %d", c.name, got, c.want)
		}
	}
}

// TestObsJSONLFromEngine: every line the JSONL sink writes during a
// concurrent execution must be a complete, parseable object — the
// Observer must serialize emissions from all worker goroutines.
func TestObsJSONLFromEngine(t *testing.T) {
	cat, qs := testDB(t, 0.02, 1000)
	var buf bytes.Buffer
	eng := New(cat, Options{Granularity: PageLevel, Workers: 8, PageSize: 1000,
		Obs: obs.New(obs.NewJSONLSink(&buf), nil)})
	if _, err := eng.Execute(qs[5]); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		lines++
		var ev struct {
			Kind string `json:"kind"`
			Comp string `json:"comp"`
			TS   *int64 `json:"ts_ns"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", lines, err)
		}
		if ev.Kind == "" || ev.Comp == "" || ev.TS == nil {
			t.Fatalf("line %d missing kind/comp/ts_ns: %s", lines, sc.Text())
		}
	}
	if lines == 0 {
		t.Fatal("engine emitted no events")
	}
}

// TestExecuteSurfacesSinkError: a failing sink must turn into an
// Execute error instead of a silently truncated trace.
func TestExecuteSurfacesSinkError(t *testing.T) {
	cat, qs := testDB(t, 0.02, 1000)
	eng := New(cat, Options{Granularity: PageLevel, Workers: 4, PageSize: 1000,
		Obs: obs.New(obs.NewTextSink(failWriter{}), nil)})
	_, err := eng.Execute(qs[2])
	if err == nil || !strings.Contains(err.Error(), "sink closed") {
		t.Errorf("Execute did not surface the sink error: %v", err)
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errSinkClosed }

var errSinkClosed = &sinkClosedError{}

type sinkClosedError struct{}

func (*sinkClosedError) Error() string { return "sink closed" }

package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dfdbm/internal/obs"
	"dfdbm/internal/pred"
	"dfdbm/internal/query"
	"dfdbm/internal/relalg"
	"dfdbm/internal/relation"
)

// event is one message delivered to an instruction controller.
type event struct {
	kind  evKind
	input int
	page  *relation.Page   // evPage
	pages []*relation.Page // evTaskDone
}

type evKind uint8

const (
	evPage evKind = iota + 1
	evInputDone
	evTaskDone
)

// task is one instruction packet: a node plus the operand pages sent to
// a processor. Joins carry two operands (outer page, inner page); the
// unary operators carry one.
type task struct {
	node     *nodeExec
	operands []*relation.Page
}

// outlet is where a producer delivers its output stream: either a
// consumer node's input, or the engine's result sink.
type outlet struct {
	send func(pg *relation.Page)
	done func()
}

// engineRun is the state of one query execution: the arbitration
// network, the worker pool, the per-node controllers, and the meters.
type engineRun struct {
	eng  *Engine
	tree *query.Tree
	// obs and t0 stamp structured events with real time since the
	// execution started (the concurrent engine has no virtual clock).
	obs *obs.Observer
	t0  time.Time

	arb      chan *task
	stopped  chan struct{}
	stopOnce sync.Once
	errMu    sync.Mutex
	err      error

	wg      sync.WaitGroup
	feeders []func()
	nodes   []*nodeExec
	chans   []*infChan

	// plan is the adaptive pipeline-vs-materialize plan for this run
	// (nil unless Options.Adaptive); stMatEdges counts the edges it
	// chose to materialize.
	plan       *query.Plan
	stMatEdges int64

	stInstr, stOperand, stArb int64
	stResPkts, stResBytes     int64
	stPages                   int64

	// kstats aggregates join-kernel counters across this run's workers;
	// pool0 is the engine pool's counters at run start, so the snapshot
	// reports per-run deltas.
	kstats relalg.KernelStats
	pool0  relation.PoolStats

	// span is the run's query span when Config.Obs has spans enabled.
	// The concurrent engine records spans in real time; worker exec
	// spans attribute wall-clock busy intervals to their node.
	span *obs.Span
	// parent, when the caller attached an obs.SpanContext to the
	// execution context, is the span the run's query span nests under
	// (the server's execute-stage span), and qid is the query id
	// stamped on the run's spans and events (-1 standalone). A span
	// context also supplies the epoch, so engine timestamps land on
	// the caller's clock and the whole tree shares one timebase.
	parent *obs.Span
	qid    int
}

func newEngineRun(ctx context.Context, e *Engine, t *query.Tree) *engineRun {
	r := &engineRun{
		eng:     e,
		tree:    t,
		obs:     e.opts.Obs,
		t0:      time.Now(),
		qid:     -1,
		arb:     make(chan *task, e.opts.Workers*e.opts.CellsPerWorker),
		stopped: make(chan struct{}),
		pool0:   e.pool.Stats(),
	}
	if sc, ok := obs.SpanContextFrom(ctx); ok {
		r.parent = sc.Parent
		r.qid = sc.Query
		if !sc.Epoch.IsZero() {
			r.t0 = sc.Epoch
		}
	}
	return r
}

// recycle hands a dead intermediate page back to the engine pool. Put
// is a no-op for catalog pages and pages retained by a relation, so
// callers only guarantee no *other engine component* still reads pg.
func (r *engineRun) recycle(pg *relation.Page) {
	r.eng.pool.Put(pg)
}

// event emits one structured event stamped with real time since the
// execution started; safe from any goroutine of the run.
func (r *engineRun) event(kind obs.EventKind, comp string, instr, bytes int, format string, args ...interface{}) {
	o := r.obs
	if !o.Enabled() {
		return
	}
	o.Emit(obs.Event{
		TS:    time.Since(r.t0),
		Kind:  kind,
		Comp:  comp,
		Query: r.qid,
		Instr: instr,
		Page:  -1,
		Bytes: bytes,
		Msg:   fmt.Sprintf(format, args...),
	})
}

// observe accumulates v into the named real-time timeline.
func (r *engineRun) observe(name string, v float64) {
	if o := r.obs; o.MetricsOn() {
		o.Registry().Add(name, time.Since(r.t0), v)
	}
}

// tracing and spansOn guard event and span call sites, so the disabled
// path costs one nil check and zero allocations per event.
func (r *engineRun) tracing() bool { return r.obs.Enabled() }
func (r *engineRun) spansOn() bool { return r.obs.SpansOn() }

// now is the run-relative real-time clock spans are stamped with.
func (r *engineRun) now() time.Duration { return time.Since(r.t0) }

func (r *engineRun) fail(err error) {
	if err == nil {
		return
	}
	r.errMu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.errMu.Unlock()
	r.stop()
}

func (r *engineRun) stop() {
	r.stopOnce.Do(func() { close(r.stopped) })
}

func (r *engineRun) errValue() error {
	r.errMu.Lock()
	defer r.errMu.Unlock()
	return r.err
}

func (r *engineRun) snapshotStats() Stats {
	ks := r.kstats.Load()
	ps := r.eng.pool.Stats()
	return Stats{
		InstructionPackets: atomic.LoadInt64(&r.stInstr),
		OperandBytes:       atomic.LoadInt64(&r.stOperand),
		ArbitrationBytes:   atomic.LoadInt64(&r.stArb),
		ResultPackets:      atomic.LoadInt64(&r.stResPkts),
		ResultBytes:        atomic.LoadInt64(&r.stResBytes),
		PagesMoved:         atomic.LoadInt64(&r.stPages),
		PoolHits:           ps.Hits - r.pool0.Hits,
		PoolMisses:         ps.Misses - r.pool0.Misses,
		PagesRecycled:      ps.Recycled - r.pool0.Recycled,
		HashProbes:         ks.HashProbes,
		HashBuilds:         ks.HashBuilds,
		HashTableHits:      ks.TableHits,
		NestedPairs:        ks.NestedPairs,
		MaterializedEdges:  atomic.LoadInt64(&r.stMatEdges),
	}
}

// build wires the subtree rooted at n to the given outlet, creating a
// controller per operator node and a feeder per scan leaf.
func (r *engineRun) build(n *query.Node, out outlet) error {
	if n.Kind == query.OpScan {
		rel, err := r.eng.cat.Get(n.Rel)
		if err != nil {
			return err
		}
		r.feeders = append(r.feeders, func() { r.feedScan(rel, out) })
		return nil
	}

	ne := &nodeExec{
		run:        r,
		id:         len(r.nodes),
		node:       n,
		events:     newInfChan(),
		out:        out,
		numInputs:  len(n.Inputs),
		inputsDone: make([]bool, len(n.Inputs)),
	}
	if r.plan != nil {
		// Adaptive materialization: a materialized input buffers until
		// its producer completes before any instruction fires on it.
		// Scan inputs are stored relations — already at rest — so only
		// operator-produced edges count.
		for i, in := range n.Inputs {
			if in.Kind != query.OpScan && r.plan.Materialized(in.ID) {
				ne.matInput[i] = true
				atomic.AddInt64(&r.stMatEdges, 1)
			}
		}
	}
	r.nodes = append(r.nodes, ne)
	r.chans = append(r.chans, ne.events)

	ne.outTupleLen = n.Schema().TupleLen()
	if r.eng.opts.Granularity == TupleLevel {
		ne.outPageSize = relation.PageHeaderLen + ne.outTupleLen
	} else {
		ne.outPageSize = r.eng.opts.PageSize
		if min := relation.PageHeaderLen + ne.outTupleLen; ne.outPageSize < min {
			ne.outPageSize = min
		}
	}

	switch n.Kind {
	case query.OpRestrict:
		b, err := n.Pred.Bind(n.Inputs[0].Schema())
		if err != nil {
			return err
		}
		ne.boundPred = b

	case query.OpJoin:
		b, err := n.Join.Bind(n.Inputs[0].Schema(), n.Inputs[1].Schema())
		if err != nil {
			return err
		}
		ne.boundJoin = b

	case query.OpProject:
		p, err := relalg.NewProjector(n.Inputs[0].Schema(), n.Cols...)
		if err != nil {
			return err
		}
		ne.projector = p
		if r.eng.opts.Project == ProjectPartitioned {
			ne.parts = make([]dedupPart, r.eng.opts.Workers)
			for i := range ne.parts {
				ne.parts[i].d = relalg.NewDedup()
			}
		} else {
			ne.dedup = relalg.NewDedup()
			pg, err := relation.NewPooledPaginator(ne.outPageSize, ne.outTupleLen, r.eng.pool)
			if err != nil {
				return err
			}
			ne.icPaginator = pg
		}

	default:
		return fmt.Errorf("core: %s nodes cannot appear inside a stream subtree", n.Kind)
	}

	for i, in := range n.Inputs {
		if err := r.build(in, ne.inlet(i)); err != nil {
			return err
		}
	}
	return nil
}

func (r *engineRun) start() {
	if r.spansOn() {
		r.span = r.obs.Spans().Begin(obs.SpanQuery, r.parent, r.now(),
			"engine", "query", r.qid, -1, -1)
		for _, ne := range r.nodes {
			ne.span = r.obs.Spans().Begin(obs.SpanInstr, r.span, r.now(),
				fmt.Sprintf("node%d", ne.id),
				fmt.Sprintf("%s node%d", ne.node.Kind, ne.id), r.qid, ne.id, -1)
		}
	}
	for i := 0; i < r.eng.opts.Workers; i++ {
		r.wg.Add(1)
		go r.worker()
	}
	for _, ne := range r.nodes {
		r.wg.Add(1)
		go ne.runIC()
	}
	for _, f := range r.feeders {
		r.wg.Add(1)
		f := f
		go func() {
			defer r.wg.Done()
			f()
		}()
	}
}

func (r *engineRun) shutdown() {
	r.stop()
	for _, c := range r.chans {
		c.Stop()
	}
	r.wg.Wait()
	if r.spansOn() {
		// End is idempotent, so node spans already closed by finish stay
		// as they were; a failed run's open spans close at shutdown time.
		end := r.now()
		for _, ne := range r.nodes {
			if ne.span != nil {
				r.obs.Spans().End(ne.span, end)
			}
		}
		if r.span != nil {
			r.obs.Spans().End(r.span, end)
		}
	}
}

// feedScan streams the pages of a source relation to the consumer. At
// tuple granularity each page is split into single-tuple tokens.
// EachPage walks disk-backed relations one pinned buffer-pool frame
// at a time, so a scan's footprint is one frame regardless of the
// relation's size — working sets larger than RAM execute correctly,
// just slower.
func (r *engineRun) feedScan(rel *relation.Relation, out outlet) {
	tupleLevel := r.eng.opts.Granularity == TupleLevel
	errStopped := fmt.Errorf("core: run stopped")
	err := rel.EachPage(func(pg *relation.Page) error {
		select {
		case <-r.stopped:
			return errStopped
		default:
		}
		if !tupleLevel {
			atomic.AddInt64(&r.stPages, 1)
			out.send(pg)
			return nil
		}
		n := pg.TupleCount()
		for i := 0; i < n; i++ {
			one, err := r.eng.pool.Get(relation.PageHeaderLen+pg.TupleLen(), pg.TupleLen())
			if err != nil {
				return err
			}
			if err := one.AppendRaw(pg.RawTuple(i)); err != nil {
				return err
			}
			atomic.AddInt64(&r.stPages, 1)
			out.send(one)
		}
		return nil
	})
	if err != nil {
		if err != errStopped {
			r.fail(err)
		}
		return
	}
	out.done()
}

// dedupPart is one partition of the parallel duplicate-elimination set.
type dedupPart struct {
	mu sync.Mutex
	d  *relalg.Dedup
}

// nodeExec is one operator node's instruction controller plus its
// execution state.
type nodeExec struct {
	run *engineRun
	// id numbers the node's controller within the run (the component
	// "node<id>" of its structured events).
	id   int
	node *query.Node
	span *obs.Span

	events *infChan
	out    outlet

	numInputs  int
	inputsDone []bool
	doneCount  int
	dispatched int
	completed  int

	// buf holds operand pages: at page/tuple level only until they have
	// been paired (joins keep everything, as nested loops requires); at
	// relation level everything until the inputs complete.
	buf [2][]*relation.Page

	// matInput marks inputs the adaptive plan materializes: their pages
	// buffer without firing anything until the input completes.
	matInput [2]bool

	boundPred pred.Bound
	boundJoin *pred.BoundJoin
	projector *relalg.Projector

	dedup       *relalg.Dedup // serial-IC project
	icPaginator *relation.Paginator
	parts       []dedupPart // partitioned project

	outTupleLen int
	outPageSize int
	pending     *relation.Page // output compressor
}

// inlet returns the outlet a child (or scan feeder) uses to deliver
// input i.
func (n *nodeExec) inlet(i int) outlet {
	return outlet{
		send: func(pg *relation.Page) {
			n.events.Send(event{kind: evPage, input: i, page: pg})
		},
		done: func() {
			n.events.Send(event{kind: evInputDone, input: i})
		},
	}
}

// runIC is the instruction controller loop: apply the firing rule,
// dispatch instruction packets, forward results, detect completion.
func (n *nodeExec) runIC() {
	defer n.run.wg.Done()
	for {
		ev, ok := n.events.Recv()
		if !ok {
			return
		}
		switch ev.kind {
		case evPage:
			n.onPage(ev.input, ev.page)
		case evInputDone:
			if !n.inputsDone[ev.input] {
				n.inputsDone[ev.input] = true
				n.doneCount++
				n.onInputDone(ev.input)
			}
		case evTaskDone:
			n.completed++
			n.onResults(ev.pages)
		}
		if n.allInputsDone() && n.completed == n.dispatched {
			n.finish()
			return
		}
	}
}

func (n *nodeExec) allInputsDone() bool { return n.doneCount == n.numInputs }

func (n *nodeExec) onPage(input int, pg *relation.Page) {
	if pg.Empty() {
		return
	}
	if n.run.eng.opts.Granularity == RelationLevel {
		// Relation-level firing: buffer until the operands are complete.
		n.buf[input] = append(n.buf[input], pg)
		return
	}
	switch n.node.Kind {
	case query.OpRestrict, query.OpProject:
		if n.matInput[input] {
			// Materialized edge: hold until the producer completes.
			n.buf[input] = append(n.buf[input], pg)
			return
		}
		n.dispatch(pg)
	case query.OpJoin:
		n.buf[input] = append(n.buf[input], pg)
		if n.matInput[input] {
			// This side is invisible to the firing rule until complete;
			// flushMaterialized pairs the backlog then.
			return
		}
		// Pair the newcomer with every page already buffered on the
		// other side; pages arriving later on the other side will pair
		// with it then, so each (outer, inner) pair is dispatched
		// exactly once.
		other := 1 - input
		if n.matInput[other] && !n.inputsDone[other] {
			// The other side is still accumulating: it pairs the
			// newcomer when it completes.
			return
		}
		for _, q := range n.buf[other] {
			if input == 0 {
				n.dispatch(pg, q)
			} else {
				n.dispatch(q, pg)
			}
		}
	}
}

// flushMaterialized fires the work a materialized input held back, now
// that the input is complete. Joins pair the whole buffered side against
// everything buffered opposite (later arrivals opposite pair against it
// through onPage), so each (outer, inner) pair still dispatches exactly
// once; unary operators just drain the backlog.
func (n *nodeExec) flushMaterialized(input int) {
	switch n.node.Kind {
	case query.OpJoin:
		other := 1 - input
		if n.matInput[other] && !n.inputsDone[other] {
			// Both edges materialized and the other is still streaming:
			// its completion dispatches the full cross product.
			return
		}
		for _, p := range n.buf[input] {
			for _, q := range n.buf[other] {
				if input == 0 {
					n.dispatch(p, q)
				} else {
					n.dispatch(q, p)
				}
			}
		}
	default:
		for _, pg := range n.buf[input] {
			n.dispatch(pg)
		}
		n.buf[input] = nil
	}
}

func (n *nodeExec) onInputDone(input int) {
	if n.run.eng.opts.Granularity != RelationLevel {
		if n.matInput[input] {
			n.flushMaterialized(input)
		}
		return
	}
	if !n.allInputsDone() {
		return
	}
	// Relation-level firing: the instruction is now enabled; dispatch
	// all of its work at once.
	switch n.node.Kind {
	case query.OpRestrict, query.OpProject:
		for _, pg := range n.buf[0] {
			n.dispatch(pg)
		}
	case query.OpJoin:
		for _, o := range n.buf[0] {
			for _, i := range n.buf[1] {
				n.dispatch(o, i)
			}
		}
	}
	n.buf[0], n.buf[1] = nil, nil
}

// dispatch sends one instruction packet into the arbitration network,
// metering it as Section 3.3 does: operand payload plus per-packet
// overhead.
func (n *nodeExec) dispatch(ops ...*relation.Page) {
	n.dispatched++
	payload := 0
	for _, p := range ops {
		payload += p.TupleCount() * p.TupleLen()
	}
	atomic.AddInt64(&n.run.stInstr, 1)
	atomic.AddInt64(&n.run.stOperand, int64(payload))
	wire := payload + n.run.eng.opts.PacketOverhead
	atomic.AddInt64(&n.run.stArb, int64(wire))
	n.run.observe("core.arbitration_bytes", float64(wire))
	if n.run.tracing() {
		n.run.event(obs.EvInstr, fmt.Sprintf("node%d", n.id), n.id, wire,
			"node%d: dispatch %s packet (%d operand bytes)", n.id, n.node.Kind, payload)
	}
	if s := n.span; s != nil {
		s.Firings.Add(1)
		s.Bytes.Add(int64(wire))
	}
	t := &task{node: n, operands: ops}
	select {
	case n.run.arb <- t:
	case <-n.run.stopped:
	}
}

// onResults forwards a finished task's output pages toward the consumer.
func (n *nodeExec) onResults(pages []*relation.Page) {
	if n.node.Kind == query.OpProject && n.dedup != nil {
		// Serial-IC duplicate elimination: every projected tuple funnels
		// through this controller.
		for _, pg := range pages {
			cnt := pg.TupleCount()
			for i := 0; i < cnt; i++ {
				raw := pg.RawTuple(i)
				if !n.dedup.Add(raw) {
					continue
				}
				full, err := n.icPaginator.Add(raw)
				if err != nil {
					n.run.fail(err)
					return
				}
				if full != nil {
					n.send(full)
				}
			}
			// The page's tuples now live in the dedup set / paginator;
			// the page itself is dead.
			n.run.recycle(pg)
		}
		return
	}
	for _, pg := range pages {
		n.forward(pg)
	}
}

// forward routes an owned output page through the compressor: partial
// pages are merged into full pages before travelling up the tree, as
// the paper's ICs compress arriving pages.
func (n *nodeExec) forward(pg *relation.Page) {
	if pg.Empty() {
		return
	}
	if n.run.eng.opts.Granularity == TupleLevel || pg.Full() {
		n.send(pg)
		return
	}
	if n.pending == nil {
		n.pending = pg
		return
	}
	if _, err := n.pending.FillFrom(pg); err != nil {
		n.run.fail(err)
		return
	}
	if n.pending.Full() {
		n.send(n.pending)
		n.pending = nil
		if !pg.Empty() {
			n.pending = pg
			return
		}
	}
	if pg.Empty() {
		// Fully drained into the compressor: the source page is dead.
		n.run.recycle(pg)
	}
}

func (n *nodeExec) send(pg *relation.Page) {
	atomic.AddInt64(&n.run.stPages, 1)
	n.out.send(pg)
}

// finish flushes buffered output and signals completion downstream.
func (n *nodeExec) finish() {
	if n.icPaginator != nil {
		if last := n.icPaginator.Flush(); last != nil {
			n.forward(last)
		}
	}
	if n.pending != nil && !n.pending.Empty() {
		n.send(n.pending)
		n.pending = nil
	}
	if n.run.tracing() {
		n.run.event(obs.EvInstrDone, fmt.Sprintf("node%d", n.id), n.id, 0,
			"node%d: %s complete (%d packets dispatched)", n.id, n.node.Kind, n.dispatched)
	}
	if s := n.span; s != nil {
		n.run.obs.Spans().End(s, n.run.now())
	}
	n.out.done()
}
